package tdb

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"tdb/internal/wal"
	"tdb/temporal"
)

// A pre-epoch database (headerless WAL with payload-only frame CRCs) must
// never be destroyed by recovery: Open fails with ErrCorrupt and the file
// keeps every byte it had, so a migration tool can still read it.
func TestOpenRefusesLegacyWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	payload := wal.EncodeRecord(wal.Record{Commit: 1, Ops: []wal.Op{{Code: wal.OpDrop, Rel: "x"}}})
	frame := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8],
		crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	copy(frame[8:], payload)
	legacy := append(append([]byte(nil), frame...), frame...)
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(path, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open legacy wal: %v, want ErrCorrupt", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(legacy) {
		t.Fatalf("refused open still mutated the legacy wal: %d -> %d bytes",
			len(legacy), len(after))
	}
}

// The epoch-E / epoch-E-1 pairing must also hold when the log lost records
// the snapshot covers: the snapshot then covers everything the log still
// holds, and nothing is replayed.
func TestSnapCoversLostLogTail(t *testing.T) {
	snap := wal.Snapshot{Epoch: 3, Records: 5}
	if skip, ok := snapCovers(snap, wal.ReplayResult{HasEpoch: true, Epoch: 2, Records: 3}); !ok || skip != 3 {
		t.Fatalf("lost tail: skip=%d ok=%v, want 3,true", skip, ok)
	}
	if skip, ok := snapCovers(snap, wal.ReplayResult{HasEpoch: true, Epoch: 2, Records: 7}); !ok || skip != 5 {
		t.Fatalf("surviving tail: skip=%d ok=%v, want 5,true", skip, ok)
	}
	if _, ok := snapCovers(snap, wal.ReplayResult{HasEpoch: true, Epoch: 1}); ok {
		t.Fatal("two-era gap accepted")
	}
}

// With Sync off, a crash between snapshot install (fsynced) and log
// truncation can lose un-fsynced tail records, leaving the log with fewer
// records than the snapshot covers. The epoch pairing still proves the
// snapshot consistent, so Open must recover from it — replaying nothing —
// instead of failing ErrCorrupt.
func TestRecoveryAcceptsLostTailAfterCheckpointInstall(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := reopen(t, path)
	buildMixedDB(t, db)
	db.Close()
	// The log as the crash will leave it: a proper prefix of the records
	// the snapshot below condenses.
	prefix, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	db = reopen(t, path)
	if err := db.UpdateAt(temporal.Date(1995, 1, 1), func(tx *Tx) error {
		h, _ := tx.Rel("r_historical")
		return h.Assert(fac("F", "f"), temporal.Date(1995, 1, 1), temporal.Forever)
	}); err != nil {
		t.Fatal(err)
	}
	before := stateDigest(t, db)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// Rewind disk to the mid-checkpoint crash: the fsynced snapshot is
	// installed (covering every era-0 record), the log was never truncated,
	// and its un-fsynced tail is gone. The checkpoint rotated the covering
	// snapshot into the fallback slot; put it back as the crash-time
	// primary.
	snap, ok, err := wal.ReadSnapshot(nil, path+".snap.prev")
	if err != nil || !ok {
		t.Fatalf("prev snapshot: %v %v", ok, err)
	}
	if snap.Records == 0 {
		t.Fatal("prev snapshot covers no records; scenario needs a covering snapshot")
	}
	if err := wal.WriteSnapshot(nil, path+".snap", snap); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path + ".snap.prev"); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, prefix, 0o644); err != nil {
		t.Fatal(err)
	}

	db2 := reopen(t, path)
	if got := stateDigest(t, db2); !digestsEqual(before, got) {
		t.Fatalf("lost-tail recovery differs:\nbefore %v\nafter  %v", before, got)
	}
	ri := db2.Stats().Recovery
	if !ri.SnapshotLoaded || ri.Replayed != 0 {
		t.Fatalf("recovery info = %+v, want snapshot loaded and nothing replayed", ri)
	}
	// Normalization keeps later reopens consistent too.
	db2.Close()
	db3 := reopen(t, path)
	if got := stateDigest(t, db3); !digestsEqual(before, got) {
		t.Fatal("second reopen differs")
	}
}
