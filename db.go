package tdb

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync"

	"tdb/internal/catalog"
	"tdb/internal/core"
	"tdb/internal/qcache"
	"tdb/internal/txn"
	"tdb/internal/wal"
	"tdb/temporal"
)

// Errors surfaced by the facade (store-level errors pass through: see
// ErrDuplicateKey and friends).
var (
	// ErrClosed reports use of a closed database.
	ErrClosed = errors.New("tdb: database closed")
	// ErrNotFound reports a reference to an unknown relation.
	ErrNotFound = catalog.ErrNotFound
	// ErrExists reports creating a relation whose name is taken.
	ErrExists = catalog.ErrExists
	// ErrKindMismatch reports using a relation through operations its kind
	// does not support — the taxonomy's boundaries, enforced.
	ErrKindMismatch = catalog.ErrKindMismatch
	// ErrDuplicateKey re-exports the store-level duplicate key error.
	ErrDuplicateKey = core.ErrDuplicateKey
	// ErrNoSuchTuple re-exports the store-level missing tuple error.
	ErrNoSuchTuple = core.ErrNoSuchTuple
	// ErrEmptyValidPeriod re-exports the store-level empty period error.
	ErrEmptyValidPeriod = core.ErrEmptyValidPeriod
	// ErrNoRollback reports an as-of query on a kind without transaction
	// time.
	ErrNoRollback = errors.New("tdb: relation kind does not support rollback (as of)")
	// ErrNoValidTime reports a valid-time query on a kind without it.
	ErrNoValidTime = errors.New("tdb: relation kind does not support historical queries")
)

// DefaultCacheBytes is the query cache budget when neither Options nor the
// TDB_CACHE_BYTES environment variable chooses one.
const DefaultCacheBytes = 64 << 20

// Options configure Open.
type Options struct {
	// Clock supplies commit timestamps; nil means the system clock.
	// Figure reproduction and tests use temporal.LogicalClock.
	Clock temporal.Clock
	// Sync forces an fsync per committed transaction when a WAL is in use.
	Sync bool
	// CacheBytes bounds the query result cache shared by this database's
	// sessions. Zero defers to the TDB_CACHE_BYTES environment variable
	// and then to DefaultCacheBytes; a negative value (or TDB_CACHE_BYTES=0)
	// disables the cache entirely — the ablation switch.
	CacheBytes int64
}

// resolveCacheBytes applies the CacheBytes precedence documented on Options.
func resolveCacheBytes(opt int64) int64 {
	if opt != 0 {
		return opt
	}
	if env := os.Getenv("TDB_CACHE_BYTES"); env != "" {
		if n, err := strconv.ParseInt(env, 10, 64); err == nil {
			return n
		}
	}
	return DefaultCacheBytes
}

// DB is a temporal database: a catalog of relations plus the transaction
// and durability machinery. All methods are safe for concurrent use.
type DB struct {
	mu         sync.RWMutex
	cat        *catalog.Catalog
	mgr        *txn.Manager
	log        *wal.Log
	path       string
	snapPath   string
	walRecords int // records in the current log file
	closed     bool
	replay     bool // suppress WAL writes during recovery
	qc         *qcache.Cache
}

// Open creates or reopens a database. An empty path yields a purely
// in-memory database; otherwise path names a write-ahead log file.
// Recovery loads the checkpoint snapshot (path + ".snap") if one exists,
// then replays the log's uncovered suffix, repairing torn tails.
func Open(path string, opts Options) (*DB, error) {
	db := &DB{
		cat:      catalog.New(),
		mgr:      txn.NewManager(txn.NewCommitClock(opts.Clock)),
		path:     path,
		snapPath: path + ".snap",
		qc:       qcache.New(resolveCacheBytes(opts.CacheBytes)),
	}
	if path == "" {
		return db, nil
	}
	if err := db.recover(); err != nil {
		return nil, fmt.Errorf("tdb: recovery: %w", err)
	}
	log, err := wal.Open(path, wal.Options{Sync: opts.Sync})
	if err != nil {
		return nil, err
	}
	db.log = log
	return db, nil
}

// recover rebuilds the in-memory state: checkpoint snapshot first, then the
// log records the snapshot does not cover. A crash between "snapshot
// written" and "log truncated" leaves a snapshot whose Records field counts
// the covered prefix; recovery skips exactly that prefix when the log still
// holds it, and normalizes the snapshot afterwards so the accounting stays
// exact across repeated crashes.
func (db *DB) recover() error {
	db.replay = true
	defer func() { db.replay = false }()

	snap, haveSnap, err := wal.ReadSnapshot(db.snapPath)
	if err != nil {
		return err
	}
	if haveSnap {
		if err := db.restoreSnapshot(snap); err != nil {
			return err
		}
	}
	// First pass: count complete records (and repair torn tails).
	total := 0
	if _, err := wal.Replay(db.path, true, func(wal.Record) error {
		total++
		return nil
	}); err != nil {
		return err
	}
	skip := 0
	if haveSnap && total >= snap.Records {
		skip = snap.Records
	}
	idx := 0
	if _, err := wal.Replay(db.path, false, func(rec wal.Record) error {
		idx++
		if idx <= skip {
			return nil
		}
		return db.applyRecord(rec)
	}); err != nil {
		return err
	}
	db.walRecords = total
	if haveSnap && skip != snap.Records {
		// The covered prefix is gone (log was truncated after the snapshot
		// was written): rewrite the snapshot so Records matches the log.
		snap.Records = 0
		if err := wal.WriteSnapshot(db.snapPath, snap); err != nil {
			return err
		}
	}
	return nil
}

// restoreSnapshot loads a checkpoint into the empty database.
func (db *DB) restoreSnapshot(snap wal.Snapshot) error {
	for _, rs := range snap.Relations {
		rel, err := db.cat.Create(rs.Name, rs.Kind, rs.Event, rs.Schema)
		if err != nil {
			return err
		}
		for _, v := range rs.Versions {
			switch rs.Kind {
			case Static:
				st, _ := rel.Static()
				err = st.Insert(v.Data)
			case StaticRollback:
				st, _ := rel.Rollback()
				err = st.RestoreVersion(v)
			case Historical:
				st, _ := rel.Historical()
				if rs.Event {
					err = st.AssertAt(v.Data, v.Valid.From)
				} else {
					err = st.Assert(v.Data, v.Valid)
				}
			case Temporal:
				st, _ := rel.Temporal()
				err = st.RestoreVersion(v)
			}
			if err != nil {
				return fmt.Errorf("restoring %q: %w", rs.Name, err)
			}
		}
		// Versions were replayed through direct store calls (no bumps);
		// re-establish the persisted mutation counter so cache keys minted
		// before the checkpoint can never match post-recovery state.
		rel.Store().ObserveWriteVersion(rs.WriteVersion)
	}
	return db.mgr.Clock().Observe(snap.LastCommit)
}

// Checkpoint writes a snapshot of the whole database and truncates the
// write-ahead log, bounding recovery time. It fails on in-memory
// databases. The snapshot preserves every stored version, including
// superseded ones — checkpointing never forgets history.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.log == nil {
		return errors.New("tdb: checkpoint needs a log-backed database")
	}
	snap := wal.Snapshot{
		LastCommit: db.mgr.Clock().Last(),
		Records:    db.walRecords,
	}
	for _, name := range db.cat.Names() {
		rel, err := db.cat.Get(name)
		if err != nil {
			return err
		}
		rs := wal.RelationSnapshot{
			Name:         name,
			Kind:         rel.Kind(),
			Event:        rel.Event(),
			Schema:       rel.Schema(),
			WriteVersion: rel.WriteVersion(),
		}
		rel.Store().Versions(func(v Version) bool {
			rs.Versions = append(rs.Versions, v)
			return true
		})
		snap.Relations = append(snap.Relations, rs)
	}
	if err := wal.WriteSnapshot(db.snapPath, snap); err != nil {
		return err
	}
	if err := db.log.Truncate(); err != nil {
		return err
	}
	db.walRecords = 0
	// Conservatively drop warm results: the checkpoint is the boundary a
	// subsequent restore resumes from, so a cache that straddles it could
	// otherwise mix pre- and post-recovery keyed entries.
	db.qc.Clear()
	// Normalize immediately: the truncated log has no covered prefix.
	snap.Records = 0
	return wal.WriteSnapshot(db.snapPath, snap)
}

// QueryCache returns the database's shared query result cache; nil-safe to
// use, and nil when caching is disabled (CacheBytes < 0 or
// TDB_CACHE_BYTES=0).
func (db *DB) QueryCache() *qcache.Cache { return db.qc }

// Close releases the database; further use returns ErrClosed.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if db.log != nil {
		return db.log.Close()
	}
	return nil
}

// CreateRelation adds an interval relation of the given kind.
func (db *DB) CreateRelation(name string, kind Kind, sch *Schema) (*Relation, error) {
	return db.create(name, kind, false, sch)
}

// CreateEventRelation adds an event relation (a single valid-time instant
// per tuple, like the paper's 'promotion' relation). Only historical and
// temporal kinds can carry events.
func (db *DB) CreateEventRelation(name string, kind Kind, sch *Schema) (*Relation, error) {
	return db.create(name, kind, true, sch)
}

func (db *DB) create(name string, kind Kind, event bool, sch *Schema) (*Relation, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	rel, err := db.cat.Create(name, kind, event, sch)
	if err != nil {
		return nil, err
	}
	// Catalog changes are logged at the last issued commit chronon rather
	// than consuming a new one, so that dated history (UpdateAt) can still
	// be loaded after creating relations.
	if err := db.logRecord(wal.Record{
		Commit: db.mgr.Clock().Last(),
		Ops: []wal.Op{{
			Code: wal.OpCreate, Rel: name, Kind: kind, Event: event, Schema: sch,
		}},
	}); err != nil {
		_ = db.cat.Drop(name)
		return nil, err
	}
	return &Relation{db: db, rel: rel}, nil
}

// DropRelation destroys a relation (schema-level destroy: the append-only
// discipline governs tuples within rollback/temporal relations, not the
// catalog).
func (db *DB) DropRelation(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if err := db.cat.Drop(name); err != nil {
		return err
	}
	return db.logRecord(wal.Record{
		Commit: db.mgr.Clock().Last(),
		Ops:    []wal.Op{{Code: wal.OpDrop, Rel: name}},
	})
}

// Relation returns a handle to the named relation.
func (db *DB) Relation(name string) (*Relation, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	rel, err := db.cat.Get(name)
	if err != nil {
		return nil, err
	}
	return &Relation{db: db, rel: rel}, nil
}

// Relations returns the sorted names of all relations.
func (db *DB) Relations() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.cat.Names()
}

// Now returns the chronon the database's clock would assign next; useful
// as the "current instant" for snapshot queries.
func (db *DB) Now() temporal.Chronon {
	last := db.mgr.Clock().Last()
	if last == temporal.Beginning {
		return 0
	}
	return last
}

// Stats summarizes the database for monitoring and tests.
type Stats struct {
	// Relations is the number of relations in the catalog.
	Relations int
	// Versions is the total number of stored versions across relations,
	// including superseded ones.
	Versions int
	// CurrentVersions counts only versions that are part of present belief.
	CurrentVersions int
	// WALRecords is the number of transaction records in the current log
	// file (0 for in-memory databases and right after a checkpoint).
	WALRecords int
	// LastCommit is the latest commit chronon issued.
	LastCommit temporal.Chronon
}

// Stats returns a snapshot of database-wide counters.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := Stats{
		Relations:  db.cat.Len(),
		WALRecords: db.walRecords,
		LastCommit: db.mgr.Clock().Last(),
	}
	for _, name := range db.cat.Names() {
		rel, err := db.cat.Get(name)
		if err != nil {
			continue
		}
		rel.Store().Versions(func(v Version) bool {
			s.Versions++
			if v.Current() {
				s.CurrentVersions++
			}
			return true
		})
	}
	return s
}

// Update runs fn in a serialized transaction stamped with the next commit
// chronon. All mutations performed through the Tx commit atomically; an
// error (or panic) rolls every enlisted relation back and nothing is
// logged.
func (db *DB) Update(fn func(tx *Tx) error) error {
	return db.update(nil, fn)
}

// UpdateAt is Update with an explicit commit chronon, for loading dated
// history (the figure harness replays the paper's transactions this way).
// The chronon must not precede any previously committed one.
func (db *DB) UpdateAt(at temporal.Chronon, fn func(tx *Tx) error) error {
	return db.update(&at, fn)
}

func (db *DB) update(at *temporal.Chronon, fn func(tx *Tx) error) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	var rec *wal.Record
	wrap := func(itx *txn.Tx) error {
		tx := &Tx{db: db, itx: itx}
		if err := fn(tx); err != nil {
			return err
		}
		if len(tx.ops) > 0 {
			rec = &wal.Record{Commit: itx.At(), Ops: tx.ops}
		}
		return nil
	}
	var err error
	if at != nil {
		err = db.mgr.UpdateAt(*at, wrap)
	} else {
		err = db.mgr.Update(wrap)
	}
	if err != nil {
		return err
	}
	if rec != nil {
		if err := db.logRecord(*rec); err != nil {
			// The in-memory commit succeeded but durability failed; surface
			// loudly. (A production system would block further commits.)
			return fmt.Errorf("tdb: committed but not logged: %w", err)
		}
	}
	return nil
}

func (db *DB) logRecord(rec wal.Record) error {
	if db.log == nil || db.replay {
		return nil
	}
	if err := db.log.Append(rec); err != nil {
		return err
	}
	db.walRecords++
	return nil
}

// applyRecord replays one WAL record during recovery.
func (db *DB) applyRecord(rec wal.Record) error {
	for _, op := range rec.Ops {
		if err := db.applyOp(rec.Commit, op); err != nil {
			return fmt.Errorf("replaying %s on %q: %w", op.Code, op.Rel, err)
		}
	}
	return nil
}

func (db *DB) applyOp(commit temporal.Chronon, op wal.Op) error {
	switch op.Code {
	case wal.OpCreate:
		_, err := db.cat.Create(op.Rel, op.Kind, op.Event, op.Schema)
		if err == nil {
			err = db.mgr.Clock().Observe(commit)
		}
		return err
	case wal.OpDrop:
		if err := db.cat.Drop(op.Rel); err != nil {
			return err
		}
		return db.mgr.Clock().Observe(commit)
	}
	rel, err := db.cat.Get(op.Rel)
	if err != nil {
		return err
	}
	return db.mgr.UpdateAt(commit, func(itx *txn.Tx) error {
		tr := &TxRel{tx: &Tx{db: db, itx: itx}, rel: rel}
		switch op.Code {
		case wal.OpInsert:
			return tr.Insert(op.Tuple)
		case wal.OpDelete:
			return tr.Delete(op.Key)
		case wal.OpReplace:
			return tr.Replace(op.Key, op.Tuple)
		case wal.OpAssert:
			return tr.Assert(op.Tuple, op.Valid.From, op.Valid.To)
		case wal.OpRetract:
			return tr.Retract(op.Key, op.Valid.From, op.Valid.To)
		case wal.OpAssertAt:
			return tr.AssertAt(op.Tuple, op.At)
		case wal.OpRetractAt:
			return tr.RetractAt(op.Key, op.At)
		default:
			return fmt.Errorf("tdb: unknown op %v in log", op.Code)
		}
	})
}
