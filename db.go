package tdb

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"tdb/internal/catalog"
	"tdb/internal/config"
	"tdb/internal/core"
	"tdb/internal/qcache"
	"tdb/internal/segment"
	"tdb/internal/stats"
	"tdb/internal/txn"
	"tdb/internal/vfs"
	"tdb/internal/wal"
	"tdb/temporal"
)

// DefaultCacheBytes is the query cache budget when neither Options nor the
// TDB_CACHE_BYTES environment variable chooses one.
const DefaultCacheBytes = 64 << 20

// Options configure Open.
type Options struct {
	// Clock supplies commit timestamps; nil means the system clock.
	// Figure reproduction and tests use temporal.LogicalClock.
	Clock temporal.Clock
	// Sync forces an fsync per committed transaction when a WAL is in use.
	Sync bool
	// CacheBytes bounds the query result cache shared by this database's
	// sessions. Zero defers to the TDB_CACHE_BYTES environment variable
	// and then to DefaultCacheBytes; a negative value (or TDB_CACHE_BYTES=0)
	// disables the cache entirely — the ablation switch.
	CacheBytes int64
	// FS routes all durable I/O (log, snapshots) through an alternate
	// filesystem — the seam fault-injection tests use. Nil means the
	// operating system.
	FS vfs.FS
	// ReadOnly opens the database as a replication follower: every user
	// mutation (Update, UpdateAt, CreateRelation, DropRelation,
	// Checkpoint) fails with ErrReadOnly, and the only write path is the
	// replication apply surface (ReplReset, ReplApply) a repl.Follower
	// drives. Queries are unrestricted — a follower at commit-clock T
	// answers every `as of <= T` query exactly as the primary would.
	ReadOnly bool
	// GroupCommitMaxBatch caps how many transaction records one
	// group-commit flush coalesces onto a single WAL write (and fsync,
	// when Sync is on). Zero defers to TDB_GROUP_COMMIT_BATCH and then
	// wal.DefaultGroupMaxBatch; 1 degenerates to per-transaction commits —
	// the baseline BenchmarkIngestThroughput measures against.
	GroupCommitMaxBatch int
	// GroupCommitWait widens the group-commit coalescing window: the
	// leader lingers this long after a commit arrives before flushing,
	// hoping to share the fsync with more committers. Zero defers to
	// TDB_GROUP_COMMIT_WAIT and then flushes immediately (batches still
	// form naturally from commits arriving during the previous fsync).
	GroupCommitWait time.Duration
	// LoadChunkRows sets how many rows Relation.Load commits per
	// transaction. Zero defers to TDB_LOAD_CHUNK and then
	// DefaultLoadChunkRows.
	LoadChunkRows int
}

// resolveCacheBytes applies the CacheBytes precedence documented on Options.
func resolveCacheBytes(opt int64) int64 {
	if opt != 0 {
		return opt
	}
	return config.Int64(config.EnvCacheBytes, DefaultCacheBytes)
}

// DB is a temporal database: a catalog of relations plus the transaction
// and durability machinery. All methods are safe for concurrent use.
type DB struct {
	mu           sync.RWMutex
	cat          *catalog.Catalog
	mgr          *txn.Manager
	log          *wal.Log
	gc           *wal.GroupCommitter // owns all appends to log; nil on followers and in-memory DBs
	fs           vfs.FS
	path         string
	snapPath     string
	prevSnapPath string
	epoch        uint64 // checkpoint era of the current log file
	closed       bool
	replay       bool // suppress WAL writes during recovery
	readOnly     bool // follower: user mutations refused with ErrReadOnly
	replSkip     int  // leading shipped records the installed snapshot covers
	clock        temporal.Clock
	replMu       sync.Mutex    // guards replWatch; never held around I/O
	replWatch    chan struct{} // closed+replaced when the log position advances
	recovery     RecoveryInfo
	loadChunkOpt int // explicit Load chunk size; 0 defers to env/default
	qc           *qcache.Cache
	stats        map[string]*stats.Rel // per-relation temporal statistics (see stats.go)
}

// RecoveryInfo reports what Open's recovery pass found and repaired; it is
// retained in Stats so operators can see after the fact how a database came
// back up.
type RecoveryInfo struct {
	// SnapshotLoaded reports that a checkpoint snapshot was restored.
	SnapshotLoaded bool
	// UsedFallback reports that the previous snapshot (path + ".snap.prev")
	// stood in for a corrupt or missing primary.
	UsedFallback bool
	// TornTail reports that a torn or corrupt log tail was truncated away.
	TornTail bool
	// LogRecords is the number of complete records found in the log.
	LogRecords int
	// Replayed is the number of log records applied on top of the snapshot
	// (LogRecords minus the snapshot-covered prefix).
	Replayed int
	// Epoch is the checkpoint era the database recovered into.
	Epoch uint64
}

// Open creates or reopens a database. An empty path yields a purely
// in-memory database; otherwise path names a write-ahead log file.
// Recovery loads the checkpoint snapshot (path + ".snap") if one exists —
// falling back to the previous snapshot (path + ".snap.prev") when the
// primary is corrupt and the log's epoch proves the fallback consistent —
// then replays the log's uncovered suffix, repairing torn tails. When the
// durable state cannot be proven consistent, Open fails with ErrCorrupt
// rather than loading a silently divergent database.
func Open(path string, opts Options) (*DB, error) {
	fs := opts.FS
	if fs == nil {
		fs = vfs.Default()
	}
	db := &DB{
		cat:          catalog.New(),
		mgr:          txn.NewManager(txn.NewCommitClock(opts.Clock)),
		fs:           fs,
		path:         path,
		snapPath:     path + ".snap",
		prevSnapPath: path + ".snap.prev",
		readOnly:     opts.ReadOnly,
		clock:        opts.Clock,
		replWatch:    make(chan struct{}),
		loadChunkOpt: opts.LoadChunkRows,
		qc:           qcache.New(resolveCacheBytes(opts.CacheBytes)),
		stats:        make(map[string]*stats.Rel),
	}
	if path == "" {
		return db, nil
	}
	if err := db.recover(); err != nil {
		mRecoveryFailed.Inc()
		return nil, fmt.Errorf("tdb: recovery: %w", err)
	}
	log, err := wal.Open(fs, path, wal.Options{
		Sync:    opts.Sync,
		Epoch:   db.epoch,
		Records: db.recovery.LogRecords,
	})
	if err != nil {
		return nil, err
	}
	db.log = log
	if !db.readOnly {
		// The committer owns every append to the log. Followers have no
		// committers — their one write path is ReplApply's AppendRaw.
		db.gc = wal.NewGroupCommitter(log, wal.GroupOptions{
			MaxBatch: opts.GroupCommitMaxBatch,
			MaxWait:  opts.GroupCommitWait,
			Notify:   db.notifyRepl,
		})
	}
	return db, nil
}

// snapCovers decides whether a snapshot may anchor recovery given what the
// log scan found, and how many leading log records the snapshot already
// covers. A snapshot with epoch E describes the first Records records of
// the era-(E-1) log; the log truncated after installing it carries E.
func snapCovers(s wal.Snapshot, scan wal.ReplayResult) (skip int, ok bool) {
	switch {
	case !scan.HasEpoch:
		// Empty (or headerless) log: the snapshot alone is the state.
		return 0, true
	case scan.Epoch == s.Epoch:
		// The log was truncated by this snapshot's checkpoint; every record
		// in it postdates the snapshot.
		return 0, true
	case scan.Epoch == s.Epoch-1:
		// Crash between snapshot install and log truncation: the log is the
		// era the snapshot condensed. Usually it still holds the whole
		// covered prefix (skip it, replay the rest), but with Sync off the
		// crash can also have lost un-fsynced tail records, leaving fewer
		// than the fsynced snapshot covers. The epoch already proves the
		// pairing, and a same-era log is a prefix of what the snapshot
		// condensed — so the snapshot covers everything the log still holds.
		if scan.Records < s.Records {
			return scan.Records, true
		}
		return s.Records, true
	default:
		return 0, false
	}
}

// recover rebuilds the in-memory state from the snapshot pair and the log.
//
// The log header's epoch proves which checkpoint era the log extends, which
// lets recovery decide — never guess — how a snapshot and a log combine
// (see snapCovers). If the primary snapshot is corrupt or missing, the
// fallback left by the previous checkpoint's rotation stands in only when
// the same proof goes through; a pairing that cannot be proven consistent
// fails the open with ErrCorrupt instead of silently diverging.
func (db *DB) recover() error {
	db.replay = true
	defer func() { db.replay = false }()
	mRecoveries.Inc()

	// One scan settles the log: complete-record count, header epoch, and
	// repair of any torn tail.
	scan, err := wal.Replay(db.fs, db.path, true, func(wal.Record) error { return nil })
	if err != nil {
		if errors.Is(err, wal.ErrUnknownFormat) {
			// A legacy or foreign log file; Replay refused to touch it.
			return fmt.Errorf("%w: %w", ErrCorrupt, err)
		}
		return err
	}
	if scan.Truncated {
		db.recovery.TornTail = true
		mRecoveryTorn.Inc()
	}

	snap, haveSnap, snapErr := wal.ReadSnapshot(db.fs, db.snapPath)
	if snapErr != nil && !errors.Is(snapErr, wal.ErrSnapshotCorrupt) {
		return snapErr
	}

	var (
		use      wal.Snapshot
		haveUse  bool
		usedPrev bool
		skip     int
	)
	if haveSnap {
		var ok bool
		if skip, ok = snapCovers(snap, scan); !ok {
			return fmt.Errorf("%w: snapshot epoch %d does not cover log epoch %d (%d records)",
				ErrCorrupt, snap.Epoch, scan.Epoch, scan.Records)
		}
		use, haveUse = snap, true
	} else {
		prev, havePrev, prevErr := wal.ReadSnapshot(db.fs, db.prevSnapPath)
		switch {
		case havePrev:
			if snapErr != nil && !scan.HasEpoch {
				// The log carries no epoch, so nothing can prove which era
				// the fallback belongs to; restoring it could silently lose
				// the records the corrupt primary covered.
				return fmt.Errorf("%w: no log epoch to validate the fallback snapshot against: %w",
					ErrCorrupt, snapErr)
			}
			var ok bool
			if skip, ok = snapCovers(prev, scan); !ok {
				return fmt.Errorf("%w: fallback snapshot epoch %d does not cover log epoch %d",
					ErrCorrupt, prev.Epoch, scan.Epoch)
			}
			use, haveUse, usedPrev = prev, true, true
			db.recovery.UsedFallback = true
			mRecoveryFallback.Inc()
		case prevErr != nil:
			return fmt.Errorf("%w: no usable snapshot: %w", ErrCorrupt, errors.Join(snapErr, prevErr))
		default:
			if snapErr != nil {
				return fmt.Errorf("%w: %w", ErrCorrupt, snapErr)
			}
			// No snapshots at all: legitimate only for a log that has never
			// been truncated by a checkpoint.
			if scan.HasEpoch && scan.Epoch > 0 {
				return fmt.Errorf("%w: log is from checkpoint era %d but its snapshot is gone",
					ErrCorrupt, scan.Epoch)
			}
		}
	}

	if haveUse {
		if err := db.restoreSnapshot(use); err != nil {
			return err
		}
		db.recovery.SnapshotLoaded = true
		db.epoch = use.Epoch
	}
	if scan.HasEpoch {
		db.epoch = scan.Epoch
	}

	idx := 0
	if _, err := wal.Replay(db.fs, db.path, false, func(rec wal.Record) error {
		idx++
		if idx <= skip {
			return nil
		}
		return db.applyRecord(rec)
	}); err != nil {
		return err
	}
	db.recovery.LogRecords = scan.Records
	db.recovery.Replayed = scan.Records - skip
	db.recovery.Epoch = db.epoch
	mRecoveryReplayed.Add(uint64(scan.Records - skip))

	// Normalize: after a fallback promotion or a coverage change the on-disk
	// primary no longer matches what the next recovery must see.
	if haveUse && (usedPrev || skip != use.Records) {
		use.Records = skip
		if usedPrev {
			// The fallback slot holds the only good copy; overwrite the
			// corrupt or missing primary in place rather than rotating it
			// into that slot, so the fallback keeps protecting the primary.
			if err := wal.WriteSnapshot(db.fs, db.snapPath, use); err != nil {
				return err
			}
		} else if err := db.installSnapshot(use); err != nil {
			return err
		}
	}
	return nil
}

// installSnapshot rotates the current primary snapshot to the fallback name
// and atomically writes snap as the new primary. The rotation is what makes
// a corrupt primary survivable: until the next rotation overwrites it, the
// fallback preserves the last installed snapshot.
func (db *DB) installSnapshot(snap wal.Snapshot) error {
	if _, err := db.fs.Stat(db.snapPath); err == nil {
		if err := db.fs.Rename(db.snapPath, db.prevSnapPath); err != nil {
			return fmt.Errorf("tdb: rotating snapshot: %w", err)
		}
		if err := db.fs.SyncDir(db.snapPath); err != nil {
			return fmt.Errorf("tdb: rotating snapshot: %w", err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("tdb: rotating snapshot: %w", err)
	}
	return wal.WriteSnapshot(db.fs, db.snapPath, snap)
}

// restoreSnapshot loads a checkpoint into the empty database.
func (db *DB) restoreSnapshot(snap wal.Snapshot) error {
	for _, rs := range snap.Relations {
		rel, err := db.cat.Create(rs.Name, rs.Kind, rs.Event, rs.Schema)
		if err != nil {
			return err
		}
		if len(rs.Segments) > 0 {
			seg, ok := rel.Store().(core.Segmented)
			if !ok {
				return fmt.Errorf("restoring %q: %v store cannot hold segments", rs.Name, rs.Kind)
			}
			if seg.SegmentsDisabled() {
				// Flat-path ablation: materialize blocks row-wise so the
				// restored store really is unsegmented, not just non-pruning.
				var ferr error
				for _, g := range rs.Segments {
					g.Each(func(r segment.Row) bool {
						ferr = seg.RestoreVersion(Version{Data: r.Data, Valid: r.Valid, Trans: r.Trans})
						return ferr == nil
					})
					if ferr != nil {
						return fmt.Errorf("restoring %q: %w", rs.Name, ferr)
					}
				}
			} else {
				for _, g := range rs.Segments {
					if err := seg.RestoreSegment(g); err != nil {
						return fmt.Errorf("restoring %q: %w", rs.Name, err)
					}
				}
			}
		}
		for _, v := range rs.Versions {
			switch rs.Kind {
			case Static:
				st, _ := rel.Static()
				err = st.Insert(v.Data)
			case StaticRollback:
				st, _ := rel.Rollback()
				err = st.RestoreVersion(v)
			case Historical:
				st, _ := rel.Historical()
				if rs.Event {
					err = st.AssertAt(v.Data, v.Valid.From)
				} else {
					err = st.Assert(v.Data, v.Valid)
				}
			case Temporal:
				st, _ := rel.Temporal()
				err = st.RestoreVersion(v)
			}
			if err != nil {
				return fmt.Errorf("restoring %q: %w", rs.Name, err)
			}
		}
		// Versions were replayed through direct store calls (no bumps);
		// re-establish the persisted mutation counter so cache keys minted
		// before the checkpoint can never match post-recovery state.
		rel.Store().ObserveWriteVersion(rs.WriteVersion)
		if err := db.statsRestore(&rs); err != nil {
			return err
		}
	}
	return db.mgr.Clock().Observe(snap.LastCommit)
}

// Checkpoint writes a snapshot of the whole database and truncates the
// write-ahead log, bounding recovery time. It fails on in-memory
// databases. The snapshot preserves every stored version, including
// superseded ones — checkpointing never forgets history.
//
// Each checkpoint starts a new epoch: the snapshot records the era it
// begins and the truncated log carries the same era in its header, the
// proof recovery uses to pair them back up. The previous primary snapshot
// is rotated to path + ".snap.prev" rather than overwritten, so a crash —
// or later bit rot — anywhere in the installation leaves a provably
// consistent snapshot on disk.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.readOnly {
		// A follower's epochs belong to its primary: a local checkpoint
		// would fork the era sequence the stream cursor depends on.
		return fmt.Errorf("%w: checkpointing is the primary's job", ErrReadOnly)
	}
	if db.log == nil {
		return errors.New("tdb: checkpoint needs a log-backed database")
	}
	// Drain the group-commit queue first: holding db.mu blocks new
	// enqueues, so after the barrier the log's record count is exact. A
	// flush error belongs to the committers whose batch it covered (their
	// records were rolled back and never counted); the checkpoint itself
	// snapshots the in-memory state and proceeds either way.
	if db.gc != nil {
		_ = db.gc.Flush()
	}
	snap := wal.Snapshot{
		LastCommit: db.mgr.Clock().Last(),
		Epoch:      db.epoch + 1,
		Records:    db.log.Records(),
	}
	for _, name := range db.cat.Names() {
		rel, err := db.cat.Get(name)
		if err != nil {
			return wrapErr(err)
		}
		rs := wal.RelationSnapshot{
			Name:         name,
			Kind:         rel.Kind(),
			Event:        rel.Event(),
			Schema:       rel.Schema(),
			WriteVersion: rel.WriteVersion(),
		}
		if seg, ok := rel.Store().(core.Segmented); ok && !seg.SegmentsDisabled() {
			// Sealed segments ship as columnar blocks; only the unsealed
			// tail is written row-wise. Segments are immutable (apart from
			// transaction-time closures, serialized behind db.mu alongside
			// us), so referencing them here instead of copying is safe.
			rs.Segments = seg.Segments()
			seg.ScanTailVersions(func(v Version) bool {
				rs.Versions = append(rs.Versions, v)
				return true
			})
		} else {
			rel.Store().Versions(func(v Version) bool {
				rs.Versions = append(rs.Versions, v)
				return true
			})
		}
		if e, ok := db.stats[name]; ok {
			rs.Stats = stats.EncodeRel(e)
		}
		snap.Relations = append(snap.Relations, rs)
	}
	if err := db.installSnapshot(snap); err != nil {
		return err
	}
	if err := db.log.Truncate(snap.Epoch); err != nil {
		return err
	}
	db.epoch = snap.Epoch
	// Conservatively drop warm results: the checkpoint is the boundary a
	// subsequent restore resumes from, so a cache that straddles it could
	// otherwise mix pre- and post-recovery keyed entries.
	db.qc.Clear()
	// Normalize immediately: the truncated log has no covered prefix. Going
	// through the rotation again makes the fallback a same-era copy of the
	// primary, so even a primary that rots after this point stays
	// recoverable.
	snap.Records = 0
	if err := db.installSnapshot(snap); err != nil {
		return err
	}
	// Followers tailing the old era must learn about the rollover now, not
	// at the next append: their streams re-sync through the new snapshot.
	db.notifyRepl()
	return nil
}

// QueryCache returns the database's shared query result cache; nil-safe to
// use, and nil when caching is disabled (CacheBytes < 0 or
// TDB_CACHE_BYTES=0).
func (db *DB) QueryCache() *qcache.Cache { return db.qc }

// Close releases the database; further use returns ErrClosed. Close is
// idempotent and nil-safe: closing an already-closed database, or the nil
// *DB left by a failed Open, is a no-op — so `defer db.Close()` is always
// safe to write before checking Open's error.
func (db *DB) Close() error {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if db.gc != nil {
		// Drain in-flight commits before the log goes away; their waiters
		// hold no locks, so this cannot deadlock against us.
		db.gc.Close()
	}
	if db.log != nil {
		return db.log.Close()
	}
	return nil
}

// CreateRelation adds an interval relation of the given kind.
func (db *DB) CreateRelation(name string, kind Kind, sch *Schema) (*Relation, error) {
	return db.create(name, kind, false, sch)
}

// CreateEventRelation adds an event relation (a single valid-time instant
// per tuple, like the paper's 'promotion' relation). Only historical and
// temporal kinds can carry events.
func (db *DB) CreateEventRelation(name string, kind Kind, sch *Schema) (*Relation, error) {
	return db.create(name, kind, true, sch)
}

func (db *DB) create(name string, kind Kind, event bool, sch *Schema) (*Relation, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	if db.readOnly {
		return nil, fmt.Errorf("%w: create %q", ErrReadOnly, name)
	}
	rel, err := db.cat.Create(name, kind, event, sch)
	if err != nil {
		return nil, wrapErr(err)
	}
	// Catalog changes are logged at the last issued commit chronon rather
	// than consuming a new one, so that dated history (UpdateAt) can still
	// be loaded after creating relations.
	if err := db.logRecord(wal.Record{
		Commit: db.mgr.Clock().Last(),
		Ops: []wal.Op{{
			Code: wal.OpCreate, Rel: name, Kind: kind, Event: event, Schema: sch,
		}},
	}); err != nil {
		_ = db.cat.Drop(name)
		return nil, err
	}
	db.statsCreate(name, kind, event, sch)
	return &Relation{db: db, rel: rel}, nil
}

// DropRelation destroys a relation (schema-level destroy: the append-only
// discipline governs tuples within rollback/temporal relations, not the
// catalog).
func (db *DB) DropRelation(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.readOnly {
		return fmt.Errorf("%w: drop %q", ErrReadOnly, name)
	}
	if err := db.cat.Drop(name); err != nil {
		return wrapErr(err)
	}
	db.statsDrop(name)
	return db.logRecord(wal.Record{
		Commit: db.mgr.Clock().Last(),
		Ops:    []wal.Op{{Code: wal.OpDrop, Rel: name}},
	})
}

// Relation returns a handle to the named relation.
func (db *DB) Relation(name string) (*Relation, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	rel, err := db.cat.Get(name)
	if err != nil {
		return nil, wrapErr(err)
	}
	return &Relation{db: db, rel: rel}, nil
}

// Relations returns the sorted names of all relations.
func (db *DB) Relations() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.cat.Names()
}

// Now returns the chronon the database's clock would assign next; useful
// as the "current instant" for snapshot queries.
func (db *DB) Now() temporal.Chronon {
	last := db.mgr.Clock().Last()
	if last == temporal.Beginning {
		return 0
	}
	return last
}

// Stats summarizes the database for monitoring and tests.
type Stats struct {
	// Relations is the number of relations in the catalog.
	Relations int
	// Versions is the total number of stored versions across relations,
	// including superseded ones.
	Versions int
	// CurrentVersions counts only versions that are part of present belief.
	CurrentVersions int
	// WALRecords is the number of transaction records in the current log
	// file (0 for in-memory databases and right after a checkpoint).
	WALRecords int
	// LastCommit is the latest commit chronon issued.
	LastCommit temporal.Chronon
	// Epoch is the checkpoint era of the current log file.
	Epoch uint64
	// Recovery reports what Open's recovery pass found and repaired; zero
	// for in-memory databases.
	Recovery RecoveryInfo
	// ReadOnly reports follower mode: the database only advances by
	// applying its primary's replication stream.
	ReadOnly bool
	// Segments is the number of sealed columnar segments across all
	// append-only relations; SealedRows and TailRows split their version
	// counts into the immutable and mutable parts.
	Segments   int
	SealedRows int
	TailRows   int
}

// Stats returns a snapshot of database-wide counters.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := Stats{
		Relations:  db.cat.Len(),
		LastCommit: db.mgr.Clock().Last(),
		Epoch:      db.epoch,
		Recovery:   db.recovery,
		ReadOnly:   db.readOnly,
	}
	if db.log != nil {
		s.WALRecords = db.log.Records()
	}
	for _, name := range db.cat.Names() {
		rel, err := db.cat.Get(name)
		if err != nil {
			continue
		}
		rel.Store().Versions(func(v Version) bool {
			s.Versions++
			if v.Current() {
				s.CurrentVersions++
			}
			return true
		})
		if seg, ok := rel.Store().(core.Segmented); ok {
			st := seg.SegmentStats()
			s.Segments += st.Segments
			s.SealedRows += st.SealedRows
			s.TailRows += st.TailRows
		}
	}
	return s
}

// Update runs fn in a serialized transaction stamped with the next commit
// chronon. All mutations performed through the Tx commit atomically; an
// error (or panic) rolls every enlisted relation back and nothing is
// logged.
func (db *DB) Update(fn func(tx *Tx) error) error {
	return db.update(nil, fn)
}

// UpdateAt is Update with an explicit commit chronon, for loading dated
// history (the figure harness replays the paper's transactions this way).
// The chronon must not precede any previously committed one.
func (db *DB) UpdateAt(at temporal.Chronon, fn func(tx *Tx) error) error {
	return db.update(&at, fn)
}

func (db *DB) update(at *temporal.Chronon, fn func(tx *Tx) error) error {
	// Commit in memory and enqueue the record under db.mu — queue order is
	// flush order, so the WAL stays in commit order — but wait for
	// durability after releasing it. That wait outside the lock is what
	// lets concurrent committers pile onto the group-commit leader's next
	// flush instead of serializing one fsync each.
	pending, err := func() (*wal.Pending, error) {
		db.mu.Lock()
		defer db.mu.Unlock()
		if db.closed {
			return nil, ErrClosed
		}
		if db.readOnly {
			return nil, fmt.Errorf("%w: update", ErrReadOnly)
		}
		var rec *wal.Record
		wrap := func(itx *txn.Tx) error {
			tx := &Tx{db: db, itx: itx}
			if err := fn(tx); err != nil {
				return err
			}
			if len(tx.ops) > 0 {
				rec = &wal.Record{Commit: itx.At(), Ops: tx.ops}
			}
			return nil
		}
		var err error
		if at != nil {
			err = db.mgr.UpdateAt(*at, wrap)
		} else {
			err = db.mgr.Update(wrap)
		}
		if err != nil {
			return nil, err
		}
		if rec != nil {
			db.statsApply(rec.Commit, rec.Ops)
			if db.gc != nil && !db.replay {
				return db.gc.Enqueue(*rec), nil
			}
		}
		return nil, nil
	}()
	if err != nil {
		return err
	}
	if pending != nil {
		if err := pending.Wait(); err != nil {
			// The in-memory commit succeeded but durability failed; surface
			// loudly. (A production system would block further commits.)
			return fmt.Errorf("tdb: committed but not logged: %w", err)
		}
	}
	return nil
}

// logRecord durably logs one record through the group committer, waiting
// inline. Callers hold db.mu (safe: the leader needs no database lock).
func (db *DB) logRecord(rec wal.Record) error {
	if db.gc == nil || db.replay {
		return nil
	}
	return db.gc.Commit(rec)
}

// applyRecord replays one WAL record during recovery or follower apply.
func (db *DB) applyRecord(rec wal.Record) error {
	for _, op := range rec.Ops {
		if err := db.applyOp(rec.Commit, op); err != nil {
			return fmt.Errorf("replaying %s on %q: %w", op.Code, op.Rel, err)
		}
	}
	db.statsApply(rec.Commit, rec.Ops)
	return nil
}

func (db *DB) applyOp(commit temporal.Chronon, op wal.Op) error {
	switch op.Code {
	case wal.OpCreate:
		_, err := db.cat.Create(op.Rel, op.Kind, op.Event, op.Schema)
		if err == nil {
			err = db.mgr.Clock().Observe(commit)
		}
		return err
	case wal.OpDrop:
		if err := db.cat.Drop(op.Rel); err != nil {
			return err
		}
		return db.mgr.Clock().Observe(commit)
	}
	rel, err := db.cat.Get(op.Rel)
	if err != nil {
		return err
	}
	return db.mgr.UpdateAt(commit, func(itx *txn.Tx) error {
		tr := &TxRel{tx: &Tx{db: db, itx: itx}, rel: rel}
		switch op.Code {
		case wal.OpInsert:
			return tr.Insert(op.Tuple)
		case wal.OpDelete:
			return tr.Delete(op.Key)
		case wal.OpReplace:
			return tr.Replace(op.Key, op.Tuple)
		case wal.OpAssert:
			return tr.Assert(op.Tuple, op.Valid.From, op.Valid.To)
		case wal.OpRetract:
			return tr.Retract(op.Key, op.Valid.From, op.Valid.To)
		case wal.OpAssertAt:
			return tr.AssertAt(op.Tuple, op.At)
		case wal.OpRetractAt:
			return tr.RetractAt(op.Key, op.At)
		default:
			return fmt.Errorf("tdb: unknown op %v in log", op.Code)
		}
	})
}
