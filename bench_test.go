package tdb_test

// The benchmark harness regenerates every table and figure of the paper
// (BenchmarkFigure01 ... BenchmarkFigure13) and quantifies the design
// claims the paper makes qualitatively:
//
//   - A1: full-state copying vs tuple timestamping ("impractical, due to
//     excessive duplication") — BenchmarkAblationCopyVsStamped*
//   - A3: rollback cost vs history depth, with and without the interval
//     index — BenchmarkAsOfDepth*, BenchmarkAblationIntervalIndex*
//   - A4: query-language overhead — BenchmarkTQuelVsAPI*
//
// plus throughput baselines for every store kind. EXPERIMENTS.md records
// the measured shapes against the paper's statements.

import (
	"fmt"
	"io"
	"log"
	"sync"
	"testing"

	"tdb"
	"tdb/internal/core"
	"tdb/internal/dataset"
	"tdb/internal/figures"
	"tdb/internal/obs"
	"tdb/internal/segment"
	"tdb/temporal"
	"tdb/tquel"
)

// --- Figure regeneration benches (one per paper artifact) ---

func benchFigure(b *testing.B, fn func(db *tdb.DB) (string, error)) {
	b.Helper()
	db, err := figures.PaperDB()
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fn(db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure01(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := figures.Figure1(); out == "" {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure02(b *testing.B) { benchFigure(b, figures.Figure2) }
func BenchmarkFigure03(b *testing.B) { benchFigure(b, figures.Figure3) }
func BenchmarkFigure04(b *testing.B) { benchFigure(b, figures.Figure4) }
func BenchmarkFigure05(b *testing.B) { benchFigure(b, figures.Figure5) }
func BenchmarkFigure06(b *testing.B) { benchFigure(b, figures.Figure6) }
func BenchmarkFigure07(b *testing.B) { benchFigure(b, figures.Figure7) }
func BenchmarkFigure08(b *testing.B) { benchFigure(b, figures.Figure8) }
func BenchmarkFigure09(b *testing.B) { benchFigure(b, figures.Figure9) }

func BenchmarkFigure10to12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.Figures10to12(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := figures.Figure13(); out == "" {
			b.Fatal("empty figure")
		}
	}
}

// --- A1: the naive representation the paper rejects ---

// BenchmarkAblationCopyVsStamped loads the same generated history into the
// tuple-timestamped rollback store and into the full-state-copy store of
// Figure 3, across increasing history depth. The reported
// tuple-copies/event metric is the paper's "excessive duplication" made
// measurable: it grows linearly with entity count for the copy store and
// stays at ~1 for the timestamped store.
func BenchmarkAblationCopyVsStamped(b *testing.B) {
	for _, versions := range []int{4, 16, 64} {
		cfg := dataset.DefaultConfig()
		cfg.Entities = 50
		cfg.VersionsPerEntity = versions
		events := dataset.History(cfg)
		b.Run(fmt.Sprintf("stamped/versions=%d", versions), func(b *testing.B) {
			var stored int
			for i := 0; i < b.N; i++ {
				s := core.NewRollbackStore(dataset.Schema())
				if err := dataset.LoadRollback(s, events); err != nil {
					b.Fatal(err)
				}
				stored = s.VersionCount()
			}
			b.ReportMetric(float64(stored)/float64(len(events)), "copies/event")
		})
		b.Run(fmt.Sprintf("copy/versions=%d", versions), func(b *testing.B) {
			var stored int
			for i := 0; i < b.N; i++ {
				s := core.NewCopyRollbackStore(dataset.Schema())
				if err := dataset.LoadCopyRollback(s, events); err != nil {
					b.Fatal(err)
				}
				stored = s.TupleCopies()
			}
			b.ReportMetric(float64(stored)/float64(len(events)), "copies/event")
		})
	}
}

// --- A3: rollback cost vs history depth ---

func loadedRollback(b *testing.B, versions int) (*core.RollbackStore, []temporal.Chronon) {
	b.Helper()
	cfg := dataset.DefaultConfig()
	cfg.Entities = 100
	cfg.VersionsPerEntity = versions
	events := dataset.History(cfg)
	s := core.NewRollbackStore(dataset.Schema())
	if err := dataset.LoadRollback(s, events); err != nil {
		b.Fatal(err)
	}
	return s, dataset.Commits(events)
}

// BenchmarkAsOfDepth measures the rollback (as of) query as history
// accumulates, through the interval index: cost tracks answer size, not
// total history.
func BenchmarkAsOfDepth(b *testing.B) {
	for _, versions := range []int{8, 32, 128} {
		s, commits := loadedRollback(b, versions)
		probe := commits[len(commits)/2]
		b.Run(fmt.Sprintf("versions=%d", versions), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := s.AsOf(probe); len(got) == 0 {
					b.Fatal("empty rollback state")
				}
			}
		})
	}
}

// BenchmarkAblationIntervalIndex compares the indexed stabbing query with
// the linear scan it replaces, at fixed history depth.
func BenchmarkAblationIntervalIndex(b *testing.B) {
	s, commits := loadedRollback(b, 128)
	probe := commits[len(commits)/2]
	b.Run("indexed", func(b *testing.B) {
		s.DisableIntervalIndex(false)
		for i := 0; i < b.N; i++ {
			s.AsOf(probe)
		}
	})
	b.Run("linear", func(b *testing.B) {
		s.DisableIntervalIndex(true)
		for i := 0; i < b.N; i++ {
			s.AsOf(probe)
		}
		b.Cleanup(func() { s.DisableIntervalIndex(false) })
	})
}

// --- Store mutation throughput, one lane per taxonomy kind ---

func BenchmarkStoreLoad(b *testing.B) {
	cfg := dataset.DefaultConfig()
	cfg.Entities = 100
	cfg.VersionsPerEntity = 10
	events := dataset.History(cfg)
	b.Run("static", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := core.NewStaticStore(dataset.Schema())
			if err := dataset.LoadStatic(s, events); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rollback", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := core.NewRollbackStore(dataset.Schema())
			if err := dataset.LoadRollback(s, events); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("historical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := core.NewHistoricalStore(dataset.Schema())
			if err := dataset.LoadHistorical(s, events); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("temporal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := core.NewTemporalStore(dataset.Schema())
			if err := dataset.LoadTemporal(s, events); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Bitemporal point queries ---

func BenchmarkBitemporalQueries(b *testing.B) {
	cfg := dataset.DefaultConfig()
	events := dataset.History(cfg)
	s := core.NewTemporalStore(dataset.Schema())
	if err := dataset.LoadTemporal(s, events); err != nil {
		b.Fatal(err)
	}
	mid := dataset.MidCommit(events)
	b.Run("asof", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.AsOf(mid)
		}
	})
	b.Run("timeslice", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.TimeSlice(mid, mid)
		}
	})
	b.Run("current-slice", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.Snapshot(mid)
		}
	})
}

// --- A4: TQuel overhead over the direct API ---

func BenchmarkTQuelVsAPI(b *testing.B) {
	db, err := figures.PaperDB()
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	d821205 := temporal.Date(1982, 12, 5)
	d821210 := temporal.Date(1982, 12, 10)

	b.Run("api", func(b *testing.B) {
		rel, err := db.Relation("faculty")
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			res, err := rel.Query().AsOf(d821210).At(d821205).
				WhereEq("name", tdb.String("Merrie")).Run()
			if err != nil || res.Len() != 1 {
				b.Fatalf("result %v, %v", res, err)
			}
		}
	})
	b.Run("tquel", func(b *testing.B) {
		ses := tquel.NewSession(db)
		if _, err := ses.Exec("range of f1 is faculty\nrange of f2 is faculty"); err != nil {
			b.Fatal(err)
		}
		const q = `retrieve (f1.rank)
			where f1.name = "Merrie" and f2.name = "Tom"
			when f1 overlap start of f2
			as of "12/10/82"`
		for i := 0; i < b.N; i++ {
			res, err := ses.Query(q)
			if err != nil || res.Len() != 1 {
				b.Fatalf("result %v, %v", res, err)
			}
		}
	})
	b.Run("tquel-parse-only", func(b *testing.B) {
		const q = `retrieve (f1.rank)
			where f1.name = "Merrie" and f2.name = "Tom"
			when f1 overlap start of f2
			as of "12/10/82"`
		for i := 0; i < b.N; i++ {
			if _, err := tquel.Parse(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- End-to-end transactional write path (facade + journal + commit) ---

func BenchmarkFacadeUpdate(b *testing.B) {
	db, err := tdb.Open("", tdb.Options{Clock: temporal.NewTickingClock(0)})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	sch, err := tdb.NewSchema(tdb.Attr("name", tdb.StringKind), tdb.Attr("rank", tdb.StringKind))
	if err != nil {
		b.Fatal(err)
	}
	if sch, err = sch.WithKey("name"); err != nil {
		b.Fatal(err)
	}
	if _, err := db.CreateRelation("r", tdb.Temporal, sch); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("e%d", i%1000)
		err := db.Update(func(tx *tdb.Tx) error {
			h, err := tx.Rel("r")
			if err != nil {
				return err
			}
			return h.Assert(tdb.NewTuple(tdb.String(name), tdb.String("x")),
				tx.At(), temporal.Forever)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Key-index point lookups vs full scans (facade fast path) ---

func BenchmarkKeyLookupVsScan(b *testing.B) {
	db, err := tdb.Open("", tdb.Options{Clock: temporal.NewTickingClock(0)})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	sch, err := tdb.NewSchema(tdb.Attr("name", tdb.StringKind), tdb.Attr("rank", tdb.StringKind))
	if err != nil {
		b.Fatal(err)
	}
	if sch, err = sch.WithKey("name"); err != nil {
		b.Fatal(err)
	}
	rel, err := db.CreateRelation("r", tdb.Temporal, sch)
	if err != nil {
		b.Fatal(err)
	}
	const entities = 5000
	for i := 0; i < entities; i++ {
		name := fmt.Sprintf("e%05d", i)
		if err := db.Update(func(tx *tdb.Tx) error {
			h, err := tx.Rel("r")
			if err != nil {
				return err
			}
			return h.Assert(tdb.NewTuple(tdb.String(name), tdb.String("x")), tx.At(), temporal.Forever)
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("key-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			name := fmt.Sprintf("e%05d", i%entities)
			res, err := rel.Query().WhereEq("name", tdb.String(name)).Run()
			if err != nil || res.Len() != 1 {
				b.Fatalf("%v, %v", res, err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			name := fmt.Sprintf("e%05d", i%entities)
			res, err := rel.Query().Where(func(t tdb.Tuple) (bool, error) {
				return t[0].Str() == name, nil
			}).Run()
			if err != nil || res.Len() != 1 {
				b.Fatalf("%v, %v", res, err)
			}
		}
	})
}

// --- Observability hook overhead (PR: obs subsystem) ---

// BenchmarkTracerOverhead pairs identical TQuel query workloads with and
// without a tracer installed. The nil-tracer variant is the production
// default and must stay within noise of the pre-instrumentation baseline
// (the hooks are one nil check per phase plus four atomic adds per
// statement); the registry-tracer variant prices full per-phase span
// aggregation. EXPERIMENTS.md records the measured ratio.
func BenchmarkTracerOverhead(b *testing.B) {
	db, err := figures.PaperDB()
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const q = `retrieve (f1.rank)
		where f1.name = "Merrie" and f2.name = "Tom"
		when f1 overlap start of f2
		as of "12/10/82"`
	bench := func(b *testing.B, tracer obs.Tracer) {
		ses := tquel.NewSession(db)
		ses.SetTracer(tracer)
		if _, err := ses.Exec("range of f1 is faculty\nrange of f2 is faculty"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := ses.Query(q)
			if err != nil || res.Len() != 1 {
				b.Fatalf("result %v, %v", res, err)
			}
		}
	}
	b.Run("nil-tracer", func(b *testing.B) { bench(b, nil) })
	b.Run("registry-tracer", func(b *testing.B) {
		bench(b, obs.NewRegistryTracer(obs.NewRegistry(), "bench"))
	})
	b.Run("log-tracer", func(b *testing.B) {
		bench(b, obs.NewLogTracer(log.New(io.Discard, "", 0)))
	})
}

// --- Columnar segments: selective scans over a million-version history ---

// seg1M lazily builds two temporal stores over the identical 1M-event
// history: one sealing into columnar segments at the default threshold
// (per-event transactions, so seals land on commit boundaries exactly as
// they do under DB.Update), one pinned to the flat row log. Shared across
// the 1M benchmarks because the load costs seconds.
var seg1M struct {
	once    sync.Once
	seg     *core.TemporalStore
	flat    *core.TemporalStore
	commits []temporal.Chronon
	err     error
}

func loadSeg1M(b *testing.B) (seg, flat *core.TemporalStore, commits []temporal.Chronon) {
	b.Helper()
	seg1M.once.Do(func() {
		cfg := dataset.DefaultConfig()
		cfg.Entities = 1000
		cfg.VersionsPerEntity = 1000 // 1M events
		// Open valid periods only: every update supersedes its
		// predecessor, so superseded history really is superseded and the
		// transaction-time zone maps can retire whole segments. (Bounded
		// periods accumulate permanently-current rows in every segment,
		// which caps as-of pruning at the probe's upper side.)
		cfg.BoundedFraction = 0
		events := dataset.History(cfg)
		build := func(disable bool) (*core.TemporalStore, error) {
			s := core.NewTemporalStore(dataset.Schema())
			s.DisableSegments(disable)
			for _, e := range events {
				s.BeginTxn()
				var err error
				if e.Assert {
					err = s.Assert(e.Tuple(), e.Valid, e.Commit)
				} else if err = s.Retract(e.Key(), e.Valid, e.Commit); err == core.ErrNoSuchTuple {
					err = nil
				}
				if err != nil {
					s.AbortTxn()
					return nil, err
				}
				s.CommitTxn()
			}
			return s, nil
		}
		if seg1M.seg, seg1M.err = build(false); seg1M.err != nil {
			return
		}
		if seg1M.flat, seg1M.err = build(true); seg1M.err != nil {
			return
		}
		if seg1M.seg.SegmentStats().Segments == 0 {
			seg1M.err = fmt.Errorf("1M fixture sealed no segments")
			return
		}
		seg1M.commits = dataset.Commits(events)
	})
	if seg1M.err != nil {
		b.Fatal(seg1M.err)
	}
	return seg1M.seg, seg1M.flat, seg1M.commits
}

// seg1MArms enumerates the four measured storage/index combinations. The
// (index off, segments on) arm isolates zone-map pruning: the interval
// index is bypassed and the scan leans on segment metadata alone.
func seg1MArms(seg, flat *core.TemporalStore) []struct {
	name string
	s    *core.TemporalStore
	idx  bool
} {
	return []struct {
		name string
		s    *core.TemporalStore
		idx  bool
	}{
		{"flat", flat, false},
		{"flat+index", flat, true},
		{"segments", seg, false},
		{"segments+index", seg, true},
	}
}

// BenchmarkAsOf1M probes a rollback (as of) state 0.1% into a one-million
// version history — the selective scan the segment metadata exists for.
// The flat arm walks every version; the segments arm stops at the upper
// commit-order cut (binary search within the one segment containing the
// probe) without touching the other 99.9%. The early probe also keeps the
// answer set (~1k versions) small enough that per-op materialization cost
// doesn't drown the scan being measured.
func BenchmarkAsOf1M(b *testing.B) {
	seg, flat, commits := loadSeg1M(b)
	probe := commits[len(commits)/1000]
	for _, arm := range seg1MArms(seg, flat) {
		b.Run(arm.name, func(b *testing.B) {
			arm.s.DisableIntervalIndex(!arm.idx)
			defer arm.s.DisableIntervalIndex(false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(arm.s.AsOf(probe)) == 0 {
					b.Fatal("empty as-of state")
				}
			}
		})
	}
}

// BenchmarkOverlap1M scans for versions whose transaction period overlaps
// a narrow early window (as of E1 through E2) over the same history.
func BenchmarkOverlap1M(b *testing.B) {
	seg, flat, commits := loadSeg1M(b)
	w := temporal.Interval{From: commits[len(commits)/1000], To: commits[len(commits)/1000+200]}
	for _, arm := range seg1MArms(seg, flat) {
		b.Run(arm.name, func(b *testing.B) {
			arm.s.DisableIntervalIndex(!arm.idx)
			defer arm.s.DisableIntervalIndex(false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(arm.s.During(w)) == 0 {
					b.Fatal("empty overlap window")
				}
			}
		})
	}
}

// BenchmarkSegmentSeal prices freezing one default-threshold tail into a
// columnar segment: dictionary encoding, zone maps, and the key bloom for
// 8192 rows. This is the cost a commit pays when it trips the threshold.
func BenchmarkSegmentSeal(b *testing.B) {
	cfg := dataset.DefaultConfig()
	cfg.Entities = 128
	cfg.VersionsPerEntity = 64 // 8192 rows = segment.DefaultSealRows
	events := dataset.History(cfg)
	rows := make([]segment.Row, len(events))
	for i, e := range events {
		rows[i] = segment.Row{
			Data:    e.Tuple(),
			Valid:   e.Valid,
			Trans:   temporal.Since(e.Commit),
			KeyHash: e.Key().Hash64(),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lg := segment.NewLog(dataset.Schema())
		lg.SetDisabled(false)
		for _, r := range rows {
			lg.Append(r)
		}
		if !lg.SealNow() {
			b.Fatal("tail did not seal")
		}
	}
	b.ReportMetric(float64(len(rows)), "rows/seal")
}
