package tdb

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"tdb/temporal"
)

// The key-lookup fast path must be indistinguishable from the scan path for
// every kind, predicate mix, and random workload.
func TestKeyLookupEquivalence(t *testing.T) {
	db := memDB(t)
	sch := facultySchema(t)
	kinds := []Kind{Static, StaticRollback, Historical, Temporal}
	for _, k := range kinds {
		if _, err := db.CreateRelation("kl_"+k.String(), k, sch); err != nil {
			t.Fatal(err)
		}
	}
	r := rand.New(rand.NewSource(99))
	names := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < 200; i++ {
		name := names[r.Intn(len(names))]
		rank := fmt.Sprint(r.Intn(4))
		err := db.Update(func(tx *Tx) error {
			for _, k := range kinds {
				h, err := tx.Rel("kl_" + k.String())
				if err != nil {
					return err
				}
				switch {
				case !k.SupportsHistorical():
					if err := h.Insert(fac(name, rank)); errors.Is(err, ErrDuplicateKey) {
						if err := h.Replace(Key(String(name)), fac(name, rank)); err != nil {
							return err
						}
					} else if err != nil {
						return err
					}
				default:
					from := temporal.Chronon(r.Intn(200))
					if err := h.Assert(fac(name, rank), from, from+temporal.Chronon(1+r.Intn(100))); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range kinds {
		rel, err := db.Relation("kl_" + k.String())
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range append(names, "ghost") {
			// Fast path: WhereEq on the full key.
			fast, err := rel.Query().WhereEq("name", String(name)).Run()
			if err != nil {
				t.Fatal(err)
			}
			// Scan path: equivalent opaque predicate.
			slow, err := rel.Query().Where(func(tp Tuple) (bool, error) {
				return tp[0].Str() == name, nil
			}).Run()
			if err != nil {
				t.Fatal(err)
			}
			if fast.String() != slow.String() {
				t.Fatalf("%v key %q:\nfast:\n%s\nslow:\n%s", k, name, fast, slow)
			}
			// With an extra non-key predicate stacked on top.
			fast2, err := rel.Query().WhereEq("name", String(name)).
				WhereEq("rank", String("2")).Run()
			if err != nil {
				t.Fatal(err)
			}
			slow2, err := rel.Query().Where(func(tp Tuple) (bool, error) {
				return tp[0].Str() == name && tp[1].Str() == "2", nil
			}).Run()
			if err != nil {
				t.Fatal(err)
			}
			if fast2.String() != slow2.String() {
				t.Fatalf("%v stacked predicates diverge", k)
			}
		}
	}
}

// WhereEq on a non-key attribute must not engage the fast path (and must
// still work).
func TestKeyLookupNonKeyAttr(t *testing.T) {
	db := memDB(t)
	rel := loadFaculty(t, db)
	res, err := rel.Query().WhereEq("rank", String("associate")).Run()
	if err != nil {
		t.Fatal(err)
	}
	// Current belief: Merrie associate [09/01/77,12/01/82) and Tom.
	if res.Len() != 2 {
		t.Fatalf("non-key eq:\n%s", res)
	}
}

// WhereEq combined with AsOf must take the scan path and stay correct.
func TestKeyLookupWithAsOf(t *testing.T) {
	db := memDB(t)
	rel := loadFaculty(t, db)
	res, err := rel.Query().AsOf(d821210).WhereEq("name", String("Merrie")).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Tuples()[0][1].Str() != "associate" {
		t.Fatalf("as-of + key eq:\n%s", res)
	}
}

func TestWhereEqUnknownAttribute(t *testing.T) {
	db := memDB(t)
	rel := loadFaculty(t, db)
	if _, err := rel.Query().WhereEq("salary", Int(1)).Run(); err == nil {
		t.Fatal("unknown attribute must error")
	}
}
