package tdb

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"tdb/temporal"
)

func reopen(t *testing.T, path string) *DB {
	t.Helper()
	db, err := Open(path, Options{Clock: temporal.NewLogicalClock(temporal.Date(1985, 1, 1))})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// Full durability round trip: the paper's faculty history survives close
// and reopen bit-for-bit, including superseded versions and rollback
// answers.
func TestRecoveryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := reopen(t, path)
	loadFaculty(t, db)

	queryRank := func(db *DB, asOf temporal.Chronon) string {
		rel, err := db.Relation("faculty")
		if err != nil {
			t.Fatal(err)
		}
		res, err := rel.Query().AsOf(asOf).At(d821205).WhereEq("name", String("Merrie")).Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 1 {
			t.Fatalf("result: %s", res)
		}
		return res.Tuples()[0][1].Str()
	}
	beforeVersions := func(db *DB) int {
		rel, err := db.Relation("faculty")
		if err != nil {
			t.Fatal(err)
		}
		return rel.VersionCount()
	}

	wantAssoc, wantFull := queryRank(db, d821210), queryRank(db, d821220)
	if wantAssoc != "associate" || wantFull != "full" {
		t.Fatalf("pre-close answers: %s, %s", wantAssoc, wantFull)
	}
	nv := beforeVersions(db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := reopen(t, path)
	if got := beforeVersions(db2); got != nv {
		t.Fatalf("version count after recovery = %d, want %d", got, nv)
	}
	if got := queryRank(db2, d821210); got != "associate" {
		t.Errorf("as of 12/10 after recovery = %s", got)
	}
	if got := queryRank(db2, d821220); got != "full" {
		t.Errorf("as of 12/20 after recovery = %s", got)
	}
	// And the database continues accepting updates.
	if err := db2.Update(func(tx *Tx) error {
		f, _ := tx.Rel("faculty")
		return f.Assert(fac("Anna", "assistant"), tx.At(), temporal.Forever)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryOfCatalogOps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := reopen(t, path)
	if _, err := db.CreateRelation("keep", Historical, facultySchema(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateEventRelation("events", Temporal, facultySchema(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelation("gone", Static, facultySchema(t)); err != nil {
		t.Fatal(err)
	}
	if err := db.DropRelation("gone"); err != nil {
		t.Fatal(err)
	}
	keep, _ := db.Relation("keep")
	if err := keep.Assert(fac("A", "x"), 10, 20); err != nil {
		t.Fatal(err)
	}
	ev, _ := db.Relation("events")
	if err := ev.AssertAt(fac("B", "y"), 42); err != nil {
		t.Fatal(err)
	}
	if err := ev.RetractAt(Key(String("B")), 42); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2 := reopen(t, path)
	names := db2.Relations()
	if len(names) != 2 || names[0] != "events" || names[1] != "keep" {
		t.Fatalf("relations after recovery = %v", names)
	}
	keep2, _ := db2.Relation("keep")
	hist, err := keep2.History(Key(String("A")))
	if err != nil || len(hist) != 1 {
		t.Fatalf("history after recovery = %v, %v", hist, err)
	}
	ev2, _ := db2.Relation("events")
	if !ev2.Event() || ev2.Kind() != Temporal {
		t.Errorf("event relation metadata lost: kind=%v event=%v", ev2.Kind(), ev2.Event())
	}
	// The retracted event is superseded but still recorded (append-only).
	if got := ev2.VersionCount(); got != 1 {
		t.Errorf("event versions = %d", got)
	}
	vs := ev2.Versions()
	if vs[0].Current() {
		t.Error("retracted event still current after recovery")
	}
}

// A transaction that aborts must leave nothing in the log: after reopen the
// aborted work is absent.
func TestAbortedTxnNotLogged(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := reopen(t, path)
	if _, err := db.CreateRelation("r", Temporal, facultySchema(t)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := db.Update(func(tx *Tx) error {
		h, _ := tx.Rel("r")
		if err := h.Assert(fac("X", "x"), 0, temporal.Forever); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	db.Close()
	db2 := reopen(t, path)
	r, _ := db2.Relation("r")
	if r.VersionCount() != 0 {
		t.Fatalf("aborted txn recovered: %d versions", r.VersionCount())
	}
}

// Torn tail: corrupt the file mid-way; reopen must recover the intact
// prefix and keep working.
func TestRecoveryFromTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := reopen(t, path)
	rel, err := db.CreateRelation("r", StaticRollback, facultySchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.Insert(fac("A", "x")); err != nil {
		t.Fatal(err)
	}
	if err := rel.Insert(fac("B", "y")); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// Tear off the last 3 bytes, simulating a crash mid-append.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	db2 := reopen(t, path)
	r2, err := db2.Relation("r")
	if err != nil {
		t.Fatal(err)
	}
	// The second insert was torn away; the first survives.
	if _, ok, _ := r2.Get(Key(String("A"))); !ok {
		t.Error("first insert lost")
	}
	if _, ok, _ := r2.Get(Key(String("B"))); ok {
		t.Error("torn insert resurrected")
	}
	// New writes append cleanly after the repair.
	if err := r2.Insert(fac("C", "z")); err != nil {
		t.Fatal(err)
	}
	db2.Close()
	db3 := reopen(t, path)
	r3, _ := db3.Relation("r")
	if _, ok, _ := r3.Get(Key(String("C"))); !ok {
		t.Error("post-repair insert lost")
	}
}

// Empty transactions (no ops) write nothing to the log.
func TestEmptyTxnNotLogged(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := reopen(t, path)
	if err := db.Update(func(tx *Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	db.Close()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Errorf("empty txn wrote %d bytes", fi.Size())
	}
}
