// Versioning: engineering release tracking — the paper's other §2
// motivating example ("release dates of engineering versions"). An event
// relation records releases; a user-defined time attribute carries the
// date printed on the release notes, distinct from both the release event
// (valid time) and the moment the record entered the database (transaction
// time) — exactly Figure 9's three-times-on-one-row structure.
package main

import (
	"fmt"
	"log"

	"tdb"
	"tdb/temporal"
)

func main() {
	clock := temporal.NewLogicalClock(0)
	db, err := tdb.Open("", tdb.Options{Clock: clock})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	sch, err := tdb.NewSchema(
		tdb.Attr("component", tdb.StringKind),
		tdb.Attr("version", tdb.StringKind),
		tdb.Attr("notes_date", tdb.InstantKind), // user-defined time
	)
	if err != nil {
		log.Fatal(err)
	}
	if sch, err = sch.WithKey("component"); err != nil {
		log.Fatal(err)
	}
	releases, err := db.CreateEventRelation("releases", tdb.Temporal, sch)
	if err != nil {
		log.Fatal(err)
	}

	rec := func(recorded, released, notes, component, version string) {
		err := db.UpdateAt(temporal.MustParse(recorded), func(tx *tdb.Tx) error {
			r, _ := tx.Rel("releases")
			return r.AssertAt(tdb.NewTuple(
				tdb.String(component), tdb.String(version),
				tdb.Instant(temporal.MustParse(notes)),
			), temporal.MustParse(released))
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// The scheduler released compiler v2.0 on 03/15/84; the release notes
	// are dated 03/01/84; the record was entered 03/20/84.
	rec("03/20/84", "03/15/84", "03/01/84", "compiler", "2.0")
	// A scheduled release that was entered ahead of time (postactive).
	rec("04/01/84", "05/01/84", "04/15/84", "linker", "1.3")
	// An erroneous record, corrected later: v2.1 was entered as released
	// 06/01/84, but actually slipped to 06/10/84.
	rec("05/28/84", "06/01/84", "05/20/84", "compiler", "2.1")
	if err := db.UpdateAt(temporal.MustParse("06/12/84"), func(tx *tdb.Tx) error {
		r, _ := tx.Rel("releases")
		if err := r.RetractAt(tdb.Key(tdb.String("compiler")), temporal.MustParse("06/01/84")); err != nil {
			return err
		}
		return r.AssertAt(tdb.NewTuple(
			tdb.String("compiler"), tdb.String("2.1"),
			tdb.Instant(temporal.MustParse("05/20/84")),
		), temporal.MustParse("06/10/84"))
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("current release history (three times per row):")
	fmt.Println("component  version  notes date  released    recorded")
	for _, v := range releases.Versions() {
		if !v.Current() {
			continue
		}
		fmt.Printf("%-10s %-8s %-11v %-11v %v\n",
			v.Data[0], v.Data[1], v.Data[2], v.Valid.From, v.Trans.From)
	}

	// What did the schedule look like on 06/05/84, before the slip was
	// recorded?
	res, err := releases.Query().AsOf(temporal.MustParse("06/05/84")).
		Where(func(t tdb.Tuple) (bool, error) { return t[1].Str() == "2.1", nil }).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nv2.1's release date as believed on 06/05/84 (before the slip was known):")
	fmt.Println(res)

	res, err = releases.Query().
		Where(func(t tdb.Tuple) (bool, error) { return t[1].Str() == "2.1", nil }).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("v2.1's release date as known today:")
	fmt.Println(res)
}
