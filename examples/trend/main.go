// Trend: the paper's §4.1 trend-analysis question — "How did the number of
// faculty change over the last 5 years?" — which a static database cannot
// answer. A historical relation answers it with a time-slice count per
// probe instant; the program renders the head-count series as a small
// text chart.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"tdb"
	"tdb/temporal"
)

func main() {
	db, err := tdb.Open("", tdb.Options{Clock: temporal.NewLogicalClock(0)})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	sch, err := tdb.NewSchema(
		tdb.Attr("name", tdb.StringKind),
		tdb.Attr("rank", tdb.StringKind),
	)
	if err != nil {
		log.Fatal(err)
	}
	if sch, err = sch.WithKey("name"); err != nil {
		log.Fatal(err)
	}
	faculty, err := db.CreateRelation("faculty", tdb.Historical, sch)
	if err != nil {
		log.Fatal(err)
	}

	// A generated department history: weekly hires, promotions and
	// departures over several years (deterministic).
	r := rand.New(rand.NewSource(42))
	ranks := []string{"assistant", "associate", "full"}
	commit := temporal.Date(1980, 1, 1)
	const week = 7 * 86400
	for i := 0; i < 240; i++ {
		name := fmt.Sprintf("prof-%02d", i%40)
		var err error
		if r.Intn(4) > 0 {
			// Hire or promote: a belief holding from a (sometimes
			// retroactive) start, occasionally bounded.
			from := commit
			if r.Intn(6) == 0 {
				from = commit.Add(-week * int64(1+r.Intn(20)))
			}
			to := temporal.Forever
			if r.Intn(4) == 0 {
				to = from.Add(week * int64(1+r.Intn(100)))
			}
			err = faculty.Assert(
				tdb.NewTuple(tdb.String(name), tdb.String(ranks[r.Intn(len(ranks))])),
				from, to)
		} else {
			// Departure: retract from now on (a no-op for never-hired).
			err = faculty.Retract(tdb.Key(tdb.String(name)), commit, temporal.Forever)
			if errors.Is(err, tdb.ErrNoSuchTuple) {
				err = nil
			}
		}
		if err != nil {
			log.Fatal(err)
		}
		commit = commit.Add(week)
	}

	fmt.Println("faculty head count by quarter (historical time-slice counts):")
	series, err := faculty.Series(temporal.Date(1980, 1, 1), temporal.Date(1986, 1, 1), temporal.Quarter)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range series {
		start := p.Bucket.From.Time()
		fmt.Printf("%d-Q%d  %3d  %s\n", start.Year(), (int(start.Month())-1)/3+1,
			p.Count, strings.Repeat("#", p.Count))
	}

	fmt.Println("\nA static database keeps only today's roster; the series above")
	fmt.Println("requires valid time — the historical column of the taxonomy.")
}
