// Payroll: the retroactive salary raise from the paper's §3 — the example
// the paper uses to demolish the "application-dependent time" criterion.
//
// A raise effective 8/1/83 is recorded on 12/1/83 (salary updates are
// batched). With a bitemporal relation, the payroll system can compute
// back pay exactly: the difference between what was believed owed at each
// pay date and what is now known to have been owed.
package main

import (
	"fmt"
	"log"

	"tdb"
	"tdb/temporal"
)

func main() {
	clock := temporal.NewLogicalClock(0)
	db, err := tdb.Open("", tdb.Options{Clock: clock})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	sch, err := tdb.NewSchema(
		tdb.Attr("employee", tdb.StringKind),
		tdb.Attr("monthly_salary", tdb.IntKind),
	)
	if err != nil {
		log.Fatal(err)
	}
	if sch, err = sch.WithKey("employee"); err != nil {
		log.Fatal(err)
	}
	payroll, err := db.CreateRelation("payroll", tdb.Temporal, sch)
	if err != nil {
		log.Fatal(err)
	}

	at := func(date string, fn func(tx *tdb.Tx) error) {
		if err := db.UpdateAt(temporal.MustParse(date), fn); err != nil {
			log.Fatal(err)
		}
	}
	salary := func(amount int64) tdb.Tuple {
		return tdb.NewTuple(tdb.String("Merrie"), tdb.Int(amount))
	}

	// 1/1/83: Merrie earns 3000/month.
	at("01/01/83", func(tx *tdb.Tx) error {
		p, _ := tx.Rel("payroll")
		return p.Assert(salary(3000), temporal.MustParse("01/01/83"), temporal.Forever)
	})
	// 12/1/83: the batched update lands — a raise to 3500, retroactively
	// effective 8/1/83.
	at("12/01/83", func(tx *tdb.Tx) error {
		p, _ := tx.Rel("payroll")
		return p.Assert(salary(3500), temporal.MustParse("08/01/83"), temporal.Forever)
	})

	// Pay was issued monthly according to the database state at pay time.
	fmt.Println("month      paid (as of pay date)   owed (current belief)   back pay")
	totalBackPay := int64(0)
	months := []string{
		"01/01/83", "02/01/83", "03/01/83", "04/01/83", "05/01/83", "06/01/83",
		"07/01/83", "08/01/83", "09/01/83", "10/01/83", "11/01/83", "12/01/83",
	}
	for _, m := range months {
		payDate := temporal.MustParse(m)
		paid := amountAt(payroll, payDate, payDate) // belief at pay time
		owed := amountAt(payroll, payDate, temporal.Forever-1)
		diff := owed - paid
		totalBackPay += diff
		fmt.Printf("%s   %5d                   %5d                   %5d\n", m, paid, owed, diff)
	}
	fmt.Printf("\ntotal back pay owed: %d\n", totalBackPay)
	fmt.Println("\nThe rollback axis answers \"what did we pay and why\";")
	fmt.Println("the valid axis answers \"what should we have paid\".")
	fmt.Println("A static or historical database can answer only one of them.")
}

// amountAt returns Merrie's salary valid at instant v according to the
// database state as of transaction time asOf (0 owed when no version
// matches).
func amountAt(rel *tdb.Relation, v, asOf temporal.Chronon) int64 {
	res, err := rel.Query().AsOf(asOf).At(v).Run()
	if err != nil {
		log.Fatal(err)
	}
	if res.Len() == 0 {
		return 0
	}
	return res.Tuples()[0][1].Int()
}
