// Quickstart: create a bitemporal relation, record some history, correct
// it retroactively, and see how "as of" recovers what the database used to
// believe — the paper's central capability in thirty lines of API.
package main

import (
	"fmt"
	"log"

	"tdb"
	"tdb/temporal"
)

func main() {
	// An in-memory database; pass a path to persist via a write-ahead log.
	db, err := tdb.Open("", tdb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A temporal (bitemporal) relation: it records both when facts were
	// true (valid time) and when the database learned them (transaction
	// time).
	sch, err := tdb.NewSchema(
		tdb.Attr("name", tdb.StringKind),
		tdb.Attr("rank", tdb.StringKind),
	)
	if err != nil {
		log.Fatal(err)
	}
	if sch, err = sch.WithKey("name"); err != nil {
		log.Fatal(err)
	}
	faculty, err := db.CreateRelation("faculty", tdb.Temporal, sch)
	if err != nil {
		log.Fatal(err)
	}

	jan := temporal.Date(2025, 1, 1)
	jun := temporal.Date(2025, 6, 1)

	// Merrie has been an associate professor since January.
	if err := faculty.Assert(
		tdb.NewTuple(tdb.String("Merrie"), tdb.String("associate")),
		jan, temporal.Forever,
	); err != nil {
		log.Fatal(err)
	}
	beforePromotion := db.Now()

	// Later we learn she was actually promoted in June — a retroactive
	// correction: the old belief is superseded, not destroyed.
	if err := faculty.Assert(
		tdb.NewTuple(tdb.String("Merrie"), tdb.String("full")),
		jun, temporal.Forever,
	); err != nil {
		log.Fatal(err)
	}

	// Current belief: what was her rank in March?
	res, err := faculty.Query().At(temporal.Date(2025, 3, 1)).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rank valid in March (current belief):")
	fmt.Println(res)

	// Rollback: what did the database believe before the correction?
	res, err = faculty.Query().AsOf(beforePromotion).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("the database's belief before the promotion was recorded:")
	fmt.Println(res)

	// Every version ever stored remains accountable.
	fmt.Println("all stored versions (nothing is ever lost):")
	for _, v := range faculty.Versions() {
		fmt.Printf("  %v\n", v)
	}
}
