// Faculty: the paper's running example, end to end, through TQuel. The
// program replays the dated transactions behind Figure 8 and then asks the
// paper's four kinds of question — static, rollback, historical, and
// temporal — showing how the answers differ.
package main

import (
	"fmt"
	"log"

	"tdb"
	"tdb/temporal"
	"tdb/tquel"
)

func main() {
	clock := temporal.NewLogicalClock(0)
	db, err := tdb.Open("", tdb.Options{Clock: clock})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	ses := tquel.NewSession(db)

	must := func(src string) {
		if _, err := ses.Exec(src); err != nil {
			log.Fatalf("%v\nin: %s", err, src)
		}
	}
	at := func(date, src string) {
		clock.Set(temporal.MustParse(date))
		must(src)
	}

	must(`create temporal relation faculty (name = string, rank = string) key (name)
	      range of f is faculty`)

	// The history of Figure 8, entered on the paper's dates.
	at("08/25/77", `append to faculty (name = "Merrie", rank = "associate") valid from "09/01/77" to forever`)
	at("12/01/82", `append to faculty (name = "Tom", rank = "full") valid from "12/05/82" to forever`)
	at("12/07/82", `replace f (rank = "associate") where f.name = "Tom" valid from "12/05/82" to forever`)
	at("12/15/82", `replace f (rank = "full") where f.name = "Merrie" valid from "12/01/82" to forever`)
	at("01/10/83", `append to faculty (name = "Mike", rank = "assistant") valid from "01/01/83" to forever`)
	at("02/25/84", `delete f where f.name = "Mike" valid from "03/01/84" to forever`)

	show := func(title, q string) {
		res, err := ses.Query(q)
		if err != nil {
			log.Fatalf("%v\nin: %s", err, q)
		}
		fmt.Printf("%s\n  %s\n%s\n", title, q, res)
	}

	// Static-style question: current rank.
	show("Current belief about Merrie:",
		`retrieve (f.rank) where f.name = "Merrie" when f overlap "now"`)

	// Historical question: what held in reality at a past instant?
	show("Merrie's rank valid on 12/10/82 (historical query):",
		`retrieve (f.rank) where f.name = "Merrie" when f overlap "12/10/82"`)

	// Rollback question: what did the database say back then?
	show("What the database said about Merrie as of 12/10/82 (rollback):",
		`retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"`)

	// The fully temporal question of §4.4.
	show("Merrie's rank when Tom arrived, as of 12/10/82 (temporal):",
		`range of f1 is faculty
		 range of f2 is faculty
		 retrieve (f1.rank)
		 where f1.name = "Merrie" and f2.name = "Tom"
		 when f1 overlap start of f2
		 as of "12/10/82"`)

	show("...and as of 12/20/82, after the promotion was recorded:",
		`retrieve (f1.rank)
		 where f1.name = "Merrie" and f2.name = "Tom"
		 when f1 overlap start of f2
		 as of "12/20/82"`)
}
