package temporal

import (
	"fmt"
	"strings"
	"time"
)

// layouts accepted by Parse, tried in order. The first two are the paper's
// own surface syntax (Figures 4, 6, 8, 9 all print MM/DD/YY dates).
var layouts = []string{
	"01/02/06",
	"01/02/2006",
	"01/02/06 15:04:05",
	"01/02/2006 15:04:05",
	"2006-01-02",
	"2006-01-02 15:04:05",
	time.RFC3339,
}

// Parse converts the surface syntaxes used in the paper and in TQuel source
// into a Chronon. Accepted forms:
//
//   - "12/15/82" and "12/15/1982"        (the paper's figures)
//   - "1982-12-15", RFC 3339             (modern forms)
//   - "forever", "infinity", "∞"         (+∞)
//   - "beginning", "-infinity", "-∞"     (-∞)
//
// Two-digit years resolve into 19xx, matching the paper's period: the
// figures' "82" means 1982, and a pivot at 2000 would silently shift every
// example by a century.
func Parse(s string) (Chronon, error) {
	trimmed := strings.TrimSpace(s)
	switch strings.ToLower(trimmed) {
	case "forever", "infinity", "inf", "∞":
		return Forever, nil
	case "beginning", "-infinity", "-inf", "-∞":
		return Beginning, nil
	}
	for _, layout := range layouts {
		t, err := time.ParseInLocation(layout, trimmed, time.UTC)
		if err != nil {
			continue
		}
		if strings.Contains(layout, "06") && !strings.Contains(layout, "2006") && t.Year() >= 2000 {
			// time.Parse pivots two-digit years at 69; fold into 19xx.
			t = t.AddDate(-100, 0, 0)
		}
		return FromTime(t), nil
	}
	return 0, fmt.Errorf("temporal: cannot parse %q as a date or instant", s)
}

// MustParse is Parse for trusted literals (tests, examples, figure data); it
// panics on malformed input.
func MustParse(s string) Chronon {
	c, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return c
}

// ParseInterval parses "from,to" (either bound may be an infinity spelling)
// into a half-open interval.
func ParseInterval(from, to string) (Interval, error) {
	f, err := Parse(from)
	if err != nil {
		return Interval{}, err
	}
	t, err := Parse(to)
	if err != nil {
		return Interval{}, err
	}
	return MakeInterval(f, t)
}
