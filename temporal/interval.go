package temporal

import (
	"errors"
	"fmt"
)

// ErrInvertedInterval is returned when an interval's end precedes its start.
var ErrInvertedInterval = errors.New("temporal: interval end precedes start")

// Interval is a half-open span of chronons [From, To): it contains every
// chronon c with From <= c < To. Half-open intervals compose without gaps or
// double counting — the representation used for both transaction-time and
// valid-time periods on stored tuples. The paper's "(from) (to)" and
// "(start) (end)" column pairs map directly onto this type.
type Interval struct {
	From Chronon
	To   Chronon
}

// All is the interval covering the entire time line.
var All = Interval{From: Beginning, To: Forever}

// MakeInterval builds [from, to), rejecting inverted bounds. from == to
// yields the (valid) empty interval at that instant.
func MakeInterval(from, to Chronon) (Interval, error) {
	if to < from {
		return Interval{}, fmt.Errorf("%w: [%v, %v)", ErrInvertedInterval, from, to)
	}
	return Interval{From: from, To: to}, nil
}

// Since returns the unbounded-future interval [from, ∞), the shape of every
// "current version" in the paper's figures.
func Since(from Chronon) Interval { return Interval{From: from, To: Forever} }

// At returns the single-chronon interval [c, c+1), the interval form of an
// event occurring at c.
func At(c Chronon) Interval { return Interval{From: c, To: c.Next()} }

// IsEmpty reports whether the interval contains no chronons.
func (iv Interval) IsEmpty() bool { return iv.To <= iv.From }

// IsValid reports whether the bounds are correctly ordered.
func (iv Interval) IsValid() bool { return iv.From <= iv.To }

// Contains reports whether c lies inside the interval.
func (iv Interval) Contains(c Chronon) bool { return iv.From <= c && c < iv.To }

// ContainsInterval reports whether o lies entirely within iv.
func (iv Interval) ContainsInterval(o Interval) bool {
	if o.IsEmpty() {
		return iv.Contains(o.From) || o.From == iv.To // an empty instant on the boundary
	}
	return iv.From <= o.From && o.To <= iv.To
}

// Overlaps reports whether the two intervals share at least one chronon.
// This is TQuel's "overlap" predicate on two interval operands. Empty
// intervals contain no chronons and therefore never overlap anything.
func (iv Interval) Overlaps(o Interval) bool {
	return !iv.IsEmpty() && !o.IsEmpty() && iv.From < o.To && o.From < iv.To
}

// Precedes reports whether iv ends no later than o starts (shared endpoints
// allowed, since intervals are half-open). This is TQuel's "precede".
func (iv Interval) Precedes(o Interval) bool { return iv.To <= o.From }

// Meets reports whether iv ends exactly where o starts.
func (iv Interval) Meets(o Interval) bool { return iv.To == o.From }

// Equal reports whether the two intervals have identical bounds.
func (iv Interval) Equal(o Interval) bool { return iv == o }

// Intersect returns the common sub-interval, which is empty when the
// intervals do not overlap.
func (iv Interval) Intersect(o Interval) Interval {
	from := iv.From.Max(o.From)
	to := iv.To.Min(o.To)
	if to < from {
		return Interval{From: from, To: from}
	}
	return Interval{From: from, To: to}
}

// Extend returns the smallest interval covering both operands, TQuel's
// "extend" constructor (it also covers any gap between them).
func (iv Interval) Extend(o Interval) Interval {
	if iv.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return iv
	}
	return Interval{From: iv.From.Min(o.From), To: iv.To.Max(o.To)}
}

// Union returns the single interval covering both operands if they overlap
// or meet; ok is false when they are disjoint with a gap.
func (iv Interval) Union(o Interval) (Interval, bool) {
	if iv.IsEmpty() {
		return o, true
	}
	if o.IsEmpty() {
		return iv, true
	}
	if iv.From > o.To || o.From > iv.To {
		return Interval{}, false
	}
	return Interval{From: iv.From.Min(o.From), To: iv.To.Max(o.To)}, true
}

// Subtract returns the parts of iv not covered by o: zero, one or two
// intervals. This is the splitting step of the bitemporal update algebra —
// when a correction covers the middle of a stored valid period, the
// remainders on either side are re-appended as current versions.
func (iv Interval) Subtract(o Interval) []Interval {
	if iv.IsEmpty() {
		return nil
	}
	if o.IsEmpty() || !iv.Overlaps(o) {
		return []Interval{iv}
	}
	var out []Interval
	if iv.From < o.From {
		out = append(out, Interval{From: iv.From, To: o.From})
	}
	if o.To < iv.To {
		out = append(out, Interval{From: o.To, To: iv.To})
	}
	return out
}

// Duration returns the number of chronons in the interval; ok is false when
// either bound is infinite.
func (iv Interval) Duration() (int64, bool) {
	if !iv.From.IsFinite() || !iv.To.IsFinite() {
		return 0, false
	}
	return int64(iv.To - iv.From), true
}

// Start returns the event at the beginning of the interval — TQuel's
// "start of" operator.
func (iv Interval) Start() Chronon { return iv.From }

// End returns the event at the end of the interval — TQuel's "end of"
// operator. For half-open intervals this is the first chronon after the
// period.
func (iv Interval) End() Chronon { return iv.To }

// Clamp restricts the interval to the bounds of o.
func (iv Interval) Clamp(o Interval) Interval { return iv.Intersect(o) }

// String renders the interval in the paper's two-column figure style.
func (iv Interval) String() string {
	return fmt.Sprintf("[%v, %v)", iv.From, iv.To)
}

// OverlapsPoint reports whether the event at c falls within the interval —
// the mixed interval/event form of TQuel's "overlap" (used by the paper's
// query "where f1 overlap start of f2").
func (iv Interval) OverlapsPoint(c Chronon) bool { return iv.Contains(c) }

// Coalesce merges a set of intervals into the minimal sorted set of disjoint,
// non-adjacent intervals covering the same chronons. Empty intervals vanish.
// The input slice is not modified.
func Coalesce(ivs []Interval) []Interval {
	work := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if !iv.IsEmpty() {
			work = append(work, iv)
		}
	}
	if len(work) <= 1 {
		return work
	}
	sortIntervals(work)
	out := work[:1]
	for _, iv := range work[1:] {
		last := &out[len(out)-1]
		if iv.From <= last.To { // overlaps or meets
			if iv.To > last.To {
				last.To = iv.To
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

func sortIntervals(ivs []Interval) {
	// Insertion sort: coalescing inputs are tiny (per-tuple version lists).
	for i := 1; i < len(ivs); i++ {
		for j := i; j > 0; j-- {
			if ivs[j].From < ivs[j-1].From ||
				(ivs[j].From == ivs[j-1].From && ivs[j].To < ivs[j-1].To) {
				ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
			} else {
				break
			}
		}
	}
}
