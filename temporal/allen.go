package temporal

// Relation enumerates Allen's thirteen basic relations between two nonempty
// intervals (Allen 1983). Exactly one basic relation holds between any pair
// of nonempty intervals; the TQuel predicates the paper uses ("overlap",
// "precede") are disjunctions of these basic relations, exposed below as
// predicate sets.
type Relation uint8

const (
	// RelInvalid is returned when either operand is empty; the basic
	// relations are defined only for nonempty intervals.
	RelInvalid Relation = iota
	// RelPrecedes: a ends strictly before b starts (a gap separates them).
	RelPrecedes
	// RelMeets: a ends exactly where b starts.
	RelMeets
	// RelOverlaps: a starts first, they share chronons, and b ends last.
	RelOverlaps
	// RelFinishedBy: a starts first and both end together.
	RelFinishedBy
	// RelContains: a strictly surrounds b.
	RelContains
	// RelStarts: both start together and a ends first.
	RelStarts
	// RelEquals: identical bounds.
	RelEquals
	// RelStartedBy: both start together and b ends first.
	RelStartedBy
	// RelDuring: b strictly surrounds a.
	RelDuring
	// RelFinishes: both end together and b starts first.
	RelFinishes
	// RelOverlappedBy: b starts first, they share chronons, and a ends last.
	RelOverlappedBy
	// RelMetBy: b ends exactly where a starts.
	RelMetBy
	// RelPrecededBy: b ends strictly before a starts.
	RelPrecededBy
)

var relationNames = [...]string{
	RelInvalid:      "invalid",
	RelPrecedes:     "precedes",
	RelMeets:        "meets",
	RelOverlaps:     "overlaps",
	RelFinishedBy:   "finished-by",
	RelContains:     "contains",
	RelStarts:       "starts",
	RelEquals:       "equals",
	RelStartedBy:    "started-by",
	RelDuring:       "during",
	RelFinishes:     "finishes",
	RelOverlappedBy: "overlapped-by",
	RelMetBy:        "met-by",
	RelPrecededBy:   "preceded-by",
}

// String returns the conventional name of the relation.
func (r Relation) String() string {
	if int(r) < len(relationNames) {
		return relationNames[r]
	}
	return "unknown"
}

// Inverse returns the relation that holds between (b, a) when r holds
// between (a, b).
func (r Relation) Inverse() Relation {
	switch r {
	case RelPrecedes:
		return RelPrecededBy
	case RelPrecededBy:
		return RelPrecedes
	case RelMeets:
		return RelMetBy
	case RelMetBy:
		return RelMeets
	case RelOverlaps:
		return RelOverlappedBy
	case RelOverlappedBy:
		return RelOverlaps
	case RelFinishedBy:
		return RelFinishes
	case RelFinishes:
		return RelFinishedBy
	case RelContains:
		return RelDuring
	case RelDuring:
		return RelContains
	case RelStarts:
		return RelStartedBy
	case RelStartedBy:
		return RelStarts
	default:
		return r // RelEquals and RelInvalid are self-inverse
	}
}

// Relate classifies the relationship between two nonempty intervals into
// exactly one of Allen's thirteen basic relations. Empty operands yield
// RelInvalid.
func Relate(a, b Interval) Relation {
	if a.IsEmpty() || b.IsEmpty() {
		return RelInvalid
	}
	switch {
	case a.To < b.From:
		return RelPrecedes
	case a.To == b.From:
		return RelMeets
	case b.To < a.From:
		return RelPrecededBy
	case b.To == a.From:
		return RelMetBy
	}
	// The intervals overlap; classify by endpoint comparisons.
	cs := a.From.Compare(b.From)
	ce := a.To.Compare(b.To)
	switch {
	case cs == 0 && ce == 0:
		return RelEquals
	case cs == 0 && ce < 0:
		return RelStarts
	case cs == 0 && ce > 0:
		return RelStartedBy
	case ce == 0 && cs < 0:
		return RelFinishedBy
	case ce == 0 && cs > 0:
		return RelFinishes
	case cs < 0 && ce > 0:
		return RelContains
	case cs > 0 && ce < 0:
		return RelDuring
	case cs < 0: // and ce < 0
		return RelOverlaps
	default: // cs > 0 && ce > 0
		return RelOverlappedBy
	}
}

// RelationSet is a disjunction of basic relations, used to express the
// coarse TQuel predicates.
type RelationSet uint16

// Has reports whether r is a member of the set.
func (s RelationSet) Has(r Relation) bool { return s&(1<<r) != 0 }

// NewRelationSet builds a set from its member relations.
func NewRelationSet(rs ...Relation) RelationSet {
	var s RelationSet
	for _, r := range rs {
		s |= 1 << r
	}
	return s
}

// OverlapSet is the disjunction of basic relations in which the operands
// share at least one chronon — TQuel's "overlap".
var OverlapSet = NewRelationSet(
	RelOverlaps, RelOverlappedBy, RelFinishedBy, RelFinishes,
	RelContains, RelDuring, RelStarts, RelStartedBy, RelEquals,
)

// PrecedeSet is the disjunction in which a ends no later than b starts —
// TQuel's "precede".
var PrecedeSet = NewRelationSet(RelPrecedes, RelMeets)

// Satisfies reports whether the basic relation between a and b is a member
// of the predicate set.
func Satisfies(a, b Interval, s RelationSet) bool { return s.Has(Relate(a, b)) }
