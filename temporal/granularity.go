package temporal

import (
	"fmt"
	"time"
)

// Granularity is a calendar unit for snapping and stepping chronons. The
// paper models time at a single granularity (its figures use days); real
// trend analysis ("how did the number of faculty change over the last 5
// years?") needs coarser calendar buckets, which these helpers provide.
type Granularity uint8

const (
	// Second is the chronon granularity itself.
	Second Granularity = iota
	// Minute truncates to the minute.
	Minute
	// Hour truncates to the hour.
	Hour
	// Day truncates to UTC midnight.
	Day
	// Week truncates to the preceding Monday midnight (ISO weeks).
	Week
	// Month truncates to the first of the month.
	Month
	// Quarter truncates to the first of January/April/July/October.
	Quarter
	// Year truncates to January 1st.
	Year
)

var granularityNames = [...]string{
	Second: "second", Minute: "minute", Hour: "hour", Day: "day",
	Week: "week", Month: "month", Quarter: "quarter", Year: "year",
}

// String names the granularity.
func (g Granularity) String() string {
	if int(g) < len(granularityNames) {
		return granularityNames[g]
	}
	return fmt.Sprintf("granularity(%d)", uint8(g))
}

// Truncate snaps the chronon down to the start of its enclosing granule.
// The sentinels truncate to themselves.
func (c Chronon) Truncate(g Granularity) Chronon {
	if !c.IsFinite() {
		return c
	}
	t := c.Time()
	switch g {
	case Second:
		return c
	case Minute:
		return FromTime(t.Truncate(time.Minute))
	case Hour:
		return FromTime(t.Truncate(time.Hour))
	case Day:
		return Date(t.Year(), t.Month(), t.Day())
	case Week:
		// Back up to Monday.
		delta := (int(t.Weekday()) + 6) % 7
		t = t.AddDate(0, 0, -delta)
		return Date(t.Year(), t.Month(), t.Day())
	case Month:
		return Date(t.Year(), t.Month(), 1)
	case Quarter:
		q := (int(t.Month()) - 1) / 3
		return Date(t.Year(), time.Month(q*3+1), 1)
	case Year:
		return Date(t.Year(), time.January, 1)
	default:
		return c
	}
}

// Step moves the chronon by n granules, calendar-aware: stepping a month
// from January 31st lands on the last instant-compatible date Go's
// calendar arithmetic produces (March 2nd/3rd, as time.AddDate defines).
// The sentinels are fixed points.
func (c Chronon) Step(g Granularity, n int) Chronon {
	if !c.IsFinite() || n == 0 {
		return c
	}
	t := c.Time()
	switch g {
	case Second:
		return c.Add(int64(n))
	case Minute:
		return c.Add(int64(n) * 60)
	case Hour:
		return c.Add(int64(n) * 3600)
	case Day:
		return FromTime(t.AddDate(0, 0, n))
	case Week:
		return FromTime(t.AddDate(0, 0, 7*n))
	case Month:
		return FromTime(t.AddDate(0, n, 0))
	case Quarter:
		return FromTime(t.AddDate(0, 3*n, 0))
	case Year:
		return FromTime(t.AddDate(n, 0, 0))
	default:
		return c
	}
}

// Buckets partitions the interval into granule-aligned sub-intervals: the
// first bucket starts at the truncation of From, the last ends at or after
// To. Infinite bounds yield no buckets (there is no finite partition).
// Empty intervals yield none.
func (iv Interval) Buckets(g Granularity) []Interval {
	if iv.IsEmpty() || !iv.From.IsFinite() || !iv.To.IsFinite() {
		return nil
	}
	var out []Interval
	start := iv.From.Truncate(g)
	for start < iv.To {
		next := start.Step(g, 1)
		if next <= start { // degenerate guard; cannot regress
			break
		}
		out = append(out, Interval{From: start, To: next})
		start = next
	}
	return out
}
