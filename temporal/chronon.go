// Package temporal implements the time model underlying the taxonomy of
// Snodgrass & Ahn ("A Taxonomy of Time in Databases", SIGMOD 1985): discrete
// chronons, instants extended with ±infinity, half-open intervals, events,
// Allen's thirteen interval relations, and the TQuel temporal predicates
// (overlap, precede, extend, start of, end of).
//
// All three kinds of time identified by the paper — transaction time, valid
// time and user-defined time — are represented with the same Chronon scalar;
// their different semantics (append-only versus correctable, interpreted
// versus uninterpreted) are enforced by the stores in internal/core, not by
// the scalar itself.
package temporal

import (
	"fmt"
	"math"
	"time"
)

// Chronon is a discrete instant: the number of seconds since the Unix epoch.
// The paper models time as a discrete, totally ordered set of chronons; one
// second is the granularity used throughout this implementation.
//
// Two sentinel values extend the line: Beginning (-∞) and Forever (+∞).
// Forever is used as the open end of current versions ("to ∞" in the paper's
// figures); Beginning as the open start of unbounded-past intervals.
type Chronon int64

const (
	// Beginning is the instant before all others (-∞).
	Beginning Chronon = math.MinInt64
	// Forever is the instant after all others (+∞). A tuple whose
	// transaction-time end is Forever is a current version; a tuple whose
	// valid-time end is Forever is believed true indefinitely.
	Forever Chronon = math.MaxInt64
)

// FromTime converts a wall-clock time to a Chronon, truncating sub-second
// precision.
func FromTime(t time.Time) Chronon { return Chronon(t.Unix()) }

// Date returns the chronon at midnight UTC of the given calendar date.
func Date(year int, month time.Month, day int) Chronon {
	return FromTime(time.Date(year, month, day, 0, 0, 0, 0, time.UTC))
}

// Time converts the chronon back to a wall-clock time in UTC. It panics on
// the sentinels Beginning and Forever, which have no calendar equivalent;
// use IsFinite to guard.
func (c Chronon) Time() time.Time {
	if !c.IsFinite() {
		panic("temporal: Time() called on infinite chronon")
	}
	return time.Unix(int64(c), 0).UTC()
}

// IsFinite reports whether c is an ordinary instant rather than ±∞.
func (c Chronon) IsFinite() bool { return c != Beginning && c != Forever }

// Before reports whether c is strictly earlier than o.
func (c Chronon) Before(o Chronon) bool { return c < o }

// After reports whether c is strictly later than o.
func (c Chronon) After(o Chronon) bool { return c > o }

// Compare returns -1, 0 or +1 as c is earlier than, equal to, or later
// than o.
func (c Chronon) Compare(o Chronon) int {
	switch {
	case c < o:
		return -1
	case c > o:
		return 1
	default:
		return 0
	}
}

// Add returns the chronon d seconds later, saturating at the sentinels: the
// infinities absorb any displacement, and finite chronons clamp rather than
// wrap on overflow.
func (c Chronon) Add(d int64) Chronon {
	if !c.IsFinite() {
		return c
	}
	s := int64(c) + d
	switch {
	case d > 0 && s < int64(c): // overflow
		return Forever - 1
	case d < 0 && s > int64(c): // underflow
		return Beginning + 1
	}
	r := Chronon(s)
	if !r.IsFinite() { // landed exactly on a sentinel
		if d > 0 {
			return Forever - 1
		}
		return Beginning + 1
	}
	return r
}

// Next returns the immediately following chronon (saturating at ±∞).
func (c Chronon) Next() Chronon { return c.Add(1) }

// Prev returns the immediately preceding chronon (saturating at ±∞).
func (c Chronon) Prev() Chronon { return c.Add(-1) }

// Min returns the earlier of c and o.
func (c Chronon) Min(o Chronon) Chronon {
	if o < c {
		return o
	}
	return c
}

// Max returns the later of c and o.
func (c Chronon) Max(o Chronon) Chronon {
	if o > c {
		return o
	}
	return c
}

// String renders the chronon in the paper's figure style: MM/DD/YY for dates
// that fall exactly on a UTC midnight, a full timestamp otherwise, and the
// symbols ∞ / -∞ for the sentinels.
func (c Chronon) String() string {
	switch c {
	case Forever:
		return "∞"
	case Beginning:
		return "-∞"
	}
	t := c.Time()
	if t.Hour() == 0 && t.Minute() == 0 && t.Second() == 0 {
		return fmt.Sprintf("%02d/%02d/%02d", int(t.Month()), t.Day(), t.Year()%100)
	}
	return t.Format("01/02/06 15:04:05")
}

// ISO renders the chronon as an ISO-8601 date or timestamp, with "infinity"
// and "-infinity" for the sentinels (the spellings PostgreSQL uses).
func (c Chronon) ISO() string {
	switch c {
	case Forever:
		return "infinity"
	case Beginning:
		return "-infinity"
	}
	t := c.Time()
	if t.Hour() == 0 && t.Minute() == 0 && t.Second() == 0 {
		return t.Format("2006-01-02")
	}
	return t.Format(time.RFC3339)
}
