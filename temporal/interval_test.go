package temporal

import (
	"math/rand"
	"testing"
)

func iv(from, to Chronon) Interval { return Interval{From: from, To: to} }

func TestMakeInterval(t *testing.T) {
	if _, err := MakeInterval(10, 5); err == nil {
		t.Error("inverted interval must be rejected")
	}
	got, err := MakeInterval(5, 5)
	if err != nil {
		t.Fatalf("empty interval must be allowed: %v", err)
	}
	if !got.IsEmpty() {
		t.Error("zero-width interval must be empty")
	}
}

func TestContains(t *testing.T) {
	x := iv(10, 20)
	for c, want := range map[Chronon]bool{9: false, 10: true, 15: true, 19: true, 20: false} {
		if got := x.Contains(c); got != want {
			t.Errorf("Contains(%d) = %v, want %v", c, got, want)
		}
	}
	if !Since(10).Contains(Forever - 1) {
		t.Error("unbounded interval must contain arbitrarily late chronons")
	}
	if Since(10).Contains(Forever) {
		t.Error("half-open interval must exclude its end even at ∞")
	}
}

func TestAtIsSingleton(t *testing.T) {
	e := At(42)
	if !e.Contains(42) || e.Contains(41) || e.Contains(43) {
		t.Error("At must contain exactly its chronon")
	}
	if d, ok := e.Duration(); !ok || d != 1 {
		t.Errorf("At duration = %d, %v", d, ok)
	}
}

func TestOverlapsPrecedesMeets(t *testing.T) {
	a := iv(10, 20)
	cases := []struct {
		b                        Interval
		overlaps, precedes, meet bool
	}{
		{iv(20, 30), false, true, true},  // meets
		{iv(25, 30), false, true, false}, // gap
		{iv(15, 25), true, false, false}, // overlap
		{iv(0, 10), false, false, false}, // met by
		{iv(10, 20), true, false, false}, // equal
		{iv(12, 18), true, false, false}, // contains
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.overlaps {
			t.Errorf("Overlaps(%v) = %v", c.b, got)
		}
		if got := a.Precedes(c.b); got != c.precedes {
			t.Errorf("Precedes(%v) = %v", c.b, got)
		}
		if got := a.Meets(c.b); got != c.meet {
			t.Errorf("Meets(%v) = %v", c.b, got)
		}
	}
}

func TestIntersectExtendUnion(t *testing.T) {
	a, b := iv(10, 20), iv(15, 30)
	if got := a.Intersect(b); got != iv(15, 20) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Extend(b); got != iv(10, 30) {
		t.Errorf("Extend = %v", got)
	}
	if u, ok := a.Union(b); !ok || u != iv(10, 30) {
		t.Errorf("Union = %v, %v", u, ok)
	}
	// Disjoint with gap: Union fails, Extend covers the gap.
	c := iv(40, 50)
	if _, ok := a.Union(c); ok {
		t.Error("Union across a gap must fail")
	}
	if got := a.Extend(c); got != iv(10, 50) {
		t.Errorf("Extend across gap = %v", got)
	}
	// Meeting intervals union cleanly.
	if u, ok := a.Union(iv(20, 25)); !ok || u != iv(10, 25) {
		t.Errorf("Union of meeting intervals = %v, %v", u, ok)
	}
	if a.Intersect(c).IsEmpty() != true {
		t.Error("Intersect of disjoint intervals must be empty")
	}
}

func TestSubtract(t *testing.T) {
	a := iv(10, 30)
	cases := []struct {
		o    Interval
		want []Interval
	}{
		{iv(0, 5), []Interval{a}},                        // disjoint
		{iv(10, 30), nil},                                // exact cover
		{iv(0, 40), nil},                                 // super cover
		{iv(10, 20), []Interval{iv(20, 30)}},             // prefix
		{iv(20, 30), []Interval{iv(10, 20)}},             // suffix
		{iv(15, 25), []Interval{iv(10, 15), iv(25, 30)}}, // middle split
		{iv(5, 15), []Interval{iv(15, 30)}},              // left overhang
		{iv(25, 35), []Interval{iv(10, 25)}},             // right overhang
		{iv(12, 12), []Interval{a}},                      // empty subtrahend
	}
	for _, c := range cases {
		got := a.Subtract(c.o)
		if len(got) != len(c.want) {
			t.Errorf("Subtract(%v) = %v, want %v", c.o, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Subtract(%v)[%d] = %v, want %v", c.o, i, got[i], c.want[i])
			}
		}
	}
	if got := iv(5, 5).Subtract(iv(0, 10)); got != nil {
		t.Errorf("empty minuend must subtract to nil, got %v", got)
	}
}

// Subtract + Intersect must exactly repartition the minuend.
func TestSubtractPartitionProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		a1, a2 := int16(r.Intn(64)), int16(r.Intn(64))
		b1, b2 := int16(r.Intn(64)), int16(r.Intn(64))
		a := iv(Chronon(min16(a1, a2)), Chronon(max16(a1, a2)))
		b := iv(Chronon(min16(b1, b2)), Chronon(max16(b1, b2)))
		pieces := append(a.Subtract(b), a.Intersect(b))
		// Every chronon of a must be in exactly one piece.
		for c := a.From; c < a.To; c++ {
			n := 0
			for _, p := range pieces {
				if p.Contains(c) {
					n++
				}
			}
			if n != 1 {
				t.Fatalf("a=%v b=%v: chronon %d covered %d times", a, b, c, n)
			}
		}
		// No piece may stick out of a.
		for _, p := range pieces {
			for c := p.From; c < p.To; c++ {
				if !a.Contains(c) {
					t.Fatalf("a=%v b=%v: piece %v escapes minuend", a, b, p)
				}
			}
		}
	}
}

func TestDuration(t *testing.T) {
	if d, ok := iv(10, 25).Duration(); !ok || d != 15 {
		t.Errorf("Duration = %d, %v", d, ok)
	}
	if _, ok := Since(10).Duration(); ok {
		t.Error("unbounded interval must have no finite duration")
	}
	if _, ok := All.Duration(); ok {
		t.Error("All must have no finite duration")
	}
}

func TestContainsInterval(t *testing.T) {
	a := iv(10, 30)
	if !a.ContainsInterval(iv(10, 30)) || !a.ContainsInterval(iv(15, 20)) {
		t.Error("ContainsInterval false negatives")
	}
	if a.ContainsInterval(iv(5, 15)) || a.ContainsInterval(iv(25, 35)) {
		t.Error("ContainsInterval false positives")
	}
}

func TestCoalesce(t *testing.T) {
	in := []Interval{iv(30, 40), iv(10, 15), iv(15, 20), iv(12, 18), iv(50, 50)}
	got := Coalesce(in)
	want := []Interval{iv(10, 20), iv(30, 40)}
	if len(got) != len(want) {
		t.Fatalf("Coalesce = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("Coalesce[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got := Coalesce(nil); len(got) != 0 {
		t.Errorf("Coalesce(nil) = %v", got)
	}
}

// Coalescing is idempotent and preserves membership.
func TestCoalesceProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var in []Interval
		n := r.Intn(8)
		for i := 0; i < n; i++ {
			a := Chronon(r.Intn(50))
			b := a + Chronon(r.Intn(10))
			in = append(in, iv(a, b))
		}
		out := Coalesce(in)
		// Membership preserved.
		for c := Chronon(0); c < 64; c++ {
			inAny := false
			for _, x := range in {
				if x.Contains(c) {
					inAny = true
					break
				}
			}
			outAny := false
			for _, x := range out {
				if x.Contains(c) {
					outAny = true
					break
				}
			}
			if inAny != outAny {
				t.Fatalf("trial %d: membership of %d changed: %v -> %v (in=%v out=%v)", trial, c, inAny, outAny, in, out)
			}
		}
		// Output is sorted, disjoint, non-adjacent, nonempty.
		for i, x := range out {
			if x.IsEmpty() {
				t.Fatalf("trial %d: empty interval in output %v", trial, out)
			}
			if i > 0 && out[i-1].To >= x.From {
				t.Fatalf("trial %d: output not disjoint/sorted: %v", trial, out)
			}
		}
		// Idempotence.
		again := Coalesce(out)
		if len(again) != len(out) {
			t.Fatalf("trial %d: coalesce not idempotent: %v vs %v", trial, out, again)
		}
		for i := range again {
			if again[i] != out[i] {
				t.Fatalf("trial %d: coalesce not idempotent: %v vs %v", trial, out, again)
			}
		}
	}
}

func TestIntervalString(t *testing.T) {
	if got := Since(Date(1982, 12, 15)).String(); got != "[12/15/82, ∞)" {
		t.Errorf("String = %q", got)
	}
}

func min16(a, b int16) int16 {
	if a < b {
		return a
	}
	return b
}

func max16(a, b int16) int16 {
	if a > b {
		return a
	}
	return b
}
