package temporal

import (
	"testing"
	"time"
)

func TestTruncate(t *testing.T) {
	c := FromTime(time.Date(1983, time.August, 17, 13, 45, 9, 0, time.UTC)) // a Wednesday
	cases := map[Granularity]Chronon{
		Second:  c,
		Minute:  FromTime(time.Date(1983, 8, 17, 13, 45, 0, 0, time.UTC)),
		Hour:    FromTime(time.Date(1983, 8, 17, 13, 0, 0, 0, time.UTC)),
		Day:     Date(1983, 8, 17),
		Week:    Date(1983, 8, 15), // Monday
		Month:   Date(1983, 8, 1),
		Quarter: Date(1983, 7, 1),
		Year:    Date(1983, 1, 1),
	}
	for g, want := range cases {
		if got := c.Truncate(g); got != want {
			t.Errorf("Truncate(%v) = %v, want %v", g, got.ISO(), want.ISO())
		}
	}
	if Forever.Truncate(Month) != Forever || Beginning.Truncate(Year) != Beginning {
		t.Error("sentinels must truncate to themselves")
	}
}

func TestTruncateWeekOnSundayAndMonday(t *testing.T) {
	sunday := Date(1983, 8, 21)
	if got := sunday.Truncate(Week); got != Date(1983, 8, 15) {
		t.Errorf("Sunday truncates to %v", got.ISO())
	}
	monday := Date(1983, 8, 15)
	if got := monday.Truncate(Week); got != monday {
		t.Errorf("Monday truncates to %v", got.ISO())
	}
}

func TestStep(t *testing.T) {
	c := Date(1983, 1, 31)
	if got := c.Step(Day, 1); got != Date(1983, 2, 1) {
		t.Errorf("day step = %v", got.ISO())
	}
	if got := c.Step(Year, 2); got != Date(1985, 1, 31) {
		t.Errorf("year step = %v", got.ISO())
	}
	if got := Date(1983, 3, 1).Step(Month, -1); got != Date(1983, 2, 1) {
		t.Errorf("negative month step = %v", got.ISO())
	}
	if got := c.Step(Quarter, 1); got != Date(1983, 5, 1) {
		// Jan 31 + 3 months = May 1 (Go's AddDate normalizes April 31).
		t.Errorf("quarter step from month-end = %v", got.ISO())
	}
	if got := c.Step(Hour, 2); got != c.Add(7200) {
		t.Errorf("hour step = %v", got.ISO())
	}
	if Forever.Step(Month, 5) != Forever {
		t.Error("sentinel must be a fixed point")
	}
	if got := c.Step(Week, 0); got != c {
		t.Error("zero step must be identity")
	}
}

func TestBuckets(t *testing.T) {
	iv := Interval{From: Date(1983, 1, 15), To: Date(1983, 4, 10)}
	got := iv.Buckets(Month)
	want := []Interval{
		{From: Date(1983, 1, 1), To: Date(1983, 2, 1)},
		{From: Date(1983, 2, 1), To: Date(1983, 3, 1)},
		{From: Date(1983, 3, 1), To: Date(1983, 4, 1)},
		{From: Date(1983, 4, 1), To: Date(1983, 5, 1)},
	}
	if len(got) != len(want) {
		t.Fatalf("buckets = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Buckets cover the interval contiguously.
	for i := 1; i < len(got); i++ {
		if got[i].From != got[i-1].To {
			t.Errorf("gap between buckets %d and %d", i-1, i)
		}
	}
	if got := (Interval{From: 5, To: 5}).Buckets(Day); got != nil {
		t.Errorf("empty interval buckets = %v", got)
	}
	if got := Since(Date(1983, 1, 1)).Buckets(Year); got != nil {
		t.Errorf("unbounded interval buckets = %v", got)
	}
}

func TestBucketsYears(t *testing.T) {
	iv := Interval{From: Date(1980, 6, 1), To: Date(1983, 1, 1)}
	got := iv.Buckets(Year)
	if len(got) != 3 {
		t.Fatalf("year buckets = %v", got)
	}
	if got[0].From != Date(1980, 1, 1) || got[2].To != Date(1983, 1, 1) {
		t.Errorf("year bucket bounds: %v", got)
	}
}

func TestGranularityString(t *testing.T) {
	if Quarter.String() != "quarter" || Granularity(99).String() == "" {
		t.Error("granularity names")
	}
}

// Granularity invariants under random inputs: truncation is idempotent and
// never moves forward; a positive step always moves forward; buckets tile.
func TestGranularityProperties(t *testing.T) {
	r := newRand(77)
	gs := []Granularity{Second, Minute, Hour, Day, Week, Month, Quarter, Year}
	for trial := 0; trial < 2000; trial++ {
		c := Date(1950, 1, 1).Add(int64(r.Intn(4_000_000_000))) // ~1950-2076
		g := gs[r.Intn(len(gs))]
		tr := c.Truncate(g)
		if tr > c {
			t.Fatalf("Truncate(%v, %v) moved forward to %v", c.ISO(), g, tr.ISO())
		}
		if tr.Truncate(g) != tr {
			t.Fatalf("Truncate(%v) not idempotent", g)
		}
		if next := tr.Step(g, 1); next <= tr {
			t.Fatalf("Step(%v, 1) did not advance from %v", g, tr.ISO())
		}
		// c lies within [tr, tr.Step(g,1)) for calendar-aligned granules.
		if end := tr.Step(g, 1); !(tr <= c && c < end) {
			t.Fatalf("%v not within its %v granule [%v, %v)", c.ISO(), g, tr.ISO(), end.ISO())
		}
	}
}
