package temporal

import (
	"sync"
	"testing"
)

func TestLogicalClock(t *testing.T) {
	c := NewLogicalClock(100)
	if c.Now() != 100 {
		t.Fatalf("origin = %v", c.Now())
	}
	if got := c.Advance(5); got != 105 {
		t.Errorf("Advance = %v", got)
	}
	if got := c.Advance(-50); got != 105 {
		t.Errorf("clock ran backwards: %v", got)
	}
	if got := c.Set(200); got != 200 {
		t.Errorf("Set forward = %v", got)
	}
	if got := c.Set(150); got != 200 {
		t.Errorf("Set backward must be ignored: %v", got)
	}
}

func TestTickingClockDistinctValues(t *testing.T) {
	c := NewTickingClock(10)
	a, b := c.Now(), c.Now()
	if a != 10 || b != 11 {
		t.Errorf("ticks = %v, %v", a, b)
	}
}

func TestTickingClockConcurrent(t *testing.T) {
	c := NewTickingClock(0)
	const goroutines, per = 8, 200
	var wg sync.WaitGroup
	results := make([][]Chronon, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				results[g] = append(results[g], c.Now())
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[Chronon]bool, goroutines*per)
	for _, rs := range results {
		for _, r := range rs {
			if seen[r] {
				t.Fatalf("duplicate chronon %v issued", r)
			}
			seen[r] = true
		}
	}
	if len(seen) != goroutines*per {
		t.Errorf("issued %d chronons, want %d", len(seen), goroutines*per)
	}
}

func TestSystemClockSane(t *testing.T) {
	now := SystemClock{}.Now()
	if !now.IsFinite() {
		t.Fatal("system clock returned an infinity")
	}
	// Sometime after 2020 and before 2100: catches unit mistakes.
	if now < Date(2020, 1, 1) || now > Date(2100, 1, 1) {
		t.Errorf("system chronon out of plausible range: %v", now.ISO())
	}
}

// newRand gives granularity property tests a seeded source without
// importing math/rand in every file.
func newRand(seed int64) *randSource { return &randSource{state: uint64(seed)} }

type randSource struct{ state uint64 }

// Intn returns a uniform-ish value in [0, n) via xorshift; statistical
// quality is irrelevant for test-case generation.
func (r *randSource) Intn(n int) int {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return int(r.state % uint64(n))
}
