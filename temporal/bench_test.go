package temporal

import (
	"math/rand"
	"testing"
)

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse("12/15/82"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRelate(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	pairs := make([][2]Interval, 1024)
	for i := range pairs {
		a := Chronon(r.Intn(1000))
		c := Chronon(r.Intn(1000))
		pairs[i] = [2]Interval{
			{From: a, To: a + Chronon(1+r.Intn(100))},
			{From: c, To: c + Chronon(1+r.Intn(100))},
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		Relate(p[0], p[1])
	}
}

func BenchmarkCoalesce(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	ivs := make([]Interval, 64)
	for i := range ivs {
		from := Chronon(r.Intn(1000))
		ivs[i] = Interval{From: from, To: from + Chronon(1+r.Intn(50))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Coalesce(ivs)
	}
}

func BenchmarkIntervalOps(b *testing.B) {
	a := Interval{From: 100, To: 200}
	c := Interval{From: 150, To: 300}
	b.Run("overlaps", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a.Overlaps(c)
		}
	})
	b.Run("subtract", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a.Subtract(c)
		}
	})
	b.Run("intersect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a.Intersect(c)
		}
	})
}
