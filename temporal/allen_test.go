package temporal

import (
	"math/rand"
	"testing"
)

func TestRelateBasicCases(t *testing.T) {
	cases := []struct {
		a, b Interval
		want Relation
	}{
		{iv(0, 5), iv(10, 20), RelPrecedes},
		{iv(0, 10), iv(10, 20), RelMeets},
		{iv(0, 15), iv(10, 20), RelOverlaps},
		{iv(0, 20), iv(10, 20), RelFinishedBy},
		{iv(0, 30), iv(10, 20), RelContains},
		{iv(10, 15), iv(10, 20), RelStarts},
		{iv(10, 20), iv(10, 20), RelEquals},
		{iv(10, 30), iv(10, 20), RelStartedBy},
		{iv(12, 18), iv(10, 20), RelDuring},
		{iv(15, 20), iv(10, 20), RelFinishes},
		{iv(15, 25), iv(10, 20), RelOverlappedBy},
		{iv(20, 25), iv(10, 20), RelMetBy},
		{iv(30, 40), iv(10, 20), RelPrecededBy},
	}
	for _, c := range cases {
		if got := Relate(c.a, c.b); got != c.want {
			t.Errorf("Relate(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRelateInvalidOnEmpty(t *testing.T) {
	if Relate(iv(5, 5), iv(0, 10)) != RelInvalid {
		t.Error("empty a must yield RelInvalid")
	}
	if Relate(iv(0, 10), iv(5, 5)) != RelInvalid {
		t.Error("empty b must yield RelInvalid")
	}
}

// Exactly one basic relation must hold between any pair of nonempty
// intervals, and Relate(b, a) must be its inverse.
func TestRelatePartitionAndInverse(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	all := []Relation{
		RelPrecedes, RelMeets, RelOverlaps, RelFinishedBy, RelContains,
		RelStarts, RelEquals, RelStartedBy, RelDuring, RelFinishes,
		RelOverlappedBy, RelMetBy, RelPrecededBy,
	}
	seen := map[Relation]bool{}
	for trial := 0; trial < 3000; trial++ {
		a1 := Chronon(r.Intn(12))
		a2 := a1 + 1 + Chronon(r.Intn(12))
		b1 := Chronon(r.Intn(12))
		b2 := b1 + 1 + Chronon(r.Intn(12))
		a, b := iv(a1, a2), iv(b1, b2)
		rel := Relate(a, b)
		if rel == RelInvalid {
			t.Fatalf("Relate(%v, %v) invalid on nonempty operands", a, b)
		}
		seen[rel] = true
		if inv := Relate(b, a); inv != rel.Inverse() {
			t.Fatalf("Relate(%v, %v) = %v but Relate reversed = %v (want %v)",
				a, b, rel, inv, rel.Inverse())
		}
		// Membership in OverlapSet must agree with Overlaps.
		if OverlapSet.Has(rel) != a.Overlaps(b) {
			t.Fatalf("OverlapSet disagrees with Overlaps for %v, %v (%v)", a, b, rel)
		}
		if PrecedeSet.Has(rel) != a.Precedes(b) {
			t.Fatalf("PrecedeSet disagrees with Precedes for %v, %v (%v)", a, b, rel)
		}
	}
	for _, rel := range all {
		if !seen[rel] {
			t.Errorf("random exploration never produced %v", rel)
		}
	}
}

func TestInverseIsInvolution(t *testing.T) {
	for r := RelInvalid; r <= RelPrecededBy; r++ {
		if r.Inverse().Inverse() != r {
			t.Errorf("Inverse(Inverse(%v)) != %v", r, r)
		}
	}
	if RelEquals.Inverse() != RelEquals {
		t.Error("equals must be self-inverse")
	}
}

func TestRelationString(t *testing.T) {
	if RelOverlaps.String() != "overlaps" || RelMetBy.String() != "met-by" {
		t.Error("relation names wrong")
	}
	if Relation(200).String() != "unknown" {
		t.Error("out-of-range relation must render unknown")
	}
}

func TestSatisfies(t *testing.T) {
	a, b := iv(0, 15), iv(10, 20)
	if !Satisfies(a, b, OverlapSet) {
		t.Error("overlapping intervals must satisfy OverlapSet")
	}
	if Satisfies(a, b, PrecedeSet) {
		t.Error("overlapping intervals must not satisfy PrecedeSet")
	}
	if !Satisfies(iv(0, 10), iv(10, 20), PrecedeSet) {
		t.Error("meeting intervals must satisfy PrecedeSet (half-open)")
	}
}

func TestNewRelationSet(t *testing.T) {
	s := NewRelationSet(RelMeets, RelEquals)
	if !s.Has(RelMeets) || !s.Has(RelEquals) || s.Has(RelDuring) {
		t.Error("RelationSet membership wrong")
	}
}
