package temporal

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDateRoundTrip(t *testing.T) {
	c := Date(1982, time.December, 15)
	if got := c.String(); got != "12/15/82" {
		t.Errorf("String() = %q, want 12/15/82", got)
	}
	if got := c.ISO(); got != "1982-12-15" {
		t.Errorf("ISO() = %q, want 1982-12-15", got)
	}
}

func TestParsePaperDates(t *testing.T) {
	cases := map[string]Chronon{
		"12/15/82":   Date(1982, time.December, 15),
		"08/25/77":   Date(1977, time.August, 25),
		"01/10/83":   Date(1983, time.January, 10),
		"12/15/1982": Date(1982, time.December, 15),
		"1982-12-15": Date(1982, time.December, 15),
		"forever":    Forever,
		"∞":          Forever,
		"infinity":   Forever,
		"beginning":  Beginning,
		"-∞":         Beginning,
		" 12/15/82 ": Date(1982, time.December, 15), // whitespace tolerated
	}
	for in, want := range cases {
		got, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("Parse(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestParseTwoDigitYearPivot(t *testing.T) {
	// "01/01/25" must mean 1925, not 2025: the paper's figures live in 19xx.
	got := MustParse("01/01/25")
	if want := Date(1925, time.January, 1); got != want {
		t.Errorf("Parse(01/01/25) = %v (%s), want %v", got, got.ISO(), want)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "not a date", "13/45/82", "12-15-82"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on garbage did not panic")
		}
	}()
	MustParse("garbage")
}

func TestSentinels(t *testing.T) {
	if Beginning.IsFinite() || Forever.IsFinite() {
		t.Error("sentinels must not be finite")
	}
	if !Date(1982, 12, 15).IsFinite() {
		t.Error("ordinary date must be finite")
	}
	if Forever.String() != "∞" || Beginning.String() != "-∞" {
		t.Errorf("sentinel rendering: %q %q", Forever.String(), Beginning.String())
	}
	if Forever.ISO() != "infinity" || Beginning.ISO() != "-infinity" {
		t.Errorf("sentinel ISO rendering: %q %q", Forever.ISO(), Beginning.ISO())
	}
}

func TestTimePanicsOnInfinite(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Time() on Forever did not panic")
		}
	}()
	Forever.Time()
}

func TestAddSaturates(t *testing.T) {
	if Forever.Add(100) != Forever || Forever.Add(-100) != Forever {
		t.Error("infinities must absorb displacement")
	}
	if Beginning.Add(5) != Beginning {
		t.Error("Beginning must absorb displacement")
	}
	big := Chronon(Forever - 1)
	if got := big.Add(10); got != Forever-1 {
		t.Errorf("overflow must clamp below Forever, got %d", got)
	}
	small := Chronon(Beginning + 1)
	if got := small.Add(-10); got != Beginning+1 {
		t.Errorf("underflow must clamp above Beginning, got %d", got)
	}
}

func TestNextPrev(t *testing.T) {
	c := Date(1982, 12, 15)
	if c.Next() != c+1 || c.Prev() != c-1 {
		t.Error("Next/Prev must step by one chronon")
	}
	if Forever.Next() != Forever {
		t.Error("Forever.Next must saturate")
	}
}

func TestCompareOrderingProperties(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Chronon(a), Chronon(b)
		c := x.Compare(y)
		switch {
		case a < b:
			return c == -1 && x.Before(y) && !x.After(y) && y.Compare(x) == 1
		case a > b:
			return c == 1 && x.After(y) && !x.Before(y) && y.Compare(x) == -1
		default:
			return c == 0 && !x.Before(y) && !x.After(y)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Chronon(a), Chronon(b)
		mn, mx := x.Min(y), x.Max(y)
		return mn <= mx && (mn == x || mn == y) && (mx == x || mx == y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringWithTimeOfDay(t *testing.T) {
	c := FromTime(time.Date(1982, 12, 15, 13, 45, 9, 0, time.UTC))
	if got := c.String(); got != "12/15/82 13:45:09" {
		t.Errorf("String() = %q", got)
	}
	if got := c.ISO(); got != "1982-12-15T13:45:09Z" {
		t.Errorf("ISO() = %q", got)
	}
}

func TestFromTimeTruncation(t *testing.T) {
	base := time.Date(2001, 6, 1, 10, 0, 0, 0, time.UTC)
	if FromTime(base) != FromTime(base.Add(500*time.Millisecond)) {
		t.Error("sub-second precision must truncate")
	}
}
