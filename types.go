// Package tdb is an embeddable temporal database engine implementing the
// taxonomy of Snodgrass & Ahn, "A Taxonomy of Time in Databases" (SIGMOD
// 1985). A database holds named relations of four kinds — static, static
// rollback, historical, and temporal (bitemporal) — differing in which of
// the paper's three kinds of time they record:
//
//   - transaction time: DBMS-assigned, append-only, enables rollback ("as of")
//   - valid time: user-supplied, correctable, enables historical queries
//   - user-defined time: ordinary Instant attributes, uninterpreted
//
// Relations are queried either through this package's query builder or
// through TQuel, the temporal query language in package tdb/tquel. Updates
// run in serialized transactions with a single commit chronon, optionally
// made durable via a write-ahead log.
package tdb

import (
	"tdb/internal/core"
	"tdb/internal/schema"
	"tdb/internal/tuple"
	"tdb/internal/value"
	"tdb/temporal"
)

// Kind identifies a relation's cell in the paper's Figure 10 taxonomy.
type Kind = core.Kind

// The four kinds of database in the taxonomy.
const (
	// Static relations keep only the current snapshot.
	Static = core.Static
	// StaticRollback relations record transaction time and support AsOf.
	StaticRollback = core.StaticRollback
	// Historical relations record valid time and support When/At queries.
	Historical = core.Historical
	// Temporal relations record both times (bitemporal).
	Temporal = core.Temporal
)

// Version is a stored tuple version with its valid and transaction periods.
type Version = core.Version

// Value is a typed attribute value.
type Value = value.Value

// ValueKind identifies a value's domain.
type ValueKind = value.Kind

// The attribute domains.
const (
	IntKind     = value.Int
	FloatKind   = value.Float
	StringKind  = value.String
	BoolKind    = value.Bool
	InstantKind = value.Instant
)

// Int constructs an integer value.
func Int(v int64) Value { return value.NewInt(v) }

// Float constructs a floating-point value.
func Float(v float64) Value { return value.NewFloat(v) }

// String constructs a string value.
func String(s string) Value { return value.NewString(s) }

// Bool constructs a boolean value.
func Bool(b bool) Value { return value.NewBool(b) }

// Instant constructs a user-defined time value: a chronon stored as data,
// uninterpreted by the DBMS (the paper's third kind of time).
func Instant(c temporal.Chronon) Value { return value.NewInstant(c) }

// Tuple is an ordered list of values.
type Tuple = tuple.Tuple

// NewTuple builds a tuple from values.
func NewTuple(vals ...Value) Tuple { return tuple.New(vals...) }

// Key builds a key tuple from values (an alias of NewTuple that reads
// better at call sites addressing tuples by key).
func Key(vals ...Value) Tuple { return tuple.New(vals...) }

// Schema describes a relation's explicit attributes. Transaction and valid
// time never appear in it; they are maintained by the store.
type Schema = schema.Schema

// Attribute is one named, typed column.
type Attribute = schema.Attribute

// Attr constructs an attribute.
func Attr(name string, kind ValueKind) Attribute {
	return Attribute{Name: name, Type: kind}
}

// NewSchema builds a schema; use (*Schema).WithKey to declare the key
// attributes identifying an entity across time.
func NewSchema(attrs ...Attribute) (*Schema, error) {
	return schema.New(attrs...)
}

// MustSchema is NewSchema for trusted literals; it panics on error.
func MustSchema(attrs ...Attribute) *Schema {
	return schema.MustNew(attrs...)
}

// valueCompare orders two values of the same kind; see value.Compare.
func valueCompare(a, b Value) (int, error) { return value.Compare(a, b) }

// ValueEqual reports whether two values have the same kind and payload.
func ValueEqual(a, b Value) bool { return value.Equal(a, b) }

// TupleEqual reports whether two tuples agree value for value.
func TupleEqual(a, b Tuple) bool { return tuple.Equal(a, b) }
