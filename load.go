package tdb

// Bulk load: the high-throughput ingest route. Relation.Load takes a slice
// of rows and commits them in large chunks — one transaction, one commit
// chronon, and one WAL record per chunk instead of per row — so the
// per-transaction costs (manager cycle, record framing, group-commit
// hand-off, fsync) are amortized across thousands of rows. The default
// chunk equals the segment seal threshold, so on append-only relations
// every full chunk's commit seals straight into an immutable columnar
// segment: sorted input becomes sealed segments directly, without the tail
// ever growing past one chunk.
//
// Durability pipelines: chunk k's WAL record is flushing through the group
// committer while chunk k+1 is being applied in memory. Load waits for
// every chunk's durability before returning. Recovery and replication see
// the same state as row-at-a-time ingest would produce — each chunk record
// replays through the ordinary multi-op apply path.

import (
	"fmt"

	"tdb/internal/config"
	"tdb/internal/segment"
	"tdb/internal/txn"
	"tdb/internal/wal"
	"tdb/temporal"
)

// DefaultLoadChunkRows is how many rows Load commits per transaction when
// neither Options.LoadChunkRows nor TDB_LOAD_CHUNK chooses another value.
// It matches the segment seal threshold so each full chunk seals into
// exactly one segment.
const DefaultLoadChunkRows = segment.DefaultSealRows

// loadChunkRows resolves the chunk size: Options.LoadChunkRows, then
// TDB_LOAD_CHUNK, then the default.
func (db *DB) loadChunkRows() int {
	if db.loadChunkOpt > 0 {
		return db.loadChunkOpt
	}
	return config.PosInt(config.EnvLoadChunk, DefaultLoadChunkRows)
}

// LoadRow is one row of bulk ingest. For interval relations (historical,
// temporal) the valid period is [From, To); for event relations From is
// the instant and To is ignored; static and rollback kinds ignore both.
type LoadRow struct {
	Data     Tuple
	From, To temporal.Chronon
}

// Load bulk-ingests rows, committing them in chunks of TDB_LOAD_CHUNK
// (default DefaultLoadChunkRows) rows. Each chunk is one transaction: all
// its rows share a commit chronon and one WAL record, and on append-only
// relations a full chunk's commit seals directly into a columnar segment.
//
// Load returns the number of rows committed in memory. Chunks are
// independent transactions: a row error aborts only the chunk containing
// it, leaving earlier chunks committed — the partial-load contract callers
// must expect. A "committed but not logged" error means every returned row
// was applied in memory but some chunk's WAL flush failed.
func (r *Relation) Load(rows []LoadRow) (int, error) {
	apply, err := loadApplier(r.Kind(), r.Event())
	if err != nil {
		return 0, err
	}
	chunk := r.db.loadChunkRows()
	var (
		pendings []*wal.Pending
		loaded   int
		loadErr  error
	)
	for off := 0; off < len(rows); off += chunk {
		end := off + chunk
		if end > len(rows) {
			end = len(rows)
		}
		p, err := r.db.loadChunk(r.Name(), rows[off:end], apply)
		if err != nil {
			loadErr = err
			break
		}
		if p != nil {
			pendings = append(pendings, p)
		}
		loaded = end
	}
	// Wait for every chunk's durability, even after an apply error: the
	// chunks before it committed and their records are already queued.
	for _, p := range pendings {
		if err := p.Wait(); err != nil && loadErr == nil {
			loadErr = fmt.Errorf("tdb: committed but not logged: %w", err)
		}
	}
	return loaded, loadErr
}

// loadApplier picks the per-row mutation for the relation's shape once, so
// the chunk loop does no per-row kind dispatch.
func loadApplier(kind Kind, event bool) (func(h *TxRel, row LoadRow) error, error) {
	switch {
	case kind == Static || kind == StaticRollback:
		return func(h *TxRel, row LoadRow) error { return h.Insert(row.Data) }, nil
	case event:
		return func(h *TxRel, row LoadRow) error { return h.AssertAt(row.Data, row.From) }, nil
	case kind == Historical || kind == Temporal:
		return func(h *TxRel, row LoadRow) error { return h.Assert(row.Data, row.From, row.To) }, nil
	default:
		return nil, fmt.Errorf("tdb: load: unknown relation kind %v", kind)
	}
}

// loadChunk commits one chunk as a single transaction and enqueues its WAL
// record without waiting — the caller collects the Pending and waits after
// the last chunk, which is what overlaps chunk k's fsync with chunk k+1's
// in-memory apply.
func (db *DB) loadChunk(name string, rows []LoadRow, apply func(h *TxRel, row LoadRow) error) (*wal.Pending, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	if db.readOnly {
		return nil, fmt.Errorf("%w: load", ErrReadOnly)
	}
	var rec *wal.Record
	err := db.mgr.Update(func(itx *txn.Tx) error {
		tx := &Tx{db: db, itx: itx}
		h, err := tx.Rel(name)
		if err != nil {
			return err
		}
		if cap(tx.ops) < len(rows) {
			tx.ops = make([]wal.Op, 0, len(rows))
		}
		for i := range rows {
			if err := apply(h, rows[i]); err != nil {
				return err
			}
		}
		if len(tx.ops) > 0 {
			rec = &wal.Record{Commit: itx.At(), Ops: tx.ops}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if rec != nil {
		db.statsApply(rec.Commit, rec.Ops)
		if db.gc != nil && !db.replay {
			return db.gc.Enqueue(*rec), nil
		}
	}
	return nil, nil
}
