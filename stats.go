package tdb

import (
	"fmt"

	"tdb/internal/stats"
	"tdb/internal/wal"
	"tdb/temporal"
)

// Per-relation temporal statistics (internal/stats), maintained on the
// committed operation stream. The one rule that keeps every copy of a
// database in agreement: statistics change only when a committed record's
// ops are applied — in update/loadChunk after the in-memory commit
// succeeds, in applyRecord for WAL replay and follower apply, and in
// create/drop for the catalog records those paths log directly. Aborted
// transactions never touch them (unlike write-version bumps, which may
// over-invalidate the cache on abort — statistics have no safe direction
// to be wrong in, so they track commits exactly). Checkpoints persist the
// statistics per relation (snapshot v4); restoring a legacy snapshot
// rebuilds them from the stored versions instead.

// statsEntry returns the relation's statistics, creating an empty record
// on first touch. Callers hold db.mu (read or write as appropriate; lazy
// creation only happens on write paths, which hold the write lock).
func (db *DB) statsEntry(name string) *stats.Rel {
	if e, ok := db.stats[name]; ok {
		return e
	}
	rel, err := db.cat.Get(name)
	if err != nil {
		return nil
	}
	e := stats.NewRel(rel.Schema().Arity(), rel.Kind().SupportsHistorical(), rel.Kind().SupportsRollback())
	db.stats[name] = e
	return e
}

// statsCreate registers empty statistics for a newly created relation.
// Caller holds db.mu.Lock.
func (db *DB) statsCreate(name string, kind Kind, event bool, sch *Schema) {
	_ = event
	db.stats[name] = stats.NewRel(sch.Arity(), kind.SupportsHistorical(), kind.SupportsRollback())
}

// statsDrop forgets a dropped relation's statistics. Caller holds
// db.mu.Lock.
func (db *DB) statsDrop(name string) { delete(db.stats, name) }

// statsApply folds one committed record's ops into the per-relation
// statistics. Caller holds db.mu.Lock. Every path that lands committed
// ops — live commit, bulk-load chunk, WAL replay, follower apply — goes
// through here with the same op stream, which is what keeps statistics
// byte-identical across all of them.
func (db *DB) statsApply(commit temporal.Chronon, ops []wal.Op) {
	for i := range ops {
		op := &ops[i]
		switch op.Code {
		case wal.OpCreate:
			db.statsCreate(op.Rel, op.Kind, op.Event, op.Schema)
			continue
		case wal.OpDrop:
			db.statsDrop(op.Rel)
			continue
		}
		e := db.statsEntry(op.Rel)
		if e == nil {
			continue
		}
		switch op.Code {
		case wal.OpInsert:
			e.Insert(op.Tuple, commit)
		case wal.OpDelete:
			e.Close(commit)
		case wal.OpReplace:
			e.Close(commit)
			e.Insert(op.Tuple, commit)
		case wal.OpAssert:
			e.Assert(op.Tuple, op.Valid, commit)
		case wal.OpRetract:
			e.Retraction()
		case wal.OpAssertAt:
			e.Assert(op.Tuple, temporal.At(op.At), commit)
		case wal.OpRetractAt:
			e.Retraction()
		}
	}
}

// statsRestore installs a relation's statistics while restoring a
// snapshot: decoded from the snapshot's statistics section when present
// (v4), otherwise rebuilt by walking the restored store — the legacy
// upgrade path, counted by tdb_stats_rebuilds_total.
func (db *DB) statsRestore(rs *wal.RelationSnapshot) error {
	if len(rs.Stats) > 0 {
		e, n, err := stats.DecodeRel(rs.Stats)
		if err != nil {
			return fmt.Errorf("restoring %q statistics: %w", rs.Name, err)
		}
		if n != len(rs.Stats) {
			return fmt.Errorf("restoring %q statistics: %d trailing bytes", rs.Name, len(rs.Stats)-n)
		}
		db.stats[rs.Name] = e
		return nil
	}
	e := stats.NewRel(rs.Schema.Arity(), rs.Kind.SupportsHistorical(), rs.Kind.SupportsRollback())
	rel, err := db.cat.Get(rs.Name)
	if err != nil {
		return err
	}
	rel.Store().Versions(func(v Version) bool {
		e.Observe(v.Data, v.Valid, v.Trans)
		return true
	})
	db.stats[rs.Name] = e
	stats.MRebuilds.Inc()
	return nil
}

// TemporalStats returns per-relation statistics summaries keyed by
// relation name — the /statz "stats" section.
func (db *DB) TemporalStats() map[string]stats.Summary {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make(map[string]stats.Summary, len(db.stats))
	for name, e := range db.stats {
		out[name] = e.Summarize()
	}
	return out
}

// EncodedStats returns the canonical statistics encoding for one relation,
// or ok=false when none exist. Byte-identity across a primary, its
// recovery, and its followers is a tested invariant.
func (db *DB) EncodedStats(name string) ([]byte, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.stats[name]
	if !ok {
		return nil, false
	}
	return stats.EncodeRel(e), true
}

// StatsSummary returns this relation's statistics digest.
func (r *Relation) StatsSummary() (stats.Summary, bool) {
	r.db.mu.RLock()
	defer r.db.mu.RUnlock()
	e, ok := r.db.stats[r.Name()]
	if !ok {
		return stats.Summary{}, false
	}
	return e.Summarize(), true
}

// EstimateNDV estimates the number of distinct values of the attribute at
// schema offset idx. ok is false when no statistics exist yet.
func (r *Relation) EstimateNDV(idx int) (float64, bool) {
	r.db.mu.RLock()
	defer r.db.mu.RUnlock()
	e, ok := r.db.stats[r.Name()]
	if !ok || e.Versions == 0 {
		return 1, false
	}
	stats.MEstimates.Inc()
	return e.NDV(idx), true
}

// EstimateOverlap estimates the fraction of this relation's versions whose
// valid period overlaps q. ok is false for kinds without valid time or
// before any interval has been recorded.
func (r *Relation) EstimateOverlap(q temporal.Interval) (float64, bool) {
	r.db.mu.RLock()
	defer r.db.mu.RUnlock()
	e, ok := r.db.stats[r.Name()]
	if !ok {
		return 0, false
	}
	sel, ok := e.ValidOverlapSel(q)
	if ok {
		stats.MEstimates.Inc()
	}
	return sel, ok
}

// EstimateValidExtent returns the finite valid-time span [lo, hi) this
// relation's recorded intervals cover, from the statistics interval
// histograms. ok is false for kinds without valid time or before any finite
// endpoint has been recorded. The planner prices window clauses with it:
// extent / slide bounds how many windows a windowed aggregation
// materializes.
func (r *Relation) EstimateValidExtent() (lo, hi temporal.Chronon, ok bool) {
	r.db.mu.RLock()
	defer r.db.mu.RUnlock()
	e, ok := r.db.stats[r.Name()]
	if !ok {
		return 0, 0, false
	}
	lo, hi, ok = e.ValidExtent()
	if ok {
		stats.MEstimates.Inc()
	}
	return lo, hi, ok
}

// EstimateVersions returns the statistics view of this relation: versions
// ever stored and the estimated fraction still current. ok is false when
// no statistics exist yet.
func (r *Relation) EstimateVersions() (total uint64, currentFrac float64, ok bool) {
	r.db.mu.RLock()
	defer r.db.mu.RUnlock()
	e, ok := r.db.stats[r.Name()]
	if !ok {
		return 0, 1, false
	}
	stats.MEstimates.Inc()
	return e.Versions, e.CurrentFraction(), true
}
