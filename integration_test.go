package tdb_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"tdb"
	"tdb/internal/core"
	"tdb/internal/dataset"
	"tdb/temporal"
)

func schemaT(t testing.TB) *tdb.Schema {
	t.Helper()
	s, err := tdb.NewSchema(tdb.Attr("name", tdb.StringKind), tdb.Attr("rank", tdb.StringKind))
	if err != nil {
		t.Fatal(err)
	}
	if s, err = s.WithKey("name"); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFourKindsSideBySide drives the same conceptual history into one
// relation of each kind and verifies the paper's comparative semantics:
// which questions each kind can answer, and what the answers are.
func TestFourKindsSideBySide(t *testing.T) {
	clock := temporal.NewLogicalClock(0)
	db, err := tdb.Open("", tdb.Options{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sch := schemaT(t)
	for _, k := range []tdb.Kind{tdb.Static, tdb.StaticRollback, tdb.Historical, tdb.Temporal} {
		if _, err := db.CreateRelation(k.String(), k, sch); err != nil {
			t.Fatal(err)
		}
	}

	// History: A=x recorded at t100 valid from 50; corrected to A=y at
	// t200 valid from 80.
	apply := func(at temporal.Chronon, rank string, validFrom temporal.Chronon) {
		t.Helper()
		if err := db.UpdateAt(at, func(tx *tdb.Tx) error {
			for _, k := range []tdb.Kind{tdb.Static, tdb.StaticRollback} {
				h, err := tx.Rel(k.String())
				if err != nil {
					return err
				}
				tup := tdb.NewTuple(tdb.String("A"), tdb.String(rank))
				if err := h.Insert(tup); errors.Is(err, tdb.ErrDuplicateKey) {
					err = h.Replace(tdb.Key(tdb.String("A")), tup)
				} else if err != nil {
					return err
				}
			}
			for _, k := range []tdb.Kind{tdb.Historical, tdb.Temporal} {
				h, err := tx.Rel(k.String())
				if err != nil {
					return err
				}
				if err := h.Assert(tdb.NewTuple(tdb.String("A"), tdb.String(rank)),
					validFrom, temporal.Forever); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	apply(100, "x", 50)
	apply(200, "y", 80)

	rank := func(res *tdb.Result) string {
		t.Helper()
		if res.Len() != 1 {
			t.Fatalf("expected one row, got %s", res)
		}
		return res.Tuples()[0][1].Str()
	}
	get := func(kind tdb.Kind) *tdb.Relation {
		t.Helper()
		r, err := db.Relation(kind.String())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	// Everyone agrees on the current answer.
	for _, k := range []tdb.Kind{tdb.Static, tdb.StaticRollback} {
		got, ok, err := get(k).Get(tdb.Key(tdb.String("A")))
		if err != nil || !ok || got[1].Str() != "y" {
			t.Errorf("%v current = %v %v %v", k, got, ok, err)
		}
	}
	for _, k := range []tdb.Kind{tdb.Historical, tdb.Temporal} {
		res, err := get(k).Query().At(90).Run()
		if err != nil {
			t.Fatal(err)
		}
		if rank(res) != "y" {
			t.Errorf("%v at 90 = %s", k, rank(res))
		}
	}

	// Rollback kinds remember the superseded database state.
	for _, k := range []tdb.Kind{tdb.StaticRollback, tdb.Temporal} {
		res, err := get(k).Query().AsOf(150).Run()
		if err != nil {
			t.Fatal(err)
		}
		if rank(res) != "x" {
			t.Errorf("%v as of 150 = %s", k, rank(res))
		}
	}

	// Valid-time kinds answer about reality at instant 60: x (the later
	// correction started at 80, so [50,80) still says x).
	for _, k := range []tdb.Kind{tdb.Historical, tdb.Temporal} {
		res, err := get(k).Query().At(60).Run()
		if err != nil {
			t.Fatal(err)
		}
		if rank(res) != "x" {
			t.Errorf("%v at 60 = %s", k, rank(res))
		}
	}

	// The temporal relation alone answers the combined question: what did
	// we believe at as-of 150 about reality at instant 90? Answer: x (the
	// correction wasn't known yet).
	res, err := get(tdb.Temporal).Query().AsOf(150).At(90).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rank(res) != "x" {
		t.Errorf("temporal (90 as of 150) = %s", rank(res))
	}

	// Kind boundaries (Figure 10's empty cells).
	if _, err := get(tdb.Static).Query().AsOf(150).Run(); !errors.Is(err, tdb.ErrNoRollback) {
		t.Errorf("static as-of: %v", err)
	}
	if _, err := get(tdb.Historical).Query().AsOf(150).Run(); !errors.Is(err, tdb.ErrNoRollback) {
		t.Errorf("historical as-of: %v", err)
	}
	if _, err := get(tdb.StaticRollback).Query().At(60).Run(); !errors.Is(err, tdb.ErrNoValidTime) {
		t.Errorf("rollback at: %v", err)
	}
	if _, err := get(tdb.Static).Query().At(60).Run(); !errors.Is(err, tdb.ErrNoValidTime) {
		t.Errorf("static at: %v", err)
	}
}

// TestConcurrentReadersAndWriters hammers one temporal relation with
// parallel writers and readers; run with -race. Readers must always see a
// consistent committed state.
func TestConcurrentReadersAndWriters(t *testing.T) {
	db, err := tdb.Open("", tdb.Options{Clock: temporal.NewTickingClock(0)})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.CreateRelation("r", tdb.Temporal, schemaT(t)); err != nil {
		t.Fatal(err)
	}
	rel, err := db.Relation("r")
	if err != nil {
		t.Fatal(err)
	}
	const writers, readers, opsPerWriter = 4, 4, 100
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWriter; i++ {
				name := fmt.Sprintf("w%d-e%d", w, i%10)
				err := db.Update(func(tx *tdb.Tx) error {
					h, err := tx.Rel("r")
					if err != nil {
						return err
					}
					return h.Assert(tdb.NewTuple(tdb.String(name), tdb.String("x")),
						tx.At(), temporal.Forever)
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := rel.Query().Run()
				if err != nil {
					errs <- err
					return
				}
				for _, tup := range res.Tuples() {
					if len(tup) != 2 {
						errs <- fmt.Errorf("torn tuple %v", tup)
						return
					}
				}
			}
		}()
	}
	// Wait for writers, then stop readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	writersDone := make(chan struct{})
	go func() {
		// Writers finish when all their ops are in; readers loop until stop.
		defer close(writersDone)
		for {
			res, err := rel.Query().Run()
			if err != nil {
				return
			}
			if res.Len() >= writers*10 {
				return
			}
		}
	}()
	<-writersDone
	close(stop)
	<-done
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Each re-assertion of an existing entity closes the prior version and
	// appends both a remainder and the new content: 10 first asserts per
	// writer (+1 version each) and 90 re-asserts (+2 each).
	want := writers * (10 + 2*(opsPerWriter-10))
	if got := rel.VersionCount(); got != want {
		t.Errorf("versions = %d, want %d", got, want)
	}
	current := 0
	for _, v := range rel.Versions() {
		if v.Current() {
			current++
		}
	}
	// Currently believed history per entity: one version per assertion
	// (consecutive periods), so current versions equal total operations.
	if current != writers*opsPerWriter {
		t.Errorf("current versions = %d, want %d", current, writers*opsPerWriter)
	}
}

// TestFacadeAgainstDirectStores: random operation streams through the
// facade produce exactly the state the core store produces directly.
func TestFacadeMatchesDataset(t *testing.T) {
	cfg := dataset.DefaultConfig()
	cfg.Entities, cfg.VersionsPerEntity = 25, 6
	events := dataset.History(cfg)

	db, err := tdb.Open("", tdb.Options{Clock: temporal.NewLogicalClock(0)})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.CreateRelation("r", tdb.Temporal, schemaT(t)); err != nil {
		t.Fatal(err)
	}
	rel, err := db.Relation("r")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		err := db.UpdateAt(e.Commit, func(tx *tdb.Tx) error {
			h, err := tx.Rel("r")
			if err != nil {
				return err
			}
			if e.Assert {
				return h.Assert(tdb.NewTuple(tdb.String(e.Name), tdb.String(e.Rank)),
					e.Valid.From, e.Valid.To)
			}
			err = h.Retract(tdb.Key(tdb.String(e.Name)), e.Valid.From, e.Valid.To)
			if errors.Is(err, tdb.ErrNoSuchTuple) {
				return nil
			}
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// Reference: the same stream loaded directly into a core store.
	ref := core.NewTemporalStore(dataset.Schema())
	if err := dataset.LoadTemporal(ref, events); err != nil {
		t.Fatal(err)
	}
	asSet := func(vs []tdb.Version) map[string]bool {
		out := make(map[string]bool, len(vs))
		for _, v := range vs {
			out[v.String()] = true
		}
		return out
	}
	for _, at := range dataset.Commits(events) {
		facadeVs, err := rel.VisibleVersions(at, true)
		if err != nil {
			t.Fatal(err)
		}
		a, b := asSet(facadeVs), asSet(ref.AsOf(at))
		if len(a) != len(b) {
			t.Fatalf("as of %v: facade %d rows, direct %d rows", at, len(a), len(b))
		}
		for k := range a {
			if !b[k] {
				t.Fatalf("as of %v: facade row %q missing from direct store", at, k)
			}
		}
	}
}
