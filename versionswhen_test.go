package tdb

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"tdb/temporal"
)

// versionSet renders versions order-insensitively for set comparison.
func versionSet(vs []Version) []string {
	out := make([]string, 0, len(vs))
	for _, v := range vs {
		out = append(out, fmt.Sprintf("%v|%v|%v", v.Data, v.Valid, v.Trans))
	}
	sort.Strings(out)
	return out
}

// VersionsWhen must return exactly the VisibleVersions whose valid period
// overlaps the query window — it is the indexed route to the same set, and
// the TQuel planner relies on that equivalence.
func TestVersionsWhenMatchesVisibleVersions(t *testing.T) {
	db := memDB(t)
	loadFaculty(t, db)
	temp, err := db.Relation("faculty")
	if err != nil {
		t.Fatal(err)
	}
	hist, err := db.CreateRelation("histfac", Historical, facultySchema(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []struct {
		tup      Tuple
		from, to temporal.Chronon
	}{
		{fac("Merrie", "associate"), d770901, d821201},
		{fac("Merrie", "full"), d821201, temporal.Forever},
		{fac("Tom", "associate"), d821205, temporal.Forever},
		{fac("Mike", "assistant"), d830101, d840301},
	} {
		if err := hist.Assert(a.tup, a.from, a.to); err != nil {
			t.Fatal(err)
		}
	}

	windows := []temporal.Interval{
		temporal.At(d821210),
		{From: d770901, To: d821201},
		{From: d830101, To: temporal.Forever},
		temporal.At(d770825), // before anything holds
		temporal.All,
	}
	cases := []struct {
		rel      *Relation
		asOf     temporal.Chronon
		hasAsOf  bool
		nickname string
	}{
		{hist, 0, false, "historical"},
		{temp, 0, false, "temporal current"},
		{temp, d821210, true, "temporal as-of"},
	}
	for _, c := range cases {
		for _, q := range windows {
			got, indexed, err := c.rel.VersionsWhen(q, c.asOf, c.hasAsOf)
			if err != nil {
				t.Fatalf("%s %v: %v", c.nickname, q, err)
			}
			if !indexed {
				t.Fatalf("%s must support the pushed when path", c.nickname)
			}
			all, err := c.rel.VisibleVersions(c.asOf, c.hasAsOf)
			if err != nil {
				t.Fatal(err)
			}
			var want []Version
			for _, v := range all {
				if v.Valid.Overlaps(q) {
					want = append(want, v)
				}
			}
			g, w := versionSet(got), versionSet(want)
			if len(g) != len(w) {
				t.Fatalf("%s %v: got %d versions, want %d\n%v\n%v", c.nickname, q, len(g), len(w), g, w)
			}
			for i := range g {
				if g[i] != w[i] {
					t.Errorf("%s %v: version %d differs:\n got %s\nwant %s", c.nickname, q, i, g[i], w[i])
				}
			}
		}
	}
}

func TestVersionsWhenUnsupportedKinds(t *testing.T) {
	db := memDB(t)
	st, err := db.CreateRelation("s", Static, facultySchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, indexed, err := st.VersionsWhen(temporal.All, 0, false); err != nil || indexed {
		t.Errorf("static: indexed=%v err=%v, want unindexed fallback", indexed, err)
	}
	hist, err := db.CreateRelation("h", Historical, facultySchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := hist.VersionsWhen(temporal.All, d821210, true); !errors.Is(err, ErrNoRollback) {
		t.Errorf("historical as-of: err = %v, want ErrNoRollback", err)
	}
}
