package tdb

import (
	"errors"
	"testing"

	"tdb/temporal"
)

func TestSeriesTrend(t *testing.T) {
	db := memDB(t)
	rel := loadFaculty(t, db)
	series, err := rel.Series(temporal.Date(1977, 1, 1), temporal.Date(1985, 1, 1), temporal.Year)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 8 {
		t.Fatalf("series length = %d", len(series))
	}
	wantByYear := map[int]int{
		1977: 0, // Merrie started 09/01/77; Jan 1st count is 0
		1978: 1,
		1982: 1,
		1983: 2, // Tom joined 12/05/82; Mike starts 01/01/83 — count at Jan 1 1983: Merrie, Tom, Mike? Mike valid from 01/01/83 inclusive -> 3
	}
	// Recompute expectation precisely instead of guessing Mike's boundary:
	// Mike is valid [01/01/83, 03/01/84): at 01/01/83 he counts.
	wantByYear[1983] = 3
	wantByYear[1984] = 3 // Jan 1 1984: Mike still valid (left 03/01/84)
	for _, p := range series {
		y := p.Bucket.From.Time().Year()
		if want, ok := wantByYear[y]; ok && p.Count != want {
			t.Errorf("count at %d = %d, want %d", y, p.Count, want)
		}
	}
	// Bucket alignment and contiguity.
	for i := 1; i < len(series); i++ {
		if series[i].Bucket.From != series[i-1].Bucket.To {
			t.Errorf("series gap between %d and %d", i-1, i)
		}
	}
}

func TestSeriesKindBoundaries(t *testing.T) {
	db := memDB(t)
	st, err := db.CreateRelation("s", Static, facultySchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Series(0, 100, temporal.Day); !errors.Is(err, ErrNoValidTime) {
		t.Errorf("series on static: %v", err)
	}
	rel := loadFaculty(t, db)
	if _, err := rel.Series(100, 0, temporal.Day); err == nil {
		t.Error("inverted series window must fail")
	}
}

func TestVersionsDuring(t *testing.T) {
	db := memDB(t)
	rel := loadFaculty(t, db)
	// The window spanning Merrie's promotion recording (12/15/82) sees
	// both her superseded and corrected versions.
	vs, err := rel.VersionsDuring(d821210, d821220)
	if err != nil {
		t.Fatal(err)
	}
	ranks := map[string]bool{}
	for _, v := range vs {
		if v.Data[0].Str() == "Merrie" {
			ranks[v.Data[1].Str()] = true
		}
	}
	if !ranks["associate"] || !ranks["full"] {
		t.Fatalf("window versions = %v", vs)
	}
	// A point window equals VisibleVersions at that instant.
	point, err := rel.VersionsDuring(d821210, d821210)
	if err != nil {
		t.Fatal(err)
	}
	visible, err := rel.VisibleVersions(d821210, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(point) != len(visible) {
		t.Fatalf("point window %d versions, visible %d", len(point), len(visible))
	}
	// Inverted windows and unsupported kinds fail.
	if _, err := rel.VersionsDuring(d821220, d821210); err == nil {
		t.Error("inverted window must fail")
	}
	hist, err := db.CreateRelation("h", Historical, facultySchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hist.VersionsDuring(0, 100); !errors.Is(err, ErrNoRollback) {
		t.Errorf("window on historical: %v", err)
	}
}
