package tdb

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"tdb/temporal"
)

// TestIngestSoak exercises every ingest path of this PR together at a
// scale where batching, sealing, and checkpointing all actually engage: a
// bulk load big enough to span several chunks, then sixteen concurrent
// group-committed writers, then an epoch rollover with more writes — with
// a follower differential and a recovery differential at the end. Skipped
// under -short (it is the `make soak-ingest` CI arm).
func TestIngestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("ingest soak skipped in -short mode")
	}
	pPath := filepath.Join(t.TempDir(), "tdb.wal")
	primary, err := Open(pPath, Options{
		Clock: temporal.NewLogicalClock(temporal.Date(1985, 1, 1)),
		Sync:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	rel, err := primary.CreateRelation("soak", Temporal, facultySchema(t))
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: bulk load across multiple chunks (multi-op WAL records,
	// segment-direct sealing).
	const bulk = 20_000
	base := temporal.Date(1970, 1, 1)
	rows := make([]LoadRow, bulk)
	for i := range rows {
		rows[i] = LoadRow{
			Data: fac(fmt.Sprintf("bulk-%05d", i), "loaded"),
			From: base + temporal.Chronon(i),
			To:   temporal.Forever,
		}
	}
	if n, err := rel.Load(rows); err != nil || n != bulk {
		t.Fatalf("Load: %d rows, %v", n, err)
	}
	if segs := primary.Stats().Segments; segs == 0 {
		t.Fatal("bulk load sealed no segments")
	}

	// Phase 2: sixteen concurrent committers through group commit.
	commitWave := func(tag string) {
		const workers, per = 16, 64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					name := fmt.Sprintf("%s-%02d-%02d", tag, w, i)
					err := primary.Update(func(tx *Tx) error {
						h, err := tx.Rel("soak")
						if err != nil {
							return err
						}
						return h.Assert(fac(name, "live"), d821201, temporal.Forever)
					})
					if err != nil {
						t.Errorf("%s worker %d commit %d: %v", tag, w, i, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}
	commitWave("wave1")

	// Phase 3: follower differential — the group-committed, bulk-loaded log
	// ships byte-for-byte.
	fPath := filepath.Join(t.TempDir(), "tdb.wal")
	follower := openFollower(t, fPath, nil)
	defer follower.Close()
	shipAll(t, primary, follower)
	assertReplicaIdentical(t, primary, follower, pPath, fPath)

	// Phase 4: epoch rollover under load — checkpoint (which must drain the
	// group committer first), then another wave, then re-sync the follower
	// across the era boundary.
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	commitWave("wave2")
	shipAll(t, primary, follower)
	assertReplicaIdentical(t, primary, follower, pPath, fPath)

	// Phase 5: recovery differential.
	want := stateDigest(t, primary)
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
	re := reopen(t, pPath)
	if got := stateDigest(t, re); !digestsEqual(got, want) {
		t.Fatalf("recovered state diverges after soak:\nwant %v\ngot  %v", want, got)
	}
	reRel, err := re.Relation("soak")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reRel.VersionCount(), bulk+2*16*64; got != want {
		t.Fatalf("recovered version count = %d, want %d", got, want)
	}
}
