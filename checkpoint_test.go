package tdb

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"tdb/internal/core"
	"tdb/internal/wal"
	"tdb/temporal"
)

// stateDigest captures everything observable about a database, for
// before/after-recovery comparison.
func stateDigest(t *testing.T, db *DB) []string {
	t.Helper()
	var out []string
	for _, name := range db.Relations() {
		rel, err := db.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, "rel:"+name+":"+rel.Kind().String())
		for _, v := range rel.Versions() {
			out = append(out, name+":"+v.String())
		}
	}
	sort.Strings(out)
	return out
}

func digestsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// buildMixedDB populates one relation of every kind through dated history.
func buildMixedDB(t *testing.T, db *DB) {
	t.Helper()
	sch := facultySchema(t)
	for _, k := range []Kind{Static, StaticRollback, Historical, Temporal} {
		if _, err := db.CreateRelation("r_"+k.String(), k, sch); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.CreateEventRelation("r_events", Temporal, sch); err != nil {
		t.Fatal(err)
	}
	for i, at := range []temporal.Chronon{d770825, d821201, d821215} {
		rank := []string{"a", "b", "c"}[i]
		if err := db.UpdateAt(at, func(tx *Tx) error {
			for _, k := range []Kind{Static, StaticRollback} {
				h, _ := tx.Rel("r_" + k.String())
				tup := fac("X", rank)
				if err := h.Insert(tup); errors.Is(err, ErrDuplicateKey) {
					if err := h.Replace(Key(String("X")), tup); err != nil {
						return err
					}
				} else if err != nil {
					return err
				}
			}
			for _, k := range []Kind{Historical, Temporal} {
				h, _ := tx.Rel("r_" + k.String())
				if err := h.Assert(fac("X", rank), at, temporal.Forever); err != nil {
					return err
				}
			}
			ev, _ := tx.Rel("r_events")
			return ev.AssertAt(fac("X", rank), at)
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := reopen(t, path)
	buildMixedDB(t, db)
	before := stateDigest(t, db)

	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The log is now empty; the snapshot holds everything.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Errorf("log not truncated: %d bytes", fi.Size())
	}
	if _, err := os.Stat(path + ".snap"); err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}
	// State unchanged in the live database.
	if got := stateDigest(t, db); !digestsEqual(before, got) {
		t.Fatal("checkpoint changed live state")
	}
	db.Close()

	db2 := reopen(t, path)
	if got := stateDigest(t, db2); !digestsEqual(before, got) {
		t.Fatalf("state after snapshot recovery differs:\nbefore %v\nafter  %v", before, got)
	}
	// Rollback still reaches pre-checkpoint history: as of 12/10/82 the
	// belief was "a until 12/01/82, then b".
	rel, _ := db2.Relation("r_temporal")
	vs, err := rel.VisibleVersions(d821210, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("as of 12/10/82 after checkpoint recovery: %v", vs)
	}
	current := ""
	for _, v := range vs {
		if v.Valid.Contains(d821210) {
			current = v.Data[1].Str()
		}
	}
	if current != "b" {
		t.Fatalf("belief at 12/10/82 = %q, want b (%v)", current, vs)
	}
}

func TestCheckpointThenMoreWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := reopen(t, path)
	buildMixedDB(t, db)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint writes land in the fresh log.
	rel, _ := db.Relation("r_temporal")
	if err := db.UpdateAt(d840225, func(tx *Tx) error {
		h, _ := tx.Rel("r_temporal")
		return h.Assert(fac("Y", "new"), d840301, temporal.Forever)
	}); err != nil {
		t.Fatal(err)
	}
	_ = rel
	before := stateDigest(t, db)
	db.Close()

	db2 := reopen(t, path)
	if got := stateDigest(t, db2); !digestsEqual(before, got) {
		t.Fatalf("snapshot+suffix recovery differs:\nbefore %v\nafter  %v", before, got)
	}
}

func TestCheckpointRepeatedly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := reopen(t, path)
	buildMixedDB(t, db)
	for i := 0; i < 3; i++ {
		if err := db.Checkpoint(); err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
		at := temporal.Date(1990+i, 1, 1)
		if err := db.UpdateAt(at, func(tx *Tx) error {
			h, _ := tx.Rel("r_historical")
			return h.Assert(fac("Z", string(rune('a'+i))), at, temporal.Forever)
		}); err != nil {
			t.Fatal(err)
		}
	}
	before := stateDigest(t, db)
	db.Close()
	db2 := reopen(t, path)
	if got := stateDigest(t, db2); !digestsEqual(before, got) {
		t.Fatal("repeated checkpoint recovery differs")
	}
}

// Crash window: snapshot written, log NOT truncated (the pre-normalization
// snapshot still counts the covered prefix). Recovery must not double-apply.
func TestCheckpointCrashBeforeTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := reopen(t, path)
	buildMixedDB(t, db)
	before := stateDigest(t, db)

	// Simulate the crash by writing the snapshot exactly as Checkpoint
	// does (next epoch, covering the whole log), then *not* truncating.
	snap := wal.Snapshot{LastCommit: db.mgr.Clock().Last(), Epoch: db.epoch + 1, Records: db.log.Records()}
	for _, name := range db.cat.Names() {
		rel, _ := db.cat.Get(name)
		rs := wal.RelationSnapshot{Name: name, Kind: rel.Kind(), Event: rel.Event(), Schema: rel.Schema()}
		rel.Store().Versions(func(v Version) bool {
			rs.Versions = append(rs.Versions, v)
			return true
		})
		snap.Relations = append(snap.Relations, rs)
	}
	if err := wal.WriteSnapshot(nil, path+".snap", snap); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2 := reopen(t, path)
	if got := stateDigest(t, db2); !digestsEqual(before, got) {
		t.Fatalf("recovery double-applied the covered prefix:\nbefore %v\nafter  %v", before, got)
	}
	// And it keeps working: more writes, another reopen.
	if err := db2.UpdateAt(temporal.Date(1995, 1, 1), func(tx *Tx) error {
		h, _ := tx.Rel("r_historical")
		return h.Assert(fac("W", "w"), temporal.Date(1995, 1, 1), temporal.Forever)
	}); err != nil {
		t.Fatal(err)
	}
	before2 := stateDigest(t, db2)
	db2.Close()
	db3 := reopen(t, path)
	if got := stateDigest(t, db3); !digestsEqual(before2, got) {
		t.Fatal("post-crash-recovery writes lost")
	}
}

// Crash window: log truncated but snapshot still says Records=N (crash
// between truncate and normalization). Recovery must skip nothing, then
// post-recovery writes must survive another reopen (the stale Records
// field is normalized away).
func TestCheckpointCrashAfterTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := reopen(t, path)
	buildMixedDB(t, db)
	before := stateDigest(t, db)
	records := db.log.Records()

	snap := wal.Snapshot{LastCommit: db.mgr.Clock().Last(), Epoch: db.epoch + 1, Records: records}
	for _, name := range db.cat.Names() {
		rel, _ := db.cat.Get(name)
		rs := wal.RelationSnapshot{Name: name, Kind: rel.Kind(), Event: rel.Event(), Schema: rel.Schema()}
		rel.Store().Versions(func(v Version) bool {
			rs.Versions = append(rs.Versions, v)
			return true
		})
		snap.Relations = append(snap.Relations, rs)
	}
	if err := wal.WriteSnapshot(nil, path+".snap", snap); err != nil {
		t.Fatal(err)
	}
	db.Close()
	// Truncate the log "by hand" (the crash happened before normalization).
	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}

	db2 := reopen(t, path)
	if got := stateDigest(t, db2); !digestsEqual(before, got) {
		t.Fatal("recovery after truncate-crash differs")
	}
	// Fewer than Records new writes, then reopen: they must NOT be skipped.
	if err := db2.UpdateAt(temporal.Date(1995, 1, 1), func(tx *Tx) error {
		h, _ := tx.Rel("r_historical")
		return h.Assert(fac("V", "v"), temporal.Date(1995, 1, 1), temporal.Forever)
	}); err != nil {
		t.Fatal(err)
	}
	before2 := stateDigest(t, db2)
	db2.Close()
	db3 := reopen(t, path)
	if got := stateDigest(t, db3); !digestsEqual(before2, got) {
		t.Fatal("write after truncate-crash was skipped on recovery")
	}
}

// segCount returns the number of sealed segments behind a relation, or 0
// for stores that have no segment log.
func segCount(t *testing.T, db *DB, name string) int {
	t.Helper()
	rel, err := db.cat.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	seg, ok := rel.Store().(core.Segmented)
	if !ok {
		return 0
	}
	return seg.SegmentStats().Segments
}

// buildSealedDB writes enough versions through tiny seal thresholds that
// both append-only relations hold sealed segments plus a non-empty tail.
func buildSealedDB(t *testing.T, db *DB) {
	t.Helper()
	sch := facultySchema(t)
	if _, err := db.CreateRelation("r_temporal", Temporal, sch); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelation("r_rollback", StaticRollback, sch); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 11; i++ {
		at := temporal.Date(1982, 1, 1+i)
		if err := db.UpdateAt(at, func(tx *Tx) error {
			h, _ := tx.Rel("r_temporal")
			if err := h.Assert(fac("X", string(rune('a'+i))), at, temporal.Forever); err != nil {
				return err
			}
			r, _ := tx.Rel("r_rollback")
			tup := fac("X", string(rune('a'+i)))
			if err := r.Insert(tup); errors.Is(err, ErrDuplicateKey) {
				return r.Replace(Key(String("X")), tup)
			} else if err != nil {
				return err
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// A checkpoint of a segmented store ships sealed segments as columnar
// blocks; recovery must reattach them and produce the same observable state,
// and the flat-path ablation must recover those same blocks row-wise.
func TestCheckpointSegmentedRoundTrip(t *testing.T) {
	t.Setenv("TDB_DISABLE_SEGMENTS", "") // force segments on even in the ablation CI job
	t.Setenv("TDB_SEGMENT_ROWS", "4")
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := reopen(t, path)
	buildSealedDB(t, db)
	if n := segCount(t, db, "r_temporal"); n == 0 {
		t.Fatal("no sealed segments before checkpoint; threshold knob inert")
	}
	before := stateDigest(t, db)

	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := stateDigest(t, db); !digestsEqual(before, got) {
		t.Fatal("checkpoint changed live state")
	}
	db.Close()

	db2 := reopen(t, path)
	if got := stateDigest(t, db2); !digestsEqual(before, got) {
		t.Fatalf("segmented recovery differs:\nbefore %v\nafter  %v", before, got)
	}
	if n := segCount(t, db2, "r_temporal"); n == 0 {
		t.Fatal("recovery flattened the segments")
	}
	if n := segCount(t, db2, "r_rollback"); n == 0 {
		t.Fatal("recovery flattened the rollback segments")
	}
	// Post-restore writes land in the tail behind the reattached segments
	// and survive another reopen.
	at := temporal.Date(1983, 6, 1)
	if err := db2.UpdateAt(at, func(tx *Tx) error {
		h, _ := tx.Rel("r_temporal")
		return h.Assert(fac("Y", "new"), at, temporal.Forever)
	}); err != nil {
		t.Fatal(err)
	}
	before2 := stateDigest(t, db2)
	db2.Close()
	db3 := reopen(t, path)
	if got := stateDigest(t, db3); !digestsEqual(before2, got) {
		t.Fatal("post-restore writes lost after segmented recovery")
	}
	db3.Close()

	// Flat-path ablation: the same v3 snapshot must restore row-wise when
	// segments are disabled, with identical observable state.
	t.Setenv("TDB_DISABLE_SEGMENTS", "1")
	db4 := reopen(t, path)
	if got := stateDigest(t, db4); !digestsEqual(before2, got) {
		t.Fatal("segments-off recovery of a segmented snapshot differs")
	}
	if n := segCount(t, db4, "r_temporal"); n != 0 {
		t.Fatalf("ablated recovery kept %d columnar segments", n)
	}
	db4.Close()
}

func TestCheckpointInMemoryFails(t *testing.T) {
	db := memDB(t)
	if err := db.Checkpoint(); err == nil {
		t.Fatal("in-memory checkpoint must fail")
	}
}

func TestCorruptSnapshotSurfaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := reopen(t, path)
	buildMixedDB(t, db)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	data, err := os.ReadFile(path + ".snap")
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path+".snap", data, 0o644); err != nil {
		t.Fatal(err)
	}
	// The log is empty after the checkpoint, so nothing can prove which era
	// the fallback belongs to: the open must fail rather than guess, and the
	// error must match both the exported sentinel and the internal cause.
	_, err = Open(path, Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot: want ErrCorrupt, got %v", err)
	}
	if !errors.Is(err, wal.ErrSnapshotCorrupt) {
		t.Fatalf("corrupt snapshot: cause lost from chain: %v", err)
	}
}

// The per-relation write-version counters drive query-cache invalidation;
// a checkpoint must carry them across restore exactly, or a post-restart
// cache (fed by a warm peer or a shared key scheme) could rendezvous with
// retired entries.
func TestCheckpointPreservesWriteVersions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := reopen(t, path)
	buildMixedDB(t, db)

	want := map[string]uint64{}
	for _, name := range db.Relations() {
		rel, err := db.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = rel.WriteVersion()
		if want[name] == 0 {
			t.Errorf("relation %s: write version still 0 after writes", name)
		}
	}

	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Checkpointing is not a write: the live counters must not move.
	for _, name := range db.Relations() {
		rel, _ := db.Relation(name)
		if got := rel.WriteVersion(); got != want[name] {
			t.Errorf("relation %s: checkpoint moved write version %d -> %d", name, want[name], got)
		}
	}
	db.Close()

	// The log is empty, so recovery is snapshot-only: the restored counters
	// must equal the persisted ones exactly (version replay during restore
	// must not bump them on top).
	db2 := reopen(t, path)
	for _, name := range db2.Relations() {
		rel, err := db2.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := rel.WriteVersion(); got != want[name] {
			t.Errorf("relation %s: write version after restore = %d, want %d", name, got, want[name])
		}
	}

	// Writes after the restored snapshot keep counting from the restored
	// value, preserving monotonicity across the restart.
	if err := db2.UpdateAt(temporal.Date(1995, 1, 1), func(tx *Tx) error {
		h, _ := tx.Rel("r_historical")
		return h.Assert(fac("W", "w"), temporal.Date(1995, 1, 1), temporal.Forever)
	}); err != nil {
		t.Fatal(err)
	}
	rel, _ := db2.Relation("r_historical")
	if got := rel.WriteVersion(); got != want["r_historical"]+1 {
		t.Errorf("post-restore write: version = %d, want %d", got, want["r_historical"]+1)
	}
	db2.Close()
}
