package tdb_test

import (
	"fmt"
	"log"

	"tdb"
	"tdb/temporal"
	"tdb/tquel"
)

// A bitemporal relation distinguishes what was true (valid time) from what
// the database believed (transaction time): the paper's retroactive
// promotion, in miniature.
func Example() {
	db, err := tdb.Open("", tdb.Options{Clock: temporal.NewLogicalClock(temporal.Date(1982, 12, 1))})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	sch, _ := tdb.NewSchema(tdb.Attr("name", tdb.StringKind), tdb.Attr("rank", tdb.StringKind))
	sch, _ = sch.WithKey("name")
	faculty, _ := db.CreateRelation("faculty", tdb.Temporal, sch)

	// Recorded 12/01/82: Merrie is an associate professor since 1977.
	_ = db.UpdateAt(temporal.Date(1982, 12, 1), func(tx *tdb.Tx) error {
		f, _ := tx.Rel("faculty")
		return f.Assert(tdb.NewTuple(tdb.String("Merrie"), tdb.String("associate")),
			temporal.Date(1977, 9, 1), temporal.Forever)
	})
	// Recorded 12/15/82: she was actually promoted on 12/01/82.
	_ = db.UpdateAt(temporal.Date(1982, 12, 15), func(tx *tdb.Tx) error {
		f, _ := tx.Rel("faculty")
		return f.Assert(tdb.NewTuple(tdb.String("Merrie"), tdb.String("full")),
			temporal.Date(1982, 12, 1), temporal.Forever)
	})

	// Reality on 12/10/82 (current belief) vs the database's belief then.
	now, _ := faculty.Query().At(temporal.Date(1982, 12, 10)).Run()
	then, _ := faculty.Query().AsOf(temporal.Date(1982, 12, 10)).At(temporal.Date(1982, 12, 10)).Run()
	fmt.Println("valid at 12/10/82, known today: ", now.Tuples()[0][1])
	fmt.Println("valid at 12/10/82, known then:  ", then.Tuples()[0][1])
	// Output:
	// valid at 12/10/82, known today:  full
	// valid at 12/10/82, known then:   associate
}

// TQuel runs the paper's queries verbatim.
func Example_tquel() {
	db, err := tdb.Open("", tdb.Options{Clock: temporal.NewLogicalClock(temporal.Date(1985, 1, 1))})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	ses := tquel.NewSession(db)
	_, err = ses.Exec(`
		create static relation faculty (name = string, rank = string) key (name)
		range of f is faculty
		append to faculty (name = "Merrie", rank = "full")
		append to faculty (name = "Tom", rank = "associate")
	`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ses.Query(`retrieve (f.rank) where f.name = "Merrie"`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)
	// Output:
	// +------+
	// | rank |
	// +------+
	// | full |
	// +------+
}

// Series answers the paper's trend-analysis question a static database
// cannot: head count per calendar bucket.
func ExampleRelation_Series() {
	db, _ := tdb.Open("", tdb.Options{Clock: temporal.NewLogicalClock(0)})
	defer db.Close()
	sch, _ := tdb.NewSchema(tdb.Attr("name", tdb.StringKind), tdb.Attr("rank", tdb.StringKind))
	sch, _ = sch.WithKey("name")
	faculty, _ := db.CreateRelation("faculty", tdb.Historical, sch)

	_ = faculty.Assert(tdb.NewTuple(tdb.String("Merrie"), tdb.String("full")),
		temporal.Date(1977, 9, 1), temporal.Forever)
	_ = faculty.Assert(tdb.NewTuple(tdb.String("Tom"), tdb.String("associate")),
		temporal.Date(1982, 12, 5), temporal.Forever)

	series, _ := faculty.Series(temporal.Date(1981, 1, 1), temporal.Date(1984, 1, 1), temporal.Year)
	for _, p := range series {
		fmt.Printf("%v: %d\n", p.Bucket.From, p.Count)
	}
	// Output:
	// 01/01/81: 1
	// 01/01/82: 1
	// 01/01/83: 2
}
