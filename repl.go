package tdb

// Replication hooks: the surfaces a *DB exposes to internal/repl. A
// log-backed database acts as a replication primary through the Source
// methods (ReplPosition, ReplSnapshot, ReplReadLog, ReplChanged), and a
// database opened with Options.ReadOnly acts as a follower target through
// ReplCursor, ReplReset, and ReplApply — the one write path a read-only
// database accepts.
//
// The invariant everything here preserves: a follower's durable directory
// (log file plus snapshot) is a byte-identical prefix of the primary's, so
// the follower's own log size doubles as its resume cursor and a restarted
// follower comes back through the ordinary recovery path.

import (
	"errors"
	"fmt"
	"io"
	"os"

	"tdb/internal/catalog"
	"tdb/internal/repl"
	"tdb/internal/stats"
	"tdb/internal/txn"
	"tdb/internal/wal"
	"tdb/temporal"
)

// Replicable reports whether this database can serve or receive a
// replication stream: replication ships the write-ahead log, so an
// in-memory database has nothing to ship.
func (db *DB) Replicable() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.log != nil
}

// IsReadOnly reports whether the database was opened as a read-only
// follower.
func (db *DB) IsReadOnly() bool { return db.readOnly }

// LastCommit returns the latest commit chronon issued or applied — cheap
// enough to stamp into every server response for staleness-bound routing.
// Before any commit it returns 0, not the -∞ sentinel, so arithmetic on
// the wire value stays sane.
func (db *DB) LastCommit() temporal.Chronon {
	db.mu.RLock()
	defer db.mu.RUnlock()
	last := db.mgr.Clock().Last()
	if last == temporal.Beginning {
		return 0
	}
	return last
}

// notifyRepl wakes every replication stream waiting for the log position
// to advance. It takes only replMu — never db.mu — so the group-commit
// leader can fire it after a flush without any lock-ordering hazard.
func (db *DB) notifyRepl() {
	db.replMu.Lock()
	defer db.replMu.Unlock()
	if db.replWatch != nil {
		close(db.replWatch)
		db.replWatch = make(chan struct{})
	}
}

// ReplChanged returns a channel closed when the log position next
// advances (append, checkpoint, or follower reset/apply).
func (db *DB) ReplChanged() <-chan struct{} {
	db.replMu.Lock()
	defer db.replMu.Unlock()
	return db.replWatch
}

// ReplPosition returns the current checkpoint era, the log's size in
// bytes, and the latest commit chronon.
func (db *DB) ReplPosition() (uint64, int64, temporal.Chronon) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var size int64
	if db.log != nil {
		size = db.log.Size()
	}
	last := db.mgr.Clock().Last()
	if last == temporal.Beginning {
		last = 0
	}
	return db.epoch, size, last
}

// ReplSnapshot returns the raw bytes of the installed snapshot and the
// era of the current log — the pair a follower re-sync installs before
// tailing the log from offset zero. Before the first checkpoint there is
// no snapshot and era zero is returned with nil data. Note the snapshot's
// own internal epoch can legitimately be one ahead of the log era (a
// crash between snapshot install and log truncation, normalized by
// recovery); the snapshot's Records field then tells the follower how
// many leading log records the snapshot already covers.
func (db *DB) ReplSnapshot() ([]byte, uint64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.log == nil {
		return nil, 0, errors.New("tdb: replication requires a log-backed database")
	}
	data, err := db.fs.ReadFile(db.snapPath)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			if db.epoch == 0 {
				return nil, 0, nil
			}
			return nil, 0, fmt.Errorf("%w: log is era %d but its snapshot is gone", ErrCorrupt, db.epoch)
		}
		return nil, 0, err
	}
	return data, db.epoch, nil
}

// ReplReadLog reads up to max bytes of the era's log file at offset. A
// request for an era the primary has checkpointed away fails with
// repl.ErrEpochGone, which the stream loop turns into a follower
// re-sync.
func (db *DB) ReplReadLog(epoch uint64, offset int64, max int) ([]byte, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.log == nil {
		return nil, errors.New("tdb: replication requires a log-backed database")
	}
	if epoch != db.epoch {
		return nil, fmt.Errorf("%w: asked for era %d, log is era %d", repl.ErrEpochGone, epoch, db.epoch)
	}
	size := db.log.Size()
	if offset >= size || max <= 0 {
		return nil, nil
	}
	if rem := size - offset; int64(max) > rem {
		max = int(rem)
	}
	f, err := db.fs.OpenFile(db.path, os.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("tdb: repl read: %w", err)
	}
	defer f.Close()
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		return nil, fmt.Errorf("tdb: repl seek: %w", err)
	}
	buf := make([]byte, max)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, fmt.Errorf("tdb: repl read at %d: %w", offset, err)
	}
	return buf, nil
}

// ReplCursor returns the follower's locally durable position: the era of
// its log and the log's size in bytes. Because shipped bytes land
// verbatim, this is exactly the primary offset to resume from.
func (db *DB) ReplCursor() (uint64, int64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var size int64
	if db.log != nil {
		size = db.log.Size()
	}
	return db.epoch, size
}

// ReplReset wipes the follower and installs a shipped snapshot: the local
// log is emptied (the era's header arrives with the first shipped bytes),
// the snapshot bytes are verified, installed at the snapshot path, and
// restored into memory. epoch is the era of the log feed that follows; a
// snapshot whose internal epoch is one ahead (see ReplSnapshot) carries a
// Records count of leading feed records its state already covers, which
// the apply path skips in memory while still landing their bytes. A nil
// snapshot with era zero resets to a genuinely empty database.
func (db *DB) ReplReset(epoch uint64, snap []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if !db.readOnly {
		return errors.New("tdb: ReplReset on a primary (open the follower with Options.ReadOnly)")
	}
	if db.log == nil {
		return errors.New("tdb: replication requires a log-backed database")
	}
	var (
		s    wal.Snapshot
		have bool
	)
	if len(snap) > 0 {
		var err error
		s, err = wal.DecodeSnapshot(snap)
		if err != nil {
			return fmt.Errorf("tdb: shipped snapshot: %w", err)
		}
		if s.Epoch != epoch && s.Epoch != epoch+1 {
			return fmt.Errorf("tdb: shipped snapshot epoch %d does not pair with log era %d", s.Epoch, epoch)
		}
		have = true
	} else if epoch != 0 {
		return fmt.Errorf("tdb: era %d re-sync arrived without a snapshot", epoch)
	}

	// Wipe: fresh catalog and clock, empty log at the new era, and no
	// stale snapshot files that a later recovery could mispair.
	db.cat = catalog.New()
	db.mgr = txn.NewManager(txn.NewCommitClock(db.clock))
	db.stats = make(map[string]*stats.Rel)
	db.qc.Clear()
	if err := db.log.Truncate(epoch); err != nil {
		return err
	}
	db.epoch = epoch
	db.replSkip = 0
	if err := db.fs.Remove(db.prevSnapPath); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("tdb: repl reset: %w", err)
	}
	if have {
		if err := wal.WriteSnapshot(db.fs, db.snapPath, s); err != nil {
			return err
		}
		if err := db.restoreSnapshot(s); err != nil {
			return err
		}
		db.replSkip = s.Records
	} else if err := db.fs.Remove(db.snapPath); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("tdb: repl reset: %w", err)
	}
	mReplResets.Inc()
	db.notifyRepl()
	return nil
}

// ReplApply lands one verified byte window from the primary: raw — the
// log header and/or whole CRC-framed records, exactly as they appear at
// the primary's current cursor — is appended to the local log verbatim,
// and recs (the records those bytes frame, already CRC-verified and
// decoded by the follower loop) are applied to the in-memory state.
// Records still covered by the installed snapshot are landed but not
// re-applied.
func (db *DB) ReplApply(epoch uint64, raw []byte, recs []wal.Record) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if !db.readOnly {
		return errors.New("tdb: ReplApply on a primary (open the follower with Options.ReadOnly)")
	}
	if db.log == nil {
		return errors.New("tdb: replication requires a log-backed database")
	}
	if epoch != db.epoch {
		return fmt.Errorf("tdb: repl apply for era %d, follower is at era %d", epoch, db.epoch)
	}
	if err := db.log.AppendRaw(raw, len(recs)); err != nil {
		return err
	}
	for _, rec := range recs {
		if db.replSkip > 0 {
			db.replSkip--
			continue
		}
		if err := db.applyRecord(rec); err != nil {
			return fmt.Errorf("tdb: repl apply: %w", err)
		}
	}
	mReplApplied.Add(uint64(len(recs)))
	db.notifyRepl()
	return nil
}
