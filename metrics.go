package tdb

import "tdb/internal/obs"

var (
	mRecoveries = obs.Default.Counter("tdb_recovery_total",
		"Recovery passes run by Open on log-backed databases.")
	mRecoveryReplayed = obs.Default.Counter("tdb_recovery_replayed_records_total",
		"Log records applied on top of snapshots during recovery.")
	mRecoveryTorn = obs.Default.Counter("tdb_recovery_torn_tails_total",
		"Torn or corrupt log tails truncated away during recovery.")
	mRecoveryFallback = obs.Default.Counter("tdb_recovery_snapshot_fallbacks_total",
		"Recoveries that restored the previous snapshot because the primary was corrupt or missing.")
	mRecoveryFailed = obs.Default.Counter("tdb_recovery_failures_total",
		"Open calls that failed because recovery could not prove the durable state consistent.")
)

var (
	mReplResets = obs.Default.Counter("tdb_repl_db_resets_total",
		"Follower state wipes that installed a shipped snapshot (epoch re-syncs).")
	mReplApplied = obs.Default.Counter("tdb_repl_db_records_total",
		"WAL records landed through the replication apply path.")
)
