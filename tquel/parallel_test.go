package tquel

import (
	"fmt"
	"testing"

	"tdb"
)

// parallelFixture builds a session over a key/value relation wide enough
// (300 versions) to clear the real parallelMinOuter threshold, so these
// tests exercise the production fan-out decision rather than the lowered
// test threshold.
func parallelFixture(t testing.TB, n int) *Session {
	t.Helper()
	db := newDB(t)
	ses := NewSession(db)
	if _, err := ses.Exec(`
		create historical relation kv (k = int, v = int) key (k)
		create historical relation kw (k = int, w = int) key (k)
		range of a is kv
		range of b is kw
	`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		src := fmt.Sprintf(
			`append to kv (k = %d, v = %d) valid from "01/01/8%d" to forever`,
			i, i*7, i%9)
		if _, err := ses.Exec(src); err != nil {
			t.Fatal(err)
		}
		src = fmt.Sprintf(
			`append to kw (k = %d, w = %d) valid from "01/01/8%d" to forever`,
			i, i*3, (i+4)%9)
		if _, err := ses.Exec(src); err != nil {
			t.Fatal(err)
		}
	}
	return ses
}

// The parallel path over a real-sized fixture must render the same
// resultset as the serial path, for a scan, a selective filter, and an
// equi-join.
func TestParallelMatchesSerial(t *testing.T) {
	ses := plannerOn(parallelFixture(t, 300))
	for _, src := range []string{
		`retrieve (a.k, a.v)`,
		`retrieve (a.k) where a.v >= 1400`,
		`retrieve (a.k, b.w) where a.k = b.k and a.v < 700`,
		`retrieve (a.k, b.w) where a.k = b.k when a overlap b`,
	} {
		ses.SetParallelism(1)
		serial, err := ses.Query(src)
		if err != nil {
			t.Fatalf("serial: %v\n%s", err, src)
		}
		ses.SetParallelism(4)
		par, err := ses.Query(src)
		if err != nil {
			t.Fatalf("parallel: %v\n%s", err, src)
		}
		if serial.String() != par.String() {
			t.Errorf("parallel resultset diverged for:\n%s\n--- serial ---\n%s\n--- parallel ---\n%s",
				src, serial, par)
		}
	}
}

// A residual conjunct that fails at evaluation time must surface the same
// error from the parallel path as from the serial one: the earliest chunk's
// error is the error the serial loop would have hit first.
func TestParallelErrorMatchesSerial(t *testing.T) {
	forceParallel(t)
	ses := plannerOn(planFixture(t))
	const src = `retrieve (s.tag) where s.tag < b.k` // string vs int: eval error
	ses.SetParallelism(1)
	_, serialErr := ses.Query(src)
	if serialErr == nil {
		t.Fatal("serial query unexpectedly succeeded")
	}
	ses.SetParallelism(4)
	_, parErr := ses.Query(src)
	if parErr == nil {
		t.Fatal("parallel query unexpectedly succeeded")
	}
	if serialErr.Error() != parErr.Error() {
		t.Errorf("error diverged:\nserial:   %v\nparallel: %v", serialErr, parErr)
	}
}

// useParallel must keep aggregates, empty plans, small outer lists, and
// single-worker budgets on the serial path.
func TestUseParallelGates(t *testing.T) {
	ses := plannerOn(planFixture(t))
	stmt := mustParseRetrieve(t, `retrieve (s.tag, b.tag) where s.k = b.k`)
	if err := ses.checkRetrieve(stmt); err != nil {
		t.Fatal(err)
	}
	order := retrieveVars(stmt)
	rels := make([]*tdb.Relation, len(order))
	for i, v := range order {
		rel, err := ses.resolveVar(stmt.Pos, v)
		if err != nil {
			t.Fatal(err)
		}
		rels[i] = rel
	}
	ev := &env{vars: map[string]*binding{}, now: ses.now()}
	pl, err := ses.buildPlan(stmt, order, rels, ev, 0, 0, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pl.vars[0].versions); got == 0 {
		t.Fatal("fixture produced no outer candidates")
	}
	if useParallel(pl, 1, nil) {
		t.Error("useParallel accepted a single-worker budget")
	}
	if useParallel(pl, 4, &aggregator{}) {
		t.Error("useParallel accepted an aggregate query")
	}
	if useParallel(pl, 4, nil) {
		t.Error("useParallel accepted an outer list below parallelMinOuter")
	}
	old, oldCost := parallelMinOuter, parallelMinCost
	parallelMinOuter, parallelMinCost = 1, 1
	pl.parallelCut = 1
	defer func() { parallelMinOuter, parallelMinCost = old, oldCost }()
	if !useParallel(pl, 4, nil) {
		t.Error("useParallel rejected an eligible plan")
	}
	pl.emptyResult = true
	if useParallel(pl, 4, nil) {
		t.Error("useParallel accepted a short-circuited empty plan")
	}
}

// A parallel retrieve must increment the parallel counters and emit a
// "parallel" span carrying worker and chunk counts.
func TestParallelMetricsAndSpan(t *testing.T) {
	forceParallel(t)
	ses := plannerOn(planFixture(t))
	ses.SetParallelism(4)
	tr := &recordingTracer{}
	ses.SetTracer(tr)
	q0, w0 := mParallelQueries.Value(), mParallelWorkers.Value()
	if _, err := ses.Query(`retrieve (s.tag, b.tag) where s.k = b.k`); err != nil {
		t.Fatal(err)
	}
	if got := mParallelQueries.Value() - q0; got != 1 {
		t.Errorf("tdb_tquel_parallel_queries delta = %d, want 1", got)
	}
	if got := mParallelWorkers.Value() - w0; got < 1 || got > 4 {
		t.Errorf("tdb_tquel_parallel_workers delta = %d, want 1..4", got)
	}
	var par *recordedSpan
	for _, sp := range tr.spans {
		if sp.name == "parallel" {
			par = sp
		}
	}
	if par == nil {
		t.Fatal("no parallel span recorded")
	}
	if par.notes["workers"] < 1 || par.notes["workers"] > 4 {
		t.Errorf("parallel span workers = %d, want 1..4", par.notes["workers"])
	}
	if par.notes["chunks"] < 1 {
		t.Errorf("parallel span chunks = %d, want >= 1", par.notes["chunks"])
	}
	if par.notes["outer_candidates"] != 3 {
		t.Errorf("parallel span outer_candidates = %d, want 3", par.notes["outer_candidates"])
	}
}

// A serial session (explicit SetParallelism(1)) must never touch the
// parallel counters, even for large outer lists.
func TestSerialSessionSkipsParallelPath(t *testing.T) {
	ses := plannerOn(parallelFixture(t, 200))
	ses.SetParallelism(1)
	q0 := mParallelQueries.Value()
	if _, err := ses.Query(`retrieve (a.k, a.v)`); err != nil {
		t.Fatal(err)
	}
	if got := mParallelQueries.Value() - q0; got != 0 {
		t.Errorf("serial session incremented parallel_queries by %d", got)
	}
}

// TDB_PARALLEL seeds the worker budget of new sessions.
func TestParallelEnv(t *testing.T) {
	t.Setenv("TDB_PARALLEL", "3")
	ses := NewSession(newDB(t))
	if got := ses.effectiveParallelism(); got != 3 {
		t.Errorf("effectiveParallelism with TDB_PARALLEL=3 = %d, want 3", got)
	}
	t.Setenv("TDB_PARALLEL", "junk")
	ses = NewSession(newDB(t))
	if ses.parallelism != 0 {
		t.Errorf("parallelism with TDB_PARALLEL=junk = %d, want 0", ses.parallelism)
	}
}

// Tallies from the parallel path must match the serial path exactly: the
// partition only splits the outer loop, it does not change which bindings
// are examined.
func TestParallelTallyMatchesSerial(t *testing.T) {
	forceParallel(t)
	ses := plannerOn(planFixture(t))
	// The two runs issue the identical query; bypass the result cache so
	// the second run actually executes and records tallies.
	ses.DisableCache(true)
	const src = `retrieve (s.tag, b.tag) where s.k = b.k`

	run := func(workers int) map[string]int64 {
		t.Helper()
		ses.SetParallelism(workers)
		tr := &recordingTracer{}
		ses.SetTracer(tr)
		if _, err := ses.Query(src); err != nil {
			t.Fatal(err)
		}
		ses.SetTracer(nil)
		for _, sp := range tr.spans {
			if sp.name == "execute" {
				return sp.notes
			}
		}
		t.Fatal("no execute span recorded")
		return nil
	}

	serial, par := run(1), run(4)
	for _, key := range []string{"rows_scanned", "join_pairs", "hash_probes", "rows_returned"} {
		if serial[key] != par[key] {
			t.Errorf("%s: serial %d != parallel %d", key, serial[key], par[key])
		}
	}
}
