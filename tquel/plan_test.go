package tquel

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"tdb/internal/obs"
	"tdb/temporal"
)

// plannerOn returns the session with the planner and its statistics
// force-enabled, so these tests keep asserting planner internals even when
// the whole suite runs under TDB_DISABLE_PLANNER=1 or TDB_DISABLE_STATS=1
// (the CI ablation jobs). Tests exercising an ablation flip it back
// explicitly.
func plannerOn(ses *Session) *Session {
	ses.DisablePlanner(false)
	ses.DisableStats(false)
	return ses
}

func mustParseRetrieve(t *testing.T, src string) *RetrieveStmt {
	t.Helper()
	stmts, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return stmts[len(stmts)-1].(*RetrieveStmt)
}

func TestSplitAnd(t *testing.T) {
	st := mustParseRetrieve(t, `retrieve (f.x) where
		f.a = 1 and (f.b = 2 or f.c = 3) and not f.d = 4 and g.e = f.a`)
	conjs := splitAnd(st.Where, nil)
	if len(conjs) != 4 {
		t.Fatalf("conjuncts = %d, want 4: %#v", len(conjs), conjs)
	}
	// Left-to-right order is preserved and or/not subtrees stay whole.
	if _, ok := conjs[0].(*Cmp); !ok {
		t.Errorf("conjunct 0 = %T, want *Cmp", conjs[0])
	}
	if b, ok := conjs[1].(*BoolOp); !ok || b.Op != "or" {
		t.Errorf("conjunct 1 = %#v, want or-subtree", conjs[1])
	}
	if b, ok := conjs[2].(*BoolOp); !ok || b.Op != "not" {
		t.Errorf("conjunct 2 = %#v, want not-subtree", conjs[2])
	}
	if got := exprVarList(conjs[3]); len(got) != 2 || got[0] != "f" || got[1] != "g" {
		t.Errorf("conjunct 3 vars = %v, want [f g]", got)
	}
}

func TestSplitTempAnd(t *testing.T) {
	st := mustParseRetrieve(t, `retrieve (f.x) when
		f overlap "now" and (g precede f or f precede g) and not g overlap "now"`)
	conjs := splitTempAnd(st.When, nil)
	if len(conjs) != 3 {
		t.Fatalf("temporal conjuncts = %d, want 3", len(conjs))
	}
	if r, ok := conjs[0].(*TempRel); !ok || r.Op != "overlap" {
		t.Errorf("conjunct 0 = %#v", conjs[0])
	}
	if b, ok := conjs[1].(*TempBool); !ok || b.Op != "or" {
		t.Errorf("conjunct 1 = %#v, want or-subtree", conjs[1])
	}
	if b, ok := conjs[2].(*TempBool); !ok || b.Op != "not" {
		t.Errorf("conjunct 2 = %#v, want not-subtree", conjs[2])
	}
	if got := temporalVarList(conjs[1]); len(got) != 2 || got[0] != "f" || got[1] != "g" {
		t.Errorf("conjunct 1 vars = %v, want [f g]", got)
	}
}

// planFixture builds two historical relations with asymmetric cardinality:
// small (3 rows) and big (12 rows), sharing an int join key.
func planFixture(t testing.TB) *Session {
	t.Helper()
	db := newDB(t)
	ses := NewSession(db)
	if _, err := ses.Exec(`
		create historical relation small (k = int, tag = string) key (k)
		create historical relation big (k = int, tag = string) key (k)
		range of s is small
		range of b is big
	`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		src := fmt.Sprintf(`append to small (k = %d, tag = "s%d") valid from "01/01/8%d" to forever`, i, i, i)
		if _, err := ses.Exec(src); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		src := fmt.Sprintf(`append to big (k = %d, tag = "b%d") valid from "01/0%d/81" to forever`, i, i, i%9+1)
		if _, err := ses.Exec(src); err != nil {
			t.Fatal(err)
		}
	}
	return ses
}

func TestPlanConjunctClassification(t *testing.T) {
	ses := plannerOn(planFixture(t))
	res, err := ses.Query(`
		retrieve (s.tag, b.tag)
		where 1 = 1 and s.k = 0 and s.k = b.k
	`)
	if err != nil {
		t.Fatal(err)
	}
	pl := ses.lastPlan
	if pl == nil {
		t.Fatal("no plan recorded")
	}
	// "1 = 1" settles upfront, "s.k = 0" prefilters s: both pushed.
	if pl.pushed != 2 {
		t.Errorf("pushed = %d, want 2", pl.pushed)
	}
	if pl.emptyResult {
		t.Error("emptyResult set by a true conjunct")
	}
	// s is prefiltered to one candidate and binds first.
	if pl.vars[0].name != "s" || len(pl.vars[0].versions) != 1 {
		t.Errorf("outer var = %s with %d candidates, want s with 1",
			pl.vars[0].name, len(pl.vars[0].versions))
	}
	// The equi-join conjunct stays residual at b's depth.
	if len(pl.vars[1].where) != 1 {
		t.Errorf("residual where conjuncts at depth 1 = %d, want 1", len(pl.vars[1].where))
	}
	if res.Len() != 1 {
		t.Errorf("result:\n%s", res)
	}
}

func TestPlanEmptyResultShortCircuit(t *testing.T) {
	ses := plannerOn(planFixture(t))
	res, err := ses.Query(`retrieve (s.tag) where 1 = 2`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("result:\n%s", res)
	}
	if pl := ses.lastPlan; pl == nil || !pl.emptyResult {
		t.Error("false variable-free conjunct must set emptyResult")
	}
}

func TestPlanJoinOrderAndBuildSide(t *testing.T) {
	ses := plannerOn(planFixture(t))
	res, err := ses.Query(`retrieve (s.tag, b.tag) where s.k = b.k`)
	if err != nil {
		t.Fatal(err)
	}
	pl := ses.lastPlan
	if pl == nil {
		t.Fatal("no plan recorded")
	}
	// Smallest filtered cardinality drives the outer loop; the larger side
	// is the hash build side.
	if pl.vars[0].name != "s" || pl.vars[1].name != "b" {
		t.Fatalf("binding order = [%s %s], want [s b]", pl.vars[0].name, pl.vars[1].name)
	}
	hj := pl.vars[1].join
	if hj == nil {
		t.Fatal("inner variable has no hash join")
	}
	if pl.buildRows != 12 {
		t.Errorf("buildRows = %d, want 12 (the big side)", pl.buildRows)
	}
	if hj.numeric {
		t.Error("int = int join must not need numeric normalization")
	}
	if hj.probeDepth != 0 {
		t.Errorf("probeDepth = %d, want 0 (the outer variable's binding depth)", hj.probeDepth)
	}
	if pl.fallbacks != 0 {
		t.Errorf("fallbacks = %d, want 0", pl.fallbacks)
	}
	// k 0..2 of small each match exactly one big row.
	if res.Len() != 3 {
		t.Errorf("result:\n%s", res)
	}
}

func TestPlanCrossProductFallback(t *testing.T) {
	ses := plannerOn(planFixture(t))
	if _, err := ses.Query(`retrieve (s.tag, b.tag) where s.tag != b.tag`); err != nil {
		t.Fatal(err)
	}
	pl := ses.lastPlan
	if pl.vars[1].join != nil {
		t.Error("!= is not an equi-join; no hash table expected")
	}
	if pl.fallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1", pl.fallbacks)
	}
}

// An instant attribute joined against a string attribute compares via
// date parsing, which hashing cannot reproduce; the planner must leave the
// conjunct on the nested-loop path.
func TestPlanNonHashableJoinFallsBack(t *testing.T) {
	db := newDB(t)
	ses := plannerOn(NewSession(db))
	if _, err := ses.Exec(`
		create static relation dated (d = instant) key (d)
		create static relation named (n = string) key (n)
		range of dv is dated
		range of nv is named
		append to dated (d = "06/01/80")
		append to named (n = "06/01/80")
	`); err != nil {
		t.Fatal(err)
	}
	res, err := ses.Query(`retrieve (nv.n) where dv.d = nv.n`)
	if err != nil {
		t.Fatal(err)
	}
	pl := ses.lastPlan
	if pl.vars[1].join != nil {
		t.Error("instant = string join must not hash")
	}
	if pl.fallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1", pl.fallbacks)
	}
	if res.Len() != 1 {
		t.Errorf("coerced join result:\n%s", res)
	}
}

// Int and float join keys widen before comparison; the hash path must widen
// the same way so 2 matches 2.0.
func TestPlanNumericJoinNormalization(t *testing.T) {
	db := newDB(t)
	ses := plannerOn(NewSession(db))
	if _, err := ses.Exec(`
		create static relation ints (k = int) key (k)
		create static relation floats (k = float) key (k)
		range of iv is ints
		range of fv is floats
		append to ints (k = 2)
		append to ints (k = 3)
		append to floats (k = 2.0)
		append to floats (k = 2.5)
		append to floats (k = 4.0)
	`); err != nil {
		t.Fatal(err)
	}
	res, err := ses.Query(`retrieve (iv.k, fv.k) where iv.k = fv.k`)
	if err != nil {
		t.Fatal(err)
	}
	pl := ses.lastPlan
	hj := pl.vars[1].join
	if hj == nil || !hj.numeric {
		t.Fatalf("int/float join must hash with numeric normalization, got %+v", hj)
	}
	if res.Len() != 1 || res.Rows[0].Data[0].Int() != 2 {
		t.Errorf("result:\n%s", res)
	}
}

func TestPlanWhenOverlapIndexed(t *testing.T) {
	ses := plannerOn(planFixture(t))
	res, err := ses.Query(`retrieve (s.tag) when s overlap "06/01/80"`)
	if err != nil {
		t.Fatal(err)
	}
	pl := ses.lastPlan
	if pl.whenIndexed != 1 {
		t.Errorf("whenIndexed = %d, want 1", pl.whenIndexed)
	}
	// s0 valid since 01/01/80; s1/s2 start later.
	if res.Len() != 1 || res.Rows[0].Data[0].Str() != "s0" {
		t.Errorf("result:\n%s", res)
	}
	// No residual when conjunct should remain anywhere.
	for _, pv := range pl.vars {
		if len(pv.when) != 0 {
			t.Errorf("var %s kept %d when conjuncts after pushdown", pv.name, len(pv.when))
		}
	}
}

// An as-of-through window views versions across a commit range; the indexed
// when path answers point visibility only, so the planner must not use it.
func TestPlanWhenIndexSkippedUnderThrough(t *testing.T) {
	ses := plannerOn(paperSession(t))
	res, err := ses.Query(`
		retrieve (f.rank) where f.name = "Merrie"
		when f overlap "12/10/82" as of "12/10/82" through "12/20/82"
	`)
	if err != nil {
		t.Fatal(err)
	}
	if pl := ses.lastPlan; pl.whenIndexed != 0 {
		t.Errorf("whenIndexed = %d, want 0 under as-of-through", pl.whenIndexed)
	}
	if res.Len() != 2 { // associate (believed until 12/15) and full (after)
		t.Errorf("result:\n%s", res)
	}
}

func TestDisablePlannerEnv(t *testing.T) {
	for _, tc := range []struct {
		val  string
		want bool
	}{{"1", true}, {"yes", true}, {"0", false}, {"false", false}, {"", false}} {
		t.Setenv("TDB_DISABLE_PLANNER", tc.val)
		ses := NewSession(newDB(t))
		if ses.noPlanner != tc.want {
			t.Errorf("TDB_DISABLE_PLANNER=%q: noPlanner = %v, want %v", tc.val, ses.noPlanner, tc.want)
		}
	}
}

// forceParallel lowers both fan-out thresholds — the stats-off outer-size
// rule and the cost-based cutoff — so the parallel path engages even on the
// small test fixtures, restoring them on cleanup.
func forceParallel(t testing.TB) {
	t.Helper()
	oldOuter, oldCost := parallelMinOuter, parallelMinCost
	parallelMinOuter, parallelMinCost = 1, 1
	t.Cleanup(func() { parallelMinOuter, parallelMinCost = oldOuter, oldCost })
}

// differential runs the query six ways — planner on (serial), planner
// off (naive nested loop), planner on with statistics disabled (v1
// heuristics), planner on with a four-worker pool, and then twice through
// the result cache (cold, then warm so the second run is a hit when the
// cache is enabled) — and asserts all rendered resultsets are
// byte-identical. The first four arms bypass the cache so each one
// actually executes; under TDB_CACHE_BYTES=0 the cache arms are
// passthrough and still must agree.
func differential(t *testing.T, ses *Session, src string) {
	t.Helper()
	ses.DisableCache(true)
	ses.DisablePlanner(false)
	ses.SetParallelism(1)
	on, err := ses.Query(src)
	if err != nil {
		t.Fatalf("planner on: %v\n%s", err, src)
	}
	ses.DisablePlanner(true)
	off, err := ses.Query(src)
	ses.DisablePlanner(false)
	if err != nil {
		t.Fatalf("planner off: %v\n%s", err, src)
	}
	ses.DisableStats(true)
	nostats, err := ses.Query(src)
	ses.DisableStats(false)
	if err != nil {
		t.Fatalf("stats off: %v\n%s", err, src)
	}
	ses.SetParallelism(4)
	par, err := ses.Query(src)
	ses.SetParallelism(1)
	if err != nil {
		t.Fatalf("parallel: %v\n%s", err, src)
	}
	ses.DisableCache(false)
	cold, err := ses.Query(src)
	if err != nil {
		t.Fatalf("cache cold: %v\n%s", err, src)
	}
	warm, err := ses.Query(src)
	if err != nil {
		t.Fatalf("cache warm: %v\n%s", err, src)
	}
	if on.String() != off.String() {
		t.Errorf("planner changed the answer for:\n%s\n--- planner on ---\n%s\n--- planner off ---\n%s",
			src, on, off)
	}
	if on.String() != nostats.String() {
		t.Errorf("statistics changed the answer for:\n%s\n--- stats on ---\n%s\n--- stats off ---\n%s",
			src, on, nostats)
	}
	if on.String() != par.String() {
		t.Errorf("parallel execution changed the answer for:\n%s\n--- serial ---\n%s\n--- parallel ---\n%s",
			src, on, par)
	}
	if on.String() != cold.String() {
		t.Errorf("cache (cold) changed the answer for:\n%s\n--- uncached ---\n%s\n--- cache cold ---\n%s",
			src, on, cold)
	}
	if on.String() != warm.String() {
		t.Errorf("cache (warm) changed the answer for:\n%s\n--- uncached ---\n%s\n--- cache warm ---\n%s",
			src, on, warm)
	}
}

// The paper's figure queries must render identically with and without the
// planner.
func TestPlannerDifferentialFigures(t *testing.T) {
	forceParallel(t)
	ses := paperSession(t)
	if _, err := ses.Exec("range of f1 is faculty\nrange of f2 is faculty"); err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{
		`retrieve (f.rank) where f.name = "Merrie"`,                  // Figure 2 shape
		`retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"`, // Figure 4
		`retrieve (f1.rank)
			where f1.name = "Merrie" and f2.name = "Tom"
			when f1 overlap start of f2`, // Figure 6
		`retrieve (f1.rank)
			where f1.name = "Merrie" and f2.name = "Tom"
			when f1 overlap start of f2
			as of "12/10/82"`, // §4.4 / Figure 8
		`retrieve (f1.rank)
			where f1.name = "Merrie" and f2.name = "Tom"
			when f1 overlap start of f2
			as of "12/20/82"`,
	} {
		differential(t, ses, src)
	}
}

// TestPlannerDifferential generates seeded random multi-variable retrieves
// with mixed where/when clauses over the Figure 8 faculty history plus a
// synthetic join fixture, asserting planner-on and planner-off agree on
// every one. The generator avoids constructs whose evaluation can error
// (date-string scalar comparisons, aggregates over floats), since the
// planner may surface such errors from a different binding order.
func TestPlannerDifferential(t *testing.T) {
	forceParallel(t)
	ses := paperSession(t)
	buildSeededFixture(t, ses)
	for _, src := range seededQuerySources() {
		differential(t, ses, src)
	}
}

// buildSeededFixture adds the historical emp relation and the extra range
// variables the seeded corpus draws on, on top of the paper's faculty
// history already in the session.
func buildSeededFixture(t testing.TB, ses *Session) {
	t.Helper()
	if _, err := ses.Exec(`
		create historical relation emp (name = string, dept = string, pay = int) key (name)
		range of e1 is emp
		range of e2 is emp
		range of f2 is faculty
	`); err != nil {
		t.Fatal(err)
	}
	depts := []string{"cs", "ee", "math"}
	for i := 0; i < 9; i++ {
		src := fmt.Sprintf(
			`append to emp (name = "p%d", dept = %q, pay = %d) valid from "0%d/01/8%d" to forever`,
			i, depts[i%3], 100+10*(i%4), i%9+1, i%4)
		execAt(t, ses, temporal.Date(1984, 1, 1+i), src)
	}
}

// seededQuerySources deterministically generates the 60-query differential
// corpus over the paper fixture plus emp.
func seededQuerySources() []string {
	rng := rand.New(rand.NewSource(85)) // SIGMOD 1985
	names := []string{"Merrie", "Tom", "Mike", "p0", "p3", "p7"}
	dates := []string{"06/01/80", "12/10/82", "01/15/83", "now"}
	relOf := map[string]string{"f": "faculty", "f2": "faculty", "e1": "emp", "e2": "emp"}
	pick := func(ss []string) string { return ss[rng.Intn(len(ss))] }

	whereConj := func(v string) string {
		if relOf[v] == "emp" && rng.Intn(2) == 0 {
			return fmt.Sprintf("%s.pay %s %d", v, pick([]string{"<", ">=", "="}), 100+10*rng.Intn(4))
		}
		return fmt.Sprintf("%s.name %s %q", v, pick([]string{"=", "!="}), pick(names))
	}
	whenConj := func(v string) string {
		switch rng.Intn(3) {
		case 0:
			return fmt.Sprintf("%s overlap %q", v, pick(dates))
		case 1:
			return fmt.Sprintf("start of %s precede %q", v, pick(dates))
		default:
			return fmt.Sprintf("not %s overlap %q", v, pick(dates))
		}
	}

	var out []string
	for i := 0; i < 60; i++ {
		vars := []string{pick([]string{"f", "e1"})}
		if rng.Intn(3) > 0 { // two-variable query
			vars = append(vars, pick([]string{"f2", "e2"}))
		}
		var targets, conjs, temps []string
		for _, v := range vars {
			targets = append(targets, v+".name")
			if rng.Intn(2) == 0 {
				conjs = append(conjs, whereConj(v))
			}
			if rng.Intn(2) == 0 {
				temps = append(temps, whenConj(v))
			}
		}
		if len(vars) == 2 {
			switch rng.Intn(3) {
			case 0: // string equi-join
				conjs = append(conjs, fmt.Sprintf("%s.name = %s.name", vars[0], vars[1]))
			case 1:
				if relOf[vars[0]] == "emp" && relOf[vars[1]] == "emp" {
					conjs = append(conjs, fmt.Sprintf("%s.pay = %s.pay", vars[0], vars[1]))
				}
			}
			if rng.Intn(3) == 0 {
				temps = append(temps, fmt.Sprintf("%s overlap %s", vars[0], vars[1]))
			}
		}
		src := "retrieve (" + strings.Join(targets, ", ") + ")"
		if len(conjs) > 0 {
			src += "\nwhere " + strings.Join(conjs, " and ")
		}
		if len(temps) > 0 {
			src += "\nwhen " + strings.Join(temps, " and ")
		}
		// As-of needs every variable rollback-capable: faculty is temporal,
		// emp is historical, so gate on an all-faculty variable set.
		allTemporal := true
		for _, v := range vars {
			if relOf[v] != "faculty" {
				allTemporal = false
			}
		}
		if allTemporal && rng.Intn(2) == 0 {
			src += fmt.Sprintf("\nas of %q", pick(dates[:3]))
		}
		out = append(out, src)
	}
	// Window-aggregate and coalesce shapes, appended after the seeded loop
	// so the original 60-query rng sequence (and every pinned plan that
	// depends on it) is preserved. Year/half-year windows keep the per-query
	// window count small over the 1977-84 fixture span.
	out = append(out,
		`retrieve (c = count(f.name)) window 31536000`,
		`retrieve (e1.dept, c = count(e1.name), p = sum(e1.pay)) window 31536000`,
		`retrieve (hi = max(e1.pay), lo = min(e1.pay)) window 63072000 slide 31536000`,
		`retrieve (e1.dept, a = avg(e1.pay)) window 31536000 coalesce`,
		`retrieve (f.name, f.rank) coalesce`,
		`retrieve (e1.dept) where e1.pay >= 110 coalesce`,
		`retrieve (c = count(f.name)) window 15768000 when f overlap "12/10/82"`,
		`retrieve (f.name, n = count(f.rank)) window 63072000 slide 15768000 as of "12/10/82"`,
	)
	return out
}

// The planner and the naive path must agree on metrics the user can see:
// rows_returned in particular. (rows_scanned legitimately differs — that is
// the point of the planner.)
func TestPlannerTraceSpan(t *testing.T) {
	ses := plannerOn(planFixture(t))
	tr := &recordingTracer{}
	ses.SetTracer(tr)
	if _, err := ses.Query(`retrieve (s.tag, b.tag) where s.k = b.k`); err != nil {
		t.Fatal(err)
	}
	var plan, execute *recordedSpan
	for _, sp := range tr.spans {
		switch sp.name {
		case "plan":
			plan = sp
		case "execute":
			execute = sp
		}
	}
	if plan == nil {
		t.Fatal("no plan span recorded")
	}
	if plan.notes["build_rows"] != 12 {
		t.Errorf("plan build_rows = %d, want 12", plan.notes["build_rows"])
	}
	if plan.notes["nested_loop_fallbacks"] != 0 {
		t.Errorf("plan nested_loop_fallbacks = %d", plan.notes["nested_loop_fallbacks"])
	}
	if execute == nil {
		t.Fatal("no execute span recorded")
	}
	if execute.notes["hash_probes"] != 3 { // one probe per outer binding
		t.Errorf("execute hash_probes = %d, want 3", execute.notes["hash_probes"])
	}
	if execute.notes["join_pairs"] != 3 { // only hash matches reach depth 1
		t.Errorf("execute join_pairs = %d, want 3", execute.notes["join_pairs"])
	}
	if execute.notes["rows_returned"] != 3 {
		t.Errorf("execute rows_returned = %d, want 3", execute.notes["rows_returned"])
	}
}

// A statistics-guided plan emits a stats span carrying the cost model's
// conclusions next to the plan span; the ablation emits none.
func TestStatsTraceSpan(t *testing.T) {
	ses := plannerOn(planFixture(t))
	tr := &recordingTracer{}
	ses.SetTracer(tr)
	if _, err := ses.Query(`retrieve (s.tag, b.tag) where s.k = b.k`); err != nil {
		t.Fatal(err)
	}
	var stSp *recordedSpan
	for _, sp := range tr.spans {
		if sp.name == "stats" {
			stSp = sp
		}
	}
	if stSp == nil {
		t.Fatal("no stats span recorded")
	}
	for _, note := range []string{"est_work", "est_rows", "probe_skips"} {
		if _, ok := stSp.notes[note]; !ok {
			t.Errorf("stats span missing %q note", note)
		}
	}
	if stSp.notes["est_rows"] != 3 {
		t.Errorf("stats est_rows = %d, want 3", stSp.notes["est_rows"])
	}

	ses.DisableStats(true)
	tr.spans = nil
	if _, err := ses.Query(`retrieve (s.tag, b.tag) where s.k = b.k`); err != nil {
		t.Fatal(err)
	}
	for _, sp := range tr.spans {
		if sp.name == "stats" {
			t.Error("stats span emitted with statistics disabled")
		}
	}
}

type recordedSpan struct {
	name  string
	notes map[string]int64
}

type recordingTracer struct{ spans []*recordedSpan }

func (t *recordingTracer) Start(name string) obs.Span {
	sp := &recordedSpan{name: name, notes: map[string]int64{}}
	t.spans = append(t.spans, sp)
	return sp
}

func (s *recordedSpan) Note(key string, v int64) { s.notes[key] = v }
func (s *recordedSpan) End()                     {}
