package tquel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"tdb"
	"tdb/temporal"
)

// Parallel plan execution — the Volcano exchange operator, specialized to
// our compiled queryPlan (Graefe, "Encapsulation of Parallelism in the
// Volcano Query Processing System").
//
// Planning stays serial: prefiltering, the when pushdown, and the hash
// build all run on the statement's goroutine and produce an immutable
// queryPlan. Execution then partitions the *outermost* variable's candidate
// list into contiguous chunks and fans the chunks out over a worker pool.
// Each worker runs the unchanged inner bind/admit loop against its own
// binding cells, env, and tally struct — nothing in the hot loop is shared,
// so there are no atomics and no locks per binding. Chunk results are
// buffered per chunk index and concatenated in chunk order, which
// reproduces the serial row order byte-for-byte (contiguous chunks, in-
// order concatenation); errors are likewise reported from the earliest
// chunk, which is exactly the error the serial loop would have hit first.
//
// The safety argument, in one place:
//   - the queryPlan (candidate slices, hash tables, residual conjunct ASTs)
//     is never written after buildPlan returns;
//   - statement ASTs are read-only during execution — the analyzer caches
//     attribute offsets (AttrRef.idx) before execution starts;
//   - expression evaluation (eval.go) is allocation-local: it reads the
//     env's binding cells and allocates its own results, touching no
//     session or package state beyond the atomic obs counters;
//   - store reads happened at plan time under DB.mu.RLock; workers touch
//     only the materialized []tdb.Version snapshots plus immutable schema
//     metadata (see the concurrency notes on tdb.Relation).

// parallelMinOuter is the smallest outer candidate list worth fanning out
// when statistics are off (the v1 dispatch rule). Below it, goroutine
// startup and merge overhead exceed the loop itself, so execution stays on
// the serial path. Tests override it to force the parallel path onto small
// fixtures.
var parallelMinOuter = 128

// parallelMinCost is the estimated-work threshold (bindings examined, see
// orderByCost) above which a stats-guided plan takes the parallel path —
// the cost-based replacement for the fixed outer-size rule: a 100-row outer
// that fans out into a million join pairs parallelizes, a 10 000-row outer
// with a selective probe does not. TDB_PARALLEL_MIN_COST overrides it per
// session (see NewSession); tests lower the package default alongside
// parallelMinOuter to force the parallel path onto small fixtures.
var parallelMinCost = 4096.0

// resolveParallelMinCost applies the session override, then the package
// default.
func (s *Session) resolveParallelMinCost() float64 {
	if s.parallelMinCost > 0 {
		return s.parallelMinCost
	}
	return parallelMinCost
}

// parallelChunksPerWorker over-partitions the outer range so stragglers
// (chunks whose candidates fan out into many inner bindings) even out.
const parallelChunksPerWorker = 4

// SetParallelism fixes the number of workers retrieve execution may use.
// n <= 1 forces the serial path; 0 (the default) resolves to
// runtime.GOMAXPROCS(0) at execution time. The TDB_PARALLEL environment
// variable, when set to an integer, provides the initial value for new
// sessions.
func (s *Session) SetParallelism(n int) { s.parallelism = n }

// effectiveParallelism resolves the session's worker budget.
func (s *Session) effectiveParallelism() int {
	if s.parallelism != 0 {
		return s.parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// execTally is one executor goroutine's private per-row counters. Workers
// accumulate with plain +=; the coordinator sums the tallies after the
// merge and settles the atomic metrics once per statement.
type execTally struct {
	scanned   int64
	joinPairs int64
	probes    int64
}

func (t *execTally) add(o execTally) {
	t.scanned += o.scanned
	t.joinPairs += o.joinPairs
	t.probes += o.probes
}

// planExec is the mutable state of one executor goroutine: an environment
// with its own binding cells (one per plan variable, reused across
// candidates), the rows it has emitted, and its tally. The serial path uses
// exactly one; the parallel path one per worker.
type planExec struct {
	ev    *env
	cells []binding
	rows  []ResultRow
	tally execTally
}

// newPlanExec builds an executor for the plan, with binding cells pre-wired
// to each variable's relation.
func newPlanExec(pl *queryPlan, now temporal.Chronon) *planExec {
	ex := &planExec{
		ev:    &env{vars: make(map[string]*binding, len(pl.vars)), now: now},
		cells: make([]binding, len(pl.vars)),
	}
	for d := range pl.vars {
		ex.cells[d].rel = pl.vars[d].rel
	}
	return ex
}

// runPlan executes the compiled join loop with the outermost variable
// restricted to its candidates in [lo, hi). emitRow is called with every
// variable bound; it reads ex.ev and appends to ex.rows.
func runPlan(pl *queryPlan, ex *planExec, lo, hi int, emitRow func(*planExec) error) error {
	var emit func(depth int) error
	emit = func(depth int) error {
		if depth == len(pl.vars) {
			return emitRow(ex)
		}
		pv := &pl.vars[depth]
		b := &ex.cells[depth]
		ex.ev.vars[pv.name] = b
		step := func(ver *tdb.Version) error {
			ex.tally.scanned++
			if depth > 0 {
				ex.tally.joinPairs++
			}
			b.data, b.valid, b.trans = ver.Data, ver.Valid, ver.Trans
			ok, err := pv.admit(ex.ev)
			if err != nil || !ok {
				return err
			}
			return emit(depth + 1)
		}
		if pv.join != nil {
			ex.tally.probes++
			probe := &ex.cells[pv.join.probeDepth]
			key := joinHash(probe.data[pv.join.probeIdx], pv.join.numeric)
			for _, pos := range pv.join.table.Lookup(key) {
				if err := step(&pv.versions[pos]); err != nil {
					return err
				}
			}
		} else {
			from, to := 0, len(pv.versions)
			if depth == 0 {
				from, to = lo, hi
			}
			for i := from; i < to; i++ {
				if err := step(&pv.versions[i]); err != nil {
					return err
				}
			}
		}
		delete(ex.ev.vars, pv.name)
		return nil
	}
	return emit(0)
}

// useParallel decides whether a compiled plan takes the worker-pool path.
// Aggregate queries stay serial (the aggregator folds into shared per-group
// state), as do empty plans and plans short-circuited by a false
// variable-free conjunct. Past those gates the dispatch is cost-based when
// statistics informed the plan — fan out when the estimated join work
// clears the session's cutoff and there is an outer range to split — and
// falls back to the v1 fixed outer-size rule when they did not.
func useParallel(pl *queryPlan, workers int, agg *aggregator) bool {
	if workers <= 1 || agg != nil || pl.emptyResult || len(pl.vars) == 0 {
		return false
	}
	if pl.statsUsed {
		return pl.estWork >= pl.parallelCut && len(pl.vars[0].versions) > 1
	}
	return len(pl.vars[0].versions) >= parallelMinOuter
}

// runParallel fans the outermost candidate range out over a worker pool and
// merges per-chunk results deterministically. It returns the merged rows,
// the summed tally, and the number of workers and chunks used. On error it
// returns the error the serial loop would have reported: every chunk still
// runs to completion (or its own first error), and the earliest chunk's
// error wins.
func runParallel(pl *queryPlan, now temporal.Chronon, workers int,
	emitRow func(*planExec) error) ([]ResultRow, execTally, int, int, error) {

	n := len(pl.vars[0].versions)
	chunkSize := n / (workers * parallelChunksPerWorker)
	if chunkSize < parallelMinOuter/2 {
		chunkSize = parallelMinOuter / 2
	}
	if chunkSize < 1 {
		chunkSize = 1
	}
	numChunks := (n + chunkSize - 1) / chunkSize
	if workers > numChunks {
		workers = numChunks
	}

	chunkRows := make([][]ResultRow, numChunks)
	chunkErr := make([]error, numChunks)
	tallies := make([]execTally, workers)

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ex := newPlanExec(pl, now)
			for {
				ci := int(next.Add(1)) - 1
				if ci >= numChunks {
					break
				}
				lo := ci * chunkSize
				hi := min(lo+chunkSize, n)
				ex.rows = nil
				if err := runPlan(pl, ex, lo, hi, emitRow); err != nil {
					chunkErr[ci] = err
					continue
				}
				chunkRows[ci] = ex.rows
			}
			tallies[w] = ex.tally
		}(w)
	}
	wg.Wait()

	var tally execTally
	for _, t := range tallies {
		tally.add(t)
	}
	total := 0
	for ci := 0; ci < numChunks; ci++ {
		if chunkErr[ci] != nil {
			return nil, tally, workers, numChunks, chunkErr[ci]
		}
		total += len(chunkRows[ci])
	}
	rows := make([]ResultRow, 0, total)
	for _, cr := range chunkRows {
		rows = append(rows, cr...)
	}
	return rows, tally, workers, numChunks, nil
}
