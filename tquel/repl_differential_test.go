package tquel

import (
	"path/filepath"
	"testing"

	"tdb"
	"tdb/internal/wal"
	"tdb/temporal"
)

// shipAll streams the primary's durable log onto the follower through the
// replication hooks until the cursors meet, the way the network follower
// loop does (see the root package's replication tests for the protocol).
func shipAll(t *testing.T, src, dst *tdb.DB) {
	t.Helper()
	for i := 0; ; i++ {
		if i > 10_000 {
			t.Fatal("shipAll did not converge")
		}
		sEpoch, sSize, _ := src.ReplPosition()
		dEpoch, dSize := dst.ReplCursor()
		if dEpoch != sEpoch || dSize > sSize {
			snap, se, err := src.ReplSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			if err := dst.ReplReset(se, snap); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if dSize == sSize {
			return
		}
		raw, err := src.ReplReadLog(sEpoch, dSize, int(sSize-dSize))
		if err != nil {
			t.Fatal(err)
		}
		body := raw
		header := 0
		if dSize == 0 {
			if _, ok := wal.DecodeHeader(raw); !ok {
				t.Fatal("shipped header failed verification")
			}
			header = wal.HeaderLen
			body = raw[header:]
		}
		var recs []wal.Record
		consumed, err := wal.ScanFrames(body, func(r wal.Record) error {
			recs = append(recs, r)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if header+consumed == 0 {
			t.Fatal("no complete frame in shipped window")
		}
		if err := dst.ReplApply(sEpoch, raw[:header+consumed], recs); err != nil {
			t.Fatal(err)
		}
	}
}

// A live primary+follower pair must answer the figure queries identically,
// and the follower's own six differential arms (planner on/off, stats off,
// parallel, cache cold/warm) must agree among themselves — the follower
// plans against statistics reconstructed purely from the shipped log.
func TestDifferentialOnFollower(t *testing.T) {
	forceParallel(t)
	pPath := filepath.Join(t.TempDir(), "tdb.wal")
	clock := temporal.NewLogicalClock(0)
	primary, err := tdb.Open(pPath, tdb.Options{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primary.Close() })
	testClocks[primary] = clock
	t.Cleanup(func() { delete(testClocks, primary) })
	pSes := paperSessionOn(t, primary)

	fPath := filepath.Join(t.TempDir(), "tdb.wal")
	follower, err := tdb.Open(fPath, tdb.Options{
		Clock:    temporal.NewLogicalClock(temporal.Date(1985, 3, 1)),
		ReadOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { follower.Close() })
	shipAll(t, primary, follower)

	fSes := NewSession(follower)
	if _, err := fSes.Exec("range of f is faculty"); err != nil {
		t.Fatal(err)
	}
	for _, ses := range []*Session{pSes, fSes} {
		if _, err := ses.Exec("range of f1 is faculty\nrange of f2 is faculty"); err != nil {
			t.Fatal(err)
		}
	}
	for _, src := range []string{
		`retrieve (f.rank) where f.name = "Merrie"`,
		`retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"`,
		`retrieve (f1.rank)
			where f1.name = "Merrie" and f2.name = "Tom"
			when f1 overlap start of f2`,
		`retrieve (f1.rank)
			where f1.name = "Merrie" and f2.name = "Tom"
			when f1 overlap start of f2
			as of "12/10/82"`,
		`retrieve (f1.rank)
			where f1.name = "Merrie" and f2.name = "Tom"
			when f1 overlap start of f2
			as of "12/20/82"`,
		`retrieve (f.name, c = count(f.rank)) window 31536000`,
		`retrieve (f.name, f.rank) coalesce`,
		`retrieve (c = count(f.name)) window 63072000 slide 15768000 as of "12/10/82"`,
	} {
		differential(t, fSes, src)
		pRes, err := pSes.Query(src)
		if err != nil {
			t.Fatal(err)
		}
		fRes, err := fSes.Query(src)
		if err != nil {
			t.Fatal(err)
		}
		if pRes.String() != fRes.String() {
			t.Errorf("follower answer diverges for:\n%s\n--- primary ---\n%s\n--- follower ---\n%s",
				src, pRes, fRes)
		}
	}
}
