package tquel

import (
	"strings"
	"testing"

	"tdb/temporal"
)

// evalDB builds a session over a relation mixing every attribute kind, for
// driving evaluator edge cases end to end.
func evalDB(t *testing.T) *Session {
	t.Helper()
	db := newDB(t)
	ses := NewSession(db)
	if _, err := ses.Exec(`
		create static relation mix (name = string, n = int, f = float, ok = bool, d = date) key (name)
		range of m is mix
		append to mix (name = "x", n = 1, f = 1.5, ok = true, d = "01/01/80")
		append to mix (name = "nodate", n = 2, f = 2.5, ok = false, d = "02/01/80")
	`); err != nil {
		t.Fatal(err)
	}
	return ses
}

func TestBooleanAttributeAsPredicate(t *testing.T) {
	ses := evalDB(t)
	res, err := ses.Query(`retrieve (m.name) where m.ok`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0].Data[0].Str() != "x" {
		t.Fatalf("bool attr predicate:\n%s", res)
	}
	// Literal true/false as predicates.
	res, err = ses.Query(`retrieve (m.name) where true`)
	if err != nil || res.Len() != 2 {
		t.Fatalf("where true: %v\n%s", err, res)
	}
	res, err = ses.Query(`retrieve (m.name) where false`)
	if err != nil || res.Len() != 0 {
		t.Fatalf("where false: %v\n%s", err, res)
	}
	// Non-boolean literal predicate rejected statically.
	if _, err := ses.Query(`retrieve (m.name) where 42`); err == nil {
		t.Error("numeric literal predicate must fail")
	}
	// Non-boolean attribute predicate rejected statically.
	if _, err := ses.Query(`retrieve (m.name) where m.n`); err == nil {
		t.Error("int attribute predicate must fail")
	}
}

func TestRuntimeDateCoercionFailure(t *testing.T) {
	ses := evalDB(t)
	// The analyzer allows string-vs-instant comparison; a string value that
	// is not a date must fail at evaluation time with a positioned error.
	_, err := ses.Query(`retrieve (m.name) where m.d = m.name`)
	if err == nil {
		t.Fatal("comparing instant with non-date string value must fail")
	}
	if !strings.Contains(err.Error(), "cannot parse") {
		t.Errorf("error = %v", err)
	}
	// Reversed operand order takes the other coercion branch.
	if _, err := ses.Query(`retrieve (m.name) where m.name = m.d`); err == nil {
		t.Fatal("reversed coercion must also fail")
	}
	// Bad date literal against instant attribute.
	if _, err := ses.Query(`retrieve (m.name) where m.d = "not a date"`); err == nil {
		t.Fatal("unparseable date literal must fail")
	}
}

func TestCoercionSuccessPaths(t *testing.T) {
	ses := evalDB(t)
	cases := map[string]int{
		`retrieve (m.name) where m.d = "01/01/80"`:  1, // instant = string literal
		`retrieve (m.name) where "01/01/80" = m.d`:  1, // string literal = instant
		`retrieve (m.name) where m.n < m.f`:         2, // int vs float widening
		`retrieve (m.name) where m.f > m.n`:         2, // float vs int widening
		`retrieve (m.name) where m.d < "06/01/80"`:  2,
		`retrieve (m.name) where m.d >= "02/01/80"`: 1,
	}
	for q, want := range cases {
		res, err := ses.Query(q)
		if err != nil {
			t.Errorf("%s: %v", q, err)
			continue
		}
		if res.Len() != want {
			t.Errorf("%s = %d rows, want %d", q, res.Len(), want)
		}
	}
}

func TestTemporalAnalyzerErrors(t *testing.T) {
	ses := paperSession(t)
	cases := []string{
		`range of f is faculty
		 retrieve (f.rank) when start of (f overlap f)`, // start of a predicate
		`retrieve (f.rank) when (f overlap f) extend f`,         // extend over predicate
		`retrieve (f.rank) when f overlap (f precede f)`,        // rel over predicate
		`retrieve (f.rank) when f and f overlap f`,              // and over element
		`retrieve (f.rank) when not f`,                          // not over element
		`retrieve (f.rank) when f overlap "not a date"`,         // bad time literal
		`retrieve (f.rank) valid at (f overlap f)`,              // predicate in valid
		`retrieve (f.rank) as of f`,                             // var in as-of
		`retrieve (f.rank) as of (f overlap f)`,                 // predicate in as-of
		`retrieve (f.rank) valid from "06/01/83" to "01/01/80"`, // inverted valid
	}
	for _, q := range cases {
		if _, err := ses.Query(q); err == nil {
			t.Errorf("accepted: %s", q)
		}
	}
}

func TestEventEndOfIsIdentity(t *testing.T) {
	ses := paperSession(t)
	// end of (start of f) is the start event itself.
	res, err := ses.Query(`
		range of f is faculty
		retrieve (f.name) where f.name = "Mike"
		when end of start of f overlap f`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("end-of-event identity:\n%s", res)
	}
}

func TestValidRangeNowDefault(t *testing.T) {
	// Appending without a valid clause uses [commit, forever).
	db := newDB(t)
	ses := NewSession(db)
	if _, err := ses.Exec(`
		create temporal relation r (x = string)
		append to r (x = "a")
	`); err != nil {
		t.Fatal(err)
	}
	rel, err := db.Relation("r")
	if err != nil {
		t.Fatal(err)
	}
	vs := rel.Versions()
	if len(vs) != 1 {
		t.Fatalf("versions = %v", vs)
	}
	if vs[0].Valid.From != vs[0].Trans.From || vs[0].Valid.To != temporal.Forever {
		t.Errorf("default valid = %v (trans %v)", vs[0].Valid, vs[0].Trans)
	}
}

func TestReplaceReferencesOldTuple(t *testing.T) {
	db := newDB(t)
	ses := NewSession(db)
	if _, err := ses.Exec(`
		create static relation acct (name = string, bal = int) key (name)
		range of a is acct
		append to acct (name = "x", bal = 100)
	`); err != nil {
		t.Fatal(err)
	}
	// Sets referencing the variable read the pre-replace tuple.
	if _, err := ses.Exec(`replace a (bal = a.bal) where a.name = "x"`); err != nil {
		t.Fatal(err)
	}
	res, err := ses.Query(`retrieve (a.bal)`)
	if err != nil || res.Rows[0].Data[0].Int() != 100 {
		t.Fatalf("self-referencing replace: %v\n%s", err, res)
	}
	// Unknown attribute in replace sets.
	if _, err := ses.Exec(`replace a (nope = 1) where a.name = "x"`); err == nil {
		t.Error("unknown set attribute must fail")
	}
	// Date coercion in replace/append set clauses.
	if _, err := ses.Exec(`
		create static relation dated (name = string, d = date) key (name)
		range of dd is dated
		append to dated (name = "k", d = "05/05/85")
		replace dd (d = "06/06/86") where dd.name = "k"
	`); err != nil {
		t.Fatal(err)
	}
	res, err = ses.Query(`retrieve (dd.d)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].Data[0].Instant() != temporal.MustParse("06/06/86") {
		t.Fatalf("date set coercion:\n%s", res)
	}
	if _, err := ses.Exec(`replace dd (d = "garbage") where dd.name = "k"`); err == nil {
		t.Error("bad date in replace must fail")
	}
}
