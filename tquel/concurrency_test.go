package tquel

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentSessions drives several goroutines, each with its own
// Session, against one shared tdb.DB: every goroutine appends to its own
// relation and retrieves from any of them, with the parallel executor
// enabled so worker goroutines overlap concurrent statements. A Session is
// single-goroutine state, so each worker owns one; the database itself
// promises safe concurrent use, and this test is the -race witness for
// that promise.
func TestConcurrentSessions(t *testing.T) {
	forceParallel(t)
	const (
		goroutines = 4
		ops        = 60
	)
	db := newDB(t)

	setup := NewSession(db)
	for g := 0; g < goroutines; g++ {
		if _, err := setup.Exec(fmt.Sprintf(
			"create historical relation c%d (k = int, v = int) key (k)", g)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ses := NewSession(db)
			ses.DisablePlanner(false)
			ses.SetParallelism(3)
			rng := rand.New(rand.NewSource(int64(85 + g)))
			if _, err := ses.Exec(fmt.Sprintf(
				"range of x is c%d\nrange of y is c%d", g, (g+1)%goroutines)); err != nil {
				errs[g] = err
				return
			}
			appended := 0
			for i := 0; i < ops; i++ {
				switch rng.Intn(3) {
				case 0: // append to this goroutine's own relation
					src := fmt.Sprintf(
						`append to c%d (k = %d, v = %d) valid from "01/01/8%d" to forever`,
						g, g*1000+appended, i, rng.Intn(9))
					if _, err := ses.Exec(src); err != nil {
						errs[g] = fmt.Errorf("op %d append: %w", i, err)
						return
					}
					appended++
				case 1: // retrieve own relation: this session is its only writer
					res, err := ses.Query(`retrieve (x.k, x.v)`)
					if err != nil {
						errs[g] = fmt.Errorf("op %d retrieve: %w", i, err)
						return
					}
					if res.Len() != appended {
						errs[g] = fmt.Errorf("op %d: own relation has %d rows, want %d",
							i, res.Len(), appended)
						return
					}
				default: // join against a neighbor relation under concurrent writes
					res, err := ses.Query(`retrieve (x.k, y.v) where x.k = y.k`)
					if err != nil {
						errs[g] = fmt.Errorf("op %d join: %w", i, err)
						return
					}
					// Keys are partitioned per relation, so the equi-join is
					// empty no matter how the writes interleave.
					if res.Len() != 0 {
						errs[g] = fmt.Errorf("op %d: cross-relation join has %d rows, want 0",
							i, res.Len())
						return
					}
				}
			}
			// Final read-back: every appended row is visible.
			res, err := ses.Query(`retrieve (x.k)`)
			if err != nil {
				errs[g] = err
				return
			}
			if res.Len() != appended {
				errs[g] = fmt.Errorf("final read-back: %d rows, want %d", res.Len(), appended)
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}
