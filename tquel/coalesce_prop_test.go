package tquel

import (
	"fmt"
	"math/rand"
	"testing"

	"tdb"
	"tdb/temporal"
)

// Property tests for coalescing: idempotent, order-invariant, and
// commuting with as-of cuts. The first two run directly against
// coalesceRows over seeded random stamped rows; the third runs at the
// language level, checking that "retrieve ... as of T coalesce" renders
// identically to coalescing the uncoalesced as-of result after the fact —
// i.e. the as-of cut and the coalescing pass commute.

// randStampedRows builds n rows over a two-value alphabet with random
// small-range valid and trans intervals, so overlapping, adjacent, and
// disjoint interval pairs all occur.
func randStampedRows(rng *rand.Rand, n int) []ResultRow {
	rows := make([]ResultRow, n)
	for i := range rows {
		vf := temporal.Chronon(rng.Intn(20))
		vt := vf + temporal.Chronon(1+rng.Intn(10))
		tf := temporal.Chronon(rng.Intn(20))
		tt := tf + temporal.Chronon(1+rng.Intn(10))
		rows[i] = ResultRow{
			Data:  tdb.NewTuple(tdb.String([]string{"a", "b"}[rng.Intn(2)]), tdb.Int(int64(rng.Intn(2)))),
			Valid: temporal.Interval{From: vf, To: vt},
			Trans: temporal.Interval{From: tf, To: tt},
		}
	}
	return rows
}

// normalize renders a row set order-independently for comparison.
func normalize(rows []ResultRow) string {
	rs := &Resultset{Rows: append([]ResultRow(nil), rows...)}
	for i := range rs.Rows {
		rs.Rows[i].key = "" // stamps may have changed; force recompute
	}
	rs.sortAndDedup()
	out := ""
	for _, r := range rs.Rows {
		out += r.key + "\n"
	}
	return out
}

func TestCoalesceIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	for trial := 0; trial < 200; trial++ {
		rows := randStampedRows(rng, 1+rng.Intn(12))
		once := coalesceRows(append([]ResultRow(nil), rows...))
		twice := coalesceRows(append([]ResultRow(nil), once...))
		if got, want := normalize(twice), normalize(once); got != want {
			t.Fatalf("trial %d: coalesce not idempotent\nonce:\n%s\ntwice:\n%s", trial, want, got)
		}
	}
}

func TestCoalesceOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1985))
	for trial := 0; trial < 200; trial++ {
		rows := randStampedRows(rng, 2+rng.Intn(12))
		base := normalize(coalesceRows(append([]ResultRow(nil), rows...)))
		for p := 0; p < 5; p++ {
			shuffled := append([]ResultRow(nil), rows...)
			rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
			if got := normalize(coalesceRows(shuffled)); got != base {
				t.Fatalf("trial %d perm %d: coalesce is order-sensitive\nbase:\n%s\ngot:\n%s",
					trial, p, base, got)
			}
		}
	}
}

// Coalescing commutes with as-of cuts: cutting the history at T and then
// coalescing (what "as of T coalesce" executes) gives the same rows as
// coalescing the uncoalesced as-of result.
func TestCoalesceCommutesWithAsOf(t *testing.T) {
	ses := paperSession(t)
	for _, asOf := range []string{"09/01/77", "12/10/82", "12/20/82", "02/01/83", "06/01/84"} {
		src := fmt.Sprintf(`retrieve (f.name, f.rank) as of %q`, asOf)
		plain, err := ses.Query(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		viaLang, err := ses.Query(src + " coalesce")
		if err != nil {
			t.Fatalf("%s coalesce: %v", src, err)
		}
		post := normalize(coalesceRows(append([]ResultRow(nil), plain.Rows...)))
		if got := normalize(viaLang.Rows); got != post {
			t.Fatalf("as of %s: language coalesce differs from post-hoc coalesce\nlang:\n%s\npost:\n%s",
				asOf, got, post)
		}
	}
}
