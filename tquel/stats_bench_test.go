package tquel

import "testing"

// benchStatsArms runs the query as stats=on and stats=off sub-benchmarks,
// both with the planner enabled — isolating what the statistics buy over
// the v1 size/pushdown heuristics. Serial, cache bypassed, like benchBoth.
func benchStatsArms(b *testing.B, ses *Session, src string, wantRows int) {
	b.Helper()
	ses.DisableCache(true)
	ses.DisablePlanner(false)
	ses.SetParallelism(1)
	defer ses.SetParallelism(0)
	for _, mode := range []struct {
		name string
		off  bool
	}{{"stats=on", false}, {"stats=off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			ses.DisableStats(mode.off)
			defer ses.DisableStats(false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := ses.Query(src)
				if err != nil {
					b.Fatal(err)
				}
				if res.Len() != wantRows {
					b.Fatalf("rows = %d, want %d", res.Len(), wantRows)
				}
			}
		})
	}
}

// BenchmarkPlanWithStats measures plan compilation alone — explain builds
// the full plan (join order, build sides, cost estimates) without executing
// it — so the stats=on arm prices the estimator overhead the cost-based
// planner adds to every query, and stats=off the v1 baseline.
func BenchmarkPlanWithStats(b *testing.B) {
	ses := skewedFixture(b, 8, 64, 128)
	ses.DisableCache(true)
	src := `explain retrieve (s.tag, m.tag, l.tag) where l.sk = s.k and l.mk = m.k`
	for _, mode := range []struct {
		name string
		off  bool
	}{{"stats=on", false}, {"stats=off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			ses.DisableStats(mode.off)
			defer ses.DisableStats(false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ses.Exec(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJoinSkewed is the headline cost-based-ordering case: three
// relations where the size-ascending v1 order (s, m, l) opens a 40×1000
// cross product before the joining relation binds, while the cost order
// (s, l, m) follows the selective s–l edge first and never leaves
// linear-size intermediates. The stats=on arm must beat stats=off ≥2×.
func BenchmarkJoinSkewed(b *testing.B) {
	ses := skewedFixture(b, 40, 1000, 1200)
	benchStatsArms(b, ses,
		`retrieve (s.tag, m.tag, l.tag) where l.sk = s.k and l.mk = m.k`, 1200)
}
