package tquel

import (
	"strings"
	"testing"

	"tdb"
)

func parseOne(t *testing.T, src string) Stmt {
	t.Helper()
	stmts, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	if len(stmts) != 1 {
		t.Fatalf("Parse(%q) = %d statements", src, len(stmts))
	}
	return stmts[0]
}

func TestParseCreate(t *testing.T) {
	st := parseOne(t, `create temporal relation faculty (name = string, rank = string) key (name)`).(*CreateStmt)
	if st.Name != "faculty" || st.Kind != tdb.Temporal || st.Event {
		t.Errorf("create = %+v", st)
	}
	if len(st.Attrs) != 2 || st.Attrs[0].Name != "name" || st.Attrs[1].Type != tdb.StringKind {
		t.Errorf("attrs = %+v", st.Attrs)
	}
	if len(st.Keys) != 1 || st.Keys[0] != "name" {
		t.Errorf("keys = %v", st.Keys)
	}
	// Default kind is static; "relation" is optional; event flag.
	st = parseOne(t, `create r (x = int)`).(*CreateStmt)
	if st.Kind != tdb.Static {
		t.Errorf("default kind = %v", st.Kind)
	}
	st = parseOne(t, `create historical event relation promo (name = string, effective = date)`).(*CreateStmt)
	if st.Kind != tdb.Historical || !st.Event {
		t.Errorf("event create = %+v", st)
	}
	if st.Attrs[1].Type != tdb.InstantKind {
		t.Errorf("date type = %v", st.Attrs[1].Type)
	}
	// Errors.
	for _, bad := range []string{
		`create r ()`,
		`create r (x = blob)`,
		`create r (x = int`,
		`create rollback event relation r (x = int)`, // parsed fine; exec rejects — but kind keyword order:
	} {
		_ = bad
	}
	if _, err := Parse(`create r (x = blob)`); err == nil {
		t.Error("unknown type must fail")
	}
	if _, err := Parse(`create r (x = int,`); err == nil {
		t.Error("truncated create must fail")
	}
}

func TestParseRangeAndDestroy(t *testing.T) {
	st := parseOne(t, `range of f is faculty`).(*RangeStmt)
	if st.Var != "f" || st.Rel != "faculty" {
		t.Errorf("range = %+v", st)
	}
	d := parseOne(t, `destroy faculty`).(*DestroyStmt)
	if d.Name != "faculty" {
		t.Errorf("destroy = %+v", d)
	}
	if _, err := Parse(`range f is faculty`); err == nil {
		t.Error("missing 'of' must fail")
	}
}

func TestParseRetrievePaperQueries(t *testing.T) {
	// The static query (§4.1).
	st := parseOne(t, `retrieve (f.rank) where f.name = "Merrie"`).(*RetrieveStmt)
	if len(st.Targets) != 1 {
		t.Fatalf("targets = %+v", st.Targets)
	}
	ar, ok := st.Targets[0].Expr.(*AttrRef)
	if !ok || ar.Var != "f" || ar.Attr != "rank" {
		t.Errorf("target = %+v", st.Targets[0].Expr)
	}
	cmp, ok := st.Where.(*Cmp)
	if !ok || cmp.Op != "=" {
		t.Fatalf("where = %+v", st.Where)
	}

	// The rollback query (§4.2).
	st = parseOne(t, `retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"`).(*RetrieveStmt)
	if st.AsOf == nil {
		t.Fatal("as of missing")
	}
	tl, ok := st.AsOf.At.(*TimeLit)
	if !ok || tl.Text != "12/10/82" {
		t.Errorf("as of = %+v", st.AsOf.At)
	}

	// The historical query (§4.3).
	st = parseOne(t, `retrieve (f1.rank)
	                  where f1.name = "Merrie" and f2.name = "Tom"
	                  when f1 overlap start of f2`).(*RetrieveStmt)
	if st.When == nil {
		t.Fatal("when missing")
	}
	rel, ok := st.When.(*TempRel)
	if !ok || rel.Op != "overlap" {
		t.Fatalf("when = %+v", st.When)
	}
	if _, ok := rel.L.(*VarInterval); !ok {
		t.Errorf("when lhs = %+v", rel.L)
	}
	so, ok := rel.R.(*StartOf)
	if !ok {
		t.Fatalf("when rhs = %+v", rel.R)
	}
	if vi, ok := so.Of.(*VarInterval); !ok || vi.Var != "f2" {
		t.Errorf("start of operand = %+v", so.Of)
	}
	bo, ok := st.Where.(*BoolOp)
	if !ok || bo.Op != "and" {
		t.Errorf("where = %+v", st.Where)
	}

	// The temporal query (§4.4) — both clauses.
	st = parseOne(t, `retrieve (f1.rank)
	                  where f1.name = "Merrie" and f2.name = "Tom"
	                  when f1 overlap start of f2
	                  as of "12/10/82"`).(*RetrieveStmt)
	if st.When == nil || st.AsOf == nil {
		t.Fatal("clauses missing")
	}
}

func TestParseRetrieveClauses(t *testing.T) {
	st := parseOne(t, `retrieve into result (r = f.rank, f.name, c = 42)
	                   valid from "01/01/80" to forever
	                   where f.rank != "full"
	                   as of "12/10/82" through "12/20/82"`).(*RetrieveStmt)
	if st.Into != "result" {
		t.Errorf("into = %q", st.Into)
	}
	if st.Targets[0].Name != "r" || st.Targets[1].Name != "" || st.Targets[2].Name != "c" {
		t.Errorf("target names = %+v", st.Targets)
	}
	if _, ok := st.Targets[2].Expr.(*Lit); !ok {
		t.Errorf("literal target = %+v", st.Targets[2].Expr)
	}
	if st.Valid == nil || st.Valid.At != nil || st.Valid.From == nil {
		t.Errorf("valid = %+v", st.Valid)
	}
	if st.AsOf.Through == nil {
		t.Error("through missing")
	}
	// valid at form.
	st = parseOne(t, `retrieve (f.name) valid at "12/01/82"`).(*RetrieveStmt)
	if st.Valid == nil || st.Valid.At == nil {
		t.Errorf("valid at = %+v", st.Valid)
	}
	// Duplicate clause errors.
	for _, bad := range []string{
		`retrieve (f.x) where f.a = 1 where f.b = 2`,
		`retrieve (f.x) when f overlap f when f precede f`,
		`retrieve (f.x) as of "1/1/80" as of "1/1/81"`,
		`retrieve (f.x) valid at "1/1/80" valid at "1/1/81"`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("duplicate clause accepted: %s", bad)
		}
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	st := parseOne(t, `retrieve (f.x) where f.a = 1 or f.b = 2 and not f.c = 3`).(*RetrieveStmt)
	// or(a=1, and(b=2, not(c=3)))
	or, ok := st.Where.(*BoolOp)
	if !ok || or.Op != "or" {
		t.Fatalf("top = %+v", st.Where)
	}
	and, ok := or.R.(*BoolOp)
	if !ok || and.Op != "and" {
		t.Fatalf("rhs = %+v", or.R)
	}
	if not, ok := and.R.(*BoolOp); !ok || not.Op != "not" {
		t.Fatalf("and rhs = %+v", and.R)
	}
	// Parentheses override.
	st = parseOne(t, `retrieve (f.x) where (f.a = 1 or f.b = 2) and f.c = 3`).(*RetrieveStmt)
	and2, ok := st.Where.(*BoolOp)
	if !ok || and2.Op != "and" {
		t.Fatalf("top = %+v", st.Where)
	}
	if l, ok := and2.L.(*BoolOp); !ok || l.Op != "or" {
		t.Fatalf("lhs = %+v", and2.L)
	}
}

func TestParseTemporalPrecedence(t *testing.T) {
	st := parseOne(t, `retrieve (f.x) when f1 overlap f2 and not f1 precede f3`).(*RetrieveStmt)
	and, ok := st.When.(*TempBool)
	if !ok || and.Op != "and" {
		t.Fatalf("when = %+v", st.When)
	}
	if _, ok := and.L.(*TempRel); !ok {
		t.Fatalf("lhs = %+v", and.L)
	}
	if not, ok := and.R.(*TempBool); !ok || not.Op != "not" {
		t.Fatalf("rhs = %+v", and.R)
	}
	// extend binds tighter than overlap.
	st = parseOne(t, `retrieve (f.x) when f1 extend f2 overlap f3`).(*RetrieveStmt)
	rel, ok := st.When.(*TempRel)
	if !ok || rel.Op != "overlap" {
		t.Fatalf("when = %+v", st.When)
	}
	if _, ok := rel.L.(*Extend); !ok {
		t.Fatalf("lhs = %+v", rel.L)
	}
	// end of and nested parens.
	st = parseOne(t, `retrieve (f.x) when end of (f1 extend f2) precede "now"`).(*RetrieveStmt)
	rel, ok = st.When.(*TempRel)
	if !ok || rel.Op != "precede" {
		t.Fatalf("when = %+v", st.When)
	}
	if _, ok := rel.L.(*EndOf); !ok {
		t.Fatalf("lhs = %+v", rel.L)
	}
}

func TestParseDML(t *testing.T) {
	ap := parseOne(t, `append to faculty (name = "James", rank = "assistant") valid from "02/01/85" to forever`).(*AppendStmt)
	if ap.Rel != "faculty" || len(ap.Sets) != 2 || ap.Valid == nil {
		t.Errorf("append = %+v", ap)
	}
	del := parseOne(t, `delete f where f.name = "Mike" valid from "03/01/84" to forever`).(*DeleteStmt)
	if del.Var != "f" || del.Where == nil || del.Valid == nil {
		t.Errorf("delete = %+v", del)
	}
	rep := parseOne(t, `replace f (rank = "full") where f.name = "Merrie" valid from "12/01/82" to forever`).(*ReplaceStmt)
	if rep.Var != "f" || len(rep.Sets) != 1 || rep.Where == nil || rep.Valid == nil {
		t.Errorf("replace = %+v", rep)
	}
	if _, err := Parse(`append faculty (x = 1)`); err == nil {
		t.Error("append without 'to' must fail")
	}
}

func TestParseMultipleStatements(t *testing.T) {
	stmts, err := Parse(`
		create temporal relation faculty (name = string, rank = string) key (name)
		range of f is faculty
		retrieve (f.rank) where f.name = "Merrie"
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("statements = %d", len(stmts))
	}
}

func TestParseErrorsCarryPositions(t *testing.T) {
	_, err := Parse("retrieve\n  (f.rank")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error lacks position: %v", err)
	}
	if _, err := Parse(`bogus statement`); err == nil {
		t.Error("unknown statement must fail")
	}
	if _, err := Parse(`retrieve (f.rank) where f. = 3`); err == nil {
		t.Error("broken attr ref must fail")
	}
}

// Every truncation/malformation of each statement form must produce a
// positioned error, never a panic or silent acceptance.
func TestParseMalformedStatements(t *testing.T) {
	cases := []string{
		// create
		`create`,
		`create r`,
		`create r (`,
		`create r (x`,
		`create r (x =`,
		`create r (x = int key`,
		`create r (x = int) key`,
		`create r (x = int) key (`,
		`create r (x = int) key (x`,
		// destroy / range
		`destroy`,
		`range`,
		`range of`,
		`range of v`,
		`range of v is`,
		// retrieve
		`retrieve`,
		`retrieve into`,
		`retrieve (`,
		`retrieve ()`,
		`retrieve (v.x`,
		`retrieve (v.x,)`,
		`retrieve (v.x) valid`,
		`retrieve (v.x) valid from "1/1/80"`,
		`retrieve (v.x) valid from "1/1/80" to`,
		`retrieve (v.x) valid at`,
		`retrieve (v.x) where`,
		`retrieve (v.x) when`,
		`retrieve (v.x) as`,
		`retrieve (v.x) as of`,
		`retrieve (v.x) as of "1/1/80" through`,
		`retrieve (v.x) when start`,
		`retrieve (v.x) when start of`,
		`retrieve (v.x) when v extend`,
		`retrieve (v.x) when v overlap`,
		`retrieve (v.x) when (v overlap v`,
		`retrieve (v.x) where (v.x = 1`,
		`retrieve (v.x) where not`,
		`retrieve (count(v.x)`,
		`retrieve (count(`,
		// append / delete / replace
		`append`,
		`append to`,
		`append to r`,
		`append to r (x`,
		`append to r (x = )`,
		`delete`,
		`replace`,
		`replace v`,
		`replace v (x = 1`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted malformed: %q", src)
		}
	}
}

func TestTokenKindAndErrorRendering(t *testing.T) {
	if TokString.String() != "string" || TokenKind(99).String() != "unknown" {
		t.Error("token kind names")
	}
	e := &Error{Msg: "boom"}
	if e.Error() != "tquel: boom" {
		t.Errorf("positionless error = %q", e.Error())
	}
	e = &Error{Pos: Pos{Line: 2, Col: 7}, Msg: "boom"}
	if e.Error() != "tquel: 2:7: boom" {
		t.Errorf("positioned error = %q", e.Error())
	}
}
