package tquel

import (
	"testing"

	"tdb"
	"tdb/temporal"
)

func fac2(name, rank string) tdb.Tuple {
	return tdb.NewTuple(tdb.String(name), tdb.String(rank))
}

const benchQuery = `
	retrieve (f1.rank)
	where f1.name = "Merrie" and f2.name = "Tom"
	when f1 overlap start of f2
	as of "12/10/82"
`

func BenchmarkLex(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Lex(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecRetrieve(b *testing.B) {
	ses := paperSession(b)
	if _, err := ses.Exec("range of f1 is faculty\nrange of f2 is faculty"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ses.Query(benchQuery)
		if err != nil || res.Len() != 1 {
			b.Fatalf("%v, %v", res, err)
		}
	}
}

func BenchmarkExecAppend(b *testing.B) {
	db := newDB(b)
	ses := NewSession(db)
	if _, err := ses.Exec(`create temporal relation r (name = string, rank = string)`); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ses.Exec(`append to r (name = "x", rank = "y")`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalWhere(b *testing.B) {
	stmts, err := Parse(`retrieve (f.rank) where f.name = "Merrie" and not f.rank = "full"`)
	if err != nil {
		b.Fatal(err)
	}
	st := stmts[0].(*RetrieveStmt)
	db := newDB(b)
	ses := NewSession(db)
	if _, err := ses.Exec(`create temporal relation faculty (name = string, rank = string)
		range of f is faculty`); err != nil {
		b.Fatal(err)
	}
	rel, err := db.Relation("faculty")
	if err != nil {
		b.Fatal(err)
	}
	ev := &env{vars: map[string]*binding{
		"f": {rel: rel, data: fac2("Merrie", "associate"),
			valid: temporal.All, trans: temporal.All},
	}}
	_ = ses
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := evalPred(st.Where, ev)
		if err != nil || !ok {
			b.Fatalf("%v, %v", ok, err)
		}
	}
}
