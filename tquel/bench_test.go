package tquel

import (
	"testing"

	"tdb"
	"tdb/temporal"
)

func fac2(name, rank string) tdb.Tuple {
	return tdb.NewTuple(tdb.String(name), tdb.String(rank))
}

const benchQuery = `
	retrieve (f1.rank)
	where f1.name = "Merrie" and f2.name = "Tom"
	when f1 overlap start of f2
	as of "12/10/82"
`

func BenchmarkLex(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Lex(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecRetrieve(b *testing.B) {
	ses := paperSession(b)
	if _, err := ses.Exec("range of f1 is faculty\nrange of f2 is faculty"); err != nil {
		b.Fatal(err)
	}
	ses.DisableCache(true) // measure execution, not cache hits
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ses.Query(benchQuery)
		if err != nil || res.Len() != 1 {
			b.Fatalf("%v, %v", res, err)
		}
	}
}

func BenchmarkExecAppend(b *testing.B) {
	db := newDB(b)
	ses := NewSession(db)
	if _, err := ses.Exec(`create temporal relation r (name = string, rank = string)`); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ses.Exec(`append to r (name = "x", rank = "y")`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalWhere(b *testing.B) {
	stmts, err := Parse(`retrieve (f.rank) where f.name = "Merrie" and not f.rank = "full"`)
	if err != nil {
		b.Fatal(err)
	}
	st := stmts[0].(*RetrieveStmt)
	db := newDB(b)
	ses := NewSession(db)
	if _, err := ses.Exec(`create temporal relation faculty (name = string, rank = string)
		range of f is faculty`); err != nil {
		b.Fatal(err)
	}
	rel, err := db.Relation("faculty")
	if err != nil {
		b.Fatal(err)
	}
	ev := &env{vars: map[string]*binding{
		"f": {rel: rel, data: fac2("Merrie", "associate"),
			valid: temporal.All, trans: temporal.All},
	}}
	_ = ses
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := evalPred(st.Where, ev)
		if err != nil || !ok {
			b.Fatalf("%v, %v", ok, err)
		}
	}
}

// benchKV builds a historical relation of n versions with distinct int keys
// k=0..n-1, each valid from a staggered start: open-ended when width is 0,
// else width chronons long (so a point query overlaps only ~width of them).
// Loaded through the direct API in one transaction so setup stays cheap.
func benchKV(b *testing.B, db *tdb.DB, name string, n int, width int) {
	b.Helper()
	sch, err := tdb.NewSchema(tdb.Attr("k", tdb.IntKind), tdb.Attr("v", tdb.StringKind))
	if err != nil {
		b.Fatal(err)
	}
	if sch, err = sch.WithKey("k"); err != nil {
		b.Fatal(err)
	}
	if _, err := db.CreateRelation(name, tdb.Historical, sch); err != nil {
		b.Fatal(err)
	}
	base := temporal.Date(1980, 1, 1)
	err = db.Update(func(tx *tdb.Tx) error {
		h, err := tx.Rel(name)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			t := tdb.NewTuple(tdb.Int(int64(i)), tdb.String("v"))
			to := temporal.Forever
			if width > 0 {
				to = base + temporal.Chronon(i+width)
			}
			if err := h.Assert(t, base+temporal.Chronon(i), to); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// benchBoth runs the query as planner-on and planner-off sub-benchmarks.
// Both arms pin the session to one worker so the numbers track the serial
// executor across PRs regardless of the machine's core count;
// BenchmarkJoinParallel measures the worker-pool path. The result cache is
// bypassed — these benchmarks repeat one query and would otherwise measure
// hit latency (BenchmarkAsOfCached owns that number).
func benchBoth(b *testing.B, ses *Session, src string, wantRows int) {
	b.Helper()
	ses.DisableCache(true)
	ses.SetParallelism(1)
	defer ses.SetParallelism(0)
	for _, mode := range []struct {
		name string
		off  bool
	}{{"planner=on", false}, {"planner=off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			ses.DisablePlanner(mode.off)
			defer ses.DisablePlanner(false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := ses.Query(src)
				if err != nil {
					b.Fatal(err)
				}
				if res.Len() != wantRows {
					b.Fatalf("rows = %d, want %d", res.Len(), wantRows)
				}
			}
		})
	}
}

// BenchmarkJoinEquiSelective is the headline planner case: a selective
// equi-join of two 5000-version relations. The planner prefilters nothing
// but turns the O(n²) nested loop into one hash build plus n probes.
func BenchmarkJoinEquiSelective(b *testing.B) {
	db := newDB(b)
	ses := NewSession(db)
	benchKV(b, db, "big1", 5000, 0)
	benchKV(b, db, "big2", 5000, 0)
	if _, err := ses.Exec("range of a is big1\nrange of b is big2"); err != nil {
		b.Fatal(err)
	}
	benchBoth(b, ses, `retrieve (a.k, b.v) where a.k = b.k`, 5000)
}

// BenchmarkJoinCrossSmall guards the other direction: a genuine small cross
// product gains nothing from planning, and must not regress under it.
func BenchmarkJoinCrossSmall(b *testing.B) {
	db := newDB(b)
	ses := NewSession(db)
	benchKV(b, db, "c1", 40, 0)
	benchKV(b, db, "c2", 40, 0)
	if _, err := ses.Exec("range of a is c1\nrange of b is c2"); err != nil {
		b.Fatal(err)
	}
	benchBoth(b, ses, `retrieve (a.k, b.k) where a.k != b.k`, 40*40-40)
}

// BenchmarkWhenOverlapIndexed measures the pushed when path: a narrow
// overlap window against 5000 staggered versions answers through the
// store's interval index instead of binding every version.
func BenchmarkWhenOverlapIndexed(b *testing.B) {
	db := newDB(b)
	ses := NewSession(db)
	benchKV(b, db, "hist", 5000, 5)
	if _, err := ses.Exec("range of h is hist"); err != nil {
		b.Fatal(err)
	}
	// "now" lands mid-history; with 5-chronon valid periods, exactly five of
	// the 5000 versions overlap it. The planner stabs the interval tree; the
	// ablation binds all 5000 and filters.
	ses.SetNow(func() temporal.Chronon { return temporal.Date(1980, 1, 1) + 2500 })
	benchBoth(b, ses, `retrieve (h.k) when h overlap "now"`, 5)
}

// BenchmarkJoinParallel is the tentpole scaling case: the selective
// equi-join of BenchmarkJoinEquiSelective with the session's worker budget
// left at the default, so GOMAXPROCS — and therefore the -cpu flag —
// controls the pool size. Run with -cpu 1,2,4 to see the scaling curve;
// -cpu 1 resolves to one worker and takes the serial path.
func BenchmarkJoinParallel(b *testing.B) {
	db := newDB(b)
	ses := NewSession(db)
	benchKV(b, db, "p1", 5000, 0)
	benchKV(b, db, "p2", 5000, 0)
	if _, err := ses.Exec("range of a is p1\nrange of b is p2"); err != nil {
		b.Fatal(err)
	}
	ses.DisableCache(true) // measure the pool, not cache hits
	ses.DisablePlanner(false)
	ses.SetParallelism(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ses.Query(`retrieve (a.k, b.v) where a.k = b.k`)
		if err != nil {
			b.Fatal(err)
		}
		if res.Len() != 5000 {
			b.Fatalf("rows = %d, want 5000", res.Len())
		}
	}
}

// BenchmarkEvalWhereResolved is BenchmarkEvalWhere after analysis has
// cached attribute offsets in the AST: the per-row Schema().Index string
// lookups disappear.
func BenchmarkEvalWhereResolved(b *testing.B) {
	stmts, err := Parse(`retrieve (f.rank) where f.name = "Merrie" and not f.rank = "full"`)
	if err != nil {
		b.Fatal(err)
	}
	st := stmts[0].(*RetrieveStmt)
	db := newDB(b)
	ses := NewSession(db)
	if _, err := ses.Exec(`create temporal relation faculty (name = string, rank = string)
		range of f is faculty`); err != nil {
		b.Fatal(err)
	}
	if err := ses.checkRetrieve(st); err != nil {
		b.Fatal(err)
	}
	rel, err := db.Relation("faculty")
	if err != nil {
		b.Fatal(err)
	}
	ev := &env{vars: map[string]*binding{
		"f": {rel: rel, data: fac2("Merrie", "associate"),
			valid: temporal.All, trans: temporal.All},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := evalPred(st.Where, ev)
		if err != nil || !ok {
			b.Fatalf("%v, %v", ok, err)
		}
	}
}

// BenchmarkAsOfCached is the headline case for the query result cache: a
// settled as-of retrieve whose answer is transaction-closed, so after the
// warm-up iteration the cache=on arm serves every query from the immutable
// entry (one lookup plus a resultset clone). The cache=off arm re-executes
// the rollback scan over 10000 versions each time. The fixture opens its
// own database with an explicit budget so the numbers do not depend on
// TDB_CACHE_BYTES.
func BenchmarkAsOfCached(b *testing.B) {
	for _, mode := range []struct {
		name string
		off  bool
	}{{"cache=on", false}, {"cache=off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			clock := temporal.NewLogicalClock(0)
			db, err := tdb.Open("", tdb.Options{Clock: clock, CacheBytes: tdb.DefaultCacheBytes})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			sch, err := tdb.NewSchema(tdb.Attr("k", tdb.IntKind), tdb.Attr("v", tdb.StringKind))
			if err != nil {
				b.Fatal(err)
			}
			if sch, err = sch.WithKey("k"); err != nil {
				b.Fatal(err)
			}
			if _, err := db.CreateRelation("hist", tdb.Temporal, sch); err != nil {
				b.Fatal(err)
			}
			clock.Set(temporal.Date(1980, 1, 1))
			if err := db.Update(func(tx *tdb.Tx) error {
				h, err := tx.Rel("hist")
				if err != nil {
					return err
				}
				for i := 0; i < 5000; i++ {
					t := tdb.NewTuple(tdb.Int(int64(i)), tdb.String("v"))
					if err := h.Assert(t, temporal.Date(1980, 1, 1), temporal.Forever); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			ses := NewSession(db)
			if _, err := ses.Exec("range of h is hist"); err != nil {
				b.Fatal(err)
			}
			// A later commit closes every 1980 version, settling the window
			// below AND fixing its transaction ends, which is what lets the
			// answer take the immutable cache path.
			clock.Set(temporal.Date(1983, 1, 1))
			if _, err := ses.Exec(`replace h (v = "w") where h.k >= 0 valid from "01/01/83" to forever`); err != nil {
				b.Fatal(err)
			}
			ses.SetParallelism(1)
			ses.DisableCache(mode.off)
			const q = `retrieve (h.k) where h.k < 100 as of "01/01/82"`
			res, err := ses.Query(q) // warm the cache outside the timer
			if err != nil {
				b.Fatal(err)
			}
			if res.Len() != 100 {
				b.Fatalf("rows = %d, want 100", res.Len())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := ses.Query(q)
				if err != nil {
					b.Fatal(err)
				}
				if res.Len() != 100 {
					b.Fatalf("rows = %d, want 100", res.Len())
				}
			}
		})
	}
}

// BenchmarkWindowAggregate measures windowed aggregation over 5000
// staggered finite versions: pseudo-row buffering, canonical-order fold,
// and per-window emission.
func BenchmarkWindowAggregate(b *testing.B) {
	db := newDB(b)
	ses := NewSession(db)
	benchKV(b, db, "wh", 5000, 500)
	if _, err := ses.Exec("range of h is wh"); err != nil {
		b.Fatal(err)
	}
	ses.DisableCache(true)
	const q = `retrieve (c = count(h.k), s = sum(h.k)) window 600`
	res, err := ses.Query(q)
	if err != nil || res.Len() == 0 {
		b.Fatalf("%v, %v", res, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ses.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoalesce measures the coalescing pass over 5000 versions that
// collapse into eight rows: dense group merging dominated by the sweep.
func BenchmarkCoalesce(b *testing.B) {
	db := newDB(b)
	ses := NewSession(db)
	sch, err := tdb.NewSchema(tdb.Attr("g", tdb.IntKind), tdb.Attr("v", tdb.StringKind))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.CreateRelation("co", tdb.Historical, sch); err != nil {
		b.Fatal(err)
	}
	base := temporal.Date(1980, 1, 1)
	err = db.Update(func(tx *tdb.Tx) error {
		h, err := tx.Rel("co")
		if err != nil {
			return err
		}
		for i := 0; i < 5000; i++ {
			t := tdb.NewTuple(tdb.Int(int64(i%8)), tdb.String("v"))
			if err := h.Assert(t, base+temporal.Chronon(i), base+temporal.Chronon(i+16)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ses.Exec("range of c is co"); err != nil {
		b.Fatal(err)
	}
	ses.DisableCache(true)
	const q = `retrieve (c.g, c.v) coalesce`
	res, err := ses.Query(q)
	if err != nil || res.Len() != 8 {
		b.Fatalf("rows = %v, err = %v", res.Len(), err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ses.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}
