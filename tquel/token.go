// Package tquel implements TQuel (Temporal QUEry Language), the query
// language of Snodgrass's temporal database work and the language in which
// the paper phrases every example query. TQuel extends Quel's retrieve
// statement with three clauses:
//
//   - "valid from ... to ..." / "valid at ..." — the derived valid period
//   - "when ..." — temporal predicates over the variables' valid periods
//     (overlap, precede, equal, with start of / end of / extend operators)
//   - "as of ..." — rollback to a past database state (transaction time)
//
// alongside Quel's range/retrieve/append/delete/replace statements and a
// create statement extended with the taxonomy's relation kinds.
//
// The package compiles statements to operations against a tdb.DB:
//
//	ses := tquel.NewSession(db)
//	out, err := ses.Exec(`range of f is faculty
//	                      retrieve (f.rank) where f.name = "Merrie"
//	                      as of "12/10/82"`)
package tquel

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind uint8

const (
	// TokEOF marks the end of input.
	TokEOF TokenKind = iota
	// TokIdent is an identifier or keyword (keywords are matched
	// case-insensitively by the parser).
	TokIdent
	// TokString is a double-quoted string literal.
	TokString
	// TokInt is an integer literal.
	TokInt
	// TokFloat is a floating-point literal.
	TokFloat
	// TokPunct is punctuation: ( ) , . = != < <= > >=
	TokPunct
)

var tokenKindNames = [...]string{
	TokEOF: "end of input", TokIdent: "identifier", TokString: "string",
	TokInt: "integer", TokFloat: "float", TokPunct: "punctuation",
}

// String names the kind.
func (k TokenKind) String() string {
	if int(k) < len(tokenKindNames) {
		return tokenKindNames[k]
	}
	return "unknown"
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Pos
}

// Pos is a line/column source position (1-based).
type Pos struct {
	Line, Col int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a TQuel compilation or execution error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Pos.Line == 0 {
		return "tquel: " + e.Msg
	}
	return fmt.Sprintf("tquel: %s: %s", e.Pos, e.Msg)
}

func errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
