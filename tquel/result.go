package tquel

import (
	"sort"
	"strconv"
	"strings"

	"tdb"
	"tdb/internal/pretty"
	"tdb/internal/value"
	"tdb/temporal"
)

// ResultRow is one derived tuple with its implicit time stamps.
type ResultRow struct {
	Data  tdb.Tuple
	Valid temporal.Interval
	Trans temporal.Interval

	// key caches canonicalKey. The executor fills it at emit time (on the
	// parallel path that spreads the formatting across workers);
	// sortAndDedup computes it lazily for rows built elsewhere, e.g. by
	// the aggregator.
	key string
}

// canonicalKey renders the row's canonical sort/dedup key: the tuple's
// display form plus the four stamp chronons. Byte-compatible with the
// fmt.Sprintf("%v|%d|%d|%d|%d") spelling it replaced, so resultset order —
// and every golden figure — is unchanged.
func (row *ResultRow) canonicalKey() string {
	var b strings.Builder
	b.Grow(len(row.Data)*8 + 48)
	b.WriteString(row.Data.String())
	for _, c := range [4]temporal.Chronon{row.Valid.From, row.Valid.To, row.Trans.From, row.Trans.To} {
		b.WriteByte('|')
		b.WriteString(strconv.FormatInt(int64(c), 10))
	}
	return b.String()
}

// Resultset is the materialized answer of a retrieve statement. Like the
// paper's derived relations it carries the implicit time columns its source
// relations had: querying a temporal relation yields a temporal resultset
// (valid and transaction time), a historical relation yields valid time
// only, and so on.
type Resultset struct {
	Attrs    []string
	Rows     []ResultRow
	HasValid bool
	HasTrans bool
	Event    bool
}

// Len returns the number of rows.
func (r *Resultset) Len() int { return len(r.Rows) }

// Clone returns a deep copy: the attribute list, every row, and every
// row's tuple are freshly allocated, so mutating the copy (or the
// original) cannot be observed through the other. The query cache stores a
// clone and hands out clones, which is what lets callers scribble on a
// returned resultset without poisoning later answers (values themselves
// are immutable value types, so copying the tuple slice suffices).
func (r *Resultset) Clone() *Resultset {
	if r == nil {
		return nil
	}
	out := &Resultset{
		Attrs:    append([]string(nil), r.Attrs...),
		HasValid: r.HasValid,
		HasTrans: r.HasTrans,
		Event:    r.Event,
	}
	if r.Rows != nil {
		out.Rows = make([]ResultRow, len(r.Rows))
		for i, row := range r.Rows {
			out.Rows[i] = ResultRow{
				Data:  append(tdb.Tuple(nil), row.Data...),
				Valid: row.Valid,
				Trans: row.Trans,
				key:   row.key,
			}
		}
	}
	return out
}

// approxBytes estimates the resultset's resident size for cache byte
// accounting: struct overheads plus string payloads. It intentionally
// overcounts a little rather than under; the cache's budget is a bound,
// not a measurement.
func (r *Resultset) approxBytes() int64 {
	const (
		rowOverhead  = 96 // ResultRow struct: slice+2 intervals+string header
		valOverhead  = 40 // value struct: kind + int64 + float64 + string header
		attrOverhead = 16 // string header
	)
	n := int64(64) // Resultset struct itself
	for _, a := range r.Attrs {
		n += attrOverhead + int64(len(a))
	}
	for i := range r.Rows {
		row := &r.Rows[i]
		n += rowOverhead + int64(len(row.key))
		for _, v := range row.Data {
			n += valOverhead
			if v.Kind() == value.String {
				n += int64(len(v.Str()))
			}
		}
	}
	return n
}

// String renders the resultset in the paper's figure style.
func (r *Resultset) String() string {
	headers := append([]string{}, r.Attrs...)
	split := 0
	if r.HasValid || r.HasTrans {
		split = len(headers)
	}
	if r.HasValid {
		if r.Event {
			headers = append(headers, "valid at")
		} else {
			headers = append(headers, "valid from", "valid to")
		}
	}
	if r.HasTrans {
		headers = append(headers, "trans start", "trans end")
	}
	tbl := pretty.Table{Headers: headers, Split: split}
	for _, row := range r.Rows {
		cells := make([]string, 0, len(headers))
		for _, v := range row.Data {
			cells = append(cells, v.String())
		}
		if r.HasValid {
			if r.Event {
				cells = append(cells, row.Valid.From.String())
			} else {
				cells = append(cells, row.Valid.From.String(), row.Valid.To.String())
			}
		}
		if r.HasTrans {
			cells = append(cells, row.Trans.From.String(), row.Trans.To.String())
		}
		tbl.Rows = append(tbl.Rows, cells)
	}
	return tbl.String()
}

// sortAndDedup puts rows in a deterministic order and removes duplicates.
// Keys are computed at most once per row (not per comparison) and reused
// from ResultRow.key when the executor already paid for them.
func (r *Resultset) sortAndDedup() {
	for i := range r.Rows {
		if r.Rows[i].key == "" {
			r.Rows[i].key = r.Rows[i].canonicalKey()
		}
	}
	sort.Slice(r.Rows, func(i, j int) bool { return r.Rows[i].key < r.Rows[j].key })
	out := r.Rows[:0]
	prev := ""
	for _, row := range r.Rows {
		if row.key != prev {
			out = append(out, row)
			prev = row.key
		}
	}
	r.Rows = out
}

// Outcome is the result of executing one statement.
type Outcome struct {
	// Stmt names the statement kind ("retrieve", "create", ...).
	Stmt string
	// Result is non-nil for retrieve statements.
	Result *Resultset
	// Msg summarizes effect for non-retrieve statements ("created
	// relation faculty", "3 tuples deleted").
	Msg string
}

// String renders the outcome for interactive display.
func (o *Outcome) String() string {
	if o.Result != nil {
		return strings.TrimRight(o.Result.String(), "\n")
	}
	return o.Msg
}
