package tquel

import (
	"errors"
	"fmt"

	"tdb"
	"tdb/internal/config"
	"tdb/internal/obs"
	"tdb/internal/value"
	"tdb/temporal"
)

// Session executes TQuel statements against a database. Range variable
// declarations persist across Exec calls, as in an interactive Quel
// session. A Session is not safe for concurrent use; open one per client.
type Session struct {
	db          *tdb.DB
	ranges      map[string]string // variable -> relation name
	now         func() temporal.Chronon
	tracer      obs.Tracer // nil unless SetTracer installed one
	noPlanner   bool
	noStats     bool // planner ignores statistics (DisableStats)
	noCache     bool // session-level query cache bypass (DisableCache)
	parallelism int  // worker budget; 0 = GOMAXPROCS, <=1 = serial

	// parallelMinCost overrides the package-level parallel dispatch cutoff
	// when positive (TDB_PARALLEL_MIN_COST).
	parallelMinCost float64

	lastPlan *queryPlan // most recent compiled retrieve, for tests and explain
}

// NewSession opens a session on the database. The "now" spelling in
// queries resolves via the system clock by default; override with SetNow
// for deterministic replay. Setting the TDB_DISABLE_PLANNER environment
// variable (to anything but "0" or "false") opens sessions with the query
// planner disabled, so a whole test suite can run the ablation; setting
// TDB_PARALLEL to an integer fixes the worker budget the same way
// (SetParallelism documents the values).
func NewSession(db *tdb.DB) *Session {
	s := &Session{
		db:     db,
		ranges: make(map[string]string),
		now:    func() temporal.Chronon { return temporal.SystemClock{}.Now() },
	}
	s.noPlanner = config.Bool(config.EnvDisablePlanner)
	s.noStats = config.Bool(config.EnvDisableStats)
	s.parallelism = config.Int(config.EnvParallel, 0)
	s.parallelMinCost = config.PosFloat(config.EnvParallelMinCost, 0)
	return s
}

// DisablePlanner switches retrieve execution to the naive nested-loop path
// with every predicate evaluated at the innermost binding depth — the
// ablation mirror of core's DisableIntervalIndex. The planner is on by
// default; differential tests assert both paths agree.
func (s *Session) DisablePlanner(disabled bool) { s.noPlanner = disabled }

// DisableStats reverts the planner to the statistics-free v1 heuristics:
// ascending-cardinality join order, first-edge hash builds, the fixed
// outer-size parallel threshold, and unconditional interval-index probes.
// Statistics maintenance on the write path is unaffected — only their
// consumption by this session's planner. The TDB_DISABLE_STATS environment
// variable sets the same switch for new sessions; differential tests assert
// both modes agree.
func (s *Session) DisableStats(disabled bool) { s.noStats = disabled }

// SetNow overrides the session's notion of the current instant ("now" in
// queries). Update statements always use their transaction's commit
// chronon instead.
func (s *Session) SetNow(fn func() temporal.Chronon) { s.now = fn }

// SetTracer installs a tracer that observes this session's query phases
// (parse, analyze, execute) with row-count notes. A nil tracer (the
// default) restores the uninstrumented path, which performs no tracing
// work beyond one nil check per phase.
func (s *Session) SetTracer(t obs.Tracer) { s.tracer = t }

// Exec parses and executes TQuel source, returning one outcome per
// statement. Execution stops at the first failing statement.
func (s *Session) Exec(src string) ([]*Outcome, error) {
	var sp obs.Span
	if s.tracer != nil {
		sp = s.tracer.Start("parse")
	}
	stmts, err := Parse(src)
	if sp != nil {
		sp.Note("statements", int64(len(stmts)))
		sp.End()
	}
	if err != nil {
		mStatementErrors.Inc()
		return nil, err
	}
	var out []*Outcome
	for _, st := range stmts {
		o, err := s.exec(st)
		if err != nil {
			mStatementErrors.Inc()
			return out, err
		}
		countStmt(o.Stmt)
		out = append(out, o)
	}
	return out, nil
}

// Query executes source that ends in a retrieve statement and returns that
// retrieve's resultset.
func (s *Session) Query(src string) (*Resultset, error) {
	outs, err := s.Exec(src)
	if err != nil {
		return nil, err
	}
	for i := len(outs) - 1; i >= 0; i-- {
		if outs[i].Result != nil {
			return outs[i].Result, nil
		}
	}
	return nil, errors.New("tquel: source contains no retrieve statement")
}

func (s *Session) exec(st Stmt) (*Outcome, error) {
	switch n := st.(type) {
	case *CreateStmt:
		return s.execCreate(n)
	case *DestroyStmt:
		if err := s.db.DropRelation(n.Name); err != nil {
			return nil, errf(n.Pos, "%v", err)
		}
		return &Outcome{Stmt: "destroy", Msg: fmt.Sprintf("destroyed relation %s", n.Name)}, nil
	case *RangeStmt:
		if _, err := s.db.Relation(n.Rel); err != nil {
			return nil, errf(n.Pos, "%v", err)
		}
		s.ranges[n.Var] = n.Rel
		return &Outcome{Stmt: "range", Msg: fmt.Sprintf("range of %s is %s", n.Var, n.Rel)}, nil
	case *RetrieveStmt:
		return s.execRetrieveCached(n)
	case *ExplainStmt:
		return s.execExplain(n)
	case *AppendStmt:
		return s.execAppend(n)
	case *DeleteStmt:
		return s.execDelete(n)
	case *ReplaceStmt:
		return s.execReplace(n)
	default:
		return nil, fmt.Errorf("tquel: unhandled statement %T", st)
	}
}

func (s *Session) execCreate(n *CreateStmt) (*Outcome, error) {
	attrs := make([]tdb.Attribute, 0, len(n.Attrs))
	for _, a := range n.Attrs {
		attrs = append(attrs, tdb.Attr(a.Name, a.Type))
	}
	sch, err := tdb.NewSchema(attrs...)
	if err != nil {
		return nil, errf(n.Pos, "%v", err)
	}
	if len(n.Keys) > 0 {
		if sch, err = sch.WithKey(n.Keys...); err != nil {
			return nil, errf(n.Pos, "%v", err)
		}
	}
	if n.Event {
		_, err = s.db.CreateEventRelation(n.Name, n.Kind, sch)
	} else {
		_, err = s.db.CreateRelation(n.Name, n.Kind, sch)
	}
	if err != nil {
		return nil, errf(n.Pos, "%v", err)
	}
	kind := n.Kind.String()
	if n.Event {
		kind += " event"
	}
	return &Outcome{Stmt: "create", Msg: fmt.Sprintf("created %s relation %s", kind, n.Name)}, nil
}

// resolveVar maps a range variable to its relation.
func (s *Session) resolveVar(pos Pos, v string) (*tdb.Relation, error) {
	relName, ok := s.ranges[v]
	if !ok {
		return nil, errf(pos, "range variable %q not declared (use: range of %s is <relation>)", v, v)
	}
	rel, err := s.db.Relation(relName)
	if err != nil {
		return nil, errf(pos, "%v", err)
	}
	return rel, nil
}

// usedVars collects, in deterministic first-use order, the range variables
// a retrieve statement references.
func retrieveVars(n *RetrieveStmt) []string {
	seen := map[string]bool{}
	var order []string
	add := func(m map[string]bool) {
		for v := range m {
			if !seen[v] {
				seen[v] = true
				order = append(order, v)
			}
		}
	}
	for _, t := range n.Targets {
		m := map[string]bool{}
		exprVars(t.Expr, m)
		add(m)
	}
	if n.Where != nil {
		m := map[string]bool{}
		exprVars(n.Where, m)
		add(m)
	}
	if n.When != nil {
		m := map[string]bool{}
		temporalVars(n.When, m)
		add(m)
	}
	if n.Valid != nil {
		m := map[string]bool{}
		for _, te := range []TemporalExpr{n.Valid.At, n.Valid.From, n.Valid.To} {
			if te != nil {
				temporalVars(te, m)
			}
		}
		add(m)
	}
	return order
}

// targetVarSet collects the variables referenced in the target list; their
// stamps determine the derived tuple's default stamps (this is what makes
// the paper's Figure 6/8 answers carry f1's periods).
func targetVarSet(n *RetrieveStmt) map[string]bool {
	m := map[string]bool{}
	for _, t := range n.Targets {
		exprVars(t.Expr, m)
	}
	return m
}

func (s *Session) execRetrieve(n *RetrieveStmt) (*Outcome, error) {
	var sp obs.Span
	if s.tracer != nil {
		sp = s.tracer.Start("analyze")
	}
	err := s.checkRetrieve(n)
	if sp != nil {
		sp.End()
	}
	if err != nil {
		return nil, err
	}
	// Per-row tallies accumulate in a coordinator-owned execTally; workers
	// (see parallel.go) keep their own and are summed into it after the
	// merge. All counter settlement — the atomic adds and the execute span
	// notes — happens exactly once here, on the coordinating goroutine, on
	// the way out. tally.scanned counts bindings examined per variable:
	// each time a candidate version is bound to a range variable — during
	// planner prefiltering or inside the join loop — it counts once.
	// tally.joinPairs counts the bindings examined at inner depths
	// (depth ≥ 1), the join work the old outer-rebinding accounting made
	// invisible.
	var tally execTally
	var returned int64
	var execSp obs.Span
	var pl *queryPlan
	defer func() {
		if pl != nil {
			mConjunctsPushed.Add(uint64(pl.pushed))
			mWhenIndexed.Add(uint64(pl.whenIndexed))
			mHashJoinBuildRows.Add(uint64(pl.buildRows))
			mJoinFallbacks.Add(uint64(pl.fallbacks))
			mProbeSkips.Add(uint64(pl.overlapSkips))
		}
		mRowsScanned.Add(uint64(tally.scanned))
		mRowsReturned.Add(uint64(returned))
		mHashJoinProbes.Add(uint64(tally.probes))
		mJoinPairs.Add(uint64(tally.joinPairs))
		if execSp != nil {
			execSp.Note("rows_scanned", tally.scanned)
			execSp.Note("rows_returned", returned)
			execSp.Note("hash_probes", tally.probes)
			execSp.Note("join_pairs", tally.joinPairs)
			execSp.End()
		}
	}()
	ev := &env{vars: map[string]*binding{}, now: s.now()}

	// Rollback instant(s): evaluated before binding any variables — the as
	// of clause may not reference range variables. "as of E through E2"
	// views the database across the whole transaction-time window: a
	// version qualifies if it belonged to any believed state in [E, E2].
	var asOf, through temporal.Chronon
	hasAsOf, hasThrough := false, false
	if n.AsOf != nil {
		var err error
		asOf, err = evalEvent(n.AsOf.At, ev)
		if err != nil {
			return nil, err
		}
		hasAsOf = true
		if n.AsOf.Through != nil {
			if through, err = evalEvent(n.AsOf.Through, ev); err != nil {
				return nil, err
			}
			if through < asOf {
				return nil, errf(n.AsOf.Pos, "as of window is inverted: %v through %v", asOf, through)
			}
			hasThrough = true
		}
	}

	order := retrieveVars(n)
	rels := make([]*tdb.Relation, len(order))
	res := &Resultset{}
	for i, v := range order {
		rel, err := s.resolveVar(n.Pos, v)
		if err != nil {
			return nil, err
		}
		rels[i] = rel
		if rel.Kind().SupportsHistorical() {
			res.HasValid = true
		}
		if rel.Kind().SupportsRollback() {
			res.HasTrans = true
		}
	}
	if n.Valid != nil {
		res.HasValid = true
		res.Event = n.Valid.At != nil
	} else if len(order) == 1 && rels[0].Event() {
		res.Event = true
	}

	// Result attribute names.
	for i, t := range n.Targets {
		name := t.Name
		if name == "" {
			switch e := t.Expr.(type) {
			case *AttrRef:
				name = e.Attr
			case *Agg:
				name = e.Fn
			default:
				name = fmt.Sprintf("col%d", i+1)
			}
		}
		res.Attrs = append(res.Attrs, name)
	}

	tvars := targetVarSet(n)
	var agg *aggregator
	var win *windowAggregator
	switch {
	case n.Window != nil:
		win = newWindowAggregator(n.Targets, n.Window)
	case hasAggregates(n.Targets):
		agg = newAggregator(n.Targets)
	}
	// emitRowTo runs with all variables bound in ev: stamp, project, fold.
	// Rows land in *rows so the serial path, the naive path, and each
	// parallel worker can supply their own buffer; aggregate folding is
	// serial-only (useParallel excludes it).
	emitRowTo := func(ev *env, rows *[]ResultRow) error {
		row := ResultRow{Valid: temporal.All, Trans: temporal.All}
		// Derived valid period.
		switch {
		case n.Valid != nil && n.Valid.At != nil:
			at, err := evalEvent(n.Valid.At, ev)
			if err != nil {
				return err
			}
			row.Valid = temporal.At(at)
		case n.Valid != nil:
			from, err := evalEvent(n.Valid.From, ev)
			if err != nil {
				return err
			}
			to, err := evalEvent(n.Valid.To, ev)
			if err != nil {
				return err
			}
			iv, err := temporal.MakeInterval(from, to)
			if err != nil {
				return errf(n.Valid.Pos, "valid period is inverted: [%v, %v)", from, to)
			}
			row.Valid = iv
		default:
			row.Valid = stampIntersection(ev, order, tvars, func(b *binding) temporal.Interval { return b.valid })
		}
		row.Trans = stampIntersection(ev, order, tvars, func(b *binding) temporal.Interval { return b.trans })
		if row.Valid.IsEmpty() || row.Trans.IsEmpty() {
			// The participating facts were never jointly valid/present.
			return nil
		}
		if win != nil {
			// Windowed aggregation defers folding: buffer a pseudo-row
			// carrying the plain-target and aggregate-argument values, so
			// every execution path (naive, serial plan, parallel workers)
			// produces the same mergeable buffers; win.finish folds them in
			// canonical order afterwards.
			row.Data = make(tdb.Tuple, 0, len(n.Targets))
			for _, t := range n.Targets {
				e := t.Expr
				if ag, ok := e.(*Agg); ok {
					e = ag.Arg
				}
				v, err := evalExpr(e, ev)
				if err != nil {
					return err
				}
				row.Data = append(row.Data, v)
			}
			row.key = row.canonicalKey()
			*rows = append(*rows, row)
			return nil
		}
		if agg != nil {
			return agg.add(ev, row.Valid, row.Trans)
		}
		row.Data = make(tdb.Tuple, 0, len(n.Targets))
		for _, t := range n.Targets {
			v, err := evalExpr(t.Expr, ev)
			if err != nil {
				return err
			}
			row.Data = append(row.Data, v)
		}
		// The canonical sort key is computed at emit time: the sort needs
		// it anyway, and on the parallel path this moves the formatting
		// work into the workers.
		row.key = row.canonicalKey()
		*rows = append(*rows, row)
		return nil
	}

	if s.noPlanner {
		// Ablation path: materialize every variable's visible versions and
		// run the naive nested-loop product, all predicates innermost.
		versions := make([][]tdb.Version, len(order))
		for i, rel := range rels {
			var vs []tdb.Version
			var err error
			if hasThrough {
				vs, err = rel.VersionsDuring(asOf, through)
			} else {
				vs, err = rel.VisibleVersions(asOf, hasAsOf)
			}
			if err != nil {
				return nil, errf(n.Pos, "%s: %v", rel.Name(), err)
			}
			versions[i] = vs
		}
		if s.tracer != nil {
			execSp = s.tracer.Start("execute")
		}
		var emit func(depth int) error
		emit = func(depth int) error {
			if depth < len(order) {
				v := order[depth]
				for _, ver := range versions[depth] {
					tally.scanned++
					if depth > 0 {
						tally.joinPairs++
					}
					ev.vars[v] = &binding{rel: rels[depth], data: ver.Data, valid: ver.Valid, trans: ver.Trans}
					if err := emit(depth + 1); err != nil {
						return err
					}
				}
				delete(ev.vars, v)
				return nil
			}
			if n.Where != nil {
				ok, err := evalPred(n.Where, ev)
				if err != nil || !ok {
					return err
				}
			}
			if n.When != nil {
				ok, err := evalTemporalPred(n.When, ev)
				if err != nil || !ok {
					return err
				}
			}
			return emitRowTo(ev, &res.Rows)
		}
		if err := emit(0); err != nil {
			return nil, err
		}
	} else {
		var planSp obs.Span
		if s.tracer != nil {
			planSp = s.tracer.Start("plan")
		}
		var err error
		pl, err = s.buildPlan(n, order, rels, ev, asOf, through, hasAsOf, hasThrough)
		if planSp != nil {
			if pl != nil {
				planSp.Note("conjuncts_pushed", pl.pushed)
				planSp.Note("when_indexed", pl.whenIndexed)
				planSp.Note("build_rows", pl.buildRows)
				planSp.Note("nested_loop_fallbacks", pl.fallbacks)
			}
			planSp.End()
		}
		if err != nil {
			return nil, err
		}
		if s.tracer != nil && pl.statsUsed {
			// The statistics phase: what the cost model concluded, next to
			// the plan span that consumed it.
			stSp := s.tracer.Start("stats")
			stSp.Note("est_work", int64(pl.estWork))
			stSp.Note("est_rows", int64(pl.estRows))
			stSp.Note("probe_skips", pl.overlapSkips)
			stSp.End()
		}
		s.lastPlan = pl
		tally.scanned += pl.prefiltered
		if s.tracer != nil {
			execSp = s.tracer.Start("execute")
		}
		emitRow := func(ex *planExec) error { return emitRowTo(ex.ev, &ex.rows) }
		switch workers := s.effectiveParallelism(); {
		case pl.emptyResult:
			// A false variable-free conjunct: skip the join loop entirely.
		case useParallel(pl, workers, agg):
			var parSp obs.Span
			if s.tracer != nil {
				parSp = s.tracer.Start("parallel")
			}
			rows, wtally, used, chunks, err := runParallel(pl, ev.now, workers, emitRow)
			tally.add(wtally)
			mParallelQueries.Inc()
			mParallelWorkers.Add(uint64(used))
			if parSp != nil {
				parSp.Note("workers", int64(used))
				parSp.Note("chunks", int64(chunks))
				parSp.Note("outer_candidates", int64(len(pl.vars[0].versions)))
				parSp.End()
			}
			if err != nil {
				return nil, err
			}
			res.Rows = rows
		default:
			ex := newPlanExec(pl, ev.now)
			if agg == nil && len(pl.vars) > 0 {
				ex.rows = make([]ResultRow, 0, min(len(pl.vars[0].versions), 1024))
			}
			outer := 0
			if len(pl.vars) > 0 {
				outer = len(pl.vars[0].versions)
			}
			err := runPlan(pl, ex, 0, outer, emitRow)
			tally.add(ex.tally)
			if err != nil {
				return nil, err
			}
			res.Rows = ex.rows
		}
	}
	if win != nil {
		pseudo := res.Rows
		res.Rows = nil
		if err := win.finish(pseudo, res); err != nil {
			return nil, err
		}
	}
	if agg != nil {
		if err := agg.finish(res); err != nil {
			return nil, err
		}
	}
	if n.Coalesce {
		res.Rows = coalesceRows(res.Rows)
	}
	res.sortAndDedup()
	returned = int64(len(res.Rows))

	if n.Into != "" {
		if err := s.storeInto(n, res); err != nil {
			return nil, err
		}
	}
	return &Outcome{Stmt: "retrieve", Result: res,
		Msg: fmt.Sprintf("%d tuple(s)", len(res.Rows))}, nil
}

// stampIntersection intersects the chosen stamp over the target-list
// variables, falling back to all bound variables, then to the universal
// interval.
func stampIntersection(ev *env, order []string, tvars map[string]bool, get func(*binding) temporal.Interval) temporal.Interval {
	pick := func(filter func(string) bool) (temporal.Interval, bool) {
		iv := temporal.All
		found := false
		for _, v := range order {
			if !filter(v) {
				continue
			}
			b, ok := ev.vars[v]
			if !ok {
				continue
			}
			iv = iv.Intersect(get(b))
			found = true
		}
		return iv, found
	}
	if iv, ok := pick(func(v string) bool { return tvars[v] }); ok {
		return iv
	}
	iv, _ := pick(func(string) bool { return true })
	return iv
}

// storeInto materializes a resultset as a new relation: historical when it
// carries valid time (event or interval), static otherwise. Transaction
// time cannot be stored — it is DBMS-assigned — so derived transaction
// stamps are viewing information only, as in TQuel.
func (s *Session) storeInto(n *RetrieveStmt, res *Resultset) error {
	attrs := make([]tdb.Attribute, 0, len(res.Attrs))
	types, err := targetTypes(s, n)
	if err != nil {
		return err
	}
	for i, name := range res.Attrs {
		attrs = append(attrs, tdb.Attr(name, types[i]))
	}
	sch, err := tdb.NewSchema(attrs...)
	if err != nil {
		return errf(n.Pos, "result schema: %v", err)
	}
	var rel *tdb.Relation
	if res.HasValid {
		if res.Event {
			rel, err = s.db.CreateEventRelation(n.Into, tdb.Historical, sch)
		} else {
			rel, err = s.db.CreateRelation(n.Into, tdb.Historical, sch)
		}
	} else {
		rel, err = s.db.CreateRelation(n.Into, tdb.Static, sch)
	}
	if err != nil {
		return errf(n.Pos, "%v", err)
	}
	return s.db.Update(func(tx *tdb.Tx) error {
		h, err := tx.Rel(n.Into)
		if err != nil {
			return err
		}
		for _, row := range res.Rows {
			switch {
			case !res.HasValid:
				if err := h.Insert(row.Data); err != nil && !errors.Is(err, tdb.ErrDuplicateKey) {
					return err
				}
			case res.Event:
				if err := h.AssertAt(row.Data, row.Valid.From); err != nil {
					return err
				}
			default:
				if err := h.Assert(row.Data, row.Valid.From, row.Valid.To); err != nil {
					return err
				}
			}
		}
		_ = rel
		return nil
	})
}

// targetTypes statically types the target list (shared with the analyzer).
func targetTypes(s *Session, n *RetrieveStmt) ([]tdb.ValueKind, error) {
	out := make([]tdb.ValueKind, 0, len(n.Targets))
	for _, t := range n.Targets {
		k, err := s.checkExpr(t.Expr)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// validRange resolves an optional valid clause to an interval, with the
// supplied default.
func validRange(vc *ValidClause, ev *env, def temporal.Interval) (temporal.Interval, bool, error) {
	if vc == nil {
		return def, false, nil
	}
	if vc.At != nil {
		at, err := evalEvent(vc.At, ev)
		if err != nil {
			return def, false, err
		}
		return temporal.At(at), true, nil
	}
	from, err := evalEvent(vc.From, ev)
	if err != nil {
		return def, false, err
	}
	to, err := evalEvent(vc.To, ev)
	if err != nil {
		return def, false, err
	}
	iv, err := temporal.MakeInterval(from, to)
	if err != nil {
		return def, false, errf(vc.Pos, "valid period is inverted")
	}
	return iv, true, nil
}

func (s *Session) execAppend(n *AppendStmt) (*Outcome, error) {
	rel, err := s.db.Relation(n.Rel)
	if err != nil {
		return nil, errf(n.Pos, "%v", err)
	}
	sch := rel.Schema()
	err = s.db.Update(func(tx *tdb.Tx) error {
		ev := &env{vars: map[string]*binding{}, now: tx.At()}
		// Build the tuple in schema order; every attribute must be set.
		vals := make([]tdb.Value, sch.Arity())
		set := make([]bool, sch.Arity())
		for _, sc := range n.Sets {
			idx := sch.Index(sc.Attr)
			if idx < 0 {
				return errf(sc.Pos, "relation %q has no attribute %q", n.Rel, sc.Attr)
			}
			if set[idx] {
				return errf(sc.Pos, "attribute %q set twice", sc.Attr)
			}
			v, err := evalExpr(sc.Expr, ev)
			if err != nil {
				return err
			}
			// Date spellings for instant attributes.
			if sch.Attr(idx).Type == value.Instant && v.Kind() == value.String {
				c, err := temporal.Parse(v.Str())
				if err != nil {
					return errf(sc.Pos, "cannot parse %q as a date", v.Str())
				}
				v = tdb.Instant(c)
			}
			vals[idx], set[idx] = v, true
		}
		for i, ok := range set {
			if !ok {
				return errf(n.Pos, "attribute %q not set", sch.Attr(i).Name)
			}
		}
		tup := tdb.NewTuple(vals...)
		h, err := tx.Rel(n.Rel)
		if err != nil {
			return err
		}
		switch {
		case !rel.Kind().SupportsHistorical():
			if n.Valid != nil {
				return errf(n.Valid.Pos, "%s relations accept no valid clause", rel.Kind())
			}
			return h.Insert(tup)
		case rel.Event():
			at := tx.At()
			if n.Valid != nil {
				if n.Valid.At == nil {
					return errf(n.Valid.Pos, "event relations need 'valid at'")
				}
				if at, err = evalEvent(n.Valid.At, ev); err != nil {
					return err
				}
			}
			return h.AssertAt(tup, at)
		default:
			iv, _, err := validRange(n.Valid, ev, temporal.Since(tx.At()))
			if err != nil {
				return err
			}
			return h.Assert(tup, iv.From, iv.To)
		}
	})
	if err != nil {
		return nil, err
	}
	return &Outcome{Stmt: "append", Msg: fmt.Sprintf("appended to %s", n.Rel)}, nil
}

// matchVersions binds the variable to each visible version and collects
// those passing the where/when clauses.
func (s *Session) matchVersions(pos Pos, v string, where Expr, when TemporalExpr, ev *env) (*tdb.Relation, []tdb.Version, error) {
	rel, err := s.resolveVar(pos, v)
	if err != nil {
		return nil, nil, err
	}
	versions, err := rel.VisibleVersions(0, false)
	if err != nil {
		return nil, nil, errf(pos, "%v", err)
	}
	var out []tdb.Version
	for _, ver := range versions {
		ev.vars[v] = &binding{rel: rel, data: ver.Data, valid: ver.Valid, trans: ver.Trans}
		if where != nil {
			ok, err := evalPred(where, ev)
			if err != nil {
				return nil, nil, err
			}
			if !ok {
				continue
			}
		}
		if when != nil {
			ok, err := evalTemporalPred(when, ev)
			if err != nil {
				return nil, nil, err
			}
			if !ok {
				continue
			}
		}
		out = append(out, ver)
	}
	delete(ev.vars, v)
	return rel, out, nil
}

func (s *Session) execDelete(n *DeleteStmt) (*Outcome, error) {
	count := 0
	// Match against the current belief before opening the transaction:
	// Update holds the database lock, and matching reads through the
	// public (locking) query paths. The session serializes its own
	// statements, so the snapshot cannot go stale between match and apply.
	ev := &env{vars: map[string]*binding{}, now: s.now()}
	rel, matches, err := s.matchVersions(n.Pos, n.Var, n.Where, n.When, ev)
	if err != nil {
		return nil, err
	}
	err = s.db.Update(func(tx *tdb.Tx) error {
		ev.now = tx.At()
		h, err := tx.Rel(rel.Name())
		if err != nil {
			return err
		}
		sch := rel.Schema()
		seenKeys := map[string]bool{}
		for _, ver := range matches {
			key := ver.Data.Key(sch)
			switch {
			case !rel.Kind().SupportsHistorical():
				if err := h.Delete(key); err != nil {
					return err
				}
			case rel.Event():
				if err := h.RetractAt(key, ver.Valid.From); err != nil {
					return err
				}
			default:
				ev.vars[n.Var] = &binding{rel: rel, data: ver.Data, valid: ver.Valid, trans: ver.Trans}
				iv, explicit, err := validRange(n.Valid, ev, ver.Valid)
				if err != nil {
					return err
				}
				delete(ev.vars, n.Var)
				if explicit {
					// With an explicit range, retract once per key.
					k := key.String()
					if seenKeys[k] {
						continue
					}
					seenKeys[k] = true
				}
				if err := h.Retract(key, iv.From, iv.To); err != nil &&
					!errors.Is(err, tdb.ErrNoSuchTuple) {
					return err
				}
			}
			count++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Outcome{Stmt: "delete", Msg: fmt.Sprintf("%d tuple(s) deleted", count)}, nil
}

func (s *Session) execReplace(n *ReplaceStmt) (*Outcome, error) {
	count := 0
	// Match before the transaction for the same locking reason as delete.
	ev := &env{vars: map[string]*binding{}, now: s.now()}
	rel, matches, err := s.matchVersions(n.Pos, n.Var, n.Where, n.When, ev)
	if err != nil {
		return nil, err
	}
	err = s.db.Update(func(tx *tdb.Tx) error {
		ev.now = tx.At()
		h, err := tx.Rel(rel.Name())
		if err != nil {
			return err
		}
		sch := rel.Schema()
		for _, ver := range matches {
			// Sets may reference the variable (rank = f.rank): bind it.
			ev.vars[n.Var] = &binding{rel: rel, data: ver.Data, valid: ver.Valid, trans: ver.Trans}
			newData := ver.Data.Clone()
			for _, sc := range n.Sets {
				idx := sch.Index(sc.Attr)
				if idx < 0 {
					return errf(sc.Pos, "relation %q has no attribute %q", rel.Name(), sc.Attr)
				}
				v, err := evalExpr(sc.Expr, ev)
				if err != nil {
					return err
				}
				if sch.Attr(idx).Type == value.Instant && v.Kind() == value.String {
					c, err := temporal.Parse(v.Str())
					if err != nil {
						return errf(sc.Pos, "cannot parse %q as a date", v.Str())
					}
					v = tdb.Instant(c)
				}
				newData[idx] = v
			}
			oldKey := ver.Data.Key(sch)
			switch {
			case !rel.Kind().SupportsHistorical():
				if err := h.Replace(oldKey, newData); err != nil {
					return err
				}
			case rel.Event():
				at := ver.Valid.From
				if n.Valid != nil {
					if n.Valid.At == nil {
						return errf(n.Valid.Pos, "event relations need 'valid at'")
					}
					if at, err = evalEvent(n.Valid.At, ev); err != nil {
						return err
					}
				}
				if err := h.RetractAt(oldKey, ver.Valid.From); err != nil {
					return err
				}
				if err := h.AssertAt(newData, at); err != nil {
					return err
				}
			default:
				iv, _, err := validRange(n.Valid, ev, ver.Valid)
				if err != nil {
					return err
				}
				if err := h.Assert(newData, iv.From, iv.To); err != nil {
					return err
				}
			}
			delete(ev.vars, n.Var)
			count++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Outcome{Stmt: "replace", Msg: fmt.Sprintf("%d tuple(s) replaced", count)}, nil
}
