package tquel

import (
	"strings"
	"testing"

	"tdb/temporal"
)

const day = 86400 // chronons (seconds) per day; dates are UTC midnights

// windowDB loads a small sensor history with day-aligned valid intervals:
//
//	s1 v=10 [01/01/80, 01/03/80)
//	s1 v=20 [01/03/80, 01/04/80)
//	s2 v=5  [01/02/80, 01/05/80)
func windowDB(t testing.TB) *Session {
	t.Helper()
	ses := NewSession(newDB(t))
	if _, err := ses.Exec(`
		create temporal relation obs (sensor = string, v = int) key (sensor, v)
		range of r is obs
		append to obs (sensor = "s1", v = 10) valid from "01/01/80" to "01/03/80"
		append to obs (sensor = "s1", v = 20) valid from "01/03/80" to "01/04/80"
		append to obs (sensor = "s2", v = 5)  valid from "01/02/80" to "01/05/80"
	`); err != nil {
		t.Fatal(err)
	}
	return ses
}

func TestWindowTumbling(t *testing.T) {
	ses := windowDB(t)
	res, err := ses.Query(`retrieve (r.sensor, c = count(r.v), s = sum(r.v)) window 86400`)
	if err != nil {
		t.Fatal(err)
	}
	// One row per populated (sensor, day) pair: s1 covers Jan 1-3, s2 Jan 2-4.
	if res.Len() != 6 {
		t.Fatalf("rows:\n%s", res)
	}
	type key struct {
		sensor string
		from   temporal.Chronon
	}
	got := map[key][2]int64{}
	for _, r := range res.Rows {
		if width := int64(r.Valid.To - r.Valid.From); width != day {
			t.Fatalf("window width %d: %v", width, r.Valid)
		}
		got[key{r.Data[0].Str(), r.Valid.From}] = [2]int64{r.Data[1].Int(), r.Data[2].Int()}
	}
	jan := func(d int) temporal.Chronon { return temporal.Date(1980, 1, d) }
	want := map[key][2]int64{
		{"s1", jan(1)}: {1, 10},
		{"s1", jan(2)}: {1, 10},
		{"s1", jan(3)}: {1, 20},
		{"s2", jan(2)}: {1, 5},
		{"s2", jan(3)}: {1, 5},
		{"s2", jan(4)}: {1, 5},
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("window %v @ %v = %v, want %v", k.sensor, k.from, got[k], w)
		}
	}
}

func TestWindowSliding(t *testing.T) {
	ses := windowDB(t)
	res, err := ses.Query(
		`retrieve (c = count(r.v), s = sum(r.v)) window 172800 slide 86400 where r.sensor = "s1"`)
	if err != nil {
		t.Fatal(err)
	}
	// Two-day windows sliding daily; [01/02, 01/04) catches both s1 rows.
	target := temporal.Date(1980, 1, 2)
	found := false
	for _, r := range res.Rows {
		if int64(r.Valid.To-r.Valid.From) != 2*day {
			t.Fatalf("window width: %v", r.Valid)
		}
		if r.Valid.From == target {
			found = true
			if r.Data[0].Int() != 2 || r.Data[1].Int() != 30 {
				t.Errorf("[01/02, 01/04) = %v, want count 2 sum 30", r.Data)
			}
		}
	}
	if !found {
		t.Fatalf("no window starting 01/02/80:\n%s", res)
	}
}

func TestWindowOpenEndpointsClampToExtent(t *testing.T) {
	ses := windowDB(t)
	// An open-ended fact contributes to every materialized window it
	// overlaps, but windows only exist over the finite endpoint extent.
	if _, err := ses.Exec(`append to obs (sensor = "s2", v = 7) valid from "01/01/80" to forever`); err != nil {
		t.Fatal(err)
	}
	res, err := ses.Query(`retrieve (c = count(r.v)) window 86400 where r.sensor = "s2"`)
	if err != nil {
		t.Fatal(err)
	}
	// Finite extent is [01/01/80, 01/05/80): four daily windows, the
	// open-ended row in all four, the [01/02, 01/05) row in three.
	if res.Len() != 4 {
		t.Fatalf("rows:\n%s", res)
	}
	counts := map[temporal.Chronon]int64{}
	for _, r := range res.Rows {
		counts[r.Valid.From] = r.Data[0].Int()
	}
	jan := func(d int) temporal.Chronon { return temporal.Date(1980, 1, d) }
	for d, want := range map[int]int64{1: 1, 2: 2, 3: 2, 4: 2} {
		if counts[jan(d)] != want {
			t.Errorf("day %d count = %d, want %d", d, counts[jan(d)], want)
		}
	}
}

func TestWindowNoFiniteEndpointErrors(t *testing.T) {
	ses := NewSession(newDB(t))
	if _, err := ses.Exec(`
		create temporal relation g (x = string) key (x)
		range of v is g
		append to g (x = "a") valid from beginning to forever
	`); err != nil {
		t.Fatal(err)
	}
	_, err := ses.Query(`retrieve (count(v.x)) window 86400`)
	if err == nil || !strings.Contains(err.Error(), "finite valid endpoint") {
		t.Fatalf("err = %v", err)
	}
}

func TestWindowRequiresAggregates(t *testing.T) {
	ses := windowDB(t)
	_, err := ses.Query(`retrieve (r.sensor) window 86400`)
	if err == nil || !strings.Contains(err.Error(), "aggregate targets") {
		t.Fatalf("err = %v", err)
	}
}

func TestCoalesceRetrieve(t *testing.T) {
	ses := NewSession(newDB(t))
	if _, err := ses.Exec(`
		create temporal relation rank (name = string, rank = string) key (name, rank)
		range of k is rank
		append to rank (name = "Tom", rank = "assoc") valid from "01/01/80" to "01/03/80"
		append to rank (name = "Tom", rank = "assoc") valid from "01/03/80" to "01/05/80"
		append to rank (name = "Tom", rank = "full")  valid from "01/05/80" to "01/07/80"
		append to rank (name = "Ann", rank = "assoc") valid from "01/02/80" to "01/04/80"
		append to rank (name = "Ann", rank = "assoc") valid from "01/06/80" to "01/08/80"
	`); err != nil {
		t.Fatal(err)
	}
	res, err := ses.Query(`retrieve (k.name, k.rank) coalesce`)
	if err != nil {
		t.Fatal(err)
	}
	// Tom's adjacent assoc intervals merge; Ann's disjoint ones do not.
	if res.Len() != 4 {
		t.Fatalf("rows:\n%s", res)
	}
	var tomAssoc *temporal.Interval
	for i, r := range res.Rows {
		if r.Data[0].Str() == "Tom" && r.Data[1].Str() == "assoc" {
			if tomAssoc != nil {
				t.Fatalf("Tom/assoc not coalesced:\n%s", res)
			}
			tomAssoc = &res.Rows[i].Valid
		}
	}
	want := temporal.Interval{From: temporal.Date(1980, 1, 1), To: temporal.Date(1980, 1, 5)}
	if tomAssoc == nil || *tomAssoc != want {
		t.Fatalf("Tom/assoc valid = %v, want %v", tomAssoc, want)
	}
}

func TestCoalesceWindowedAggregate(t *testing.T) {
	ses := windowDB(t)
	// s2 holds v=5 across three daily windows: identical per-window results
	// coalesce into one row spanning [01/02/80, 01/05/80).
	res, err := ses.Query(`retrieve (c = count(r.v)) window 86400 where r.sensor = "s2" coalesce`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows:\n%s", res)
	}
	want := temporal.Interval{From: temporal.Date(1980, 1, 2), To: temporal.Date(1980, 1, 5)}
	if res.Rows[0].Valid != want || res.Rows[0].Data[0].Int() != 1 {
		t.Fatalf("coalesced window row = %v %v", res.Rows[0].Valid, res.Rows[0].Data)
	}
}

func TestCoalesceRejectsWholeRelationAggregates(t *testing.T) {
	ses := windowDB(t)
	_, err := ses.Query(`retrieve (count(r.v)) coalesce`)
	if err == nil || !strings.Contains(err.Error(), "coalesce applies to") {
		t.Fatalf("err = %v", err)
	}
}

func TestWindowParseErrors(t *testing.T) {
	ses := windowDB(t)
	for _, src := range []string{
		`retrieve (count(r.v)) window 0`,
		`retrieve (count(r.v)) window 10 slide 0`,
		`retrieve (count(r.v)) window 10 window 10`,
		`retrieve (r.sensor) coalesce coalesce`,
		`retrieve (count(r.v)) window`,
	} {
		if _, err := ses.Query(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestWindowFormatRoundTrip(t *testing.T) {
	stmts, err := Parse(`retrieve (s = sum(e.v)) window 10 slide 5 coalesce`)
	if err != nil {
		t.Fatal(err)
	}
	got := formatRetrieve(stmts[0].(*RetrieveStmt))
	for _, frag := range []string{" window 10 slide 5", " coalesce"} {
		if !strings.Contains(got, frag) {
			t.Errorf("formatRetrieve = %q, missing %q", got, frag)
		}
	}
}

func TestWindowExplain(t *testing.T) {
	ses := windowDB(t)
	outs, err := ses.Exec(`explain retrieve (r.sensor, count(r.v)) window 86400 coalesce`)
	if err != nil {
		t.Fatal(err)
	}
	msg := outs[0].Msg
	if !strings.Contains(msg, "window: size 86400, slide 86400") {
		t.Errorf("explain missing window line:\n%s", msg)
	}
	if !strings.Contains(msg, "coalesce: merge value-equivalent valid intervals") {
		t.Errorf("explain missing coalesce line:\n%s", msg)
	}
}
