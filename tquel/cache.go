package tquel

import (
	"fmt"
	"strconv"
	"strings"

	"tdb"
	"tdb/internal/obs"
	"tdb/temporal"
)

// This file integrates the database's query result cache (internal/qcache)
// into retrieve execution, ahead of the planner. The taxonomy supplies the
// two safety arguments:
//
//   - Immutable mode: transaction time is append-only, so a retrieve whose
//     as-of window lies strictly in the past of the commit clock sees a
//     fixed set of versions: new commits carry chronons ≥ the current last
//     commit and so start after the window. One subtlety keeps this from
//     being the whole story — a version visible in the window may still be
//     transaction-open (trans end ∞), and a later commit closes it
//     retroactively, changing the rendered transaction-end column. An
//     answer is therefore immutable only when the window is settled AND no
//     returned row carries an open transaction interval; every closed
//     bound already precedes the last commit, so no future commit can move
//     it. Such results are cached without version stamps, survive
//     subsequent writes, and live until evicted.
//
//   - Versioned mode: every other cacheable retrieve (current-state, an
//     unsettled as-of window, or a settled window whose answer still shows
//     open transaction intervals) is keyed by the per-relation
//     write-version vector captured BEFORE execution. Versions are
//     monotonic, so once any participating relation changes, the old
//     vector — and with it the cached entry — becomes unreachable; the
//     entry ages out of the LRU instead of being served stale. Capturing
//     before execution (not after) closes the race with a concurrent
//     writer: an entry computed while a write lands is keyed under the
//     pre-write vector, which the write has already retired, so it can
//     only ever be wasted, never wrong.
//
// Not cacheable at all: retrieves with an "into" clause (they create a
// relation), retrieves whose temporal clauses mention "now" (the answer
// tracks the session clock), and retrieves that fail resolution here
// (executed uncached so the real error surfaces and errors are never
// cached). Scalar expressions cannot hide a clock reference — see
// mentionsNow — so the syntactic test is complete.
//
// SetParallelism is deliberately absent from the key: the parallel path
// merges chunks deterministically and is byte-identical to serial
// execution, so serial and parallel sessions may share entries. The
// planner ablation switch IS in the key, keeping the two pipelines'
// entries apart for differential testing.

// DisableCache bypasses the database's query result cache for this session
// — the ablation mirror of DisablePlanner. Off by default (the cache is
// used whenever the database has one); differential tests assert cached
// and uncached execution agree byte-for-byte.
func (s *Session) DisableCache(disabled bool) { s.noCache = disabled }

// cacheKeys holds the two candidate keys for one cacheable retrieve. ver
// is always usable; imm is non-empty only when the as-of window is
// settled, and is used to look up — and, when the executed answer proves
// transaction-closed, to store — the immutable entry.
type cacheKeys struct {
	imm string
	ver string
}

// cacheKeysFor decides cacheability and, when cacheable, renders the cache
// keys: mode | session settings | per-relation identity (plus, in the
// versioned key, write-version) vector | canonical query text.
func (s *Session) cacheKeysFor(n *RetrieveStmt) (cacheKeys, bool) {
	if n.Into != "" {
		return cacheKeys{}, false
	}
	if n.When != nil && mentionsNow(n.When) {
		return cacheKeys{}, false
	}
	if n.Valid != nil {
		for _, te := range []TemporalExpr{n.Valid.At, n.Valid.From, n.Valid.To} {
			if te != nil && mentionsNow(te) {
				return cacheKeys{}, false
			}
		}
	}
	if n.AsOf != nil {
		if mentionsNow(n.AsOf.At) {
			return cacheKeys{}, false
		}
		if n.AsOf.Through != nil && mentionsNow(n.AsOf.Through) {
			return cacheKeys{}, false
		}
	}
	order := retrieveVars(n)
	rels := make([]*tdb.Relation, len(order))
	for i, v := range order {
		rel, err := s.resolveVar(n.Pos, v)
		if err != nil {
			return cacheKeys{}, false
		}
		rels[i] = rel
	}
	// Settled iff the whole as-of window precedes the last issued commit
	// strictly: a new commit may still land AT the last chronon (UpdateAt),
	// so equality is not settled.
	settled := false
	if n.AsOf != nil {
		ev := &env{vars: map[string]*binding{}}
		hi, err := evalEvent(n.AsOf.At, ev)
		if err != nil {
			return cacheKeys{}, false
		}
		if n.AsOf.Through != nil {
			through, err := evalEvent(n.AsOf.Through, ev)
			if err != nil || through < hi {
				return cacheKeys{}, false
			}
			hi = through
		}
		settled = hi < s.db.Now()
	}
	var ib, vb strings.Builder
	ib.Grow(64)
	vb.Grow(64)
	ib.WriteString("imm|")
	vb.WriteString("cur|")
	if s.noPlanner {
		ib.WriteString("np|")
		vb.WriteString("np|")
	}
	for i, v := range order {
		ident := v + "=" + rels[i].Name() + "#" + strconv.FormatUint(rels[i].Gen(), 10)
		ib.WriteString(ident)
		ib.WriteByte('|')
		vb.WriteString(ident)
		vb.WriteByte('@')
		vb.WriteString(strconv.FormatUint(rels[i].WriteVersion(), 10))
		vb.WriteByte('|')
	}
	text := formatRetrieve(n)
	vb.WriteString(text)
	keys := cacheKeys{ver: vb.String()}
	if settled {
		ib.WriteString(text)
		keys.imm = ib.String()
	}
	return keys, true
}

// transClosed reports whether every row's transaction interval is already
// closed. An open end (∞) marks a still-current version; a later commit
// closes it retroactively, so only fully-closed answers may be cached in
// immutable mode.
func transClosed(res *Resultset) bool {
	for i := range res.Rows {
		if res.Rows[i].Trans.To == temporal.Forever {
			return false
		}
	}
	return true
}

// execRetrieveCached wraps execRetrieve with the cache lookup. Hits return
// a deep copy of the cached resultset; misses execute normally and store a
// deep copy, so no caller ever aliases cache-resident rows. Settled as-of
// queries are probed under the immutable key first, then the versioned
// one; the store side picks the immutable key only when the executed
// answer proves transaction-closed (see transClosed).
func (s *Session) execRetrieveCached(n *RetrieveStmt) (*Outcome, error) {
	qc := s.db.QueryCache()
	if s.noCache || qc == nil {
		return s.execRetrieve(n)
	}
	keys, ok := s.cacheKeysFor(n)
	if !ok {
		return s.execRetrieve(n)
	}
	var sp obs.Span
	if s.tracer != nil {
		sp = s.tracer.Start("cache")
	}
	var v any
	var hit bool
	if keys.imm != "" {
		v, hit = qc.Get(keys.imm)
	}
	if !hit {
		v, hit = qc.Get(keys.ver)
	}
	if hit {
		res := v.(*Resultset).Clone()
		if sp != nil {
			sp.Note("hit", 1)
			sp.Note("rows", int64(len(res.Rows)))
			sp.End()
		}
		return &Outcome{Stmt: "retrieve", Result: res,
			Msg: fmt.Sprintf("%d tuple(s)", len(res.Rows))}, nil
	}
	if sp != nil {
		sp.Note("hit", 0)
		sp.End()
	}
	out, err := s.execRetrieve(n)
	if err != nil {
		return nil, err
	}
	if out.Result != nil {
		key := keys.ver
		if keys.imm != "" && transClosed(out.Result) {
			key = keys.imm
		}
		stored := out.Result.Clone()
		qc.Put(key, stored, stored.approxBytes()+int64(len(key)))
	}
	return out, nil
}
