package tquel

import (
	"os"
	"path/filepath"
	"testing"

	"tdb"
	"tdb/temporal"
)

// twinSessions builds the same paper + emp fixture twice: once with the
// seal threshold forced low enough that the faculty history actually seals
// into columnar segments, once with segments disabled entirely (the flat
// ablation). Env knobs are read at relation creation, so ordering matters.
func twinSessions(t *testing.T) (segmented, flat *Session) {
	t.Helper()
	t.Setenv("TDB_DISABLE_SEGMENTS", "") // force segments on even in the ablation CI job
	t.Setenv("TDB_SEGMENT_ROWS", "2")
	segmented = paperSession(t)
	buildSeededFixture(t, segmented)
	if n := segmented.db.Stats().Segments; n == 0 {
		t.Fatal("segmented arm sealed nothing; threshold knob inert")
	}
	t.Setenv("TDB_DISABLE_SEGMENTS", "1")
	flat = paperSession(t)
	buildSeededFixture(t, flat)
	if n := flat.db.Stats().Segments; n != 0 {
		t.Fatalf("flat arm sealed %d segments despite TDB_DISABLE_SEGMENTS", n)
	}
	t.Setenv("TDB_DISABLE_SEGMENTS", "")
	return segmented, flat
}

// bothWays runs one query on both storage arms and requires byte-identical
// rendered results.
func bothWays(t *testing.T, segmented, flat *Session, src string) {
	t.Helper()
	a, err := segmented.Query(src)
	if err != nil {
		t.Fatalf("segmented: %v\n%s", err, src)
	}
	b, err := flat.Query(src)
	if err != nil {
		t.Fatalf("flat: %v\n%s", err, src)
	}
	if a.String() != b.String() {
		t.Errorf("segments changed the answer for:\n%s\n--- segmented ---\n%s\n--- flat ---\n%s",
			src, a, b)
	}
}

// The 60-query seeded corpus must render byte-identically over columnar
// segments and over the flat row log — and on the segmented arm every
// execution mode (planner on/off, parallel, cache cold/warm) must agree
// too, since zone-map pruning and filter pushdown only engage with the
// planner on.
func TestSegmentsDifferentialSeeded(t *testing.T) {
	forceParallel(t)
	segmented, flat := twinSessions(t)
	for _, src := range seededQuerySources() {
		bothWays(t, segmented, flat, src)
		differential(t, segmented, src)
	}
}

// The figure-shaped queries from the paper, with and without segments.
func TestSegmentsDifferentialFigures(t *testing.T) {
	forceParallel(t)
	segmented, flat := twinSessions(t)
	for _, src := range []string{
		`retrieve (f.rank) where f.name = "Merrie"`,
		`retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"`,
		`retrieve (f.name, f.rank)`,
		`retrieve (f.name) when f overlap "12/10/82"`,
		`retrieve (f2.rank)
			where f2.name = "Merrie" and f.name = "Tom"
			when f2 overlap start of f
			as of "12/20/82"`,
	} {
		bothWays(t, segmented, flat, src)
	}
}

// Checkpoint + crash recovery over a sealed relation: the reopened
// database reattaches columnar blocks from the v3 snapshot and must answer
// every arm of the differential identically — the segmented sibling of
// TestDifferentialAfterRecovery.
func TestSegmentsDifferentialAfterRecovery(t *testing.T) {
	forceParallel(t)
	t.Setenv("TDB_DISABLE_SEGMENTS", "")
	t.Setenv("TDB_SEGMENT_ROWS", "2")
	path := filepath.Join(t.TempDir(), "tdb.wal")
	clock := temporal.NewLogicalClock(0)
	db, err := tdb.Open(path, tdb.Options{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	testClocks[db] = clock
	paperSessionOn(t, db)
	delete(testClocks, db)
	if db.Stats().Segments == 0 {
		t.Fatal("fixture sealed nothing")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the (now empty) log tail the way a crash mid-append would.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x40, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x7f}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := tdb.Open(path, tdb.Options{Clock: temporal.NewLogicalClock(temporal.Date(1985, 3, 1))})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db2.Close() })
	if !db2.Stats().Recovery.TornTail {
		t.Fatalf("recovery did not report the torn tail: %+v", db2.Stats().Recovery)
	}
	if db2.Stats().Segments == 0 {
		t.Fatal("recovery flattened the segments")
	}

	ses := NewSession(db2)
	if _, err := ses.Exec(`
		range of f is faculty
		range of f1 is faculty
		range of f2 is faculty
	`); err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{
		`retrieve (f.rank) where f.name = "Merrie"`,
		`retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"`,
		`retrieve (f1.rank)
			where f1.name = "Merrie" and f2.name = "Tom"
			when f1 overlap start of f2`,
		`retrieve (f1.rank)
			where f1.name = "Merrie" and f2.name = "Tom"
			when f1 overlap start of f2
			as of "12/10/82"`,
		`retrieve (f1.rank)
			where f1.name = "Merrie" and f2.name = "Tom"
			when f1 overlap start of f2
			as of "12/20/82"`,
	} {
		differential(t, ses, src)
	}
}
