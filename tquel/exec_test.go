package tquel

import (
	"strings"
	"testing"

	"tdb"
	"tdb/temporal"
)

// testClocks tracks the logical clock behind each test database so dated
// DML can be replayed at the paper's commit instants.
var testClocks = map[*tdb.DB]*temporal.LogicalClock{}

func newDB(t testing.TB) *tdb.DB {
	t.Helper()
	clock := temporal.NewLogicalClock(temporal.Date(1985, 3, 1))
	db, err := tdb.Open("", tdb.Options{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	testClocks[db] = clock
	t.Cleanup(func() {
		delete(testClocks, db)
		db.Close()
	})
	return db
}

func newPastDB(t testing.TB) *tdb.DB {
	t.Helper()
	clock := temporal.NewLogicalClock(0)
	db, err := tdb.Open("", tdb.Options{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	testClocks[db] = clock
	t.Cleanup(func() {
		delete(testClocks, db)
		db.Close()
	})
	return db
}

// paperSession loads the paper's faculty history (Figure 8) through TQuel
// DML executed at the paper's dated commit instants.
func paperSession(t testing.TB) *Session {
	t.Helper()
	return paperSessionOn(t, newPastDB(t))
}

// paperSessionOn loads the same history into a caller-opened database
// (cache tests open theirs with an explicit byte budget so they stay
// deterministic under the TDB_CACHE_BYTES=0 CI job).
func paperSessionOn(t testing.TB, db *tdb.DB) *Session {
	t.Helper()
	ses := NewSession(db)
	if _, err := ses.Exec(`
		create temporal relation faculty (name = string, rank = string) key (name)
		range of f is faculty
	`); err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		at  string
		src string
	}{
		{"08/25/77", `append to faculty (name = "Merrie", rank = "associate") valid from "09/01/77" to forever`},
		{"12/01/82", `append to faculty (name = "Tom", rank = "full") valid from "12/05/82" to forever`},
		{"12/07/82", `replace f (rank = "associate") where f.name = "Tom" valid from "12/05/82" to forever`},
		{"12/15/82", `replace f (rank = "full") where f.name = "Merrie" valid from "12/01/82" to forever`},
		{"01/10/83", `append to faculty (name = "Mike", rank = "assistant") valid from "01/01/83" to forever`},
		{"02/25/84", `delete f where f.name = "Mike" valid from "03/01/84" to forever`},
	}
	for _, s := range steps {
		execAt(t, ses, temporal.MustParse(s.at), s.src)
	}
	return ses
}

// execAt runs one DML statement with the database's logical clock advanced
// to the given instant, replaying the paper's dated transactions.
func execAt(t testing.TB, ses *Session, at temporal.Chronon, src string) {
	t.Helper()
	clock, ok := testClocks[ses.db]
	if !ok {
		t.Fatal("session database has no settable clock")
	}
	clock.Set(at)
	if _, err := ses.Exec(src); err != nil {
		t.Fatalf("exec at %v: %v\n%s", at, err, src)
	}
}

func TestStaticQueryFigure2(t *testing.T) {
	db := newDB(t)
	ses := NewSession(db)
	outs, err := ses.Exec(`
		create static relation faculty (name = string, rank = string) key (name)
		range of f is faculty
		append to faculty (name = "Merrie", rank = "full")
		append to faculty (name = "Tom", rank = "associate")
		retrieve (f.rank) where f.name = "Merrie"
	`)
	if err != nil {
		t.Fatal(err)
	}
	res := outs[len(outs)-1].Result
	if res.Len() != 1 || res.Rows[0].Data[0].Str() != "full" {
		t.Fatalf("Figure 2 query:\n%s", res)
	}
	if res.HasValid || res.HasTrans {
		t.Error("static result must carry no implicit time")
	}
	if res.Attrs[0] != "rank" {
		t.Errorf("attrs = %v", res.Attrs)
	}
}

// Figure 4's rollback query: Merrie's rank as of 12/10/82 is associate.
func TestRollbackQueryFigure4(t *testing.T) {
	ses := paperSession(t)
	res, err := ses.Query(`retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0].Data[0].Str() != "associate" {
		t.Fatalf("as of 12/10/82:\n%s", res)
	}
}

// Figure 6's historical query: Merrie's rank when Tom arrived is full, with
// valid period [12/01/82, ∞).
func TestHistoricalQueryFigure6(t *testing.T) {
	ses := paperSession(t)
	res, err := ses.Query(`
		range of f1 is faculty
		range of f2 is faculty
		retrieve (f1.rank)
		where f1.name = "Merrie" and f2.name = "Tom"
		when f1 overlap start of f2
	`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("result:\n%s", res)
	}
	row := res.Rows[0]
	if row.Data[0].Str() != "full" {
		t.Errorf("rank = %v", row.Data[0])
	}
	if row.Valid != temporal.Since(temporal.MustParse("12/01/82")) {
		t.Errorf("valid = %v", row.Valid)
	}
	if !res.HasValid {
		t.Error("historical result must carry valid time")
	}
}

// §4.4's temporal query: as of 12/10/82 the answer is associate with the
// stamps of Figure 8's first row; as of 12/20/82 it is full.
func TestTemporalQuerySection44(t *testing.T) {
	ses := paperSession(t)
	const q = `
		range of f1 is faculty
		range of f2 is faculty
		retrieve (f1.rank)
		where f1.name = "Merrie" and f2.name = "Tom"
		when f1 overlap start of f2
		as of %q
	`
	res, err := ses.Query(strings.ReplaceAll(q, "%q", `"12/10/82"`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("as of 12/10/82:\n%s", res)
	}
	row := res.Rows[0]
	if row.Data[0].Str() != "associate" {
		t.Errorf("rank = %v", row.Data[0])
	}
	if row.Valid != temporal.Since(temporal.MustParse("09/01/77")) {
		t.Errorf("valid = %v", row.Valid)
	}
	want := temporal.Interval{From: temporal.MustParse("08/25/77"), To: temporal.MustParse("12/15/82")}
	if row.Trans != want {
		t.Errorf("trans = %v, want %v", row.Trans, want)
	}
	if !res.HasTrans || !res.HasValid {
		t.Error("temporal result must carry both times")
	}

	res, err = ses.Query(strings.ReplaceAll(q, "%q", `"12/20/82"`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0].Data[0].Str() != "full" {
		t.Fatalf("as of 12/20/82:\n%s", res)
	}
}

func TestRetrieveInto(t *testing.T) {
	ses := paperSession(t)
	if _, err := ses.Exec(`
		range of g is faculty
		retrieve into current (g.name, g.rank)
	`); err != nil {
		t.Fatal(err)
	}
	res, err := ses.Query(`
		range of c is current
		retrieve (c.name) where c.rank = "associate"
	`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 { // Merrie's early period and Tom
		t.Fatalf("into-query:\n%s", res)
	}
	// Duplicate into-name fails.
	if _, err := ses.Exec(`retrieve into current (g.name)`); err == nil {
		t.Error("duplicate into relation must fail")
	}
}

func TestDeleteAndReplaceOnStatic(t *testing.T) {
	db := newDB(t)
	ses := NewSession(db)
	if _, err := ses.Exec(`
		create static relation r (name = string, rank = string) key (name)
		range of x is r
		append to r (name = "A", rank = "one")
		append to r (name = "B", rank = "two")
		replace x (rank = "uno") where x.name = "A"
		delete x where x.name = "B"
	`); err != nil {
		t.Fatal(err)
	}
	res, err := ses.Query(`retrieve (x.name, x.rank)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0].Data[1].Str() != "uno" {
		t.Fatalf("result:\n%s", res)
	}
	// Deleting with no match deletes nothing.
	outs, err := ses.Exec(`delete x where x.name = "Ghost"`)
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Msg != "0 tuple(s) deleted" {
		t.Errorf("msg = %q", outs[0].Msg)
	}
}

func TestEventRelationFigure9(t *testing.T) {
	db := newPastDB(t)
	ses := NewSession(db)
	if _, err := ses.Exec(`
		create temporal event relation promotion (name = string, rank = string, effective = date) key (name)
		range of p is promotion
	`); err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		at, src string
	}{
		{"08/25/77", `append to promotion (name = "Merrie", rank = "associate", effective = "09/01/77") valid at "08/25/77"`},
		{"12/01/82", `append to promotion (name = "Tom", rank = "full", effective = "12/05/82") valid at "12/05/82"`},
		{"12/07/82", `replace p (rank = "associate") where p.name = "Tom" valid at "12/07/82"`},
		{"12/15/82", `append to promotion (name = "Merrie", rank = "full", effective = "12/01/82") valid at "12/11/82"`},
	}
	for _, s := range steps {
		execAt(t, ses, temporal.MustParse(s.at), s.src)
	}
	res, err := ses.Query(`retrieve (p.rank, p.effective) where p.name = "Merrie"`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Event {
		t.Error("event relation result must be an event resultset")
	}
	if res.Len() != 2 {
		t.Fatalf("result:\n%s", res)
	}
	// Figure 9's point: the user-defined effective date (12/01/82) differs
	// from the valid instant (12/11/82) and the transaction time (12/15/82).
	found := false
	for _, row := range res.Rows {
		if row.Data[0].Str() == "full" {
			found = true
			if row.Data[1].Instant() != temporal.MustParse("12/01/82") {
				t.Errorf("effective = %v", row.Data[1])
			}
			if row.Valid != temporal.At(temporal.MustParse("12/11/82")) {
				t.Errorf("valid = %v", row.Valid)
			}
			if row.Trans.From != temporal.MustParse("12/15/82") {
				t.Errorf("trans = %v", row.Trans)
			}
		}
	}
	if !found {
		t.Fatalf("promotion row missing:\n%s", res)
	}
	// Rollback before the correction sees Tom as full.
	res, err = ses.Query(`retrieve (p.rank) where p.name = "Tom" as of "12/05/82"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0].Data[0].Str() != "full" {
		t.Fatalf("Tom as of 12/05/82:\n%s", res)
	}
}

func TestTaxonomyViolationsThroughTQuel(t *testing.T) {
	db := newDB(t)
	ses := NewSession(db)
	if _, err := ses.Exec(`
		create static relation s (x = string)
		create historical relation h (x = string)
		create rollback relation rb (x = string)
		range of sv is s
		range of hv is h
		range of rv is rb
	`); err != nil {
		t.Fatal(err)
	}
	// Rollback on non-rollback kinds.
	if _, err := ses.Query(`retrieve (sv.x) as of "12/10/82"`); err == nil {
		t.Error("as of on static must fail")
	}
	if _, err := ses.Query(`retrieve (hv.x) as of "12/10/82"`); err == nil {
		t.Error("as of on historical must fail")
	}
	if _, err := ses.Query(`retrieve (rv.x) as of "12/10/82"`); err != nil {
		t.Errorf("as of on rollback: %v", err)
	}
	// Valid clause on static kinds.
	if _, err := ses.Exec(`append to s (x = "a") valid from "01/01/80" to forever`); err == nil {
		t.Error("valid clause on static append must fail")
	}
	if _, err := ses.Exec(`append to rb (x = "a") valid from "01/01/80" to forever`); err == nil {
		t.Error("valid clause on rollback append must fail")
	}
}

func TestExecErrors(t *testing.T) {
	db := newDB(t)
	ses := NewSession(db)
	if _, err := ses.Exec(`range of f is nowhere`); err == nil {
		t.Error("range over unknown relation must fail")
	}
	if _, err := ses.Exec(`retrieve (f.rank)`); err == nil {
		t.Error("undeclared variable must fail")
	}
	if _, err := ses.Exec(`create static relation r (x = string)`); err != nil {
		t.Fatal(err)
	}
	if _, err := ses.Exec(`range of r1 is r`); err != nil {
		t.Fatal(err)
	}
	if _, err := ses.Query(`retrieve (r1.nope)`); err == nil {
		t.Error("unknown attribute must fail")
	}
	if _, err := ses.Exec(`append to r (nope = "x")`); err == nil {
		t.Error("append to unknown attribute must fail")
	}
	if _, err := ses.Exec(`append to r (x = "a", x = "b")`); err == nil {
		t.Error("double set must fail")
	}
	if _, err := ses.Exec(`create static relation r2 (x = string, y = string)`); err != nil {
		t.Fatal(err)
	}
	if _, err := ses.Exec(`append to r2 (x = "a")`); err == nil {
		t.Error("missing attribute must fail")
	}
	if _, err := ses.Exec(`destroy nowhere`); err == nil {
		t.Error("destroy unknown must fail")
	}
	if _, err := ses.Query(`range of q is r
		retrieve (q.x) where q.x = 42`); err == nil {
		t.Error("type mismatch in where must fail")
	}
	if _, err := ses.Query(`retrieve (q.x) when q`); err == nil {
		t.Error("bare element as when predicate must fail")
	}
}

func TestWhereComparisonsAndCoercions(t *testing.T) {
	db := newDB(t)
	ses := NewSession(db)
	if _, err := ses.Exec(`
		create static relation emp (name = string, salary = int, score = float, hired = date) key (name)
		range of e is emp
		append to emp (name = "a", salary = 100, score = 1.5, hired = "01/01/80")
		append to emp (name = "b", salary = 200, score = 2.5, hired = "01/01/82")
	`); err != nil {
		t.Fatal(err)
	}
	cases := map[string]int{
		`retrieve (e.name) where e.salary > 150`:                    1,
		`retrieve (e.name) where e.salary >= 100`:                   2,
		`retrieve (e.name) where e.salary < 200 and e.score >= 1.5`: 1,
		`retrieve (e.name) where e.hired < "01/01/81"`:              1,
		`retrieve (e.name) where e.hired = "01/01/82"`:              1,
		`retrieve (e.name) where e.name != "a"`:                     1,
		`retrieve (e.name) where e.salary > 1.5`:                    2, // int/float widening
		`retrieve (e.name) where not e.name = "a"`:                  1,
		`retrieve (e.name) where e.name = "a" or e.name = "b"`:      2,
	}
	for q, want := range cases {
		res, err := ses.Query(q)
		if err != nil {
			t.Errorf("%s: %v", q, err)
			continue
		}
		if res.Len() != want {
			t.Errorf("%s = %d rows, want %d\n%s", q, res.Len(), want, res)
		}
	}
}

func TestWhenOperators(t *testing.T) {
	db := newDB(t)
	ses := NewSession(db)
	if _, err := ses.Exec(`
		create historical relation h (name = string) key (name)
		range of a is h
		range of b is h
	`); err != nil {
		t.Fatal(err)
	}
	rel, err := db.Relation("h")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, from, to string) {
		t.Helper()
		if err := rel.Assert(tdb.NewTuple(tdb.String(name)),
			temporal.MustParse(from), temporal.MustParse(to)); err != nil {
			t.Fatal(err)
		}
	}
	mk("early", "01/01/80", "01/01/82")
	mk("late", "01/01/83", "01/01/85")
	mk("wide", "01/01/79", "01/01/86")

	cases := map[string][]string{
		`retrieve (a.name) where a.name != "x" when a overlap "06/01/80"`: {"early", "wide"},
		`retrieve (a.name) when a precede "01/01/83"`:                     {"early"},
		`retrieve (a.name) when "01/01/82" precede a`:                     {"late"},
		// TQuel's default derived valid period is the intersection of the
		// participants'; disjoint operands need an explicit valid clause.
		`retrieve (a.name, b.name) where a.name = "early" when a precede b
		 valid from start of a to start of b`: {"early|late"},
		`retrieve (a.name) when a equal ("01/01/79" extend end of a)`:              {"wide"},
		`retrieve (a.name) when start of a precede "06/01/79" and a overlap "now"`: nil,
		`retrieve (a.name) when not a overlap "06/01/80"`:                          {"late"},
	}
	for q, want := range cases {
		res, err := ses.Query(q)
		if err != nil {
			t.Errorf("%s: %v", q, err)
			continue
		}
		var got []string
		for _, row := range res.Rows {
			parts := make([]string, len(row.Data))
			for i, v := range row.Data {
				parts[i] = v.String()
			}
			got = append(got, strings.Join(parts, "|"))
		}
		if len(got) != len(want) {
			t.Errorf("%s = %v, want %v", q, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s = %v, want %v", q, got, want)
			}
		}
	}
}

func TestValidClauseDerivations(t *testing.T) {
	ses := paperSession(t)
	// Override the derived valid period.
	res, err := ses.Query(`
		range of v is faculty
		retrieve (v.name) where v.name = "Mike" valid from "01/01/83" to "03/01/84"
	`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("result:\n%s", res)
	}
	want := temporal.Interval{From: temporal.MustParse("01/01/83"), To: temporal.MustParse("03/01/84")}
	if res.Rows[0].Valid != want {
		t.Errorf("valid = %v", res.Rows[0].Valid)
	}
	// valid at makes an event resultset.
	res, err = ses.Query(`retrieve (v.name) where v.name = "Mike" valid at start of v`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Event || res.Len() != 1 {
		t.Fatalf("event result:\n%s", res)
	}
	if res.Rows[0].Valid != temporal.At(temporal.MustParse("01/01/83")) {
		t.Errorf("valid at = %v", res.Rows[0].Valid)
	}
}

func TestSessionNowSpelling(t *testing.T) {
	ses := paperSession(t)
	ses.SetNow(func() temporal.Chronon { return temporal.MustParse("06/01/83") })
	res, err := ses.Query(`
		range of n is faculty
		retrieve (n.name) when n overlap "now"
	`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 { // Merrie, Tom, Mike mid-1983
		t.Fatalf("now-query:\n%s", res)
	}
}

func TestOutcomeMessages(t *testing.T) {
	db := newDB(t)
	ses := NewSession(db)
	outs, err := ses.Exec(`
		create temporal relation r (x = string) key (x)
		range of v is r
		append to r (x = "a")
	`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(outs[0].String(), "created temporal relation r") {
		t.Errorf("create msg = %q", outs[0])
	}
	if !strings.Contains(outs[1].String(), "range of v is r") {
		t.Errorf("range msg = %q", outs[1])
	}
	if !strings.Contains(outs[2].String(), "appended") {
		t.Errorf("append msg = %q", outs[2])
	}
	outs, err = ses.Exec(`retrieve (v.x)`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(outs[0].String(), "| x") {
		t.Errorf("retrieve output = %q", outs[0])
	}
	if _, err := ses.Query(`append to r (x = "b")`); err == nil {
		t.Error("Query without retrieve must fail")
	}
}
