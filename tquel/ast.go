package tquel

import (
	"tdb"
	"tdb/temporal"
)

// Stmt is a parsed TQuel statement.
type Stmt interface {
	stmtNode()
}

// CreateStmt is "create <kind> [event] relation NAME (attr = type, ...)
// [key (attr, ...)]". Plain "create NAME (...)" defaults to a static
// relation, matching Quel.
type CreateStmt struct {
	Pos   Pos
	Name  string
	Kind  tdb.Kind
	Event bool
	Attrs []AttrDef
	Keys  []string
}

// AttrDef is one "name = type" attribute definition.
type AttrDef struct {
	Pos  Pos
	Name string
	Type tdb.ValueKind
}

// DestroyStmt is "destroy NAME".
type DestroyStmt struct {
	Pos  Pos
	Name string
}

// RangeStmt is "range of VAR is NAME".
type RangeStmt struct {
	Pos Pos
	Var string
	Rel string
}

// RetrieveStmt is the TQuel retrieve statement.
type RetrieveStmt struct {
	Pos         Pos
	Into        string // optional "into NAME"
	Targets     []Target
	Valid       *ValidClause
	Where       Expr
	When        TemporalExpr
	AsOf        *AsOfClause
	Window      *WindowClause // per-interval aggregation over valid time
	Coalesce    bool          // merge value-equivalent rows with adjacent/overlapping valid intervals
	CoalescePos Pos
}

// WindowClause is "window N [slide M]": evaluate the statement's aggregates
// once per valid-time window of N chronons, tumbling by default or sliding
// every M chronons. Sizes are literal chronon (second) counts.
type WindowClause struct {
	Pos   Pos
	Size  int64
	Slide int64 // 0 means tumbling: slide == size
}

// Step returns the window's effective slide: Slide, or Size for tumbling
// windows.
func (w *WindowClause) Step() int64 {
	if w.Slide > 0 {
		return w.Slide
	}
	return w.Size
}

// Target is one element of the target list: an optional result attribute
// name and its expression.
type Target struct {
	Pos  Pos
	Name string // "" derives the name from the expression
	Expr Expr
}

// ValidClause is "valid from E1 to E2" (interval) or "valid at E" (event).
type ValidClause struct {
	Pos  Pos
	At   TemporalExpr // event form; nil if interval form
	From TemporalExpr
	To   TemporalExpr
}

// AsOfClause is "as of E [through E2]".
type AsOfClause struct {
	Pos     Pos
	At      TemporalExpr
	Through TemporalExpr // optional
}

// AppendStmt is "append to NAME (attr = expr, ...) [valid ...]".
type AppendStmt struct {
	Pos   Pos
	Rel   string
	Sets  []SetClause
	Valid *ValidClause
}

// SetClause is one "attr = expr" assignment.
type SetClause struct {
	Pos  Pos
	Attr string
	Expr Expr
}

// DeleteStmt is "delete VAR [where PRED] [when TPRED] [valid ...]".
type DeleteStmt struct {
	Pos   Pos
	Var   string
	Where Expr
	When  TemporalExpr
	Valid *ValidClause
}

// ReplaceStmt is "replace VAR (attr = expr, ...) [valid ...] [where PRED]
// [when TPRED]".
type ReplaceStmt struct {
	Pos   Pos
	Var   string
	Sets  []SetClause
	Valid *ValidClause
	Where Expr
	When  TemporalExpr
}

// ExplainStmt is "explain RETRIEVE": compile the wrapped retrieve exactly
// as execution would, render the chosen plan with its cost estimates, and
// execute nothing.
type ExplainStmt struct {
	Pos      Pos
	Retrieve *RetrieveStmt
}

func (*CreateStmt) stmtNode()   {}
func (*ExplainStmt) stmtNode()  {}
func (*DestroyStmt) stmtNode()  {}
func (*RangeStmt) stmtNode()    {}
func (*RetrieveStmt) stmtNode() {}
func (*AppendStmt) stmtNode()   {}
func (*DeleteStmt) stmtNode()   {}
func (*ReplaceStmt) stmtNode()  {}

// Expr is a scalar (attribute-level) expression.
type Expr interface {
	exprNode()
	Position() Pos
}

// AttrRef is "VAR.attr".
type AttrRef struct {
	Pos  Pos
	Var  string
	Attr string

	// idx caches the attribute's schema offset plus one, resolved during
	// analysis so evaluation indexes the tuple directly instead of doing a
	// per-row name lookup. Zero means unresolved (paths that skip analysis,
	// like append/delete/replace set clauses, fall back to the lookup).
	idx int
}

// Lit is a literal value (string, int, float, or the booleans/date
// spellings resolved during analysis).
type Lit struct {
	Pos   Pos
	Value tdb.Value
	Text  string // original spelling, used for date coercion
}

// Cmp is "a OP b" with OP in = != < <= > >=.
type Cmp struct {
	Pos  Pos
	Op   string
	L, R Expr
}

// Agg is an aggregate call in a target list: count, sum, avg, min, max or
// any, applied to an expression. When a retrieve's target list contains
// aggregates, its plain targets become grouping keys (Quel's "by"
// semantics, folded into the target list).
type Agg struct {
	Pos Pos
	Fn  string
	Arg Expr
}

// BoolOp is "a and b", "a or b", "not a" (R nil for not).
type BoolOp struct {
	Pos  Pos
	Op   string // "and", "or", "not"
	L, R Expr
}

func (e *AttrRef) exprNode() {}
func (e *Lit) exprNode()     {}
func (e *Cmp) exprNode()     {}
func (e *BoolOp) exprNode()  {}
func (e *Agg) exprNode()     {}

// Position returns the expression's source position.
func (e *Agg) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *AttrRef) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *Lit) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *Cmp) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *BoolOp) Position() Pos { return e.Pos }

// TemporalExpr is an expression over events and intervals — the language of
// the when and valid clauses.
type TemporalExpr interface {
	temporalNode()
	Position() Pos
}

// VarInterval denotes a range variable's valid period ("f1" in "f1 overlap
// start of f2").
type VarInterval struct {
	Pos Pos
	Var string
}

// TimeLit is a date/instant literal ("12/10/82", "forever", "now").
type TimeLit struct {
	Pos  Pos
	Text string
}

// StartOf is "start of E"; EndOf is "end of E": the endpoints of an
// interval expression, as events.
type StartOf struct {
	Pos Pos
	Of  TemporalExpr
}

// EndOf is "end of E".
type EndOf struct {
	Pos Pos
	Of  TemporalExpr
}

// Extend is "E1 extend E2": the smallest interval covering both operands.
type Extend struct {
	Pos  Pos
	L, R TemporalExpr
}

// TempRel is a temporal predicate: "E1 overlap E2", "E1 precede E2",
// "E1 equal E2".
type TempRel struct {
	Pos  Pos
	Op   string // "overlap", "precede", "equal"
	L, R TemporalExpr
}

// TempBool combines temporal predicates: and/or/not (R nil for not).
type TempBool struct {
	Pos  Pos
	Op   string
	L, R TemporalExpr
}

func (*VarInterval) temporalNode() {}
func (*TimeLit) temporalNode()     {}
func (*StartOf) temporalNode()     {}
func (*EndOf) temporalNode()       {}
func (*Extend) temporalNode()      {}
func (*TempRel) temporalNode()     {}
func (*TempBool) temporalNode()    {}

// Position returns the expression's source position.
func (e *VarInterval) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *TimeLit) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *StartOf) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *EndOf) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *Extend) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *TempRel) Position() Pos { return e.Pos }

// Position returns the expression's source position.
func (e *TempBool) Position() Pos { return e.Pos }

// element is the runtime value of a temporal expression: an interval or an
// event (an interval of width one).
type element struct {
	iv      temporal.Interval
	isEvent bool
}
