package tquel

import (
	"math"
	"sort"

	"tdb"
	"tdb/internal/index"
	"tdb/internal/segment"
	"tdb/internal/value"
	"tdb/temporal"
)

// The query planner. A retrieve over k range variables is naively a
// nested-loop cross product with every predicate deferred to the innermost
// depth — O(∏|Rᵢ|) bindings even when the where clause is a selective
// equi-join. buildPlan compiles the statement into a queryPlan instead:
//
//  1. conjunct classification: the where AND-tree is split into
//     variable-free conjuncts (settled once, before binding anything),
//     single-variable conjuncts (applied to that variable's candidate list
//     before the join loop starts), and residual multi-variable conjuncts
//     (parked at the shallowest binding depth where every variable they
//     mention is bound). The when AND-tree is split the same way.
//  2. when pushdown: a single-variable "v overlap E" conjunct whose other
//     side is variable-free is answered through the store's interval-indexed
//     When path (Relation.VersionsWhen) instead of scan-then-filter.
//  3. join ordering: with statistics (the default, "cost-based planning
//     v2") a greedy left-deep order minimizes estimated intermediate
//     cardinality — each step binds the variable with the smallest
//     estimated post-join output, |v| discounted by 1/max(ndv) per equi
//     edge into the bound prefix, so cross products price themselves out.
//     Without statistics (Session.DisableStats, TDB_DISABLE_STATS) the v1
//     heuristic stands: ascending filtered cardinality.
//  4. hash equi-joins: a residual "v1.a = v2.b" conjunct turns the inner
//     variable's scan into a hash probe — the build side (the side left
//     inner by the ordering) is hashed once on its join attribute, and each
//     outer binding probes instead of scanning. When several equi edges
//     reach the same inner variable, statistics pick the build attribute
//     with the largest NDV (fewest expected matches per probe); stats-off
//     keeps the v1 first-edge-wins rule. The conjunct itself stays
//     residual, so hash collisions and numeric coercions are re-verified
//     and the result is provably the one the nested loop computes.
//
// The statistics feeding step 3 (and the interval-index probe decision and
// the parallel dispatch cutoff) come from internal/stats via the Relation
// estimate accessors; every estimate is deterministic, so plans are too.
// Session.DisablePlanner (and the TDB_DISABLE_PLANNER env var) restore the
// naive path; TestPlannerDifferential asserts both agree.

// queryPlan is a compiled retrieve statement, valid for one execution.
// After buildPlan returns, the plan is immutable: executors (the serial
// loop or the parallel workers, see parallel.go) only read it, keeping
// their mutable binding cells and tallies in a per-goroutine planExec.
type queryPlan struct {
	vars []planVar

	// emptyResult is set when a variable-free conjunct evaluated to false:
	// no binding can ever qualify, so execution skips the join loop.
	emptyResult bool

	// Observability tallies, accumulated with plain += on the planning
	// goroutine and settled into the atomic counters exactly once, post
	// merge, by the executor (see execRetrieve's settle).
	pushed      int64 // single-variable conjuncts applied during prefiltering
	whenIndexed int64 // when conjuncts answered through an interval index
	buildRows   int64 // rows hashed into equi-join build tables
	fallbacks   int64 // inner variables joined by nested loop, not hash probe
	prefiltered int64 // bindings examined while prefiltering candidate lists

	// Cost-model annotations (statistics path; zero when stats are off).
	statsUsed    bool    // join order and dispatch used statistics estimates
	estWork      float64 // estimated bindings the join loop will examine
	estRows      float64 // estimated result cardinality before dedup
	parallelCut  float64 // estWork threshold for the parallel dispatch
	overlapSkips int64   // interval-index probes skipped on selectivity advice

	// Windowed-aggregation and coalescing annotations (see window.go).
	windowSize int64   // window clause size; 0 when unwindowed
	windowStep int64   // effective slide (size for tumbling windows)
	coalesced  bool    // statement carries a coalesce clause
	estWindows float64 // estimated windows the aggregation materializes
}

// planVar is one range variable's slot in the compiled plan, in binding
// order.
type planVar struct {
	name string
	orig int // index into the statement's original variable order
	rel  *tdb.Relation

	// versions is the candidate list after single-variable pushdown.
	versions []tdb.Version

	// join, when non-nil, replaces the scan over versions with a probe of
	// table keyed by the bound value of the probe variable's binding cell.
	join *hashJoin

	// Residual conjuncts settled once this variable is bound.
	where []Expr
	when  []TemporalExpr

	// Explain annotations.
	estOut       float64 // estimated cumulative bindings after this depth
	whenIndexed  bool    // candidates came through the interval index
	probeSkipped bool    // statistics advised against the interval-index probe
}

// equiEdge is one "v1.a = v2.b" conjunct, pre-resolved: the ordering cost
// model consumes every edge (an equi filter prunes whether or not it can
// hash), the probe wiring only the hashable ones.
type equiEdge struct {
	l, r       *AttrRef
	lIdx, rIdx int
	hashable   bool
	numeric    bool
}

// hashJoin is one compiled equi-join edge: the inner (build) side's
// versions hashed on the build attribute, probed with the outer side's
// bound value. probeDepth identifies the outer variable by binding depth
// rather than by a shared cell pointer, so concurrent executors can each
// resolve it against their own binding cells.
type hashJoin struct {
	table      *index.Hash
	buildIdx   int  // join attribute offset in the build (inner) schema
	probeDepth int  // binding depth of the already-bound outer variable
	probeIdx   int  // join attribute offset in the probe (outer) schema
	numeric    bool // normalize int/float keys before hashing
}

// splitAnd flattens the top-level AND tree of a scalar predicate into its
// conjuncts. Or/not subtrees are kept whole: they are single conjuncts.
func splitAnd(e Expr, out []Expr) []Expr {
	if b, ok := e.(*BoolOp); ok && b.Op == "and" {
		return splitAnd(b.R, splitAnd(b.L, out))
	}
	return append(out, e)
}

// splitTempAnd flattens the top-level AND tree of a temporal predicate.
func splitTempAnd(e TemporalExpr, out []TemporalExpr) []TemporalExpr {
	if b, ok := e.(*TempBool); ok && b.Op == "and" {
		return splitTempAnd(b.R, splitTempAnd(b.L, out))
	}
	return append(out, e)
}

// exprVarList returns the distinct range variables of a scalar conjunct.
func exprVarList(e Expr) []string {
	m := map[string]bool{}
	exprVars(e, m)
	return sortedVars(m)
}

// temporalVarList returns the distinct range variables of a temporal
// conjunct.
func temporalVarList(e TemporalExpr) []string {
	m := map[string]bool{}
	temporalVars(e, m)
	return sortedVars(m)
}

func sortedVars(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// overlapPushdown recognizes "v overlap E" (either operand order) where E
// references no range variables, returning E's interval. Such a conjunct is
// answerable through a store's valid-time interval index.
func overlapPushdown(te TemporalExpr, v string, ev *env) (temporal.Interval, bool, error) {
	rel, ok := te.(*TempRel)
	if !ok || rel.Op != "overlap" {
		return temporal.Interval{}, false, nil
	}
	constSide := func(side, other TemporalExpr) (temporal.Interval, bool, error) {
		vi, ok := side.(*VarInterval)
		if !ok || vi.Var != v {
			return temporal.Interval{}, false, nil
		}
		if len(temporalVarList(other)) != 0 {
			return temporal.Interval{}, false, nil
		}
		el, err := evalElement(other, ev)
		if err != nil {
			return temporal.Interval{}, false, err
		}
		return el.iv, true, nil
	}
	if iv, ok, err := constSide(rel.L, rel.R); ok || err != nil {
		return iv, ok, err
	}
	return constSide(rel.R, rel.L)
}

// columnOps maps TQuel comparison operators to columnar filter operators,
// with the flipped form used when the constant is on the left ("E < v.attr"
// is "v.attr > E"). "!=" stays row-wise: it rarely prunes anything.
var columnOps = map[string]struct{ fwd, rev segment.Op }{
	"=":  {segment.OpEq, segment.OpEq},
	"<":  {segment.OpLt, segment.OpGt},
	"<=": {segment.OpLe, segment.OpGe},
	">":  {segment.OpGt, segment.OpLt},
	">=": {segment.OpGe, segment.OpLe},
}

// columnFilters compiles the single-variable comparison conjuncts of the
// form "v.attr OP E" (either operand order, E variable-free) into columnar
// pre-filters for the store's segment scan. The conjuncts themselves stay in
// the prefilter list — a Filter is an acceleration that shrinks the set of
// materialized versions, and the surviving rows are still re-verified by the
// ordinary evaluator, so pushing one can never change an answer.
func columnFilters(conjs []Expr, v string, rel *tdb.Relation, ev *env) ([]*segment.Filter, error) {
	var out []*segment.Filter
	for _, e := range conjs {
		cmp, ok := e.(*Cmp)
		if !ok {
			continue
		}
		ops, ok := columnOps[cmp.Op]
		if !ok {
			continue
		}
		side := func(ref, other Expr, op segment.Op) (*segment.Filter, error) {
			ar, ok := ref.(*AttrRef)
			if !ok || ar.Var != v || len(exprVarList(other)) != 0 {
				return nil, nil
			}
			val, err := evalExpr(other, ev)
			if err != nil {
				// Leave the conjunct to the evaluator, which reports the
				// error at its usual point in execution.
				return nil, nil
			}
			f, ok := rel.CmpFilter(ar.Attr, op, val)
			if !ok {
				return nil, nil // kind mismatch: coercion stays row-wise
			}
			return f, nil
		}
		f, err := side(cmp.L, cmp.R, ops.fwd)
		if err != nil {
			return nil, err
		}
		if f == nil {
			if f, err = side(cmp.R, cmp.L, ops.rev); err != nil {
				return nil, err
			}
		}
		if f != nil {
			out = append(out, f)
		}
	}
	return out, nil
}

// equiJoinSides recognizes "v1.a = v2.b" with distinct variables.
func equiJoinSides(e Expr) (l, r *AttrRef, ok bool) {
	cmp, isCmp := e.(*Cmp)
	if !isCmp || cmp.Op != "=" {
		return nil, nil, false
	}
	l, lok := cmp.L.(*AttrRef)
	r, rok := cmp.R.(*AttrRef)
	if !lok || !rok || l.Var == r.Var {
		return nil, nil, false
	}
	return l, r, true
}

// hashableJoin reports whether an equi-join on attributes of the given
// kinds can be answered by hashing, and whether the keys need numeric
// normalization. Hashing must never separate values the comparison would
// call equal: identical kinds hash exactly, and int/float pairs (which the
// comparison widens) hash their widened value. Cross-kind pairs with
// parse-time coercion (instant vs. string) stay on the nested-loop path.
func hashableJoin(a, b tdb.ValueKind) (hashable, numeric bool) {
	num := func(k tdb.ValueKind) bool { return k == value.Int || k == value.Float }
	switch {
	case a == b && a != value.Float:
		return true, false
	case num(a) && num(b):
		// Covers float=float too: widening normalizes -0 vs +0 and NaN
		// payloads, which compare equal but carry different bits.
		return true, true
	default:
		return false, false
	}
}

// joinHash hashes a join key so that values the comparison treats as equal
// collide. Numeric keys are widened to float64 with -0 folded into +0 and
// NaNs canonicalized, mirroring evalCmp's int/float widening and
// value.Compare's NaN-equals-NaN ordering.
func joinHash(v tdb.Value, numeric bool) uint64 {
	if !numeric {
		return v.Hash64()
	}
	var f float64
	switch v.Kind() {
	case value.Int:
		f = float64(v.Int())
	case value.Float:
		f = v.Float()
	}
	if f != f {
		f = math.NaN()
	}
	if f == 0 {
		f = 0
	}
	return tdb.Float(f).Hash64()
}

// overlapProbeMaxSel is the estimated overlap selectivity above which the
// planner skips the interval-index probe: past it, the probe visits most of
// the store anyway, and the plain filtered scan avoids the index walk.
const overlapProbeMaxSel = 0.5

// orderByCost greedily orders the range variables to minimize estimated
// intermediate cardinality (left-deep join order). The smallest candidate
// list opens; each later step binds the unbound variable with the smallest
// estimated post-join output — |v| discounted by 1/max(ndv_left, ndv_right)
// for every equi edge into the bound prefix (the textbook equi-join
// selectivity under uniformity). A variable with no edge into the prefix
// keeps selectivity 1, so cross products price themselves out of early
// depths — the main win over the v1 ascending-cardinality heuristic, which
// happily opens with a cross product between two small relations. Ties keep
// statement order (strict less on deterministic estimates), so the order is
// a pure function of the database state and the statement.
//
// Alongside the order it fills each depth's cumulative cardinality estimate
// (planVar.estOut, rendered by explain) and totals pl.estWork — the
// estimated number of bindings the join loop examines: hashable depths cost
// one probe per prefix binding plus expected matches, nested-loop depths a
// full scan of the inner list per prefix binding. useParallel compares
// estWork against the session's cutoff.
func orderByCost(pl *queryPlan, edges []equiEdge, ndvOf func(i, attr int) float64) {
	n := len(pl.vars)
	pos := make(map[string]int, n)
	for i := range pl.vars {
		pos[pl.vars[i].name] = i
	}
	used := make([]bool, n)
	chosen := make([]int, 0, n)
	start := 0
	for i := 1; i < n; i++ {
		if len(pl.vars[i].versions) < len(pl.vars[start].versions) {
			start = i
		}
	}
	used[start] = true
	chosen = append(chosen, start)
	card := float64(len(pl.vars[start].versions))
	pl.vars[start].estOut = card
	work := card
	for len(chosen) < n {
		best, bestCard, bestHash := -1, 0.0, false
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			sel, hashed := 1.0, false
			for _, e := range edges {
				li, ri := pos[e.l.Var], pos[e.r.Var]
				var other, myAttr, otherAttr int
				switch {
				case li == i && used[ri]:
					other, myAttr, otherAttr = ri, e.lIdx, e.rIdx
				case ri == i && used[li]:
					other, myAttr, otherAttr = li, e.rIdx, e.lIdx
				default:
					continue
				}
				d := ndvOf(i, myAttr)
				if od := ndvOf(other, otherAttr); od > d {
					d = od
				}
				sel /= d
				if e.hashable {
					hashed = true
				}
			}
			cand := card * float64(len(pl.vars[i].versions)) * sel
			if best < 0 || cand < bestCard {
				best, bestCard, bestHash = i, cand, hashed
			}
		}
		if bestHash {
			work += card + bestCard
		} else {
			work += card * float64(len(pl.vars[best].versions))
		}
		used[best] = true
		chosen = append(chosen, best)
		card = bestCard
		pl.vars[best].estOut = card
	}
	reordered := make([]planVar, 0, n)
	for _, i := range chosen {
		reordered = append(reordered, pl.vars[i])
	}
	pl.vars = reordered
	pl.estRows = card
	pl.estWork = work
}

// admit applies the residual conjuncts parked at this variable's depth to
// the current bindings.
func (pv *planVar) admit(ev *env) (bool, error) {
	for _, e := range pv.where {
		ok, err := evalPred(e, ev)
		if err != nil || !ok {
			return false, err
		}
	}
	for _, te := range pv.when {
		ok, err := evalTemporalPred(te, ev)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// buildPlan compiles a checked retrieve statement. It fetches each
// variable's candidate versions (through an interval index where a pushed
// when conjunct allows), applies single-variable conjuncts, orders
// variables by filtered cardinality, and wires hash joins for residual
// equi-join conjuncts.
func (s *Session) buildPlan(n *RetrieveStmt, order []string, rels []*tdb.Relation,
	ev *env, asOf, through temporal.Chronon, hasAsOf, hasThrough bool) (*queryPlan, error) {

	statsOn := !s.noStats
	pl := &queryPlan{statsUsed: statsOn, parallelCut: s.resolveParallelMinCost()}

	var whereConjs []Expr
	if n.Where != nil {
		whereConjs = splitAnd(n.Where, nil)
	}
	var whenConjs []TemporalExpr
	if n.When != nil {
		whenConjs = splitTempAnd(n.When, nil)
	}

	perVarWhere := map[string][]Expr{}
	perVarWhen := map[string][]TemporalExpr{}
	type residual struct {
		expr Expr
		te   TemporalExpr
		vars []string
	}
	var residuals []residual

	for _, e := range whereConjs {
		switch vars := exprVarList(e); len(vars) {
		case 0:
			// Variable-free: settled exactly once, before any binding.
			ok, err := evalPred(e, ev)
			if err != nil {
				return nil, err
			}
			if !ok {
				pl.emptyResult = true
			}
			pl.pushed++
		case 1:
			perVarWhere[vars[0]] = append(perVarWhere[vars[0]], e)
		default:
			residuals = append(residuals, residual{expr: e, vars: vars})
		}
	}
	for _, te := range whenConjs {
		switch vars := temporalVarList(te); len(vars) {
		case 0:
			ok, err := evalTemporalPred(te, ev)
			if err != nil {
				return nil, err
			}
			if !ok {
				pl.emptyResult = true
			}
			pl.pushed++
		case 1:
			perVarWhen[vars[0]] = append(perVarWhen[vars[0]], te)
		default:
			residuals = append(residuals, residual{te: te, vars: vars})
		}
	}

	// Fetch and prefilter each variable's candidates, in the statement's
	// original variable order so errors surface exactly as the naive path
	// reports them.
	pl.vars = make([]planVar, len(order))
	for i, v := range order {
		rel := rels[i]
		tfilters := perVarWhen[v]

		var base []tdb.Version
		var err error
		var colf []*segment.Filter
		fetched := false
		whenIdx, probeSkipped := false, false
		if !hasThrough {
			// Columnar pre-filters: single-variable comparison conjuncts the
			// segment scan can evaluate on columns before materializing.
			colf, err = columnFilters(perVarWhere[v], v, rel, ev)
			if err != nil {
				return nil, err
			}
			// When pushdown: answer one "v overlap <const>" conjunct
			// through the store's valid-time interval index.
			for fi, te := range tfilters {
				q, ok, perr := overlapPushdown(te, v, ev)
				if perr != nil {
					return nil, perr
				}
				if !ok {
					continue
				}
				if statsOn {
					// Probe-vs-scan: a window matching most versions makes
					// the interval-index probe walk nearly the whole store
					// and still re-verify rows — the plain filtered scan is
					// cheaper. The conjunct stays in tfilters and prunes
					// row-wise below.
					if sel, selOK := rel.EstimateOverlap(q); selOK && sel > overlapProbeMaxSel {
						probeSkipped = true
						pl.overlapSkips++
						continue
					}
				}
				vs, indexed, werr := rel.VersionsWhenFiltered(q, asOf, hasAsOf, colf)
				if werr != nil {
					return nil, errf(n.Pos, "%s: %v", rel.Name(), werr)
				}
				if indexed {
					base, fetched, whenIdx = vs, true, true
					tfilters = append(append([]TemporalExpr(nil), tfilters[:fi]...), tfilters[fi+1:]...)
					pl.whenIndexed++
					pl.pushed++
					break
				}
			}
		}
		if !fetched {
			if hasThrough {
				base, err = rel.VersionsDuring(asOf, through)
			} else {
				// The plain visible-state fetch takes the same columnar
				// pre-filters: the as-of scan (or interval-index probe)
				// checks them before materializing each version.
				base, err = rel.VisibleVersionsFiltered(asOf, hasAsOf, colf)
			}
			if err != nil {
				return nil, errf(n.Pos, "%s: %v", rel.Name(), err)
			}
		}

		filters := perVarWhere[v]
		if len(filters)+len(tfilters) > 0 {
			b := &binding{rel: rel}
			ev.vars[v] = b
			kept := base[:0]
			for vi := range base {
				ver := &base[vi]
				pl.prefiltered++
				b.data, b.valid, b.trans = ver.Data, ver.Valid, ver.Trans
				ok := true
				var err error
				for _, e := range filters {
					if ok, err = evalPred(e, ev); err != nil {
						delete(ev.vars, v)
						return nil, err
					} else if !ok {
						break
					}
				}
				if ok {
					for _, te := range tfilters {
						if ok, err = evalTemporalPred(te, ev); err != nil {
							delete(ev.vars, v)
							return nil, err
						} else if !ok {
							break
						}
					}
				}
				if ok {
					kept = append(kept, *ver)
				}
			}
			base = kept
			delete(ev.vars, v)
			pl.pushed += int64(len(filters) + len(tfilters))
		}
		pl.vars[i] = planVar{name: v, orig: i, rel: rel, versions: base,
			whenIndexed: whenIdx, probeSkipped: probeSkipped}
	}

	// Resolve every equi-join edge once; the ordering cost model and the
	// probe wiring below both consume the list.
	pos := make(map[string]int, len(pl.vars))
	for i := range pl.vars {
		pos[pl.vars[i].name] = i
	}
	var edges []equiEdge
	for _, r := range residuals {
		if r.expr == nil {
			continue
		}
		l, rt, ok := equiJoinSides(r.expr)
		if !ok {
			continue
		}
		lIdx := pl.vars[pos[l.Var]].rel.Schema().Index(l.Attr)
		rIdx := pl.vars[pos[rt.Var]].rel.Schema().Index(rt.Attr)
		if lIdx < 0 || rIdx < 0 {
			continue // unreachable after analysis; keep the nested loop
		}
		hashable, numeric := hashableJoin(
			pl.vars[pos[l.Var]].rel.Schema().Attr(lIdx).Type,
			pl.vars[pos[rt.Var]].rel.Schema().Attr(rIdx).Type)
		edges = append(edges, equiEdge{l: l, r: rt, lIdx: lIdx, rIdx: rIdx,
			hashable: hashable, numeric: numeric})
	}

	// ndvOf estimates the distinct join-key count of pl.vars[i]'s attribute,
	// clamped to the filtered candidate count (the relation-wide sketch can
	// only overcount a filtered list) and floored at 1. Memoized per
	// statement-order variable so one attribute consulted by both the
	// ordering and the build-edge choice counts one estimate.
	ndvMemo := make(map[[2]int]float64)
	ndvOf := func(i, attr int) float64 {
		pv := &pl.vars[i]
		key := [2]int{pv.orig, attr}
		if d, ok := ndvMemo[key]; ok {
			return d
		}
		d, ok := pv.rel.EstimateNDV(attr)
		if !ok {
			// No statistics yet: assume all-distinct, the key-join default.
			d = float64(len(pv.versions))
		}
		if m := float64(len(pv.versions)); d > m {
			d = m
		}
		if d < 1 {
			d = 1
		}
		ndvMemo[key] = d
		return d
	}

	// Join ordering (see the package comment, step 3).
	if statsOn && len(pl.vars) > 0 {
		orderByCost(pl, edges, ndvOf)
	} else {
		// v1 heuristic: smallest filtered cardinality binds first (stable,
		// so equal-sized variables keep statement order).
		sort.SliceStable(pl.vars, func(i, j int) bool {
			return len(pl.vars[i].versions) < len(pl.vars[j].versions)
		})
	}
	depthOf := make(map[string]int, len(pl.vars))
	for d := range pl.vars {
		depthOf[pl.vars[d].name] = d
	}

	// Wire hash probes: each inner variable's scan becomes a probe along one
	// hashable equi edge to an earlier-bound variable. The conjunct stays
	// residual (below), so probe results are re-verified and collisions
	// cannot leak into the answer.
	type probeChoice struct {
		e                  equiEdge
		probe              *AttrRef
		buildIdx, probeIdx int
	}
	choice := make([]*probeChoice, len(pl.vars))
	choiceNDV := make([]float64, len(pl.vars))
	for _, e := range edges {
		if !e.hashable {
			continue
		}
		build, probe, buildIdx, probeIdx := e.l, e.r, e.lIdx, e.rIdx
		if depthOf[build.Var] < depthOf[probe.Var] {
			build, probe, buildIdx, probeIdx = probe, build, probeIdx, buildIdx
		}
		d := depthOf[build.Var]
		switch {
		case choice[d] == nil:
			choice[d] = &probeChoice{e: e, probe: probe, buildIdx: buildIdx, probeIdx: probeIdx}
			if statsOn {
				choiceNDV[d] = ndvOf(d, buildIdx)
			}
		case statsOn:
			// Build-side attribute choice: the edge with the largest NDV
			// spreads the table widest — fewest expected matches per probe.
			if nd := ndvOf(d, buildIdx); nd > choiceNDV[d] {
				choice[d] = &probeChoice{e: e, probe: probe, buildIdx: buildIdx, probeIdx: probeIdx}
				choiceNDV[d] = nd
			}
		}
	}
	for d, c := range choice {
		if c == nil {
			continue
		}
		pv := &pl.vars[d]
		table := index.NewHashSized(len(pv.versions))
		for vi := range pv.versions {
			table.Add(joinHash(pv.versions[vi].Data[c.buildIdx], c.e.numeric), vi)
		}
		pl.buildRows += int64(len(pv.versions))
		pv.join = &hashJoin{table: table, buildIdx: c.buildIdx,
			probeDepth: depthOf[c.probe.Var], probeIdx: c.probeIdx, numeric: c.e.numeric}
	}
	for d := 1; d < len(pl.vars); d++ {
		if pl.vars[d].join == nil {
			pl.fallbacks++
		}
	}

	// Park every residual conjunct at the shallowest depth where all its
	// variables are bound, so failing bindings prune before descending.
	for _, r := range residuals {
		depth := 0
		for _, v := range r.vars {
			if d := depthOf[v]; d > depth {
				depth = d
			}
		}
		if r.expr != nil {
			pl.vars[depth].where = append(pl.vars[depth].where, r.expr)
		} else {
			pl.vars[depth].when = append(pl.vars[depth].when, r.te)
		}
	}

	// Window-aware cost: a window clause adds a post-scan pass that buffers
	// the joined rows and folds each into the windows it overlaps. The
	// interval histograms' valid extent bounds how many windows can
	// materialize — extent/slide — which both explain renders and the
	// parallel-dispatch comparison prices in (a wide window sweep justifies
	// fanning the scan out earlier). Coalescing adds one more linear pass.
	if n.Window != nil {
		pl.windowSize = n.Window.Size
		pl.windowStep = n.Window.Step()
		if pl.statsUsed {
			var span float64
			for i := range pl.vars {
				if lo, hi, ok := pl.vars[i].rel.EstimateValidExtent(); ok {
					if s := float64(hi - lo); s > span {
						span = s
					}
				}
			}
			pl.estWindows = 1
			if span > 0 {
				pl.estWindows += span / float64(pl.windowStep)
			}
			pl.estWork += pl.estRows + pl.estWindows
		}
	}
	if n.Coalesce {
		pl.coalesced = true
		if pl.statsUsed {
			pl.estWork += pl.estRows
		}
	}
	return pl, nil
}
