package tquel

import (
	"math"
	"sort"

	"tdb"
	"tdb/internal/index"
	"tdb/internal/segment"
	"tdb/internal/value"
	"tdb/temporal"
)

// The query planner. A retrieve over k range variables is naively a
// nested-loop cross product with every predicate deferred to the innermost
// depth — O(∏|Rᵢ|) bindings even when the where clause is a selective
// equi-join. buildPlan compiles the statement into a queryPlan instead:
//
//  1. conjunct classification: the where AND-tree is split into
//     variable-free conjuncts (settled once, before binding anything),
//     single-variable conjuncts (applied to that variable's candidate list
//     before the join loop starts), and residual multi-variable conjuncts
//     (parked at the shallowest binding depth where every variable they
//     mention is bound). The when AND-tree is split the same way.
//  2. when pushdown: a single-variable "v overlap E" conjunct whose other
//     side is variable-free is answered through the store's interval-indexed
//     When path (Relation.VersionsWhen) instead of scan-then-filter.
//  3. join ordering: variables bind in ascending filtered-cardinality
//     order, so the cheapest variable drives the outermost loop.
//  4. hash equi-joins: a residual "v1.a = v2.b" conjunct turns the inner
//     variable's scan into a hash probe — the build side (the side left
//     inner by the cardinality ordering, i.e. the larger one) is hashed
//     once on its join attribute, and each outer binding probes instead of
//     scanning. The conjunct itself stays residual, so hash collisions and
//     numeric coercions are re-verified and the result is provably the one
//     the nested loop computes.
//
// Session.DisablePlanner (and the TDB_DISABLE_PLANNER env var) restore the
// naive path; TestPlannerDifferential asserts both agree.

// queryPlan is a compiled retrieve statement, valid for one execution.
// After buildPlan returns, the plan is immutable: executors (the serial
// loop or the parallel workers, see parallel.go) only read it, keeping
// their mutable binding cells and tallies in a per-goroutine planExec.
type queryPlan struct {
	vars []planVar

	// emptyResult is set when a variable-free conjunct evaluated to false:
	// no binding can ever qualify, so execution skips the join loop.
	emptyResult bool

	// Observability tallies, accumulated with plain += on the planning
	// goroutine and settled into the atomic counters exactly once, post
	// merge, by the executor (see execRetrieve's settle).
	pushed      int64 // single-variable conjuncts applied during prefiltering
	whenIndexed int64 // when conjuncts answered through an interval index
	buildRows   int64 // rows hashed into equi-join build tables
	fallbacks   int64 // inner variables joined by nested loop, not hash probe
	prefiltered int64 // bindings examined while prefiltering candidate lists
}

// planVar is one range variable's slot in the compiled plan, in binding
// order.
type planVar struct {
	name string
	orig int // index into the statement's original variable order
	rel  *tdb.Relation

	// versions is the candidate list after single-variable pushdown.
	versions []tdb.Version

	// join, when non-nil, replaces the scan over versions with a probe of
	// table keyed by the bound value of the probe variable's binding cell.
	join *hashJoin

	// Residual conjuncts settled once this variable is bound.
	where []Expr
	when  []TemporalExpr
}

// hashJoin is one compiled equi-join edge: the inner (build) side's
// versions hashed on the build attribute, probed with the outer side's
// bound value. probeDepth identifies the outer variable by binding depth
// rather than by a shared cell pointer, so concurrent executors can each
// resolve it against their own binding cells.
type hashJoin struct {
	table      *index.Hash
	buildIdx   int  // join attribute offset in the build (inner) schema
	probeDepth int  // binding depth of the already-bound outer variable
	probeIdx   int  // join attribute offset in the probe (outer) schema
	numeric    bool // normalize int/float keys before hashing
}

// splitAnd flattens the top-level AND tree of a scalar predicate into its
// conjuncts. Or/not subtrees are kept whole: they are single conjuncts.
func splitAnd(e Expr, out []Expr) []Expr {
	if b, ok := e.(*BoolOp); ok && b.Op == "and" {
		return splitAnd(b.R, splitAnd(b.L, out))
	}
	return append(out, e)
}

// splitTempAnd flattens the top-level AND tree of a temporal predicate.
func splitTempAnd(e TemporalExpr, out []TemporalExpr) []TemporalExpr {
	if b, ok := e.(*TempBool); ok && b.Op == "and" {
		return splitTempAnd(b.R, splitTempAnd(b.L, out))
	}
	return append(out, e)
}

// exprVarList returns the distinct range variables of a scalar conjunct.
func exprVarList(e Expr) []string {
	m := map[string]bool{}
	exprVars(e, m)
	return sortedVars(m)
}

// temporalVarList returns the distinct range variables of a temporal
// conjunct.
func temporalVarList(e TemporalExpr) []string {
	m := map[string]bool{}
	temporalVars(e, m)
	return sortedVars(m)
}

func sortedVars(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// overlapPushdown recognizes "v overlap E" (either operand order) where E
// references no range variables, returning E's interval. Such a conjunct is
// answerable through a store's valid-time interval index.
func overlapPushdown(te TemporalExpr, v string, ev *env) (temporal.Interval, bool, error) {
	rel, ok := te.(*TempRel)
	if !ok || rel.Op != "overlap" {
		return temporal.Interval{}, false, nil
	}
	constSide := func(side, other TemporalExpr) (temporal.Interval, bool, error) {
		vi, ok := side.(*VarInterval)
		if !ok || vi.Var != v {
			return temporal.Interval{}, false, nil
		}
		if len(temporalVarList(other)) != 0 {
			return temporal.Interval{}, false, nil
		}
		el, err := evalElement(other, ev)
		if err != nil {
			return temporal.Interval{}, false, err
		}
		return el.iv, true, nil
	}
	if iv, ok, err := constSide(rel.L, rel.R); ok || err != nil {
		return iv, ok, err
	}
	return constSide(rel.R, rel.L)
}

// columnOps maps TQuel comparison operators to columnar filter operators,
// with the flipped form used when the constant is on the left ("E < v.attr"
// is "v.attr > E"). "!=" stays row-wise: it rarely prunes anything.
var columnOps = map[string]struct{ fwd, rev segment.Op }{
	"=":  {segment.OpEq, segment.OpEq},
	"<":  {segment.OpLt, segment.OpGt},
	"<=": {segment.OpLe, segment.OpGe},
	">":  {segment.OpGt, segment.OpLt},
	">=": {segment.OpGe, segment.OpLe},
}

// columnFilters compiles the single-variable comparison conjuncts of the
// form "v.attr OP E" (either operand order, E variable-free) into columnar
// pre-filters for the store's segment scan. The conjuncts themselves stay in
// the prefilter list — a Filter is an acceleration that shrinks the set of
// materialized versions, and the surviving rows are still re-verified by the
// ordinary evaluator, so pushing one can never change an answer.
func columnFilters(conjs []Expr, v string, rel *tdb.Relation, ev *env) ([]*segment.Filter, error) {
	var out []*segment.Filter
	for _, e := range conjs {
		cmp, ok := e.(*Cmp)
		if !ok {
			continue
		}
		ops, ok := columnOps[cmp.Op]
		if !ok {
			continue
		}
		side := func(ref, other Expr, op segment.Op) (*segment.Filter, error) {
			ar, ok := ref.(*AttrRef)
			if !ok || ar.Var != v || len(exprVarList(other)) != 0 {
				return nil, nil
			}
			val, err := evalExpr(other, ev)
			if err != nil {
				// Leave the conjunct to the evaluator, which reports the
				// error at its usual point in execution.
				return nil, nil
			}
			f, ok := rel.CmpFilter(ar.Attr, op, val)
			if !ok {
				return nil, nil // kind mismatch: coercion stays row-wise
			}
			return f, nil
		}
		f, err := side(cmp.L, cmp.R, ops.fwd)
		if err != nil {
			return nil, err
		}
		if f == nil {
			if f, err = side(cmp.R, cmp.L, ops.rev); err != nil {
				return nil, err
			}
		}
		if f != nil {
			out = append(out, f)
		}
	}
	return out, nil
}

// equiJoinSides recognizes "v1.a = v2.b" with distinct variables.
func equiJoinSides(e Expr) (l, r *AttrRef, ok bool) {
	cmp, isCmp := e.(*Cmp)
	if !isCmp || cmp.Op != "=" {
		return nil, nil, false
	}
	l, lok := cmp.L.(*AttrRef)
	r, rok := cmp.R.(*AttrRef)
	if !lok || !rok || l.Var == r.Var {
		return nil, nil, false
	}
	return l, r, true
}

// hashableJoin reports whether an equi-join on attributes of the given
// kinds can be answered by hashing, and whether the keys need numeric
// normalization. Hashing must never separate values the comparison would
// call equal: identical kinds hash exactly, and int/float pairs (which the
// comparison widens) hash their widened value. Cross-kind pairs with
// parse-time coercion (instant vs. string) stay on the nested-loop path.
func hashableJoin(a, b tdb.ValueKind) (hashable, numeric bool) {
	num := func(k tdb.ValueKind) bool { return k == value.Int || k == value.Float }
	switch {
	case a == b && a != value.Float:
		return true, false
	case num(a) && num(b):
		// Covers float=float too: widening normalizes -0 vs +0 and NaN
		// payloads, which compare equal but carry different bits.
		return true, true
	default:
		return false, false
	}
}

// joinHash hashes a join key so that values the comparison treats as equal
// collide. Numeric keys are widened to float64 with -0 folded into +0 and
// NaNs canonicalized, mirroring evalCmp's int/float widening and
// value.Compare's NaN-equals-NaN ordering.
func joinHash(v tdb.Value, numeric bool) uint64 {
	if !numeric {
		return v.Hash64()
	}
	var f float64
	switch v.Kind() {
	case value.Int:
		f = float64(v.Int())
	case value.Float:
		f = v.Float()
	}
	if f != f {
		f = math.NaN()
	}
	if f == 0 {
		f = 0
	}
	return tdb.Float(f).Hash64()
}

// admit applies the residual conjuncts parked at this variable's depth to
// the current bindings.
func (pv *planVar) admit(ev *env) (bool, error) {
	for _, e := range pv.where {
		ok, err := evalPred(e, ev)
		if err != nil || !ok {
			return false, err
		}
	}
	for _, te := range pv.when {
		ok, err := evalTemporalPred(te, ev)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// buildPlan compiles a checked retrieve statement. It fetches each
// variable's candidate versions (through an interval index where a pushed
// when conjunct allows), applies single-variable conjuncts, orders
// variables by filtered cardinality, and wires hash joins for residual
// equi-join conjuncts.
func (s *Session) buildPlan(n *RetrieveStmt, order []string, rels []*tdb.Relation,
	ev *env, asOf, through temporal.Chronon, hasAsOf, hasThrough bool) (*queryPlan, error) {

	pl := &queryPlan{}

	var whereConjs []Expr
	if n.Where != nil {
		whereConjs = splitAnd(n.Where, nil)
	}
	var whenConjs []TemporalExpr
	if n.When != nil {
		whenConjs = splitTempAnd(n.When, nil)
	}

	perVarWhere := map[string][]Expr{}
	perVarWhen := map[string][]TemporalExpr{}
	type residual struct {
		expr Expr
		te   TemporalExpr
		vars []string
	}
	var residuals []residual

	for _, e := range whereConjs {
		switch vars := exprVarList(e); len(vars) {
		case 0:
			// Variable-free: settled exactly once, before any binding.
			ok, err := evalPred(e, ev)
			if err != nil {
				return nil, err
			}
			if !ok {
				pl.emptyResult = true
			}
			pl.pushed++
		case 1:
			perVarWhere[vars[0]] = append(perVarWhere[vars[0]], e)
		default:
			residuals = append(residuals, residual{expr: e, vars: vars})
		}
	}
	for _, te := range whenConjs {
		switch vars := temporalVarList(te); len(vars) {
		case 0:
			ok, err := evalTemporalPred(te, ev)
			if err != nil {
				return nil, err
			}
			if !ok {
				pl.emptyResult = true
			}
			pl.pushed++
		case 1:
			perVarWhen[vars[0]] = append(perVarWhen[vars[0]], te)
		default:
			residuals = append(residuals, residual{te: te, vars: vars})
		}
	}

	// Fetch and prefilter each variable's candidates, in the statement's
	// original variable order so errors surface exactly as the naive path
	// reports them.
	pl.vars = make([]planVar, len(order))
	for i, v := range order {
		rel := rels[i]
		tfilters := perVarWhen[v]

		var base []tdb.Version
		var err error
		var colf []*segment.Filter
		fetched := false
		if !hasThrough {
			// Columnar pre-filters: single-variable comparison conjuncts the
			// segment scan can evaluate on columns before materializing.
			colf, err = columnFilters(perVarWhere[v], v, rel, ev)
			if err != nil {
				return nil, err
			}
			// When pushdown: answer one "v overlap <const>" conjunct
			// through the store's valid-time interval index.
			for fi, te := range tfilters {
				q, ok, perr := overlapPushdown(te, v, ev)
				if perr != nil {
					return nil, perr
				}
				if !ok {
					continue
				}
				vs, indexed, werr := rel.VersionsWhenFiltered(q, asOf, hasAsOf, colf)
				if werr != nil {
					return nil, errf(n.Pos, "%s: %v", rel.Name(), werr)
				}
				if indexed {
					base, fetched = vs, true
					tfilters = append(append([]TemporalExpr(nil), tfilters[:fi]...), tfilters[fi+1:]...)
					pl.whenIndexed++
					pl.pushed++
					break
				}
			}
		}
		if !fetched {
			if hasThrough {
				base, err = rel.VersionsDuring(asOf, through)
			} else {
				// The plain visible-state fetch takes the same columnar
				// pre-filters: the as-of scan (or interval-index probe)
				// checks them before materializing each version.
				base, err = rel.VisibleVersionsFiltered(asOf, hasAsOf, colf)
			}
			if err != nil {
				return nil, errf(n.Pos, "%s: %v", rel.Name(), err)
			}
		}

		filters := perVarWhere[v]
		if len(filters)+len(tfilters) > 0 {
			b := &binding{rel: rel}
			ev.vars[v] = b
			kept := base[:0]
			for vi := range base {
				ver := &base[vi]
				pl.prefiltered++
				b.data, b.valid, b.trans = ver.Data, ver.Valid, ver.Trans
				ok := true
				var err error
				for _, e := range filters {
					if ok, err = evalPred(e, ev); err != nil {
						delete(ev.vars, v)
						return nil, err
					} else if !ok {
						break
					}
				}
				if ok {
					for _, te := range tfilters {
						if ok, err = evalTemporalPred(te, ev); err != nil {
							delete(ev.vars, v)
							return nil, err
						} else if !ok {
							break
						}
					}
				}
				if ok {
					kept = append(kept, *ver)
				}
			}
			base = kept
			delete(ev.vars, v)
			pl.pushed += int64(len(filters) + len(tfilters))
		}
		pl.vars[i] = planVar{name: v, orig: i, rel: rel, versions: base}
	}

	// Join ordering: smallest filtered cardinality binds first (stable, so
	// equal-sized variables keep statement order). The inner side of each
	// equi-join edge — the larger one — becomes the hash build side below.
	sort.SliceStable(pl.vars, func(i, j int) bool {
		return len(pl.vars[i].versions) < len(pl.vars[j].versions)
	})
	depthOf := make(map[string]int, len(pl.vars))
	for d := range pl.vars {
		depthOf[pl.vars[d].name] = d
	}

	// Wire hash probes: for each variable, the first equi-join conjunct
	// linking it to an earlier-bound variable with hashable key kinds turns
	// its scan into a probe. The conjunct stays residual (below), so probe
	// results are re-verified and collisions cannot leak into the answer.
	for _, r := range residuals {
		if r.expr == nil {
			continue
		}
		l, rt, ok := equiJoinSides(r.expr)
		if !ok {
			continue
		}
		build, probe := l, rt
		if depthOf[build.Var] < depthOf[probe.Var] {
			build, probe = probe, build
		}
		pv := &pl.vars[depthOf[build.Var]]
		if pv.join != nil {
			continue
		}
		probeDepth := depthOf[probe.Var]
		outer := &pl.vars[probeDepth]
		buildIdx := pv.rel.Schema().Index(build.Attr)
		probeIdx := outer.rel.Schema().Index(probe.Attr)
		if buildIdx < 0 || probeIdx < 0 {
			continue // unreachable after analysis; keep the nested loop
		}
		hashable, numeric := hashableJoin(
			pv.rel.Schema().Attr(buildIdx).Type, outer.rel.Schema().Attr(probeIdx).Type)
		if !hashable {
			continue
		}
		table := index.NewHashSized(len(pv.versions))
		for pos := range pv.versions {
			table.Add(joinHash(pv.versions[pos].Data[buildIdx], numeric), pos)
		}
		pl.buildRows += int64(len(pv.versions))
		pv.join = &hashJoin{table: table, buildIdx: buildIdx,
			probeDepth: probeDepth, probeIdx: probeIdx, numeric: numeric}
	}
	for d := 1; d < len(pl.vars); d++ {
		if pl.vars[d].join == nil {
			pl.fallbacks++
		}
	}

	// Park every residual conjunct at the shallowest depth where all its
	// variables are bound, so failing bindings prune before descending.
	for _, r := range residuals {
		depth := 0
		for _, v := range r.vars {
			if d := depthOf[v]; d > depth {
				depth = d
			}
		}
		if r.expr != nil {
			pl.vars[depth].where = append(pl.vars[depth].where, r.expr)
		} else {
			pl.vars[depth].when = append(pl.vars[depth].when, r.te)
		}
	}
	return pl, nil
}
