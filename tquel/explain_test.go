package tquel

import (
	"fmt"
	"strings"
	"testing"
)

// The plan-regression corpus: explain output is part of the planner's
// contract, so every line — join order, probe wiring, estimates, dispatch —
// is pinned against a seeded fixture. A failing diff here means the planner
// changed a decision; update the golden only when the change is intended.
func TestExplainCorpus(t *testing.T) {
	ses := plannerOn(planFixture(t))
	ses.SetParallelism(1) // deterministic dispatch line
	for _, tc := range []struct {
		src, want string
	}{
		{
			`explain retrieve (s.tag, b.tag) where s.k = b.k`,
			`plan (statistics on)
  1. s (small): 3 candidate(s), scan, est out 3
  2. b (big): 12 candidate(s), hash probe on s.k = b.k, 1 residual where, est out 3
  est work 9, est rows 3, parallel cutoff 4096
  dispatch: serial`,
		},
		{
			`explain retrieve (s.tag) where 1 = 2`,
			`plan (statistics on)
  empty result: a variable-free conjunct is false`,
		},
		{
			`explain retrieve (s.tag) when s overlap "06/01/80"`,
			`plan (statistics on)
  1. s (small): 1 candidate(s), scan, interval-indexed, est out 1
  est work 1, est rows 1, parallel cutoff 4096
  dispatch: serial`,
		},
		{
			`explain retrieve (s.tag, b.tag) where s.tag != b.tag`,
			`plan (statistics on)
  1. s (small): 3 candidate(s), scan, est out 3
  2. b (big): 12 candidate(s), nested loop, 1 residual where, est out 36
  est work 39, est rows 36, parallel cutoff 4096
  dispatch: serial`,
		},
		{
			`explain retrieve (s.tag, b.tag) where s.k = b.k and s.k = 0`,
			`plan (statistics on)
  1. s (small): 1 candidate(s), scan, est out 1
  2. b (big): 12 candidate(s), hash probe on s.k = b.k, 1 residual where, est out 1
  est work 3, est rows 1, parallel cutoff 4096
  dispatch: serial`,
		},
	} {
		outs, err := ses.Exec(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		o := outs[len(outs)-1]
		if o.Stmt != "explain" {
			t.Errorf("outcome stmt = %q, want explain", o.Stmt)
		}
		if o.Result != nil {
			t.Errorf("explain produced a resultset for:\n%s", tc.src)
		}
		if o.Msg != tc.want {
			t.Errorf("explain output drifted for:\n%s\n--- got ---\n%s\n--- want ---\n%s",
				tc.src, o.Msg, tc.want)
		}
	}
}

// The stats-off rendering drops every estimate but keeps the structural
// lines, and the v1 heuristics still pick the same shape on this fixture.
func TestExplainStatsOff(t *testing.T) {
	ses := plannerOn(planFixture(t))
	ses.SetParallelism(1)
	ses.DisableStats(true)
	outs, err := ses.Exec(`explain retrieve (s.tag, b.tag) where s.k = b.k`)
	if err != nil {
		t.Fatal(err)
	}
	want := `plan (statistics off)
  1. s (small): 3 candidate(s), scan
  2. b (big): 12 candidate(s), hash probe on s.k = b.k, 1 residual where
  dispatch: serial`
	if outs[0].Msg != want {
		t.Errorf("stats-off explain drifted:\n--- got ---\n%s\n--- want ---\n%s", outs[0].Msg, want)
	}
}

// When estimated work clears the session's cutoff, the dispatch line must
// say so with the worker budget execution would use.
func TestExplainParallelDispatch(t *testing.T) {
	ses := plannerOn(planFixture(t))
	ses.SetParallelism(4)
	ses.parallelMinCost = 1
	outs, err := ses.Exec(`explain retrieve (s.tag, b.tag) where s.k = b.k`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(outs[0].Msg, "dispatch: parallel (4 workers)") {
		t.Errorf("expected parallel dispatch, got:\n%s", outs[0].Msg)
	}
	if !strings.Contains(outs[0].Msg, "parallel cutoff 1") {
		t.Errorf("expected the session cutoff in the footer, got:\n%s", outs[0].Msg)
	}
}

// Cost-based ordering must bind along join edges: with s–l and m–l edges
// but no s–m edge, the v1 size heuristic opens with the s×m cross product
// while the cost model inserts l second. The corpus pins both shapes.
func TestExplainJoinOrderAvoidsCrossProduct(t *testing.T) {
	ses := plannerOn(skewedFixture(t, 4, 30, 40))
	ses.SetParallelism(1)
	const src = `explain retrieve (s.tag, m.tag, l.tag) where l.sk = s.k and l.mk = m.k`

	outs, err := ses.Exec(src)
	if err != nil {
		t.Fatal(err)
	}
	order := bindingOrder(t, outs[0].Msg)
	if order != "s,l,m" {
		t.Errorf("cost-based binding order = %s, want s,l,m\n%s", order, outs[0].Msg)
	}

	ses.DisableStats(true)
	outs, err = ses.Exec(src)
	if err != nil {
		t.Fatal(err)
	}
	order = bindingOrder(t, outs[0].Msg)
	if order != "s,m,l" {
		t.Errorf("v1 binding order = %s, want s,m,l (ascending size)\n%s", order, outs[0].Msg)
	}
}

// bindingOrder extracts the variable names from an explain rendering's
// numbered depth lines, in binding order.
func bindingOrder(t *testing.T, msg string) string {
	t.Helper()
	var vars []string
	for _, line := range strings.Split(msg, "\n") {
		line = strings.TrimSpace(line)
		if len(line) > 3 && line[1] == '.' && line[0] >= '1' && line[0] <= '9' {
			vars = append(vars, strings.Fields(line)[1])
		}
	}
	if len(vars) == 0 {
		t.Fatalf("no depth lines in explain output:\n%s", msg)
	}
	return strings.Join(vars, ",")
}

// skewedFixture builds the three-relation join graph used by the ordering
// corpus and the skewed-join benchmark: small s, medium m, large l, where l
// carries foreign keys into both s and m but s and m share no edge.
func skewedFixture(t testing.TB, ns, nm, nl int) *Session {
	t.Helper()
	ses := NewSession(newDB(t))
	if _, err := ses.Exec(`
		create static relation s_rel (k = int, tag = string) key (k)
		create static relation m_rel (k = int, tag = string) key (k)
		create static relation l_rel (id = int, sk = int, mk = int, tag = string) key (id)
		range of s is s_rel
		range of m is m_rel
		range of l is l_rel
	`); err != nil {
		t.Fatal(err)
	}
	batch := func(stmts []string) {
		t.Helper()
		if _, err := ses.Exec(strings.Join(stmts, "\n")); err != nil {
			t.Fatal(err)
		}
	}
	var stmts []string
	for i := 0; i < ns; i++ {
		stmts = append(stmts, fmt.Sprintf(`append to s_rel (k = %d, tag = "s%d")`, i, i))
	}
	batch(stmts)
	stmts = stmts[:0]
	for i := 0; i < nm; i++ {
		stmts = append(stmts, fmt.Sprintf(`append to m_rel (k = %d, tag = "m%d")`, i, i))
	}
	batch(stmts)
	stmts = stmts[:0]
	for i := 0; i < nl; i++ {
		stmts = append(stmts, fmt.Sprintf(
			`append to l_rel (id = %d, sk = %d, mk = %d, tag = "l%d")`, i, i%ns, i%nm, i))
		if len(stmts) == 200 {
			batch(stmts)
			stmts = stmts[:0]
		}
	}
	if len(stmts) > 0 {
		batch(stmts)
	}
	return ses
}

// Explain parses only in front of retrieve, counts under its own statement
// kind, and mutates nothing.
func TestExplainParseAndCount(t *testing.T) {
	ses := plannerOn(planFixture(t))
	if _, err := ses.Exec(`explain append to small (k = 9, tag = "x")`); err == nil {
		t.Error("explain append parsed; want an error")
	}
	c0 := mStatements["explain"].Value()
	if _, err := ses.Exec(`explain retrieve (s.tag)`); err != nil {
		t.Fatal(err)
	}
	if got := mStatements["explain"].Value() - c0; got != 1 {
		t.Errorf("explain statement counter delta = %d, want 1", got)
	}
	// The wrapped retrieve must not have executed into storage.
	res, err := ses.Query(`retrieve (s.tag)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Errorf("fixture mutated by explain:\n%s", res)
	}
}

// Under DisablePlanner, explain reports the naive shape instead of failing.
func TestExplainPlannerDisabled(t *testing.T) {
	ses := planFixture(t)
	ses.DisablePlanner(true)
	outs, err := ses.Exec(`explain retrieve (s.tag, b.tag) where s.k = b.k`)
	if err != nil {
		t.Fatal(err)
	}
	want := `plan: naive nested loop (planner disabled)
  bind s (small), all predicates innermost
  bind b (big), all predicates innermost`
	if outs[0].Msg != want {
		t.Errorf("planner-off explain drifted:\n--- got ---\n%s\n--- want ---\n%s", outs[0].Msg, want)
	}
}
