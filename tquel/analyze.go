package tquel

import (
	"tdb"
	"tdb/internal/value"
)

// Static analysis of a retrieve statement: every attribute reference must
// resolve, every comparison must be between comparable kinds (with the
// date-string and int/float coercions), boolean connectives must combine
// predicates, and the when clause must be a temporal predicate rather than
// a bare element. Running these checks before binding means errors surface
// even on empty relations.

// checkRetrieve validates the statement against the session's catalog.
func (s *Session) checkRetrieve(n *RetrieveStmt) error {
	for _, t := range n.Targets {
		if _, err := s.checkExpr(t.Expr); err != nil {
			return err
		}
		if a, ok := t.Expr.(*Agg); ok && containsAgg(a.Arg) {
			return errf(a.Pos, "aggregates cannot nest")
		}
	}
	if n.Where != nil {
		if containsAgg(n.Where) {
			return errf(n.Where.Position(), "aggregates are not allowed in the where clause")
		}
		if err := s.checkPred(n.Where); err != nil {
			return err
		}
	}
	if n.When != nil {
		isPred, err := s.checkTemporal(n.When)
		if err != nil {
			return err
		}
		if !isPred {
			return errf(n.When.Position(), "when clause needs a temporal predicate (overlap, precede, equal), not a bare event or interval")
		}
	}
	for _, vc := range []*ValidClause{n.Valid} {
		if vc == nil {
			continue
		}
		for _, te := range []TemporalExpr{vc.At, vc.From, vc.To} {
			if te == nil {
				continue
			}
			isPred, err := s.checkTemporal(te)
			if err != nil {
				return err
			}
			if isPred {
				return errf(te.Position(), "valid clause needs an event expression, not a predicate")
			}
		}
	}
	if n.AsOf != nil {
		for _, te := range []TemporalExpr{n.AsOf.At, n.AsOf.Through} {
			if te == nil {
				continue
			}
			m := map[string]bool{}
			temporalVars(te, m)
			if len(m) > 0 {
				return errf(te.Position(), "as of clause may not reference range variables")
			}
			isPred, err := s.checkTemporal(te)
			if err != nil {
				return err
			}
			if isPred {
				return errf(te.Position(), "as of clause needs an event expression, not a predicate")
			}
		}
	}
	if n.Window != nil {
		if !hasAggTargets(n) {
			return errf(n.Window.Pos, "window clause requires aggregate targets (count, sum, avg, min, max, any)")
		}
		if n.Window.Size <= 0 {
			return errf(n.Window.Pos, "window size must be positive")
		}
		if n.Window.Slide < 0 {
			return errf(n.Window.Pos, "window slide must be positive")
		}
	}
	if n.Coalesce && hasAggTargets(n) && n.Window == nil {
		// Non-windowed aggregation already folds everything into one row per
		// group with a single merged stamp; a coalesce pass would be inert.
		return errf(n.CoalescePos, "coalesce applies to windowed aggregates or plain retrieves, not whole-relation aggregates")
	}
	return nil
}

// hasAggTargets reports whether any target is an aggregate call.
func hasAggTargets(n *RetrieveStmt) bool {
	for _, t := range n.Targets {
		if _, ok := t.Expr.(*Agg); ok {
			return true
		}
	}
	return false
}

// checkExpr resolves and types a scalar expression.
func (s *Session) checkExpr(e Expr) (tdb.ValueKind, error) {
	switch n := e.(type) {
	case *Lit:
		return n.Value.Kind(), nil
	case *AttrRef:
		rel, err := s.resolveVar(n.Pos, n.Var)
		if err != nil {
			return 0, err
		}
		idx := rel.Schema().Index(n.Attr)
		if idx < 0 {
			return 0, errf(n.Pos, "relation %q has no attribute %q", rel.Name(), n.Attr)
		}
		n.idx = idx + 1
		return rel.Schema().Attr(idx).Type, nil
	case *Cmp:
		lk, err := s.checkExpr(n.L)
		if err != nil {
			return 0, err
		}
		rk, err := s.checkExpr(n.R)
		if err != nil {
			return 0, err
		}
		if !comparableKinds(lk, rk) {
			return 0, errf(n.Pos, "cannot compare %s with %s", lk, rk)
		}
		return value.Bool, nil
	case *BoolOp:
		if err := s.checkPred(n.L); err != nil {
			return 0, err
		}
		if n.R != nil {
			if err := s.checkPred(n.R); err != nil {
				return 0, err
			}
		}
		return value.Bool, nil
	case *Agg:
		argKind, err := s.checkExpr(n.Arg)
		if err != nil {
			return 0, err
		}
		return aggResultKind(n, argKind)
	default:
		return 0, errf(e.Position(), "unsupported expression")
	}
}

// aggResultKind types an aggregate call given its argument's kind.
func aggResultKind(n *Agg, arg tdb.ValueKind) (tdb.ValueKind, error) {
	numeric := arg == value.Int || arg == value.Float
	switch n.Fn {
	case "count":
		return value.Int, nil
	case "sum":
		if !numeric {
			return 0, errf(n.Pos, "sum needs a numeric argument, found %s", arg)
		}
		return arg, nil
	case "avg":
		if !numeric {
			return 0, errf(n.Pos, "avg needs a numeric argument, found %s", arg)
		}
		return value.Float, nil
	case "min", "max":
		if arg == value.Bool {
			return 0, errf(n.Pos, "%s is not defined on booleans", n.Fn)
		}
		return arg, nil
	case "any":
		if arg != value.Bool {
			return 0, errf(n.Pos, "any needs a boolean argument, found %s", arg)
		}
		return value.Bool, nil
	default:
		return 0, errf(n.Pos, "unknown aggregate %q", n.Fn)
	}
}

// containsAgg reports whether an aggregate call appears in the expression.
func containsAgg(e Expr) bool {
	switch n := e.(type) {
	case *Agg:
		return true
	case *Cmp:
		return containsAgg(n.L) || containsAgg(n.R)
	case *BoolOp:
		if containsAgg(n.L) {
			return true
		}
		return n.R != nil && containsAgg(n.R)
	default:
		return false
	}
}

// checkPred validates that an expression can serve as a predicate.
func (s *Session) checkPred(e Expr) error {
	k, err := s.checkExpr(e)
	if err != nil {
		return err
	}
	if k != value.Bool {
		return errf(e.Position(), "expected a predicate, found a %s expression", k)
	}
	return nil
}

// comparableKinds mirrors the runtime coercions in evalCmp.
func comparableKinds(a, b tdb.ValueKind) bool {
	if a == b {
		return a != value.Invalid
	}
	num := func(k tdb.ValueKind) bool { return k == value.Int || k == value.Float }
	if num(a) && num(b) {
		return true
	}
	// A string literal compares against an instant via date parsing.
	if (a == value.Instant && b == value.String) || (a == value.String && b == value.Instant) {
		return true
	}
	return false
}

// checkTemporal validates a temporal expression, returning whether it is a
// predicate (true) or an element (false).
func (s *Session) checkTemporal(e TemporalExpr) (bool, error) {
	switch n := e.(type) {
	case *VarInterval:
		if _, err := s.resolveVar(n.Pos, n.Var); err != nil {
			return false, err
		}
		return false, nil
	case *TimeLit:
		if n.Text != "now" && n.Text != "forever" && n.Text != "beginning" {
			if _, err := resolveTimeLit(n, &env{}); err != nil {
				return false, err
			}
		}
		return false, nil
	case *StartOf:
		isPred, err := s.checkTemporal(n.Of)
		if err != nil {
			return false, err
		}
		if isPred {
			return false, errf(n.Pos, "start of needs an event or interval operand")
		}
		return false, nil
	case *EndOf:
		isPred, err := s.checkTemporal(n.Of)
		if err != nil {
			return false, err
		}
		if isPred {
			return false, errf(n.Pos, "end of needs an event or interval operand")
		}
		return false, nil
	case *Extend:
		for _, op := range []TemporalExpr{n.L, n.R} {
			isPred, err := s.checkTemporal(op)
			if err != nil {
				return false, err
			}
			if isPred {
				return false, errf(n.Pos, "extend needs event or interval operands")
			}
		}
		return false, nil
	case *TempRel:
		for _, op := range []TemporalExpr{n.L, n.R} {
			isPred, err := s.checkTemporal(op)
			if err != nil {
				return false, err
			}
			if isPred {
				return false, errf(n.Pos, "%s needs event or interval operands", n.Op)
			}
		}
		return true, nil
	case *TempBool:
		isPred, err := s.checkTemporal(n.L)
		if err != nil {
			return false, err
		}
		if !isPred {
			return false, errf(n.Pos, "%s combines predicates, found an element", n.Op)
		}
		if n.R != nil {
			isPred, err = s.checkTemporal(n.R)
			if err != nil {
				return false, err
			}
			if !isPred {
				return false, errf(n.Pos, "%s combines predicates, found an element", n.Op)
			}
		}
		return true, nil
	default:
		return false, errf(e.Position(), "unsupported temporal expression")
	}
}
