package tquel

import (
	"fmt"
	"sort"
	"strings"

	"tdb/temporal"
)

// Windowed aggregation: "window N [slide M]" evaluates the statement's
// aggregates once per valid-time window instead of once per group. Windows
// are aligned to chronon zero — window k covers [k*step, k*step+size) with
// step = slide (or size, tumbling) — and a binding row contributes to every
// window its valid interval overlaps. Only windows within the finite extent
// of the contributing rows' valid endpoints materialize, which is what makes
// open intervals (beginning/forever) usable under a window clause, and only
// windows with at least one contributing row emit.
//
// The executor does not fold during the scan. It buffers "pseudo-rows" —
// plain-target and aggregate-argument values already evaluated, stamped with
// the binding row's valid/trans intervals — through the same per-worker row
// buffers ordinary retrieves use, so the parallel path needs no new merge
// machinery. finish then sorts the buffer by the rows' canonical keys and
// folds in that order: the fold sequence depends only on the multiset of
// contributing rows, never on scan order, so every differential arm
// (planner on/off, parallel, segments, recovery, follower) produces
// byte-identical results even for order-sensitive float accumulations.

// windowAggregator folds buffered pseudo-rows into per-(group, window)
// aggregate states. Groups are keyed by the plain targets' values, exactly
// as in the non-windowed aggregator.
type windowAggregator struct {
	targets []Target
	w       *WindowClause
	groups  map[winKey]*aggGroup
	order   []winKey
}

type winKey struct {
	group string
	idx   int64 // window index k: the window covering [k*step, k*step+size)
}

func newWindowAggregator(targets []Target, w *WindowClause) *windowAggregator {
	return &windowAggregator{targets: targets, w: w, groups: map[winKey]*aggGroup{}}
}

// floorDiv is integer division rounding toward negative infinity, so window
// alignment stays consistent for chronons before the epoch.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// finish folds the buffered pseudo-rows and emits one result row per
// populated (group, window) pair: the plain values, the aggregate results
// over that window's contributors, the window interval as the valid stamp,
// and the extension of the contributors' transaction stamps.
func (a *windowAggregator) finish(rows []ResultRow, res *Resultset) error {
	if len(rows) == 0 {
		return nil
	}
	size, step := a.w.Size, a.w.Step()

	// The finite extent [lo, hi) of the contributors' valid endpoints bounds
	// which windows exist; rows with open endpoints then contribute to every
	// in-range window they overlap. A single shared instant still gets its
	// chronon covered.
	lo, hi := temporal.Chronon(0), temporal.Chronon(0)
	found := false
	for i := range rows {
		for _, c := range [2]temporal.Chronon{rows[i].Valid.From, rows[i].Valid.To} {
			if !c.IsFinite() {
				continue
			}
			if !found || c < lo {
				lo = c
			}
			if !found || c > hi {
				hi = c
			}
			found = true
		}
	}
	if !found {
		return errf(a.w.Pos, "window clause needs at least one finite valid endpoint among the contributing rows")
	}
	if hi <= lo {
		hi = lo + 1
	}
	kmin := floorDiv(int64(lo)-size, step) + 1
	kmax := floorDiv(int64(hi)+step-1, step) - 1

	// Canonical fold order: sort the pseudo-rows by their canonical keys so
	// the per-accumulator fold sequence is scan-order independent.
	for i := range rows {
		if rows[i].key == "" {
			rows[i].key = rows[i].canonicalKey()
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })

	for i := range rows {
		row := &rows[i]
		ks, ke := kmin, kmax
		if row.Valid.From.IsFinite() {
			if k := floorDiv(int64(row.Valid.From)-size, step) + 1; k > ks {
				ks = k
			}
		}
		if row.Valid.To.IsFinite() {
			if k := floorDiv(int64(row.Valid.To)+step-1, step) - 1; k < ke {
				ke = k
			}
		}
		if ks > ke {
			continue
		}
		var gb strings.Builder
		for ti, t := range a.targets {
			if _, ok := t.Expr.(*Agg); ok {
				continue
			}
			v := row.Data[ti]
			fmt.Fprintf(&gb, "%d:%s|", v.Kind(), v.String())
		}
		group := gb.String()
		for k := ks; k <= ke; k++ {
			if err := a.fold(winKey{group: group, idx: k}, row); err != nil {
				return err
			}
		}
	}

	for _, wk := range a.order {
		g := a.groups[wk]
		row := ResultRow{
			Valid: temporal.Interval{
				From: temporal.Chronon(wk.idx * step),
				To:   temporal.Chronon(wk.idx*step + size),
			},
			Trans: g.trans,
		}
		pi, ai := 0, 0
		for _, t := range a.targets {
			if ag, isAgg := t.Expr.(*Agg); isAgg {
				v, err := g.accs[ai].result(ag)
				if err != nil {
					return err
				}
				row.Data = append(row.Data, v)
				ai++
			} else {
				row.Data = append(row.Data, g.plain[pi])
				pi++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return nil
}

// fold accumulates one pseudo-row into one (group, window) state.
func (a *windowAggregator) fold(wk winKey, row *ResultRow) error {
	g, ok := a.groups[wk]
	if !ok {
		g = &aggGroup{trans: row.Trans, accs: makeAccs(a.targets)}
		for ti, t := range a.targets {
			if _, isAgg := t.Expr.(*Agg); !isAgg {
				g.plain = append(g.plain, row.Data[ti])
			}
		}
		a.groups[wk] = g
		a.order = append(a.order, wk)
	} else {
		g.trans = g.trans.Extend(row.Trans)
	}
	g.rows++
	ai := 0
	for ti, t := range a.targets {
		ag, isAgg := t.Expr.(*Agg)
		if !isAgg {
			continue
		}
		if err := g.accs[ai].fold(ag, row.Data[ti]); err != nil {
			return err
		}
		ai++
	}
	return nil
}

// coalesceRows merges value-equivalent rows whose valid intervals overlap or
// meet — the taxonomy's coalescing operation, lifted from interval sets
// (temporal.Coalesce) to stamped tuples. Each merged row's valid interval is
// the extension of its contributors' and its transaction stamp the extension
// of theirs. The pass is idempotent and order-invariant: groups are swept in
// (From, To) order, so any permutation of the input produces the same rows.
func coalesceRows(rows []ResultRow) []ResultRow {
	if len(rows) <= 1 {
		return rows
	}
	groups := map[string][]ResultRow{}
	var order []string
	for _, row := range rows {
		var kb strings.Builder
		for _, v := range row.Data {
			fmt.Fprintf(&kb, "%d:%s|", v.Kind(), v.String())
		}
		k := kb.String()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], row)
	}
	out := rows[:0]
	for _, k := range order {
		g := groups[k]
		sort.Slice(g, func(i, j int) bool {
			if g[i].Valid.From != g[j].Valid.From {
				return g[i].Valid.From < g[j].Valid.From
			}
			if g[i].Valid.To != g[j].Valid.To {
				return g[i].Valid.To < g[j].Valid.To
			}
			if g[i].Trans.From != g[j].Trans.From {
				return g[i].Trans.From < g[j].Trans.From
			}
			return g[i].Trans.To < g[j].Trans.To
		})
		cur := g[0]
		for _, row := range g[1:] {
			if row.Valid.From <= cur.Valid.To {
				cur.Valid = cur.Valid.Extend(row.Valid)
				cur.Trans = cur.Trans.Extend(row.Trans)
				cur.key = "" // stamps changed; sortAndDedup recomputes
				continue
			}
			out = append(out, cur)
			cur = row
		}
		out = append(out, cur)
	}
	return out
}
