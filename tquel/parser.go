package tquel

import (
	"strconv"
	"strings"

	"tdb"
	"tdb/internal/value"
)

// parser is a recursive-descent parser over the token stream. Keywords are
// matched case-insensitively, as in Quel.
type parser struct {
	toks []Token
	pos  int
}

// Parse compiles TQuel source into a sequence of statements.
func Parse(src string) ([]Stmt, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Stmt
	for !p.atEOF() {
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().Kind == TokEOF }

func (p *parser) advance() Token {
	t := p.cur()
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

// isKeyword reports whether the current token is the given keyword
// (case-insensitive identifier match).
func (p *parser) isKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == TokIdent && strings.EqualFold(t.Text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return errf(p.cur().Pos, "expected %q, found %q", kw, p.cur().Text)
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	if t := p.cur(); t.Kind == TokPunct && t.Text == s {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return errf(p.cur().Pos, "expected %q, found %q", s, p.cur().Text)
	}
	return nil
}

func (p *parser) expectIdent() (Token, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return t, errf(t.Pos, "expected identifier, found %s %q", t.Kind, t.Text)
	}
	p.advance()
	return t, nil
}

func (p *parser) statement() (Stmt, error) {
	t := p.cur()
	switch {
	case p.isKeyword("create"):
		return p.createStmt()
	case p.isKeyword("destroy"):
		return p.destroyStmt()
	case p.isKeyword("range"):
		return p.rangeStmt()
	case p.isKeyword("retrieve"):
		return p.retrieveStmt()
	case p.isKeyword("explain"):
		return p.explainStmt()
	case p.isKeyword("append"):
		return p.appendStmt()
	case p.isKeyword("delete"):
		return p.deleteStmt()
	case p.isKeyword("replace"):
		return p.replaceStmt()
	default:
		return nil, errf(t.Pos, "expected a statement keyword, found %q", t.Text)
	}
}

// explainStmt parses "explain RETRIEVE". Only retrieve statements compile
// to a plan, so only they can be explained.
func (p *parser) explainStmt() (Stmt, error) {
	pos := p.advance().Pos // explain
	if !p.isKeyword("retrieve") {
		return nil, errf(p.cur().Pos, "explain expects a retrieve statement, found %q", p.cur().Text)
	}
	st, err := p.retrieveStmt()
	if err != nil {
		return nil, err
	}
	return &ExplainStmt{Pos: pos, Retrieve: st.(*RetrieveStmt)}, nil
}

var kindKeywords = map[string]tdb.Kind{
	"static":     tdb.Static,
	"rollback":   tdb.StaticRollback,
	"historical": tdb.Historical,
	"temporal":   tdb.Temporal,
}

func (p *parser) createStmt() (Stmt, error) {
	pos := p.advance().Pos // create
	st := &CreateStmt{Pos: pos, Kind: tdb.Static}
	for kw, k := range kindKeywords {
		if p.acceptKeyword(kw) {
			st.Kind = k
			break
		}
	}
	if p.acceptKeyword("event") {
		st.Event = true
	}
	p.acceptKeyword("relation") // optional noise word
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Name = name.Text
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		attr, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		typ, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		kind, err := value.KindOf(typ.Text)
		if err != nil {
			return nil, errf(typ.Pos, "unknown type %q", typ.Text)
		}
		st.Attrs = append(st.Attrs, AttrDef{Pos: attr.Pos, Name: attr.Text, Type: kind})
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("key") {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		for {
			k, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Keys = append(st.Keys, k.Text)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) destroyStmt() (Stmt, error) {
	pos := p.advance().Pos
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DestroyStmt{Pos: pos, Name: name.Text}, nil
}

func (p *parser) rangeStmt() (Stmt, error) {
	pos := p.advance().Pos // range
	if err := p.expectKeyword("of"); err != nil {
		return nil, err
	}
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("is"); err != nil {
		return nil, err
	}
	rel, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &RangeStmt{Pos: pos, Var: v.Text, Rel: rel.Text}, nil
}

func (p *parser) retrieveStmt() (Stmt, error) {
	pos := p.advance().Pos // retrieve
	st := &RetrieveStmt{Pos: pos}
	if p.acceptKeyword("into") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Into = name.Text
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		tgt, err := p.target()
		if err != nil {
			return nil, err
		}
		st.Targets = append(st.Targets, tgt)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	// Trailing clauses in any order, each at most once.
	for {
		switch {
		case p.isKeyword("valid"):
			if st.Valid != nil {
				return nil, errf(p.cur().Pos, "duplicate valid clause")
			}
			vc, err := p.validClause()
			if err != nil {
				return nil, err
			}
			st.Valid = vc
		case p.isKeyword("where"):
			if st.Where != nil {
				return nil, errf(p.cur().Pos, "duplicate where clause")
			}
			p.advance()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Where = e
		case p.isKeyword("when"):
			if st.When != nil {
				return nil, errf(p.cur().Pos, "duplicate when clause")
			}
			p.advance()
			te, err := p.temporalExpr()
			if err != nil {
				return nil, err
			}
			st.When = te
		case p.isKeyword("as"):
			if st.AsOf != nil {
				return nil, errf(p.cur().Pos, "duplicate as of clause")
			}
			ao, err := p.asOfClause()
			if err != nil {
				return nil, err
			}
			st.AsOf = ao
		case p.isKeyword("window"):
			if st.Window != nil {
				return nil, errf(p.cur().Pos, "duplicate window clause")
			}
			wc, err := p.windowClause()
			if err != nil {
				return nil, err
			}
			st.Window = wc
		case p.isKeyword("coalesce"):
			if st.Coalesce {
				return nil, errf(p.cur().Pos, "duplicate coalesce clause")
			}
			st.CoalescePos = p.advance().Pos
			st.Coalesce = true
		default:
			return st, nil
		}
	}
}

// windowClause parses "window N [slide M]" with N and M positive integer
// chronon counts.
func (p *parser) windowClause() (*WindowClause, error) {
	pos := p.advance().Pos // window
	size, err := p.chrononCount("window")
	if err != nil {
		return nil, err
	}
	wc := &WindowClause{Pos: pos, Size: size}
	if p.acceptKeyword("slide") {
		slide, err := p.chrononCount("slide")
		if err != nil {
			return nil, err
		}
		wc.Slide = slide
	}
	return wc, nil
}

// chrononCount parses one positive integer duration operand.
func (p *parser) chrononCount(clause string) (int64, error) {
	t := p.cur()
	if t.Kind != TokInt {
		return 0, errf(t.Pos, "%s expects a chronon count, found %q", clause, t.Text)
	}
	p.advance()
	n, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil || n <= 0 {
		return 0, errf(t.Pos, "%s size must be a positive chronon count, got %q", clause, t.Text)
	}
	return n, nil
}

// target parses "[name =] expr"; a bare "VAR.attr" derives its name.
func (p *parser) target() (Target, error) {
	pos := p.cur().Pos
	tgt := Target{Pos: pos}
	// Lookahead for "ident =" (but not "ident ." which is an AttrRef, and
	// not "ident = ..." inside an expression — target names are only at
	// the top level, so "name =" here is unambiguous: Quel uses the same
	// rule).
	if p.cur().Kind == TokIdent && p.peekPunct(1, "=") {
		name := p.advance()
		p.advance() // =
		tgt.Name = name.Text
	}
	e, err := p.expr()
	if err != nil {
		return tgt, err
	}
	tgt.Expr = e
	return tgt, nil
}

func (p *parser) peekPunct(ahead int, s string) bool {
	i := p.pos + ahead
	if i >= len(p.toks) {
		return false
	}
	return p.toks[i].Kind == TokPunct && p.toks[i].Text == s
}

func (p *parser) validClause() (*ValidClause, error) {
	pos := p.advance().Pos // valid
	vc := &ValidClause{Pos: pos}
	switch {
	case p.acceptKeyword("at"):
		e, err := p.temporalExpr()
		if err != nil {
			return nil, err
		}
		vc.At = e
	case p.acceptKeyword("from"):
		from, err := p.temporalExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("to"); err != nil {
			return nil, err
		}
		to, err := p.temporalExpr()
		if err != nil {
			return nil, err
		}
		vc.From, vc.To = from, to
	default:
		return nil, errf(p.cur().Pos, "expected 'at' or 'from' after 'valid'")
	}
	return vc, nil
}

func (p *parser) asOfClause() (*AsOfClause, error) {
	pos := p.advance().Pos // as
	if err := p.expectKeyword("of"); err != nil {
		return nil, err
	}
	at, err := p.temporalExpr()
	if err != nil {
		return nil, err
	}
	ao := &AsOfClause{Pos: pos, At: at}
	if p.acceptKeyword("through") {
		through, err := p.temporalExpr()
		if err != nil {
			return nil, err
		}
		ao.Through = through
	}
	return ao, nil
}

func (p *parser) appendStmt() (Stmt, error) {
	pos := p.advance().Pos // append
	if err := p.expectKeyword("to"); err != nil {
		return nil, err
	}
	rel, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &AppendStmt{Pos: pos, Rel: rel.Text}
	sets, err := p.setClauses()
	if err != nil {
		return nil, err
	}
	st.Sets = sets
	if p.isKeyword("valid") {
		vc, err := p.validClause()
		if err != nil {
			return nil, err
		}
		st.Valid = vc
	}
	return st, nil
}

func (p *parser) setClauses() ([]SetClause, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var out []SetClause
	for {
		attr, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		out = append(out, SetClause{Pos: attr.Pos, Attr: attr.Text, Expr: e})
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) deleteStmt() (Stmt, error) {
	pos := p.advance().Pos // delete
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Pos: pos, Var: v.Text}
	for {
		switch {
		case p.isKeyword("where") && st.Where == nil:
			p.advance()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Where = e
		case p.isKeyword("when") && st.When == nil:
			p.advance()
			te, err := p.temporalExpr()
			if err != nil {
				return nil, err
			}
			st.When = te
		case p.isKeyword("valid") && st.Valid == nil:
			vc, err := p.validClause()
			if err != nil {
				return nil, err
			}
			st.Valid = vc
		default:
			return st, nil
		}
	}
}

func (p *parser) replaceStmt() (Stmt, error) {
	pos := p.advance().Pos // replace
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &ReplaceStmt{Pos: pos, Var: v.Text}
	sets, err := p.setClauses()
	if err != nil {
		return nil, err
	}
	st.Sets = sets
	for {
		switch {
		case p.isKeyword("where") && st.Where == nil:
			p.advance()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.Where = e
		case p.isKeyword("when") && st.When == nil:
			p.advance()
			te, err := p.temporalExpr()
			if err != nil {
				return nil, err
			}
			st.When = te
		case p.isKeyword("valid") && st.Valid == nil:
			vc, err := p.validClause()
			if err != nil {
				return nil, err
			}
			st.Valid = vc
		default:
			return st, nil
		}
	}
}

// ---- scalar expressions ----
//
// expr     := orExpr
// orExpr   := andExpr { "or" andExpr }
// andExpr  := notExpr { "and" notExpr }
// notExpr  := "not" notExpr | cmpExpr
// cmpExpr  := primary [ op primary ]
// primary  := literal | VAR.attr | "(" expr ")"

func (p *parser) expr() (Expr, error) {
	return p.orExpr()
}

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("or") {
		pos := p.advance().Pos
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BoolOp{Pos: pos, Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("and") {
		pos := p.advance().Pos
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BoolOp{Pos: pos, Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.isKeyword("not") {
		pos := p.advance().Pos
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &BoolOp{Pos: pos, Op: "not", L: e}, nil
	}
	return p.cmpExpr()
}

var cmpOps = map[string]bool{"=": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

// aggFns are the aggregate functions accepted in target lists.
var aggFns = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true, "any": true,
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct && cmpOps[t.Text] {
		p.advance()
		r, err := p.primary()
		if err != nil {
			return nil, err
		}
		return &Cmp{Pos: t.Pos, Op: t.Text, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokString:
		p.advance()
		return &Lit{Pos: t.Pos, Value: tdb.String(t.Text), Text: t.Text}, nil
	case t.Kind == TokInt:
		p.advance()
		v, err := value.Parse(value.Int, t.Text)
		if err != nil {
			return nil, errf(t.Pos, "bad integer literal %q", t.Text)
		}
		return &Lit{Pos: t.Pos, Value: v, Text: t.Text}, nil
	case t.Kind == TokFloat:
		p.advance()
		v, err := value.Parse(value.Float, t.Text)
		if err != nil {
			return nil, errf(t.Pos, "bad float literal %q", t.Text)
		}
		return &Lit{Pos: t.Pos, Value: v, Text: t.Text}, nil
	case t.Kind == TokPunct && t.Text == "(":
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokIdent && (strings.EqualFold(t.Text, "true") || strings.EqualFold(t.Text, "false")):
		p.advance()
		return &Lit{Pos: t.Pos, Value: tdb.Bool(strings.EqualFold(t.Text, "true")), Text: t.Text}, nil
	case t.Kind == TokIdent && aggFns[strings.ToLower(t.Text)] && p.peekPunct(1, "("):
		p.advance()
		p.advance() // (
		arg, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &Agg{Pos: t.Pos, Fn: strings.ToLower(t.Text), Arg: arg}, nil
	case t.Kind == TokIdent:
		p.advance()
		if err := p.expectPunct("."); err != nil {
			return nil, errf(t.Pos, "expected VAR.attribute, string, or number; found bare %q", t.Text)
		}
		attr, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &AttrRef{Pos: t.Pos, Var: t.Text, Attr: attr.Text}, nil
	default:
		return nil, errf(t.Pos, "expected expression, found %q", t.Text)
	}
}

// ---- temporal expressions ----
//
// tExpr    := tOr
// tOr      := tAnd { "or" tAnd }
// tAnd     := tNot { "and" tNot }
// tNot     := "not" tNot | tRel
// tRel     := tElem [ ("overlap"|"precede"|"equal") tElem ]
// tElem    := ("start"|"end") "of" tElem
//           | tAtom { "extend" tAtom }
// tAtom    := VAR | timeLiteral | "(" tExpr ")"

func (p *parser) temporalExpr() (TemporalExpr, error) {
	return p.tOr()
}

func (p *parser) tOr() (TemporalExpr, error) {
	l, err := p.tAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("or") {
		pos := p.advance().Pos
		r, err := p.tAnd()
		if err != nil {
			return nil, err
		}
		l = &TempBool{Pos: pos, Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) tAnd() (TemporalExpr, error) {
	l, err := p.tNot()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("and") {
		pos := p.advance().Pos
		r, err := p.tNot()
		if err != nil {
			return nil, err
		}
		l = &TempBool{Pos: pos, Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) tNot() (TemporalExpr, error) {
	if p.isKeyword("not") {
		pos := p.advance().Pos
		e, err := p.tNot()
		if err != nil {
			return nil, err
		}
		return &TempBool{Pos: pos, Op: "not", L: e}, nil
	}
	return p.tRel()
}

func (p *parser) tRel() (TemporalExpr, error) {
	l, err := p.tElem()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"overlap", "precede", "equal"} {
		if p.isKeyword(op) {
			pos := p.advance().Pos
			r, err := p.tElem()
			if err != nil {
				return nil, err
			}
			return &TempRel{Pos: pos, Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

// tElem := tUnary { "extend" tUnary }
func (p *parser) tElem() (TemporalExpr, error) {
	l, err := p.tUnary()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("extend") {
		pos := p.advance().Pos
		r, err := p.tUnary()
		if err != nil {
			return nil, err
		}
		l = &Extend{Pos: pos, L: l, R: r}
	}
	return l, nil
}

// tUnary := ("start"|"end") "of" tUnary | tAtom
func (p *parser) tUnary() (TemporalExpr, error) {
	if p.isKeyword("start") || p.isKeyword("end") {
		kw := p.advance()
		if err := p.expectKeyword("of"); err != nil {
			return nil, err
		}
		of, err := p.tUnary()
		if err != nil {
			return nil, err
		}
		if strings.EqualFold(kw.Text, "start") {
			return &StartOf{Pos: kw.Pos, Of: of}, nil
		}
		return &EndOf{Pos: kw.Pos, Of: of}, nil
	}
	return p.tAtom()
}

func (p *parser) tAtom() (TemporalExpr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokString:
		p.advance()
		return &TimeLit{Pos: t.Pos, Text: t.Text}, nil
	case t.Kind == TokPunct && t.Text == "(":
		p.advance()
		e, err := p.temporalExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokIdent && (strings.EqualFold(t.Text, "now") ||
		strings.EqualFold(t.Text, "forever") || strings.EqualFold(t.Text, "beginning")):
		p.advance()
		return &TimeLit{Pos: t.Pos, Text: strings.ToLower(t.Text)}, nil
	case t.Kind == TokIdent:
		p.advance()
		return &VarInterval{Pos: t.Pos, Var: t.Text}, nil
	default:
		return nil, errf(t.Pos, "expected temporal expression, found %q", t.Text)
	}
}
