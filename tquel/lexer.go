package tquel

import (
	"strings"
	"unicode"
)

// lexer turns TQuel source into tokens. Comments run from "--" or "/*" in
// the usual way; identifiers are letters, digits and underscores starting
// with a letter; the punctuation set covers Quel's comparison operators.
type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

// Lex tokenizes the whole input, returning the tokens (ending with TokEOF)
// or a positioned error.
func Lex(src string) ([]Token, error) {
	lx := newLexer(src)
	var out []Token
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == TokEOF {
			return out, nil
		}
	}
}

func (lx *lexer) peek() rune {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peek2() rune {
	if lx.pos+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+1]
}

func (lx *lexer) advance() rune {
	r := lx.src[lx.pos]
	lx.pos++
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

func (lx *lexer) here() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *lexer) next() (Token, error) {
	for {
		// Skip whitespace.
		for lx.pos < len(lx.src) && unicode.IsSpace(lx.peek()) {
			lx.advance()
		}
		// Skip comments.
		if lx.peek() == '-' && lx.peek2() == '-' {
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
			continue
		}
		if lx.peek() == '/' && lx.peek2() == '*' {
			start := lx.here()
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return Token{}, errf(start, "unterminated comment")
			}
			continue
		}
		break
	}
	pos := lx.here()
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	r := lx.peek()
	switch {
	case unicode.IsLetter(r) || r == '_':
		var b strings.Builder
		for lx.pos < len(lx.src) {
			r := lx.peek()
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
				break
			}
			b.WriteRune(lx.advance())
		}
		return Token{Kind: TokIdent, Text: b.String(), Pos: pos}, nil
	case unicode.IsDigit(r):
		var b strings.Builder
		isFloat := false
		for lx.pos < len(lx.src) {
			r := lx.peek()
			if r == '.' && !isFloat && unicode.IsDigit(lx.peek2()) {
				isFloat = true
				b.WriteRune(lx.advance())
				continue
			}
			if !unicode.IsDigit(r) {
				break
			}
			b.WriteRune(lx.advance())
		}
		kind := TokInt
		if isFloat {
			kind = TokFloat
		}
		return Token{Kind: kind, Text: b.String(), Pos: pos}, nil
	case r == '"':
		lx.advance()
		var b strings.Builder
		for {
			if lx.pos >= len(lx.src) {
				return Token{}, errf(pos, "unterminated string literal")
			}
			c := lx.advance()
			if c == '"' {
				return Token{Kind: TokString, Text: b.String(), Pos: pos}, nil
			}
			if c == '\\' && lx.pos < len(lx.src) {
				e := lx.advance()
				switch e {
				case 'n':
					b.WriteRune('\n')
				case 't':
					b.WriteRune('\t')
				case '"', '\\':
					b.WriteRune(e)
				default:
					return Token{}, errf(pos, "unknown escape \\%c in string", e)
				}
				continue
			}
			b.WriteRune(c)
		}
	case r == '!' || r == '<' || r == '>':
		lx.advance()
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: TokPunct, Text: string(r) + "=", Pos: pos}, nil
		}
		if r == '!' {
			return Token{}, errf(pos, "unexpected '!': did you mean '!='?")
		}
		return Token{Kind: TokPunct, Text: string(r), Pos: pos}, nil
	case strings.ContainsRune("(),.=-+", r):
		lx.advance()
		return Token{Kind: TokPunct, Text: string(r), Pos: pos}, nil
	default:
		return Token{}, errf(pos, "unexpected character %q", string(r))
	}
}
