package tquel

import (
	"strconv"
	"strings"
)

// formatRetrieve renders a retrieve statement into a canonical string for
// use as part of a query-cache key: two parses producing structurally equal
// ASTs render identically regardless of the whitespace, clause order the
// grammar fixes anyway, or commentary in the original source. The rendering
// is unambiguous (literals are kind-tagged and quoted, every operator
// application is parenthesized) so distinct queries cannot collide; it is
// not meant to be re-parseable.
func formatRetrieve(n *RetrieveStmt) string {
	var b strings.Builder
	b.Grow(128)
	b.WriteString("retrieve")
	if n.Into != "" {
		b.WriteString(" into ")
		b.WriteString(n.Into)
	}
	b.WriteString(" (")
	for i, t := range n.Targets {
		if i > 0 {
			b.WriteByte(',')
		}
		if t.Name != "" {
			b.WriteString(t.Name)
			b.WriteByte('=')
		}
		formatExpr(&b, t.Expr)
	}
	b.WriteByte(')')
	if n.Valid != nil {
		if n.Valid.At != nil {
			b.WriteString(" valid at ")
			formatTemporal(&b, n.Valid.At)
		} else {
			b.WriteString(" valid from ")
			formatTemporal(&b, n.Valid.From)
			b.WriteString(" to ")
			formatTemporal(&b, n.Valid.To)
		}
	}
	if n.Where != nil {
		b.WriteString(" where ")
		formatExpr(&b, n.Where)
	}
	if n.When != nil {
		b.WriteString(" when ")
		formatTemporal(&b, n.When)
	}
	if n.AsOf != nil {
		b.WriteString(" as of ")
		formatTemporal(&b, n.AsOf.At)
		if n.AsOf.Through != nil {
			b.WriteString(" through ")
			formatTemporal(&b, n.AsOf.Through)
		}
	}
	if n.Window != nil {
		b.WriteString(" window ")
		b.WriteString(strconv.FormatInt(n.Window.Size, 10))
		if n.Window.Slide > 0 {
			b.WriteString(" slide ")
			b.WriteString(strconv.FormatInt(n.Window.Slide, 10))
		}
	}
	if n.Coalesce {
		b.WriteString(" coalesce")
	}
	return b.String()
}

func formatExpr(b *strings.Builder, e Expr) {
	switch n := e.(type) {
	case *AttrRef:
		b.WriteString(n.Var)
		b.WriteByte('.')
		b.WriteString(n.Attr)
	case *Lit:
		// Kind-tag plus quoted original spelling: "10" the string and 10
		// the int render differently, and no literal can fake an operator.
		b.WriteString(n.Value.Kind().String())
		b.WriteString(strconv.Quote(n.Text))
	case *Cmp:
		b.WriteByte('(')
		formatExpr(b, n.L)
		b.WriteString(n.Op)
		formatExpr(b, n.R)
		b.WriteByte(')')
	case *Agg:
		b.WriteString(n.Fn)
		b.WriteByte('(')
		formatExpr(b, n.Arg)
		b.WriteByte(')')
	case *BoolOp:
		b.WriteByte('(')
		b.WriteString(n.Op)
		b.WriteByte(' ')
		formatExpr(b, n.L)
		if n.R != nil {
			b.WriteByte(' ')
			formatExpr(b, n.R)
		}
		b.WriteByte(')')
	default:
		// Unknown node kinds must not silently collide with anything.
		b.WriteString("?expr?")
	}
}

func formatTemporal(b *strings.Builder, e TemporalExpr) {
	switch n := e.(type) {
	case *VarInterval:
		b.WriteByte('$')
		b.WriteString(n.Var)
	case *TimeLit:
		b.WriteString("time")
		b.WriteString(strconv.Quote(n.Text))
	case *StartOf:
		b.WriteString("start(")
		formatTemporal(b, n.Of)
		b.WriteByte(')')
	case *EndOf:
		b.WriteString("end(")
		formatTemporal(b, n.Of)
		b.WriteByte(')')
	case *Extend:
		b.WriteString("(extend ")
		formatTemporal(b, n.L)
		b.WriteByte(' ')
		formatTemporal(b, n.R)
		b.WriteByte(')')
	case *TempRel:
		b.WriteByte('(')
		b.WriteString(n.Op)
		b.WriteByte(' ')
		formatTemporal(b, n.L)
		b.WriteByte(' ')
		formatTemporal(b, n.R)
		b.WriteByte(')')
	case *TempBool:
		b.WriteByte('(')
		b.WriteString(n.Op)
		b.WriteByte(' ')
		formatTemporal(b, n.L)
		if n.R != nil {
			b.WriteByte(' ')
			formatTemporal(b, n.R)
		}
		b.WriteByte(')')
	default:
		b.WriteString("?temporal?")
	}
}

// mentionsNow reports whether a temporal expression references the "now"
// spelling anywhere. Scalar (where-clause) expressions cannot smuggle a
// clock reference: string literals only become chronons via temporal.Parse,
// which rejects "now". So this walk over the when/valid/as-of clauses is a
// complete clock-dependence test for a retrieve.
func mentionsNow(e TemporalExpr) bool {
	switch n := e.(type) {
	case *TimeLit:
		return n.Text == "now"
	case *StartOf:
		return mentionsNow(n.Of)
	case *EndOf:
		return mentionsNow(n.Of)
	case *Extend:
		return mentionsNow(n.L) || mentionsNow(n.R)
	case *TempRel:
		return mentionsNow(n.L) || mentionsNow(n.R)
	case *TempBool:
		return mentionsNow(n.L) || (n.R != nil && mentionsNow(n.R))
	case *VarInterval:
		return false
	case nil:
		return false
	default:
		// Be conservative with nodes this walk doesn't know.
		return true
	}
}
