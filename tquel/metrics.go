package tquel

import "tdb/internal/obs"

// Always-on query counters. Per-row work accumulates in locals inside the
// executor and lands here as one atomic add per statement, so the scan loop
// itself carries no instrumentation cost.
var (
	mRowsScanned = obs.Default.Counter("tdb_query_rows_scanned_total",
		"Bindings examined per variable while evaluating retrieve statements: each candidate version bound to a range variable, during planner prefiltering or in the join loop, counts once.")
	mRowsReturned = obs.Default.Counter("tdb_query_rows_returned_total",
		"Result rows produced by retrieve statements (before into-storage).")
	mStatements = map[string]*obs.Counter{
		"create":   stmtCounter("create"),
		"destroy":  stmtCounter("destroy"),
		"range":    stmtCounter("range"),
		"retrieve": stmtCounter("retrieve"),
		"explain":  stmtCounter("explain"),
		"append":   stmtCounter("append"),
		"delete":   stmtCounter("delete"),
		"replace":  stmtCounter("replace"),
	}
	mStatementErrors = obs.Default.Counter("tdb_query_statement_errors_total",
		"Statements that failed to execute.")

	// Planner counters (see docs/planner.md). All are zero when a session
	// runs with DisablePlanner.
	mConjunctsPushed = obs.Default.Counter("tdb_query_conjuncts_pushed_total",
		"Where/when conjuncts the planner evaluated before or during per-variable prefiltering instead of at the innermost join depth.")
	mWhenIndexed = obs.Default.Counter("tdb_query_when_indexed_total",
		"When-clause overlap conjuncts answered through a store's valid-time interval index.")
	mHashJoinBuildRows = obs.Default.Counter("tdb_query_hash_join_build_rows_total",
		"Rows hashed into equi-join build tables.")
	mHashJoinProbes = obs.Default.Counter("tdb_query_hash_join_probes_total",
		"Hash-table probes issued while executing equi-joins.")
	mJoinFallbacks = obs.Default.Counter("tdb_query_join_fallback_total",
		"Inner join variables executed as nested loops because no hashable equi-join conjunct applied.")
	mJoinPairs = obs.Default.Counter("tdb_query_join_pairs_considered_total",
		"Candidate bindings examined at inner join depths (depth >= 1).")
	mProbeSkips = obs.Default.Counter("tdb_query_overlap_probe_skips_total",
		"Interval-index probes the planner skipped because statistics estimated the overlap window unselective (scan-and-filter chosen instead).")

	// Parallel execution counters (see docs/planner.md, "Parallel
	// execution"). Both stay zero for serial sessions (SetParallelism <= 1)
	// and for queries below the fan-out threshold.
	mParallelQueries = obs.Default.Counter("tdb_tquel_parallel_queries",
		"Retrieve statements whose join loop ran on the parallel worker pool.")
	mParallelWorkers = obs.Default.Counter("tdb_tquel_parallel_workers",
		"Workers launched across all parallel retrieves (sum of per-query pool sizes).")
)

func stmtCounter(kind string) *obs.Counter {
	return obs.Default.Counter(`tdb_query_statements_total{stmt="`+kind+`"}`,
		"Statements executed by kind.")
}

func countStmt(kind string) {
	if c, ok := mStatements[kind]; ok {
		c.Inc()
	}
}
