package tquel

import "tdb/internal/obs"

// Always-on query counters. Per-row work accumulates in locals inside the
// executor and lands here as one atomic add per statement, so the scan loop
// itself carries no instrumentation cost.
var (
	mRowsScanned = obs.Default.Counter("tdb_query_rows_scanned_total",
		"Tuple versions bound while evaluating retrieve statements.")
	mRowsReturned = obs.Default.Counter("tdb_query_rows_returned_total",
		"Result rows produced by retrieve statements (before into-storage).")
	mStatements = map[string]*obs.Counter{
		"create":   stmtCounter("create"),
		"destroy":  stmtCounter("destroy"),
		"range":    stmtCounter("range"),
		"retrieve": stmtCounter("retrieve"),
		"append":   stmtCounter("append"),
		"delete":   stmtCounter("delete"),
		"replace":  stmtCounter("replace"),
	}
	mStatementErrors = obs.Default.Counter("tdb_query_statement_errors_total",
		"Statements that failed to execute.")
)

func stmtCounter(kind string) *obs.Counter {
	return obs.Default.Counter(`tdb_query_statements_total{stmt="`+kind+`"}`,
		"Statements executed by kind.")
}

func countStmt(kind string) {
	if c, ok := mStatements[kind]; ok {
		c.Inc()
	}
}
