package tquel

import (
	"tdb"
	"tdb/internal/value"
	"tdb/temporal"
)

// binding is one range variable's current tuple during evaluation.
type binding struct {
	rel   *tdb.Relation
	data  tdb.Tuple
	valid temporal.Interval
	trans temporal.Interval
}

// env is the evaluation context: variable bindings plus the statement's
// "now".
type env struct {
	vars map[string]*binding
	now  temporal.Chronon
}

// evalExpr evaluates a scalar expression to a value.
func evalExpr(e Expr, ev *env) (tdb.Value, error) {
	switch n := e.(type) {
	case *Lit:
		return n.Value, nil
	case *AttrRef:
		b, ok := ev.vars[n.Var]
		if !ok {
			return tdb.Value{}, errf(n.Pos, "unknown range variable %q", n.Var)
		}
		idx := n.idx - 1
		if idx < 0 {
			if idx = b.rel.Schema().Index(n.Attr); idx < 0 {
				return tdb.Value{}, errf(n.Pos, "relation %q has no attribute %q", b.rel.Name(), n.Attr)
			}
		}
		return b.data[idx], nil
	case *Cmp:
		ok, err := evalCmp(n, ev)
		if err != nil {
			return tdb.Value{}, err
		}
		return tdb.Bool(ok), nil
	case *BoolOp:
		ok, err := evalPred(n, ev)
		if err != nil {
			return tdb.Value{}, err
		}
		return tdb.Bool(ok), nil
	default:
		return tdb.Value{}, errf(e.Position(), "unsupported expression")
	}
}

// evalPred evaluates an expression as a predicate.
func evalPred(e Expr, ev *env) (bool, error) {
	switch n := e.(type) {
	case *Cmp:
		return evalCmp(n, ev)
	case *BoolOp:
		switch n.Op {
		case "not":
			v, err := evalPred(n.L, ev)
			return !v, err
		case "and":
			l, err := evalPred(n.L, ev)
			if err != nil || !l {
				return false, err
			}
			return evalPred(n.R, ev)
		default: // or
			l, err := evalPred(n.L, ev)
			if err != nil || l {
				return l, err
			}
			return evalPred(n.R, ev)
		}
	case *Lit:
		if n.Value.Kind() == value.Bool {
			return n.Value.Bool(), nil
		}
		return false, errf(n.Pos, "literal %q is not a predicate", n.Text)
	case *AttrRef:
		v, err := evalExpr(n, ev)
		if err != nil {
			return false, err
		}
		if v.Kind() == value.Bool {
			return v.Bool(), nil
		}
		return false, errf(n.Pos, "attribute %s.%s is not boolean", n.Var, n.Attr)
	default:
		return false, errf(e.Position(), "expected a predicate")
	}
}

// evalCmp evaluates a comparison, coercing string literals to instants when
// compared against instant attributes (the paper writes dates as quoted
// strings: f.effective = "12/01/82").
func evalCmp(n *Cmp, ev *env) (bool, error) {
	l, err := evalExpr(n.L, ev)
	if err != nil {
		return false, err
	}
	r, err := evalExpr(n.R, ev)
	if err != nil {
		return false, err
	}
	l, r, err = coerce(n, l, r)
	if err != nil {
		return false, err
	}
	c, err := value.Compare(l, r)
	if err != nil {
		return false, errf(n.Pos, "%v", err)
	}
	switch n.Op {
	case "=":
		return c == 0, nil
	case "!=":
		return c != 0, nil
	case "<":
		return c < 0, nil
	case "<=":
		return c <= 0, nil
	case ">":
		return c > 0, nil
	default: // >=
		return c >= 0, nil
	}
}

func coerce(n *Cmp, l, r tdb.Value) (tdb.Value, tdb.Value, error) {
	if l.Kind() == r.Kind() {
		return l, r, nil
	}
	// string literal vs instant: parse the literal as a date.
	if l.Kind() == value.Instant && r.Kind() == value.String {
		c, err := temporal.Parse(r.Str())
		if err != nil {
			return l, r, errf(n.Pos, "cannot parse %q as a date", r.Str())
		}
		return l, tdb.Instant(c), nil
	}
	if l.Kind() == value.String && r.Kind() == value.Instant {
		c, err := temporal.Parse(l.Str())
		if err != nil {
			return l, r, errf(n.Pos, "cannot parse %q as a date", l.Str())
		}
		return tdb.Instant(c), r, nil
	}
	// int vs float: widen.
	if l.Kind() == value.Int && r.Kind() == value.Float {
		return tdb.Float(float64(l.Int())), r, nil
	}
	if l.Kind() == value.Float && r.Kind() == value.Int {
		return l, tdb.Float(float64(r.Int())), nil
	}
	return l, r, errf(n.Pos, "cannot compare %s with %s", l.Kind(), r.Kind())
}

// evalElement evaluates a temporal expression to an element (interval or
// event).
func evalElement(e TemporalExpr, ev *env) (element, error) {
	switch n := e.(type) {
	case *VarInterval:
		b, ok := ev.vars[n.Var]
		if !ok {
			return element{}, errf(n.Pos, "unknown range variable %q", n.Var)
		}
		return element{iv: b.valid, isEvent: b.rel.Event()}, nil
	case *TimeLit:
		c, err := resolveTimeLit(n, ev)
		if err != nil {
			return element{}, err
		}
		return element{iv: temporal.At(c), isEvent: true}, nil
	case *StartOf:
		of, err := evalElement(n.Of, ev)
		if err != nil {
			return element{}, err
		}
		return element{iv: temporal.At(of.iv.From), isEvent: true}, nil
	case *EndOf:
		of, err := evalElement(n.Of, ev)
		if err != nil {
			return element{}, err
		}
		if of.isEvent {
			return of, nil
		}
		// "end of" denotes the last chronon *in* the interval, so that
		// "start of x extend end of x" reconstructs x. An unbounded
		// interval's end is the last representable chronon.
		last := of.iv.To.Prev()
		if !of.iv.To.IsFinite() {
			last = temporal.Forever - 1
		}
		return element{iv: temporal.At(last), isEvent: true}, nil
	case *Extend:
		l, err := evalElement(n.L, ev)
		if err != nil {
			return element{}, err
		}
		r, err := evalElement(n.R, ev)
		if err != nil {
			return element{}, err
		}
		return element{iv: l.iv.Extend(r.iv)}, nil
	default:
		return element{}, errf(e.Position(), "expected an event or interval expression, found a predicate")
	}
}

// evalTemporalPred evaluates a temporal expression as a predicate.
func evalTemporalPred(e TemporalExpr, ev *env) (bool, error) {
	switch n := e.(type) {
	case *TempRel:
		l, err := evalElement(n.L, ev)
		if err != nil {
			return false, err
		}
		r, err := evalElement(n.R, ev)
		if err != nil {
			return false, err
		}
		switch n.Op {
		case "overlap":
			return l.iv.Overlaps(r.iv), nil
		case "precede":
			return l.iv.Precedes(r.iv), nil
		default: // equal
			return l.iv.Equal(r.iv), nil
		}
	case *TempBool:
		switch n.Op {
		case "not":
			v, err := evalTemporalPred(n.L, ev)
			return !v, err
		case "and":
			l, err := evalTemporalPred(n.L, ev)
			if err != nil || !l {
				return false, err
			}
			return evalTemporalPred(n.R, ev)
		default: // or
			l, err := evalTemporalPred(n.L, ev)
			if err != nil || l {
				return l, err
			}
			return evalTemporalPred(n.R, ev)
		}
	default:
		return false, errf(e.Position(), "when clause needs a temporal predicate (overlap, precede, equal)")
	}
}

// resolveTimeLit parses a time literal, honoring the special spellings.
func resolveTimeLit(n *TimeLit, ev *env) (temporal.Chronon, error) {
	switch n.Text {
	case "now":
		return ev.now, nil
	case "forever":
		return temporal.Forever, nil
	case "beginning":
		return temporal.Beginning, nil
	}
	c, err := temporal.Parse(n.Text)
	if err != nil {
		return 0, errf(n.Pos, "cannot parse %q as a date", n.Text)
	}
	return c, nil
}

// evalEvent evaluates a temporal expression and coerces it to an event
// chronon (the start, for interval operands) — the shape needed by valid
// from/to and as of clauses.
func evalEvent(e TemporalExpr, ev *env) (temporal.Chronon, error) {
	el, err := evalElement(e, ev)
	if err != nil {
		return 0, err
	}
	return el.iv.From, nil
}

// temporalVars collects the range variables referenced by a temporal
// expression.
func temporalVars(e TemporalExpr, into map[string]bool) {
	switch n := e.(type) {
	case *VarInterval:
		into[n.Var] = true
	case *StartOf:
		temporalVars(n.Of, into)
	case *EndOf:
		temporalVars(n.Of, into)
	case *Extend:
		temporalVars(n.L, into)
		temporalVars(n.R, into)
	case *TempRel:
		temporalVars(n.L, into)
		temporalVars(n.R, into)
	case *TempBool:
		temporalVars(n.L, into)
		if n.R != nil {
			temporalVars(n.R, into)
		}
	}
}

// exprVars collects the range variables referenced by a scalar expression.
func exprVars(e Expr, into map[string]bool) {
	switch n := e.(type) {
	case *AttrRef:
		into[n.Var] = true
	case *Cmp:
		exprVars(n.L, into)
		exprVars(n.R, into)
	case *BoolOp:
		exprVars(n.L, into)
		if n.R != nil {
			exprVars(n.R, into)
		}
	case *Agg:
		exprVars(n.Arg, into)
	}
}
