package tquel

import (
	"fmt"
	"strconv"
	"strings"

	"tdb"
	"tdb/temporal"
)

// execExplain compiles the wrapped retrieve exactly as execution would —
// same analysis, same candidate fetch and prefiltering, same ordering and
// probe wiring — then renders the resulting plan instead of running the
// join loop. The rendered text is deterministic: every number in it is
// either an exact count or a statistics estimate, and both are pure
// functions of the database state and the statement (the plan-regression
// corpus in explain_test.go pins the output).
func (s *Session) execExplain(n *ExplainStmt) (*Outcome, error) {
	q := n.Retrieve
	if err := s.checkRetrieve(q); err != nil {
		return nil, err
	}
	ev := &env{vars: map[string]*binding{}, now: s.now()}

	var asOf, through temporal.Chronon
	hasAsOf, hasThrough := false, false
	if q.AsOf != nil {
		var err error
		asOf, err = evalEvent(q.AsOf.At, ev)
		if err != nil {
			return nil, err
		}
		hasAsOf = true
		if q.AsOf.Through != nil {
			if through, err = evalEvent(q.AsOf.Through, ev); err != nil {
				return nil, err
			}
			if through < asOf {
				return nil, errf(q.AsOf.Pos, "as of window is inverted: %v through %v", asOf, through)
			}
			hasThrough = true
		}
	}

	order := retrieveVars(q)
	rels := make([]*tdb.Relation, len(order))
	for i, v := range order {
		rel, err := s.resolveVar(q.Pos, v)
		if err != nil {
			return nil, err
		}
		rels[i] = rel
	}

	if s.noPlanner {
		var b strings.Builder
		b.WriteString("plan: naive nested loop (planner disabled)")
		for _, v := range order {
			fmt.Fprintf(&b, "\n  bind %s (%s), all predicates innermost", v, s.ranges[v])
		}
		return &Outcome{Stmt: "explain", Msg: b.String()}, nil
	}

	pl, err := s.buildPlan(q, order, rels, ev, asOf, through, hasAsOf, hasThrough)
	if err != nil {
		return nil, err
	}
	s.lastPlan = pl
	var agg *aggregator
	if q.Window == nil && hasAggregates(q.Targets) {
		// Windowed aggregation buffers mergeable pseudo-rows, so it keeps
		// the parallel dispatch; only whole-relation aggregation folds
		// serially (mirroring execRetrieve's dispatch).
		agg = &aggregator{}
	}
	return &Outcome{Stmt: "explain", Msg: renderPlan(s, pl, agg)}, nil
}

// renderPlan formats a compiled plan, one line per binding depth plus a
// cost footer and the serial-vs-parallel dispatch the executor would pick.
func renderPlan(s *Session, pl *queryPlan, agg *aggregator) string {
	var b strings.Builder
	mode := "on"
	if !pl.statsUsed {
		mode = "off"
	}
	fmt.Fprintf(&b, "plan (statistics %s)", mode)
	if pl.emptyResult {
		b.WriteString("\n  empty result: a variable-free conjunct is false")
		return b.String()
	}
	for d := range pl.vars {
		pv := &pl.vars[d]
		fmt.Fprintf(&b, "\n  %d. %s (%s): %d candidate(s)", d+1, pv.name, pv.rel.Name(), len(pv.versions))
		switch {
		case pv.join != nil:
			j := pv.join
			fmt.Fprintf(&b, ", hash probe on %s.%s = %s.%s",
				pl.vars[j.probeDepth].name,
				pl.vars[j.probeDepth].rel.Schema().Attr(j.probeIdx).Name,
				pv.name, pv.rel.Schema().Attr(j.buildIdx).Name)
		case d > 0:
			b.WriteString(", nested loop")
		default:
			b.WriteString(", scan")
		}
		if pv.whenIndexed {
			b.WriteString(", interval-indexed")
		}
		if pv.probeSkipped {
			b.WriteString(", index probe skipped (unselective window)")
		}
		if len(pv.where) > 0 {
			fmt.Fprintf(&b, ", %d residual where", len(pv.where))
		}
		if len(pv.when) > 0 {
			fmt.Fprintf(&b, ", %d residual when", len(pv.when))
		}
		if pl.statsUsed {
			fmt.Fprintf(&b, ", est out %s", fmtEst(pv.estOut))
		}
	}
	if pl.statsUsed {
		fmt.Fprintf(&b, "\n  est work %s, est rows %s, parallel cutoff %s",
			fmtEst(pl.estWork), fmtEst(pl.estRows), fmtEst(pl.parallelCut))
	}
	if pl.windowSize > 0 {
		fmt.Fprintf(&b, "\n  window: size %d, slide %d", pl.windowSize, pl.windowStep)
		if pl.statsUsed {
			fmt.Fprintf(&b, ", est windows %s", fmtEst(pl.estWindows))
		}
	}
	if pl.coalesced {
		b.WriteString("\n  coalesce: merge value-equivalent valid intervals")
	}
	workers := s.effectiveParallelism()
	if useParallel(pl, workers, agg) {
		fmt.Fprintf(&b, "\n  dispatch: parallel (%d workers)", workers)
	} else {
		b.WriteString("\n  dispatch: serial")
	}
	return b.String()
}

// fmtEst renders a cost estimate compactly: integral values without a
// fraction, everything else with up to six significant digits.
func fmtEst(f float64) string {
	return strconv.FormatFloat(f, 'g', 6, 64)
}
