package tquel

import (
	"strings"
	"testing"
)

// TestFullScript drives the whole language surface in one session: DDL for
// every relation kind, DML with every clause, queries with every operator,
// aggregates, derived relations, and destruction.
func TestFullScript(t *testing.T) {
	db := newDB(t)
	ses := NewSession(db)

	script := []struct {
		src  string
		want string // substring expected in the rendered outcome ("" = any)
	}{
		// DDL across the taxonomy.
		{`create static relation depts (name = string, building = string) key (name)`, "created static relation depts"},
		{`create rollback relation budgets (dept = string, amount = int) key (dept)`, "created static rollback relation budgets"},
		{`create historical relation chairs (dept = string, chair = string) key (dept)`, "created historical relation chairs"},
		{`create temporal relation staff (name = string, dept = string) key (name)`, "created temporal relation staff"},
		{`create historical event relation audits (dept = string, result = string)`, "created historical event relation audits"},

		// Range declarations persist across statements.
		{`range of d is depts`, ""},
		{`range of b is budgets`, ""},
		{`range of c is chairs`, ""},
		{`range of s is staff`, ""},
		{`range of a is audits`, ""},

		// DML.
		{`append to depts (name = "cs", building = "sitterson")`, "appended"},
		{`append to depts (name = "math", building = "phillips")`, "appended"},
		{`append to budgets (dept = "cs", amount = 100)`, "appended"},
		{`replace b (amount = 150) where b.dept = "cs"`, "1 tuple(s) replaced"},
		{`append to chairs (dept = "cs", chair = "Merrie") valid from "01/01/80" to forever`, "appended"},
		{`replace c (chair = "Tom") where c.dept = "cs" valid from "01/01/84" to forever`, "replaced"},
		{`append to staff (name = "Mike", dept = "cs") valid from "01/01/83" to "03/01/84"`, "appended"},
		{`append to staff (name = "Anna", dept = "math") valid from "06/01/83" to forever`, "appended"},
		{`append to audits (dept = "cs", result = "pass") valid at "05/01/83"`, "appended"},
		{`append to audits (dept = "cs", result = "fail") valid at "05/01/84"`, "appended"},

		// Queries.
		{`retrieve (d.name) where d.building = "sitterson"`, "| cs"},
		{`retrieve (c.chair) when c overlap "06/01/82"`, "Merrie"},
		{`retrieve (c.chair) when c overlap "06/01/85"`, "Tom"},
		{`retrieve (s.name, s.dept) when s overlap "02/01/83"`, "Mike"},
		{`retrieve (a.result) when a overlap "05/01/83"`, "pass"},
		{`retrieve (n = count(s.name))`, "| 2"},
		{`retrieve (s.dept, n = count(s.name))`, "| math"},

		// Joins through multiple range variables.
		{`range of s2 is staff
		  retrieve (s.name, s2.name) where s.dept = "cs" and s2.dept = "math"
		  when s overlap s2`, "Mike"},

		// Derived relation, then query it.
		{`retrieve into cs_staff (s.name) where s.dept = "cs"`, ""},
		{`range of cs is cs_staff
		  retrieve (cs.name)`, "Mike"},

		// Cleanup.
		{`delete s where s.name = "Mike"`, "1 tuple(s) deleted"},
		{`destroy cs_staff`, "destroyed relation cs_staff"},
	}
	for i, step := range script {
		outs, err := ses.Exec(step.src)
		if err != nil {
			t.Fatalf("step %d (%s): %v", i, strings.SplitN(step.src, "\n", 2)[0], err)
		}
		if step.want == "" {
			continue
		}
		var all strings.Builder
		for _, o := range outs {
			all.WriteString(o.String())
			all.WriteByte('\n')
		}
		if !strings.Contains(all.String(), step.want) {
			t.Fatalf("step %d (%s): output missing %q:\n%s",
				i, strings.SplitN(step.src, "\n", 2)[0], step.want, all.String())
		}
	}

	// The deleted staff member is gone from current belief but his period
	// was already bounded; chairs history has both reigns.
	res, err := ses.Query(`retrieve (c.chair, c.dept)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("chairs history:\n%s", res)
	}
}
