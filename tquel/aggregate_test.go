package tquel

import (
	"strings"
	"testing"

	"tdb/temporal"
)

func aggDB(t *testing.T) *Session {
	t.Helper()
	db := newDB(t)
	ses := NewSession(db)
	if _, err := ses.Exec(`
		create static relation emp (name = string, dept = string, salary = int, score = float) key (name)
		range of e is emp
		append to emp (name = "a", dept = "cs", salary = 100, score = 1.5)
		append to emp (name = "b", dept = "cs", salary = 300, score = 2.5)
		append to emp (name = "c", dept = "math", salary = 200, score = 4.0)
	`); err != nil {
		t.Fatal(err)
	}
	return ses
}

func TestAggregateTotals(t *testing.T) {
	ses := aggDB(t)
	res, err := ses.Query(`retrieve (n = count(e.name), s = sum(e.salary), a = avg(e.salary),
	                                 lo = min(e.salary), hi = max(e.salary))`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows:\n%s", res)
	}
	row := res.Rows[0].Data
	if row[0].Int() != 3 || row[1].Int() != 600 || row[2].Float() != 200 ||
		row[3].Int() != 100 || row[4].Int() != 300 {
		t.Fatalf("aggregates = %v", row)
	}
	if res.Attrs[0] != "n" || res.Attrs[4] != "hi" {
		t.Errorf("attrs = %v", res.Attrs)
	}
}

func TestAggregateGrouping(t *testing.T) {
	ses := aggDB(t)
	res, err := ses.Query(`retrieve (e.dept, count(e.name), sum(e.salary))`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("groups:\n%s", res)
	}
	byDept := map[string][2]int64{}
	for _, r := range res.Rows {
		byDept[r.Data[0].Str()] = [2]int64{r.Data[1].Int(), r.Data[2].Int()}
	}
	if byDept["cs"] != [2]int64{2, 400} || byDept["math"] != [2]int64{1, 200} {
		t.Fatalf("grouped = %v", byDept)
	}
	// Derived attribute names for bare aggregates.
	if res.Attrs[1] != "count" || res.Attrs[2] != "sum" {
		t.Errorf("attrs = %v", res.Attrs)
	}
}

func TestAggregateWithWhere(t *testing.T) {
	ses := aggDB(t)
	res, err := ses.Query(`retrieve (count(e.name)) where e.salary > 150`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].Data[0].Int() != 2 {
		t.Fatalf("filtered count:\n%s", res)
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	ses := aggDB(t)
	res, err := ses.Query(`retrieve (count(e.name), s = sum(e.salary)) where e.salary > 10000`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0].Data[0].Int() != 0 || res.Rows[0].Data[1].Int() != 0 {
		t.Fatalf("empty aggregate:\n%s", res)
	}
	// min/max have no value over an empty input (we have no NULL): the
	// resultset is empty rather than fabricated.
	res, err = ses.Query(`retrieve (min(e.salary)) where e.salary > 10000`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("min over empty:\n%s", res)
	}
	// Grouped aggregates over empty input yield no rows.
	res, err = ses.Query(`retrieve (e.dept, count(e.name)) where e.salary > 10000`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("grouped empty:\n%s", res)
	}
}

func TestAggregateFloatWidening(t *testing.T) {
	ses := aggDB(t)
	res, err := ses.Query(`retrieve (s = sum(e.score), a = avg(e.score), m = max(e.score))`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0].Data
	if row[0].Float() != 8.0 || row[1].Float() < 2.6 || row[1].Float() > 2.7 || row[2].Float() != 4.0 {
		t.Fatalf("float aggregates = %v", row)
	}
}

func TestAggregateAny(t *testing.T) {
	ses := aggDB(t)
	res, err := ses.Query(`retrieve (hit = any(e.salary > 250))`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0].Data[0].Bool() {
		t.Fatalf("any:\n%s", res)
	}
	res, err = ses.Query(`retrieve (hit = any(e.salary > 9999))`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].Data[0].Bool() {
		t.Fatalf("any over misses:\n%s", res)
	}
}

func TestAggregateErrors(t *testing.T) {
	ses := aggDB(t)
	cases := []string{
		`retrieve (sum(e.name))`,                    // non-numeric sum
		`retrieve (avg(e.name))`,                    // non-numeric avg
		`retrieve (any(e.salary))`,                  // non-boolean any
		`retrieve (min(e.salary > 10))`,             // boolean min
		`retrieve (count(count(e.name)))`,           // nested
		`retrieve (e.name) where count(e.name) > 1`, // aggregate in where
	}
	for _, q := range cases {
		if _, err := ses.Query(q); err == nil {
			t.Errorf("accepted: %s", q)
		}
	}
}

// The paper's trend-analysis question through TQuel: count faculty valid at
// an instant, per instant.
func TestAggregateTrendAnalysis(t *testing.T) {
	ses := paperSession(t)
	counts := map[string]int64{}
	for _, date := range []string{"01/01/76", "01/01/80", "06/01/83", "06/01/84"} {
		res, err := ses.Query(`
			range of f is faculty
			retrieve (n = count(f.name)) when f overlap "` + date + `"`)
		if err != nil {
			t.Fatal(err)
		}
		counts[date] = res.Rows[0].Data[0].Int()
	}
	want := map[string]int64{"01/01/76": 0, "01/01/80": 1, "06/01/83": 3, "06/01/84": 2}
	for d, w := range want {
		if counts[d] != w {
			t.Errorf("count at %s = %d, want %d", d, counts[d], w)
		}
	}
}

func TestAggregateIntoRelation(t *testing.T) {
	ses := aggDB(t)
	if _, err := ses.Exec(`retrieve into by_dept (e.dept, total = sum(e.salary))`); err != nil {
		t.Fatal(err)
	}
	res, err := ses.Query(`
		range of d is by_dept
		retrieve (d.dept, d.total) where d.total > 300`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0].Data[0].Str() != "cs" {
		t.Fatalf("into:\n%s", res)
	}
}

func TestAggregateStampsExtend(t *testing.T) {
	ses := paperSession(t)
	res, err := ses.Query(`
		range of f is faculty
		retrieve (n = count(f.name)) where f.name != "nobody"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows:\n%s", res)
	}
	// The aggregate row's valid period encloses every contributor: from
	// Merrie's start (09/01/77) to forever.
	if got := res.Rows[0].Valid; got != temporal.Since(temporal.MustParse("09/01/77")) {
		t.Errorf("aggregate valid = %v", got)
	}
	if strings.Contains(res.String(), "col1") {
		t.Errorf("bad attribute name:\n%s", res)
	}
}
