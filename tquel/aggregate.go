package tquel

import (
	"fmt"
	"strings"

	"tdb"
	"tdb/internal/value"
	"tdb/temporal"
)

// aggregator folds binding rows into per-group aggregate states. Groups are
// keyed by the values of the plain (non-aggregate) targets; with no plain
// targets there is a single global group, which exists even over an empty
// input (count = 0), matching SQL/Quel convention.
type aggregator struct {
	targets []Target
	groups  map[string]*aggGroup
	order   []string
}

type aggGroup struct {
	plain []tdb.Value // values of the plain targets (group key)
	accs  []aggAcc    // one accumulator per aggregate target
	valid temporal.Interval
	trans temporal.Interval
	rows  int
}

type aggAcc struct {
	fn      string
	count   int64
	sumI    int64
	sumF    float64
	isFloat bool
	best    tdb.Value // min/max champion
	anyTrue bool
}

func newAggregator(targets []Target) *aggregator {
	return &aggregator{targets: targets, groups: map[string]*aggGroup{}}
}

// hasAggregates reports whether any target is an aggregate call.
func hasAggregates(targets []Target) bool {
	for _, t := range targets {
		if _, ok := t.Expr.(*Agg); ok {
			return true
		}
	}
	return false
}

// add folds one binding row (its stamps already derived) into its group.
func (a *aggregator) add(ev *env, valid, trans temporal.Interval) error {
	var key strings.Builder
	var plain []tdb.Value
	for _, t := range a.targets {
		if _, ok := t.Expr.(*Agg); ok {
			continue
		}
		v, err := evalExpr(t.Expr, ev)
		if err != nil {
			return err
		}
		plain = append(plain, v)
		fmt.Fprintf(&key, "%d:%s|", v.Kind(), v.String())
	}
	k := key.String()
	g, ok := a.groups[k]
	if !ok {
		g = &aggGroup{plain: plain, valid: valid, trans: trans}
		for _, t := range a.targets {
			if ag, isAgg := t.Expr.(*Agg); isAgg {
				g.accs = append(g.accs, aggAcc{fn: ag.Fn})
			}
		}
		a.groups[k] = g
		a.order = append(a.order, k)
	} else {
		// The group's stamps enclose every contributing row's.
		g.valid = g.valid.Extend(valid)
		g.trans = g.trans.Extend(trans)
	}
	g.rows++
	ai := 0
	for _, t := range a.targets {
		ag, isAgg := t.Expr.(*Agg)
		if !isAgg {
			continue
		}
		v, err := evalExpr(ag.Arg, ev)
		if err != nil {
			return err
		}
		if err := g.accs[ai].fold(ag, v); err != nil {
			return err
		}
		ai++
	}
	return nil
}

func (acc *aggAcc) fold(ag *Agg, v tdb.Value) error {
	acc.count++
	switch acc.fn {
	case "count":
	case "sum", "avg":
		switch v.Kind() {
		case value.Int:
			acc.sumI += v.Int()
			acc.sumF += float64(v.Int())
		case value.Float:
			acc.isFloat = true
			acc.sumF += v.Float()
		default:
			return errf(ag.Pos, "%s over non-numeric value %s", acc.fn, v.Kind())
		}
	case "min", "max":
		if !acc.best.IsValid() {
			acc.best = v
			break
		}
		c, err := value.Compare(v, acc.best)
		if err != nil {
			return errf(ag.Pos, "%v", err)
		}
		if (acc.fn == "min" && c < 0) || (acc.fn == "max" && c > 0) {
			acc.best = v
		}
	case "any":
		if v.Kind() != value.Bool {
			return errf(ag.Pos, "any over non-boolean value %s", v.Kind())
		}
		if v.Bool() {
			acc.anyTrue = true
		}
	}
	return nil
}

// result produces the accumulator's final value.
func (acc *aggAcc) result(ag *Agg) (tdb.Value, error) {
	switch acc.fn {
	case "count":
		return tdb.Int(acc.count), nil
	case "sum":
		if acc.isFloat {
			return tdb.Float(acc.sumF), nil
		}
		return tdb.Int(acc.sumI), nil
	case "avg":
		if acc.count == 0 {
			return tdb.Float(0), nil
		}
		return tdb.Float(acc.sumF / float64(acc.count)), nil
	case "min", "max":
		if !acc.best.IsValid() {
			return tdb.Value{}, errf(ag.Pos, "%s over an empty group", acc.fn)
		}
		return acc.best, nil
	case "any":
		return tdb.Bool(acc.anyTrue), nil
	default:
		return tdb.Value{}, errf(ag.Pos, "unknown aggregate %q", acc.fn)
	}
}

// finish emits one result row per group. With no plain targets and no
// input, a single zero-group row is emitted (count() = 0, any() = false);
// min/max over the empty group are an error.
func (a *aggregator) finish(res *Resultset) error {
	if len(a.order) == 0 && onlyTotalAggs(a.targets) {
		a.groups[""] = &aggGroup{valid: temporal.All, trans: temporal.All,
			accs: makeAccs(a.targets)}
		a.order = append(a.order, "")
	}
	for _, k := range a.order {
		g := a.groups[k]
		row := ResultRow{Valid: g.valid, Trans: g.trans}
		pi, ai := 0, 0
		for _, t := range a.targets {
			if ag, isAgg := t.Expr.(*Agg); isAgg {
				v, err := g.accs[ai].result(ag)
				if err != nil {
					return err
				}
				row.Data = append(row.Data, v)
				ai++
			} else {
				row.Data = append(row.Data, g.plain[pi])
				pi++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return nil
}

// onlyTotalAggs reports whether every target is an aggregate whose empty
// value is well-defined.
func onlyTotalAggs(targets []Target) bool {
	for _, t := range targets {
		ag, ok := t.Expr.(*Agg)
		if !ok || ag.Fn == "min" || ag.Fn == "max" {
			return false
		}
	}
	return true
}

func makeAccs(targets []Target) []aggAcc {
	var out []aggAcc
	for _, t := range targets {
		if ag, ok := t.Expr.(*Agg); ok {
			out = append(out, aggAcc{fn: ag.Fn})
		}
	}
	return out
}
