package tquel

import "testing"

func lexKinds(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	return toks
}

func TestLexBasics(t *testing.T) {
	toks := lexKinds(t, `range of f is faculty`)
	if len(toks) != 6 { // 5 idents + EOF
		t.Fatalf("tokens = %v", toks)
	}
	for i, want := range []string{"range", "of", "f", "is", "faculty"} {
		if toks[i].Kind != TokIdent || toks[i].Text != want {
			t.Errorf("token %d = %+v, want ident %q", i, toks[i], want)
		}
	}
	if toks[5].Kind != TokEOF {
		t.Error("missing EOF")
	}
}

func TestLexStringsAndEscapes(t *testing.T) {
	toks := lexKinds(t, `"Merrie" "a\"b" "tab\there" "nl\n"`)
	wants := []string{"Merrie", `a"b`, "tab\there", "nl\n"}
	for i, w := range wants {
		if toks[i].Kind != TokString || toks[i].Text != w {
			t.Errorf("string %d = %q, want %q", i, toks[i].Text, w)
		}
	}
	if _, err := Lex(`"unterminated`); err == nil {
		t.Error("unterminated string must fail")
	}
	if _, err := Lex(`"bad \x escape"`); err == nil {
		t.Error("unknown escape must fail")
	}
}

func TestLexNumbers(t *testing.T) {
	toks := lexKinds(t, `42 3.25 7`)
	if toks[0].Kind != TokInt || toks[0].Text != "42" {
		t.Errorf("int: %+v", toks[0])
	}
	if toks[1].Kind != TokFloat || toks[1].Text != "3.25" {
		t.Errorf("float: %+v", toks[1])
	}
	if toks[2].Kind != TokInt {
		t.Errorf("int: %+v", toks[2])
	}
}

func TestLexPunctuation(t *testing.T) {
	toks := lexKinds(t, `( ) , . = != < <= > >=`)
	wants := []string{"(", ")", ",", ".", "=", "!=", "<", "<=", ">", ">="}
	for i, w := range wants {
		if toks[i].Kind != TokPunct || toks[i].Text != w {
			t.Errorf("punct %d = %+v, want %q", i, toks[i], w)
		}
	}
	if _, err := Lex(`a ! b`); err == nil {
		t.Error("lone '!' must fail")
	}
	if _, err := Lex("a # b"); err == nil {
		t.Error("unknown character must fail")
	}
}

func TestLexComments(t *testing.T) {
	toks := lexKinds(t, "a -- line comment\nb /* block\ncomment */ c")
	if len(toks) != 4 {
		t.Fatalf("tokens = %v", toks)
	}
	for i, w := range []string{"a", "b", "c"} {
		if toks[i].Text != w {
			t.Errorf("token %d = %q", i, toks[i].Text)
		}
	}
	if _, err := Lex("/* unterminated"); err == nil {
		t.Error("unterminated comment must fail")
	}
}

func TestLexPositions(t *testing.T) {
	toks := lexKinds(t, "ab\n  cd")
	if toks[0].Pos != (Pos{Line: 1, Col: 1}) {
		t.Errorf("first pos = %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{Line: 2, Col: 3}) {
		t.Errorf("second pos = %v", toks[1].Pos)
	}
	if toks[1].Pos.String() != "2:3" {
		t.Errorf("pos string = %q", toks[1].Pos.String())
	}
}
