package tquel

import (
	"os"
	"path/filepath"
	"testing"

	"tdb"
	"tdb/temporal"
)

// Crash recovery must be invisible to the query layer: after the paper's
// faculty history is persisted, the log tail torn, and the database
// reopened, every figure query still renders byte-identically across all
// six execution arms (planner on/off, stats off, parallel, cache
// cold/warm) — the statistics reconstructed by replay included.
func TestDifferentialAfterRecovery(t *testing.T) {
	forceParallel(t)
	path := filepath.Join(t.TempDir(), "tdb.wal")
	clock := temporal.NewLogicalClock(0)
	db, err := tdb.Open(path, tdb.Options{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	testClocks[db] = clock
	paperSessionOn(t, db)
	delete(testClocks, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: a frame header promising more bytes than the file
	// holds, as a crash mid-append would leave it.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x40, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x7f}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := tdb.Open(path, tdb.Options{Clock: temporal.NewLogicalClock(temporal.Date(1985, 3, 1))})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db2.Close() })
	rec := db2.Stats().Recovery
	if !rec.TornTail {
		t.Fatalf("recovery did not report the torn tail: %+v", rec)
	}

	ses := NewSession(db2)
	if _, err := ses.Exec(`
		range of f is faculty
		range of f1 is faculty
		range of f2 is faculty
	`); err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{
		`retrieve (f.rank) where f.name = "Merrie"`,
		`retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"`,
		`retrieve (f1.rank)
			where f1.name = "Merrie" and f2.name = "Tom"
			when f1 overlap start of f2`,
		`retrieve (f1.rank)
			where f1.name = "Merrie" and f2.name = "Tom"
			when f1 overlap start of f2
			as of "12/10/82"`,
		`retrieve (f1.rank)
			where f1.name = "Merrie" and f2.name = "Tom"
			when f1 overlap start of f2
			as of "12/20/82"`,
		`retrieve (f.name, c = count(f.rank)) window 31536000`,
		`retrieve (f.name, f.rank) coalesce`,
		`retrieve (c = count(f.name)) window 63072000 slide 15768000 as of "12/10/82"`,
	} {
		differential(t, ses, src)
	}
}
