package tquel

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"tdb"
	"tdb/temporal"
)

// cacheSession is paperSession on a database with an explicit cache
// budget: the TDB_CACHE_BYTES=0 CI job would otherwise disable the cache
// and turn every assertion about hits and insertions vacuous.
func cacheSession(t testing.TB) *Session {
	t.Helper()
	clock := temporal.NewLogicalClock(0)
	db, err := tdb.Open("", tdb.Options{Clock: clock, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	testClocks[db] = clock
	t.Cleanup(func() {
		delete(testClocks, db)
		db.Close()
	})
	return paperSessionOn(t, db)
}

// uncached runs the query with the session's cache bypassed and returns the
// rendered resultset — the oracle every cached answer must match.
func uncached(t *testing.T, ses *Session, src string) string {
	t.Helper()
	prev := ses.noCache
	ses.DisableCache(true)
	res, err := ses.Query(src)
	ses.DisableCache(prev)
	if err != nil {
		t.Fatalf("uncached oracle: %v\n%s", err, src)
	}
	return res.String()
}

func mustQuery(t *testing.T, ses *Session, src string) *Resultset {
	t.Helper()
	res, err := ses.Query(src)
	if err != nil {
		t.Fatalf("%v\n%s", err, src)
	}
	return res
}

// A settled as-of query is cached on first execution and served from the
// cache on the second, byte-identical to uncached execution.
func TestCacheHitRoundTrip(t *testing.T) {
	ses := cacheSession(t)
	qc := ses.db.QueryCache()
	const q = `retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"`
	want := uncached(t, ses, q)

	before := qc.Stats()
	first := mustQuery(t, ses, q)
	second := mustQuery(t, ses, q)
	after := qc.Stats()

	if got := after.Inserts - before.Inserts; got < 1 {
		t.Errorf("insertions delta = %d, want >= 1", got)
	}
	if got := after.Hits - before.Hits; got < 1 {
		t.Errorf("hits delta = %d, want >= 1", got)
	}
	if first.String() != want {
		t.Errorf("cold answer differs from uncached:\n%s\nvs\n%s", first, want)
	}
	if second.String() != want {
		t.Errorf("warm answer differs from uncached:\n%s\nvs\n%s", second, want)
	}
}

// A write to a participating relation retires the cached current-state
// entry: the re-run sees the new data, identical to uncached execution.
func TestCacheInvalidatedByInterleavedWrite(t *testing.T) {
	ses := cacheSession(t)
	const q = `retrieve (f.rank) where f.name = "Merrie"`
	warmups := mustQuery(t, ses, q) // populate
	_ = mustQuery(t, ses, q)        // and hit once, so the entry is MRU
	if !strings.Contains(warmups.String(), "full") {
		t.Fatalf("fixture: Merrie should currently be full:\n%s", warmups)
	}

	execAt(t, ses, temporal.MustParse("03/01/84"),
		`replace f (rank = "emeritus") where f.name = "Merrie" valid from "03/01/84" to forever`)

	got := mustQuery(t, ses, q).String()
	want := uncached(t, ses, q)
	if got != want {
		t.Errorf("post-write cached answer differs from uncached:\n%s\nvs\n%s", got, want)
	}
	if !strings.Contains(got, "emeritus") {
		t.Errorf("post-write answer is stale:\n%s", got)
	}
}

// A settled as-of answer is immutable: later writes must not retire it (the
// re-run is still a hit) and must not change it (transaction time is
// append-only, so the belief as of a past instant is fixed).
func TestCacheImmutableAsOfSurvivesWrite(t *testing.T) {
	ses := cacheSession(t)
	qc := ses.db.QueryCache()
	const q = `retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"`
	want := mustQuery(t, ses, q).String()

	execAt(t, ses, temporal.MustParse("03/01/84"),
		`replace f (rank = "emeritus") where f.name = "Merrie" valid from "03/01/84" to forever`)

	before := qc.Stats()
	got := mustQuery(t, ses, q).String()
	after := qc.Stats()
	if got != want {
		t.Errorf("immutable as-of answer changed after a write:\n%s\nvs\n%s", got, want)
	}
	if got != uncached(t, ses, q) {
		t.Errorf("immutable as-of answer differs from uncached re-execution")
	}
	if after.Hits-before.Hits < 1 {
		t.Errorf("write retired an immutable entry: hits delta = %d", after.Hits-before.Hits)
	}
}

// Callers own the resultset they get back. Scribbling on a returned row —
// whether it came from execution or from the cache — must not poison the
// answer handed to the next caller.
func TestCacheReturnedResultsAreIsolated(t *testing.T) {
	ses := cacheSession(t)
	const q = `retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"`
	want := uncached(t, ses, q)

	// Mutate the miss-path result (aliasing the stored entry would show the
	// corruption on the next hit) …
	cold := mustQuery(t, ses, q)
	cold.Attrs[0] = "corrupted"
	cold.Rows[0].Data[0] = tdb.String("corrupted")

	// … and the hit-path result (aliasing the resident entry would show it
	// on the hit after that).
	warm := mustQuery(t, ses, q)
	if warm.String() != want {
		t.Fatalf("mutating a returned resultset poisoned the cache:\n%s\nvs\n%s", warm, want)
	}
	warm.Attrs[0] = "corrupted"
	warm.Rows[0].Data[0] = tdb.String("corrupted")

	if got := mustQuery(t, ses, q).String(); got != want {
		t.Errorf("mutating a cache-hit resultset poisoned the cache:\n%s\nvs\n%s", got, want)
	}
}

// Dropping and recreating a relation under the same name must not serve the
// old relation's rows, even when the new relation's write-version counter
// happens to coincide with the old one's (the catalog generation in the key
// is what keeps them apart).
func TestCacheDropRecreateNotServedStale(t *testing.T) {
	ses := cacheSession(t)
	if _, err := ses.Exec(`
		create static relation tmp (x = int) key (x)
		range of v is tmp
		append to tmp (x = 1)
	`); err != nil {
		t.Fatal(err)
	}
	const q = `retrieve (v.x)`
	if got := mustQuery(t, ses, q).String(); !strings.Contains(got, "1") {
		t.Fatalf("fixture: %s", got)
	}
	if _, err := ses.Exec(`
		destroy tmp
		create static relation tmp (x = int) key (x)
		range of v is tmp
		append to tmp (x = 2)
	`); err != nil {
		t.Fatal(err)
	}
	got := mustQuery(t, ses, q).String()
	if got != uncached(t, ses, q) {
		t.Errorf("post-recreate cached answer differs from uncached")
	}
	if strings.Contains(got, "1") || !strings.Contains(got, "2") {
		t.Errorf("recreated relation served stale rows:\n%s", got)
	}
}

// Queries whose temporal clauses mention "now" track the session clock, so
// they must bypass the cache entirely: no entry stored, no lookup served.
func TestCacheSkipsNowQueries(t *testing.T) {
	ses := cacheSession(t)
	qc := ses.db.QueryCache()
	const q = `retrieve (f.rank) where f.name = "Merrie" when f overlap "now"`
	before := qc.Stats()
	first := mustQuery(t, ses, q).String()
	second := mustQuery(t, ses, q).String()
	after := qc.Stats()
	if first != second {
		t.Errorf("now-query answers differ between consecutive runs:\n%s\nvs\n%s", first, second)
	}
	if d := after.Inserts - before.Inserts; d != 0 {
		t.Errorf("now-dependent query was cached: insertions delta = %d", d)
	}
	if d := after.Hits - before.Hits; d != 0 {
		t.Errorf("now-dependent query hit the cache: hits delta = %d", d)
	}
}

// retrieve-into creates a relation as a side effect; running it from the
// cache would skip the side effect, so it must never be stored.
func TestCacheSkipsRetrieveInto(t *testing.T) {
	ses := cacheSession(t)
	qc := ses.db.QueryCache()
	before := qc.Stats()
	if _, err := ses.Exec(`retrieve into snapshot (f.name)`); err != nil {
		t.Fatal(err)
	}
	after := qc.Stats()
	if d := after.Inserts - before.Inserts; d != 0 {
		t.Errorf("retrieve into was cached: insertions delta = %d", d)
	}
	if d := after.Hits + after.Misses - before.Hits - before.Misses; d != 0 {
		t.Errorf("retrieve into consulted the cache: lookup delta = %d", d)
	}
}

// DisableCache is a full bypass: no lookups, no insertions.
func TestDisableCacheBypasses(t *testing.T) {
	ses := cacheSession(t)
	qc := ses.db.QueryCache()
	ses.DisableCache(true)
	const q = `retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"`
	before := qc.Stats()
	first := mustQuery(t, ses, q).String()
	second := mustQuery(t, ses, q).String()
	after := qc.Stats()
	if first != second {
		t.Errorf("bypassed answers differ:\n%s\nvs\n%s", first, second)
	}
	if after.Inserts != before.Inserts || after.Hits != before.Hits || after.Misses != before.Misses {
		t.Errorf("DisableCache still touched the cache: %+v -> %+v", before, after)
	}
}

// Checkpoint under live reader sessions: four goroutines issue cached
// queries (a settled as-of whose answer may never change, and the current
// state, which may) while the main goroutine interleaves writes with
// checkpoints. Run under -race this exercises the cache, the write-version
// counters, and the snapshot path concurrently; afterwards the reopened
// database must carry the same write-version vector the live one ended
// with.
func TestCheckpointUnderConcurrentReaderSessions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	clock := temporal.NewLogicalClock(0)
	db, err := tdb.Open(path, tdb.Options{Clock: clock, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	testClocks[db] = clock
	defer delete(testClocks, db)

	setup := NewSession(db)
	if _, err := setup.Exec(`
		create temporal relation faculty (name = string, rank = string) key (name)
		range of f is faculty
	`); err != nil {
		t.Fatal(err)
	}
	execAt(t, setup, temporal.MustParse("01/01/80"),
		`append to faculty (name = "Merrie", rank = "associate") valid from "01/01/80" to forever`)
	// Close the version visible as of 06/01/80: only a transaction-closed
	// answer is immutable (an open trans end would be closed retroactively
	// by the interleaved writes below and legitimately re-render).
	execAt(t, setup, temporal.MustParse("06/15/80"),
		`replace f (rank = "lecturer") where f.name = "Merrie" valid from "06/15/80" to forever`)

	const settled = `retrieve (f.rank) where f.name = "Merrie" as of "06/01/80"`
	const current = `retrieve (f.rank) where f.name = "Merrie"`
	settledWant := uncached(t, setup, settled)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ses := NewSession(db)
			if _, err := ses.Exec(`range of f is faculty`); err != nil {
				t.Error(err)
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := ses.Query(settled)
				if err != nil {
					t.Errorf("settled query: %v", err)
					return
				}
				if got := res.String(); got != settledWant {
					t.Errorf("settled as-of answer drifted:\n%s\nvs\n%s", got, settledWant)
					return
				}
				if _, err := ses.Query(current); err != nil {
					t.Errorf("current query: %v", err)
					return
				}
			}
		}()
	}

	ranks := []string{"assistant", "associate", "full", "emeritus", "adjunct"}
	for i, rank := range ranks {
		execAt(t, setup, temporal.Date(1981+i, 1, 1),
			`replace f (rank = "`+rank+`") where f.name = "Merrie" valid from "01/01/8`+
				string(rune('1'+i))+`" to forever`)
		if err := db.Checkpoint(); err != nil {
			t.Errorf("checkpoint %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	rel, err := db.Relation("faculty")
	if err != nil {
		t.Fatal(err)
	}
	wantVer := rel.WriteVersion()
	if wantVer == 0 {
		t.Fatal("faculty write version still 0 after writes")
	}
	finalWant := uncached(t, setup, current)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := tdb.Open(path, tdb.Options{CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rel2, err := db2.Relation("faculty")
	if err != nil {
		t.Fatal(err)
	}
	if got := rel2.WriteVersion(); got != wantVer {
		t.Errorf("write version after checkpoint+reopen = %d, want %d", got, wantVer)
	}
	ses2 := NewSession(db2)
	if _, err := ses2.Exec(`range of f is faculty`); err != nil {
		t.Fatal(err)
	}
	if got := uncached(t, ses2, current); got != finalWant {
		t.Errorf("state after reopen differs:\n%s\nvs\n%s", got, finalWant)
	}
}
