package tdb

import (
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"tdb/internal/vfs"
	"tdb/temporal"
)

// crashSample returns the matrix stride: 1 (exhaustive) by default, or the
// value of TDB_CRASH_SAMPLE so slow configurations (-race in CI) can walk
// every n-th crash point instead of all of them.
func crashSample(t *testing.T) int {
	t.Helper()
	s := os.Getenv("TDB_CRASH_SAMPLE")
	if s == "" {
		return 1
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		t.Fatalf("TDB_CRASH_SAMPLE=%q: want a positive integer", s)
	}
	return n
}

// commitPoint pairs a commit's full observable state with the log size it
// left behind, so a mutilated log can be checked against the exact
// committed prefix it should recover to.
type commitPoint struct {
	digest []string
	size   int64
}

// buildCommitHistory runs a sequence of single-record commits against a
// fresh file-backed database, capturing a commitPoint after each, and
// returns the points with the database closed and the log final on disk.
func buildCommitHistory(t *testing.T, path string) []commitPoint {
	t.Helper()
	db, err := Open(path, Options{Clock: temporal.NewLogicalClock(temporal.Date(1985, 1, 1))})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var points []commitPoint
	mark := func() {
		t.Helper()
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		points = append(points, commitPoint{digest: stateDigest(t, db), size: fi.Size()})
	}

	if _, err := db.CreateRelation("m", Historical, facultySchema(t)); err != nil {
		t.Fatal(err)
	}
	mark()
	// Varying tuple sizes so record lengths differ across the matrix.
	names := []string{"A", "Beatrice", "C", "Demetrios-the-long-name", "E"}
	for i, name := range names {
		at := temporal.Date(1986+i, 1, 1)
		if err := db.UpdateAt(at, func(tx *Tx) error {
			h, _ := tx.Rel("m")
			return h.Assert(fac(name, "rank"+strconv.Itoa(i)), at, temporal.Forever)
		}); err != nil {
			t.Fatal(err)
		}
		mark()
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return points
}

// reopenedDigest opens the mutilated log and returns its recovered digest,
// or the open error. The caller decides which outcomes are acceptable.
func reopenedDigest(t *testing.T, path string) ([]string, error) {
	t.Helper()
	db, err := Open(path, Options{Clock: temporal.NewLogicalClock(temporal.Date(1999, 1, 1))})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	return stateDigest(t, db), nil
}

// TestCrashMatrixTornFinalRecord mutilates the final record of a
// multi-commit log every way a torn write can: truncating the file at
// every byte offset inside the record, and flipping every byte of the
// record in place. Every variant must recover to exactly the committed
// prefix (all earlier commits, nothing of the torn one) — or refuse with
// ErrCorrupt. Silent divergence, not failure, is the bug class under test.
func TestCrashMatrixTornFinalRecord(t *testing.T) {
	stride := crashSample(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "tdb.wal")
	points := buildCommitHistory(t, src)
	logBytes, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	last := points[len(points)-1]
	prev := points[len(points)-2]
	if last.size != int64(len(logBytes)) || prev.size >= last.size {
		t.Fatalf("commit size bookkeeping: prev=%d last=%d file=%d", prev.size, last.size, len(logBytes))
	}

	victim := filepath.Join(dir, "victim.wal")
	check := func(name string, mutated []byte, wantPrefix []string) {
		t.Helper()
		if err := os.WriteFile(victim, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := reopenedDigest(t, victim)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%s: open failed with untyped error: %v", name, err)
			}
			return // refusing with the sentinel is an allowed outcome
		}
		if !digestsEqual(got, wantPrefix) {
			t.Fatalf("%s: recovered state diverges from the committed prefix:\nwant %v\ngot  %v",
				name, wantPrefix, got)
		}
	}

	// Truncation at every offset inside the final record, including the
	// exact prev boundary (clean truncation of the whole record).
	for cut := prev.size; cut < last.size; cut += int64(stride) {
		check("truncate@"+strconv.FormatInt(cut, 10), logBytes[:cut], prev.digest)
	}

	// A bit flip anywhere in the final record must be caught by its
	// checksum: the record is discarded as a torn tail, never half-applied.
	for off := prev.size; off < last.size; off += int64(stride) {
		mutated := append([]byte(nil), logBytes...)
		mutated[off] ^= 0xff
		check("flip@"+strconv.FormatInt(off, 10), mutated, prev.digest)
	}

	// Control: the unmutilated log recovers the full history.
	check("intact", logBytes, last.digest)
}

// copyDBFiles clones a database's on-disk files (log plus any snapshots)
// into a fresh directory and returns the new log path.
func copyDBFiles(t *testing.T, src, dstDir string) string {
	t.Helper()
	dst := filepath.Join(dstDir, filepath.Base(src))
	for _, suffix := range []string{"", ".snap", ".snap.prev"} {
		data, err := os.ReadFile(src + suffix)
		if errors.Is(err, os.ErrNotExist) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dst+suffix, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestCrashMatrixCheckpoint crashes a checkpoint at every mutating
// filesystem operation it performs — every temp-file write, fsync, rename,
// directory sync, and log truncation — and proves that a clean reopen of
// the torn directory recovers exactly the pre-checkpoint state. The matrix
// self-sizes: it walks crash points k = 1, 2, ... until a run completes
// without crashing, so new operations added to Checkpoint are covered
// automatically.
func TestCrashMatrixCheckpoint(t *testing.T) {
	stride := crashSample(t)
	srcDir := t.TempDir()
	src := filepath.Join(srcDir, "tdb.wal")
	db, err := Open(src, Options{Clock: temporal.NewLogicalClock(temporal.Date(1985, 1, 1))})
	if err != nil {
		t.Fatal(err)
	}
	buildMixedDB(t, db)
	want := stateDigest(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	const maxPoints = 500 // far above any plausible checkpoint op count
	completedAt := int64(-1)
	for k := int64(1); k <= maxPoints; k += int64(stride) {
		path := copyDBFiles(t, src, t.TempDir())
		ffs := vfs.NewFaultFS(vfs.OS{})
		cdb, err := Open(path, Options{
			Clock: temporal.NewLogicalClock(temporal.Date(1985, 1, 1)),
			FS:    ffs,
		})
		if err != nil {
			t.Fatalf("k=%d: open before checkpoint: %v", k, err)
		}
		ffs.CrashAfter(k)
		cperr := cdb.Checkpoint()
		crashed := ffs.Crashed()
		cdb.Close() // descriptors die with the simulated process; errors expected
		if !crashed {
			if cperr != nil {
				t.Fatalf("k=%d: checkpoint failed without crashing: %v", k, cperr)
			}
			completedAt = k
		} else if cperr == nil {
			t.Fatalf("k=%d: checkpoint reported success but the process crashed mid-way", k)
		} else if !errors.Is(cperr, vfs.ErrCrashed) {
			t.Fatalf("k=%d: crash surfaced as untyped error: %v", k, cperr)
		}

		// The torn directory, reopened through a clean filesystem, must
		// hold exactly the committed state — whatever the crash interrupted.
		got, err := reopenedDigest(t, path)
		if err != nil {
			t.Fatalf("k=%d: reopen after crash: %v", k, err)
		}
		if !digestsEqual(got, want) {
			t.Fatalf("k=%d: state after checkpoint crash diverges:\nwant %v\ngot  %v", k, want, got)
		}
		if completedAt >= 0 {
			break
		}
	}
	if completedAt < 0 {
		t.Fatalf("checkpoint still crashing after %d fault points", maxPoints)
	}
	t.Logf("checkpoint matrix: %d crash points exercised (stride %d)", completedAt, stride)
}
