package tdb

import (
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tdb/internal/vfs"
	"tdb/temporal"
)

// Group commit must be invisible to replication: a log produced by many
// concurrent committers coalescing onto shared fsyncs ships to a follower
// byte-for-byte, and the recovered state equals the live state. This is
// the live-primary differential for the batched append path.
func TestReplFollowerByteIdentityGroupCommit(t *testing.T) {
	pPath := filepath.Join(t.TempDir(), "tdb.wal")
	primary, err := Open(pPath, Options{
		Clock:           temporal.NewLogicalClock(temporal.Date(1985, 1, 1)),
		Sync:            true,
		GroupCommitWait: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	if _, err := primary.CreateRelation("gc", Temporal, facultySchema(t)); err != nil {
		t.Fatal(err)
	}

	// Concurrent committers: every commit is one WAL record, and the wait
	// window makes batches span committers rather than degenerate to one
	// record each.
	const workers, per = 8, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				name := string(rune('a'+w)) + "-" + string(rune('0'+i))
				err := primary.Update(func(tx *Tx) error {
					h, err := tx.Rel("gc")
					if err != nil {
						return err
					}
					return h.Assert(fac(name, "batched"), d821201, temporal.Forever)
				})
				if err != nil {
					t.Errorf("worker %d commit %d: %v", w, i, err)
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := primary.Stats().WALRecords, workers*per+1; got != want {
		t.Fatalf("WAL records = %d, want %d (create + one per commit)", got, want)
	}

	fPath := filepath.Join(t.TempDir(), "tdb.wal")
	follower := openFollower(t, fPath, nil)
	defer follower.Close()
	shipAll(t, primary, follower)
	assertReplicaIdentical(t, primary, follower, pPath, fPath)

	// Recovery differential: replaying the group-committed log reproduces
	// the live state exactly.
	want := stateDigest(t, primary)
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
	re := reopen(t, pPath)
	if got := stateDigest(t, re); !digestsEqual(got, want) {
		t.Fatalf("recovered state diverges from live state:\nwant %v\ngot  %v", want, got)
	}
}

// A failed fsync poisons exactly the batch it covered: the committers it
// coalesced see the failure, earlier records stay durable, the log tail
// stays recoverable, and later commits land cleanly.
func TestGroupCommitSyncFailurePoisonsBatch(t *testing.T) {
	ffs := vfs.NewFaultFS(vfs.Default())
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db, err := Open(path, Options{
		Clock:           temporal.NewLogicalClock(temporal.Date(1985, 1, 1)),
		Sync:            true,
		FS:              ffs,
		GroupCommitWait: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.CreateRelation("gc", Temporal, facultySchema(t)); err != nil {
		t.Fatal(err)
	}
	assertName := func(name string) error {
		return db.Update(func(tx *Tx) error {
			h, err := tx.Rel("gc")
			if err != nil {
				return err
			}
			return h.Assert(fac(name, "r"), d821201, temporal.Forever)
		})
	}
	if err := assertName("before"); err != nil {
		t.Fatal(err)
	}

	// The next fsync fails. Two concurrent commits coalesce inside the wait
	// window, so one injected failure must poison both — and only them.
	ffs.FailSyncAt(1)
	errs := make(chan error, 2)
	for _, name := range []string{"poisoned-1", "poisoned-2"} {
		go func(name string) { errs <- assertName(name) }(name)
	}
	for i := 0; i < 2; i++ {
		err := <-errs
		if err == nil {
			t.Fatal("commit covered by the failed fsync reported success")
		}
		if !errors.Is(err, vfs.ErrInjectedSync) {
			t.Fatalf("poisoned commit error = %v, want the injected sync failure", err)
		}
		if !strings.Contains(err.Error(), "committed but not logged") {
			t.Fatalf("poisoned commit error %q does not state the memory/log divergence", err)
		}
	}

	// The fault was one-shot and the failed batch was rolled back, so the
	// next commit lands on a clean tail.
	if err := assertName("after"); err != nil {
		t.Fatalf("commit after failed batch: %v", err)
	}
	if got := db.Stats().WALRecords; got != 3 {
		t.Fatalf("WAL records = %d, want 3 (create, before, after)", got)
	}

	// Recovery sees exactly the durable records — the poisoned batch never
	// leaks into the replayed state, and the tail after it is readable.
	re := reopen(t, path)
	rel, err := re.Relation("gc")
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]int{"before": 1, "after": 1, "poisoned-1": 0, "poisoned-2": 0} {
		res, err := rel.Query().At(d821201).WhereEq("name", String(name)).Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != want {
			t.Fatalf("recovered rows for %q = %d, want %d", name, res.Len(), want)
		}
	}
}
