package tdb

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"tdb/internal/catalog"
)

// Every facade error must match its exported sentinel under errors.Is, and
// the internal cause must stay in the chain.
func TestErrorSentinels(t *testing.T) {
	db := memDB(t)
	if _, err := db.CreateRelation("faculty", Static, facultySchema(t)); err != nil {
		t.Fatal(err)
	}

	_, err := db.CreateRelation("faculty", Static, facultySchema(t))
	if !errors.Is(err, ErrRelationExists) || !errors.Is(err, ErrExists) {
		t.Errorf("duplicate create: %v", err)
	}
	if !errors.Is(err, catalog.ErrExists) {
		t.Errorf("duplicate create: internal cause lost: %v", err)
	}

	_, err = db.Relation("nope")
	if !errors.Is(err, ErrRelationNotFound) || !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown relation: %v", err)
	}
	if !errors.Is(err, catalog.ErrNotFound) {
		t.Errorf("unknown relation: internal cause lost: %v", err)
	}

	if err := db.DropRelation("nope"); !errors.Is(err, ErrRelationNotFound) {
		t.Errorf("drop unknown: %v", err)
	}
	if err := db.Update(func(tx *Tx) error {
		_, err := tx.Rel("nope")
		return err
	}); !errors.Is(err, ErrRelationNotFound) {
		t.Errorf("tx unknown relation: %v", err)
	}

	// The sentinels are pairwise distinct.
	sentinels := []error{ErrClosed, ErrRelationNotFound, ErrRelationExists, ErrCorrupt, ErrBusy}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if (i == j) != errors.Is(a, b) {
				t.Errorf("sentinel %d vs %d: Is = %v", i, j, errors.Is(a, b))
			}
		}
	}
}

// Close must be a safe no-op on a nil *DB (the result of a failed Open) and
// on an already-closed database — `defer db.Close()` before the error check
// must never panic.
func TestCloseNilAndIdempotent(t *testing.T) {
	var nilDB *DB
	if err := nilDB.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}

	// A failed Open (corrupt snapshot, empty log) returns a nil database;
	// the deferred-close idiom must survive it.
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := reopen(t, path)
	buildMixedDB(t, db)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	for _, p := range []string{path + ".snap", path + ".snap.prev"} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xff
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	bad, err := Open(path, Options{})
	if err == nil {
		t.Fatal("open over corrupt snapshots succeeded")
	}
	if cerr := bad.Close(); cerr != nil {
		t.Fatalf("Close after failed Open: %v", cerr)
	}

	// Idempotent on a live database, and ErrClosed afterwards.
	db2 := memDB(t)
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := db2.Relation("x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("use after close: %v", err)
	}
}
