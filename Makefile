# Mirrors .github/workflows/ci.yml so `make check` locally means CI green.

GO ?= go

.PHONY: check fmt vet build test race test-noplanner bench bench-smoke bench-json

check: fmt vet build race test-noplanner

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Ablation run: the whole suite with the TQuel query planner disabled, so
# the naive nested-loop path stays correct (differential tests compare the
# two paths inside a single process; this job exercises everything else on
# the ablation path too).
test-noplanner:
	TDB_DISABLE_PLANNER=1 $(GO) test ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One iteration of every benchmark: catches benchmarks that fail without
# paying for stable numbers.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# The PR 2 planner benchmarks, rendered as committed JSON.
bench-json:
	$(GO) test -run '^$$' -benchmem \
		-bench 'BenchmarkJoinEquiSelective|BenchmarkJoinCrossSmall|BenchmarkWhenOverlapIndexed|BenchmarkEvalWhere' \
		./tquel | $(GO) run ./cmd/benchjson > BENCH_PR2.json
