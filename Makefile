# Mirrors .github/workflows/ci.yml so `make check` locally means CI green.

GO ?= go

.PHONY: check fmt vet build test race race-parallel race-cache test-noplanner test-nostats race-stats test-nocache test-nosegments race-segments test-faults race-recovery test-repl race-repl race-ingest soak-ingest soak-traffic figures-check plan-corpus bench bench-smoke bench-json bench-compare

check: fmt vet build race race-parallel race-cache test-noplanner test-nostats test-nocache test-nosegments race-segments test-faults test-repl figures-check plan-corpus

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The race job again with a fixed four-worker budget for every session, so
# tests whose outer candidate lists clear the fan-out threshold take the
# worker pool even on single-core machines.
race-parallel:
	TDB_PARALLEL=4 $(GO) test -race ./...

# The race detector with a tiny query-cache budget: constant evictions and
# shard churn while concurrent sessions read and write, so any
# unsynchronized path through internal/qcache trips -race.
race-cache:
	TDB_CACHE_BYTES=65536 $(GO) test -race ./tquel ./server ./internal/qcache .

# Ablation run: the whole suite with the TQuel query planner disabled, so
# the naive nested-loop path stays correct (differential tests compare the
# two paths inside a single process; this job exercises everything else on
# the ablation path too).
test-noplanner:
	TDB_DISABLE_PLANNER=1 $(GO) test ./...

# Ablation run with temporal statistics disabled: the planner falls back to
# the v1 size/pushdown heuristics on every query. Statistics are still
# maintained and persisted (the ablation gates consumption, not
# collection), so recovery/replication identity tests run unchanged; the
# differential tests keep comparing stats-on vs stats-off inside one
# process, and everything else exercises the heuristic planning path.
test-nostats:
	TDB_DISABLE_STATS=1 $(GO) test ./...

# The race detector over the statistics write path: parallel sessions,
# group-committed writers, checkpoints, and replication all mutate or read
# per-relation statistics under db.mu, and the plan phase reads them
# concurrently with four workers pinned on.
race-stats:
	TDB_PARALLEL=4 $(GO) test -race ./tquel ./internal/stats ./server .

# The plan-regression corpus: explain output (join order, build sides,
# estimates, dispatch) pinned against golden text, plus the planner
# differential corpus that guards answer identity across all arms.
plan-corpus:
	$(GO) test -count=1 -run 'Explain|PlannerDifferential|Differential' ./tquel ./server

# Ablation run with the query result cache disabled: every retrieve
# executes. The differential tests also compare cached vs uncached inside
# one process; this job exercises the whole suite on the uncached path.
test-nocache:
	TDB_CACHE_BYTES=0 $(GO) test ./...

# Ablation run with columnar segments disabled: every store keeps its whole
# history in the flat row tail and scans take the linear, zone-map-free
# path. The segments differential tests force segments back on with
# t.Setenv, so inside this job they still compare sealed vs flat; everything
# else runs purely flat.
test-nosegments:
	TDB_DISABLE_SEGMENTS=1 $(GO) test ./...

# The race detector with the seal threshold forced tiny and the parallel
# executor pinned on: every relation of more than four rows seals into
# columnar segments, so concurrent sessions, the worker pool, and the
# checkpointer all race over the sealed/tail boundary.
race-segments:
	TDB_SEGMENT_ROWS=4 TDB_PARALLEL=4 $(GO) test -race ./tquel ./internal/figures ./internal/segment .

# The durability suite: fault injection (vfs), torn-log replay (wal), the
# crash matrices (truncate/corrupt every byte of the final record; crash a
# checkpoint at every mutating filesystem operation), snapshot fallback,
# and the query-layer differential after recovery. Exhaustive — no
# TDB_CRASH_SAMPLE stride.
test-faults:
	$(GO) test -count=1 \
		-run 'Fault|Crash|Torn|Recovery|Corrupt|Snapshot|Short|Sync' \
		./internal/vfs ./internal/wal . ./tquel

# The durability suite under the race detector. The crash matrices walk
# every 7th fault point (TDB_CRASH_SAMPLE) so the -race run stays fast;
# test-faults covers the exhaustive walk.
race-recovery:
	TDB_CRASH_SAMPLE=7 $(GO) test -race -count=1 \
		-run 'Fault|Crash|Torn|Recovery|Corrupt|Snapshot|Short|Sync' \
		./internal/vfs ./internal/wal . ./tquel

# The replication suite: read-only open mode, the wire protocol against a
# live primary+follower pair (cold catch-up, the figure + 60-query
# differential corpus compared byte-for-byte, kill/restart convergence,
# checkpoint-epoch re-sync), the per-frame follower crash matrix, and
# replica-aware pool routing.
test-repl:
	$(GO) test -count=1 -run 'Repl|ReadOnly|Follower|Pool|Proto|Stream' \
		. ./server ./internal/repl

# The replication suite under the race detector: concurrent replica reads
# against a live apply stream. The crash matrix walks every 3rd fault
# point (TDB_CRASH_SAMPLE) so the -race pass stays fast.
race-repl:
	TDB_CRASH_SAMPLE=3 $(GO) test -race -count=1 \
		-run 'Repl|ReadOnly|Follower|Pool|Proto|Stream' \
		. ./server ./internal/repl

# The full ingest soak: multi-chunk bulk load, sixteen concurrent
# group-committed writers, an epoch rollover, and follower + recovery
# differentials at the end (TestIngestSoak; skipped under -short).
soak-ingest:
	$(GO) test -count=1 -v -run 'TestIngestSoak' .

# The ingest paths under the race detector with the group-commit wait
# window forced wide open: a long linger maximizes the span where
# committers, the flush leader, checkpoints, and replication notification
# overlap — exactly the interleavings a timing-neutral run never holds
# open long enough to race.
race-ingest:
	TDB_GROUP_COMMIT_WAIT=5ms $(GO) test -race -count=1 \
		-run 'Group|Load|Ingest|Batch|Pipeline|Checkpoint|Concurrent' \
		. ./server ./internal/wal

# The nightly traffic soak: a seeded 100k-operation wire workload
# (appends, as-of point reads, overlap scans, windowed aggregates,
# replaces) driven by tdbgen over pipelined TCP connections against a
# real server, publishing per-op p50/p99 latency histograms as a
# benchjson-compatible JSON report. tdbgen exits non-zero when any
# operation errors, so an error rate above zero fails the target; the
# nightly CI job uploads $(SOAK_REPORT) as an artifact.
SOAK_OPS ?= 100000
SOAK_SEED ?= 85
SOAK_REPORT ?= tdbgen_soak.json
soak-traffic:
	$(GO) run ./cmd/tdbgen -ops $(SOAK_OPS) -seed $(SOAK_SEED) \
		-conns 8 -pipeline 16 -report $(SOAK_REPORT)

# The committed paper figures must match what the code generates.
figures-check:
	@$(GO) run ./cmd/figures > /tmp/tdb_figures_gen.txt && \
		diff -u docs/figures.txt /tmp/tdb_figures_gen.txt && \
		echo "figures: no drift" || \
		{ echo "docs/figures.txt drifted from cmd/figures output" >&2; exit 1; }

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One iteration of every benchmark: catches benchmarks that fail without
# paying for stable numbers.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# The planner + parallel-executor + segment benchmarks, rendered as
# committed JSON. Runs at the default GOMAXPROCS (benchjson strips the -N
# name suffix, so a -cpu list would collide); the scaling curve is the
# separate `-bench JoinParallel -cpu 1,2,4` run CI does and EXPERIMENTS.md
# records. The 1M-version fixture behind AsOf1M/Overlap1M loads once and is
# shared across arms, but still makes this a minutes-long target. -count=3
# repeats every benchmark and benchjson keeps each one's fastest
# repetition: on shared machines single runs swing far past the compare
# gate on interference alone, and the minimum is the closest estimate of
# the code's cost.
bench-json:
	$(GO) test -run '^$$' -benchmem -count=3 \
		-bench 'BenchmarkJoinEquiSelective|BenchmarkJoinCrossSmall|BenchmarkWhenOverlapIndexed|BenchmarkEvalWhere|BenchmarkJoinParallel|BenchmarkJoinSkewed|BenchmarkPlanWithStats|BenchmarkAsOfCached|BenchmarkWindowAggregate|BenchmarkCoalesce|BenchmarkReplicaCatchup|BenchmarkReadFanout|BenchmarkAsOf1M|BenchmarkOverlap1M|BenchmarkSegmentSeal|BenchmarkIngestThroughput' \
		./tquel ./server . | $(GO) run ./cmd/benchjson > BENCH_PR10.json

# Guard against the committed baseline: exits non-zero when a shared
# benchmark got more than 1.25x slower (CI runs this warn-only; see ci.yml).
# The baseline defaults to the second-newest committed BENCH_PR*.json and
# the candidate to the newest, so the target needs no edit when a new
# baseline lands; override either with BENCH_OLD=/BENCH_NEW=.
BENCH_OLD ?= $(shell ls BENCH_PR*.json 2>/dev/null | sort -V | tail -2 | head -1)
BENCH_NEW ?= $(shell ls BENCH_PR*.json 2>/dev/null | sort -V | tail -1)
bench-compare:
	$(GO) run ./cmd/benchjson compare $(BENCH_OLD) $(BENCH_NEW) -threshold 1.25
