# Mirrors .github/workflows/ci.yml so `make check` locally means CI green.

GO ?= go

.PHONY: check fmt vet build test race race-parallel test-noplanner bench bench-smoke bench-json bench-compare

check: fmt vet build race race-parallel test-noplanner

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The race job again with a fixed four-worker budget for every session, so
# tests whose outer candidate lists clear the fan-out threshold take the
# worker pool even on single-core machines.
race-parallel:
	TDB_PARALLEL=4 $(GO) test -race ./...

# Ablation run: the whole suite with the TQuel query planner disabled, so
# the naive nested-loop path stays correct (differential tests compare the
# two paths inside a single process; this job exercises everything else on
# the ablation path too).
test-noplanner:
	TDB_DISABLE_PLANNER=1 $(GO) test ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One iteration of every benchmark: catches benchmarks that fail without
# paying for stable numbers.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# The planner + parallel-executor benchmarks, rendered as committed JSON.
# Runs at the default GOMAXPROCS (benchjson strips the -N name suffix, so a
# -cpu list would collide); the scaling curve is the separate
# `-bench JoinParallel -cpu 1,2,4` run CI does and EXPERIMENTS.md records.
bench-json:
	$(GO) test -run '^$$' -benchmem \
		-bench 'BenchmarkJoinEquiSelective|BenchmarkJoinCrossSmall|BenchmarkWhenOverlapIndexed|BenchmarkEvalWhere|BenchmarkJoinParallel' \
		./tquel | $(GO) run ./cmd/benchjson > BENCH_PR3.json

# Guard against the committed baseline: exits non-zero when a shared
# benchmark got more than 1.25x slower (CI runs this warn-only; see ci.yml).
bench-compare:
	$(GO) run ./cmd/benchjson compare BENCH_PR2.json BENCH_PR3.json -threshold 1.25
