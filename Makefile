# Mirrors .github/workflows/ci.yml so `make check` locally means CI green.

GO ?= go

.PHONY: check fmt vet build test race bench

check: fmt vet build race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...
