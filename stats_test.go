package tdb

import (
	"bytes"
	"path/filepath"
	"testing"

	"tdb/internal/stats"
	"tdb/internal/wal"
	"tdb/temporal"
)

// encodedStatsAll captures every relation's canonical statistics encoding.
func encodedStatsAll(t *testing.T, db *DB) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, name := range db.Relations() {
		enc, ok := db.EncodedStats(name)
		if !ok {
			t.Fatalf("relation %q has no statistics", name)
		}
		out[name] = enc
	}
	if len(out) == 0 {
		t.Fatal("fixture has no relations")
	}
	return out
}

func assertStatsEqual(t *testing.T, want, got map[string][]byte, context string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: relation sets differ: %d vs %d", context, len(want), len(got))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: relation %q lost its statistics", context, name)
			continue
		}
		if !bytes.Equal(w, g) {
			t.Errorf("%s: statistics for %q diverged (%d vs %d bytes)", context, name, len(w), len(g))
		}
	}
}

// The write path maintains statistics incrementally: versions, closures,
// and NDVs reflect the committed history.
func TestStatsMaintainedOnWritePath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := reopen(t, path)
	buildMixedDB(t, db)

	sums := db.TemporalStats()
	// Static kinds: 1 insert + 2 replaces = 3 versions, 2 closures on the
	// rollback kind's transaction axis.
	st := sums["r_static"]
	if st.Versions != 3 || st.Closures != 2 {
		t.Errorf("r_static stats = %+v, want 3 versions, 2 closures", st)
	}
	// Historical/temporal kinds: 3 asserts.
	for _, name := range []string{"r_historical", "r_temporal", "r_events"} {
		s := sums[name]
		if s.Versions != 3 {
			t.Errorf("%s versions = %d, want 3", name, s.Versions)
		}
	}
	// One key ("X") and three ranks: NDV of attr 0 is 1, attr 1 is 3
	// (sketches are exact far below capacity).
	if s := sums["r_temporal"]; len(s.AttrNDV) != 2 || s.AttrNDV[0] != 1 || s.AttrNDV[1] != 3 {
		t.Errorf("r_temporal NDV = %v, want [1 3]", s.AttrNDV)
	}
}

// An aborted transaction must leave statistics untouched — they track the
// committed op stream, not attempted work.
func TestStatsAbortLeavesNoTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := reopen(t, path)
	buildMixedDB(t, db)
	before := encodedStatsAll(t, db)

	wantErr := temporal.Date(1999, 1, 1)
	err := db.UpdateAt(wantErr, func(tx *Tx) error {
		h, _ := tx.Rel("r_historical")
		if err := h.Assert(fac("Doomed", "x"), wantErr, temporal.Forever); err != nil {
			return err
		}
		return ErrNoSuchTuple // force an abort after staging an op
	})
	if err == nil {
		t.Fatal("transaction unexpectedly committed")
	}
	assertStatsEqual(t, before, encodedStatsAll(t, db), "after abort")
}

// WAL replay must reproduce statistics byte-for-byte: recovery applies the
// same committed op stream through the same statsApply path.
func TestStatsReplayIdentity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := reopen(t, path)
	buildMixedDB(t, db)
	before := encodedStatsAll(t, db)
	db.Close()

	db2 := reopen(t, path)
	assertStatsEqual(t, before, encodedStatsAll(t, db2), "after WAL replay")
}

// A checkpoint persists statistics in the snapshot's v4 section; restoring
// it must install them byte-identically without a rebuild.
func TestStatsCheckpointIdentity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := reopen(t, path)
	buildMixedDB(t, db)
	before := encodedStatsAll(t, db)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint writes layer on top of the snapshot-restored state.
	at := temporal.Date(1990, 6, 1)
	if err := db.UpdateAt(at, func(tx *Tx) error {
		h, _ := tx.Rel("r_historical")
		return h.Assert(fac("Y", "post"), at, temporal.Forever)
	}); err != nil {
		t.Fatal(err)
	}
	after := encodedStatsAll(t, db)
	db.Close()

	rebuilds := stats.MRebuilds.Value()
	db2 := reopen(t, path)
	if got := stats.MRebuilds.Value() - rebuilds; got != 0 {
		t.Errorf("v4 snapshot restore triggered %d rebuilds, want 0", got)
	}
	assertStatsEqual(t, after, encodedStatsAll(t, db2), "after snapshot recovery")
	if same := bytes.Equal(before["r_historical"], after["r_historical"]); same {
		t.Error("fixture bug: post-checkpoint write did not change statistics")
	}
}

// A snapshot without a statistics section (the legacy upgrade path)
// rebuilds statistics from the restored versions and counts the rebuilds.
func TestStatsLegacySnapshotRebuilds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := reopen(t, path)
	buildMixedDB(t, db)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// Strip the statistics sections, simulating a pre-v4 snapshot.
	snapPath := path + ".snap"
	snap, ok, err := wal.ReadSnapshot(nil, snapPath)
	if err != nil || !ok {
		t.Fatalf("snapshot read: %v ok=%v", err, ok)
	}
	nRels := len(snap.Relations)
	for i := range snap.Relations {
		snap.Relations[i].Stats = nil
	}
	if err := wal.WriteSnapshot(nil, snapPath, snap); err != nil {
		t.Fatal(err)
	}

	rebuilds := stats.MRebuilds.Value()
	db2 := reopen(t, path)
	if got := stats.MRebuilds.Value() - rebuilds; got != uint64(nRels) {
		t.Errorf("legacy restore rebuilds = %d, want %d (one per relation)", got, nRels)
	}
	// A rebuild observes the *surviving* stored versions rather than the
	// historical op stream: the bitemporal relation retains its closed
	// transaction versions (3 asserts + 2 closures = 5 stored), while the
	// plain static relation keeps only the current row.
	sums := db2.TemporalStats()
	if s := sums["r_temporal"]; s.Versions != 5 {
		t.Errorf("rebuilt r_temporal versions = %d, want 5", s.Versions)
	}
	if s := sums["r_static"]; s.Versions != 1 {
		t.Errorf("rebuilt r_static versions = %d, want 1", s.Versions)
	}
}

// A follower applying the shipped WAL holds byte-identical statistics, and
// stays identical across a checkpoint resync (which ships a snapshot whose
// stats blobs the follower re-encodes verbatim).
func TestStatsFollowerIdentity(t *testing.T) {
	pPath := filepath.Join(t.TempDir(), "tdb.wal")
	primary := reopen(t, pPath)
	buildMixedDB(t, primary)

	fPath := filepath.Join(t.TempDir(), "tdb.wal")
	follower := openFollower(t, fPath, nil)
	defer follower.Close()

	shipAll(t, primary, follower)
	assertStatsEqual(t, encodedStatsAll(t, primary), encodedStatsAll(t, follower), "after log shipping")

	// Checkpoint on the primary forces the follower through the snapshot
	// resync path on the next ship.
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	at := temporal.Date(1992, 3, 1)
	if err := primary.UpdateAt(at, func(tx *Tx) error {
		h, _ := tx.Rel("r_temporal")
		return h.Assert(fac("Z", "resync"), at, temporal.Forever)
	}); err != nil {
		t.Fatal(err)
	}
	shipAll(t, primary, follower)
	assertStatsEqual(t, encodedStatsAll(t, primary), encodedStatsAll(t, follower), "after checkpoint resync")
}

// Dropping a relation forgets its statistics everywhere, including across
// recovery.
func TestStatsDropForgets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := reopen(t, path)
	buildMixedDB(t, db)
	if err := db.DropRelation("r_static"); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.TemporalStats()["r_static"]; ok {
		t.Error("dropped relation kept statistics")
	}
	db.Close()
	db2 := reopen(t, path)
	if _, ok := db2.TemporalStats()["r_static"]; ok {
		t.Error("dropped relation's statistics resurrected by replay")
	}
}

// The bulk-load path (segment-direct chunks included) maintains statistics
// like ordinary commits: a load followed by reopen is byte-identical.
func TestStatsBulkLoadIdentity(t *testing.T) {
	t.Setenv("TDB_LOAD_CHUNK", "64")
	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := reopen(t, path)
	if _, err := db.CreateRelation("bulk", Historical, facultySchema(t)); err != nil {
		t.Fatal(err)
	}
	at := temporal.Date(1983, 1, 1)
	rows := make([]LoadRow, 500)
	for i := range rows {
		rows[i] = LoadRow{Data: fac(rankName(i%7), "r"), From: at + temporal.Chronon(i), To: temporal.Forever}
	}
	if n, err := mustRel(t, db, "bulk").Load(rows); err != nil || n != len(rows) {
		t.Fatalf("Load = %d, %v; want %d rows", n, err, len(rows))
	}
	sum, ok := mustRel(t, db, "bulk").StatsSummary()
	if !ok || sum.Versions != 500 {
		t.Fatalf("bulk stats = %+v ok=%v, want 500 versions", sum, ok)
	}
	if sum.AttrNDV[0] != 7 {
		t.Errorf("bulk name NDV = %v, want 7", sum.AttrNDV[0])
	}
	before := encodedStatsAll(t, db)
	db.Close()
	db2 := reopen(t, path)
	assertStatsEqual(t, before, encodedStatsAll(t, db2), "after bulk load replay")
}

func rankName(i int) string { return string(rune('a' + i)) }

func mustRel(t *testing.T, db *DB, name string) *Relation {
	t.Helper()
	rel, err := db.Relation(name)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}
