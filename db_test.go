package tdb

import (
	"errors"
	"strings"
	"testing"

	"tdb/temporal"
)

var (
	d770825 = temporal.Date(1977, 8, 25)
	d770901 = temporal.Date(1977, 9, 1)
	d821201 = temporal.Date(1982, 12, 1)
	d821205 = temporal.Date(1982, 12, 5)
	d821207 = temporal.Date(1982, 12, 7)
	d821210 = temporal.Date(1982, 12, 10)
	d821215 = temporal.Date(1982, 12, 15)
	d821220 = temporal.Date(1982, 12, 20)
	d830101 = temporal.Date(1983, 1, 1)
	d830110 = temporal.Date(1983, 1, 10)
	d840225 = temporal.Date(1984, 2, 25)
	d840301 = temporal.Date(1984, 3, 1)
)

func facultySchema(t testing.TB) *Schema {
	t.Helper()
	s := MustSchema(Attr("name", StringKind), Attr("rank", StringKind))
	keyed, err := s.WithKey("name")
	if err != nil {
		t.Fatal(err)
	}
	return keyed
}

func fac(name, rank string) Tuple { return NewTuple(String(name), String(rank)) }

func memDB(t testing.TB) *DB {
	t.Helper()
	db, err := Open("", Options{Clock: temporal.NewLogicalClock(temporal.Date(1985, 1, 1))})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// loadFaculty replays the paper's faculty history into a temporal relation.
func loadFaculty(t testing.TB, db *DB) *Relation {
	t.Helper()
	rel, err := db.CreateRelation("faculty", Temporal, facultySchema(t))
	if err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		at temporal.Chronon
		fn func(tx *Tx) error
	}{
		{d770825, func(tx *Tx) error {
			f, _ := tx.Rel("faculty")
			return f.Assert(fac("Merrie", "associate"), d770901, temporal.Forever)
		}},
		{d821201, func(tx *Tx) error {
			f, _ := tx.Rel("faculty")
			return f.Assert(fac("Tom", "full"), d821205, temporal.Forever)
		}},
		{d821207, func(tx *Tx) error {
			f, _ := tx.Rel("faculty")
			return f.Assert(fac("Tom", "associate"), d821205, temporal.Forever)
		}},
		{d821215, func(tx *Tx) error {
			f, _ := tx.Rel("faculty")
			return f.Assert(fac("Merrie", "full"), d821201, temporal.Forever)
		}},
		{d830110, func(tx *Tx) error {
			f, _ := tx.Rel("faculty")
			return f.Assert(fac("Mike", "assistant"), d830101, temporal.Forever)
		}},
		{d840225, func(tx *Tx) error {
			f, _ := tx.Rel("faculty")
			return f.Retract(Key(String("Mike")), d840301, temporal.Forever)
		}},
	}
	for _, s := range steps {
		if err := db.UpdateAt(s.at, s.fn); err != nil {
			t.Fatal(err)
		}
	}
	return rel
}

func TestOpenCloseInMemory(t *testing.T) {
	db := memDB(t)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal("double close:", err)
	}
	if _, err := db.CreateRelation("r", Static, facultySchema(t)); !errors.Is(err, ErrClosed) {
		t.Errorf("create after close: %v", err)
	}
	if _, err := db.Relation("r"); !errors.Is(err, ErrClosed) {
		t.Errorf("relation after close: %v", err)
	}
	if err := db.Update(func(*Tx) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("update after close: %v", err)
	}
}

func TestCreateDropRelations(t *testing.T) {
	db := memDB(t)
	if _, err := db.CreateRelation("faculty", Temporal, facultySchema(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelation("faculty", Static, facultySchema(t)); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate create: %v", err)
	}
	if _, err := db.CreateEventRelation("promotion", Temporal, facultySchema(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateEventRelation("bad", Static, facultySchema(t)); !errors.Is(err, ErrKindMismatch) {
		t.Errorf("static event relation: %v", err)
	}
	names := db.Relations()
	if len(names) != 2 || names[0] != "faculty" || names[1] != "promotion" {
		t.Errorf("Relations = %v", names)
	}
	if err := db.DropRelation("promotion"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropRelation("promotion"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double drop: %v", err)
	}
	if _, err := db.Relation("promotion"); !errors.Is(err, ErrNotFound) {
		t.Errorf("lookup dropped: %v", err)
	}
}

// The paper's central query pair through the public API.
func TestQueryWhenAsOf(t *testing.T) {
	db := memDB(t)
	rel := loadFaculty(t, db)

	// Merrie's rank when Tom arrived, as of 12/10/82.
	res, err := rel.Query().
		AsOf(d821210).
		At(d821205). // start of Tom's validity
		WhereEq("name", String("Merrie")).
		Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("result = %s", res)
	}
	row, valid := res.Row(0)
	if row[1].Str() != "associate" {
		t.Errorf("rank as of 12/10 = %v", row[1])
	}
	if valid != temporal.Since(d770901) {
		t.Errorf("valid = %v", valid)
	}

	// Same query as of 12/20/82: full.
	res, err = rel.Query().AsOf(d821220).At(d821205).WhereEq("name", String("Merrie")).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Tuples()[0][1].Str() != "full" {
		t.Fatalf("as of 12/20: %s", res)
	}
}

func TestQueryTaxonomyBoundaries(t *testing.T) {
	db := memDB(t)
	sch := facultySchema(t)
	st, err := db.CreateRelation("s", Static, sch)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := db.CreateRelation("h", Historical, sch)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := db.CreateRelation("rb", StaticRollback, sch)
	if err != nil {
		t.Fatal(err)
	}
	// Static: neither rollback nor historical queries.
	if _, err := st.Query().AsOf(d821210).Run(); !errors.Is(err, ErrNoRollback) {
		t.Errorf("static as-of: %v", err)
	}
	if _, err := st.Query().At(d821210).Run(); !errors.Is(err, ErrNoValidTime) {
		t.Errorf("static at: %v", err)
	}
	// Historical: no rollback.
	if _, err := hist.Query().AsOf(d821210).Run(); !errors.Is(err, ErrNoRollback) {
		t.Errorf("historical as-of: %v", err)
	}
	if _, err := hist.Query().At(d821210).Run(); err != nil {
		t.Errorf("historical at: %v", err)
	}
	// Rollback: no valid time.
	if _, err := rb.Query().At(d821210).Run(); !errors.Is(err, ErrNoValidTime) {
		t.Errorf("rollback at: %v", err)
	}
	if _, err := rb.Query().AsOf(d821210).Run(); err != nil {
		t.Errorf("rollback as-of: %v", err)
	}
	// Mutation boundaries.
	if err := st.Assert(fac("A", "x"), 0, 10); !errors.Is(err, ErrKindMismatch) {
		t.Errorf("assert on static: %v", err)
	}
	if err := hist.Insert(fac("A", "x")); !errors.Is(err, ErrKindMismatch) {
		t.Errorf("insert on historical: %v", err)
	}
}

func TestAtomicMultiRelationUpdate(t *testing.T) {
	db := memDB(t)
	sch := facultySchema(t)
	if _, err := db.CreateRelation("a", Temporal, sch); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelation("b", StaticRollback, sch); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := db.Update(func(tx *Tx) error {
		a, _ := tx.Rel("a")
		b, _ := tx.Rel("b")
		if err := a.Assert(fac("X", "x"), 0, temporal.Chronon(temporal.Forever)); err != nil {
			return err
		}
		if err := b.Insert(fac("Y", "y")); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatal(err)
	}
	a, _ := db.Relation("a")
	b, _ := db.Relation("b")
	if a.VersionCount() != 0 || b.VersionCount() != 0 {
		t.Fatalf("abort left data: %d, %d", a.VersionCount(), b.VersionCount())
	}
	// A successful retry works and both relations see the same commit time.
	if err := db.Update(func(tx *Tx) error {
		ha, _ := tx.Rel("a")
		hb, _ := tx.Rel("b")
		if err := ha.Assert(fac("X", "x"), 0, temporal.Forever); err != nil {
			return err
		}
		return hb.Insert(fac("Y", "y"))
	}); err != nil {
		t.Fatal(err)
	}
	va, vb := a.Versions(), b.Versions()
	if len(va) != 1 || len(vb) != 1 {
		t.Fatalf("versions: %v / %v", va, vb)
	}
	if va[0].Trans != vb[0].Trans {
		t.Errorf("commit times differ: %v vs %v", va[0].Trans, vb[0].Trans)
	}
}

func TestResultTableRendering(t *testing.T) {
	db := memDB(t)
	rel := loadFaculty(t, db)
	res, err := rel.Query().Run()
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	for _, want := range []string{"name", "rank", "valid from", "valid to", "Merrie", "||", "∞"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Static results carry no valid columns.
	st, err := db.CreateRelation("s", Static, facultySchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Insert(fac("A", "x")); err != nil {
		t.Fatal(err)
	}
	res, err = st.Query().Run()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.String(), "valid") {
		t.Errorf("static table has valid columns:\n%s", res)
	}
}

func TestResultProjectAndJoin(t *testing.T) {
	db := memDB(t)
	rel := loadFaculty(t, db)
	merrie, err := rel.Query().WhereEq("name", String("Merrie")).Run()
	if err != nil {
		t.Fatal(err)
	}
	ranks, err := merrie.Project("rank")
	if err != nil {
		t.Fatal(err)
	}
	if ranks.Schema().Arity() != 1 || ranks.Len() != 2 {
		t.Fatalf("projected: %s", ranks)
	}
	if _, err := merrie.Project("salary"); err == nil {
		t.Error("projecting unknown attribute must fail")
	}

	// Join Merrie's versions with Tom's: derived valid = intersection.
	tom, err := rel.Query().WhereEq("name", String("Tom")).Run()
	if err != nil {
		t.Fatal(err)
	}
	j, err := Join(merrie, tom, "f1", "f2", nil)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 {
		t.Fatalf("join: %s", j)
	}
	_, valid := j.Row(0)
	// Tom [12/05/82,∞) ∩ Merrie full [12/01/82,∞) = [12/05/82,∞);
	// Merrie associate [09/01/77,12/01/82) ∩ Tom = empty, dropped.
	if valid != temporal.Since(d821205) {
		t.Errorf("joined valid = %v", valid)
	}
	if j.Schema().Index("f1.name") < 0 || j.Schema().Index("f2.rank") < 0 {
		t.Errorf("join schema: %v", j.Schema())
	}
}

func TestQueryCoalesce(t *testing.T) {
	db := memDB(t)
	rel, err := db.CreateRelation("r", Historical, facultySchema(t))
	if err != nil {
		t.Fatal(err)
	}
	// Two assertions with different ranks over meeting periods, then a
	// correction making them the same: query-level coalescing merges.
	if err := rel.Assert(fac("A", "x"), 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := rel.Assert(fac("A", "y"), 10, 20); err != nil {
		t.Fatal(err)
	}
	if err := rel.Assert(fac("A", "x"), 10, 20); err != nil {
		t.Fatal(err)
	}
	plain, err := rel.Query().Run()
	if err != nil {
		t.Fatal(err)
	}
	merged, err := rel.Query().Coalesce().Run()
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() >= plain.Len() && plain.Len() != 1 {
		// The store may have coalesced already (it does); accept either,
		// but coalesced output must be exactly one row [0,20).
	}
	if merged.Len() != 1 {
		t.Fatalf("coalesced: %s", merged)
	}
	_, valid := merged.Row(0)
	if valid != (temporal.Interval{From: 0, To: 20}) {
		t.Errorf("coalesced valid = %v", valid)
	}
}

func TestCountAtTrend(t *testing.T) {
	db := memDB(t)
	rel := loadFaculty(t, db)
	probes := map[temporal.Chronon]int{
		temporal.Date(1976, 1, 1): 0,
		temporal.Date(1980, 1, 1): 1, // Merrie
		temporal.Date(1983, 6, 1): 3, // Merrie, Tom, Mike
		temporal.Date(1984, 6, 1): 2, // Mike left
	}
	for at, want := range probes {
		got, err := rel.CountAt(at)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("CountAt(%v) = %d, want %d", at, got, want)
		}
	}
}

func TestGetAndHistory(t *testing.T) {
	db := memDB(t)
	rel := loadFaculty(t, db)
	hist, err := rel.History(Key(String("Merrie")))
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 {
		t.Fatalf("history = %v", hist)
	}
	if hist[0].Data[1].Str() != "associate" || hist[1].Data[1].Str() != "full" {
		t.Errorf("history order: %v", hist)
	}
	if _, _, err := rel.Get(Key(String("Merrie"))); !errors.Is(err, ErrKindMismatch) {
		t.Errorf("Get on temporal: %v", err)
	}

	st, err := db.CreateRelation("s", Static, facultySchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Insert(fac("A", "x")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get(Key(String("A")))
	if err != nil || !ok || got[1].Str() != "x" {
		t.Errorf("Get = %v %v %v", got, ok, err)
	}
	if _, err := st.History(Key(String("A"))); !errors.Is(err, ErrNoValidTime) {
		t.Errorf("History on static: %v", err)
	}
}

func TestStats(t *testing.T) {
	db := memDB(t)
	s := db.Stats()
	if s.Relations != 0 || s.Versions != 0 || s.WALRecords != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
	rel := loadFaculty(t, db)
	_ = rel
	s = db.Stats()
	if s.Relations != 1 {
		t.Errorf("Relations = %d", s.Relations)
	}
	// Figure 8: 7 versions total, 4 with open transaction time.
	if s.Versions != 7 || s.CurrentVersions != 4 {
		t.Errorf("Versions = %d, Current = %d", s.Versions, s.CurrentVersions)
	}
	if s.LastCommit != d840225 {
		t.Errorf("LastCommit = %v", s.LastCommit)
	}
	if s.WALRecords != 0 {
		t.Errorf("in-memory WALRecords = %d", s.WALRecords)
	}
}

func TestResultCoalesce(t *testing.T) {
	db := memDB(t)
	rel, err := db.CreateRelation("r", Historical, facultySchema(t))
	if err != nil {
		t.Fatal(err)
	}
	// Assemble fragmented-but-equivalent history via corrections.
	if err := rel.Assert(fac("A", "x"), 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := rel.Assert(fac("A", "y"), 10, 20); err != nil {
		t.Fatal(err)
	}
	if err := rel.Assert(fac("A", "x"), 10, 20); err != nil {
		t.Fatal(err)
	}
	res, err := rel.Query().Run()
	if err != nil {
		t.Fatal(err)
	}
	merged := res.Coalesce()
	if merged.Len() != 1 {
		t.Fatalf("coalesced result:\n%s", merged)
	}
	if _, valid := merged.Row(0); valid != (temporal.Interval{From: 0, To: 20}) {
		t.Errorf("coalesced valid = %v", valid)
	}
}

func TestAuditTrail(t *testing.T) {
	db := memDB(t)
	rel := loadFaculty(t, db)
	trail, err := rel.AuditTrail(Key(String("Tom")))
	if err != nil {
		t.Fatal(err)
	}
	// Tom's full record: the erroneous "full" (closed 12/07/82) and the
	// correction, in commit order.
	if len(trail) != 2 {
		t.Fatalf("trail = %v", trail)
	}
	if trail[0].Data[1].Str() != "full" || trail[0].Current() {
		t.Errorf("first belief = %v", trail[0])
	}
	if trail[1].Data[1].Str() != "associate" || !trail[1].Current() {
		t.Errorf("second belief = %v", trail[1])
	}
	if trail[0].Trans.To != trail[1].Trans.From {
		t.Errorf("belief handover mismatch: %v -> %v", trail[0].Trans, trail[1].Trans)
	}
	// Unknown keys have empty trails; historical kinds keep no audit record.
	if trail, err := rel.AuditTrail(Key(String("Ghost"))); err != nil || len(trail) != 0 {
		t.Errorf("ghost trail = %v, %v", trail, err)
	}
	hist, err := db.CreateRelation("h", Historical, facultySchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hist.AuditTrail(Key(String("Tom"))); !errors.Is(err, ErrNoRollback) {
		t.Errorf("historical audit trail: %v", err)
	}
}
