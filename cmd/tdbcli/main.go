// Command tdbcli is the interactive client for tdbd: it reads TQuel
// statements (terminated by ';') and prints the server's responses.
//
// Usage:
//
//	tdbcli -addr 127.0.0.1:4791
//	echo 'retrieve (f.rank);' | tdbcli -addr ...
//	tdbcli load -addr ... -rel staff -from start -to stop < staff.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"tdb/internal/command"
	"tdb/server"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "load" {
		runLoad(os.Args[2:])
		return
	}
	addr := flag.String("addr", "127.0.0.1:4791", "tdbd address")
	flag.Parse()

	c, err := server.Dial(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdbcli:", err)
		os.Exit(1)
	}
	defer c.Close()

	interactive := false
	if stat, _ := os.Stdin.Stat(); stat != nil && stat.Mode()&os.ModeCharDevice != 0 {
		interactive = true
		fmt.Printf("connected to %s — statements end with ';' (ctrl-D to quit)\n", *addr)
		fmt.Print("tquel> ")
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	for sc.Scan() {
		line := sc.Text()
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			if interactive {
				fmt.Print("    -> ")
			}
			continue
		}
		src := strings.ReplaceAll(buf.String(), ";", " ")
		buf.Reset()
		if trimmed := strings.TrimSpace(src); trimmed != "" {
			// Admin verbs from the shared registry ("cache", "config",
			// "stats", "help") travel as wire commands; everything else is
			// TQuel source.
			var resp *server.Response
			var err error
			if command.IsCommand(trimmed) {
				resp, err = c.Command(trimmed)
			} else {
				resp, err = c.Exec(src)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "tdbcli:", err)
				os.Exit(1)
			}
			for _, o := range resp.Outcomes {
				if o.Table != "" {
					fmt.Print(o.Table)
				} else if o.Msg != "" {
					fmt.Println(o.Msg)
				}
			}
			if resp.Cache != nil && len(resp.Outcomes) == 0 {
				fmt.Printf("%+v\n", *resp.Cache)
			}
			if resp.Error != "" {
				fmt.Fprintln(os.Stderr, resp.Error)
			}
		}
		if interactive {
			fmt.Print("tquel> ")
		}
	}
	if interactive {
		fmt.Println()
	}
}
