package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"tdb/server"
)

// runLoad implements `tdbcli load`: it turns a CSV stream into TQuel
// append statements and ships them as pipelined batch requests — several
// multi-statement batches in flight at once — so a bulk load pays one
// round trip per batch window instead of one per row.
//
// The first CSV record is the header; each column names an attribute of
// the target relation. The -from/-to/-at flags designate columns that
// carry the valid period instead of data ("forever", "beginning", "now",
// or a quoted date such as "01/01/83"). Values that parse as integers or
// floats are emitted as numeric literals, everything else as an escaped
// string — matching the lexer's sniffing a human would do typing the
// appends by hand.
//
// Statements inside a batch are independent transactions: on a mid-batch
// error the rows before the failing one stay committed. load reports how
// many rows were applied before exiting non-zero, so a rerun can skip
// them with standard tools (tail -n +K).
func runLoad(args []string) {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:4791", "tdbd address")
	rel := fs.String("rel", "", "target relation (required)")
	fromCol := fs.String("from", "", "CSV column holding the valid-from event")
	toCol := fs.String("to", "", "CSV column holding the valid-to event")
	atCol := fs.String("at", "", "CSV column holding a valid-at instant (event relations)")
	batch := fs.Int("batch", 64, "statements per batch request")
	inflight := fs.Int("inflight", 4, "pipelined batch requests in flight")
	fs.Parse(args)

	if *rel == "" {
		fmt.Fprintln(os.Stderr, "tdbcli load: -rel is required")
		os.Exit(2)
	}
	if *batch < 1 {
		*batch = 1
	}
	if *inflight < 1 {
		*inflight = 1
	}

	in := io.Reader(os.Stdin)
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "tdbcli load:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	c, err := server.Dial(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tdbcli load:", err)
		os.Exit(1)
	}
	defer c.Close()

	applied, err := streamLoad(c, in, *rel, *fromCol, *toCol, *atCol, *batch, *inflight)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tdbcli load: %v (%d rows applied)\n", err, applied)
		os.Exit(1)
	}
	fmt.Printf("loaded %d rows into %s\n", applied, *rel)
}

// streamLoad reads CSV records, renders appends, and keeps up to inflight
// batch requests pipelined. It returns the number of statements the server
// reported successful.
func streamLoad(c *server.Client, in io.Reader, rel, fromCol, toCol, atCol string, batch, inflight int) (int, error) {
	r := csv.NewReader(in)
	r.FieldsPerRecord = 0 // every record must match the header width
	header, err := r.Read()
	if err != nil {
		return 0, fmt.Errorf("reading CSV header: %w", err)
	}
	fromIdx, toIdx, atIdx := -1, -1, -1
	var attrs []int // header indexes that carry tuple data
	for i, name := range header {
		switch {
		case fromCol != "" && name == fromCol:
			fromIdx = i
		case toCol != "" && name == toCol:
			toIdx = i
		case atCol != "" && name == atCol:
			atIdx = i
		default:
			attrs = append(attrs, i)
		}
	}
	for col, idx := range map[string]int{fromCol: fromIdx, toCol: toIdx, atCol: atIdx} {
		if col != "" && idx < 0 {
			return 0, fmt.Errorf("column %q not in CSV header", col)
		}
	}
	if len(attrs) == 0 {
		return 0, fmt.Errorf("no data columns in CSV header")
	}

	applied := 0
	var stmts []string
	var window []server.Request
	flushWindow := func() error {
		if len(window) == 0 {
			return nil
		}
		resps, err := c.Pipeline(window)
		window = window[:0]
		for _, resp := range resps {
			for _, item := range resp.Batch {
				if item.Error != "" {
					return fmt.Errorf("%s", item.Error)
				}
				applied++
			}
			if resp.Error != "" {
				return fmt.Errorf("%s", resp.Error)
			}
		}
		if err != nil {
			return fmt.Errorf("pipeline: %w", err)
		}
		return nil
	}
	flushBatch := func(force bool) error {
		if len(stmts) > 0 {
			window = append(window, server.Request{Cmd: "batch", Batch: stmts})
			stmts = nil
		}
		if len(window) >= inflight || (force && len(window) > 0) {
			return flushWindow()
		}
		return nil
	}

	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Drain what is already on the wire before reporting: those rows
			// are committed whether or not we count them.
			if ferr := flushBatch(true); ferr != nil {
				return applied, ferr
			}
			return applied, fmt.Errorf("reading CSV: %w", err)
		}
		stmts = append(stmts, renderAppend(rel, header, attrs, rec, fromIdx, toIdx, atIdx))
		if len(stmts) >= batch {
			if err := flushBatch(false); err != nil {
				return applied, err
			}
		}
	}
	if err := flushBatch(true); err != nil {
		return applied, err
	}
	return applied, nil
}

// renderAppend formats one CSV record as a TQuel append statement.
func renderAppend(rel string, header []string, attrs []int, rec []string, fromIdx, toIdx, atIdx int) string {
	var b strings.Builder
	b.WriteString("append to ")
	b.WriteString(rel)
	b.WriteString(" (")
	for n, i := range attrs {
		if n > 0 {
			b.WriteString(", ")
		}
		b.WriteString(header[i])
		b.WriteString(" = ")
		b.WriteString(tquelLiteral(rec[i]))
	}
	b.WriteString(")")
	switch {
	case atIdx >= 0:
		b.WriteString(" valid at ")
		b.WriteString(tquelEvent(rec[atIdx]))
	case fromIdx >= 0:
		b.WriteString(" valid from ")
		b.WriteString(tquelEvent(rec[fromIdx]))
		b.WriteString(" to ")
		if toIdx >= 0 {
			b.WriteString(tquelEvent(rec[toIdx]))
		} else {
			b.WriteString("forever")
		}
	}
	return b.String()
}

// tquelLiteral renders a CSV field as a TQuel literal: integers and floats
// stay numeric, everything else becomes an escaped string.
func tquelLiteral(v string) string {
	if _, err := strconv.ParseInt(v, 10, 64); err == nil {
		return v
	}
	if _, err := strconv.ParseFloat(v, 64); err == nil && strings.ContainsAny(v, ".eE") {
		return v
	}
	return quoteTquel(v)
}

// tquelEvent renders a valid-time field: the temporal keywords pass through
// bare, anything else is treated as a date/instant string literal.
func tquelEvent(v string) string {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "forever", "beginning", "now":
		return strings.ToLower(strings.TrimSpace(v))
	}
	return quoteTquel(v)
}

// quoteTquel produces a double-quoted TQuel string with the lexer's escape
// set (backslash, quote, newline, tab).
func quoteTquel(v string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}
