package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const oldFixture = `{
  "goos": "linux",
  "goarch": "amd64",
  "results": [
    {"name": "BenchmarkJoinEquiSelective/planner=on", "pkg": "tdb/tquel", "iterations": 10, "ns_per_op": 100000000},
    {"name": "BenchmarkJoinCrossSmall/planner=on", "pkg": "tdb/tquel", "iterations": 50, "ns_per_op": 2000000},
    {"name": "BenchmarkRetiredOnlyInOld", "pkg": "tdb/tquel", "iterations": 100, "ns_per_op": 5000}
  ]
}`

const newFixture = `{
  "goos": "linux",
  "goarch": "amd64",
  "results": [
    {"name": "BenchmarkJoinEquiSelective/planner=on", "pkg": "tdb/tquel", "iterations": 10, "ns_per_op": 150000000},
    {"name": "BenchmarkJoinCrossSmall/planner=on", "pkg": "tdb/tquel", "iterations": 60, "ns_per_op": 1800000},
    {"name": "BenchmarkBrandNew", "pkg": "tdb/tquel", "iterations": 10, "ns_per_op": 7000}
  ]
}`

func writeFixtures(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldPath, []byte(oldFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(newFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	return oldPath, newPath
}

// At the default threshold (1.25x) the 1.5x JoinEquiSelective slowdown is a
// regression: the table must flag it and the exit code must be non-zero.
func TestCompareFlagsRegression(t *testing.T) {
	oldPath, newPath := writeFixtures(t)
	var stdout, stderr strings.Builder
	code := runCompare([]string{oldPath, newPath}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "BenchmarkJoinEquiSelective/planner=on") ||
		!strings.Contains(out, "REGRESSED") {
		t.Errorf("table missing flagged regression:\n%s", out)
	}
	// The improved benchmark is listed but not flagged.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "JoinCrossSmall") && strings.Contains(line, "REGRESSED") {
			t.Errorf("improvement flagged as regression: %s", line)
		}
	}
	// A benchmark retired from the new report is not compared; one that is
	// new is listed as "new" without a ratio and never counts as a
	// regression.
	if strings.Contains(out, "RetiredOnlyInOld") {
		t.Errorf("retired benchmark leaked into the table:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "BenchmarkBrandNew") {
			continue
		}
		if !strings.Contains(line, "new") || strings.Contains(line, "REGRESSED") {
			t.Errorf("new-only benchmark misreported: %s", line)
		}
	}
	if !strings.Contains(out, "BenchmarkBrandNew") {
		t.Errorf("new-only benchmark missing from the table:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "1 benchmark(s) regressed") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

// A looser threshold accepts the same pair of reports.
func TestCompareThresholdFlag(t *testing.T) {
	oldPath, newPath := writeFixtures(t)
	for _, args := range [][]string{
		{oldPath, newPath, "-threshold", "1.6"},
		{oldPath, newPath, "-threshold=1.6"},
		{"-threshold", "1.6", oldPath, newPath},
	} {
		var stdout, stderr strings.Builder
		if code := runCompare(args, &stdout, &stderr); code != 0 {
			t.Errorf("args %v: exit code = %d, want 0\nstderr: %s", args, code, stderr.String())
		}
	}
}

func TestCompareUsageErrors(t *testing.T) {
	oldPath, newPath := writeFixtures(t)
	for _, args := range [][]string{
		{oldPath},
		{oldPath, newPath, "-threshold", "zero"},
		{oldPath, newPath, "-threshold"},
		{oldPath, filepath.Join(t.TempDir(), "missing.json")},
	} {
		var stdout, stderr strings.Builder
		if code := runCompare(args, &stdout, &stderr); code != 2 {
			t.Errorf("args %v: exit code = %d, want 2", args, code)
		}
	}
}

func TestCompareReportsRatios(t *testing.T) {
	oldRep := report{Results: []result{
		{Name: "BenchmarkA", Pkg: "p", NsPerOp: 1000},
		{Name: "BenchmarkB", Pkg: "p", NsPerOp: 1000},
	}}
	newRep := report{Results: []result{
		{Name: "BenchmarkB", Pkg: "p", NsPerOp: 500},
		{Name: "BenchmarkA", Pkg: "p", NsPerOp: 1300},
	}}
	cmps := compareReports(oldRep, newRep, 1.25)
	if len(cmps) != 2 {
		t.Fatalf("comparisons = %d, want 2", len(cmps))
	}
	if cmps[0].Name != "BenchmarkA" || !cmps[0].Regressed || cmps[0].Ratio != 1.3 {
		t.Errorf("A = %+v", cmps[0])
	}
	if cmps[1].Name != "BenchmarkB" || cmps[1].Regressed || cmps[1].Ratio != 0.5 {
		t.Errorf("B = %+v", cmps[1])
	}
}

// Malformed input files must exit 2, not silently print "no shared
// benchmarks" and pass: trailing content after the JSON document, a
// non-report document, and a report with zero results are all rejected.
func TestCompareMalformedInputs(t *testing.T) {
	oldPath, _ := writeFixtures(t)
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string]string{
		"truncated.json": `{"results": [{"name": "BenchmarkA"`,
		"trailing.json":  oldFixture + `{"results": []}`,
		"garbage.json":   oldFixture + "\nnot json\n",
		"array.json":     `[1, 2, 3]`,
		"empty.json":     `{}`,
		"noresults.json": `{"goos": "linux", "results": []}`,
	}
	for name, content := range cases {
		bad := write(name, content)
		for _, args := range [][]string{{bad, oldPath}, {oldPath, bad}} {
			var stdout, stderr strings.Builder
			if code := runCompare(args, &stdout, &stderr); code != 2 {
				t.Errorf("%s as %v: exit code = %d, want 2\nstdout: %s",
					name, args, code, stdout.String())
			}
			if stderr.Len() == 0 {
				t.Errorf("%s: no diagnostic on stderr", name)
			}
		}
	}
	// The well-formed fixtures still compare cleanly at a loose threshold.
	var stdout, stderr strings.Builder
	if code := runCompare([]string{oldPath, oldPath}, &stdout, &stderr); code != 0 {
		t.Errorf("self-compare exit code = %d\nstderr: %s", code, stderr.String())
	}
}

// A baseline that predates the window-aggregate work must not gate the
// benchmarks this PR introduces: window, coalesce, and tdbgen entries in
// the new report are listed as new-only (no ratio, never regressed) while
// the shared benchmarks are still rated against the threshold.
func TestCompareWindowBenchmarksNewOnly(t *testing.T) {
	oldPath, _ := writeFixtures(t)
	newRep := `{
  "goos": "linux",
  "results": [
    {"name": "BenchmarkJoinCrossSmall/planner=on", "pkg": "tdb/tquel", "iterations": 55, "ns_per_op": 1900000},
    {"name": "BenchmarkWindowAggregate", "pkg": "tdb/tquel", "iterations": 50, "ns_per_op": 90000},
    {"name": "BenchmarkCoalesce", "pkg": "tdb/tquel", "iterations": 80, "ns_per_op": 40000},
    {"name": "BenchmarkTdbgen/append", "pkg": "tdb/cmd/tdbgen", "iterations": 100000, "ns_per_op": 250000}
  ]
}`
	p := filepath.Join(t.TempDir(), "pr10.json")
	if err := os.WriteFile(p, []byte(newRep), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	code := runCompare([]string{oldPath, p, "-threshold", "1.25"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, line := range strings.Split(out, "\n") {
		for _, name := range []string{"BenchmarkWindowAggregate", "BenchmarkCoalesce", "BenchmarkTdbgen/append"} {
			if strings.Contains(line, name) && !strings.Contains(line, "new") {
				t.Errorf("window-era benchmark not marked new: %s", line)
			}
		}
	}
	if strings.Contains(out, "REGRESSED") {
		t.Errorf("baseline-absent benchmarks flagged a regression:\n%s", out)
	}
}

// A new report whose every benchmark is new — the first run after adding a
// benchmark suite — passes the gate: everything is listed as "new", no
// ratio, exit 0.
func TestCompareAllNewBenchmarksPass(t *testing.T) {
	oldPath, _ := writeFixtures(t)
	newOnly := `{
  "goos": "linux",
  "results": [
    {"name": "BenchmarkIngestThroughput/mode=GroupCommit", "pkg": "tdb", "iterations": 10, "ns_per_op": 7000},
    {"name": "BenchmarkIngestThroughput/mode=BulkLoad", "pkg": "tdb", "iterations": 10, "ns_per_op": 3000}
  ]
}`
	p := filepath.Join(t.TempDir(), "newonly.json")
	if err := os.WriteFile(p, []byte(newOnly), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	code := runCompare([]string{oldPath, p}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, name := range []string{"mode=GroupCommit", "mode=BulkLoad"} {
		if !strings.Contains(out, name) {
			t.Errorf("new benchmark %s missing from table:\n%s", name, out)
		}
	}
	if strings.Contains(out, "REGRESSED") {
		t.Errorf("new-only report flagged a regression:\n%s", out)
	}
}
