// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout, so benchmark runs can be committed and diffed
// (make bench-json > BENCH_PR3.json). Non-benchmark lines contribute the
// run's metadata (goos, goarch, cpu, pkg) and everything else is ignored,
// making the tool safe to feed a full test log. A `-count=N` run emits
// each benchmark N times; repetitions collapse to the minimum ns/op —
// scheduling and co-tenant interference only ever inflate a timing, so
// the fastest repetition is the closest estimate of the code's cost.
//
// The compare subcommand diffs two such documents:
//
//	benchjson compare old.json new.json -threshold 1.25
//
// prints a table of the benchmarks present in both files and exits
// non-zero when any of them got slower than threshold times its old
// ns/op (see compare.go).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// result is one benchmark line.
type result struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

type report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []result `json:"results"`
}

// benchLine matches "BenchmarkName-8  123  456.7 ns/op[  89 B/op  12 allocs/op]".
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

// parse reads a `go test -bench` log into a report. Repeated lines for
// the same benchmark (`-count=N`) collapse to the repetition with the
// minimum ns/op.
func parse(in io.Reader) (report, error) {
	rep := report{Results: []result{}}
	idx := map[string]int{} // pkg+name -> position in rep.Results
	pkg := ""
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		default:
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			r := result{Name: m[1], Pkg: pkg}
			r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
			r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
			if m[4] != "" {
				r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
				r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
			}
			key := r.Pkg + "\x00" + r.Name
			if at, ok := idx[key]; ok {
				if r.NsPerOp < rep.Results[at].NsPerOp {
					rep.Results[at] = r
				}
				continue
			}
			idx[key] = len(rep.Results)
			rep.Results = append(rep.Results, r)
		}
	}
	return rep, sc.Err()
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(runCompare(os.Args[2:], os.Stdout, os.Stderr))
	}
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
