package main

import (
	"strings"
	"testing"
)

const sampleLog = `goos: linux
goarch: amd64
pkg: tdb/tquel
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkJoinEquiSelective/planner=on-8         	      10	 160623020 ns/op	35351992 B/op	 1593483 allocs/op
BenchmarkJoinEquiSelective/planner=off-8        	       1	4201947861 ns/op	1635378672 B/op	26593892 allocs/op
BenchmarkEvalWhere          	  500000	      2755 ns/op
--- PASS: TestSomething (0.00s)
PASS
ok  	tdb/tquel	4.392s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("metadata = %q %q %q", rep.Goos, rep.Goarch, rep.CPU)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Name != "BenchmarkJoinEquiSelective/planner=on" {
		t.Errorf("name = %q (the -8 GOMAXPROCS suffix must be stripped)", r.Name)
	}
	if r.Pkg != "tdb/tquel" || r.Iterations != 10 || r.NsPerOp != 160623020 {
		t.Errorf("result 0 = %+v", r)
	}
	if r.BytesPerOp != 35351992 || r.AllocsPerOp != 1593483 {
		t.Errorf("memstats = %d B/op, %d allocs/op", r.BytesPerOp, r.AllocsPerOp)
	}
	// Lines without -benchmem columns still parse.
	if r := rep.Results[2]; r.Name != "BenchmarkEvalWhere" || r.NsPerOp != 2755 || r.BytesPerOp != 0 {
		t.Errorf("result 2 = %+v", r)
	}
}

// A -count=N run repeats each benchmark line; repetitions collapse to the
// minimum ns/op (interference only inflates timings), and the same name
// in a different package stays a separate result.
func TestParseCountRepetitionsTakeMin(t *testing.T) {
	const log = `pkg: tdb/tquel
BenchmarkEvalWhere-8   	  500000	      2755 ns/op
BenchmarkEvalWhere-8   	  600000	      2100 ns/op	     128 B/op	       2 allocs/op
BenchmarkEvalWhere-8   	  550000	      2400 ns/op
pkg: tdb/server
BenchmarkEvalWhere-8   	  100000	      9000 ns/op
`
	rep, err := parse(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("results = %d, want 2 (3 reps collapsed + 1 other pkg)", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Pkg != "tdb/tquel" || r.NsPerOp != 2100 || r.Iterations != 600000 || r.BytesPerOp != 128 {
		t.Errorf("collapsed result = %+v, want the 2100 ns/op repetition", r)
	}
	if r := rep.Results[1]; r.Pkg != "tdb/server" || r.NsPerOp != 9000 {
		t.Errorf("cross-package result = %+v", r)
	}
}
