package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// comparison is one benchmark of the new report: rated against its old
// ns/op when the old report has it, marked New otherwise.
type comparison struct {
	Name      string
	OldNs     float64
	NewNs     float64
	Ratio     float64 // new / old; > 1 is slower
	Regressed bool
	New       bool // present only in the new report: listed, never regressed
}

// compareReports matches results by package+name and rates each shared
// benchmark against the threshold. A benchmark only the new report has is
// listed as "new" with no ratio — it has no baseline to regress against,
// so a report introducing benchmarks still passes the gate. Benchmarks
// only the old report has are retired and ignored: the tool compares runs,
// it does not police coverage.
func compareReports(oldRep, newRep report, threshold float64) []comparison {
	oldNs := make(map[string]float64, len(oldRep.Results))
	for _, r := range oldRep.Results {
		oldNs[r.Pkg+"/"+r.Name] = r.NsPerOp
	}
	var out []comparison
	for _, r := range newRep.Results {
		prev, ok := oldNs[r.Pkg+"/"+r.Name]
		if !ok || prev == 0 {
			out = append(out, comparison{Name: r.Name, NewNs: r.NsPerOp, New: true})
			continue
		}
		ratio := r.NsPerOp / prev
		out = append(out, comparison{
			Name:      r.Name,
			OldNs:     prev,
			NewNs:     r.NsPerOp,
			Ratio:     ratio,
			Regressed: ratio > threshold,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// readReport loads and validates one report file. Beyond JSON syntax it
// rejects trailing content after the document (a concatenated or truncated
// file) and reports with no results (typically a bench run that failed
// before producing output) — either would otherwise make compare print
// "no shared benchmarks" and exit 0, silently passing a broken gate.
func readReport(path string) (report, error) {
	var rep report
	f, err := os.Open(path)
	if err != nil {
		return rep, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	if err := dec.Decode(&rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return rep, fmt.Errorf("%s: trailing content after report", path)
	}
	if len(rep.Results) == 0 {
		return rep, fmt.Errorf("%s: report has no benchmark results", path)
	}
	return rep, nil
}

// formatComparison renders the comparison table. Ratios are new/old, so
// 0.50x reads "twice as fast" and 2.00x "twice as slow".
func formatComparison(cmps []comparison, threshold float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-50s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	for _, c := range cmps {
		if c.New {
			fmt.Fprintf(&b, "%-50s %14s %14.0f %8s\n", c.Name, "-", c.NewNs, "new")
			continue
		}
		flag := ""
		if c.Regressed {
			flag = "  REGRESSED"
		}
		fmt.Fprintf(&b, "%-50s %14.0f %14.0f %7.2fx%s\n", c.Name, c.OldNs, c.NewNs, c.Ratio, flag)
	}
	fmt.Fprintf(&b, "threshold: %.2fx\n", threshold)
	return b.String()
}

// runCompare implements `benchjson compare old.json new.json [-threshold N]`.
// It prints the comparison table — shared benchmarks rated, new-only ones
// listed as "new" — and returns 1 when any shared benchmark is slower than
// threshold times its old ns/op, 2 on usage or read errors.
func runCompare(args []string, stdout, stderr io.Writer) int {
	threshold := 1.25
	var files []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-threshold" || a == "--threshold":
			i++
			if i >= len(args) {
				fmt.Fprintln(stderr, "benchjson compare: -threshold needs a value")
				return 2
			}
			a = "-threshold=" + args[i]
			fallthrough
		case strings.HasPrefix(a, "-threshold=") || strings.HasPrefix(a, "--threshold="):
			v := a[strings.Index(a, "=")+1:]
			t, err := strconv.ParseFloat(v, 64)
			if err != nil || t <= 0 {
				fmt.Fprintf(stderr, "benchjson compare: bad threshold %q\n", v)
				return 2
			}
			threshold = t
		default:
			files = append(files, a)
		}
	}
	if len(files) != 2 {
		fmt.Fprintln(stderr, "usage: benchjson compare old.json new.json [-threshold 1.25]")
		return 2
	}
	oldRep, err := readReport(files[0])
	if err != nil {
		fmt.Fprintln(stderr, "benchjson compare:", err)
		return 2
	}
	newRep, err := readReport(files[1])
	if err != nil {
		fmt.Fprintln(stderr, "benchjson compare:", err)
		return 2
	}
	cmps := compareReports(oldRep, newRep, threshold)
	if len(cmps) == 0 {
		fmt.Fprintln(stdout, "benchjson compare: no shared benchmarks")
		return 0
	}
	fmt.Fprint(stdout, formatComparison(cmps, threshold))
	regressed := 0
	for _, c := range cmps {
		if c.Regressed {
			regressed++
		}
	}
	if regressed > 0 {
		fmt.Fprintf(stderr, "benchjson compare: %d benchmark(s) regressed past %.2fx\n", regressed, threshold)
		return 1
	}
	return 0
}
