// Command tquel runs TQuel statements against a temporal database, either
// as a script processor or as an interactive session.
//
// Usage:
//
//	tquel -e 'statements'             # execute and exit (in-memory db)
//	tquel -f script.tq                # run a script file
//	tquel -db path.wal                # persist to a write-ahead log
//	tquel                             # interactive: statements end with ';'
//
// Example session:
//
//	tquel> create temporal relation faculty (name = string, rank = string) key (name);
//	tquel> range of f is faculty;
//	tquel> append to faculty (name = "Merrie", rank = "associate") valid from "09/01/77" to forever;
//	tquel> retrieve (f.rank) where f.name = "Merrie";
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"tdb"
	"tdb/internal/command"
	"tdb/tquel"
)

func main() {
	var (
		dbPath = flag.String("db", "", "write-ahead log path (empty = in-memory)")
		expr   = flag.String("e", "", "statements to execute")
		file   = flag.String("f", "", "script file to execute")
		sync   = flag.Bool("sync", false, "fsync the log after every transaction")
	)
	flag.Parse()

	db, err := tdb.Open(*dbPath, tdb.Options{Sync: *sync})
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	ses := tquel.NewSession(db)

	switch {
	case *expr != "":
		run(ses, *expr)
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		run(ses, string(src))
	default:
		if stat, _ := os.Stdin.Stat(); stat != nil && stat.Mode()&os.ModeCharDevice == 0 {
			// Piped input: treat as a script.
			var b strings.Builder
			sc := bufio.NewScanner(os.Stdin)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			for sc.Scan() {
				b.WriteString(sc.Text())
				b.WriteByte('\n')
			}
			run(ses, b.String())
			return
		}
		interactive(db, ses)
	}
}

// run executes statements, printing each outcome; a failing statement stops
// execution with a nonzero exit.
func run(ses *tquel.Session, src string) {
	outs, err := ses.Exec(stripSemicolons(src))
	for _, o := range outs {
		fmt.Println(o)
	}
	if err != nil {
		fatal(err)
	}
}

// interactive reads statements terminated by ';' and executes them,
// continuing past errors. Admin verbs from the shared registry ("cache",
// "config", "stats", "help") dispatch locally instead of parsing as TQuel.
func interactive(db *tdb.DB, ses *tquel.Session) {
	fmt.Println("tdb TQuel session — statements end with ';' (ctrl-D to quit, \"help;\" for commands)")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("tquel> ")
	for sc.Scan() {
		line := sc.Text()
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			src := stripSemicolons(buf.String())
			buf.Reset()
			if trimmed := strings.TrimSpace(src); trimmed != "" {
				if command.IsCommand(trimmed) {
					res, err := command.Dispatch(db, trimmed)
					switch {
					case err != nil:
						fmt.Fprintln(os.Stderr, err)
					case res.Text != "":
						fmt.Println(res.Text)
					case res.Cache != nil:
						fmt.Printf("%+v\n", *res.Cache)
					}
				} else {
					outs, err := ses.Exec(src)
					for _, o := range outs {
						fmt.Println(o)
					}
					if err != nil {
						fmt.Fprintln(os.Stderr, err)
					}
				}
			}
			fmt.Print("tquel> ")
		} else {
			fmt.Print("    -> ")
		}
	}
	fmt.Println()
}

// stripSemicolons removes statement terminators (TQuel itself has none;
// they are an interactive convenience). Semicolons inside string literals
// are preserved.
func stripSemicolons(src string) string {
	var b strings.Builder
	inString := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case c == '"' && (i == 0 || src[i-1] != '\\'):
			inString = !inString
			b.WriteByte(c)
		case c == ';' && !inString:
			b.WriteByte(' ')
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tquel:", err)
	os.Exit(1)
}
