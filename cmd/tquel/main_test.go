package main

import "testing"

func TestStripSemicolons(t *testing.T) {
	cases := map[string]string{
		`retrieve (f.x);`:              `retrieve (f.x) `,
		`a; b; c`:                      `a  b  c`,
		`where f.name = "a;b";`:        `where f.name = "a;b" `,
		`where f.name = "a\";b"; done`: `where f.name = "a\";b"  done`,
		``:                             ``,
		`no terminators at all`:        `no terminators at all`,
		"multi\nline;\nstatement":      "multi\nline \nstatement",
	}
	for in, want := range cases {
		if got := stripSemicolons(in); got != want {
			t.Errorf("stripSemicolons(%q) = %q, want %q", in, got, want)
		}
	}
}
