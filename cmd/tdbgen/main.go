// Command tdbgen is a seeded workload simulator that drives a live tdbd
// server over the wire protocol: configurable mixes of appends, as-of
// point reads, overlap scans, windowed aggregates, and replaces at a
// controlled pipeline depth, recording per-operation latency histograms
// and emitting a benchjson-compatible JSON report (p50/p99 included), so
// soak runs can be committed, compared, and gated like any benchmark.
//
// Usage:
//
//	tdbgen -addr 127.0.0.1:4791 -ops 100000 -seed 85 -conns 4 -report soak.json
//
// With no -addr, tdbgen self-hosts an in-memory tdbd on a loopback
// listener and drives that — the workload still crosses a real TCP
// connection and the full protocol stack. With -replicas, reads fan out
// through a replica-aware Pool instead of per-worker connections.
//
// The generator is deterministic for a given (-seed, -conns, -ops, -mix):
// each worker derives its own rng stream, so reruns replay the same
// statement sequence. Any execution or transport error makes the exit
// status non-zero; soak jobs treat a single failed operation as a failure.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tdb"
	"tdb/internal/obs"
	"tdb/server"
)

// opKinds in mix-spec order. Window ops alternate a coalesce suffix so the
// coalescing path sees wire traffic too.
var opKinds = []string{"append", "asof", "overlap", "window", "replace"}

type config struct {
	addr     string
	replicas string
	ops      int
	seed     int64
	conns    int
	pipeline int
	mix      string
	report   string
	relation string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "", "tdbd address; empty self-hosts an in-memory server")
	flag.StringVar(&cfg.replicas, "replicas", "", "comma-separated follower addresses (routes reads through a Pool)")
	flag.IntVar(&cfg.ops, "ops", 10000, "total operations across all connections")
	flag.Int64Var(&cfg.seed, "seed", 85, "rng seed; reruns with the same seed replay the same workload")
	flag.IntVar(&cfg.conns, "conns", 4, "concurrent connections (workers)")
	flag.IntVar(&cfg.pipeline, "pipeline", 1, "requests written per flush; >1 amortizes round trips (latency is per flush / depth)")
	flag.StringVar(&cfg.mix, "mix", "append=60,asof=12,overlap=10,window=10,replace=8",
		"operation mix as kind=weight pairs; kinds: "+strings.Join(opKinds, ", "))
	flag.StringVar(&cfg.report, "report", "", "write the JSON report here (empty = stdout)")
	flag.StringVar(&cfg.relation, "relation", "gen", "relation name to create and drive")
	flag.Parse()
	logger := log.New(os.Stderr, "tdbgen: ", log.LstdFlags)
	if err := run(cfg, logger); err != nil {
		logger.Fatal(err)
	}
}

// mixTable is the cumulative-weight lookup a worker samples op kinds from.
type mixTable struct {
	kinds []string
	cum   []int
	total int
}

func parseMix(spec string) (*mixTable, error) {
	weights := map[string]int{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q is not kind=weight", part)
		}
		var w int
		if _, err := fmt.Sscanf(val, "%d", &w); err != nil || w < 0 {
			return nil, fmt.Errorf("mix weight %q is not a non-negative integer", val)
		}
		known := false
		for _, k := range opKinds {
			if k == kind {
				known = true
			}
		}
		if !known {
			return nil, fmt.Errorf("unknown op kind %q (want one of %s)", kind, strings.Join(opKinds, ", "))
		}
		weights[kind] = w
	}
	t := &mixTable{}
	for _, k := range opKinds {
		if w := weights[k]; w > 0 {
			t.total += w
			t.kinds = append(t.kinds, k)
			t.cum = append(t.cum, t.total)
		}
	}
	if t.total == 0 {
		return nil, fmt.Errorf("mix %q has no positive weights", spec)
	}
	return t, nil
}

func (t *mixTable) pick(rng *rand.Rand) string {
	n := rng.Intn(t.total)
	for i, c := range t.cum {
		if n < c {
			return t.kinds[i]
		}
	}
	return t.kinds[len(t.kinds)-1]
}

// opStats is one op kind's latency digest in the report.
type opStats struct {
	Ops         uint64  `json:"ops"`
	Errors      uint64  `json:"errors"`
	MeanSeconds float64 `json:"mean_seconds"`
	P50Seconds  float64 `json:"p50_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
}

// benchResult mirrors cmd/benchjson's result shape so `benchjson compare`
// can diff two tdbgen reports directly.
type benchResult struct {
	Name       string  `json:"name"`
	Pkg        string  `json:"pkg,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

type genReport struct {
	Goos    string        `json:"goos,omitempty"`
	Goarch  string        `json:"goarch,omitempty"`
	Results []benchResult `json:"results"`

	Seed           int64              `json:"seed"`
	Ops            uint64             `json:"ops"`
	Conns          int                `json:"conns"`
	Pipeline       int                `json:"pipeline"`
	Mix            string             `json:"mix"`
	ElapsedSeconds float64            `json:"elapsed_seconds"`
	OpsPerSecond   float64            `json:"ops_per_second"`
	Errors         uint64             `json:"errors"`
	PerOp          map[string]opStats `json:"per_op"`
}

func run(cfg config, logger *log.Logger) error {
	mix, err := parseMix(cfg.mix)
	if err != nil {
		return err
	}
	if cfg.conns < 1 {
		cfg.conns = 1
	}
	if cfg.pipeline < 1 {
		cfg.pipeline = 1
	}

	// Self-host an in-memory server when no address was given: the workload
	// still crosses loopback TCP and the full protocol stack.
	addr := cfg.addr
	if addr == "" {
		db, err := tdb.Open("", tdb.Options{})
		if err != nil {
			return err
		}
		defer db.Close()
		srv := server.New(db, logger)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go srv.Serve(l)
		defer srv.Close()
		addr = l.Addr().String()
		logger.Printf("self-hosted tdbd on %s", addr)
	}

	reg := obs.NewRegistry()
	hists := map[string]*obs.Histogram{}
	for _, k := range opKinds {
		hists[k] = reg.Histogram(
			fmt.Sprintf("tdbgen_op_seconds{op=%q}", k),
			"per-operation wire latency by kind", obs.TimeBuckets)
	}
	var errCount atomic.Uint64
	errByKind := map[string]*atomic.Uint64{}
	for _, k := range opKinds {
		errByKind[k] = &atomic.Uint64{}
	}
	// sums tracks exact per-kind latency totals for mean ns/op; histograms
	// keep the tails.
	sums := map[string]*atomic.Uint64{} // nanoseconds
	for _, k := range opKinds {
		sums[k] = &atomic.Uint64{}
	}

	// Schema setup on a throwaway connection. A rerun against a persistent
	// server finds the relation already there; that is fine.
	setup, err := server.Dial(addr)
	if err != nil {
		return err
	}
	create := fmt.Sprintf("create temporal relation %s (id = string, shard = string, v = int) key (id)", cfg.relation)
	resp, err := setup.Exec(create)
	if err != nil {
		setup.Close()
		return err
	}
	if resp.Error != "" && !strings.Contains(resp.Error, "exists") {
		setup.Close()
		return fmt.Errorf("creating %s: %s", cfg.relation, resp.Error)
	}
	setup.Close()

	// Pool mode: reads fan out to replicas, writes go to the primary, and
	// the range declaration is broadcast once. Otherwise each worker gets a
	// private connection with its own session.
	var pool *server.Pool
	decl := fmt.Sprintf("range of g is %s", cfg.relation)
	if cfg.replicas != "" {
		var reps []string
		for _, r := range strings.Split(cfg.replicas, ",") {
			if r = strings.TrimSpace(r); r != "" {
				reps = append(reps, r)
			}
		}
		pool, err = server.NewPool(addr, reps, server.PoolOptions{MaxLag: -1})
		if err != nil {
			return err
		}
		defer pool.Close()
		if resp, err := pool.Exec(context.Background(), decl); err != nil {
			return err
		} else if resp.Error != "" {
			return fmt.Errorf("declaring range: %s", resp.Error)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	workerErrs := make([]error, cfg.conns)
	for w := 0; w < cfg.conns; w++ {
		n := cfg.ops / cfg.conns
		if w < cfg.ops%cfg.conns {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			wk := &worker{
				id:    w,
				rel:   cfg.relation,
				rng:   rand.New(rand.NewSource(cfg.seed + int64(w)*1_000_003)),
				mix:   mix,
				pool:  pool,
				depth: cfg.pipeline,
				hists: hists,
				sums:  sums,
				errs:  errByKind,
				total: &errCount,
			}
			workerErrs[w] = wk.run(addr, decl, n)
		}(w, n)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, werr := range workerErrs {
		if werr != nil {
			return werr
		}
	}

	rep := buildReport(cfg, mix, hists, sums, errByKind, errCount.Load(), elapsed)
	out := os.Stdout
	if cfg.report != "" {
		f, err := os.Create(cfg.report)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	logger.Printf("%d ops in %.2fs (%.0f ops/s), %d errors",
		rep.Ops, rep.ElapsedSeconds, rep.OpsPerSecond, rep.Errors)
	for _, k := range opKinds {
		if s, ok := rep.PerOp[k]; ok && s.Ops > 0 {
			logger.Printf("  %-8s %7d ops  p50 %8.1fµs  p99 %8.1fµs",
				k, s.Ops, s.P50Seconds*1e6, s.P99Seconds*1e6)
		}
	}
	if rep.Errors > 0 {
		return fmt.Errorf("%d operation(s) failed", rep.Errors)
	}
	return nil
}

func buildReport(cfg config, mix *mixTable, hists map[string]*obs.Histogram,
	sums map[string]*atomic.Uint64, errs map[string]*atomic.Uint64,
	errTotal uint64, elapsed time.Duration) *genReport {
	rep := &genReport{
		Goos: runtime.GOOS, Goarch: runtime.GOARCH,
		Seed: cfg.seed, Conns: cfg.conns, Pipeline: cfg.pipeline, Mix: cfg.mix,
		ElapsedSeconds: elapsed.Seconds(),
		Errors:         errTotal,
		PerOp:          map[string]opStats{},
	}
	for _, k := range opKinds {
		h := hists[k]
		n := h.Count()
		if n == 0 && errs[k].Load() == 0 {
			continue
		}
		mean := 0.0
		if n > 0 {
			mean = float64(sums[k].Load()) / float64(n) / 1e9
		}
		rep.PerOp[k] = opStats{
			Ops:         n,
			Errors:      errs[k].Load(),
			MeanSeconds: mean,
			P50Seconds:  h.Quantile(0.50),
			P99Seconds:  h.Quantile(0.99),
		}
		rep.Ops += n
		rep.Results = append(rep.Results, benchResult{
			Name:       "BenchmarkTdbgen/" + k,
			Pkg:        "tdb/cmd/tdbgen",
			Iterations: int64(n),
			NsPerOp:    mean * 1e9,
		})
	}
	sort.Slice(rep.Results, func(i, j int) bool { return rep.Results[i].Name < rep.Results[j].Name })
	if rep.ElapsedSeconds > 0 {
		rep.OpsPerSecond = float64(rep.Ops) / rep.ElapsedSeconds
	}
	return rep
}

// worker drives one connection (or the shared pool) through n operations.
type worker struct {
	id    int
	rel   string
	rng   *rand.Rand
	mix   *mixTable
	pool  *server.Pool
	depth int
	hists map[string]*obs.Histogram
	sums  map[string]*atomic.Uint64
	errs  map[string]*atomic.Uint64
	total *atomic.Uint64

	seq int      // appends issued; ids are "w<id>k<seq>"
	ids []string // ids this worker has appended, for point reads and replaces
}

func (wk *worker) run(addr, decl string, n int) error {
	if wk.pool != nil {
		return wk.runPool(n)
	}
	c, err := server.Dial(addr)
	if err != nil {
		return fmt.Errorf("worker %d: %w", wk.id, err)
	}
	defer c.Close()
	if resp, err := c.Exec(decl); err != nil {
		return fmt.Errorf("worker %d: %w", wk.id, err)
	} else if resp.Error != "" {
		return fmt.Errorf("worker %d: %s", wk.id, resp.Error)
	}

	// Operations flush in pipeline-depth batches: every request is written
	// before any response is read, so one round trip covers the whole
	// flush. Recorded latency is flush time divided by depth — exact at
	// depth 1, amortized above it.
	for done := 0; done < n; {
		batch := wk.depth
		if left := n - done; batch > left {
			batch = left
		}
		kinds := make([]string, batch)
		reqs := make([]server.Request, batch)
		for i := range reqs {
			kinds[i], reqs[i] = wk.next()
		}
		begin := time.Now()
		resps, err := c.Pipeline(reqs)
		per := time.Since(begin) / time.Duration(batch)
		if err != nil {
			return fmt.Errorf("worker %d: %w", wk.id, err)
		}
		for i, resp := range resps {
			wk.record(kinds[i], per, resp.Error)
		}
		done += batch
	}
	return nil
}

func (wk *worker) runPool(n int) error {
	ctx := context.Background()
	for i := 0; i < n; i++ {
		kind, req := wk.next()
		begin := time.Now()
		resp, err := wk.pool.Exec(ctx, req.Src)
		if err != nil {
			return fmt.Errorf("worker %d: %w", wk.id, err)
		}
		wk.record(kind, time.Since(begin), resp.Error)
	}
	return nil
}

func (wk *worker) record(kind string, lat time.Duration, execErr string) {
	wk.hists[kind].Observe(lat.Seconds())
	wk.sums[kind].Add(uint64(lat.Nanoseconds()))
	if execErr != "" {
		wk.errs[kind].Add(1)
		wk.total.Add(1)
	}
}

// next generates one operation. Point reads and replaces target ids this
// worker appended earlier; until the first append lands they degrade to
// appends, keeping the statement stream well-formed at any mix.
func (wk *worker) next() (string, server.Request) {
	kind := wk.mix.pick(wk.rng)
	if (kind == "asof" || kind == "replace") && len(wk.ids) == 0 {
		kind = "append"
	}
	var src string
	switch kind {
	case "append":
		id := fmt.Sprintf("w%dk%d", wk.id, wk.seq)
		wk.seq++
		wk.ids = append(wk.ids, id)
		src = fmt.Sprintf(`append to %s (id = %q, shard = "s%02d", v = %d) valid from %q to %q`,
			wk.rel, id, wk.rng.Intn(16), wk.rng.Intn(1000), wk.fromDate(), wk.toDate())
	case "asof":
		id := wk.ids[wk.rng.Intn(len(wk.ids))]
		src = fmt.Sprintf(`retrieve (g.v) where g.id = %q as of %q`, id, wk.date(82, 3))
	case "overlap":
		src = fmt.Sprintf(`retrieve (g.id, g.v) where g.shard = "s%02d" when g overlap %q`,
			wk.rng.Intn(16), wk.date(81, 3))
	case "window":
		src = fmt.Sprintf(`retrieve (c = count(g.v), s = sum(g.v)) where g.shard = "s%02d" window %d`,
			wk.rng.Intn(16), 31536000/(1+wk.rng.Intn(3)))
		if wk.rng.Intn(2) == 0 {
			src += " coalesce"
		}
	case "replace":
		id := wk.ids[wk.rng.Intn(len(wk.ids))]
		src = fmt.Sprintf(`replace g (v = %d) where g.id = %q valid from %q to %q`,
			wk.rng.Intn(1000), id, wk.fromDate(), wk.toDate())
	}
	return kind, server.Request{Src: src}
}

// Date literals are mm/dd/yy strings, the only instant spelling the TQuel
// grammar accepts. fromDate draws from 1980-81 and toDate from 1982-84, so
// "valid from A to B" intervals are never inverted.
func (wk *worker) date(baseYear, spanYears int) string {
	return fmt.Sprintf("%02d/%02d/%02d", 1+wk.rng.Intn(12), 1+wk.rng.Intn(28), baseYear+wk.rng.Intn(spanYears))
}

func (wk *worker) fromDate() string { return wk.date(80, 2) }
func (wk *worker) toDate() string   { return wk.date(82, 3) }
