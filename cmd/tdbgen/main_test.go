package main

import (
	"encoding/json"
	"io"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSelfHosted drives a small seeded workload against a self-hosted
// in-memory server — the full wire path — and checks the report: every op
// accounted for, zero errors, benchjson-compatible results present.
func TestRunSelfHosted(t *testing.T) {
	report := filepath.Join(t.TempDir(), "soak.json")
	cfg := config{
		ops:      300,
		seed:     85,
		conns:    3,
		pipeline: 4,
		mix:      "append=60,asof=12,overlap=10,window=10,replace=8",
		report:   report,
		relation: "gen",
	}
	if err := run(cfg, log.New(io.Discard, "", 0)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep genReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 300 {
		t.Errorf("ops = %d, want 300", rep.Ops)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d:\n%s", rep.Errors, raw)
	}
	if len(rep.Results) == 0 {
		t.Fatal("no benchjson results in report")
	}
	for _, r := range rep.Results {
		if !strings.HasPrefix(r.Name, "BenchmarkTdbgen/") {
			t.Errorf("result name %q lacks BenchmarkTdbgen/ prefix", r.Name)
		}
		if r.Iterations <= 0 || r.NsPerOp <= 0 {
			t.Errorf("degenerate result %+v", r)
		}
	}
	if s, ok := rep.PerOp["append"]; !ok || s.P99Seconds < s.P50Seconds {
		t.Errorf("append stats missing or inverted quantiles: %+v", rep.PerOp)
	}
}

// TestWorkloadDeterminism regenerates a worker's statement stream twice
// from the same seed and expects identical sources.
func TestWorkloadDeterminism(t *testing.T) {
	mix, err := parseMix("append=60,asof=12,overlap=10,window=10,replace=8")
	if err != nil {
		t.Fatal(err)
	}
	gen := func() []string {
		wk := &worker{id: 1, rel: "gen", rng: rand.New(rand.NewSource(85)), mix: mix}
		var out []string
		for i := 0; i < 200; i++ {
			_, req := wk.next()
			out = append(out, req.Src)
		}
		return out
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d diverged:\n%s\n%s", i, a[i], b[i])
		}
	}
}

func TestParseMixErrors(t *testing.T) {
	for _, spec := range []string{"", "bogus=3", "append", "append=-1", "append=0"} {
		if _, err := parseMix(spec); err == nil {
			t.Errorf("no error for mix %q", spec)
		}
	}
	mix, err := parseMix("append=1,window=3")
	if err != nil {
		t.Fatal(err)
	}
	if mix.total != 4 || len(mix.kinds) != 2 {
		t.Fatalf("mix = %+v", mix)
	}
}
