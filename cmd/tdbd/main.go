// Command tdbd serves a temporal database over TCP using the tdb line
// protocol (see package tdb/server). Clients speak TQuel; each connection
// is its own session.
//
// Usage:
//
//	tdbd -addr :4791 -db /var/lib/tdb/data.wal
//
// SIGINT/SIGTERM shut the server down gracefully, draining connections and
// syncing the write-ahead log.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"tdb"
	"tdb/server"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:4791", "listen address")
		dbPath = flag.String("db", "", "write-ahead log path (empty = in-memory)")
		sync   = flag.Bool("sync", false, "fsync the log after every transaction")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "tdbd: ", log.LstdFlags)

	db, err := tdb.Open(*dbPath, tdb.Options{Sync: *sync})
	if err != nil {
		logger.Fatal(err)
	}
	srv := server.New(db, logger)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		logger.Print("shutting down")
		srv.Close()
	}()

	logger.Printf("listening on %s (db=%q sync=%v)", *addr, *dbPath, *sync)
	if err := srv.ListenAndServe(*addr); err != nil {
		logger.Fatal(err)
	}
	if err := db.Close(); err != nil {
		logger.Fatal(err)
	}
}
