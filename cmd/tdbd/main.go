// Command tdbd serves a temporal database over TCP using the tdb line
// protocol (see package tdb/server). Clients speak TQuel; each connection
// is its own session.
//
// Usage:
//
//	tdbd -addr :4791 -db /var/lib/tdb/data.wal -admin :4792
//
// With -follow the process becomes a read-only replica: it streams the
// primary's write-ahead log, applies it continuously, refuses mutations,
// and reports its lag on /statz (see docs/replication.md):
//
//	tdbd -addr :4793 -db /var/lib/tdb/replica.wal -follow 127.0.0.1:4791
//
// SIGINT/SIGTERM shut the server down gracefully, draining connections and
// syncing the write-ahead log. The optional admin endpoint serves
// /metrics (Prometheus text), /healthz, /statz (JSON snapshot), and
// /debug/pprof on its own listener; see docs/observability.md.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tdb"
	tdbconfig "tdb/internal/config"
	"tdb/internal/obs"
	"tdb/internal/repl"
	"tdb/server"
)

// config collects the flag values so run can be exercised from tests.
type config struct {
	addr     string
	admin    string
	dbPath   string
	sync     bool
	slow     time.Duration
	trace    bool
	maxConns int
	readTO   time.Duration
	writeTO  time.Duration
	drainTO  time.Duration
	follow   string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:4791", "listen address")
	flag.StringVar(&cfg.admin, "admin", "", "admin HTTP listen address (e.g. :4792; empty disables)")
	flag.StringVar(&cfg.dbPath, "db", "", "write-ahead log path (empty = in-memory)")
	flag.BoolVar(&cfg.sync, "sync", false, "fsync the log after every transaction")
	flag.DurationVar(&cfg.slow, "slow", 250*time.Millisecond, "log queries at least this slow (0 disables)")
	flag.BoolVar(&cfg.trace, "trace", false, "record per-phase query spans in the metrics registry")
	flag.IntVar(&cfg.maxConns, "max-conns", 0, "cap on concurrent connections; extra clients get a busy response (0 = unlimited)")
	flag.DurationVar(&cfg.readTO, "read-timeout", 0, "disconnect connections idle this long (0 disables)")
	flag.DurationVar(&cfg.writeTO, "write-timeout", 30*time.Second, "bound on writing one response (0 disables)")
	flag.DurationVar(&cfg.drainTO, "drain", server.DefaultDrainTimeout, "how long shutdown waits for in-flight requests")
	flag.StringVar(&cfg.follow, "follow", "", "primary address to replicate from; this node serves reads only")
	flag.Parse()
	logger := log.New(os.Stderr, "tdbd: ", log.LstdFlags)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	if err := run(cfg, logger, sigs, nil); err != nil {
		logger.Fatal(err)
	}
}

// run opens the database, serves until a signal arrives or the listener
// fails, and — in every exit path — closes the database so the write-ahead
// log is synced and released. started, when non-nil, is called with the
// bound listener addresses (admin is nil when disabled) once the server is
// accepting.
func run(cfg config, logger *log.Logger, sigs <-chan os.Signal, started func(serverAddr, adminAddr net.Addr)) (err error) {
	if cfg.follow != "" && cfg.dbPath == "" {
		return errors.New("tdbd: -follow requires -db (followers persist the shipped log)")
	}
	db, err := tdb.Open(cfg.dbPath, tdb.Options{Sync: cfg.sync, ReadOnly: cfg.follow != ""})
	if err != nil {
		return err
	}
	// The deferred close is the shutdown-ordering guarantee: whether Serve
	// returns cleanly (signal) or with an error (port in use, listener
	// failure), the WAL is synced and closed before run returns.
	defer func() {
		if cerr := db.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	srv := server.New(db, logger)
	srv.SlowQueryThreshold = cfg.slow
	srv.MaxConns = cfg.maxConns
	srv.ReadTimeout = cfg.readTO
	srv.WriteTimeout = cfg.writeTO
	srv.DrainTimeout = cfg.drainTO
	if cfg.trace {
		srv.QueryTracer = obs.NewRegistryTracer(obs.Default, "tdb_query")
	}

	// A follower pulls the primary's stream in the background for the whole
	// life of the process; reads are served from the continuously applied
	// local state.
	var follower *repl.Follower
	var stopFollower context.CancelFunc
	if cfg.follow != "" {
		follower = &repl.Follower{Addr: cfg.follow, Target: db, Logger: logger}
		var fctx context.Context
		fctx, stopFollower = context.WithCancel(context.Background())
		defer stopFollower()
		go follower.Run(fctx)
		logger.Printf("following primary at %s", cfg.follow)
	}

	l, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}

	var admin *http.Server
	var adminAddr net.Addr
	if cfg.admin != "" {
		al, err := net.Listen("tcp", cfg.admin)
		if err != nil {
			l.Close()
			return err
		}
		adminAddr = al.Addr()
		admin = &http.Server{Handler: obs.NewAdminMux(obs.Default, obs.AdminOptions{
			Statz: func() map[string]any {
				st := db.Stats()
				m := map[string]any{
					"relations":        st.Relations,
					"versions":         st.Versions,
					"current_versions": st.CurrentVersions,
					"wal_records":      st.WALRecords,
					"last_commit":      int64(st.LastCommit),
					"epoch":            st.Epoch,
					"recovery":         st.Recovery,
					"cache":            db.QueryCache().Stats(),
					"config":           tdbconfig.Snapshot(),
					"stats":            db.TemporalStats(),
					"segments": map[string]any{
						"segments":    st.Segments,
						"sealed_rows": st.SealedRows,
						"tail_rows":   st.TailRows,
					},
				}
				if follower != nil {
					m["replication"] = map[string]any{
						"role":     "follower",
						"primary":  cfg.follow,
						"follower": follower.Stats(),
					}
				} else if st.ReadOnly {
					m["replication"] = map[string]any{"role": "follower"}
				} else {
					m["replication"] = map[string]any{"role": "primary"}
				}
				return m
			},
		})}
		go func() {
			if aerr := admin.Serve(al); aerr != nil && !errors.Is(aerr, http.ErrServerClosed) {
				logger.Printf("admin: %v", aerr)
			}
		}()
		logger.Printf("admin endpoint on %s", adminAddr)
	}

	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-sigs:
			logger.Print("shutting down")
			srv.Close()
		case <-done:
		}
	}()

	logger.Printf("listening on %s (db=%q sync=%v)", l.Addr(), cfg.dbPath, cfg.sync)
	if started != nil {
		started(l.Addr(), adminAddr)
	}
	serveErr := srv.Serve(l)
	// Whatever unblocked Serve — signal or listener failure — finish the
	// drain before the deferred db.Close: Close waits for every in-flight
	// handler even when a concurrent Close started the shutdown.
	srv.Close()
	if admin != nil {
		admin.Close()
	}
	return serveErr
}
