package main

import (
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tdb"
	"tdb/server"
)

// startRun launches run in a goroutine against loopback listeners and
// returns the bound addresses, the signal channel, and the exit channel.
func startRun(t *testing.T, cfg config) (serverAddr, adminAddr net.Addr, sigs chan os.Signal, exit chan error) {
	t.Helper()
	cfg.addr = "127.0.0.1:0"
	logger := log.New(io.Discard, "", 0)
	sigs = make(chan os.Signal, 1)
	exit = make(chan error, 1)
	type addrs struct{ srv, admin net.Addr }
	ready := make(chan addrs, 1)
	go func() {
		exit <- run(cfg, logger, sigs, func(s, a net.Addr) { ready <- addrs{s, a} })
	}()
	select {
	case a := <-ready:
		return a.srv, a.admin, sigs, exit
	case err := <-exit:
		t.Fatalf("run exited before accepting: %v", err)
		return nil, nil, nil, nil
	}
}

// TestGracefulShutdownClosesDB is the regression test for the shutdown
// ordering bug where a serve error bypassed db.Close: after a signal, run
// must drain connections and close the database so everything written is
// recoverable from the WAL.
func TestGracefulShutdownClosesDB(t *testing.T) {
	dbPath := filepath.Join(t.TempDir(), "data.wal")
	srvAddr, _, sigs, exit := startRun(t, config{dbPath: dbPath, sync: false})

	c, err := server.Dial(srvAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Exec(`create temporal relation emp (name = string, rank = string) key (name)
		append to emp (name = "merrie", rank = "full")`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" {
		t.Fatalf("exec: %s", resp.Error)
	}

	sigs <- os.Interrupt
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("run returned %v, want nil after graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after signal")
	}

	// The WAL must have been synced and closed: reopening recovers the
	// relation and its tuple.
	db, err := tdb.Open(dbPath, tdb.Options{})
	if err != nil {
		t.Fatalf("reopen after shutdown: %v", err)
	}
	defer db.Close()
	rel, err := db.Relation("emp")
	if err != nil {
		t.Fatalf("relation lost across shutdown: %v", err)
	}
	vs, err := rel.VisibleVersions(0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Fatalf("recovered %d versions, want 1", len(vs))
	}
}

// TestRunClosesDBOnListenError covers the other half of the ordering bug:
// when the listener cannot be created, run must still return through the
// db.Close path (no leaked WAL handle) and report the listen error.
func TestRunClosesDBOnListenError(t *testing.T) {
	// Occupy a port so run's listen fails.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	dbPath := filepath.Join(t.TempDir(), "data.wal")
	err = run(config{addr: l.Addr().String(), dbPath: dbPath},
		log.New(io.Discard, "", 0), make(chan os.Signal), nil)
	if err == nil {
		t.Fatal("run succeeded with an occupied port")
	}
	// The database was closed on the error path: reopening must not trip
	// over a held lock or unsynced state.
	db, err := tdb.Open(dbPath, tdb.Options{})
	if err != nil {
		t.Fatalf("reopen after listen failure: %v", err)
	}
	db.Close()
}

// TestAdminEndpointServesMetrics exercises the full wiring: TQuel over TCP
// bumps the server counters, and the admin listener exposes them.
func TestAdminEndpointServesMetrics(t *testing.T) {
	srvAddr, adminAddr, sigs, exit := startRun(t, config{admin: "127.0.0.1:0", trace: true})
	defer func() {
		sigs <- os.Interrupt
		<-exit
	}()
	if adminAddr == nil {
		t.Fatal("admin listener not started")
	}

	c, err := server.Dial(srvAddr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`create static relation m (k = string) key (k)
		range of x is m
		retrieve (x.k)`); err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		resp, err := http.Get("http://" + adminAddr.String() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"tdb_server_commands_total",
		"tdb_server_command_seconds_bucket",
		`tdb_query_statements_total{stmt="retrieve"}`,
		"tdb_core_writes_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if body := get("/healthz"); body != "ok\n" {
		t.Errorf("/healthz = %q", body)
	}
	statz := get("/statz")
	if !strings.Contains(statz, `"relations"`) || !strings.Contains(statz, `"metrics"`) {
		t.Errorf("/statz missing app stats: %s", statz[:min(len(statz), 200)])
	}
	if !strings.Contains(statz, `"sealed_rows"`) || !strings.Contains(statz, `"tail_rows"`) {
		t.Errorf("/statz missing segment stats: %s", statz[:min(len(statz), 400)])
	}
	// The temporal-statistics section lists per-relation summaries.
	if !strings.Contains(statz, `"stats"`) || !strings.Contains(statz, `"attr_ndv"`) {
		t.Errorf("/statz missing temporal statistics: %s", statz[:min(len(statz), 400)])
	}
}
