// Command figures regenerates the figures of Snodgrass & Ahn, "A Taxonomy
// of Time in Databases" (SIGMOD 1985), from the running system.
//
// Usage:
//
//	figures            # print every figure
//	figures -fig 8     # print one figure (1-13)
package main

import (
	"flag"
	"fmt"
	"os"

	"tdb"
	"tdb/internal/figures"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to print (0 = all)")
	flag.Parse()

	if *fig == 0 {
		out, err := figures.All()
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}

	var db *tdb.DB
	needDB := *fig >= 2 && *fig <= 9
	if needDB {
		var err error
		db, err = figures.PaperDB()
		if err != nil {
			fatal(err)
		}
		defer db.Close()
	}
	var out string
	var err error
	switch *fig {
	case 1:
		out = figures.Figure1()
	case 2:
		out, err = figures.Figure2(db)
	case 3:
		out, err = figures.Figure3(db)
	case 4:
		out, err = figures.Figure4(db)
	case 5:
		out, err = figures.Figure5(db)
	case 6:
		out, err = figures.Figure6(db)
	case 7:
		out, err = figures.Figure7(db)
	case 8:
		out, err = figures.Figure8(db)
	case 9:
		out, err = figures.Figure9(db)
	case 10, 11, 12:
		out, err = figures.Figures10to12()
	case 13:
		out = figures.Figure13()
	default:
		fatal(fmt.Errorf("no figure %d in the paper (1-13)", *fig))
	}
	if err != nil {
		fatal(err)
	}
	fmt.Print(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
