package tdb

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"tdb/temporal"
)

// loadRows generates n interval rows with distinct names and staggered
// valid periods.
func loadRows(n int) []LoadRow {
	rows := make([]LoadRow, n)
	for i := range rows {
		rows[i] = LoadRow{
			Data: fac(fmt.Sprintf("p%05d", i), "r"),
			From: temporal.Chronon(1000 + i),
			To:   temporal.Chronon(2000 + i),
		}
	}
	return rows
}

// Bulk load produces exactly the state row-at-a-time ingest would, across
// multiple chunks, and the state survives recovery.
func TestLoadMatchesRowAtATime(t *testing.T) {
	t.Setenv("TDB_LOAD_CHUNK", "16")
	rows := loadRows(50) // 4 chunks, last one partial

	path := filepath.Join(t.TempDir(), "tdb.wal")
	db := reopen(t, path)
	if _, err := db.CreateRelation("r", Temporal, facultySchema(t)); err != nil {
		t.Fatal(err)
	}
	rel, _ := db.Relation("r")
	n, err := rel.Load(rows)
	if err != nil || n != len(rows) {
		t.Fatalf("Load = %d, %v; want %d rows", n, err, len(rows))
	}

	base, err := Open("", Options{Clock: temporal.NewLogicalClock(0)})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	if _, err := base.CreateRelation("r", Temporal, facultySchema(t)); err != nil {
		t.Fatal(err)
	}
	brel, _ := base.Relation("r")
	for _, row := range rows {
		if err := brel.Assert(row.Data, row.From, row.To); err != nil {
			t.Fatal(err)
		}
	}

	// Versions must agree modulo transaction time (Load shares one commit
	// chronon per chunk; row-at-a-time mints one per row).
	strip := func(db *DB) []string {
		r, _ := db.Relation("r")
		var out []string
		for _, v := range r.Versions() {
			out = append(out, v.Data.String()+"@"+v.Valid.String())
		}
		return out
	}
	if got, want := strip(db), strip(base); !digestsEqual(got, want) {
		t.Fatalf("loaded versions diverge from row-at-a-time:\nwant %v\ngot  %v", want, got)
	}
	if got := db.Stats().WALRecords; got != 4+1 { // create + 4 chunk records
		t.Fatalf("WALRecords = %d, want 5 (1 create + 4 chunks)", got)
	}

	before := stateDigest(t, db)
	db.Close()
	db2 := reopen(t, path)
	defer db2.Close()
	if got := stateDigest(t, db2); !digestsEqual(before, got) {
		t.Fatal("bulk-loaded state did not survive recovery")
	}
}

// A full-chunk load on an append-only relation seals straight into
// columnar segments: the tail never holds more than one chunk.
func TestLoadSealsSegmentsDirectly(t *testing.T) {
	t.Setenv("TDB_SEGMENT_ROWS", "32")
	t.Setenv("TDB_LOAD_CHUNK", "32")
	db, err := Open("", Options{Clock: temporal.NewLogicalClock(0)})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.CreateRelation("r", Temporal, facultySchema(t)); err != nil {
		t.Fatal(err)
	}
	rel, _ := db.Relation("r")
	if _, err := rel.Load(loadRows(4 * 32)); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Segments != 4 || st.SealedRows != 128 || st.TailRows != 0 {
		t.Fatalf("segments=%d sealed=%d tail=%d, want 4 sealed segments and an empty tail",
			st.Segments, st.SealedRows, st.TailRows)
	}
}

// Load handles every relation shape: events take From as the instant,
// static kinds ignore valid time entirely.
func TestLoadKinds(t *testing.T) {
	db, err := Open("", Options{Clock: temporal.NewLogicalClock(0)})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	sch := facultySchema(t)
	if _, err := db.CreateEventRelation("ev", Temporal, sch); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelation("st", StaticRollback, sch); err != nil {
		t.Fatal(err)
	}
	ev, _ := db.Relation("ev")
	if n, err := ev.Load([]LoadRow{{Data: fac("e", "x"), From: 42}}); err != nil || n != 1 {
		t.Fatalf("event load = %d, %v", n, err)
	}
	if vs := ev.Versions(); len(vs) != 1 || vs[0].Valid.From != 42 {
		t.Fatalf("event versions = %v", vs)
	}
	st, _ := db.Relation("st")
	if n, err := st.Load([]LoadRow{{Data: fac("s", "y")}}); err != nil || n != 1 {
		t.Fatalf("static load = %d, %v", n, err)
	}
	if _, ok, err := st.Get(NewTuple(String("s"))); err != nil || !ok {
		t.Fatalf("static row missing after load: %v", err)
	}
}

// A row error aborts only its own chunk; earlier chunks stay committed.
func TestLoadChunkErrorLeavesPriorChunks(t *testing.T) {
	t.Setenv("TDB_LOAD_CHUNK", "8")
	db, err := Open("", Options{Clock: temporal.NewLogicalClock(0)})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.CreateRelation("r", Temporal, facultySchema(t)); err != nil {
		t.Fatal(err)
	}
	rel, _ := db.Relation("r")
	rows := loadRows(16)
	rows[12].To = rows[12].From // invalid empty interval, second chunk
	n, err := rel.Load(rows)
	if err == nil || !strings.Contains(err.Error(), "empty valid period") {
		t.Fatalf("Load error = %v, want empty-period error", err)
	}
	if n != 8 {
		t.Fatalf("loaded = %d, want the first chunk's 8 rows", n)
	}
	if got := rel.VersionCount(); got != 8 {
		t.Fatalf("VersionCount = %d, want 8", got)
	}
}

// Followers refuse bulk load like every other user mutation.
func TestLoadReadOnlyFollower(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.wal")
	db := openFollower(t, path, nil)
	defer db.Close()
	// A follower has no relations; Load must fail on readOnly, not on
	// lookup, so go through the db-level chunk path directly.
	if _, err := db.loadChunk("r", loadRows(1), func(h *TxRel, row LoadRow) error { return nil }); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("loadChunk on follower = %v, want ErrReadOnly", err)
	}
}

// Bulk-loaded history ships to a follower byte-identically: the chunked
// multi-op records replay through the same apply path as ordinary commits.
func TestReplFollowerBulkLoad(t *testing.T) {
	t.Setenv("TDB_LOAD_CHUNK", "16")
	dir := t.TempDir()
	pPath := filepath.Join(dir, "p.wal")
	fPath := filepath.Join(dir, "f.wal")
	p := reopen(t, pPath)
	defer p.Close()
	f := openFollower(t, fPath, nil)
	defer f.Close()

	if _, err := p.CreateRelation("r", Temporal, facultySchema(t)); err != nil {
		t.Fatal(err)
	}
	rel, _ := p.Relation("r")
	if _, err := rel.Load(loadRows(40)); err != nil {
		t.Fatal(err)
	}
	shipAll(t, p, f)
	assertReplicaIdentical(t, p, f, pPath, fPath)
}
