package repl

import "tdb/internal/obs"

var ns = obs.Default.Namespace("tdb_repl")

// Primary-side stream metrics.
var (
	mStreamsOpen = ns.Gauge("streams_open",
		"Replication streams currently being served by this primary.")
	mStreamsTotal = ns.Counter("streams_total",
		"Replication streams accepted since process start.")
	mShippedBytes = ns.Counter("shipped_bytes_total",
		"Raw log bytes shipped to followers (before base64 framing).")
	mSnapshotsServed = ns.Counter("snapshots_served_total",
		"Snapshot re-syncs served: follower cursors that required a reset.")
	mHeartbeats = ns.Counter("heartbeats_total",
		"Idle-feed heartbeats sent across all streams.")
)

// Follower-side metrics. A process normally runs one follower, so these
// are process-wide; Follower.Stats carries the same numbers per instance.
var (
	mFollowerConnected = ns.Gauge("follower_connected",
		"1 while the follower holds a live stream to its primary, else 0.")
	mFollowerLagBytes = ns.Gauge("follower_lag_bytes",
		"Primary log size minus locally durable bytes, from the last position report.")
	mFollowerLagCommits = ns.Gauge("follower_lag_commits",
		"Primary commit clock minus the follower's applied commit clock.")
	mFollowerRecords = ns.Counter("follower_records_applied_total",
		"WAL records applied by the follower.")
	mFollowerBytes = ns.Counter("follower_bytes_total",
		"Raw log bytes received and durably applied by the follower.")
	mFollowerResets = ns.Counter("follower_resets_total",
		"Snapshot installs: streams that began with an epoch re-sync.")
	mFollowerReconnects = ns.Counter("follower_reconnects_total",
		"Stream teardowns that led to a reconnect attempt.")
)
