package repl

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"tdb/temporal"
)

// fakeSource is an in-memory Source whose era and log the test mutates.
type fakeSource struct {
	mu      sync.Mutex
	epoch   uint64
	log     []byte
	last    temporal.Chronon
	snap    []byte
	changed chan struct{}
}

func newFakeSource() *fakeSource {
	return &fakeSource{changed: make(chan struct{})}
}

func (f *fakeSource) ReplPosition() (uint64, int64, temporal.Chronon) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch, int64(len(f.log)), f.last
}

func (f *fakeSource) ReplSnapshot() ([]byte, uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.snap, f.epoch, nil
}

func (f *fakeSource) ReplReadLog(epoch uint64, offset int64, max int) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if epoch != f.epoch {
		return nil, ErrEpochGone
	}
	end := offset + int64(max)
	if end > int64(len(f.log)) {
		end = int64(len(f.log))
	}
	return append([]byte(nil), f.log[offset:end]...), nil
}

func (f *fakeSource) ReplChanged() <-chan struct{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.changed
}

// append grows the log and wakes waiters, like DB.notifyRepl.
func (f *fakeSource) append(p []byte) {
	f.mu.Lock()
	f.log = append(f.log, p...)
	f.last++
	close(f.changed)
	f.changed = make(chan struct{})
	f.mu.Unlock()
}

// checkpoint rolls the era: new snapshot, empty log.
func (f *fakeSource) checkpoint(snap []byte) {
	f.mu.Lock()
	f.epoch++
	f.snap = append([]byte(nil), snap...)
	f.log = nil
	close(f.changed)
	f.changed = make(chan struct{})
	f.mu.Unlock()
}

// collect runs Stream in the background, delivering messages to a channel
// the test drains.
func collect(t *testing.T, src Source, cur Cursor, stop chan struct{}) <-chan Msg {
	t.Helper()
	out := make(chan Msg, 64)
	go func() {
		defer close(out)
		err := Stream(src, cur, func(m Msg) error {
			out <- m
			return nil
		}, StreamOptions{Heartbeat: 20 * time.Millisecond, Stop: stop})
		if err != nil {
			t.Errorf("Stream: %v", err)
		}
	}()
	return out
}

func next(t *testing.T, out <-chan Msg) Msg {
	t.Helper()
	select {
	case m := <-out:
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("no stream message within 5s")
		return Msg{}
	}
}

// A cursor already on the current era gets the log tail as frames, then
// heartbeats while idle, then more frames when the log grows.
func TestStreamTailsAndHeartbeats(t *testing.T) {
	src := newFakeSource()
	src.append([]byte("abcd"))
	stop := make(chan struct{})
	defer close(stop)
	out := collect(t, src, Cursor{}, stop)

	m := next(t, out)
	if m.T != MsgFrames || !bytes.Equal(m.Data, []byte("abcd")) || m.Offset != 0 {
		t.Fatalf("first message = %+v, want frames abcd@0", m)
	}
	if m = next(t, out); m.T != MsgHeartbeat || m.Offset != 4 {
		t.Fatalf("idle message = %+v, want heartbeat at offset 4", m)
	}
	src.append([]byte("efgh"))
	for {
		if m = next(t, out); m.T == MsgHeartbeat {
			continue // a tick can race the append
		}
		break
	}
	if m.T != MsgFrames || !bytes.Equal(m.Data, []byte("efgh")) || m.Offset != 4 {
		t.Fatalf("tail message = %+v, want frames efgh@4", m)
	}
}

// A cursor from another era triggers the snapshot re-sync preamble: reset,
// chunked snapshot with a terminating Last, then frames from offset zero.
func TestStreamResyncsForeignCursor(t *testing.T) {
	src := newFakeSource()
	src.checkpoint(bytes.Repeat([]byte("s"), ChunkBytes+10)) // era 1, 2 chunks
	src.append([]byte("tail"))
	stop := make(chan struct{})
	defer close(stop)
	out := collect(t, src, Cursor{Epoch: 0, Offset: 99}, stop)

	if m := next(t, out); m.T != MsgReset || m.Epoch != 1 {
		t.Fatalf("preamble = %+v, want reset to era 1", m)
	}
	m := next(t, out)
	if m.T != MsgSnap || m.Last || len(m.Data) != ChunkBytes {
		t.Fatalf("first chunk = %T %v %d bytes, want full non-last snap chunk", m.T, m.Last, len(m.Data))
	}
	if m = next(t, out); m.T != MsgSnap || !m.Last || len(m.Data) != 10 {
		t.Fatalf("second chunk = %+v, want 10-byte last snap chunk", m)
	}
	if m = next(t, out); m.T != MsgFrames || !bytes.Equal(m.Data, []byte("tail")) || m.Offset != 0 {
		t.Fatalf("post-snapshot message = %+v, want frames tail@0", m)
	}
}

// A checkpoint while the stream is tailing makes the next log read fail
// with ErrEpochGone; the loop recovers by re-syncing onto the new era
// rather than surfacing an error.
func TestStreamRecoversFromEpochRollover(t *testing.T) {
	src := newFakeSource()
	src.append([]byte("old era"))
	roll := make(chan struct{})
	stop := make(chan struct{})
	defer close(stop)
	out := make(chan Msg, 64)
	go func() {
		defer close(out)
		first := true
		err := Stream(src, Cursor{}, func(m Msg) error {
			if first {
				// Roll the era under the stream's feet after it has read the
				// position but before it delivers the first window — the
				// delivered window is from the dead era, and the next read
				// must hit ErrEpochGone.
				<-roll
				first = false
			}
			out <- m
			return nil
		}, StreamOptions{Heartbeat: time.Hour, Stop: stop})
		if err != nil {
			t.Errorf("Stream: %v", err)
		}
	}()
	src.checkpoint([]byte("snap"))
	src.append([]byte("new era"))
	close(roll)

	// Skip whatever stale-era message was in flight; the stream must reach
	// the new era's reset + snapshot + frames.
	var got []Msg
	deadline := time.After(5 * time.Second)
	for len(got) == 0 || got[len(got)-1].T != MsgFrames || got[len(got)-1].Epoch != 1 {
		select {
		case m := <-out:
			got = append(got, m)
		case <-deadline:
			t.Fatalf("stream never re-synced onto era 1; saw %+v", got)
		}
	}
	sawReset, sawSnap := false, false
	for _, m := range got {
		if m.T == MsgReset && m.Epoch == 1 {
			sawReset = true
		}
		if m.T == MsgSnap && m.Last && bytes.Equal(m.Data, []byte("snap")) {
			sawSnap = true
		}
	}
	if !sawReset || !sawSnap {
		t.Fatalf("re-sync preamble incomplete (reset=%v snap=%v): %+v", sawReset, sawSnap, got)
	}
	tail := got[len(got)-1]
	if !bytes.Equal(tail.Data, []byte("new era")) || tail.Offset != 0 {
		t.Fatalf("post-rollover frames = %+v", tail)
	}
}

// Closing Stop ends the loop with a nil error, and a send failure does the
// same — a follower hangup is a normal end of stream.
func TestStreamStopsCleanly(t *testing.T) {
	src := newFakeSource()
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- Stream(src, Cursor{}, func(Msg) error { return nil },
			StreamOptions{Heartbeat: time.Hour, Stop: stop})
	}()
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Stream on Stop: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Stream did not return after Stop")
	}

	src.append([]byte("x"))
	hangup := errors.New("peer went away")
	if err := Stream(src, Cursor{}, func(Msg) error { return hangup },
		StreamOptions{Heartbeat: time.Hour, Stop: nil}); err != nil {
		t.Fatalf("Stream on send failure: %v", err)
	}
}
