package repl

import (
	"errors"
	"fmt"
	"time"

	"tdb/temporal"
)

// ErrEpochGone reports a log read against an epoch the primary has since
// checkpointed away. It is not a failure: the stream loop re-reads the
// position and re-syncs the follower onto the new era.
var ErrEpochGone = errors.New("repl: epoch rolled over")

// Source is the primary-side surface Stream serves from. *tdb.DB
// implements it; the indirection keeps this package free of the root
// package (which imports it back for the error sentinel).
//
// All methods are safe for concurrent use, and a position read followed by
// a log read is allowed to race a checkpoint: ReplReadLog fails with
// ErrEpochGone when the era it was asked for no longer exists, and the
// stream loop recovers by re-syncing.
type Source interface {
	// ReplPosition returns the current log era, its size in bytes, and the
	// latest commit chronon — the triple a heartbeat reports.
	ReplPosition() (epoch uint64, size int64, last temporal.Chronon)
	// ReplSnapshot returns the raw encoded bytes of the snapshot pairing
	// with the current era, and that era. Before the first checkpoint it
	// returns (nil, 0, nil): era zero needs no snapshot.
	ReplSnapshot() (data []byte, epoch uint64, err error)
	// ReplReadLog reads up to max bytes of the era's log file at offset.
	ReplReadLog(epoch uint64, offset int64, max int) ([]byte, error)
	// ReplChanged returns a channel closed when the log position next
	// advances (append, checkpoint, or reset).
	ReplChanged() <-chan struct{}
}

// StreamOptions configure one serving loop.
type StreamOptions struct {
	// Heartbeat is the idle-feed position-report interval. Zero means
	// DefaultHeartbeat.
	Heartbeat time.Duration
	// Stop ends the stream loop when closed (server shutdown).
	Stop <-chan struct{}
}

// DefaultHeartbeat is the idle position-report interval when unset.
const DefaultHeartbeat = 2 * time.Second

// Stream serves one replication feed: it brings the follower's cursor
// onto the primary's current era (shipping a snapshot when the cursor is
// from another era or past the log), then tails the log, shipping byte
// windows as they appear and heartbeats while idle. send delivers one
// message to the follower; its first error ends the stream (the follower
// reconnects and resumes). Stream returns nil on Stop and on send
// failure — a broken follower connection is a normal end, not a server
// error.
func Stream(src Source, cur Cursor, send func(Msg) error, opts StreamOptions) error {
	hb := opts.Heartbeat
	if hb <= 0 {
		hb = DefaultHeartbeat
	}
	mStreamsTotal.Inc()
	mStreamsOpen.Inc()
	defer mStreamsOpen.Dec()
	timer := time.NewTimer(hb)
	defer timer.Stop()
	for {
		epoch, size, last := src.ReplPosition()
		if cur.Epoch != epoch || cur.Offset > size {
			// The cursor is not a prefix of the current era: checkpoint
			// rollover, a fresh follower against an old primary, or a
			// follower from a different history. Re-sync via snapshot.
			snap, snapEpoch, err := src.ReplSnapshot()
			if err != nil {
				send(Msg{T: MsgError, Err: fmt.Sprintf("snapshot unavailable: %v", err)})
				return fmt.Errorf("repl: stream snapshot: %w", err)
			}
			mSnapshotsServed.Inc()
			if err := send(Msg{T: MsgReset, Epoch: snapEpoch}); err != nil {
				return nil
			}
			for off := 0; ; off += ChunkBytes {
				end := off + ChunkBytes
				if end >= len(snap) {
					end = len(snap)
				}
				m := Msg{T: MsgSnap, Epoch: snapEpoch, Data: snap[off:end], Last: end == len(snap)}
				if err := send(m); err != nil {
					return nil
				}
				if m.Last {
					break
				}
			}
			cur = Cursor{Epoch: snapEpoch, Offset: 0}
			continue
		}
		if cur.Offset < size {
			max := int(size - cur.Offset)
			if max > ChunkBytes {
				max = ChunkBytes
			}
			data, err := src.ReplReadLog(cur.Epoch, cur.Offset, max)
			if err != nil {
				if errors.Is(err, ErrEpochGone) {
					continue // next iteration re-syncs onto the new era
				}
				send(Msg{T: MsgError, Err: fmt.Sprintf("log read: %v", err)})
				return fmt.Errorf("repl: stream read: %w", err)
			}
			if len(data) == 0 {
				continue
			}
			m := Msg{T: MsgFrames, Epoch: cur.Epoch, Offset: cur.Offset, Commit: last, Data: data}
			if err := send(m); err != nil {
				return nil
			}
			mShippedBytes.Add(uint64(len(data)))
			cur.Offset += int64(len(data))
			continue
		}
		// Caught up: wait for the position to advance, a heartbeat tick,
		// or shutdown. The change channel is fetched before re-checking
		// the position so an append between the check and the wait still
		// wakes the loop.
		changed := src.ReplChanged()
		if e2, s2, _ := src.ReplPosition(); e2 != cur.Epoch || s2 != cur.Offset {
			continue
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(hb)
		select {
		case <-changed:
		case <-timer.C:
			mHeartbeats.Inc()
			if err := send(Msg{T: MsgHeartbeat, Epoch: epoch, Offset: size, Commit: last}); err != nil {
				return nil
			}
		case <-opts.Stop:
			return nil
		}
	}
}
