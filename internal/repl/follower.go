package repl

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"tdb/internal/wal"
	"tdb/temporal"
)

// Target is the follower-side surface Run applies a stream onto. *tdb.DB
// opened with Options.ReadOnly implements it: the replication apply path
// is the one write path a read-only database accepts.
type Target interface {
	// ReplCursor returns the locally durable position: the era of the
	// local log and its size in bytes. It is the resume cursor sent in the
	// handshake after a restart or reconnect.
	ReplCursor() (epoch uint64, size int64)
	// ReplReset wipes local state and installs the snapshot (nil means
	// "start empty"), leaving the local log empty at the given era.
	ReplReset(epoch uint64, snap []byte) error
	// ReplApply lands one verified byte window: raw is appended to the
	// local log verbatim and recs — the records those bytes frame — are
	// applied to the in-memory state.
	ReplApply(epoch uint64, raw []byte, recs []wal.Record) error
	// LastCommit reports the applied commit clock, for lag accounting.
	LastCommit() temporal.Chronon
}

// FollowerStats is a point-in-time snapshot of one follower's progress,
// surfaced by tdbd's /statz replication section.
type FollowerStats struct {
	// Connected reports a live stream to the primary.
	Connected bool `json:"connected"`
	// Epoch and Offset are the locally durable cursor.
	Epoch  uint64 `json:"epoch"`
	Offset int64  `json:"offset"`
	// PrimaryOffset and PrimaryCommit are the primary's position from its
	// last frames message or heartbeat; lag is the difference to the
	// local cursor and applied commit.
	PrimaryOffset int64            `json:"primary_offset"`
	PrimaryCommit temporal.Chronon `json:"primary_commit"`
	// AppliedCommit is the follower's commit clock after the last apply.
	AppliedCommit temporal.Chronon `json:"applied_commit"`
	// RecordsApplied counts WAL records applied since Run started.
	RecordsApplied uint64 `json:"records_applied"`
	// SnapshotsInstalled counts epoch re-syncs (resets) performed.
	SnapshotsInstalled uint64 `json:"snapshots_installed"`
	// Reconnects counts stream teardowns that led to a new dial.
	Reconnects uint64 `json:"reconnects"`
	// LastError is the most recent stream failure, empty once a stream is
	// healthy again.
	LastError string `json:"last_error,omitempty"`
}

// Follower maintains a replication stream from a primary onto a Target,
// reconnecting with bounded exponential backoff and re-syncing through the
// epoch protocol after any torn stream. Configure the fields before Run;
// Stats may be called concurrently with Run.
type Follower struct {
	// Addr is the primary's server address.
	Addr string
	// Target receives the stream; normally a read-only *tdb.DB.
	Target Target
	// Logger receives connection lifecycle diagnostics; nil discards.
	Logger *log.Logger
	// DialTimeout bounds connection establishment. Zero means 5s.
	DialTimeout time.Duration
	// IdleTimeout is how long a stream may stay silent before the
	// follower declares it dead and reconnects. It must comfortably
	// exceed the primary's heartbeat interval. Zero means 15s.
	IdleTimeout time.Duration
	// MinBackoff and MaxBackoff bound the reconnect backoff. Zero means
	// 100ms and 5s.
	MinBackoff time.Duration
	MaxBackoff time.Duration

	statsMu sync.Mutex
	st      FollowerStats
}

// Run connects and applies the stream until ctx is cancelled, redialing
// with backoff on any failure. It returns ctx.Err() — stream failures are
// retried, not returned.
func (f *Follower) Run(ctx context.Context) error {
	logger := f.Logger
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	minB, maxB := f.MinBackoff, f.MaxBackoff
	if minB <= 0 {
		minB = 100 * time.Millisecond
	}
	if maxB <= 0 {
		maxB = 5 * time.Second
	}
	backoff := minB
	for {
		err := f.stream(ctx, logger)
		mFollowerConnected.Set(0)
		f.update(func(s *FollowerStats) {
			s.Connected = false
			if err != nil {
				s.LastError = err.Error()
			}
		})
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err != nil {
			logger.Printf("repl: stream to %s failed: %v (reconnecting in %s)", f.Addr, err, backoff)
		} else {
			logger.Printf("repl: stream to %s closed (reconnecting in %s)", f.Addr, backoff)
		}
		mFollowerReconnects.Inc()
		f.update(func(s *FollowerStats) { s.Reconnects++ })
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > maxB {
			backoff = maxB
		}
	}
}

// Stats returns a snapshot of the follower's progress.
func (f *Follower) Stats() FollowerStats {
	f.statsMu.Lock()
	defer f.statsMu.Unlock()
	return f.st
}

func (f *Follower) update(fn func(*FollowerStats)) {
	f.statsMu.Lock()
	defer f.statsMu.Unlock()
	fn(&f.st)
}

// stream runs one connection: handshake at the durable cursor, then apply
// messages until the stream breaks, idles out, or ctx ends.
func (f *Follower) stream(ctx context.Context, logger *log.Logger) error {
	dialTO := f.DialTimeout
	if dialTO <= 0 {
		dialTO = 5 * time.Second
	}
	idleTO := f.IdleTimeout
	if idleTO <= 0 {
		idleTO = 15 * time.Second
	}
	d := net.Dialer{Timeout: dialTO}
	conn, err := d.DialContext(ctx, "tcp", f.Addr)
	if err != nil {
		return fmt.Errorf("repl: dial %s: %w", f.Addr, err)
	}
	defer conn.Close()
	// Unblock the read loop when ctx ends mid-stream.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-watchDone:
		}
	}()

	epoch, size := f.Target.ReplCursor()
	hs, err := json.Marshal(Handshake{V: WireVersion, Cmd: "repl", Epoch: epoch, Offset: size})
	if err != nil {
		return err
	}
	conn.SetWriteDeadline(time.Now().Add(dialTO))
	if _, err := conn.Write(append(hs, '\n')); err != nil {
		return fmt.Errorf("repl: handshake: %w", err)
	}
	conn.SetWriteDeadline(time.Time{})
	logger.Printf("repl: streaming from %s at epoch %d offset %d", f.Addr, epoch, size)
	f.update(func(s *FollowerStats) { s.Epoch, s.Offset = epoch, size })

	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64*1024), maxStreamLine)
	st := applyState{f: f, epoch: epoch, durable: size}
	first := true
	for {
		conn.SetReadDeadline(time.Now().Add(idleTO))
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return fmt.Errorf("repl: stream read: %w", err)
			}
			return errors.New("repl: primary closed the stream")
		}
		var m Msg
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			return fmt.Errorf("repl: malformed stream message: %w", err)
		}
		if first {
			first = false
			mFollowerConnected.Set(1)
			f.update(func(s *FollowerStats) { s.Connected, s.LastError = true, "" })
		}
		if err := st.handle(m); err != nil {
			return err
		}
	}
}

// maxStreamLine bounds one stream message line, matching the server
// protocol's limit.
const maxStreamLine = 1 << 20

// applyState is the per-connection stream state machine: snapshot
// collection during a re-sync, then byte-buffered frame application.
type applyState struct {
	f       *Follower
	epoch   uint64
	durable int64  // locally durable bytes of this epoch's log
	pending []byte // received bytes not yet forming complete frames

	inSnap    bool
	snapEpoch uint64
	snapBuf   []byte
}

func (a *applyState) handle(m Msg) error {
	switch m.T {
	case MsgReset:
		a.inSnap, a.snapEpoch, a.snapBuf = true, m.Epoch, nil
		a.pending = nil
		return nil
	case MsgSnap:
		if !a.inSnap {
			return errors.New("repl: snapshot chunk outside a reset")
		}
		a.snapBuf = append(a.snapBuf, m.Data...)
		if !m.Last {
			return nil
		}
		a.inSnap = false
		if err := a.f.Target.ReplReset(a.snapEpoch, a.snapBuf); err != nil {
			return fmt.Errorf("repl: installing snapshot: %w", err)
		}
		mFollowerResets.Inc()
		a.epoch, a.durable, a.pending, a.snapBuf = a.snapEpoch, 0, nil, nil
		a.f.update(func(s *FollowerStats) {
			s.SnapshotsInstalled++
			s.Epoch, s.Offset = a.epoch, 0
			s.AppliedCommit = a.f.Target.LastCommit()
		})
		return nil
	case MsgFrames:
		if a.inSnap {
			return errors.New("repl: frames inside a snapshot transfer")
		}
		if m.Epoch != a.epoch {
			return fmt.Errorf("repl: frames for epoch %d while at epoch %d", m.Epoch, a.epoch)
		}
		if want := a.durable + int64(len(a.pending)); m.Offset != want {
			return fmt.Errorf("repl: frames at offset %d, want %d", m.Offset, want)
		}
		a.pending = append(a.pending, m.Data...)
		if err := a.apply(); err != nil {
			return err
		}
		a.observePrimary(m.Offset+int64(len(m.Data)), m.Commit)
		return nil
	case MsgHeartbeat:
		if m.Epoch == a.epoch {
			a.observePrimary(m.Offset, m.Commit)
		}
		return nil
	case MsgError:
		return fmt.Errorf("repl: primary refused the stream: %s", m.Err)
	default:
		return fmt.Errorf("repl: unknown stream message %q", m.T)
	}
}

// apply lands every complete frame buffered so far: the log header first
// when this era's log is still empty, then CRC-verified frames. Partial
// trailing bytes stay pending until the next window completes them.
func (a *applyState) apply() error {
	headerBytes := 0
	if a.durable == 0 {
		if len(a.pending) < wal.HeaderLen {
			return nil
		}
		epoch, ok := wal.DecodeHeader(a.pending)
		if !ok {
			return errors.New("repl: shipped log header failed verification")
		}
		if epoch != a.epoch {
			return fmt.Errorf("repl: shipped log header carries epoch %d, want %d", epoch, a.epoch)
		}
		headerBytes = wal.HeaderLen
	}
	var recs []wal.Record
	consumed, err := wal.ScanFrames(a.pending[headerBytes:], func(r wal.Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		return err
	}
	total := headerBytes + consumed
	if total == 0 {
		return nil
	}
	if err := a.f.Target.ReplApply(a.epoch, a.pending[:total], recs); err != nil {
		return fmt.Errorf("repl: applying %d records: %w", len(recs), err)
	}
	a.pending = append([]byte(nil), a.pending[total:]...)
	a.durable += int64(total)
	mFollowerBytes.Add(uint64(total))
	mFollowerRecords.Add(uint64(len(recs)))
	a.f.update(func(s *FollowerStats) {
		s.Offset = a.durable
		s.Epoch = a.epoch
		s.RecordsApplied += uint64(len(recs))
		s.AppliedCommit = a.f.Target.LastCommit()
	})
	return nil
}

// observePrimary records the primary's reported position and updates the
// lag gauges.
func (a *applyState) observePrimary(size int64, commit temporal.Chronon) {
	applied := a.f.Target.LastCommit()
	lagBytes := size - a.durable
	if lagBytes < 0 {
		lagBytes = 0
	}
	lagCommits := int64(commit) - int64(applied)
	if lagCommits < 0 {
		lagCommits = 0
	}
	mFollowerLagBytes.Set(lagBytes)
	mFollowerLagCommits.Set(lagCommits)
	a.f.update(func(s *FollowerStats) {
		s.PrimaryOffset = size
		if commit != 0 {
			s.PrimaryCommit = commit
		}
		s.AppliedCommit = applied
	})
}
