// Package repl implements WAL-shipping replication: a primary streams its
// durability state — an initial checkpoint snapshot plus a live feed of
// CRC-framed write-ahead-log bytes — to read-only followers over the
// server's newline-delimited JSON protocol.
//
// The design leans on the taxonomy's central property: transaction time is
// append-only, so a follower is never stale-wrong, only bounded-behind. A
// follower at commit-clock T answers every `as of <= T` query exactly as
// the primary would, and catching up is purely additive.
//
// # Cursor
//
// Replication position is the pair (epoch, offset): the checkpoint era of
// the primary's log and a byte offset into that era's log file, header
// included. Because followers land shipped bytes verbatim (wal.AppendRaw),
// a follower's local log is byte-identical to the primary's prefix and its
// own file size is its resume cursor — no separate cursor state to persist
// or to desynchronize.
//
// # Epoch re-sync
//
// A checkpoint on the primary truncates the log and bumps the epoch, which
// invalidates every follower cursor at the previous era. The stream
// handles it in-band: when the follower's cursor does not name the
// primary's current (epoch, <=size), the primary sends a reset carrying
// the new epoch, ships the current snapshot in chunks, and restarts the
// frame feed from offset zero. Followers install the snapshot atomically
// and continue; a torn stream at any point is re-synced the same way on
// reconnect.
//
// # Liveness
//
// Replication connections are exempt from the server's per-command read
// deadline (a healthy follower is mostly silent). Liveness is heartbeat
// based instead: the primary emits a position report on an interval
// whenever the feed is idle, and the follower treats a quiet interval of
// several heartbeats as a dead peer and reconnects with backoff.
package repl

import "tdb/temporal"

// WireVersion is the protocol version a follower's handshake declares. The
// "repl" command and the stream message vocabulary arrived in protocol
// 1.1; the handshake tracks the current version (1.2 added the unrelated
// "batch" command) so version-skew metrics see followers accurately. A
// lock-step test in package server keeps this equal to ProtoVersion.
const WireVersion = "1.2"

// Message kinds carried in Msg.T. One JSON object per line, primary to
// follower only; after the handshake the follower never writes.
const (
	// MsgReset tells the follower its state is not a prefix of the
	// primary's current era: wipe, install the snapshot chunks that
	// follow, and expect frames from offset zero of Msg.Epoch.
	MsgReset = "reset"
	// MsgSnap carries one chunk of the encoded checkpoint snapshot; the
	// chunk with Last set completes it (a Last chunk with no bytes at all
	// means the primary has no snapshot — the follower starts empty).
	MsgSnap = "snap"
	// MsgFrames carries a byte window of the primary's log file: Offset is
	// the file offset of the first byte, Data the raw header/frame bytes.
	MsgFrames = "frames"
	// MsgHeartbeat reports the primary's position while the feed is idle,
	// keeping the connection observably alive and lag measurable.
	MsgHeartbeat = "hb"
	// MsgError reports why the primary is abandoning the stream; the
	// connection closes after it.
	MsgError = "error"
)

// Handshake is the follower's single request line, matching the server
// protocol's Request shape ({"v":..., "cmd":"repl", ...}) without
// importing it — package server imports repl, not the reverse.
type Handshake struct {
	V      string `json:"v"`
	Cmd    string `json:"cmd"`
	Epoch  uint64 `json:"epoch"`
	Offset int64  `json:"offset"`
}

// Msg is one stream message from primary to follower. Data rides as JSON
// base64; chunks are bounded by ChunkBytes so an encoded line stays well
// under the protocol's line limit.
type Msg struct {
	T      string           `json:"repl"`
	Epoch  uint64           `json:"epoch,omitempty"`
	Offset int64            `json:"offset,omitempty"`
	Commit temporal.Chronon `json:"commit,omitempty"`
	Data   []byte           `json:"data,omitempty"`
	Last   bool             `json:"last,omitempty"`
	Err    string           `json:"error,omitempty"`
}

// Cursor is a replication position: a checkpoint era and a byte offset
// into that era's log file.
type Cursor struct {
	Epoch  uint64
	Offset int64
}

// ChunkBytes bounds the raw payload of one snapshot or frame message.
// Base64 expands it 4/3x and JSON framing adds a little more, keeping an
// encoded line comfortably inside the server's 1 MiB line limit.
const ChunkBytes = 256 << 10
