// Package stats maintains per-relation temporal statistics: version
// counts, per-attribute distinct-value sketches (KMV), and equi-width
// interval histograms over transaction and valid time. The planner turns
// them into cardinality and selectivity estimates (see tquel/plan.go).
//
// Every structure here is a deterministic function of the committed
// operation stream — insertion order inside one op, duplicate values, and
// the grid-growth path all cancel out — so a primary, its WAL replay, and
// its followers hold byte-identical statistics (TestStatsReplayIdentity,
// TestReplStatsByteIdentity). Statistics are persisted in checkpoint
// snapshots (wal snapshot v4); legacy snapshots rebuild them from the
// restored versions instead, which approximates the op stream: closures
// and endpoints come back exactly, but valid intervals split by later
// retractions count per surviving piece and dropped static tuples are
// forgotten. The planner only consumes ratios, so the approximation is
// harmless — and MRebuilds records that it happened.
package stats

import (
	"tdb/internal/tuple"
	"tdb/temporal"
)

// Rel is one relation's statistics. All methods that mutate it are called
// with the database's write lock held (commit path, replay, follower
// apply); estimate methods are called under the read lock.
type Rel struct {
	// HasValid and HasTrans record which time axes the relation's kind
	// stamps (valid: historical/temporal; trans: rollback/temporal).
	HasValid bool
	HasTrans bool

	// Versions counts versions ever recorded by mutation ops — monotone,
	// superseded versions included.
	Versions uint64
	// Closures counts transaction-time closures (delete/replace on
	// rollback kinds): Versions - Closures estimates current versions.
	Closures uint64
	// Retractions counts valid-time retraction ops. Their effect on stored
	// intervals (splits, trims) is not otherwise modeled.
	Retractions uint64

	// Attrs holds one distinct-value sketch per schema attribute.
	Attrs []Sketch

	// Valid summarizes asserted valid-time intervals; Trans summarizes
	// transaction-time stamps (opened at commit, closed on supersession).
	Valid IntervalHist
	Trans IntervalHist
}

// NewRel returns empty statistics for a relation of the given arity and
// time axes.
func NewRel(arity int, hasValid, hasTrans bool) *Rel {
	return &Rel{HasValid: hasValid, HasTrans: hasTrans, Attrs: make([]Sketch, arity)}
}

// addAttrs feeds one stored tuple's values into the per-attribute sketches.
func (r *Rel) addAttrs(t tuple.Tuple) {
	for i := range t {
		if i < len(r.Attrs) {
			r.Attrs[i].Add(t[i].Hash64())
		}
	}
}

// Insert records an OpInsert: one new version, open on the transaction
// axis when the kind records it.
func (r *Rel) Insert(t tuple.Tuple, commit temporal.Chronon) {
	r.Versions++
	r.addAttrs(t)
	if r.HasTrans {
		r.Trans.AddOpen(commit)
	}
}

// Close records a transaction-time closure (the delete half of delete and
// replace on rollback kinds).
func (r *Rel) Close(commit temporal.Chronon) {
	r.Closures++
	if r.HasTrans {
		r.Trans.CloseAt(commit)
	}
}

// Assert records an OpAssert/OpAssertAt: a new version with a known valid
// interval.
func (r *Rel) Assert(t tuple.Tuple, valid temporal.Interval, commit temporal.Chronon) {
	r.Versions++
	r.addAttrs(t)
	if r.HasValid {
		r.Valid.Add(valid)
	}
	if r.HasTrans {
		r.Trans.AddOpen(commit)
	}
}

// Retraction records an OpRetract/OpRetractAt. On temporal kinds the store
// closes and re-derives versions internally; those effects are not modeled
// here (estimates stay deterministic without consulting the store).
func (r *Rel) Retraction() { r.Retractions++ }

// Observe is the rebuild path: fold one stored version in, as used when a
// legacy (pre-v4) snapshot carries no statistics section. Transaction
// stamps replay through the same open/close accounting the incremental
// path uses, so for pure insert/delete/replace histories the rebuilt state
// matches the incremental one exactly.
func (r *Rel) Observe(data tuple.Tuple, valid, trans temporal.Interval) {
	r.Versions++
	r.addAttrs(data)
	if r.HasValid {
		r.Valid.Add(valid)
	}
	if r.HasTrans {
		r.Trans.AddOpen(trans.From)
		if trans.To != temporal.Forever {
			r.Closures++
			r.Trans.CloseAt(trans.To)
		}
	}
}

// NDV estimates the number of distinct values of attribute attr, clamped
// to [1, Versions] whenever any version exists.
func (r *Rel) NDV(attr int) float64 {
	if attr < 0 || attr >= len(r.Attrs) || r.Versions == 0 {
		return 1
	}
	d := r.Attrs[attr].Distinct()
	if d < 1 {
		d = 1
	}
	if max := float64(r.Versions); d > max {
		d = max
	}
	return d
}

// ValidOverlapSel estimates the fraction of versions whose valid period
// overlaps q; ok is false when the relation records no valid axis or has
// no intervals to estimate from.
func (r *Rel) ValidOverlapSel(q temporal.Interval) (float64, bool) {
	if !r.HasValid || r.Valid.N == 0 {
		return 0, false
	}
	return r.Valid.OverlapSel(q), true
}

// ValidExtent returns the finite valid-time span the relation's recorded
// intervals cover; ok is false without a valid axis or finite endpoints.
// The planner divides it by a window clause's slide to estimate how many
// windows the aggregation pass will materialize.
func (r *Rel) ValidExtent() (lo, hi temporal.Chronon, ok bool) {
	if !r.HasValid || r.Valid.N == 0 {
		return 0, 0, false
	}
	return r.Valid.Extent()
}

// TransContainsSel estimates the fraction of versions visible as of
// transaction instant t (their transaction stamp contains t).
func (r *Rel) TransContainsSel(t temporal.Chronon) (float64, bool) {
	if !r.HasTrans || r.Trans.N == 0 {
		return 0, false
	}
	return r.Trans.ContainsSel(t), true
}

// CurrentFraction estimates the fraction of stored versions that are part
// of present belief: the ones never closed on the transaction axis. Kinds
// without transaction time keep every version current.
func (r *Rel) CurrentFraction() float64 {
	if r.Versions == 0 {
		return 1
	}
	if !r.HasTrans {
		return 1
	}
	open := float64(r.Versions) - float64(r.Closures)
	return clamp01(open / float64(r.Versions))
}

// Merge folds another relation's statistics in (both sides must share
// arity and axes; used by tests and segment-level aggregation).
func (r *Rel) Merge(o *Rel) {
	r.Versions += o.Versions
	r.Closures += o.Closures
	r.Retractions += o.Retractions
	for i := range r.Attrs {
		if i < len(o.Attrs) {
			r.Attrs[i].Merge(&o.Attrs[i])
		}
	}
	r.Valid.Merge(&o.Valid)
	r.Trans.Merge(&o.Trans)
}

// Summary is a point-in-time digest for /statz and tests.
type Summary struct {
	Versions    uint64    `json:"versions"`
	Closures    uint64    `json:"closures"`
	Retractions uint64    `json:"retractions"`
	AttrNDV     []float64 `json:"attr_ndv"`
	Buckets     int       `json:"buckets"` // occupied histogram buckets, both axes
}

// Summarize digests the statistics.
func (r *Rel) Summarize() Summary {
	s := Summary{
		Versions:    r.Versions,
		Closures:    r.Closures,
		Retractions: r.Retractions,
		Buckets:     r.Valid.Occupied() + r.Trans.Occupied(),
	}
	for i := range r.Attrs {
		s.AttrNDV = append(s.AttrNDV, r.NDV(i))
	}
	return s
}
