package stats

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Canonical binary encoding, embedded per relation in checkpoint snapshots
// (wal snapshot v4). The encoding is a pure function of the statistics
// state — no maps, no pointers, fixed field order — so decode∘encode is
// the identity byte-for-byte. That makes encoded statistics directly
// comparable across a primary, its recovery replay, and its followers.

// ErrCorrupt reports a statistics blob failing structural validation.
var ErrCorrupt = errors.New("stats: corrupt encoding")

func appendHist(dst []byte, h *Hist) []byte {
	dst = binary.AppendUvarint(dst, h.n)
	if h.n == 0 {
		return dst
	}
	dst = binary.AppendVarint(dst, h.min)
	dst = binary.AppendVarint(dst, h.max)
	dst = binary.AppendVarint(dst, h.width)
	dst = binary.AppendVarint(dst, h.origin)
	for _, c := range h.counts {
		dst = binary.AppendUvarint(dst, c)
	}
	return dst
}

func decodeHist(src []byte, h *Hist) (int, error) {
	n, sz := binary.Uvarint(src)
	if sz <= 0 {
		return 0, fmt.Errorf("%w: hist count", ErrCorrupt)
	}
	off := sz
	h.n = n
	if n == 0 {
		return off, nil
	}
	mn, sz := binary.Varint(src[off:])
	if sz <= 0 {
		return 0, fmt.Errorf("%w: hist min", ErrCorrupt)
	}
	off += sz
	mx, sz := binary.Varint(src[off:])
	if sz <= 0 || mx < mn {
		return 0, fmt.Errorf("%w: hist max", ErrCorrupt)
	}
	off += sz
	h.min, h.max = mn, mx
	w, sz := binary.Varint(src[off:])
	if sz <= 0 || w <= 0 {
		return 0, fmt.Errorf("%w: hist width", ErrCorrupt)
	}
	off += sz
	h.width = w
	o, sz := binary.Varint(src[off:])
	if sz <= 0 {
		return 0, fmt.Errorf("%w: hist origin", ErrCorrupt)
	}
	off += sz
	h.origin = o
	for i := range h.counts {
		c, sz := binary.Uvarint(src[off:])
		if sz <= 0 {
			return 0, fmt.Errorf("%w: hist bucket %d", ErrCorrupt, i)
		}
		off += sz
		h.counts[i] = c
	}
	return off, nil
}

func appendIntervalHist(dst []byte, ih *IntervalHist) []byte {
	dst = binary.AppendUvarint(dst, ih.N)
	dst = binary.AppendUvarint(dst, ih.LowOpen)
	dst = binary.AppendUvarint(dst, ih.Open)
	dst = appendHist(dst, &ih.Starts)
	dst = appendHist(dst, &ih.Ends)
	return appendHist(dst, &ih.Durs)
}

func decodeIntervalHist(src []byte, ih *IntervalHist) (int, error) {
	off := 0
	for _, p := range []*uint64{&ih.N, &ih.LowOpen, &ih.Open} {
		v, sz := binary.Uvarint(src[off:])
		if sz <= 0 {
			return 0, fmt.Errorf("%w: interval hist header", ErrCorrupt)
		}
		off += sz
		*p = v
	}
	for _, h := range []*Hist{&ih.Starts, &ih.Ends, &ih.Durs} {
		n, err := decodeHist(src[off:], h)
		if err != nil {
			return 0, err
		}
		off += n
	}
	return off, nil
}

// AppendRel appends the canonical encoding of r to dst.
func AppendRel(dst []byte, r *Rel) []byte {
	var axes byte
	if r.HasValid {
		axes |= 1
	}
	if r.HasTrans {
		axes |= 2
	}
	dst = append(dst, axes)
	dst = binary.AppendUvarint(dst, r.Versions)
	dst = binary.AppendUvarint(dst, r.Closures)
	dst = binary.AppendUvarint(dst, r.Retractions)
	dst = binary.AppendUvarint(dst, uint64(len(r.Attrs)))
	for i := range r.Attrs {
		s := &r.Attrs[i]
		dst = binary.AppendUvarint(dst, uint64(len(s.ks)))
		for _, h := range s.ks {
			dst = binary.BigEndian.AppendUint64(dst, h)
		}
	}
	dst = appendIntervalHist(dst, &r.Valid)
	return appendIntervalHist(dst, &r.Trans)
}

// EncodeRel returns the canonical encoding of r.
func EncodeRel(r *Rel) []byte { return AppendRel(nil, r) }

// DecodeRel parses one encoded Rel, returning it and the bytes consumed.
func DecodeRel(src []byte) (*Rel, int, error) {
	if len(src) < 1 {
		return nil, 0, fmt.Errorf("%w: empty", ErrCorrupt)
	}
	r := &Rel{HasValid: src[0]&1 != 0, HasTrans: src[0]&2 != 0}
	off := 1
	for _, p := range []*uint64{&r.Versions, &r.Closures, &r.Retractions} {
		v, sz := binary.Uvarint(src[off:])
		if sz <= 0 {
			return nil, 0, fmt.Errorf("%w: counters", ErrCorrupt)
		}
		off += sz
		*p = v
	}
	arity, sz := binary.Uvarint(src[off:])
	if sz <= 0 || arity > 1<<16 {
		return nil, 0, fmt.Errorf("%w: arity", ErrCorrupt)
	}
	off += sz
	r.Attrs = make([]Sketch, arity)
	for i := range r.Attrs {
		n, sz := binary.Uvarint(src[off:])
		if sz <= 0 || n > SketchK {
			return nil, 0, fmt.Errorf("%w: sketch size", ErrCorrupt)
		}
		off += sz
		if uint64(len(src)-off) < n*8 {
			return nil, 0, fmt.Errorf("%w: sketch truncated", ErrCorrupt)
		}
		ks := make([]uint64, n)
		for j := range ks {
			ks[j] = binary.BigEndian.Uint64(src[off:])
			off += 8
		}
		r.Attrs[i].ks = ks
	}
	for _, ih := range []*IntervalHist{&r.Valid, &r.Trans} {
		n, err := decodeIntervalHist(src[off:], ih)
		if err != nil {
			return nil, 0, err
		}
		off += n
	}
	return r, off, nil
}
