package stats

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"tdb/internal/tuple"
	"tdb/internal/value"
	"tdb/temporal"
)

// Below capacity a KMV sketch holds every distinct hash, so the estimate is
// exact and duplicates are invisible.
func TestSketchExactBelowCapacity(t *testing.T) {
	var s Sketch
	rng := rand.New(rand.NewSource(1))
	seen := map[uint64]bool{}
	for len(seen) < SketchK-1 {
		h := rng.Uint64()
		seen[h] = true
		s.Add(h)
		s.Add(h) // duplicate: no effect
	}
	if got, want := s.Distinct(), float64(len(seen)); got != want {
		t.Errorf("Distinct() = %v, want exactly %v below capacity", got, want)
	}
}

// At capacity the estimator must stay within its theoretical error band.
// The relative standard error of KMV is ~1/sqrt(K-1) ≈ 6% at K=256; the
// seeded workloads here must land within 4 sigma of the truth.
func TestSketchNDVAccuracyBound(t *testing.T) {
	for _, n := range []int{1000, 5000, 20000, 100000} {
		var s Sketch
		rng := rand.New(rand.NewSource(int64(n)))
		distinct := map[int64]bool{}
		for len(distinct) < n {
			v := rng.Int63n(int64(n) * 4)
			distinct[v] = true
			s.Add(value.NewInt(v).Hash64())
		}
		// Replay some duplicates: the estimate must not move.
		before := s.Distinct()
		for v := range distinct {
			s.Add(value.NewInt(v).Hash64())
			break
		}
		if s.Distinct() != before {
			t.Errorf("n=%d: duplicate add moved the estimate", n)
		}
		relErr := math.Abs(s.Distinct()-float64(n)) / float64(n)
		if relErr > 4.0/math.Sqrt(SketchK-1) {
			t.Errorf("n=%d: estimate %.0f, relative error %.3f exceeds 4 sigma", n, s.Distinct(), relErr)
		}
	}
}

// The sketch state is a function of the set of values added: insertion
// order, duplication, and interleaving with merges all cancel out.
func TestSketchOrderAndMergeInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]uint64, 2000)
	for i := range vals {
		vals[i] = rng.Uint64()
	}
	var fwd, rev, merged Sketch
	for _, v := range vals {
		fwd.Add(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		rev.Add(vals[i])
		rev.Add(vals[i]) // duplicates
	}
	var left, right Sketch
	for i, v := range vals {
		if i%2 == 0 {
			left.Add(v)
		} else {
			right.Add(v)
		}
	}
	merged = left
	merged.Merge(&right)
	if !reflect.DeepEqual(fwd, rev) {
		t.Error("sketch state depends on insertion order")
	}
	if !reflect.DeepEqual(fwd, merged) {
		t.Error("merged sketch differs from the sketch of the union")
	}
}

// The histogram grid (width, origin, counts) is a function of the set of
// values added, never of their order — the property the replay/follower
// byte-identity guarantees rest on.
func TestHistGridOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = rng.Int63n(1 << 40)
	}
	var fwd, shuf Hist
	for _, v := range vals {
		fwd.Add(v)
	}
	perm := rng.Perm(len(vals))
	for _, i := range perm {
		shuf.Add(vals[i])
	}
	if fwd != shuf {
		t.Errorf("hist state depends on insertion order:\nfwd  width=%d origin=%d\nshuf width=%d origin=%d",
			fwd.width, fwd.origin, shuf.width, shuf.origin)
	}
}

// CumLE's interpolation error is bounded by one bucket's population: the
// estimate counts full buckets exactly and only guesses inside the probe's
// bucket.
func TestHistCumLEErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var h Hist
	vals := make([]int64, 3000)
	for i := range vals {
		vals[i] = 1_000_000 + rng.Int63n(500_000)
		h.Add(vals[i])
	}
	for probe := int64(1_000_000); probe <= 1_500_000; probe += 50_000 {
		truth := 0
		for _, v := range vals {
			if v <= probe {
				truth++
			}
		}
		est := h.CumLE(probe)
		bucket := h.counts[(uint64(probe)-uint64(h.origin))/uint64(h.width)]
		if math.Abs(est-float64(truth)) > float64(bucket)+1 {
			t.Errorf("CumLE(%d) = %.1f, truth %d, bucket population %d", probe, est, truth, bucket)
		}
	}
}

// Merging an empty histogram is the identity in both directions, and
// merging two halves of a workload reproduces the whole workload's totals.
func TestHistMergeIdentityAndTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var whole, left, right, empty Hist
	for i := 0; i < 2000; i++ {
		v := rng.Int63n(1 << 30)
		whole.Add(v)
		if i%2 == 0 {
			left.Add(v)
		} else {
			right.Add(v)
		}
	}
	pre := whole
	whole.Merge(&empty)
	if whole != pre {
		t.Error("merging an empty hist changed the receiver")
	}
	var adopted Hist
	adopted.Merge(&pre)
	if adopted != pre {
		t.Error("merging into an empty hist must copy the source")
	}
	left.Merge(&right)
	if left != pre {
		t.Errorf("merging two halves diverged from the whole workload:\nmerged width=%d origin=%d n=%d\nwhole  width=%d origin=%d n=%d",
			left.width, left.origin, left.n, pre.width, pre.origin, pre.n)
	}
}

// seededIntervals generates a mixed interval workload: short and long
// bounded intervals, still-open intervals, and a few unbounded-past ones.
func seededIntervals(seed int64, n int) []temporal.Interval {
	rng := rand.New(rand.NewSource(seed))
	base := int64(temporal.Date(1980, 1, 1))
	out := make([]temporal.Interval, 0, n)
	for i := 0; i < n; i++ {
		from := temporal.Chronon(base + rng.Int63n(3_000_000))
		var to temporal.Chronon
		switch rng.Intn(10) {
		case 0:
			to = temporal.Forever
		case 1:
			from, to = temporal.Beginning, temporal.Chronon(base+rng.Int63n(3_000_000))
		default:
			to = from + temporal.Chronon(1+rng.Int63n(400_000))
		}
		out = append(out, temporal.Interval{From: from, To: to})
	}
	return out
}

// Estimated overlap selectivity must track the true fraction on a seeded
// workload across narrow, wide, early, and late query windows.
func TestOverlapSelAccuracy(t *testing.T) {
	ivs := seededIntervals(17, 4000)
	var ih IntervalHist
	for _, iv := range ivs {
		ih.Add(iv)
	}
	base := int64(temporal.Date(1980, 1, 1))
	queries := []temporal.Interval{
		{From: temporal.Chronon(base), To: temporal.Chronon(base + 10_000)},
		{From: temporal.Chronon(base + 1_000_000), To: temporal.Chronon(base + 1_200_000)},
		{From: temporal.Chronon(base + 2_900_000), To: temporal.Forever},
		{From: temporal.Beginning, To: temporal.Chronon(base + 500_000)},
		{From: temporal.Chronon(base + 100_000), To: temporal.Chronon(base + 2_800_000)},
	}
	for _, q := range queries {
		truth := 0
		for _, iv := range ivs {
			if iv.Overlaps(q) {
				truth++
			}
		}
		trueSel := float64(truth) / float64(len(ivs))
		est := ih.OverlapSel(q)
		if math.Abs(est-trueSel) > 0.1 {
			t.Errorf("OverlapSel(%v) = %.3f, true %.3f (err %.3f > 0.1)", q, est, trueSel, math.Abs(est-trueSel))
		}
	}
}

// ContainsSel (the as-of visibility estimate) must track the true fraction
// of intervals containing an instant.
func TestContainsSelAccuracy(t *testing.T) {
	ivs := seededIntervals(23, 4000)
	var ih IntervalHist
	for _, iv := range ivs {
		ih.Add(iv)
	}
	base := int64(temporal.Date(1980, 1, 1))
	for _, at := range []temporal.Chronon{
		temporal.Chronon(base + 50_000),
		temporal.Chronon(base + 1_500_000),
		temporal.Chronon(base + 2_999_999),
	} {
		truth := 0
		for _, iv := range ivs {
			if iv.Contains(at) {
				truth++
			}
		}
		trueSel := float64(truth) / float64(len(ivs))
		est := ih.ContainsSel(at)
		if math.Abs(est-trueSel) > 0.1 {
			t.Errorf("ContainsSel(%v) = %.3f, true %.3f", at, est, trueSel)
		}
	}
}

// The incremental transaction-axis accounting (AddOpen at insert, CloseAt
// on supersession) and the rebuild path (Observe over surviving versions
// with their final stamps) must produce byte-identical statistics for
// insert/close histories — the invariant that lets legacy snapshots rebuild
// without diverging from v4 snapshots.
func TestRebuildMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	inc := NewRel(2, true, true)
	type live struct {
		data   tuple.Tuple
		valid  temporal.Interval
		commit temporal.Chronon
	}
	type closed struct {
		live
		at temporal.Chronon
	}
	var open []live
	var done []closed
	commit := temporal.Chronon(1000)
	for i := 0; i < 800; i++ {
		commit++
		if rng.Intn(3) > 0 || len(open) == 0 {
			data := tuple.New(value.NewInt(rng.Int63n(50)), value.NewString("x"))
			valid := temporal.Interval{From: commit, To: commit + temporal.Chronon(1+rng.Int63n(100))}
			inc.Assert(data, valid, commit)
			open = append(open, live{data: data, valid: valid, commit: commit})
		} else {
			i := rng.Intn(len(open))
			v := open[i]
			inc.Close(commit)
			open = append(open[:i], open[i+1:]...)
			done = append(done, closed{live: v, at: commit})
		}
	}
	// Rebuild from the surviving version set, in a shuffled order.
	reb := NewRel(2, true, true)
	type version struct {
		data         tuple.Tuple
		valid, trans temporal.Interval
	}
	var versions []version
	for _, v := range open {
		versions = append(versions, version{v.data, v.valid, temporal.Interval{From: v.commit, To: temporal.Forever}})
	}
	for _, c := range done {
		versions = append(versions, version{c.data, c.valid, temporal.Interval{From: c.commit, To: c.at}})
	}
	for _, i := range rng.Perm(len(versions)) {
		reb.Observe(versions[i].data, versions[i].valid, versions[i].trans)
	}
	if !bytes.Equal(EncodeRel(inc), EncodeRel(reb)) {
		t.Errorf("rebuild diverged from incremental:\ninc %+v\nreb %+v", inc.Summarize(), reb.Summarize())
	}
}

// decode∘encode must be the identity byte-for-byte, and truncated or
// corrupt blobs must fail rather than misparse.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	r := NewRel(3, true, true)
	commit := temporal.Chronon(5000)
	for i := 0; i < 600; i++ {
		commit++
		data := tuple.New(value.NewInt(rng.Int63()), value.NewString("s"), value.NewFloat(rng.Float64()))
		r.Assert(data, temporal.Interval{From: commit, To: commit + 10}, commit)
		if i%7 == 0 {
			r.Close(commit)
		}
		if i%11 == 0 {
			r.Retraction()
		}
	}
	enc := EncodeRel(r)
	dec, n, err := DecodeRel(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Errorf("decode consumed %d of %d bytes", n, len(enc))
	}
	if !bytes.Equal(EncodeRel(dec), enc) {
		t.Error("decode∘encode is not the identity")
	}
	if dec.Summarize().Versions != r.Summarize().Versions {
		t.Error("summary diverged across the roundtrip")
	}
	for cut := 1; cut < len(enc); cut += len(enc) / 37 {
		if _, _, err := DecodeRel(enc[:cut]); err == nil {
			// A prefix may parse if it happens to form a complete encoding;
			// it must at least not panic, and complete parses must consume
			// exactly the prefix. (The snapshot layer length-prefixes blobs,
			// so trailing-byte detection lives there.)
			continue
		}
	}
}

// Merge on Rel must sum counters and fold the union of values into the
// sketches (estimates at least as large as each side's).
func TestRelMergeCounters(t *testing.T) {
	a, b := NewRel(1, true, false), NewRel(1, true, false)
	for i := 0; i < 100; i++ {
		a.Assert(tuple.New(value.NewInt(int64(i))), temporal.Interval{From: 1, To: 5}, 1)
	}
	for i := 50; i < 200; i++ {
		b.Assert(tuple.New(value.NewInt(int64(i))), temporal.Interval{From: 3, To: 9}, 3)
	}
	b.Retraction()
	a.Merge(b)
	if a.Versions != 250 || a.Retractions != 1 {
		t.Errorf("merged counters = %+v", a.Summarize())
	}
	if ndv := a.NDV(0); math.Abs(ndv-200) > 200*0.25 {
		t.Errorf("merged NDV = %.0f, want ≈200", ndv)
	}
	if a.Valid.N != 250 {
		t.Errorf("merged interval count = %d, want 250", a.Valid.N)
	}
}
