package stats

import "tdb/internal/obs"

// Statistics-subsystem counters (see docs/observability.md).
var (
	// MEstimates counts selectivity/NDV estimates served to the planner.
	MEstimates = obs.Default.Counter("tdb_stats_estimates_total",
		"Cardinality, NDV, and selectivity estimates served to the query planner.")
	// MRebuilds counts statistics rebuilt from stored versions because a
	// snapshot predated the statistics section (legacy v2/v3 formats).
	MRebuilds = obs.Default.Counter("tdb_stats_rebuilds_total",
		"Per-relation statistics rebuilt from stored versions on recovery from a pre-v4 snapshot.")
	// MExpansions counts histogram grid widenings (bucket-width doublings).
	MExpansions = obs.Default.Counter("tdb_stats_histogram_expansions_total",
		"Equi-width histogram bucket-width doublings performed to cover new values.")
)
