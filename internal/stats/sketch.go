package stats

import "sort"

// SketchK is the fixed capacity of a KMV distinct-value sketch. 256 minima
// give a relative standard error of about 1/sqrt(K-1) ≈ 6%, at 2KB per
// attribute — small enough to keep one sketch per attribute per relation
// resident and to persist them all in every checkpoint snapshot.
const SketchK = 256

// Sketch is a k-minimum-values (KMV) distinct-value estimator: it retains
// the K smallest distinct 64-bit hashes ever added. The k-th smallest of a
// set of n uniform hashes sits near k/n of the way through the hash space,
// so its position estimates n. The state is a deterministic function of the
// *set* of values added — insertion order, duplicates, and interleaving all
// cancel out — which is what lets WAL replay and followers reproduce the
// sketch byte-for-byte.
type Sketch struct {
	ks []uint64 // ascending, distinct; at most SketchK entries
}

// Add records one value hash.
func (s *Sketch) Add(h uint64) {
	i := sort.Search(len(s.ks), func(i int) bool { return s.ks[i] >= h })
	if i < len(s.ks) && s.ks[i] == h {
		return
	}
	if len(s.ks) == SketchK {
		if i == SketchK {
			return // larger than every retained minimum
		}
		copy(s.ks[i+1:], s.ks[i:SketchK-1])
		s.ks[i] = h
		return
	}
	s.ks = append(s.ks, 0)
	copy(s.ks[i+1:], s.ks[i:])
	s.ks[i] = h
}

// Distinct estimates the number of distinct values added. Below capacity
// the sketch holds every distinct hash and the count is exact; at capacity
// the KMV estimator (K-1)/u applies, where u is the K-th minimum normalized
// into (0, 1].
func (s *Sketch) Distinct() float64 {
	if len(s.ks) < SketchK {
		return float64(len(s.ks))
	}
	u := (float64(s.ks[SketchK-1]) + 1) / float64(1<<63) / 2
	if u <= 0 {
		return float64(SketchK)
	}
	return float64(SketchK-1) / u
}

// Merge folds another sketch into this one, as if every value behind o had
// been added here. Merging is commutative and associative.
func (s *Sketch) Merge(o *Sketch) {
	for _, h := range o.ks {
		s.Add(h)
	}
}

// Len returns the number of retained minima (for observability).
func (s *Sketch) Len() int { return len(s.ks) }
