package stats

import "tdb/temporal"

// HistBuckets is the fixed bucket count of every equi-width histogram.
const HistBuckets = 64

// maxHistWidth caps bucket widths so width*HistBuckets cannot overflow
// int64. Past the cap, out-of-range values clamp into the edge buckets.
const maxHistWidth = int64(1) << 56

// Hist is an equi-width histogram over finite chronon values with a
// canonical grid: the width is the smallest power of two whose min-aligned
// span covers the recorded extremes, and the origin is min aligned down to
// that width. Both are pure functions of the extremes, and regridding is an
// exact remap (old boundaries are multiples of the old width, which divides
// the new one), so the full histogram state is a function of the *multiset*
// of values added, never of their order — the property that keeps primary,
// WAL replay, follower, and rebuild histograms byte-identical.
type Hist struct {
	n        uint64
	min, max int64 // extremes of recorded values; meaningful when n > 0
	width    int64 // power of two; 0 until the first Add
	origin   int64 // alignDown(min, width); bucket i covers [origin+i*w, origin+(i+1)*w)
	counts   [HistBuckets]uint64
}

// span returns the covered range in chronons; width*HistBuckets fits int64
// because width is capped at maxHistWidth.
func (h *Hist) span() int64 { return h.width * HistBuckets }

// covers reports whether v falls inside the current grid.
func (h *Hist) covers(v int64) bool {
	if v < h.origin {
		return false
	}
	// Two's-complement subtraction: exact for v >= origin.
	return uint64(v)-uint64(h.origin) < uint64(h.span())
}

// alignDown rounds v down to a multiple of w (w a power of two).
func alignDown(v, w int64) int64 { return v &^ (w - 1) }

// regrid widens the grid to the canonical one for the current extremes:
// the smallest power-of-two width whose min-aligned span reaches max,
// capped at maxHistWidth. Old buckets remap exactly — every old boundary
// is a multiple of the old width, the new width is a larger power of two,
// and the new origin is a multiple of the new width at or below the old
// origin, so each old bucket nests wholly inside one new bucket.
func (h *Hist) regrid() {
	w := h.width
	for w < maxHistWidth && uint64(h.max)-uint64(alignDown(h.min, w)) >= uint64(w)*HistBuckets {
		w *= 2
	}
	o := alignDown(h.min, w)
	if w == h.width && o == h.origin {
		return
	}
	var nc [HistBuckets]uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo := uint64(h.origin) + uint64(i)*uint64(h.width)
		b := (lo - uint64(o)) / uint64(w)
		if b >= HistBuckets {
			b = HistBuckets - 1 // width cap reached: clamp into the high edge
		}
		nc[b] += c
	}
	h.width, h.origin, h.counts = w, o, nc
	MExpansions.Inc()
}

// Add records one finite value. Non-finite chronons are the caller's
// responsibility to divert (see IntervalHist's Open/LowOpen counters).
func (h *Hist) Add(v int64) {
	if h.n == 0 {
		h.min, h.max = v, v
		h.width, h.origin = 1, v
		h.counts = [HistBuckets]uint64{}
		h.counts[0] = 1
		h.n = 1
		return
	}
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.regrid()
	h.n++
	if !h.covers(v) {
		h.counts[HistBuckets-1]++ // width cap reached: clamp into the high edge
	} else {
		h.counts[(uint64(v)-uint64(h.origin))/uint64(h.width)]++
	}
}

// CumLE estimates how many recorded values are <= v, interpolating
// linearly inside v's bucket (values spread uniformly within a bucket).
func (h *Hist) CumLE(v int64) float64 {
	if h.n == 0 || v < h.origin {
		return 0
	}
	delta := uint64(v) - uint64(h.origin)
	if delta >= uint64(h.span()) {
		return float64(h.n)
	}
	b := delta / uint64(h.width)
	var below uint64
	for i := uint64(0); i < b; i++ {
		below += h.counts[i]
	}
	frac := float64(delta%uint64(h.width)+1) / float64(h.width)
	return float64(below) + float64(h.counts[b])*frac
}

// Merge folds another histogram in: the receiver adopts the canonical grid
// of the combined extremes, in which both operands' grids nest exactly, so
// (absent the width cap) merging two halves of a workload reproduces the
// histogram of the whole workload byte-for-byte.
func (h *Hist) Merge(o *Hist) {
	if o.n == 0 {
		return
	}
	if h.n == 0 {
		*h = *o
		return
	}
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.regrid()
	for i, c := range o.counts {
		if c == 0 {
			continue
		}
		lo := uint64(o.origin) + uint64(i)*uint64(o.width)
		h.n += c
		switch {
		case int64(lo) < h.origin:
			h.counts[0] += c // only reachable past the width cap
		case (lo-uint64(h.origin))/uint64(h.width) >= HistBuckets:
			h.counts[HistBuckets-1] += c
		default:
			h.counts[(lo-uint64(h.origin))/uint64(h.width)] += c
		}
	}
}

// Extent returns the exact extremes of the recorded values; ok is false
// before the first Add. Unlike bucket counts these are not estimates — the
// histogram tracks min and max exactly for grid alignment — which makes
// them safe anchors for window-count estimation.
func (h *Hist) Extent() (min, max int64, ok bool) {
	if h.n == 0 {
		return 0, 0, false
	}
	return h.min, h.max, true
}

// Occupied returns the number of non-empty buckets (for observability).
func (h *Hist) Occupied() int {
	n := 0
	for _, c := range h.counts {
		if c > 0 {
			n++
		}
	}
	return n
}

// IntervalHist summarizes the distribution of half-open intervals on one
// time axis: where they start, where the bounded ones end, and how long
// the fully bounded ones last. Unbounded endpoints are tallied separately —
// an interval open to Forever never ends before any probe, and one open
// from Beginning starts before every probe — which is what makes the
// cumulative-count identities below exact at the boundaries.
type IntervalHist struct {
	N       uint64 // intervals recorded
	LowOpen uint64 // From = Beginning
	Open    uint64 // To = Forever (still-open versions, current beliefs)
	Starts  Hist   // finite From values
	Ends    Hist   // finite To values
	Durs    Hist   // To-From of fully bounded intervals
}

// Add records one interval, duration included (used for valid-time
// intervals, which are fully known when asserted).
func (ih *IntervalHist) Add(iv temporal.Interval) {
	ih.N++
	if iv.From == temporal.Beginning {
		ih.LowOpen++
	} else {
		ih.Starts.Add(int64(iv.From))
	}
	if iv.To == temporal.Forever {
		ih.Open++
	} else {
		ih.Ends.Add(int64(iv.To))
		if iv.From != temporal.Beginning {
			ih.Durs.Add(int64(iv.To) - int64(iv.From))
		}
	}
}

// AddOpen records an interval [from, Forever) — a transaction-time stamp at
// insert, before anyone knows when (or whether) it will be superseded.
func (ih *IntervalHist) AddOpen(from temporal.Chronon) {
	ih.N++
	ih.Open++
	if from == temporal.Beginning {
		ih.LowOpen++
	} else {
		ih.Starts.Add(int64(from))
	}
}

// CloseAt converts one open interval into one ending at to — the
// transaction-time closure a delete/replace performs on a stored version.
// Durations stay untracked on this path (the closure op does not identify
// which open version it closed), so rebuild-from-versions, which walks the
// same start/end endpoints, reproduces the incremental state exactly.
func (ih *IntervalHist) CloseAt(to temporal.Chronon) {
	if ih.Open > 0 {
		ih.Open--
	}
	ih.Ends.Add(int64(to))
}

// startsBefore estimates how many intervals start strictly before t.
func (ih *IntervalHist) startsBefore(t temporal.Chronon) float64 {
	if t == temporal.Beginning {
		return 0
	}
	if t == temporal.Forever {
		return float64(ih.N)
	}
	return float64(ih.LowOpen) + ih.Starts.CumLE(int64(t)-1)
}

// endsAtOrBefore estimates how many intervals end at or before t (open
// intervals never do).
func (ih *IntervalHist) endsAtOrBefore(t temporal.Chronon) float64 {
	if t == temporal.Beginning {
		return 0
	}
	if t == temporal.Forever {
		return float64(ih.N - ih.Open)
	}
	return ih.Ends.CumLE(int64(t))
}

// OverlapSel estimates the fraction of recorded intervals overlapping q,
// via the sweep identity overlap(q) = N − starts≥q.To − ends≤q.From:
// an interval misses [q.From, q.To) exactly when it starts after the query
// ends or ends before it starts.
func (ih *IntervalHist) OverlapSel(q temporal.Interval) float64 {
	if ih.N == 0 || q.IsEmpty() {
		return 0
	}
	est := ih.startsBefore(q.To) - ih.endsAtOrBefore(q.From)
	return clamp01(est / float64(ih.N))
}

// ContainsSel estimates the fraction of recorded intervals containing the
// instant t: those started by t minus those already ended.
func (ih *IntervalHist) ContainsSel(t temporal.Chronon) float64 {
	if ih.N == 0 {
		return 0
	}
	est := ih.startsBefore(t.Next()) - ih.endsAtOrBefore(t)
	return clamp01(est / float64(ih.N))
}

// Extent returns the finite span [lo, hi) covered by the recorded
// intervals' finite endpoints: the earliest finite start through the latest
// finite end (falling back to start extremes when every interval is open on
// one side). ok is false when no finite endpoint has been recorded — the
// windowed-aggregation cost model then has nothing to bound window counts
// with.
func (ih *IntervalHist) Extent() (lo, hi temporal.Chronon, ok bool) {
	sMin, sMax, sOK := ih.Starts.Extent()
	eMin, eMax, eOK := ih.Ends.Extent()
	switch {
	case sOK && eOK:
		lo, hi = temporal.Chronon(sMin), temporal.Chronon(eMax)
		if c := temporal.Chronon(eMin); c < lo {
			lo = c
		}
		if c := temporal.Chronon(sMax); c > hi {
			hi = c
		}
	case sOK:
		lo, hi = temporal.Chronon(sMin), temporal.Chronon(sMax)
	case eOK:
		lo, hi = temporal.Chronon(eMin), temporal.Chronon(eMax)
	default:
		return 0, 0, false
	}
	if hi <= lo {
		hi = lo + 1
	}
	return lo, hi, true
}

// Merge folds another interval histogram in.
func (ih *IntervalHist) Merge(o *IntervalHist) {
	ih.N += o.N
	ih.LowOpen += o.LowOpen
	ih.Open += o.Open
	ih.Starts.Merge(&o.Starts)
	ih.Ends.Merge(&o.Ends)
	ih.Durs.Merge(&o.Durs)
}

// Occupied returns the number of non-empty buckets across the three
// component histograms.
func (ih *IntervalHist) Occupied() int {
	return ih.Starts.Occupied() + ih.Ends.Occupied() + ih.Durs.Occupied()
}

func clamp01(f float64) float64 {
	switch {
	case f < 0:
		return 0
	case f > 1:
		return 1
	default:
		return f
	}
}
