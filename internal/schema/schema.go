// Package schema describes relation schemas: ordered, named, typed
// attributes plus an optional key. Following the paper, the schema covers
// only the *explicit* attributes — user-defined time domains appear here
// (Figure 9's "effective date"), while transaction time and valid time are
// DBMS-maintained tuple overheads that "do not appear in the schema for the
// relation" and are carried by the stores in internal/core instead.
package schema

import (
	"errors"
	"fmt"
	"strings"

	"tdb/internal/value"
)

// ErrEmptySchema is returned when a schema has no attributes.
var ErrEmptySchema = errors.New("schema: relation needs at least one attribute")

// Attribute is one named, typed column.
type Attribute struct {
	Name string
	Type value.Kind
}

// String renders the attribute as "name = type", TQuel's create syntax.
func (a Attribute) String() string { return fmt.Sprintf("%s = %s", a.Name, a.Type) }

// Schema is an immutable relation schema. Construct with New; the zero
// value is unusable.
type Schema struct {
	attrs  []Attribute
	byName map[string]int
	key    []int // indices of key attributes; empty means whole-tuple key
}

// New builds a schema from the given attributes, rejecting duplicates,
// anonymous attributes, untyped attributes and empty schemas.
func New(attrs ...Attribute) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, ErrEmptySchema
	}
	s := &Schema{
		attrs:  make([]Attribute, len(attrs)),
		byName: make(map[string]int, len(attrs)),
	}
	copy(s.attrs, attrs)
	for i, a := range s.attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("schema: attribute %d has no name", i)
		}
		if a.Type == value.Invalid {
			return nil, fmt.Errorf("schema: attribute %q has no type", a.Name)
		}
		if _, dup := s.byName[a.Name]; dup {
			return nil, fmt.Errorf("schema: duplicate attribute %q", a.Name)
		}
		s.byName[a.Name] = i
	}
	return s, nil
}

// MustNew is New for trusted literals; it panics on error.
func MustNew(attrs ...Attribute) *Schema {
	s, err := New(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// WithKey returns a copy of the schema whose key is the named attributes.
// Tuples sharing a key denote the same real-world entity across time; the
// bitemporal update algebra matches versions by key.
func (s *Schema) WithKey(names ...string) (*Schema, error) {
	out := &Schema{attrs: s.attrs, byName: s.byName}
	seen := make(map[int]bool, len(names))
	for _, n := range names {
		i, ok := s.byName[n]
		if !ok {
			return nil, fmt.Errorf("schema: key attribute %q not in schema", n)
		}
		if seen[i] {
			return nil, fmt.Errorf("schema: duplicate key attribute %q", n)
		}
		seen[i] = true
		out.key = append(out.key, i)
	}
	return out, nil
}

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attribute {
	out := make([]Attribute, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Index returns the position of the named attribute, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// KeyIndices returns the positions of the key attributes. An empty result
// means the whole tuple is the key (set semantics).
func (s *Schema) KeyIndices() []int {
	out := make([]int, len(s.key))
	copy(out, s.key)
	return out
}

// HasExplicitKey reports whether WithKey narrowed the key.
func (s *Schema) HasExplicitKey() bool { return len(s.key) > 0 }

// Project returns a new schema with the attributes at the given positions,
// in the given order. The derived schema has no key.
func (s *Schema) Project(indices []int) (*Schema, error) {
	attrs := make([]Attribute, 0, len(indices))
	for _, i := range indices {
		if i < 0 || i >= len(s.attrs) {
			return nil, fmt.Errorf("schema: projection index %d out of range [0, %d)", i, len(s.attrs))
		}
		attrs = append(attrs, s.attrs[i])
	}
	return New(attrs...)
}

// Concat returns the schema of a cartesian product, qualifying colliding
// names with the supplied prefixes (e.g. "f1.rank").
func Concat(left, right *Schema, leftPrefix, rightPrefix string) (*Schema, error) {
	attrs := make([]Attribute, 0, left.Arity()+right.Arity())
	for _, a := range left.attrs {
		if right.Index(a.Name) >= 0 {
			a.Name = leftPrefix + "." + a.Name
		}
		attrs = append(attrs, a)
	}
	for _, a := range right.attrs {
		if left.Index(a.Name) >= 0 {
			a.Name = rightPrefix + "." + a.Name
		}
		attrs = append(attrs, a)
	}
	return New(attrs...)
}

// Equal reports whether two schemas have the same attributes in the same
// order (keys are ignored: they affect updates, not relation compatibility).
func (s *Schema) Equal(o *Schema) bool {
	if s.Arity() != o.Arity() {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != o.attrs[i] {
			return false
		}
	}
	return true
}

// String renders the schema in TQuel create syntax.
func (s *Schema) String() string {
	parts := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		parts[i] = a.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
