package schema

import (
	"testing"

	"tdb/internal/value"
)

func facultySchema(t *testing.T) *Schema {
	t.Helper()
	s, err := New(
		Attribute{Name: "name", Type: value.String},
		Attribute{Name: "rank", Type: value.String},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("empty schema must be rejected")
	}
	if _, err := New(Attribute{Name: "", Type: value.Int}); err == nil {
		t.Error("anonymous attribute must be rejected")
	}
	if _, err := New(Attribute{Name: "x"}); err == nil {
		t.Error("untyped attribute must be rejected")
	}
	if _, err := New(
		Attribute{Name: "x", Type: value.Int},
		Attribute{Name: "x", Type: value.String},
	); err == nil {
		t.Error("duplicate attribute must be rejected")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew on empty schema must panic")
		}
	}()
	MustNew()
}

func TestIndexAndAttr(t *testing.T) {
	s := facultySchema(t)
	if s.Arity() != 2 {
		t.Fatalf("arity = %d", s.Arity())
	}
	if s.Index("rank") != 1 || s.Index("name") != 0 {
		t.Error("Index lookups wrong")
	}
	if s.Index("salary") != -1 {
		t.Error("missing attribute must index -1")
	}
	if s.Attr(1).Name != "rank" || s.Attr(1).Type != value.String {
		t.Error("Attr(1) wrong")
	}
}

func TestWithKey(t *testing.T) {
	s := facultySchema(t)
	if s.HasExplicitKey() {
		t.Error("fresh schema must have no explicit key")
	}
	keyed, err := s.WithKey("name")
	if err != nil {
		t.Fatal(err)
	}
	if !keyed.HasExplicitKey() {
		t.Error("keyed schema must report an explicit key")
	}
	if ks := keyed.KeyIndices(); len(ks) != 1 || ks[0] != 0 {
		t.Errorf("KeyIndices = %v", ks)
	}
	// Original untouched.
	if s.HasExplicitKey() {
		t.Error("WithKey must not mutate the receiver")
	}
	if _, err := s.WithKey("salary"); err == nil {
		t.Error("unknown key attribute must be rejected")
	}
	if _, err := s.WithKey("name", "name"); err == nil {
		t.Error("duplicate key attribute must be rejected")
	}
}

func TestProject(t *testing.T) {
	s := facultySchema(t)
	p, err := s.Project([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Arity() != 1 || p.Attr(0).Name != "rank" {
		t.Errorf("projected schema = %v", p)
	}
	if _, err := s.Project([]int{5}); err == nil {
		t.Error("out-of-range projection must error")
	}
	// Reordering projection.
	p2, err := s.Project([]int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Attr(0).Name != "rank" || p2.Attr(1).Name != "name" {
		t.Error("projection must preserve requested order")
	}
}

func TestConcatQualifiesCollisions(t *testing.T) {
	s := facultySchema(t)
	c, err := Concat(s, s, "f1", "f2")
	if err != nil {
		t.Fatal(err)
	}
	if c.Arity() != 4 {
		t.Fatalf("arity = %d", c.Arity())
	}
	if c.Index("f1.name") != 0 || c.Index("f2.rank") != 3 {
		t.Errorf("qualified names missing: %v", c)
	}
	// Non-colliding names stay bare.
	other := MustNew(Attribute{Name: "salary", Type: value.Int})
	c2, err := Concat(s, other, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if c2.Index("salary") != 2 || c2.Index("name") != 0 {
		t.Errorf("non-colliding names must stay bare: %v", c2)
	}
}

func TestEqualIgnoresKey(t *testing.T) {
	a := facultySchema(t)
	b := facultySchema(t)
	keyed, _ := b.WithKey("name")
	if !a.Equal(keyed) {
		t.Error("Equal must ignore keys")
	}
	other := MustNew(Attribute{Name: "name", Type: value.String})
	if a.Equal(other) {
		t.Error("different arity must not be equal")
	}
}

func TestString(t *testing.T) {
	s := facultySchema(t)
	if got := s.String(); got != "(name = string, rank = string)" {
		t.Errorf("String = %q", got)
	}
}
