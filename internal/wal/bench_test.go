package wal

import (
	"path/filepath"
	"testing"

	"tdb/internal/tuple"
	"tdb/internal/value"
	"tdb/temporal"
)

func benchRecord() Record {
	return Record{
		Commit: temporal.Date(1982, 12, 15),
		Ops: []Op{
			{Code: OpAssert, Rel: "faculty",
				Tuple: tuple.New(value.NewString("Merrie"), value.NewString("full")),
				Valid: temporal.Since(temporal.Date(1982, 12, 1))},
		},
	}
}

func BenchmarkEncodeRecord(b *testing.B) {
	rec := benchRecord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeRecord(rec)
	}
}

func BenchmarkDecodeRecord(b *testing.B) {
	enc := EncodeRecord(benchRecord())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRecord(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendNoSync(b *testing.B) {
	l, err := Open(nil, filepath.Join(b.TempDir(), "bench.wal"), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := benchRecord()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendSync(b *testing.B) {
	l, err := Open(nil, filepath.Join(b.TempDir(), "bench.wal"), Options{Sync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := benchRecord()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplay(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.wal")
	l, err := Open(nil, path, Options{})
	if err != nil {
		b.Fatal(err)
	}
	rec := benchRecord()
	for i := 0; i < 10000; i++ {
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	l.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Replay(nil, path, false, func(Record) error { return nil })
		if err != nil || res.Records != 10000 {
			b.Fatalf("%+v, %v", res, err)
		}
	}
}
