package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"tdb/internal/vfs"
)

// legacyFrame renders rec in the headerless pre-epoch log format: 4-byte
// length, 4-byte payload-only CRC, payload — no file header.
func legacyFrame(rec Record) []byte {
	payload := EncodeRecord(rec)
	frame := make([]byte, frameHeader+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeader:], payload)
	return frame
}

// A headerless legacy log is recognized and refused — never truncated —
// even with repair requested. Destroying it would be irreversible data
// loss for a pre-epoch database opened by the current code.
func TestReplayRefusesLegacyFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	rec := Record{Commit: 7, Ops: []Op{{Code: OpDrop, Rel: "legacy"}}}
	legacy := append(legacyFrame(rec), legacyFrame(rec)...)
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Replay(nil, path, true, func(Record) error {
		t.Fatal("legacy record replayed as current-format")
		return nil
	})
	if !errors.Is(err, ErrUnknownFormat) {
		t.Fatalf("legacy replay: %v, want ErrUnknownFormat", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(legacy) {
		t.Fatalf("legacy file mutated: %d -> %d bytes", len(legacy), len(after))
	}
}

// A failed append rolls the file back to the last good frame, so a later
// append that returns nil is never stranded beyond a tear where recovery
// would silently discard it.
func TestAppendShortWriteRollsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	ffs := vfs.NewFaultFS(vfs.Default())
	l, err := Open(ffs, path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Commit: 1, Ops: []Op{{Code: OpDrop, Rel: "x"}}}
	if err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	ffs.ShortWriteAt(1)
	if err := l.Append(rec); err == nil {
		t.Fatal("short-write append succeeded")
	}
	if err := l.Append(rec); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	l.Close()
	var n int
	res, err := Replay(nil, path, false, func(Record) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || res.Truncated {
		t.Fatalf("replay after rollback: n=%d %+v, want 2 records and no tear", n, res)
	}
}

// When the rollback itself fails (here the injected crash kills every
// later operation), the log poisons itself: further appends fail fast
// with ErrTorn instead of landing beyond the tear. Truncation removes the
// torn region and revives the log.
func TestAppendTornPoisonsLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	ffs := vfs.NewFaultFS(vfs.Default())
	l, err := Open(ffs, path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Commit: 1, Ops: []Op{{Code: OpDrop, Rel: "x"}}}
	if err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	ffs.CrashAfter(1)
	if err := l.Append(rec); err == nil {
		t.Fatal("append at crash point succeeded")
	}
	if err := l.Append(rec); !errors.Is(err, ErrTorn) {
		t.Fatalf("append on poisoned log: %v, want ErrTorn", err)
	}
	ffs.Reset()
	if err := l.Truncate(2); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec); err != nil {
		t.Fatalf("append after reviving truncate: %v", err)
	}
	l.Close()
	var n int
	res, err := Replay(nil, path, false, func(Record) error { n++; return nil })
	if err != nil || n != 1 || res.Truncated || res.Epoch != 2 {
		t.Fatalf("replay after revive: n=%d %+v, %v", n, res, err)
	}
}
