// Package wal implements durability for the database: a write-ahead log in
// which each committed transaction is one CRC-framed record. Recovery
// replays complete records in order and truncates any torn tail left by a
// crash. Because every store is deterministic given its operation stream
// and commit chronons, full replay reconstructs the exact bitemporal state,
// including superseded versions.
package wal

import (
	"encoding/binary"
	"fmt"

	"tdb/internal/core"
	"tdb/internal/schema"
	"tdb/internal/tuple"
	"tdb/internal/value"
	"tdb/temporal"
)

// OpCode identifies a logical operation within a transaction record.
type OpCode uint8

const (
	// OpCreate creates a relation (Rel, Kind, Event, Schema).
	OpCreate OpCode = iota + 1
	// OpDrop destroys a relation (Rel).
	OpDrop
	// OpInsert inserts Tuple into a static or rollback relation.
	OpInsert
	// OpDelete deletes by Key from a static or rollback relation.
	OpDelete
	// OpReplace replaces Key with Tuple in a static or rollback relation.
	OpReplace
	// OpAssert asserts Tuple over Valid in a historical/temporal relation.
	OpAssert
	// OpRetract retracts Key over Valid in a historical/temporal relation.
	OpRetract
	// OpAssertAt asserts event Tuple at instant At.
	OpAssertAt
	// OpRetractAt retracts Key's event at instant At.
	OpRetractAt
)

var opNames = [...]string{
	OpCreate: "create", OpDrop: "drop", OpInsert: "insert", OpDelete: "delete",
	OpReplace: "replace", OpAssert: "assert", OpRetract: "retract",
	OpAssertAt: "assert-at", OpRetractAt: "retract-at",
}

// String returns the op name.
func (c OpCode) String() string {
	if int(c) < len(opNames) && opNames[c] != "" {
		return opNames[c]
	}
	return fmt.Sprintf("op(%d)", uint8(c))
}

// Op is one logical operation. Which fields are meaningful depends on Code.
type Op struct {
	Code   OpCode
	Rel    string
	Tuple  tuple.Tuple       // data tuple (insert/replace/assert)
	Key    tuple.Tuple       // key tuple (delete/replace/retract)
	Valid  temporal.Interval // valid period (assert/retract)
	At     temporal.Chronon  // event instant (assert-at/retract-at)
	Kind   core.Kind         // create only
	Event  bool              // create only
	Schema *schema.Schema    // create only
}

// Record is one committed transaction: its commit chronon and operations.
type Record struct {
	Commit temporal.Chronon
	Ops    []Op
}

// appendString appends a uvarint-length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func decodeString(src []byte) (string, int, error) {
	l, n := binary.Uvarint(src)
	if n <= 0 {
		return "", 0, fmt.Errorf("wal: corrupt string length")
	}
	if uint64(len(src)-n) < l {
		return "", 0, fmt.Errorf("wal: short string payload")
	}
	return string(src[n : n+int(l)]), n + int(l), nil
}

func appendChronon(dst []byte, c temporal.Chronon) []byte {
	return binary.AppendVarint(dst, int64(c))
}

func decodeChronon(src []byte) (temporal.Chronon, int, error) {
	v, n := binary.Varint(src)
	if n <= 0 {
		return 0, 0, fmt.Errorf("wal: corrupt chronon")
	}
	return temporal.Chronon(v), n, nil
}

func appendInterval(dst []byte, iv temporal.Interval) []byte {
	dst = appendChronon(dst, iv.From)
	return appendChronon(dst, iv.To)
}

func decodeInterval(src []byte) (temporal.Interval, int, error) {
	from, n1, err := decodeChronon(src)
	if err != nil {
		return temporal.Interval{}, 0, err
	}
	to, n2, err := decodeChronon(src[n1:])
	if err != nil {
		return temporal.Interval{}, 0, err
	}
	return temporal.Interval{From: from, To: to}, n1 + n2, nil
}

// appendTuple appends a presence byte and, if present, the tuple.
func appendTuple(dst []byte, t tuple.Tuple) []byte {
	if t == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return t.AppendBinary(dst)
}

func decodeTuple(src []byte) (tuple.Tuple, int, error) {
	if len(src) == 0 {
		return nil, 0, fmt.Errorf("wal: missing tuple presence byte")
	}
	if src[0] == 0 {
		return nil, 1, nil
	}
	t, n, err := tuple.DecodeBinary(src[1:])
	if err != nil {
		return nil, 0, err
	}
	return t, 1 + n, nil
}

func appendSchema(dst []byte, s *schema.Schema) []byte {
	if s == nil {
		return binary.AppendUvarint(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(s.Arity()))
	for i := 0; i < s.Arity(); i++ {
		a := s.Attr(i)
		dst = appendString(dst, a.Name)
		dst = append(dst, byte(a.Type))
	}
	keys := s.KeyIndices()
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = binary.AppendUvarint(dst, uint64(k))
	}
	return dst
}

func decodeSchema(src []byte) (*schema.Schema, int, error) {
	arity, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, 0, fmt.Errorf("wal: corrupt schema arity")
	}
	off := n
	if arity == 0 {
		return nil, off, nil
	}
	attrs := make([]schema.Attribute, 0, arity)
	for i := uint64(0); i < arity; i++ {
		name, n, err := decodeString(src[off:])
		if err != nil {
			return nil, 0, err
		}
		off += n
		if off >= len(src) {
			return nil, 0, fmt.Errorf("wal: short schema attribute")
		}
		attrs = append(attrs, schema.Attribute{Name: name, Type: value.Kind(src[off])})
		off++
	}
	s, err := schema.New(attrs...)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: decoded schema invalid: %w", err)
	}
	nKeys, n := binary.Uvarint(src[off:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("wal: corrupt schema key count")
	}
	off += n
	if nKeys > 0 {
		names := make([]string, 0, nKeys)
		for i := uint64(0); i < nKeys; i++ {
			ki, n := binary.Uvarint(src[off:])
			if n <= 0 {
				return nil, 0, fmt.Errorf("wal: corrupt schema key index")
			}
			off += n
			if ki >= arity {
				return nil, 0, fmt.Errorf("wal: schema key index %d out of range", ki)
			}
			names = append(names, s.Attr(int(ki)).Name)
		}
		if s, err = s.WithKey(names...); err != nil {
			return nil, 0, fmt.Errorf("wal: decoded schema key invalid: %w", err)
		}
	}
	return s, off, nil
}

// appendOp appends one encoded operation.
func appendOp(dst []byte, op Op) []byte {
	dst = append(dst, byte(op.Code))
	dst = appendString(dst, op.Rel)
	switch op.Code {
	case OpCreate:
		dst = append(dst, byte(op.Kind))
		if op.Event {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = appendSchema(dst, op.Schema)
	case OpDrop:
		// name only
	case OpInsert:
		dst = appendTuple(dst, op.Tuple)
	case OpDelete:
		dst = appendTuple(dst, op.Key)
	case OpReplace:
		dst = appendTuple(dst, op.Key)
		dst = appendTuple(dst, op.Tuple)
	case OpAssert:
		dst = appendTuple(dst, op.Tuple)
		dst = appendInterval(dst, op.Valid)
	case OpRetract:
		dst = appendTuple(dst, op.Key)
		dst = appendInterval(dst, op.Valid)
	case OpAssertAt:
		dst = appendTuple(dst, op.Tuple)
		dst = appendChronon(dst, op.At)
	case OpRetractAt:
		dst = appendTuple(dst, op.Key)
		dst = appendChronon(dst, op.At)
	}
	return dst
}

func decodeOp(src []byte) (Op, int, error) {
	if len(src) == 0 {
		return Op{}, 0, fmt.Errorf("wal: missing op code")
	}
	op := Op{Code: OpCode(src[0])}
	off := 1
	rel, n, err := decodeString(src[off:])
	if err != nil {
		return Op{}, 0, err
	}
	op.Rel = rel
	off += n
	switch op.Code {
	case OpCreate:
		if len(src) < off+2 {
			return Op{}, 0, fmt.Errorf("wal: short create op")
		}
		op.Kind = core.Kind(src[off])
		op.Event = src[off+1] == 1
		off += 2
		sch, n, err := decodeSchema(src[off:])
		if err != nil {
			return Op{}, 0, err
		}
		op.Schema = sch
		off += n
	case OpDrop:
	case OpInsert:
		op.Tuple, n, err = decodeTuple(src[off:])
		off += n
	case OpDelete:
		op.Key, n, err = decodeTuple(src[off:])
		off += n
	case OpReplace:
		if op.Key, n, err = decodeTuple(src[off:]); err == nil {
			off += n
			op.Tuple, n, err = decodeTuple(src[off:])
			off += n
		}
	case OpAssert:
		if op.Tuple, n, err = decodeTuple(src[off:]); err == nil {
			off += n
			op.Valid, n, err = decodeInterval(src[off:])
			off += n
		}
	case OpRetract:
		if op.Key, n, err = decodeTuple(src[off:]); err == nil {
			off += n
			op.Valid, n, err = decodeInterval(src[off:])
			off += n
		}
	case OpAssertAt:
		if op.Tuple, n, err = decodeTuple(src[off:]); err == nil {
			off += n
			op.At, n, err = decodeChronon(src[off:])
			off += n
		}
	case OpRetractAt:
		if op.Key, n, err = decodeTuple(src[off:]); err == nil {
			off += n
			op.At, n, err = decodeChronon(src[off:])
			off += n
		}
	default:
		return Op{}, 0, fmt.Errorf("wal: unknown op code %d", src[0])
	}
	if err != nil {
		return Op{}, 0, err
	}
	return op, off, nil
}

// EncodeRecord serializes a transaction record payload (without framing).
func EncodeRecord(r Record) []byte {
	dst := appendChronon(nil, r.Commit)
	dst = binary.AppendUvarint(dst, uint64(len(r.Ops)))
	for _, op := range r.Ops {
		dst = appendOp(dst, op)
	}
	return dst
}

// DecodeRecord parses a transaction record payload produced by
// EncodeRecord.
func DecodeRecord(src []byte) (Record, error) {
	var r Record
	commit, off, err := decodeChronon(src)
	if err != nil {
		return r, err
	}
	r.Commit = commit
	nOps, n := binary.Uvarint(src[off:])
	if n <= 0 {
		return r, fmt.Errorf("wal: corrupt op count")
	}
	off += n
	r.Ops = make([]Op, 0, nOps)
	for i := uint64(0); i < nOps; i++ {
		op, n, err := decodeOp(src[off:])
		if err != nil {
			return r, fmt.Errorf("wal: op %d: %w", i, err)
		}
		r.Ops = append(r.Ops, op)
		off += n
	}
	if off != len(src) {
		return r, fmt.Errorf("wal: %d trailing bytes in record", len(src)-off)
	}
	return r, nil
}
