package wal

import "tdb/internal/obs"

var (
	mRecords = obs.Default.Counter("tdb_wal_records_total",
		"Transaction records appended to the write-ahead log.")
	mBytes = obs.Default.Counter("tdb_wal_bytes_total",
		"Bytes appended to the write-ahead log, frame headers included.")
	mFsync = obs.Default.Histogram("tdb_wal_fsync_seconds",
		"Write-ahead log fsync latency.", obs.TimeBuckets)
	mFsyncs = obs.Default.Counter("tdb_wal_fsyncs_total",
		"Append-path fsyncs issued by the write-ahead log. Together with "+
			"tdb_wal_records_total this makes group-commit amortization "+
			"observable: records/fsyncs is the mean batch size.")
	mGroupBatch = obs.Default.Histogram("tdb_wal_group_commit_batch_size",
		"Transaction records coalesced per group-commit flush.", obs.CountBuckets)
	mSnapshot = obs.Default.Histogram("tdb_wal_snapshot_seconds",
		"Checkpoint snapshot write duration.", obs.TimeBuckets)
	mSnapshotBytes = obs.Default.Counter("tdb_wal_snapshot_bytes_total",
		"Bytes written across all checkpoint snapshots.")
)
