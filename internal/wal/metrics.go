package wal

import "tdb/internal/obs"

var (
	mRecords = obs.Default.Counter("tdb_wal_records_total",
		"Transaction records appended to the write-ahead log.")
	mBytes = obs.Default.Counter("tdb_wal_bytes_total",
		"Bytes appended to the write-ahead log, frame headers included.")
	mFsync = obs.Default.Histogram("tdb_wal_fsync_seconds",
		"Write-ahead log fsync latency.", obs.TimeBuckets)
	mSnapshot = obs.Default.Histogram("tdb_wal_snapshot_seconds",
		"Checkpoint snapshot write duration.", obs.TimeBuckets)
	mSnapshotBytes = obs.Default.Counter("tdb_wal_snapshot_bytes_total",
		"Bytes written across all checkpoint snapshots.")
)
