package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tdb/internal/core"
	"tdb/internal/schema"
	"tdb/internal/tuple"
	"tdb/internal/value"
	"tdb/temporal"
)

func promoSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s := schema.MustNew(
		schema.Attribute{Name: "name", Type: value.String},
		schema.Attribute{Name: "rank", Type: value.String},
		schema.Attribute{Name: "effective", Type: value.Instant},
	)
	keyed, err := s.WithKey("name")
	if err != nil {
		t.Fatal(err)
	}
	return keyed
}

func sampleRecord(t *testing.T) Record {
	t.Helper()
	return Record{
		Commit: temporal.Date(1982, 12, 15),
		Ops: []Op{
			{Code: OpCreate, Rel: "faculty", Kind: core.Temporal, Event: false, Schema: promoSchema(t)},
			{Code: OpAssert, Rel: "faculty",
				Tuple: tuple.New(value.NewString("Merrie"), value.NewString("full"), value.NewInstant(temporal.Date(1982, 12, 1))),
				Valid: temporal.Since(temporal.Date(1982, 12, 1))},
			{Code: OpRetract, Rel: "faculty",
				Key:   tuple.New(value.NewString("Mike")),
				Valid: temporal.Since(temporal.Date(1984, 3, 1))},
			{Code: OpAssertAt, Rel: "promotion",
				Tuple: tuple.New(value.NewString("Tom"), value.NewString("associate"), value.NewInstant(temporal.Date(1982, 12, 5))),
				At:    temporal.Date(1982, 12, 7)},
			{Code: OpRetractAt, Rel: "promotion",
				Key: tuple.New(value.NewString("Tom")),
				At:  temporal.Date(1982, 12, 5)},
			{Code: OpInsert, Rel: "static", Tuple: tuple.New(value.NewString("x"), value.NewString("y"), value.NewInstant(0))},
			{Code: OpDelete, Rel: "static", Key: tuple.New(value.NewString("x"))},
			{Code: OpReplace, Rel: "static",
				Key:   tuple.New(value.NewString("x")),
				Tuple: tuple.New(value.NewString("x"), value.NewString("z"), value.NewInstant(5))},
			{Code: OpDrop, Rel: "static"},
		},
	}
}

func recordsEqual(a, b Record) bool {
	if a.Commit != b.Commit || len(a.Ops) != len(b.Ops) {
		return false
	}
	for i := range a.Ops {
		x, y := a.Ops[i], b.Ops[i]
		if x.Code != y.Code || x.Rel != y.Rel || x.Valid != y.Valid ||
			x.At != y.At || x.Kind != y.Kind || x.Event != y.Event {
			return false
		}
		if !tuple.Equal(x.Tuple, y.Tuple) || !tuple.Equal(x.Key, y.Key) {
			return false
		}
		if (x.Schema == nil) != (y.Schema == nil) {
			return false
		}
		if x.Schema != nil {
			if !x.Schema.Equal(y.Schema) ||
				!reflect.DeepEqual(x.Schema.KeyIndices(), y.Schema.KeyIndices()) {
				return false
			}
		}
	}
	return true
}

func TestRecordRoundTrip(t *testing.T) {
	r := sampleRecord(t)
	enc := EncodeRecord(r)
	dec, err := DecodeRecord(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !recordsEqual(r, dec) {
		t.Fatalf("round trip:\n in  %+v\n out %+v", r, dec)
	}
}

func TestDecodeRecordErrors(t *testing.T) {
	good := EncodeRecord(sampleRecord(t))
	// Truncations at every boundary must error, never panic.
	for cut := 0; cut < len(good); cut++ {
		if _, err := DecodeRecord(good[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	// Trailing garbage is rejected.
	if _, err := DecodeRecord(append(append([]byte{}, good...), 0xff)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Unknown op code.
	bad := EncodeRecord(Record{Commit: 1, Ops: []Op{{Code: OpCode(99), Rel: "r"}}})
	if _, err := DecodeRecord(bad); err == nil {
		t.Error("unknown op code accepted")
	}
}

func TestLogAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	l, err := Open(nil, path, Options{Sync: true, Epoch: 7})
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		sampleRecord(t),
		{Commit: temporal.Date(1983, 1, 10), Ops: []Op{{Code: OpDrop, Rel: "faculty"}}},
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal("double close must be a no-op:", err)
	}
	if err := l.Append(recs[0]); err != ErrClosed {
		t.Fatalf("append after close: %v", err)
	}

	var got []Record
	res, err := Replay(nil, path, false, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 2 || res.Truncated {
		t.Fatalf("replay result = %+v", res)
	}
	if !res.HasEpoch || res.Epoch != 7 {
		t.Fatalf("header epoch = %d (has=%v), want 7", res.Epoch, res.HasEpoch)
	}
	for i := range recs {
		if !recordsEqual(recs[i], got[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReplayMissingFile(t *testing.T) {
	res, err := Replay(nil, filepath.Join(t.TempDir(), "nope.wal"), true, func(Record) error {
		t.Fatal("callback on missing file")
		return nil
	})
	if err != nil || res.Records != 0 || res.Truncated {
		t.Fatalf("missing file: %+v, %v", res, err)
	}
}

// Crash simulation: truncate the file at every byte offset; replay must
// recover every complete record before the tear, report truncation, and —
// with repair — leave a file that appends cleanly afterwards.
func TestReplayTornTail(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.wal")
	l, err := Open(nil, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Commit: 100, Ops: []Op{{Code: OpDrop, Rel: "a"}}},
		{Commit: 200, Ops: []Op{{Code: OpDrop, Rel: "bb"}}},
		{Commit: 300, Ops: []Op{{Code: OpDrop, Rel: "ccc"}}},
	}
	var bounds []int64
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
		fi, _ := os.Stat(base)
		bounds = append(bounds, fi.Size())
	}
	l.Close()
	full, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}

	wantComplete := func(cut int64) int {
		n := 0
		for _, b := range bounds {
			if cut >= b {
				n++
			}
		}
		return n
	}

	for cut := int64(0); cut <= int64(len(full)); cut++ {
		path := filepath.Join(dir, "cut.wal")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got int
		res, err := Replay(nil, path, true, func(r Record) error {
			got++
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got != wantComplete(cut) {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, got, wantComplete(cut))
		}
		// Clean cuts: empty file, exactly the header, or a record boundary.
		atBoundary := cut == 0 || cut == headerLen
		for _, b := range bounds {
			if cut == b {
				atBoundary = true
			}
		}
		if res.Truncated == atBoundary {
			t.Fatalf("cut %d: Truncated = %v, boundary = %v", cut, res.Truncated, atBoundary)
		}
		// After repair, appending and replaying again must work.
		l2, err := Open(nil, path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := l2.Append(Record{Commit: 400, Ops: []Op{{Code: OpDrop, Rel: "post"}}}); err != nil {
			t.Fatal(err)
		}
		l2.Close()
		got = 0
		res2, err := Replay(nil, path, false, func(Record) error { got++; return nil })
		if err != nil || res2.Truncated {
			t.Fatalf("cut %d post-repair: %+v, %v", cut, res2, err)
		}
		if got != wantComplete(cut)+1 {
			t.Fatalf("cut %d post-repair: %d records, want %d", cut, got, wantComplete(cut)+1)
		}
	}
}

// Bit-flip corruption anywhere in the payload region must be detected by
// the CRC, stopping replay at the previous record.
func TestReplayDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		path := filepath.Join(dir, fmt.Sprintf("c%d.wal", trial))
		l, err := Open(nil, path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(Record{Commit: 100, Ops: []Op{{Code: OpDrop, Rel: "victim-record"}}}); err != nil {
			t.Fatal(err)
		}
		l.Close()
		data, _ := os.ReadFile(path)
		i := r.Intn(len(data))
		data[i] ^= 1 << uint(r.Intn(8))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := Replay(nil, path, false, func(Record) error { return nil })
		if i < headerLen {
			// Header corruption is refused outright, never repaired away:
			// the frames behind a rotted header may still be salvageable.
			if !errors.Is(err, ErrUnknownFormat) {
				t.Fatalf("trial %d: header corruption at byte %d: %v, want ErrUnknownFormat", trial, i, err)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if res.Records != 0 || !res.Truncated {
			t.Fatalf("trial %d: corruption at byte %d undetected: %+v", trial, i, res)
		}
	}
}

func TestRandomRecordRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	codes := []OpCode{OpCreate, OpDrop, OpInsert, OpDelete, OpReplace,
		OpAssert, OpRetract, OpAssertAt, OpRetractAt}
	sch := promoSchema(t)
	for trial := 0; trial < 500; trial++ {
		rec := Record{Commit: temporal.Chronon(r.Int63n(1 << 40))}
		for i, n := 0, r.Intn(5); i < n; i++ {
			op := Op{Code: codes[r.Intn(len(codes))], Rel: "rel"}
			tup := tuple.New(value.NewString("n"), value.NewString("r"), value.NewInstant(temporal.Chronon(r.Int63n(1000))))
			key := tuple.New(value.NewString("n"))
			switch op.Code {
			case OpCreate:
				op.Kind = core.Kind(r.Intn(4))
				op.Event = r.Intn(2) == 0
				op.Schema = sch
			case OpInsert:
				op.Tuple = tup
			case OpDelete:
				op.Key = key
			case OpReplace:
				op.Key, op.Tuple = key, tup
			case OpAssert:
				op.Tuple = tup
				op.Valid = temporal.Since(temporal.Chronon(r.Int63n(1000)))
			case OpRetract:
				op.Key = key
				op.Valid = temporal.Since(temporal.Chronon(r.Int63n(1000)))
			case OpAssertAt:
				op.Tuple = tup
				op.At = temporal.Chronon(r.Int63n(1000))
			case OpRetractAt:
				op.Key = key
				op.At = temporal.Chronon(r.Int63n(1000))
			}
			rec.Ops = append(rec.Ops, op)
		}
		dec, err := DecodeRecord(EncodeRecord(rec))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !recordsEqual(rec, dec) {
			t.Fatalf("trial %d mismatch", trial)
		}
	}
}
