package wal

import (
	"math/rand"
	"path/filepath"
	"testing"

	"tdb/internal/core"
	"tdb/internal/tuple"
	"tdb/internal/value"
	"tdb/temporal"
)

func sampleSnapshot(t *testing.T) Snapshot {
	t.Helper()
	return Snapshot{
		LastCommit: temporal.Date(1984, 2, 25),
		Epoch:      3,
		Records:    42,
		Relations: []RelationSnapshot{
			{
				Name: "faculty", Kind: core.Temporal, Event: false,
				Schema: promoSchema(t),
				Versions: []core.Version{
					{
						Data:  tuple.New(value.NewString("Merrie"), value.NewString("full"), value.NewInstant(100)),
						Valid: temporal.Since(temporal.Date(1982, 12, 1)),
						Trans: temporal.Interval{From: temporal.Date(1982, 12, 15), To: temporal.Forever},
					},
					{
						Data:  tuple.New(value.NewString("Tom"), value.NewString("full"), value.NewInstant(200)),
						Valid: temporal.Since(temporal.Date(1982, 12, 5)),
						Trans: temporal.Interval{From: temporal.Date(1982, 12, 1), To: temporal.Date(1982, 12, 7)},
					},
				},
			},
			{
				Name: "events", Kind: core.Historical, Event: true,
				Schema: promoSchema(t),
			},
		},
	}
}

func snapshotsEqual(a, b Snapshot) bool {
	if a.LastCommit != b.LastCommit || a.Epoch != b.Epoch || a.Records != b.Records || len(a.Relations) != len(b.Relations) {
		return false
	}
	for i := range a.Relations {
		x, y := a.Relations[i], b.Relations[i]
		if x.Name != y.Name || x.Kind != y.Kind || x.Event != y.Event {
			return false
		}
		if !x.Schema.Equal(y.Schema) || len(x.Versions) != len(y.Versions) {
			return false
		}
		for j := range x.Versions {
			vx, vy := x.Versions[j], y.Versions[j]
			if !tuple.Equal(vx.Data, vy.Data) || vx.Valid != vy.Valid || vx.Trans != vy.Trans {
				return false
			}
		}
	}
	return true
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := sampleSnapshot(t)
	dec, err := DecodeSnapshot(EncodeSnapshot(s))
	if err != nil {
		t.Fatal(err)
	}
	if !snapshotsEqual(s, dec) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", s, dec)
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.snap")
	s := sampleSnapshot(t)
	if err := WriteSnapshot(nil, path, s); err != nil {
		t.Fatal(err)
	}
	dec, ok, err := ReadSnapshot(nil, path)
	if err != nil || !ok {
		t.Fatalf("read: %v, %v", ok, err)
	}
	if !snapshotsEqual(s, dec) {
		t.Fatal("file round trip mismatch")
	}
	// Overwrite is atomic and repeatable.
	s.Records = 0
	if err := WriteSnapshot(nil, path, s); err != nil {
		t.Fatal(err)
	}
	dec, _, err = ReadSnapshot(nil, path)
	if err != nil || dec.Records != 0 {
		t.Fatalf("overwrite: %+v, %v", dec, err)
	}
}

func TestSnapshotMissingFile(t *testing.T) {
	_, ok, err := ReadSnapshot(nil, filepath.Join(t.TempDir(), "absent.snap"))
	if err != nil || ok {
		t.Fatalf("missing snapshot: ok=%v err=%v", ok, err)
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	enc := EncodeSnapshot(sampleSnapshot(t))
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		bad := append([]byte(nil), enc...)
		bad[r.Intn(len(bad))] ^= 1 << uint(r.Intn(8))
		if _, err := DecodeSnapshot(bad); err == nil {
			// A flipped bit must never yield a silently different snapshot;
			// decoding may only succeed if it decoded the original bytes
			// (impossible here since we flipped one).
			t.Fatalf("trial %d: corruption undetected", trial)
		}
	}
	// Truncations must error, never panic.
	for cut := 0; cut < len(enc); cut += 7 {
		if _, err := DecodeSnapshot(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
