package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"path/filepath"
	"testing"

	"tdb/internal/core"
	"tdb/internal/segment"
	"tdb/internal/tuple"
	"tdb/internal/value"
	"tdb/temporal"
)

func sampleSnapshot(t *testing.T) Snapshot {
	t.Helper()
	return Snapshot{
		LastCommit: temporal.Date(1984, 2, 25),
		Epoch:      3,
		Records:    42,
		Relations: []RelationSnapshot{
			{
				Name: "faculty", Kind: core.Temporal, Event: false,
				Schema: promoSchema(t),
				Versions: []core.Version{
					{
						Data:  tuple.New(value.NewString("Merrie"), value.NewString("full"), value.NewInstant(100)),
						Valid: temporal.Since(temporal.Date(1982, 12, 1)),
						Trans: temporal.Interval{From: temporal.Date(1982, 12, 15), To: temporal.Forever},
					},
					{
						Data:  tuple.New(value.NewString("Tom"), value.NewString("full"), value.NewInstant(200)),
						Valid: temporal.Since(temporal.Date(1982, 12, 5)),
						Trans: temporal.Interval{From: temporal.Date(1982, 12, 1), To: temporal.Date(1982, 12, 7)},
					},
				},
			},
			{
				Name: "events", Kind: core.Historical, Event: true,
				Schema: promoSchema(t),
			},
		},
	}
}

func snapshotsEqual(a, b Snapshot) bool {
	if a.LastCommit != b.LastCommit || a.Epoch != b.Epoch || a.Records != b.Records || len(a.Relations) != len(b.Relations) {
		return false
	}
	for i := range a.Relations {
		x, y := a.Relations[i], b.Relations[i]
		if x.Name != y.Name || x.Kind != y.Kind || x.Event != y.Event {
			return false
		}
		if !x.Schema.Equal(y.Schema) || len(x.Versions) != len(y.Versions) {
			return false
		}
		for j := range x.Versions {
			vx, vy := x.Versions[j], y.Versions[j]
			if !tuple.Equal(vx.Data, vy.Data) || vx.Valid != vy.Valid || vx.Trans != vy.Trans {
				return false
			}
		}
	}
	return true
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := sampleSnapshot(t)
	dec, err := DecodeSnapshot(EncodeSnapshot(s))
	if err != nil {
		t.Fatal(err)
	}
	if !snapshotsEqual(s, dec) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", s, dec)
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.snap")
	s := sampleSnapshot(t)
	if err := WriteSnapshot(nil, path, s); err != nil {
		t.Fatal(err)
	}
	dec, ok, err := ReadSnapshot(nil, path)
	if err != nil || !ok {
		t.Fatalf("read: %v, %v", ok, err)
	}
	if !snapshotsEqual(s, dec) {
		t.Fatal("file round trip mismatch")
	}
	// Overwrite is atomic and repeatable.
	s.Records = 0
	if err := WriteSnapshot(nil, path, s); err != nil {
		t.Fatal(err)
	}
	dec, _, err = ReadSnapshot(nil, path)
	if err != nil || dec.Records != 0 {
		t.Fatalf("overwrite: %+v, %v", dec, err)
	}
}

// sealedSampleSegment builds one sealed segment of n promo rows.
func sealedSampleSegment(t *testing.T, n int) *segment.Segment {
	t.Helper()
	lg := segment.NewLog(promoSchema(t))
	lg.SetDisabled(false) // the fixture must seal even under ablation env knobs
	for i := 0; i < n; i++ {
		to := temporal.Forever
		if i%3 == 0 {
			to = temporal.Chronon(i + 100)
		}
		lg.Append(segment.Row{
			Data:    tuple.New(value.NewString(fmt.Sprintf("p%03d", i)), value.NewString("assoc"), value.NewInstant(temporal.Chronon(i))),
			Valid:   temporal.Since(temporal.Chronon(i)),
			Trans:   temporal.Interval{From: temporal.Chronon(i), To: to},
			KeyHash: uint64(i) * 0x9e3779b97f4a7c15,
		})
	}
	if !lg.SealNow() {
		t.Fatal("seal failed")
	}
	return lg.Segments()[0]
}

func TestSnapshotSegmentsRoundTrip(t *testing.T) {
	s := sampleSnapshot(t)
	s.Relations[0].Segments = []*segment.Segment{sealedSampleSegment(t, 64)}
	dec, err := DecodeSnapshot(EncodeSnapshot(s))
	if err != nil {
		t.Fatal(err)
	}
	if !snapshotsEqual(s, dec) {
		t.Fatal("row-wise parts drifted")
	}
	if len(dec.Relations[0].Segments) != 1 || len(dec.Relations[1].Segments) != 0 {
		t.Fatalf("segment counts: %d, %d", len(dec.Relations[0].Segments), len(dec.Relations[1].Segments))
	}
	var want, got []segment.Row
	s.Relations[0].Segments[0].Each(func(r segment.Row) bool { want = append(want, r); return true })
	dec.Relations[0].Segments[0].Each(func(r segment.Row) bool { got = append(got, r); return true })
	if len(want) != len(got) {
		t.Fatalf("segment rows: want %d got %d", len(want), len(got))
	}
	for i := range want {
		if !tuple.Equal(want[i].Data, got[i].Data) || want[i].Valid != got[i].Valid ||
			want[i].Trans != got[i].Trans || want[i].KeyHash != got[i].KeyHash {
			t.Fatalf("segment row %d: want %+v got %+v", i, want[i], got[i])
		}
	}
}

// encodeSnapshotV2 reproduces the legacy row-wise layout byte for byte, so
// decode keeps accepting snapshots written before the segment era.
func encodeSnapshotV2(s Snapshot) []byte {
	payload := appendChronon(nil, s.LastCommit)
	payload = binary.AppendUvarint(payload, s.Epoch)
	payload = binary.AppendUvarint(payload, uint64(s.Records))
	payload = binary.AppendUvarint(payload, uint64(len(s.Relations)))
	for _, r := range s.Relations {
		payload = appendString(payload, r.Name)
		payload = append(payload, byte(r.Kind))
		if r.Event {
			payload = append(payload, 1)
		} else {
			payload = append(payload, 0)
		}
		payload = appendSchema(payload, r.Schema)
		payload = binary.AppendUvarint(payload, r.WriteVersion)
		payload = binary.AppendUvarint(payload, uint64(len(r.Versions)))
		for _, v := range r.Versions {
			payload = v.Data.AppendBinary(payload)
			payload = appendInterval(payload, v.Valid)
			payload = appendInterval(payload, v.Trans)
		}
	}
	out := append([]byte{}, snapMagic...)
	out = append(out, payload...)
	return binary.BigEndian.AppendUint32(out, crc32.Checksum(payload, crcTable))
}

func TestSnapshotLegacyV2Decode(t *testing.T) {
	s := sampleSnapshot(t)
	dec, err := DecodeSnapshot(encodeSnapshotV2(s))
	if err != nil {
		t.Fatal(err)
	}
	if !snapshotsEqual(s, dec) {
		t.Fatal("legacy decode mismatch")
	}
	for _, r := range dec.Relations {
		if len(r.Segments) != 0 {
			t.Fatalf("legacy snapshot grew segments: %q", r.Name)
		}
	}
}

func TestSnapshotMissingFile(t *testing.T) {
	_, ok, err := ReadSnapshot(nil, filepath.Join(t.TempDir(), "absent.snap"))
	if err != nil || ok {
		t.Fatalf("missing snapshot: ok=%v err=%v", ok, err)
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	enc := EncodeSnapshot(sampleSnapshot(t))
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		bad := append([]byte(nil), enc...)
		bad[r.Intn(len(bad))] ^= 1 << uint(r.Intn(8))
		if _, err := DecodeSnapshot(bad); err == nil {
			// A flipped bit must never yield a silently different snapshot;
			// decoding may only succeed if it decoded the original bytes
			// (impossible here since we flipped one).
			t.Fatalf("trial %d: corruption undetected", trial)
		}
	}
	// Truncations must error, never panic.
	for cut := 0; cut < len(enc); cut += 7 {
		if _, err := DecodeSnapshot(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
