package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"tdb/internal/vfs"
	"tdb/temporal"
)

// tinyRecord builds a distinguishable one-op record.
func tinyRecord(i int) Record {
	return Record{
		Commit: temporal.Chronon(1000 + i),
		Ops:    []Op{{Code: OpDrop, Rel: fmt.Sprintf("r%d", i)}},
	}
}

// replayCommits returns the commit chronons of every record in the log, in
// log order.
func replayCommits(t *testing.T, fsys vfs.FS, path string) []temporal.Chronon {
	t.Helper()
	var got []temporal.Chronon
	if _, err := Replay(fsys, path, false, func(r Record) error {
		got = append(got, r.Commit)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

// With a coalescing window armed, records enqueued together land as one
// write and one fsync, and every committer still gets its own durability
// signal.
func TestGroupCommitCoalescesOntoOneSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	l, err := Open(nil, path, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	syncsBefore := mFsyncs.Value()
	batchesBefore := mGroupBatch.Count()

	// A generous window: all eight records are enqueued microseconds apart,
	// so the leader collects them all before its first flush.
	g := NewGroupCommitter(l, GroupOptions{MaxWait: 500 * time.Millisecond})
	const n = 8
	pendings := make([]*Pending, n)
	for i := 0; i < n; i++ {
		pendings[i] = g.Enqueue(tinyRecord(i))
	}
	for i, p := range pendings {
		if err := p.Wait(); err != nil {
			t.Fatalf("committer %d: %v", i, err)
		}
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	if got := mFsyncs.Value() - syncsBefore; got != 1 {
		t.Fatalf("%d fsyncs for %d coalesced commits, want 1", got, n)
	}
	if got := mGroupBatch.Count() - batchesBefore; got != 1 {
		t.Fatalf("%d flush batches, want 1", got)
	}
	if got := l.Records(); got != n {
		t.Fatalf("log records = %d, want %d", got, n)
	}
	commits := replayCommits(t, nil, path)
	if len(commits) != n {
		t.Fatalf("replayed %d records, want %d", len(commits), n)
	}
	// Enqueue order is flush order is log order.
	for i, c := range commits {
		if c != temporal.Chronon(1000+i) {
			t.Fatalf("record %d has commit %d, want %d (order broken)", i, c, 1000+i)
		}
	}
}

// Concurrent committers through a group committer lose no records and the
// replayed log holds exactly the committed set.
func TestGroupCommitConcurrentCommitters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	l, err := Open(nil, path, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	g := NewGroupCommitter(l, GroupOptions{MaxWait: time.Millisecond})

	const workers, per = 16, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := g.Commit(tinyRecord(w*per + i)); err != nil {
					t.Errorf("worker %d commit %d: %v", w, i, err)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	if got := l.Records(); got != workers*per {
		t.Fatalf("log records = %d, want %d", got, workers*per)
	}
	seen := make(map[temporal.Chronon]bool)
	for _, c := range replayCommits(t, nil, path) {
		if seen[c] {
			t.Fatalf("commit %d appears twice in the log", c)
		}
		seen[c] = true
	}
	if len(seen) != workers*per {
		t.Fatalf("replayed %d distinct records, want %d", len(seen), workers*per)
	}
}

// Flush is a barrier: when it returns, everything enqueued before it is
// durable and the log's record count is exact — the property Checkpoint
// builds its snapshot bookkeeping on.
func TestGroupCommitFlushBarrier(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	l, err := Open(nil, path, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	g := NewGroupCommitter(l, GroupOptions{MaxWait: 500 * time.Millisecond})
	defer g.Close()

	pendings := make([]*Pending, 3)
	for i := range pendings {
		pendings[i] = g.Enqueue(tinyRecord(i))
	}
	if err := g.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := l.Records(); got != 3 {
		t.Fatalf("records after Flush = %d, want 3", got)
	}
	// The individual claims are already settled.
	for i, p := range pendings {
		if err := p.Wait(); err != nil {
			t.Fatalf("pending %d after Flush: %v", i, err)
		}
	}
}

// Close drains what is queued — even mid-linger — and later enqueues fail
// with ErrClosed instead of hanging.
func TestGroupCommitCloseDrains(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	l, err := Open(nil, path, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	g := NewGroupCommitter(l, GroupOptions{MaxWait: time.Minute})

	pendings := make([]*Pending, 5)
	for i := range pendings {
		pendings[i] = g.Enqueue(tinyRecord(i))
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	for i, p := range pendings {
		if err := p.Wait(); err != nil {
			t.Fatalf("pending %d lost by Close: %v", i, err)
		}
	}
	if got := l.Records(); got != 5 {
		t.Fatalf("records after Close = %d, want 5", got)
	}
	if err := g.Commit(tinyRecord(9)); !errors.Is(err, ErrClosed) {
		t.Fatalf("commit after Close = %v, want ErrClosed", err)
	}
}

// An fsync failure poisons exactly the batch it covered: those committers
// get the error, the log rolls back to its pre-batch size, records flushed
// before stay durable, and the next batch lands on a clean tail.
func TestGroupCommitSyncFailurePoisonsOnlyItsBatch(t *testing.T) {
	ffs := vfs.NewFaultFS(vfs.Default())
	path := filepath.Join(t.TempDir(), "tdb.wal")
	l, err := Open(ffs, path, Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	g := NewGroupCommitter(l, GroupOptions{MaxWait: 500 * time.Millisecond})
	defer g.Close()

	// Batch 1 lands clean.
	if err := g.Commit(tinyRecord(0)); err != nil {
		t.Fatal(err)
	}
	sizeAfterFirst := l.Size()

	// Batch 2 (two coalesced records) hits the injected fsync failure.
	ffs.FailSyncAt(1)
	pb := g.Enqueue(tinyRecord(1))
	pc := g.Enqueue(tinyRecord(2))
	errB, errC := pb.Wait(), pc.Wait()
	if !errors.Is(errB, vfs.ErrInjectedSync) || !errors.Is(errC, vfs.ErrInjectedSync) {
		t.Fatalf("covered committers got (%v, %v), want injected sync failure for both", errB, errC)
	}
	if got := l.Size(); got != sizeAfterFirst {
		t.Fatalf("log size %d after failed batch, want rollback to %d", got, sizeAfterFirst)
	}
	if got := l.Records(); got != 1 {
		t.Fatalf("records after failed batch = %d, want 1", got)
	}

	// The fault was one-shot; the next batch must land on the clean tail.
	if err := g.Commit(tinyRecord(3)); err != nil {
		t.Fatal(err)
	}
	commits := replayCommits(t, ffs, path)
	want := []temporal.Chronon{1000, 1003}
	if len(commits) != len(want) || commits[0] != want[0] || commits[1] != want[1] {
		t.Fatalf("replayed commits %v, want %v (failed batch leaked or durable batch lost)", commits, want)
	}
}
