package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"tdb/internal/vfs"
)

// An empty log file carries no epoch; the header appears with the first
// append and survives truncation with the new epoch.
func TestLogHeaderLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tdb.wal")
	l, err := Open(nil, path, Options{Epoch: 0})
	if err != nil {
		t.Fatal(err)
	}
	// No appends yet: zero bytes, no header.
	if fi, err := os.Stat(path); err != nil || fi.Size() != 0 {
		t.Fatalf("empty log size: %v, %v", fi, err)
	}
	res, err := Replay(nil, path, false, func(Record) error { return nil })
	if err != nil || res.HasEpoch || res.Records != 0 {
		t.Fatalf("empty log replay: %+v, %v", res, err)
	}

	rec := Record{Commit: 1, Ops: []Op{{Code: OpDrop, Rel: "x"}}}
	if err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	res, err = Replay(nil, path, false, func(Record) error { return nil })
	if err != nil || !res.HasEpoch || res.Epoch != 0 || res.Records != 1 {
		t.Fatalf("after first append: %+v, %v", res, err)
	}

	// Truncate into epoch 5: file empty again, next append stamps 5.
	if err := l.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if fi, _ := os.Stat(path); fi.Size() != 0 {
		t.Fatalf("truncated log size = %d", fi.Size())
	}
	if l.Epoch() != 5 {
		t.Fatalf("epoch after truncate = %d", l.Epoch())
	}
	if err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	l.Close()
	res, err = Replay(nil, path, false, func(Record) error { return nil })
	if err != nil || !res.HasEpoch || res.Epoch != 5 || res.Records != 1 {
		t.Fatalf("after truncate+append: %+v, %v", res, err)
	}
}

// A header torn mid-write is detected and, with repair, the file resets to
// empty so the next append starts a clean era.
func TestReplayTornHeader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tdb.wal")
	l, err := Open(nil, path, Options{Epoch: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Commit: 1, Ops: []Op{{Code: OpDrop, Rel: "x"}}}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < headerLen; cut++ {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := Replay(nil, path, true, func(Record) error {
			t.Fatalf("cut %d: record replayed from torn header", cut)
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !res.Truncated || res.HasEpoch || res.GoodBytes != 0 {
			t.Fatalf("cut %d: %+v", cut, res)
		}
		if fi, _ := os.Stat(path); fi.Size() != 0 {
			t.Fatalf("cut %d: repair left %d bytes", cut, fi.Size())
		}
	}
	// A bit-flipped header is not a torn first append (a tear preserves the
	// bytes before it): Replay refuses with ErrUnknownFormat and must not
	// mutate the file, even with repair requested — the frames behind the
	// rotted header may still be salvageable by hand.
	bad := append([]byte(nil), data...)
	bad[10] ^= 0x40
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(nil, path, true, func(Record) error { return nil })
	if !errors.Is(err, ErrUnknownFormat) {
		t.Fatalf("corrupt header: %v, want ErrUnknownFormat", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(bad) {
		t.Fatalf("refusing a corrupt header still mutated the file (%d -> %d bytes)", len(bad), len(after))
	}
}

// A crash torn mid-append through FaultFS leaves a prefix the next Replay
// recovers: the log's own fault-injection round trip.
func TestLogFaultInjectedTear(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tdb.wal")
	rec := Record{Commit: 1, Ops: []Op{{Code: OpDrop, Rel: "victim"}}}

	ffs := vfs.NewFaultFS(vfs.Default())
	l, err := Open(ffs, path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	ffs.CrashAfter(1)
	if err := l.Append(rec); !errors.Is(err, vfs.ErrCrashed) {
		t.Fatalf("append at crash point: %v", err)
	}

	// Reboot: replay through a clean FS sees one whole record and a tear.
	var n int
	res, err := Replay(nil, path, true, func(Record) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || !res.Truncated {
		t.Fatalf("post-crash replay: n=%d %+v", n, res)
	}
	// The repaired log appends cleanly.
	l2, err := Open(nil, path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(rec); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	n = 0
	if _, err := Replay(nil, path, false, func(Record) error { n++; return nil }); err != nil || n != 2 {
		t.Fatalf("after repair+append: n=%d, %v", n, err)
	}
}

// An injected fsync failure surfaces from a Sync-mode append.
func TestLogSyncFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.Default())
	l, err := Open(ffs, filepath.Join(dir, "tdb.wal"), Options{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rec := Record{Commit: 1, Ops: []Op{{Code: OpDrop, Rel: "x"}}}
	if err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	ffs.FailSyncAt(1)
	if err := l.Append(rec); !errors.Is(err, vfs.ErrInjectedSync) {
		t.Fatalf("append with failing fsync: %v", err)
	}
	// The fault is one-shot; the log keeps working.
	if err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
}
