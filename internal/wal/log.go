package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"tdb/internal/vfs"
)

// File layout. A non-empty log starts with a 20-byte header: 8-byte magic,
// 8-byte big-endian epoch, 4-byte CRC-32 (Castagnoli) of magic+epoch. The
// epoch names the checkpoint era this log extends: it equals the Epoch of
// the snapshot that truncated the log (0 before the first checkpoint), and
// recovery uses it to prove that a snapshot and a log belong together
// before combining them. The header is written lazily with the first
// append, so an empty log file stays zero bytes (and carries no epoch —
// an empty log is trivially consistent with any snapshot).
//
// Frames follow: 4-byte big-endian payload length, 4-byte big-endian
// CRC-32 (Castagnoli) over the length bytes and the payload — covering the
// length means a bit-flip in the length field itself is also caught —
// then the payload. A frame that is incomplete or fails its CRC marks the
// end of the usable log; the tail beyond it is discarded on recovery (torn
// write after a crash).

const (
	frameHeader = 8
	headerLen   = 20
)

// HeaderLen is the size of the log file header in bytes, exported for the
// replication subsystem: a follower receiving a log byte stream from offset
// zero must strip and verify the header before the first frame.
const HeaderLen = headerLen

// FrameOverhead is the per-record framing cost (length + CRC), exported so
// replication can reason about frame boundaries in a shipped byte stream.
const FrameOverhead = frameHeader

var logMagic = []byte("TDBWAL02")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameCRC is the per-record checksum: it covers the frame's length field
// and the payload.
func frameCRC(lenField, payload []byte) uint32 {
	return crc32.Update(crc32.Checksum(lenField, crcTable), crcTable, payload)
}

// encodeHeader renders the log file header for an epoch.
func encodeHeader(epoch uint64) []byte {
	h := make([]byte, headerLen)
	copy(h, logMagic)
	binary.BigEndian.PutUint64(h[8:16], epoch)
	binary.BigEndian.PutUint32(h[16:20], crc32.Checksum(h[:16], crcTable))
	return h
}

// EncodeHeader renders the log file header for an epoch — what the first
// append into an empty log writes, exported for replication tests and
// tooling that fabricate log byte streams.
func EncodeHeader(epoch uint64) []byte { return encodeHeader(epoch) }

// DecodeHeader validates a log file header, returning its epoch. It is the
// check a replication follower runs on the first HeaderLen bytes of a
// shipped log stream before trusting any frame that follows.
func DecodeHeader(data []byte) (uint64, bool) { return decodeHeader(data) }

// decodeHeader validates a log file header, returning its epoch.
func decodeHeader(data []byte) (uint64, bool) {
	if len(data) < headerLen {
		return 0, false
	}
	if string(data[:8]) != string(logMagic) {
		return 0, false
	}
	if crc32.Checksum(data[:16], crcTable) != binary.BigEndian.Uint32(data[16:20]) {
		return 0, false
	}
	return binary.BigEndian.Uint64(data[8:16]), true
}

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrTorn reports a log disabled by a failed append whose partial write
// could not be rolled back: frames appended after the torn bytes would sit
// beyond the tear, where recovery's torn-tail rule silently discards them,
// so the log refuses further appends until it is truncated or reopened
// through recovery.
var ErrTorn = errors.New("wal: log torn by failed append")

// ErrUnknownFormat reports a log file whose leading bytes are neither the
// current header nor a provably torn first append: a headerless legacy log,
// a foreign file, or bit rot inside the header. Recovery refuses to touch
// such a file — truncating it would irreversibly destroy history that an
// operator (or a migration tool) may still be able to read.
var ErrUnknownFormat = errors.New("wal: unrecognized log file format")

// Log is an append-only write-ahead log file. All I/O goes through the
// vfs.FS it was opened with, which is how fault-injection tests reach it.
//
// A Log is safe for concurrent use: an internal mutex serializes appends,
// truncation, and close against each other, so the group-commit leader can
// flush batches while replication readers consult Size and Records without
// holding the database's lock.
type Log struct {
	mu      sync.Mutex
	fsys    vfs.FS
	f       vfs.File
	size    int64 // current end offset; 0 means the header is unwritten
	records int   // complete records this Log has appended or been seeded with
	epoch   uint64
	sync    bool
	closed  bool
	failed  bool // a torn append could not be rolled back; appends refused
}

// Options configure a Log.
type Options struct {
	// Sync forces an fsync after every append; slower, but a crash loses at
	// most the in-flight transaction. Off by default (the OS flushes).
	Sync bool
	// Epoch is the checkpoint era stamped into the file header when this
	// log writes its first frame into an empty file. Recovery supplies the
	// era it recovered to; zero is the pre-first-checkpoint era.
	Epoch uint64
	// Records seeds the log's record count with what a recovery scan found
	// in the existing file, so Records() stays exact across reopen.
	Records int
}

// Open opens (creating if needed) the log at path for appending through
// fsys. A nil fsys uses the operating system.
func Open(fsys vfs.FS, path string, opts Options) (*Log, error) {
	if fsys == nil {
		fsys = vfs.Default()
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	return &Log{fsys: fsys, f: f, size: size, records: opts.Records, epoch: opts.Epoch, sync: opts.Sync}, nil
}

// Epoch returns the checkpoint era the log stamps (or has stamped) into
// its header.
func (l *Log) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// Append writes one transaction record to the log. The first append into
// an empty file carries the header in the same write, so a torn first
// write can never leave a valid header with no usable epoch semantics.
func (l *Log) Append(r Record) error {
	return l.AppendPayloads([][]byte{EncodeRecord(r)})
}

// AppendPayloads writes a batch of already-encoded records as one file
// write — the group-commit flush path. The whole batch shares a single
// fsync when Sync is on, which is what amortizes the dominant durability
// cost across concurrent committers. Failure poisons exactly this batch:
// a failed write or fsync rolls the file back to the pre-batch size (so
// the log tail stays recoverable and later batches still land), and only
// if that rollback itself fails is the log poisoned with ErrTorn.
func (l *Log) AppendPayloads(payloads [][]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed {
		return ErrTorn
	}
	pre := 0
	if l.size == 0 {
		pre = headerLen
	}
	total := pre
	for _, p := range payloads {
		total += frameHeader + len(p)
	}
	frame := make([]byte, total)
	if pre > 0 {
		copy(frame, encodeHeader(l.epoch))
	}
	off := pre
	for _, p := range payloads {
		binary.BigEndian.PutUint32(frame[off:off+4], uint32(len(p)))
		binary.BigEndian.PutUint32(frame[off+4:off+8], frameCRC(frame[off:off+4], p))
		copy(frame[off+frameHeader:], p)
		off += frameHeader + len(p)
	}
	n, err := l.f.Write(frame)
	if err != nil {
		// A short write leaves torn bytes after the last good frame.
		// Appending more frames there would put them beyond the tear, where
		// recovery's torn-tail rule silently discards them even though their
		// Append returned nil — so roll the file back to the pre-write size,
		// or failing that poison the log so nothing lands past the tear.
		if n > 0 {
			l.rollbackTo(l.size)
		}
		return fmt.Errorf("wal: append: %w", err)
	}
	pos := l.size
	l.size += int64(n)
	mRecords.Add(uint64(len(payloads)))
	mBytes.Add(uint64(len(frame)))
	if l.sync {
		start := time.Now()
		if err := l.f.Sync(); err != nil {
			// The bytes are in the file but not provably on disk. Roll the
			// whole batch back so the possible tear covers exactly the
			// records whose committers are being told they failed — every
			// frame before this batch stays durable and appendable-after.
			l.size = pos
			l.rollbackTo(pos)
			return fmt.Errorf("wal: sync: %w", err)
		}
		mFsync.ObserveSince(start)
		mFsyncs.Inc()
	}
	l.records += len(payloads)
	return nil
}

// rollbackTo truncates the file back to pos after a failed append, or
// poisons the log when the truncate itself fails. Callers hold l.mu.
func (l *Log) rollbackTo(pos int64) {
	if terr := l.f.Truncate(pos); terr != nil {
		l.failed = true
	} else if _, serr := l.f.Seek(pos, io.SeekStart); serr != nil {
		l.failed = true
	}
}

// Size returns the log's current end offset in bytes (header included once
// the first frame has been written). It is the replication cursor: a
// follower whose local log holds Size bytes of epoch E resumes streaming
// from exactly (E, Size). Size only ever reflects fully written frames, so
// reading the file below Size is safe while appends run concurrently.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Records returns the number of complete records in the log file: the
// recovery-scan seed plus every record successfully appended since. A
// record whose batch failed and rolled back is never counted.
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// AppendRaw writes raw bytes to the log verbatim, without framing them.
// It is the replication apply path: a follower receives byte windows of
// the primary's log — header and CRC-framed records exactly as written —
// and lands them locally so the two files stay byte-identical and byte
// offsets remain a shared cursor. The caller has already verified the
// bytes (header epoch and per-frame CRCs) and reports how many whole
// records they frame; a torn write is rolled back or poisons the log
// exactly as Append does.
func (l *Log) AppendRaw(raw []byte, records int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed {
		return ErrTorn
	}
	n, err := l.f.Write(raw)
	if err != nil {
		if n > 0 {
			l.rollbackTo(l.size)
		}
		return fmt.Errorf("wal: append raw: %w", err)
	}
	l.size += int64(n)
	mBytes.Add(uint64(len(raw)))
	if l.sync {
		start := time.Now()
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
		mFsync.ObserveSince(start)
		mFsyncs.Inc()
	}
	l.records += records
	return nil
}

// ErrFrameCorrupt reports a byte stream whose next frame fails its CRC or
// does not decode as a record. A file tail in this state is a torn write;
// a replication stream in this state is corruption in transit, and the
// follower must drop the connection and re-sync rather than apply it.
var ErrFrameCorrupt = errors.New("wal: corrupt frame in stream")

// ScanFrames parses complete CRC-framed records from the front of buf —
// the in-memory equivalent of Replay over a shipped byte window. It stops
// cleanly at an incomplete trailing frame (consumed reports how many bytes
// form whole verified frames; the caller keeps the remainder buffered) and
// fails with ErrFrameCorrupt when a complete frame fails its checksum or
// record decode. buf must start at a frame boundary: strip the file header
// with DecodeHeader first when scanning from offset zero.
func ScanFrames(buf []byte, fn func(Record) error) (consumed int, err error) {
	for {
		rest := buf[consumed:]
		if len(rest) < frameHeader {
			return consumed, nil
		}
		n := int64(binary.BigEndian.Uint32(rest[0:4]))
		if int64(len(rest)) < int64(frameHeader)+n {
			return consumed, nil
		}
		payload := rest[frameHeader : int64(frameHeader)+n]
		if frameCRC(rest[0:4], payload) != binary.BigEndian.Uint32(rest[4:8]) {
			return consumed, fmt.Errorf("%w: checksum mismatch at stream offset %d", ErrFrameCorrupt, consumed)
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			return consumed, fmt.Errorf("%w: %v", ErrFrameCorrupt, err)
		}
		if err := fn(rec); err != nil {
			return consumed, err
		}
		consumed += frameHeader + int(n)
	}
}

// Truncate discards the log's contents and starts a new epoch: the next
// append writes a fresh header carrying it. Used after a checkpoint has
// made the logged history redundant. Truncation removes any torn region a
// failed append left behind, so it also revives a log that Append had
// poisoned with ErrTorn.
func (l *Log) Truncate(epoch uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: truncate seek: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: truncate sync: %w", err)
	}
	l.size = 0
	l.records = 0
	l.epoch = epoch
	l.failed = false
	return nil
}

// Close flushes and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: sync on close: %w", err)
	}
	return l.f.Close()
}

// ReplayResult summarizes a recovery pass.
type ReplayResult struct {
	// Records is the number of complete transactions replayed.
	Records int
	// Truncated reports whether a torn or corrupt tail was found (and, if
	// repair was requested, removed).
	Truncated bool
	// GoodBytes is the offset of the end of the last complete record.
	GoodBytes int64
	// Epoch is the checkpoint era from the file header; meaningful only
	// when HasEpoch is true.
	Epoch uint64
	// HasEpoch reports whether the file carried a valid header. An empty
	// (or headerless, torn-at-birth) log has no epoch.
	HasEpoch bool
}

// looksLegacy reports whether data begins with a complete, checksum-valid
// frame in the headerless pre-epoch log format (4-byte length, 4-byte
// payload-only CRC, payload; no file header). One valid leading frame is
// proof enough: the current format always starts with the TDBWAL02 header,
// and random corruption does not pass a CRC-32 plus a record decode. It is
// how Replay tells a legacy database apart from a torn first append.
func looksLegacy(data []byte) bool {
	if len(data) < frameHeader {
		return false
	}
	n := int64(binary.BigEndian.Uint32(data[0:4]))
	if int64(len(data)) < frameHeader+n {
		return false
	}
	payload := data[frameHeader : frameHeader+int(n)]
	if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(data[4:8]) {
		return false
	}
	_, err := DecodeRecord(payload)
	return err == nil
}

// Replay reads the log at path from the beginning, calling fn for every
// complete, checksum-valid record in order. When repair is true, a torn or
// corrupt tail is truncated away so subsequent appends start clean; a file
// provably torn mid-header (shorter than the header, with no legacy frame)
// is truncated to empty. A file in an unrecognized format — legacy,
// foreign, or header-rotted — fails with ErrUnknownFormat and is never
// mutated. A missing file replays zero records.
func Replay(fsys vfs.FS, path string, repair bool, fn func(Record) error) (ReplayResult, error) {
	if fsys == nil {
		fsys = vfs.Default()
	}
	var res ReplayResult
	data, err := fsys.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return res, nil
		}
		return res, fmt.Errorf("wal: replay read: %w", err)
	}
	off := int64(0)
	if len(data) > 0 {
		epoch, ok := decodeHeader(data)
		if !ok {
			if int64(len(data)) >= headerLen || looksLegacy(data) {
				// Not a torn first append: a tear preserves every byte
				// before it, so a torn current-format file without a valid
				// header is necessarily shorter than the header itself.
				// This is a headerless legacy log, a foreign file, or bit
				// rot inside the header — refuse without mutating, because
				// truncating would irreversibly destroy the history.
				return res, fmt.Errorf("%w: %s", ErrUnknownFormat, path)
			}
			// Shorter than the header and not a legacy frame: provably a
			// first append torn mid-header. Nothing in the file was ever
			// readable, so repair resets it to empty.
			res.Truncated = true
			if repair {
				if err := fsys.Truncate(path, 0); err != nil {
					return res, fmt.Errorf("wal: truncating torn header: %w", err)
				}
			}
			return res, nil
		}
		res.Epoch, res.HasEpoch = epoch, true
		off = headerLen
	}
	for {
		rest := data[off:]
		if len(rest) == 0 {
			break
		}
		if len(rest) < frameHeader {
			res.Truncated = true
			break
		}
		n := int64(binary.BigEndian.Uint32(rest[0:4]))
		sum := binary.BigEndian.Uint32(rest[4:8])
		if int64(len(rest)) < frameHeader+n {
			res.Truncated = true
			break
		}
		payload := rest[frameHeader : frameHeader+n]
		if frameCRC(rest[0:4], payload) != sum {
			res.Truncated = true
			break
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			// The frame checksummed correctly but the payload is not a
			// record we understand: stop, treating it as corruption.
			res.Truncated = true
			break
		}
		if err := fn(rec); err != nil {
			return res, fmt.Errorf("wal: replaying record %d: %w", res.Records, err)
		}
		res.Records++
		off += frameHeader + n
	}
	res.GoodBytes = off
	if res.Truncated && repair {
		if err := fsys.Truncate(path, off); err != nil {
			return res, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	return res, nil
}
