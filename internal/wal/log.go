package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"
)

// Frame layout on disk: 4-byte big-endian payload length, 4-byte big-endian
// CRC-32 (Castagnoli) of the payload, payload bytes. A record whose frame is
// incomplete or whose CRC mismatches marks the end of the usable log; the
// tail beyond it is discarded on recovery (torn write after a crash).

const frameHeader = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed reports use of a closed log.
var ErrClosed = errors.New("wal: log closed")

// Log is an append-only write-ahead log file.
type Log struct {
	f      *os.File
	sync   bool
	closed bool
}

// Options configure a Log.
type Options struct {
	// Sync forces an fsync after every append; slower, but a crash loses at
	// most the in-flight transaction. Off by default (the OS flushes).
	Sync bool
}

// Open opens (creating if needed) the log at path for appending.
func Open(path string, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	return &Log{f: f, sync: opts.Sync}, nil
}

// Append writes one transaction record to the log.
func (l *Log) Append(r Record) error {
	if l.closed {
		return ErrClosed
	}
	payload := EncodeRecord(r)
	frame := make([]byte, frameHeader+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeader:], payload)
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	mRecords.Inc()
	mBytes.Add(uint64(len(frame)))
	if l.sync {
		start := time.Now()
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
		mFsync.ObserveSince(start)
	}
	return nil
}

// Truncate discards the log's contents, restarting it empty. Used after a
// checkpoint has made the logged history redundant.
func (l *Log) Truncate() error {
	if l.closed {
		return ErrClosed
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: truncate seek: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: truncate sync: %w", err)
	}
	return nil
}

// Close flushes and closes the log file.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: sync on close: %w", err)
	}
	return l.f.Close()
}

// ReplayResult summarizes a recovery pass.
type ReplayResult struct {
	// Records is the number of complete transactions replayed.
	Records int
	// Truncated reports whether a torn or corrupt tail was found (and, if
	// repair was requested, removed).
	Truncated bool
	// GoodBytes is the offset of the end of the last complete record.
	GoodBytes int64
}

// Replay reads the log at path from the beginning, calling fn for every
// complete, checksum-valid record in order. When repair is true, a torn or
// corrupt tail is truncated away so subsequent appends start clean.
// A missing file replays zero records.
func Replay(path string, repair bool, fn func(Record) error) (ReplayResult, error) {
	var res ReplayResult
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return res, nil
		}
		return res, fmt.Errorf("wal: replay read: %w", err)
	}
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			break
		}
		if len(rest) < frameHeader {
			res.Truncated = true
			break
		}
		n := int64(binary.BigEndian.Uint32(rest[0:4]))
		sum := binary.BigEndian.Uint32(rest[4:8])
		if int64(len(rest)) < frameHeader+n {
			res.Truncated = true
			break
		}
		payload := rest[frameHeader : frameHeader+n]
		if crc32.Checksum(payload, crcTable) != sum {
			res.Truncated = true
			break
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			// The frame checksummed correctly but the payload is not a
			// record we understand: stop, treating it as corruption.
			res.Truncated = true
			break
		}
		if err := fn(rec); err != nil {
			return res, fmt.Errorf("wal: replaying record %d: %w", res.Records, err)
		}
		res.Records++
		off += frameHeader + n
	}
	res.GoodBytes = off
	if res.Truncated && repair {
		if err := os.Truncate(path, off); err != nil {
			return res, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	return res, nil
}
