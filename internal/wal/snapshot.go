package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"time"

	"tdb/internal/core"
	"tdb/internal/schema"
	"tdb/internal/segment"
	"tdb/internal/tuple"
	"tdb/internal/vfs"
	"tdb/temporal"
)

// Snapshot is a checkpoint of a whole database: every relation with every
// stored version (including superseded ones — append-only history must
// survive checkpointing). Epoch is the checkpoint era this snapshot began:
// writing a snapshot with Epoch E covers the first Records records of the
// era-(E-1) log, and the log truncated after installing it carries E in
// its header. Recovery compares the two epochs to prove a snapshot and a
// log belong together before combining them — the guard that makes the
// previous-snapshot fallback safe.
type Snapshot struct {
	LastCommit temporal.Chronon
	Epoch      uint64
	Records    int
	Relations  []RelationSnapshot
}

// RelationSnapshot is one relation's definition and contents. WriteVersion
// carries the relation's mutation counter across checkpoint + restore, so a
// query cache keyed by write versions is never served stale after recovery
// (the restored counter resumes where the live one stopped instead of
// restarting from zero).
//
// Append-only relations split their contents in two: Segments holds the
// sealed columnar segments (encoded as blocks, positions preceding every
// tail version), and Versions holds only the unsealed tail. Relations
// without segments — static, historical, or append-only stores that never
// reached the seal threshold — put everything in Versions, exactly as the
// v2 format did.
type RelationSnapshot struct {
	Name         string
	Kind         core.Kind
	Event        bool
	Schema       *schema.Schema
	WriteVersion uint64
	Segments     []*segment.Segment
	Versions     []core.Version
	// Stats is the relation's temporal-statistics section (v4), an opaque
	// blob in the internal/stats canonical encoding. Empty when restoring a
	// pre-v4 snapshot; the database then rebuilds statistics from Versions.
	Stats []byte
}

// Snapshot magics. v2 is the legacy row-wise layout; v3 inserts a columnar
// segment-block section per relation between WriteVersion and the version
// list; v4 appends a statistics blob per relation after the version list.
// New snapshots are always written v4; decode accepts all three, so
// upgrades (and followers receiving a primary's raw snapshot bytes) work
// without a migration step.
var (
	snapMagic  = []byte("TDBSNAP2")
	snapMagic3 = []byte("TDBSNAP3")
	snapMagic4 = []byte("TDBSNAP4")
)

// ErrSnapshotCorrupt reports a snapshot failing its checksum or structure.
var ErrSnapshotCorrupt = errors.New("wal: snapshot corrupt")

// EncodeSnapshot serializes a snapshot (magic + payload + CRC trailer).
func EncodeSnapshot(s Snapshot) []byte {
	payload := appendChronon(nil, s.LastCommit)
	payload = binary.AppendUvarint(payload, s.Epoch)
	payload = binary.AppendUvarint(payload, uint64(s.Records))
	payload = binary.AppendUvarint(payload, uint64(len(s.Relations)))
	for _, r := range s.Relations {
		payload = appendString(payload, r.Name)
		payload = append(payload, byte(r.Kind))
		if r.Event {
			payload = append(payload, 1)
		} else {
			payload = append(payload, 0)
		}
		payload = appendSchema(payload, r.Schema)
		payload = binary.AppendUvarint(payload, r.WriteVersion)
		payload = binary.AppendUvarint(payload, uint64(len(r.Segments)))
		for _, g := range r.Segments {
			block := segment.AppendBlock(nil, g)
			payload = binary.AppendUvarint(payload, uint64(len(block)))
			payload = append(payload, block...)
		}
		payload = binary.AppendUvarint(payload, uint64(len(r.Versions)))
		for _, v := range r.Versions {
			payload = v.Data.AppendBinary(payload)
			payload = appendInterval(payload, v.Valid)
			payload = appendInterval(payload, v.Trans)
		}
		payload = binary.AppendUvarint(payload, uint64(len(r.Stats)))
		payload = append(payload, r.Stats...)
	}
	out := make([]byte, 0, len(snapMagic4)+len(payload)+4)
	out = append(out, snapMagic4...)
	out = append(out, payload...)
	// v3+ checksums the magic too: the magics differ in a single bit, so
	// a payload-only CRC would let one flipped bit silently reinterpret the
	// whole layout under another format.
	return binary.BigEndian.AppendUint32(out, crc32.Checksum(out, crcTable))
}

// DecodeSnapshot parses an encoded snapshot, verifying magic and CRC.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if len(data) < len(snapMagic)+4 {
		return s, fmt.Errorf("%w: short file", ErrSnapshotCorrupt)
	}
	var v3, v4 bool
	switch string(data[:len(snapMagic)]) {
	case string(snapMagic):
	case string(snapMagic3):
		v3 = true
	case string(snapMagic4):
		v3, v4 = true, true
	default:
		return s, fmt.Errorf("%w: bad magic", ErrSnapshotCorrupt)
	}
	payload := data[len(snapMagic) : len(data)-4]
	sum := binary.BigEndian.Uint32(data[len(data)-4:])
	crcInput := payload // v2 covered the payload only
	if v3 {
		crcInput = data[:len(data)-4]
	}
	if crc32.Checksum(crcInput, crcTable) != sum {
		return s, fmt.Errorf("%w: checksum mismatch", ErrSnapshotCorrupt)
	}
	last, off, err := decodeChronon(payload)
	if err != nil {
		return s, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	s.LastCommit = last
	epoch, n := binary.Uvarint(payload[off:])
	if n <= 0 {
		return s, fmt.Errorf("%w: epoch", ErrSnapshotCorrupt)
	}
	off += n
	s.Epoch = epoch
	records, n := binary.Uvarint(payload[off:])
	if n <= 0 {
		return s, fmt.Errorf("%w: record count", ErrSnapshotCorrupt)
	}
	off += n
	s.Records = int(records)
	nRels, n := binary.Uvarint(payload[off:])
	if n <= 0 {
		return s, fmt.Errorf("%w: relation count", ErrSnapshotCorrupt)
	}
	off += n
	for i := uint64(0); i < nRels; i++ {
		var r RelationSnapshot
		name, n, err := decodeString(payload[off:])
		if err != nil {
			return s, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
		}
		r.Name = name
		off += n
		if off+2 > len(payload) {
			return s, fmt.Errorf("%w: short relation header", ErrSnapshotCorrupt)
		}
		r.Kind = core.Kind(payload[off])
		r.Event = payload[off+1] == 1
		off += 2
		sch, n, err := decodeSchema(payload[off:])
		if err != nil {
			return s, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
		}
		r.Schema = sch
		off += n
		wv, n := binary.Uvarint(payload[off:])
		if n <= 0 {
			return s, fmt.Errorf("%w: write version", ErrSnapshotCorrupt)
		}
		off += n
		r.WriteVersion = wv
		if v3 {
			nSegs, n := binary.Uvarint(payload[off:])
			if n <= 0 {
				return s, fmt.Errorf("%w: segment count", ErrSnapshotCorrupt)
			}
			off += n
			for j := uint64(0); j < nSegs; j++ {
				blen, n := binary.Uvarint(payload[off:])
				if n <= 0 {
					return s, fmt.Errorf("%w: segment block length", ErrSnapshotCorrupt)
				}
				off += n
				if blen > uint64(len(payload)-off) {
					return s, fmt.Errorf("%w: segment block truncated", ErrSnapshotCorrupt)
				}
				g, used, err := segment.DecodeBlock(payload[off:off+int(blen)], r.Schema)
				if err != nil {
					return s, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
				}
				if used != int(blen) {
					return s, fmt.Errorf("%w: segment block has %d trailing bytes", ErrSnapshotCorrupt, int(blen)-used)
				}
				off += int(blen)
				r.Segments = append(r.Segments, g)
			}
		}
		nVers, n := binary.Uvarint(payload[off:])
		if n <= 0 {
			return s, fmt.Errorf("%w: version count", ErrSnapshotCorrupt)
		}
		off += n
		r.Versions = make([]core.Version, 0, nVers)
		for j := uint64(0); j < nVers; j++ {
			var v core.Version
			tup, n, err := decodeTupleRaw(payload[off:])
			if err != nil {
				return s, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
			}
			v.Data = tup
			off += n
			if v.Valid, n, err = decodeInterval(payload[off:]); err != nil {
				return s, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
			}
			off += n
			if v.Trans, n, err = decodeInterval(payload[off:]); err != nil {
				return s, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
			}
			off += n
			r.Versions = append(r.Versions, v)
		}
		if v4 {
			slen, n := binary.Uvarint(payload[off:])
			if n <= 0 {
				return s, fmt.Errorf("%w: stats length", ErrSnapshotCorrupt)
			}
			off += n
			if slen > uint64(len(payload)-off) {
				return s, fmt.Errorf("%w: stats truncated", ErrSnapshotCorrupt)
			}
			if slen > 0 {
				r.Stats = append([]byte(nil), payload[off:off+int(slen)]...)
				off += int(slen)
			}
		}
		s.Relations = append(s.Relations, r)
	}
	if off != len(payload) {
		return s, fmt.Errorf("%w: %d trailing bytes", ErrSnapshotCorrupt, len(payload)-off)
	}
	return s, nil
}

// WriteSnapshot atomically installs the snapshot at path: a temp file in
// the same directory, fsynced, renamed over the destination, then the
// directory fsynced so the rename itself is durable. A crash at any point
// leaves either the old file or the new one — never a torn mixture.
func WriteSnapshot(fsys vfs.FS, path string, s Snapshot) error {
	if fsys == nil {
		fsys = vfs.Default()
	}
	start := time.Now()
	data := EncodeSnapshot(s)
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("wal: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("wal: snapshot close: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	if err := fsys.SyncDir(path); err != nil {
		return fmt.Errorf("wal: snapshot dir sync: %w", err)
	}
	mSnapshot.ObserveSince(start)
	mSnapshotBytes.Add(uint64(len(data)))
	return nil
}

// ReadSnapshot loads a snapshot; a missing file returns ok=false with no
// error, and a corrupt file returns ErrSnapshotCorrupt (recovery then
// decides whether the previous snapshot can stand in).
func ReadSnapshot(fsys vfs.FS, path string) (Snapshot, bool, error) {
	if fsys == nil {
		fsys = vfs.Default()
	}
	data, err := fsys.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return Snapshot{}, false, nil
		}
		return Snapshot{}, false, fmt.Errorf("wal: snapshot read: %w", err)
	}
	s, err := DecodeSnapshot(data)
	if err != nil {
		return Snapshot{}, false, err
	}
	return s, true, nil
}

// decodeTupleRaw decodes a tuple without the presence byte used by op
// encoding (snapshot versions always have data).
func decodeTupleRaw(src []byte) (tuple.Tuple, int, error) {
	return tuple.DecodeBinary(src)
}
