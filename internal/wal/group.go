package wal

import (
	"runtime"
	"sync"
	"time"

	"tdb/internal/config"
)

// Group commit. Every committed transaction must reach the log, and with
// Sync on, the fsync dominates commit latency. Instead of each committer
// paying for its own fsync, committers enqueue their encoded records with a
// dedicated leader goroutine, which drains the queue and lands the whole
// batch as one file write and one fsync (Log.AppendPayloads). Under
// concurrency the batch grows naturally: while the leader is inside an
// fsync, every committer that arrives queues up behind it and is flushed
// together the moment the fsync returns — no timer needed. MaxWait can
// widen the window further for workloads that trickle in, trading commit
// latency for larger batches.
//
// Error delivery is per batch: AppendPayloads rolls a failed batch back to
// the pre-batch file size, so exactly the committers whose records it
// covered see the error, everything flushed before stays durable, and the
// next batch starts from a clean tail.

// DefaultGroupMaxBatch caps how many records one flush coalesces when
// neither GroupOptions.MaxBatch nor TDB_GROUP_COMMIT_BATCH chooses a cap.
const DefaultGroupMaxBatch = 512

// Environment knobs for group commit, read when the corresponding
// GroupOptions field is zero. They alias the config registry's names so
// existing callers keep compiling.
var (
	// EnvGroupCommitWait names the coalescing-window duration knob
	// (time.ParseDuration syntax, e.g. "2ms").
	EnvGroupCommitWait = config.EnvGroupCommitWait
	// EnvGroupCommitBatch names the per-flush record cap knob.
	EnvGroupCommitBatch = config.EnvGroupCommitBatch
)

// GroupOptions configure a GroupCommitter.
type GroupOptions struct {
	// MaxBatch caps the records coalesced per flush. Zero defers to
	// TDB_GROUP_COMMIT_BATCH and then DefaultGroupMaxBatch; 1 degenerates to
	// one write+fsync per transaction (the per-txn-commit baseline).
	MaxBatch int
	// MaxWait is how long the leader lingers after the first record of a
	// batch arrives, hoping more committers show up. Zero (the default)
	// defers to TDB_GROUP_COMMIT_WAIT and then flushes immediately —
	// batching still emerges from commits that arrive during the previous
	// flush's fsync, which costs idle workloads nothing.
	MaxWait time.Duration
	// Notify, when non-nil, runs after every successful flush — the hook
	// the database uses to wake replication streams without the leader
	// needing any database lock.
	Notify func()
}

// Pending is one enqueued commit's claim ticket. Wait blocks until the
// leader has flushed (or failed) the batch covering it.
type Pending struct {
	done chan error
}

// Wait blocks until the record is durably logged, returning the batch's
// error if its flush failed.
func (p *Pending) Wait() error { return <-p.done }

type pendingRec struct {
	payload []byte // nil for a Flush barrier
	done    chan error
}

// GroupCommitter coalesces concurrent commits onto shared WAL flushes. It
// owns all appends to its Log: callers enqueue, the leader goroutine
// writes.
type GroupCommitter struct {
	log      *Log
	maxBatch int
	maxWait  time.Duration
	notify   func()

	mu     sync.Mutex
	queue  []pendingRec
	closed bool

	wake chan struct{} // cap 1: the leader's doorbell
	done chan struct{} // closed when the leader exits
}

// NewGroupCommitter starts a leader goroutine flushing l. Zero option
// fields fall back to the TDB_GROUP_COMMIT_* environment knobs, then to
// defaults.
func NewGroupCommitter(l *Log, opts GroupOptions) *GroupCommitter {
	if opts.MaxBatch == 0 {
		opts.MaxBatch = config.PosInt(config.EnvGroupCommitBatch, 0)
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = DefaultGroupMaxBatch
	}
	if opts.MaxWait == 0 {
		opts.MaxWait = config.PosDuration(config.EnvGroupCommitWait, 0)
	}
	g := &GroupCommitter{
		log:      l,
		maxBatch: opts.MaxBatch,
		maxWait:  opts.MaxWait,
		notify:   opts.Notify,
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	go g.run()
	return g
}

// Enqueue hands one record to the leader and returns immediately. The
// caller may keep holding whatever lock serialized the commit order —
// queue order is flush order — and Wait for durability after releasing it,
// which is what lets independent committers share a flush at all.
func (g *GroupCommitter) Enqueue(rec Record) *Pending {
	return g.enqueue(EncodeRecord(rec))
}

// Commit is Enqueue followed by Wait: one durably logged record.
func (g *GroupCommitter) Commit(rec Record) error {
	return g.Enqueue(rec).Wait()
}

func (g *GroupCommitter) enqueue(payload []byte) *Pending {
	p := &Pending{done: make(chan error, 1)}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		p.done <- ErrClosed
		return p
	}
	g.queue = append(g.queue, pendingRec{payload: payload, done: p.done})
	g.mu.Unlock()
	select {
	case g.wake <- struct{}{}:
	default:
	}
	return p
}

// Flush blocks until everything enqueued before it has been flushed,
// returning the error (if any) of the batch that carried the barrier. The
// database's checkpoint calls it while holding the lock that gates new
// enqueues, so afterwards Log.Records is exact.
func (g *GroupCommitter) Flush() error {
	return g.enqueue(nil).Wait()
}

// Close drains the queue, flushes it, and stops the leader. Further
// enqueues fail with ErrClosed. It does not close the underlying Log,
// which the committer does not own.
func (g *GroupCommitter) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		<-g.done
		return nil
	}
	g.closed = true
	g.mu.Unlock()
	select {
	case g.wake <- struct{}{}:
	default:
	}
	<-g.done
	return nil
}

// run is the leader loop: wait for work, optionally linger to coalesce,
// pop a bounded prefix of the queue, flush it as one append, deliver the
// shared result to every committer it covered.
func (g *GroupCommitter) run() {
	defer close(g.done)
	for {
		g.mu.Lock()
		n, closed := len(g.queue), g.closed
		g.mu.Unlock()
		if n == 0 {
			if closed {
				return
			}
			<-g.wake
			continue
		}
		switch {
		case g.maxWait > 0 && n < g.maxBatch && !closed:
			timer := time.NewTimer(g.maxWait)
		linger:
			for {
				select {
				case <-g.wake:
					g.mu.Lock()
					n, closed = len(g.queue), g.closed
					g.mu.Unlock()
					if n >= g.maxBatch || closed {
						break linger
					}
				case <-timer.C:
					break linger
				}
			}
			timer.Stop()
		case n < g.maxBatch && !closed:
			// No wait window armed: linger opportunistically instead. Each
			// yield lets runnable committers finish the enqueue they are
			// already inside, growing the batch at scheduler-switch cost —
			// microseconds, where even the shortest timer sleep costs
			// milliseconds. The loop stops the moment a yield adds nothing,
			// so a lone committer (blocked in Wait until this very flush)
			// still gets its record flushed alone, immediately: sequential
			// workloads produce byte-for-byte the logs they always did.
			for yields := 0; yields < 8; yields++ {
				runtime.Gosched()
				g.mu.Lock()
				grown, closed := len(g.queue), g.closed
				g.mu.Unlock()
				if grown == n || grown >= g.maxBatch || closed {
					break
				}
				n = grown
			}
		}
		g.flushPrefix()
	}
}

// flushPrefix pops up to maxBatch queued records, appends them as one
// batch, and delivers the result.
func (g *GroupCommitter) flushPrefix() {
	g.mu.Lock()
	n := len(g.queue)
	if n > g.maxBatch {
		n = g.maxBatch
	}
	batch := make([]pendingRec, n)
	copy(batch, g.queue[:n])
	rest := len(g.queue) - n
	copy(g.queue, g.queue[n:])
	for i := rest; i < len(g.queue); i++ {
		g.queue[i] = pendingRec{}
	}
	g.queue = g.queue[:rest]
	g.mu.Unlock()
	if n == 0 {
		return
	}
	payloads := make([][]byte, 0, n)
	for _, p := range batch {
		if p.payload != nil {
			payloads = append(payloads, p.payload)
		}
	}
	var err error
	if len(payloads) > 0 {
		err = g.log.AppendPayloads(payloads)
		mGroupBatch.Observe(float64(len(payloads)))
	}
	for _, p := range batch {
		p.done <- err
	}
	if err == nil && len(payloads) > 0 && g.notify != nil {
		g.notify()
	}
}
