// Package figures regenerates every figure of the paper from the running
// system: the example relations (Figures 2-9) are produced by replaying the
// paper's dated transactions through the public API and TQuel, and the
// classification tables (Figures 1, 10-13) come from the taxonomy package,
// with Figures 10-12 derived by probing the live stores. cmd/figures prints
// them; the benchmark harness times their regeneration.
package figures

import (
	"fmt"
	"sort"
	"strings"

	"tdb"
	"tdb/internal/pretty"
	"tdb/taxonomy"
	"tdb/temporal"
	"tdb/tquel"
)

// Paper dates.
var (
	d770825 = temporal.Date(1977, 8, 25)
	d770901 = temporal.Date(1977, 9, 1)
	d821201 = temporal.Date(1982, 12, 1)
	d821205 = temporal.Date(1982, 12, 5)
	d821207 = temporal.Date(1982, 12, 7)
	d821211 = temporal.Date(1982, 12, 11)
	d821215 = temporal.Date(1982, 12, 15)
	d830101 = temporal.Date(1983, 1, 1)
	d830110 = temporal.Date(1983, 1, 10)
	d840225 = temporal.Date(1984, 2, 25)
	d840301 = temporal.Date(1984, 3, 1)
)

func facultySchema() (*tdb.Schema, error) {
	s, err := tdb.NewSchema(tdb.Attr("name", tdb.StringKind), tdb.Attr("rank", tdb.StringKind))
	if err != nil {
		return nil, err
	}
	return s.WithKey("name")
}

func promotionSchema() (*tdb.Schema, error) {
	s, err := tdb.NewSchema(
		tdb.Attr("name", tdb.StringKind),
		tdb.Attr("rank", tdb.StringKind),
		tdb.Attr("effective", tdb.InstantKind),
	)
	if err != nil {
		return nil, err
	}
	return s.WithKey("name")
}

func fac(name, rank string) tdb.Tuple { return tdb.NewTuple(tdb.String(name), tdb.String(rank)) }

// PaperDB builds an in-memory database holding every relation the figures
// need, loaded by replaying the paper's dated transactions:
//
//   - faculty_static   (Figure 2)
//   - faculty_rollback (Figures 3, 4)
//   - faculty_hist     (Figures 5, 6)
//   - faculty          (Figures 7, 8; temporal)
//   - promotion        (Figure 9; temporal event, user-defined time)
func PaperDB() (*tdb.DB, error) {
	db, err := tdb.Open("", tdb.Options{Clock: temporal.NewLogicalClock(temporal.Date(1985, 3, 1))})
	if err != nil {
		return nil, err
	}
	fs, err := facultySchema()
	if err != nil {
		return nil, err
	}
	ps, err := promotionSchema()
	if err != nil {
		return nil, err
	}
	for _, c := range []struct {
		name  string
		kind  tdb.Kind
		event bool
		sch   *tdb.Schema
	}{
		{"faculty_static", tdb.Static, false, fs},
		{"faculty_rollback", tdb.StaticRollback, false, fs},
		{"faculty_hist", tdb.Historical, false, fs},
		{"faculty", tdb.Temporal, false, fs},
		{"promotion", tdb.Temporal, true, ps},
	} {
		if c.event {
			_, err = db.CreateEventRelation(c.name, c.kind, c.sch)
		} else {
			_, err = db.CreateRelation(c.name, c.kind, c.sch)
		}
		if err != nil {
			return nil, err
		}
	}

	// The rollback and temporal relations, replayed at the paper's dates.
	type step struct {
		at temporal.Chronon
		fn func(tx *tdb.Tx) error
	}
	steps := []step{
		{d770825, func(tx *tdb.Tx) error {
			rb, _ := tx.Rel("faculty_rollback")
			if err := rb.Insert(fac("Merrie", "associate")); err != nil {
				return err
			}
			f, _ := tx.Rel("faculty")
			if err := f.Assert(fac("Merrie", "associate"), d770901, temporal.Forever); err != nil {
				return err
			}
			p, _ := tx.Rel("promotion")
			return p.AssertAt(tdb.NewTuple(tdb.String("Merrie"), tdb.String("associate"), tdb.Instant(d770901)), d770825)
		}},
		{d821201, func(tx *tdb.Tx) error {
			f, _ := tx.Rel("faculty")
			if err := f.Assert(fac("Tom", "full"), d821205, temporal.Forever); err != nil {
				return err
			}
			p, _ := tx.Rel("promotion")
			return p.AssertAt(tdb.NewTuple(tdb.String("Tom"), tdb.String("full"), tdb.Instant(d821205)), d821205)
		}},
		{d821207, func(tx *tdb.Tx) error {
			rb, _ := tx.Rel("faculty_rollback")
			if err := rb.Insert(fac("Tom", "associate")); err != nil {
				return err
			}
			f, _ := tx.Rel("faculty")
			if err := f.Assert(fac("Tom", "associate"), d821205, temporal.Forever); err != nil {
				return err
			}
			p, _ := tx.Rel("promotion")
			if err := p.RetractAt(tdb.Key(tdb.String("Tom")), d821205); err != nil {
				return err
			}
			return p.AssertAt(tdb.NewTuple(tdb.String("Tom"), tdb.String("associate"), tdb.Instant(d821205)), d821207)
		}},
		{d821215, func(tx *tdb.Tx) error {
			rb, _ := tx.Rel("faculty_rollback")
			if err := rb.Replace(tdb.Key(tdb.String("Merrie")), fac("Merrie", "full")); err != nil {
				return err
			}
			f, _ := tx.Rel("faculty")
			if err := f.Assert(fac("Merrie", "full"), d821201, temporal.Forever); err != nil {
				return err
			}
			p, _ := tx.Rel("promotion")
			return p.AssertAt(tdb.NewTuple(tdb.String("Merrie"), tdb.String("full"), tdb.Instant(d821201)), d821211)
		}},
		{d830110, func(tx *tdb.Tx) error {
			rb, _ := tx.Rel("faculty_rollback")
			if err := rb.Insert(fac("Mike", "assistant")); err != nil {
				return err
			}
			f, _ := tx.Rel("faculty")
			if err := f.Assert(fac("Mike", "assistant"), d830101, temporal.Forever); err != nil {
				return err
			}
			p, _ := tx.Rel("promotion")
			return p.AssertAt(tdb.NewTuple(tdb.String("Mike"), tdb.String("assistant"), tdb.Instant(d830101)), d830101)
		}},
		{d840225, func(tx *tdb.Tx) error {
			rb, _ := tx.Rel("faculty_rollback")
			if err := rb.Delete(tdb.Key(tdb.String("Mike"))); err != nil {
				return err
			}
			f, _ := tx.Rel("faculty")
			if err := f.Retract(tdb.Key(tdb.String("Mike")), d840301, temporal.Forever); err != nil {
				return err
			}
			p, _ := tx.Rel("promotion")
			return p.AssertAt(tdb.NewTuple(tdb.String("Mike"), tdb.String("left"), tdb.Instant(d840301)), d840225)
		}},
	}
	for _, s := range steps {
		if err := db.UpdateAt(s.at, s.fn); err != nil {
			return nil, fmt.Errorf("figures: at %v: %w", s.at, err)
		}
	}

	// The static and historical relations are loaded after the dated
	// replay: their mutations consume present-day commit chronons, which
	// must not precede the paper's dated transactions.
	// The static relation of Figure 2 (the current state only).
	st, _ := db.Relation("faculty_static")
	if err := st.Insert(fac("Merrie", "full")); err != nil {
		return nil, err
	}
	if err := st.Insert(fac("Tom", "associate")); err != nil {
		return nil, err
	}

	// The historical relation of Figure 6: the current best knowledge,
	// including the corrected error (Tom was never full).
	hist, _ := db.Relation("faculty_hist")
	histOps := []func() error{
		func() error { return hist.Assert(fac("Merrie", "associate"), d770901, temporal.Forever) },
		func() error { return hist.Assert(fac("Tom", "full"), d821205, temporal.Forever) },
		func() error { return hist.Assert(fac("Tom", "associate"), d821205, temporal.Forever) },
		func() error { return hist.Assert(fac("Merrie", "full"), d821201, temporal.Forever) },
		func() error { return hist.Assert(fac("Mike", "assistant"), d830101, temporal.Forever) },
		func() error { return hist.Retract(tdb.Key(tdb.String("Mike")), d840301, temporal.Forever) },
	}
	for _, op := range histOps {
		if err := op(); err != nil {
			return nil, err
		}
	}

	return db, nil
}

// renderVersions renders a relation's stored versions in the paper's
// tuple-timestamped figure style.
func renderVersions(title string, rel *tdb.Relation, showValid, showTrans bool) string {
	vs := rel.Versions()
	sort.Slice(vs, func(i, j int) bool {
		a, b := vs[i], vs[j]
		if an, bn := a.Data[0].String(), b.Data[0].String(); an != bn {
			return an < bn
		}
		if a.Trans.From != b.Trans.From {
			return a.Trans.From < b.Trans.From
		}
		return a.Valid.From < b.Valid.From
	})
	sch := rel.Schema()
	headers := make([]string, 0, sch.Arity()+4)
	for i := 0; i < sch.Arity(); i++ {
		headers = append(headers, sch.Attr(i).Name)
	}
	split := len(headers)
	event := rel.Event()
	if showValid {
		if event {
			headers = append(headers, "valid (at)")
		} else {
			headers = append(headers, "valid (from)", "valid (to)")
		}
	}
	if showTrans {
		headers = append(headers, "trans (start)", "trans (end)")
	}
	tbl := pretty.Table{Title: title, Headers: headers, Split: split}
	for _, v := range vs {
		row := make([]string, 0, len(headers))
		for _, val := range v.Data {
			row = append(row, val.String())
		}
		if showValid {
			if event {
				row = append(row, v.Valid.From.String())
			} else {
				row = append(row, v.Valid.From.String(), v.Valid.To.String())
			}
		}
		if showTrans {
			row = append(row, v.Trans.From.String(), v.Trans.To.String())
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl.String()
}

func query(db *tdb.DB, setup, q string) (string, error) {
	ses := tquel.NewSession(db)
	res, err := ses.Query(setup + "\n" + q)
	if err != nil {
		return "", err
	}
	return res.String(), nil
}

// Figure2 reproduces the static relation and its Quel query.
func Figure2(db *tdb.DB) (string, error) {
	rel, err := db.Relation("faculty_static")
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(renderVersions("Figure 2 : A Static Relation", rel, false, false))
	b.WriteString("\nQuel query: retrieve (f.rank) where f.name = \"Merrie\"\n")
	out, err := query(db, `range of f is faculty_static`, `retrieve (f.rank) where f.name = "Merrie"`)
	if err != nil {
		return "", err
	}
	b.WriteString(out)
	return b.String(), nil
}

// Figure3 reproduces the conceptual view of a static rollback relation as
// a sequence of static states indexed by transaction time.
func Figure3(db *tdb.DB) (string, error) {
	rel, err := db.Relation("faculty_rollback")
	if err != nil {
		return "", err
	}
	rb, err := relRollbackCommits(rel)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 3 : A Static Rollback Relation (sequence of static states)\n")
	for _, at := range rb {
		res, err := rel.Query().AsOf(at).Run()
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "\nstate as of %v:\n%s", at, res.String())
	}
	return b.String(), nil
}

// relRollbackCommits lists the distinct transaction chronons recorded in a
// rollback or temporal relation.
func relRollbackCommits(rel *tdb.Relation) ([]temporal.Chronon, error) {
	seen := map[temporal.Chronon]bool{}
	var out []temporal.Chronon
	for _, v := range rel.Versions() {
		for _, c := range []temporal.Chronon{v.Trans.From, v.Trans.To} {
			if c.IsFinite() && !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Figure4 reproduces the tuple-timestamped rollback relation and the TQuel
// rollback query (answer: associate).
func Figure4(db *tdb.DB) (string, error) {
	rel, err := db.Relation("faculty_rollback")
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(renderVersions("Figure 4 : A Static Rollback Relation", rel, false, true))
	b.WriteString("\nTQuel query: retrieve (f.rank) where f.name = \"Merrie\" as of \"12/10/82\"\n")
	out, err := query(db, `range of f is faculty_rollback`,
		`retrieve (f.rank) where f.name = "Merrie" as of "12/10/82"`)
	if err != nil {
		return "", err
	}
	b.WriteString(out)
	return b.String(), nil
}

// Figure5 reproduces the historical relation's conceptual view: the single
// current historical state (contrast Figure 3's retained sequence).
func Figure5(db *tdb.DB) (string, error) {
	rel, err := db.Relation("faculty_hist")
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 5 : An Historical Relation (current knowledge of history; ")
	b.WriteString("the erroneous tuple was removed without trace)\n")
	b.WriteString(renderVersions("", rel, true, false))
	return b.String(), nil
}

// Figure6 reproduces the valid-time-stamped historical relation and the
// TQuel historical query (answer: full, [12/01/82, ∞)).
func Figure6(db *tdb.DB) (string, error) {
	rel, err := db.Relation("faculty_hist")
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(renderVersions("Figure 6 : A Historical Relation", rel, true, false))
	b.WriteString("\nTQuel query: retrieve (f1.rank) where f1.name = \"Merrie\" and f2.name = \"Tom\"\n")
	b.WriteString("            when f1 overlap start of f2\n")
	out, err := query(db, "range of f1 is faculty_hist\nrange of f2 is faculty_hist",
		`retrieve (f1.rank) where f1.name = "Merrie" and f2.name = "Tom" when f1 overlap start of f2`)
	if err != nil {
		return "", err
	}
	b.WriteString(out)
	return b.String(), nil
}

// Figure7 reproduces the temporal relation's conceptual view: a sequence of
// historical states, one per transaction.
func Figure7(db *tdb.DB) (string, error) {
	rel, err := db.Relation("faculty")
	if err != nil {
		return "", err
	}
	commits, err := relRollbackCommits(rel)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Figure 7 : A Temporal Relation (sequence of historical states)\n")
	for _, at := range commits {
		res, err := rel.Query().AsOf(at).Run()
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "\nhistorical state as of %v:\n%s", at, res.String())
	}
	return b.String(), nil
}

// Figure8 reproduces the bitemporal relation and the §4.4 query at both
// rollback instants (associate, then full).
func Figure8(db *tdb.DB) (string, error) {
	rel, err := db.Relation("faculty")
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(renderVersions("Figure 8 : A Temporal Relation", rel, true, true))
	const q = `retrieve (f1.rank) where f1.name = "Merrie" and f2.name = "Tom" when f1 overlap start of f2 as of %s`
	for _, date := range []string{`"12/10/82"`, `"12/20/82"`} {
		fmt.Fprintf(&b, "\nTQuel query: ... when f1 overlap start of f2 as of %s\n", date)
		out, err := query(db, "range of f1 is faculty\nrange of f2 is faculty",
			strings.Replace(q, "%s", date, 1))
		if err != nil {
			return "", err
		}
		b.WriteString(out)
	}
	return b.String(), nil
}

// Figure9 reproduces the temporal event relation with its user-defined
// effective-date attribute.
func Figure9(db *tdb.DB) (string, error) {
	rel, err := db.Relation("promotion")
	if err != nil {
		return "", err
	}
	return renderVersions("Figure 9 : A Temporal Event Relation", rel, true, true), nil
}

// Taxonomy figures.

// Figure1 renders the prior-literature survey.
func Figure1() string { return taxonomy.RenderFigure1() }

// Figures10to12 renders the classification tables from live-probed
// capabilities.
func Figures10to12() (string, error) {
	var caps []taxonomy.Capabilities
	for _, k := range taxonomy.AllKinds {
		c, err := taxonomy.Probe(k)
		if err != nil {
			return "", err
		}
		caps = append(caps, c)
	}
	var b strings.Builder
	b.WriteString(taxonomy.RenderFigure10(caps))
	b.WriteString("\n")
	b.WriteString(taxonomy.RenderFigure11(caps))
	b.WriteString("\n")
	b.WriteString(taxonomy.RenderFigure12())
	return b.String(), nil
}

// Figure13 renders the systems survey.
func Figure13() string { return taxonomy.RenderFigure13() }

// All regenerates every figure in order.
func All() (string, error) {
	db, err := PaperDB()
	if err != nil {
		return "", err
	}
	defer db.Close()
	var b strings.Builder
	b.WriteString(Figure1())
	b.WriteString("\n")
	for _, fn := range []func(*tdb.DB) (string, error){
		Figure2, Figure3, Figure4, Figure5, Figure6, Figure7, Figure8, Figure9,
	} {
		out, err := fn(db)
		if err != nil {
			return "", err
		}
		b.WriteString(out)
		b.WriteString("\n")
	}
	t, err := Figures10to12()
	if err != nil {
		return "", err
	}
	b.WriteString(t)
	b.WriteString("\n")
	b.WriteString(Figure13())
	return b.String(), nil
}
