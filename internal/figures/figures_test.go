package figures

import (
	"os"
	"strings"
	"testing"
)

func TestAllFiguresRegenerate(t *testing.T) {
	out, err := All()
	if err != nil {
		t.Fatal(err)
	}
	// Every figure heading must be present.
	for _, want := range []string{
		"Figure 1 : Types of Time",
		"Figure 2 : A Static Relation",
		"Figure 3 : A Static Rollback Relation",
		"Figure 4 : A Static Rollback Relation",
		"Figure 5 : An Historical Relation",
		"Figure 6 : A Historical Relation",
		"Figure 7 : A Temporal Relation",
		"Figure 8 : A Temporal Relation",
		"Figure 9 : A Temporal Event Relation",
		"Figure 10 : Types of Databases",
		"Figure 11 : Attributes of the New Kinds of Databases",
		"Figure 12 : Attributes of the New Kinds of Time",
		"Figure 13 : Time Support in Existing or Proposed Systems",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// All thirteen figures must render byte-identically whether the stores
// sit on columnar segments (seal threshold forced to 2, so every figure
// relation seals) or on the flat row log (segments disabled). The figures
// read every store kind through every query path — snapshot, rollback,
// when, bitemporal — so agreement here is the end-to-end storage
// differential.
func TestFiguresSegmentsDifferential(t *testing.T) {
	base, err := All()
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv("TDB_DISABLE_SEGMENTS", "") // force segments on even in the ablation CI job
	t.Setenv("TDB_SEGMENT_ROWS", "2")
	sealed, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if sealed != base {
		t.Error("figures drift when relations seal into segments")
	}
	t.Setenv("TDB_DISABLE_SEGMENTS", "1")
	flat, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if flat != base {
		t.Error("figures drift with segments disabled")
	}
}

// The exact rows of the paper's central figures.
func TestFigure8RowsMatchPaper(t *testing.T) {
	db, err := PaperDB()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	out, err := Figure8(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"| Merrie | associate || 09/01/77     | ∞          | 08/25/77      | 12/15/82    |",
		"| Merrie | associate || 09/01/77     | 12/01/82   | 12/15/82      | ∞           |",
		"| Merrie | full      || 12/01/82     | ∞          | 12/15/82      | ∞           |",
		"| Tom    | full      || 12/05/82     | ∞          | 12/01/82      | 12/07/82    |",
		"| Tom    | associate || 12/05/82     | ∞          | 12/07/82      | ∞           |",
		"| Mike   | assistant || 01/01/83     | ∞          | 01/10/83      | 02/25/84    |",
		"| Mike   | assistant || 01/01/83     | 03/01/84   | 02/25/84      | ∞           |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 8 missing row %q\n%s", want, out)
		}
	}
	// Both query answers, in order: associate as of 12/10, full as of 12/20.
	i1 := strings.Index(out, `as of "12/10/82"`)
	i2 := strings.Index(out, `as of "12/20/82"`)
	if i1 < 0 || i2 < 0 || i1 > i2 {
		t.Fatalf("query sections missing:\n%s", out)
	}
	if !strings.Contains(out[i1:i2], "associate") {
		t.Error("as-of-12/10 answer is not associate")
	}
	if !strings.Contains(out[i2:], "full") {
		t.Error("as-of-12/20 answer is not full")
	}
}

func TestFigure4AnswerIsAssociate(t *testing.T) {
	db, err := PaperDB()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	out, err := Figure4(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"| Merrie | associate || 08/25/77      | 12/15/82    |",
		"| Merrie | full      || 12/15/82      | ∞           |",
		"| Mike   | assistant || 01/10/83      | 02/25/84    |",
		"| Tom    | associate || 12/07/82      | ∞           |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 4 missing row %q\n%s", want, out)
		}
	}
	// The answer: associate (not full).
	qi := strings.Index(out, "TQuel query")
	if !strings.Contains(out[qi:], "associate") {
		t.Errorf("rollback answer wrong:\n%s", out[qi:])
	}
}

func TestFigure6AnswerIsFull(t *testing.T) {
	db, err := PaperDB()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	out, err := Figure6(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"| Merrie | associate || 09/01/77     | 12/01/82   |",
		"| Merrie | full      || 12/01/82     | ∞          |",
		"| Mike   | assistant || 01/01/83     | 03/01/84   |",
		"| Tom    | associate || 12/05/82     | ∞          |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 6 missing row %q\n%s", want, out)
		}
	}
	qi := strings.Index(out, "TQuel query")
	if !strings.Contains(out[qi:], "| full") {
		t.Errorf("historical answer wrong:\n%s", out[qi:])
	}
	// No trace of the corrected error.
	if strings.Contains(out[:qi], "| Tom    | full") {
		t.Error("corrected error visible in historical relation")
	}
}

func TestFigure9UserDefinedTime(t *testing.T) {
	db, err := PaperDB()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	out, err := Figure9(db)
	if err != nil {
		t.Fatal(err)
	}
	// Merrie's retroactive promotion: three distinct times on one row —
	// effective (user-defined) 12/01/82, valid at 12/11/82, recorded
	// 12/15/82.
	if !strings.Contains(out, "| Merrie | full      | 12/01/82  || 12/11/82   | 12/15/82      | ∞           |") {
		t.Errorf("Figure 9 row with three distinct times missing:\n%s", out)
	}
	// Tom's superseded promotion survives with closed transaction time.
	if !strings.Contains(out, "| Tom    | full      | 12/05/82  || 12/05/82   | 12/01/82      | 12/07/82    |") {
		t.Errorf("Figure 9 superseded event missing:\n%s", out)
	}
}

func TestFigure3StateCount(t *testing.T) {
	db, err := PaperDB()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	out, err := Figure3(db)
	if err != nil {
		t.Fatal(err)
	}
	// Five transactions touch the rollback relation: Merrie's insertion,
	// Tom's, Merrie's promotion, Mike's insertion and Mike's deletion.
	if got := strings.Count(out, "state as of"); got != 5 {
		t.Errorf("Figure 3 shows %d states, want 5 (the rollback relation's transactions)\n%s", got, out)
	}
}

func TestFigure7HistoricalStates(t *testing.T) {
	db, err := PaperDB()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	out, err := Figure7(db)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out, "historical state as of"); got != 6 {
		t.Errorf("Figure 7 shows %d states, want 6\n%s", got, out)
	}
	// The first state already shows Merrie's postactive start date.
	first := out[strings.Index(out, "historical state as of 08/25/77"):]
	if !strings.Contains(first[:400], "09/01/77") {
		t.Errorf("postactive start date missing from first state:\n%s", first[:400])
	}
}

// The committed artifact docs/figures.txt must stay in sync with what the
// harness generates (regenerate with: go run ./cmd/figures > docs/figures.txt).
func TestCommittedFiguresArtifactCurrent(t *testing.T) {
	want, err := os.ReadFile("../../docs/figures.txt")
	if err != nil {
		t.Skipf("artifact not present: %v", err)
	}
	got, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Error("docs/figures.txt is stale; regenerate with: go run ./cmd/figures > docs/figures.txt")
	}
}
