// Package tuple implements the tuples stored in relations: flat slices of
// typed values validated against a schema, with key projection, hashing and
// a binary codec built from the value codec.
package tuple

import (
	"fmt"
	"hash/fnv"
	"strings"

	"tdb/internal/schema"
	"tdb/internal/value"
)

// Tuple is an ordered list of attribute values. Tuples are treated as
// immutable once handed to a store; Clone before mutating.
type Tuple []value.Value

// New builds a tuple from values.
func New(vals ...value.Value) Tuple { return Tuple(vals) }

// Validate checks the tuple against a schema: arity and per-attribute kind.
func (t Tuple) Validate(s *schema.Schema) error {
	if len(t) != s.Arity() {
		return fmt.Errorf("tuple: arity %d does not match schema arity %d", len(t), s.Arity())
	}
	for i, v := range t {
		if want := s.Attr(i).Type; v.Kind() != want {
			return fmt.Errorf("tuple: attribute %q: have %s, want %s", s.Attr(i).Name, v.Kind(), want)
		}
	}
	return nil
}

// Key projects the tuple onto the schema's key attributes; with no explicit
// key the whole tuple is the key.
func (t Tuple) Key(s *schema.Schema) Tuple {
	ks := s.KeyIndices()
	if len(ks) == 0 {
		return t
	}
	out := make(Tuple, len(ks))
	for i, k := range ks {
		out[i] = t[k]
	}
	return out
}

// Project returns the tuple restricted to the given attribute positions in
// the given order.
func (t Tuple) Project(indices []int) Tuple {
	out := make(Tuple, len(indices))
	for i, idx := range indices {
		out[i] = t[idx]
	}
	return out
}

// Concat returns the concatenation of two tuples (cartesian product rows).
func Concat(a, b Tuple) Tuple {
	out := make(Tuple, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// Equal reports whether two tuples agree value-for-value. This is the
// paper's "value-equivalence": tuples that may differ in their (implicit)
// time stamps but carry the same data.
func Equal(a, b Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !value.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// Hash64 returns a stable hash of the tuple contents.
func (t Tuple) Hash64() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range t {
		u := v.Hash64()
		buf[0] = byte(u)
		buf[1] = byte(u >> 8)
		buf[2] = byte(u >> 16)
		buf[3] = byte(u >> 24)
		buf[4] = byte(u >> 32)
		buf[5] = byte(u >> 40)
		buf[6] = byte(u >> 48)
		buf[7] = byte(u >> 56)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Clone returns an independent copy.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// String renders the tuple as a parenthesized value list.
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// AppendBinary appends the encoded tuple (arity-prefixed) to dst.
func (t Tuple) AppendBinary(dst []byte) []byte {
	dst = append(dst, byte(len(t)), byte(len(t)>>8))
	for _, v := range t {
		dst = v.AppendBinary(dst)
	}
	return dst
}

// DecodeBinary decodes one tuple from the front of src, returning it and the
// bytes consumed.
func DecodeBinary(src []byte) (Tuple, int, error) {
	if len(src) < 2 {
		return nil, 0, fmt.Errorf("tuple: short arity prefix")
	}
	arity := int(src[0]) | int(src[1])<<8
	off := 2
	out := make(Tuple, 0, arity)
	for i := 0; i < arity; i++ {
		v, n, err := value.DecodeBinary(src[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("tuple: attribute %d: %w", i, err)
		}
		out = append(out, v)
		off += n
	}
	return out, off, nil
}
