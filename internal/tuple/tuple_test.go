package tuple

import (
	"math/rand"
	"testing"

	"tdb/internal/schema"
	"tdb/internal/value"
	"tdb/temporal"
)

var faculty = schema.MustNew(
	schema.Attribute{Name: "name", Type: value.String},
	schema.Attribute{Name: "rank", Type: value.String},
)

func TestValidate(t *testing.T) {
	good := New(value.NewString("Merrie"), value.NewString("full"))
	if err := good.Validate(faculty); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	short := New(value.NewString("Merrie"))
	if err := short.Validate(faculty); err == nil {
		t.Error("arity mismatch must be rejected")
	}
	wrong := New(value.NewString("Merrie"), value.NewInt(3))
	if err := wrong.Validate(faculty); err == nil {
		t.Error("kind mismatch must be rejected")
	}
}

func TestKeyProjection(t *testing.T) {
	tup := New(value.NewString("Merrie"), value.NewString("full"))
	// No explicit key: whole tuple.
	if k := tup.Key(faculty); !Equal(k, tup) {
		t.Errorf("whole-tuple key = %v", k)
	}
	keyed, err := faculty.WithKey("name")
	if err != nil {
		t.Fatal(err)
	}
	k := tup.Key(keyed)
	if len(k) != 1 || k[0].Str() != "Merrie" {
		t.Errorf("key = %v", k)
	}
}

func TestProjectAndConcat(t *testing.T) {
	tup := New(value.NewString("Merrie"), value.NewString("full"))
	p := tup.Project([]int{1})
	if len(p) != 1 || p[0].Str() != "full" {
		t.Errorf("Project = %v", p)
	}
	c := Concat(tup, New(value.NewInt(7)))
	if len(c) != 3 || c[2].Int() != 7 {
		t.Errorf("Concat = %v", c)
	}
	// Concat must not alias its inputs' backing arrays.
	c[0] = value.NewString("clobber")
	if tup[0].Str() != "Merrie" {
		t.Error("Concat aliased input tuple")
	}
}

func TestEqualAndHash(t *testing.T) {
	a := New(value.NewString("Tom"), value.NewString("associate"))
	b := New(value.NewString("Tom"), value.NewString("associate"))
	c := New(value.NewString("Tom"), value.NewString("full"))
	if !Equal(a, b) {
		t.Error("value-equivalent tuples must be Equal")
	}
	if Equal(a, c) {
		t.Error("different tuples must not be Equal")
	}
	if Equal(a, a[:1]) {
		t.Error("different arities must not be Equal")
	}
	if a.Hash64() != b.Hash64() {
		t.Error("equal tuples must hash equal")
	}
	if a.Hash64() == c.Hash64() {
		t.Error("distinct tuples should hash distinct")
	}
}

func TestClone(t *testing.T) {
	a := New(value.NewString("Mike"), value.NewString("assistant"))
	b := a.Clone()
	b[1] = value.NewString("left")
	if a[1].Str() != "assistant" {
		t.Error("Clone must be independent")
	}
}

func TestString(t *testing.T) {
	a := New(value.NewString("Mike"), value.NewInt(3))
	if got := a.String(); got != "(Mike, 3)" {
		t.Errorf("String = %q", got)
	}
}

func randomTuple(r *rand.Rand) Tuple {
	n := 1 + r.Intn(6)
	out := make(Tuple, n)
	for i := range out {
		switch r.Intn(4) {
		case 0:
			out[i] = value.NewInt(r.Int63())
		case 1:
			out[i] = value.NewString(string(rune('a' + r.Intn(26))))
		case 2:
			out[i] = value.NewBool(r.Intn(2) == 0)
		default:
			out[i] = value.NewInstant(temporal.Chronon(r.Int63n(1 << 32)))
		}
	}
	return out
}

func TestBinaryRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 1000; trial++ {
		tup := randomTuple(r)
		enc := tup.AppendBinary(nil)
		dec, n, err := DecodeBinary(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(enc) || !Equal(tup, dec) {
			t.Fatalf("round trip %v -> %v (n=%d of %d)", tup, dec, n, len(enc))
		}
	}
}

func TestDecodeBinaryErrors(t *testing.T) {
	if _, _, err := DecodeBinary(nil); err == nil {
		t.Error("empty buffer must error")
	}
	if _, _, err := DecodeBinary([]byte{2, 0, byte(value.Int)}); err == nil {
		t.Error("truncated tuple must error")
	}
}

func TestEmptyTupleRoundTrip(t *testing.T) {
	enc := Tuple{}.AppendBinary(nil)
	dec, n, err := DecodeBinary(enc)
	if err != nil || n != 2 || len(dec) != 0 {
		t.Errorf("empty tuple round trip: %v %d %v", dec, n, err)
	}
}
