package catalog

import (
	"errors"
	"testing"

	"tdb/internal/core"
	"tdb/internal/schema"
	"tdb/internal/value"
)

func sch(t *testing.T) *schema.Schema {
	t.Helper()
	return schema.MustNew(
		schema.Attribute{Name: "name", Type: value.String},
		schema.Attribute{Name: "rank", Type: value.String},
	)
}

func TestCreateAllKinds(t *testing.T) {
	c := New()
	kinds := []core.Kind{core.Static, core.StaticRollback, core.Historical, core.Temporal}
	for _, k := range kinds {
		r, err := c.Create(k.String(), k, false, sch(t))
		if err != nil {
			t.Fatalf("create %v: %v", k, err)
		}
		if r.Kind() != k || r.Name() != k.String() || r.Event() {
			t.Errorf("relation metadata wrong: %v", r)
		}
		if r.Store() == nil || r.Store().Kind() != k {
			t.Errorf("store kind mismatch for %v", k)
		}
		if r.Transactional() == nil {
			t.Errorf("store for %v not transactional", k)
		}
		if r.Schema().Arity() != 2 {
			t.Errorf("schema lost for %v", k)
		}
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d", c.Len())
	}
	want := []string{"historical", "static", "static rollback", "temporal"}
	got := c.Names()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v", got)
		}
	}
}

func TestCreateErrors(t *testing.T) {
	c := New()
	if _, err := c.Create("", core.Static, false, sch(t)); err == nil {
		t.Error("anonymous relation must be rejected")
	}
	if _, err := c.Create("r", core.Static, false, sch(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("r", core.Temporal, false, sch(t)); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate: %v", err)
	}
	// Event relations need valid time.
	if _, err := c.Create("ev", core.Static, true, sch(t)); !errors.Is(err, ErrKindMismatch) {
		t.Errorf("static event: %v", err)
	}
	if _, err := c.Create("ev", core.StaticRollback, true, sch(t)); !errors.Is(err, ErrKindMismatch) {
		t.Errorf("rollback event: %v", err)
	}
	if _, err := c.Create("ev", core.Historical, true, sch(t)); err != nil {
		t.Errorf("historical event: %v", err)
	}
	if _, err := c.Create("ev2", core.Temporal, true, sch(t)); err != nil {
		t.Errorf("temporal event: %v", err)
	}
}

func TestTypedAccessors(t *testing.T) {
	c := New()
	r, err := c.Create("t", core.Temporal, false, sch(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Temporal(); err != nil {
		t.Errorf("Temporal(): %v", err)
	}
	if _, err := r.Static(); !errors.Is(err, ErrKindMismatch) {
		t.Errorf("Static() on temporal: %v", err)
	}
	if _, err := r.Rollback(); !errors.Is(err, ErrKindMismatch) {
		t.Errorf("Rollback() on temporal: %v", err)
	}
	if _, err := r.Historical(); !errors.Is(err, ErrKindMismatch) {
		t.Errorf("Historical() on temporal: %v", err)
	}
	s, err := c.Create("s", core.Static, false, sch(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Static(); err != nil {
		t.Errorf("Static(): %v", err)
	}
}

func TestGetAndDrop(t *testing.T) {
	c := New()
	if _, err := c.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("get missing: %v", err)
	}
	if _, err := c.Create("r", core.Historical, false, sch(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("r"); err != nil {
		t.Errorf("get: %v", err)
	}
	if err := c.Drop("r"); err != nil {
		t.Errorf("drop: %v", err)
	}
	if err := c.Drop("r"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double drop: %v", err)
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d", c.Len())
	}
}
