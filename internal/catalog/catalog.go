// Package catalog names and tracks the relations of a database: each
// relation couples a name with a taxonomy kind (static, static rollback,
// historical, temporal), an interval/event class, and the concrete store
// implementing it.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"tdb/internal/core"
	"tdb/internal/schema"
)

// relGen hands every created relation a process-unique generation number.
// The query cache keys entries by (name, generation, write version), so
// dropping and recreating a relation under the same name — which resets the
// store's write-version counter to zero — can never resurrect cached
// results from the earlier incarnation.
var relGen atomic.Uint64

// Errors returned by catalog operations.
var (
	// ErrExists reports creation of a relation whose name is taken.
	ErrExists = errors.New("catalog: relation already exists")
	// ErrNotFound reports a reference to an unknown relation.
	ErrNotFound = errors.New("catalog: no such relation")
	// ErrKindMismatch reports using a relation through the wrong kind's
	// operations.
	ErrKindMismatch = errors.New("catalog: operation not supported by relation kind")
)

// Relation is a named store in the catalog.
type Relation struct {
	name  string
	kind  core.Kind
	event bool
	gen   uint64

	static     *core.StaticStore
	rollback   *core.RollbackStore
	historical *core.HistoricalStore
	temporal   *core.TemporalStore
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Kind returns the relation's taxonomy kind.
func (r *Relation) Kind() core.Kind { return r.kind }

// Event reports whether the relation is an event relation.
func (r *Relation) Event() bool { return r.event }

// Gen returns the relation's process-unique creation generation (see relGen).
func (r *Relation) Gen() uint64 { return r.gen }

// WriteVersion returns the store's monotonic mutation counter.
func (r *Relation) WriteVersion() uint64 { return r.Store().WriteVersion() }

// Schema returns the relation schema.
func (r *Relation) Schema() *schema.Schema { return r.Store().Schema() }

// Store returns the relation's store through the kind-independent
// interface.
func (r *Relation) Store() core.Store {
	switch r.kind {
	case core.Static:
		return r.static
	case core.StaticRollback:
		return r.rollback
	case core.Historical:
		return r.historical
	default:
		return r.temporal
	}
}

// Transactional returns the store's transaction hooks.
func (r *Relation) Transactional() core.Transactional {
	return r.Store().(core.Transactional)
}

// Static returns the underlying static store, or an error for other kinds.
func (r *Relation) Static() (*core.StaticStore, error) {
	if r.static == nil {
		return nil, fmt.Errorf("%w: %s is %s", ErrKindMismatch, r.name, r.kind)
	}
	return r.static, nil
}

// Rollback returns the underlying rollback store, or an error.
func (r *Relation) Rollback() (*core.RollbackStore, error) {
	if r.rollback == nil {
		return nil, fmt.Errorf("%w: %s is %s", ErrKindMismatch, r.name, r.kind)
	}
	return r.rollback, nil
}

// Historical returns the underlying historical store, or an error.
func (r *Relation) Historical() (*core.HistoricalStore, error) {
	if r.historical == nil {
		return nil, fmt.Errorf("%w: %s is %s", ErrKindMismatch, r.name, r.kind)
	}
	return r.historical, nil
}

// Temporal returns the underlying temporal store, or an error.
func (r *Relation) Temporal() (*core.TemporalStore, error) {
	if r.temporal == nil {
		return nil, fmt.Errorf("%w: %s is %s", ErrKindMismatch, r.name, r.kind)
	}
	return r.temporal, nil
}

// Catalog is the set of relations in one database. It is not synchronized;
// the Database facade serializes access.
type Catalog struct {
	rels map[string]*Relation
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{rels: make(map[string]*Relation)}
}

// Create adds a relation of the given kind. Event relations are only
// meaningful for kinds carrying valid time (historical and temporal);
// requesting one for other kinds fails with ErrKindMismatch.
func (c *Catalog) Create(name string, kind core.Kind, event bool, sch *schema.Schema) (*Relation, error) {
	if name == "" {
		return nil, errors.New("catalog: relation needs a name")
	}
	if _, taken := c.rels[name]; taken {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	if event && !kind.SupportsHistorical() {
		return nil, fmt.Errorf("%w: %s relations carry no valid time to stamp events with", ErrKindMismatch, kind)
	}
	r := &Relation{name: name, kind: kind, event: event, gen: relGen.Add(1)}
	switch kind {
	case core.Static:
		r.static = core.NewStaticStore(sch)
	case core.StaticRollback:
		r.rollback = core.NewRollbackStore(sch)
	case core.Historical:
		if event {
			r.historical = core.NewHistoricalEventStore(sch)
		} else {
			r.historical = core.NewHistoricalStore(sch)
		}
	case core.Temporal:
		if event {
			r.temporal = core.NewTemporalEventStore(sch)
		} else {
			r.temporal = core.NewTemporalStore(sch)
		}
	default:
		return nil, fmt.Errorf("catalog: unknown kind %v", kind)
	}
	c.rels[name] = r
	return r, nil
}

// Get looks a relation up by name.
func (c *Catalog) Get(name string) (*Relation, error) {
	r, ok := c.rels[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return r, nil
}

// Drop removes a relation. For rollback and temporal relations this is a
// schema-level destroy: the paper's append-only discipline governs tuples
// within a relation, not the existence of the relation itself.
func (c *Catalog) Drop(name string) error {
	if _, ok := c.rels[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(c.rels, name)
	return nil
}

// Names returns the sorted relation names.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.rels))
	for n := range c.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of relations.
func (c *Catalog) Len() int { return len(c.rels) }
