package dataset

import (
	"testing"

	"tdb/internal/core"
	"tdb/internal/tuple"
	"tdb/temporal"
)

func TestHistoryDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a, b := History(cfg), History(cfg)
	if len(a) != cfg.Entities*cfg.VersionsPerEntity {
		t.Fatalf("length = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs between identical seeds", i)
		}
	}
	cfg.Seed++
	c := History(cfg)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical histories")
	}
}

func TestHistoryCommitsMonotone(t *testing.T) {
	events := History(DefaultConfig())
	for i := 1; i < len(events); i++ {
		if events[i].Commit <= events[i-1].Commit {
			t.Fatalf("commit times not strictly increasing at %d", i)
		}
	}
	commits := Commits(events)
	if len(commits) != len(events) {
		t.Errorf("Commits = %d, want %d distinct", len(commits), len(events))
	}
}

func TestHistoryFractions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Entities, cfg.VersionsPerEntity = 50, 100
	cfg.RetroFraction, cfg.RetractFraction = 0.3, 0.2
	events := History(cfg)
	retro, retract := 0, 0
	for _, e := range events {
		if !e.Assert {
			retract++
		}
		if e.Valid.From < e.Commit {
			retro++
		}
	}
	n := float64(len(events))
	if f := float64(retract) / n; f < 0.15 || f > 0.25 {
		t.Errorf("retract fraction = %.2f, want ~0.2", f)
	}
	if f := float64(retro) / n; f < 0.2 || f > 0.4 {
		t.Errorf("retro fraction = %.2f, want ~0.3", f)
	}
	for _, e := range events {
		if e.Valid.IsEmpty() || !e.Valid.IsValid() {
			t.Fatalf("malformed valid period %v", e.Valid)
		}
	}
}

func TestLoadersAllStores(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Entities, cfg.VersionsPerEntity = 20, 8
	events := History(cfg)
	sch := Schema()

	ts := core.NewTemporalStore(sch)
	if err := LoadTemporal(ts, events); err != nil {
		t.Fatalf("temporal: %v", err)
	}
	if ts.VersionCount() < len(events) {
		t.Errorf("temporal stored %d versions for %d events", ts.VersionCount(), len(events))
	}

	hs := core.NewHistoricalStore(sch)
	if err := LoadHistorical(hs, events); err != nil {
		t.Fatalf("historical: %v", err)
	}

	rb := core.NewRollbackStore(sch)
	if err := LoadRollback(rb, events); err != nil {
		t.Fatalf("rollback: %v", err)
	}
	cp := core.NewCopyRollbackStore(sch)
	if err := LoadCopyRollback(cp, events); err != nil {
		t.Fatalf("copy: %v", err)
	}
	st := core.NewStaticStore(sch)
	if err := LoadStatic(st, events); err != nil {
		t.Fatalf("static: %v", err)
	}

	// Cross-representation agreement: at every commit, the rollback and
	// copy stores answer AsOf identically, and the final static state
	// matches the rollback store's current state.
	asSet := func(ts []tuple.Tuple) map[string]bool {
		out := make(map[string]bool, len(ts))
		for _, t := range ts {
			out[t.String()] = true
		}
		return out
	}
	sameSet := func(a, b map[string]bool) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	for _, at := range Commits(events) {
		if !sameSet(asSet(rb.AsOf(at)), asSet(cp.AsOf(at))) {
			t.Fatalf("AsOf(%v) diverges between representations", at)
		}
	}
	if !sameSet(asSet(st.Snapshot(0)), asSet(rb.Snapshot(temporal.Forever-1))) {
		t.Fatal("final static state differs from rollback current state")
	}

	// Temporal-vs-historical agreement on current belief: the temporal
	// store's current time slices equal the historical store's.
	for probe := cfg.Start; probe < MidCommit(events); probe += temporal.Chronon(cfg.Step * 100) {
		if !sameSet(asSet(ts.TimeSlice(probe, temporal.Forever-1)), asSet(hs.TimeSlice(probe))) {
			t.Fatalf("time slice at %v diverges between temporal and historical", probe)
		}
	}
}
