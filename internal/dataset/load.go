package dataset

import (
	"errors"

	"tdb/internal/core"
	"tdb/temporal"
)

// LoadTemporal replays a history into a bitemporal store. Retractions of
// absent periods are skipped, matching how an application would behave.
func LoadTemporal(s *core.TemporalStore, events []Event) error {
	for _, e := range events {
		var err error
		if e.Assert {
			err = s.Assert(e.Tuple(), e.Valid, e.Commit)
		} else {
			err = s.Retract(e.Key(), e.Valid, e.Commit)
			if errors.Is(err, core.ErrNoSuchTuple) {
				err = nil
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// LoadHistorical replays a history into a valid-time store, discarding the
// commit times (a historical database has no transaction time to keep).
func LoadHistorical(s *core.HistoricalStore, events []Event) error {
	for _, e := range events {
		var err error
		if e.Assert {
			err = s.Assert(e.Tuple(), e.Valid)
		} else {
			err = s.Retract(e.Key(), e.Valid)
			if errors.Is(err, core.ErrNoSuchTuple) {
				err = nil
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// LoadRollback replays a history into a transaction-time store, reducing
// each event to the current-state operation it implies (a rollback store
// cannot represent valid time): assertion becomes insert-or-replace,
// retraction becomes delete.
func LoadRollback(s *core.RollbackStore, events []Event) error {
	for _, e := range events {
		var err error
		if e.Assert {
			err = s.Insert(e.Tuple(), e.Commit)
			if errors.Is(err, core.ErrDuplicateKey) {
				err = s.Replace(e.Key(), e.Tuple(), e.Commit)
			}
		} else {
			err = s.Delete(e.Key(), e.Commit)
			if errors.Is(err, core.ErrNoSuchTuple) {
				err = nil
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// LoadCopyRollback replays a history into the naive full-copy rollback
// representation, for the ablation benchmarks.
func LoadCopyRollback(s *core.CopyRollbackStore, events []Event) error {
	for _, e := range events {
		var err error
		if e.Assert {
			err = s.Insert(e.Tuple(), e.Commit)
			if errors.Is(err, core.ErrDuplicateKey) {
				err = s.Replace(e.Key(), e.Tuple(), e.Commit)
			}
		} else {
			err = s.Delete(e.Key(), e.Commit)
			if errors.Is(err, core.ErrNoSuchTuple) {
				err = nil
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// LoadStatic replays a history into a snapshot store: only the final state
// survives, demonstrating exactly what the paper says a static database
// forgets.
func LoadStatic(s *core.StaticStore, events []Event) error {
	for _, e := range events {
		var err error
		if e.Assert {
			err = s.Insert(e.Tuple())
			if errors.Is(err, core.ErrDuplicateKey) {
				err = s.Replace(e.Key(), e.Tuple())
			}
		} else {
			err = s.Delete(e.Key())
			if errors.Is(err, core.ErrNoSuchTuple) {
				err = nil
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// MidCommit returns the commit chronon halfway through the stream, a
// convenient rollback probe.
func MidCommit(events []Event) temporal.Chronon {
	if len(events) == 0 {
		return 0
	}
	return events[len(events)/2].Commit
}
