// Package dataset generates the deterministic workloads used by the
// benchmark harness and examples: entity histories in the style of the
// paper's faculty relation, with controllable history depth, retroactive
// correction rate, and entity count. Every generator is seeded and
// reproducible.
package dataset

import (
	"fmt"
	"math/rand"

	"tdb/internal/schema"
	"tdb/internal/tuple"
	"tdb/internal/value"
	"tdb/temporal"
)

// Schema returns the generic entity schema (name, rank) keyed by name that
// every generated workload uses — the shape of the paper's faculty
// relation.
func Schema() *schema.Schema {
	s := schema.MustNew(
		schema.Attribute{Name: "name", Type: value.String},
		schema.Attribute{Name: "rank", Type: value.String},
	)
	keyed, err := s.WithKey("name")
	if err != nil {
		panic(err)
	}
	return keyed
}

// Event is one update in a generated history.
type Event struct {
	// Commit is the transaction time of the update (strictly increasing
	// across the stream).
	Commit temporal.Chronon
	// Assert is true for assertions, false for retractions.
	Assert bool
	// Name identifies the entity; Rank is its new attribute value.
	Name string
	Rank string
	// Valid is the asserted or retracted valid period. Retroactive events
	// have Valid.From earlier than the previous event's commit time.
	Valid temporal.Interval
}

// Tuple returns the event's data tuple.
func (e Event) Tuple() tuple.Tuple {
	return tuple.New(value.NewString(e.Name), value.NewString(e.Rank))
}

// Key returns the event's entity key.
func (e Event) Key() tuple.Tuple {
	return tuple.New(value.NewString(e.Name))
}

// Config parameterizes History.
type Config struct {
	// Entities is the number of distinct entities.
	Entities int
	// VersionsPerEntity is how many updates each entity receives.
	VersionsPerEntity int
	// RetroFraction in [0,1] is the share of updates that are retroactive
	// corrections (valid periods starting before the present).
	RetroFraction float64
	// RetractFraction in [0,1] is the share of updates that retract
	// rather than assert.
	RetractFraction float64
	// BoundedFraction in [0,1] is the share of assertions with a bounded
	// valid period (from..to) instead of from..forever. Bounded versions
	// whose period ends before the next update are never superseded, so
	// they stay current forever — raising this spreads permanently-current
	// rows across the whole history.
	BoundedFraction float64
	// Start is the first commit chronon; Step the gap between commits.
	Start temporal.Chronon
	Step  int64
	// Seed drives the deterministic generator.
	Seed int64
}

// DefaultConfig returns a mid-sized faculty-style history.
func DefaultConfig() Config {
	return Config{
		Entities:          100,
		VersionsPerEntity: 10,
		RetroFraction:     0.2,
		RetractFraction:   0.1,
		BoundedFraction:   0.25,
		Start:             temporal.Date(1977, 1, 1),
		Step:              86400, // one day per commit
		Seed:              1985,
	}
}

// History generates a deterministic update stream: Entities×
// VersionsPerEntity events with strictly increasing commit times,
// interleaved across entities, with the configured fractions of
// retroactive changes and retractions.
func History(cfg Config) []Event {
	if cfg.Step <= 0 {
		cfg.Step = 86400
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	total := cfg.Entities * cfg.VersionsPerEntity
	events := make([]Event, 0, total)
	commit := cfg.Start
	ranks := []string{"assistant", "associate", "full", "emeritus", "visiting"}
	for i := 0; i < total; i++ {
		entity := i % cfg.Entities
		ev := Event{
			Commit: commit,
			Assert: r.Float64() >= cfg.RetractFraction,
			Name:   fmt.Sprintf("entity-%04d", entity),
			Rank:   ranks[r.Intn(len(ranks))],
		}
		// Valid period: ordinarily "from now on"; retroactive events reach
		// back up to ~100 commits.
		from := commit
		if r.Float64() < cfg.RetroFraction {
			from = commit.Add(-cfg.Step * int64(1+r.Intn(100)))
		}
		ev.Valid = temporal.Since(from)
		if r.Float64() < cfg.BoundedFraction { // bounded periods exercise splitting
			ev.Valid.To = from.Add(cfg.Step * int64(1+r.Intn(200)))
		}
		events = append(events, ev)
		commit = commit.Add(cfg.Step)
	}
	return events
}

// Commits extracts the distinct commit chronons of a stream, in order —
// handy as rollback probe points.
func Commits(events []Event) []temporal.Chronon {
	out := make([]temporal.Chronon, 0, len(events))
	var last temporal.Chronon
	for i, e := range events {
		if i == 0 || e.Commit != last {
			out = append(out, e.Commit)
			last = e.Commit
		}
	}
	return out
}
