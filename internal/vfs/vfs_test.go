package vfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fsys := Default()
	path := filepath.Join(dir, "a.dat")

	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if off, err := f.Seek(0, io.SeekEnd); err != nil || off != 5 {
		t.Fatalf("seek end = %d, %v", off, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := fsys.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("read back %q, %v", data, err)
	}
	fi, err := fsys.Stat(path)
	if err != nil || fi.Size() != 5 {
		t.Fatalf("stat: %v, %v", fi, err)
	}

	dst := filepath.Join(dir, "b.dat")
	if err := fsys.Rename(path, dst); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dst); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Truncate(dst, 2); err != nil {
		t.Fatal(err)
	}
	if data, _ := fsys.ReadFile(dst); string(data) != "he" {
		t.Fatalf("after truncate: %q", data)
	}
	if err := fsys.Remove(dst); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Stat(dst); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stat after remove: %v", err)
	}
}

func TestFaultFSTransparentWhenUnarmed(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(Default())
	path := filepath.Join(dir, "a.dat")
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if got, _ := fsys.ReadFile(path); string(got) != "abc" {
		t.Fatalf("read %q", got)
	}
	if fsys.Ops() != 2 { // one write, one sync
		t.Errorf("ops = %d, want 2", fsys.Ops())
	}
	if fsys.Crashed() {
		t.Error("unarmed FaultFS crashed")
	}
}

func TestFaultFSCrashTearsWrite(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(Default())
	path := filepath.Join(dir, "a.dat")
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fsys.CrashAfter(1)
	if _, err := f.Write([]byte("0123456789")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write at crash point: %v", err)
	}
	if !fsys.Crashed() {
		t.Fatal("crash point did not fire")
	}
	// Everything afterwards is dead.
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Errorf("sync after crash: %v", err)
	}
	if _, err := fsys.OpenFile(path, os.O_RDONLY, 0); !errors.Is(err, ErrCrashed) {
		t.Errorf("open after crash: %v", err)
	}
	if _, err := fsys.ReadFile(path); !errors.Is(err, ErrCrashed) {
		t.Errorf("read after crash: %v", err)
	}
	if err := fsys.Rename(path, path+".x"); !errors.Is(err, ErrCrashed) {
		t.Errorf("rename after crash: %v", err)
	}
	// The torn prefix is on disk, visible through a clean FS — exactly what
	// recovery will see after the reboot.
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "01234" {
		t.Fatalf("torn write left %q, %v", data, err)
	}
	// Reboot: the same FaultFS, revived, sees the torn file.
	fsys.Reset()
	if data, err := fsys.ReadFile(path); err != nil || string(data) != "01234" {
		t.Fatalf("after reset: %q, %v", data, err)
	}
}

func TestFaultFSCrashSkipsNonWriteOps(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(Default())
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	if err := os.WriteFile(a, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	fsys.CrashAfter(1)
	if err := fsys.Rename(a, b); !errors.Is(err, ErrCrashed) {
		t.Fatalf("rename at crash point: %v", err)
	}
	// The rename must NOT have happened: the crash precedes the operation.
	if _, err := os.Stat(a); err != nil {
		t.Error("crash-point rename was applied")
	}
	if _, err := os.Stat(b); !errors.Is(err, os.ErrNotExist) {
		t.Error("crash-point rename created destination")
	}
}

func TestFaultFSShortWrite(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(Default())
	path := filepath.Join(dir, "a.dat")
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fsys.ShortWriteAt(2)
	if _, err := f.Write([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("bbbb"))
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("second write: %v", err)
	}
	if n != 2 {
		t.Fatalf("short write persisted %d bytes, want 2", n)
	}
	// One-shot: the next write succeeds, and nothing crashed.
	if _, err := f.Write([]byte("cc")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if data, _ := fsys.ReadFile(path); string(data) != "aaaabbcc" {
		t.Fatalf("file contents %q", data)
	}
}

func TestFaultFSSyncFailure(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(Default())
	f, err := fsys.OpenFile(filepath.Join(dir, "a.dat"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fsys.FailSyncAt(2)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("second sync: %v", err)
	}
	// One-shot and non-fatal.
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// Directory syncs share the sync counter.
	fsys.FailSyncAt(1)
	if err := fsys.SyncDir(filepath.Join(dir, "a.dat")); !errors.Is(err, ErrInjectedSync) {
		t.Fatalf("dir sync: %v", err)
	}
	f.Close()
}

func TestFaultFSCrashAfterCountsFromNow(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(Default())
	f, err := fsys.OpenFile(filepath.Join(dir, "a.dat"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := f.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Arm after 5 ops already happened: 2 more survive, the 3rd dies.
	fsys.CrashAfter(3)
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("y")); err != nil {
			t.Fatalf("op %d after arming: %v", i+1, err)
		}
	}
	if _, err := f.Write([]byte("z")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("3rd op after arming: %v", err)
	}
	f.Close()
}
