// Package vfs is the boundary between the storage layer and the operating
// system: every byte the write-ahead log or a checkpoint snapshot moves to
// or from disk goes through an FS. The OS implementation is a thin veneer
// over package os; FaultFS wraps any FS and injects short writes, fsync
// failures, and whole-process "crashes" at a chosen operation count, which
// is what makes every recovery path deterministically testable.
package vfs

import (
	"io/fs"
	"os"
	"path/filepath"
)

// File is an open file handle. The storage layer appends, syncs, seeks,
// and truncates; whole-file reads go through FS.ReadFile, while ranged
// reads (replication shipping byte windows of the log) use Seek + Read.
type File interface {
	// Write appends len(p) bytes at the current offset. Implementations
	// follow os.File: n < len(p) only with a non-nil error.
	Write(p []byte) (n int, err error)
	// Read reads up to len(p) bytes at the current offset, as io.Reader.
	Read(p []byte) (n int, err error)
	// Seek repositions the offset as io.Seeker does.
	Seek(offset int64, whence int) (int64, error)
	// Truncate changes the file size without moving the offset.
	Truncate(size int64) error
	// Sync flushes the file's data and metadata to stable storage.
	Sync() error
	// Close releases the handle.
	Close() error
}

// FS is the set of filesystem operations durability is built from.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// ReadFile returns the whole contents of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate resizes the named file.
	Truncate(name string, size int64) error
	// Stat reports on the named file.
	Stat(name string) (fs.FileInfo, error)
	// SyncDir fsyncs the directory containing name, making a preceding
	// rename or create in it durable.
	SyncDir(name string) error
}

// OS is the default FS: the real operating system. The zero value is ready
// to use.
type OS struct{}

// osFS is the shared default instance handed out by Default.
var osFS FS = OS{}

// Default returns the process-wide OS filesystem.
func Default() FS { return osFS }

// OpenFile opens the file through package os.
func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// ReadFile reads the whole file through package os.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Rename renames through package os.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove removes through package os.
func (OS) Remove(name string) error { return os.Remove(name) }

// Truncate resizes through package os.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// Stat stats through package os.
func (OS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// SyncDir opens the parent directory of name and fsyncs it.
func (OS) SyncDir(name string) error {
	d, err := os.Open(filepath.Dir(name))
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
