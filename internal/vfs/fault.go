package vfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sync"
)

// ErrCrashed reports I/O attempted after a FaultFS reached its crash point:
// the simulated process is dead, and nothing else reaches the disk.
var ErrCrashed = errors.New("vfs: crashed (injected)")

// ErrInjectedSync is the failure a scheduled fsync fault returns.
var ErrInjectedSync = errors.New("vfs: fsync failed (injected)")

// FaultFS wraps an FS and injects faults deterministically:
//
//   - CrashAfter(n) "crashes the process" at the n-th mutating operation
//     (write, sync, truncate, rename, remove, directory sync): a write at
//     the boundary persists only a prefix — a torn write — and every later
//     operation fails with ErrCrashed. The files already on disk are left
//     exactly as the crash tore them, so reopening the directory through a
//     clean FS exercises recovery.
//   - ShortWriteAt(n) makes the n-th write persist half its bytes and
//     return io.ErrShortWrite, without crashing.
//   - FailSyncAt(n) makes the n-th sync (file or directory) fail with
//     ErrInjectedSync, without crashing and without syncing.
//
// Counters start at 1: CrashAfter(1) fires on the first mutating
// operation. Zero disarms a trigger. All methods are safe for concurrent
// use.
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	ops     int64 // mutating operations performed
	writes  int64 // writes performed
	syncs   int64 // syncs performed
	crashAt int64
	shortAt int64
	syncAt  int64
	crashed bool
}

// NewFaultFS wraps inner (usually an OS on a temp dir) with fault
// injection. With no triggers armed it is transparent.
func NewFaultFS(inner FS) *FaultFS { return &FaultFS{inner: inner} }

// CrashAfter arms the crash point: the n-th mutating operation from now
// tears (writes persist a prefix; other operations do not happen) and all
// subsequent I/O fails with ErrCrashed. n <= 0 disarms.
func (f *FaultFS) CrashAfter(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 {
		f.crashAt = 0
		return
	}
	f.crashAt = f.ops + n
}

// ShortWriteAt arms a one-shot short write on the n-th write from now.
func (f *FaultFS) ShortWriteAt(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 {
		f.shortAt = 0
		return
	}
	f.shortAt = f.writes + n
}

// FailSyncAt arms a one-shot fsync failure on the n-th sync from now.
func (f *FaultFS) FailSyncAt(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 {
		f.syncAt = 0
		return
	}
	f.syncAt = f.syncs + n
}

// Ops returns the number of mutating operations performed so far. Run a
// workload once against an unarmed FaultFS to learn its operation count,
// then iterate CrashAfter(1..Ops()) to cover every crash point.
func (f *FaultFS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the crash point has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Reset revives a crashed FaultFS and disarms every trigger; the operation
// counters keep running. The simulated machine has rebooted.
func (f *FaultFS) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = false
	f.crashAt, f.shortAt, f.syncAt = 0, 0, 0
}

// step accounts one mutating operation and decides its fate: ok to
// proceed, or an injected failure. isWrite/isSync refine the per-kind
// counters.
func (f *FaultFS) step(isWrite, isSync bool) (torn bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return false, ErrCrashed
	}
	f.ops++
	if isWrite {
		f.writes++
	}
	if isSync {
		f.syncs++
	}
	if f.crashAt != 0 && f.ops >= f.crashAt {
		f.crashed = true
		if isWrite {
			return true, ErrCrashed
		}
		return false, ErrCrashed
	}
	if isWrite && f.shortAt != 0 && f.writes == f.shortAt {
		f.shortAt = 0
		return true, fmt.Errorf("vfs: injected short write: %w", io.ErrShortWrite)
	}
	if isSync && f.syncAt != 0 && f.syncs == f.syncAt {
		f.syncAt = 0
		return false, ErrInjectedSync
	}
	return false, nil
}

// dead reports (under no lock) whether reads should fail too.
func (f *FaultFS) dead() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

// OpenFile opens through the inner FS; a crashed FS opens nothing.
func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if err := f.dead(); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// ReadFile reads through the inner FS; a crashed FS reads nothing.
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err := f.dead(); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

// Rename counts as a mutating operation; at the crash point it does not
// happen.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if _, err := f.step(false, false); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove counts as a mutating operation.
func (f *FaultFS) Remove(name string) error {
	if _, err := f.step(false, false); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// Truncate counts as a mutating operation.
func (f *FaultFS) Truncate(name string, size int64) error {
	if _, err := f.step(false, false); err != nil {
		return err
	}
	return f.inner.Truncate(name, size)
}

// Stat reads metadata; a crashed FS fails.
func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	if err := f.dead(); err != nil {
		return nil, err
	}
	return f.inner.Stat(name)
}

// SyncDir counts as a sync and honors fsync faults.
func (f *FaultFS) SyncDir(name string) error {
	if _, err := f.step(false, true); err != nil {
		return err
	}
	return f.inner.SyncDir(name)
}

// faultFile routes a file's operations through its FaultFS's fault plan.
type faultFile struct {
	fs    *FaultFS
	inner File
}

// Write honors short-write and crash faults: a torn write persists the
// first half of p so the on-disk file ends mid-record.
func (f *faultFile) Write(p []byte) (int, error) {
	torn, err := f.fs.step(true, false)
	if err != nil {
		if torn && len(p) > 0 {
			n, _ := f.inner.Write(p[:len(p)/2])
			return n, err
		}
		return 0, err
	}
	return f.inner.Write(p)
}

// Read passes through (not a mutating operation), but a crashed file fails.
func (f *faultFile) Read(p []byte) (int, error) {
	if err := f.fs.dead(); err != nil {
		return 0, err
	}
	return f.inner.Read(p)
}

// Seek passes through (not a mutating operation), but a crashed file fails.
func (f *faultFile) Seek(offset int64, whence int) (int64, error) {
	if err := f.fs.dead(); err != nil {
		return 0, err
	}
	return f.inner.Seek(offset, whence)
}

// Truncate counts as a mutating operation.
func (f *faultFile) Truncate(size int64) error {
	if _, err := f.fs.step(false, false); err != nil {
		return err
	}
	return f.inner.Truncate(size)
}

// Sync counts as a sync and honors fsync faults.
func (f *faultFile) Sync() error {
	if _, err := f.fs.step(false, true); err != nil {
		return err
	}
	return f.inner.Sync()
}

// Close always releases the inner handle; a crashed process's descriptors
// are gone either way.
func (f *faultFile) Close() error { return f.inner.Close() }
