// Package value implements the typed scalar domain of the database: the
// attribute values carried by tuples. Besides the conventional domains
// (int, float, string, bool) it provides an Instant domain holding a
// temporal.Chronon as ordinary data — this is the paper's *user-defined
// time*: a temporal value that is stored, compared and printed but never
// interpreted by the DBMS (Figure 9's "effective date" column).
package value

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"

	"tdb/temporal"
)

// Kind identifies the domain of a Value.
type Kind uint8

const (
	// Invalid is the zero Kind; no well-formed Value has it.
	Invalid Kind = iota
	// Int is a 64-bit signed integer.
	Int
	// Float is a 64-bit IEEE-754 floating-point number.
	Float
	// String is an immutable character string.
	String
	// Bool is a truth value.
	Bool
	// Instant is user-defined time: a chronon stored as data and left
	// uninterpreted by the DBMS. It appears in the relation schema (unlike
	// transaction and valid time, which are tuple overheads).
	Instant
)

var kindNames = [...]string{
	Invalid: "invalid",
	Int:     "int",
	Float:   "float",
	String:  "string",
	Bool:    "bool",
	Instant: "instant",
}

// String returns the TQuel name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindOf parses a TQuel type name ("int", "i4", "float", "f8", "string",
// "c", "bool", "instant", "date") into a Kind.
func KindOf(name string) (Kind, error) {
	switch strings.ToLower(name) {
	case "int", "i1", "i2", "i4", "i8", "integer":
		return Int, nil
	case "float", "f4", "f8", "real":
		return Float, nil
	case "string", "c", "char", "varchar", "text":
		return String, nil
	case "bool", "boolean":
		return Bool, nil
	case "instant", "date", "time", "event":
		return Instant, nil
	default:
		return Invalid, fmt.Errorf("value: unknown type %q", name)
	}
}

// Value is an immutable typed scalar. The zero Value has Kind Invalid.
type Value struct {
	kind Kind
	i    int64 // Int payload, Bool (0/1), Instant chronon
	f    float64
	s    string
}

// NewInt returns an Int value.
func NewInt(v int64) Value { return Value{kind: Int, i: v} }

// NewFloat returns a Float value.
func NewFloat(v float64) Value { return Value{kind: Float, f: v} }

// NewString returns a String value.
func NewString(v string) Value { return Value{kind: String, s: v} }

// NewBool returns a Bool value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: Bool, i: i}
}

// NewInstant returns an Instant (user-defined time) value.
func NewInstant(c temporal.Chronon) Value { return Value{kind: Instant, i: int64(c)} }

// Kind returns the value's domain.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value belongs to a real domain.
func (v Value) IsValid() bool { return v.kind != Invalid }

// Int returns the integer payload; it panics unless Kind is Int.
func (v Value) Int() int64 {
	v.mustBe(Int)
	return v.i
}

// Float returns the float payload; it panics unless Kind is Float.
func (v Value) Float() float64 {
	v.mustBe(Float)
	return v.f
}

// Str returns the string payload; it panics unless Kind is String.
func (v Value) Str() string {
	v.mustBe(String)
	return v.s
}

// Bool returns the boolean payload; it panics unless Kind is Bool.
func (v Value) Bool() bool {
	v.mustBe(Bool)
	return v.i != 0
}

// Instant returns the chronon payload; it panics unless Kind is Instant.
func (v Value) Instant() temporal.Chronon {
	v.mustBe(Instant)
	return temporal.Chronon(v.i)
}

func (v Value) mustBe(k Kind) {
	if v.kind != k {
		panic(fmt.Sprintf("value: %s accessed as %s", v.kind, k))
	}
}

// Compare orders two values of the same kind, returning -1, 0 or +1. It
// fails when the kinds differ (the analyzer prevents such comparisons from
// reaching execution) or when either value is invalid.
func Compare(a, b Value) (int, error) {
	if a.kind != b.kind {
		return 0, fmt.Errorf("value: cannot compare %s with %s", a.kind, b.kind)
	}
	switch a.kind {
	case Int, Bool, Instant:
		return cmpInt64(a.i, b.i), nil
	case Float:
		return cmpFloat64(a.f, b.f), nil
	case String:
		return strings.Compare(a.s, b.s), nil
	default:
		return 0, fmt.Errorf("value: cannot compare %s values", a.kind)
	}
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case a == b:
		return 0
	// NaNs order after everything and equal to each other, so sorting
	// and key comparison stay total.
	case math.IsNaN(a) && math.IsNaN(b):
		return 0
	case math.IsNaN(a):
		return 1
	default:
		return -1
	}
}

// Equal reports whether two values are the same kind and payload.
func Equal(a, b Value) bool {
	if a.kind != b.kind {
		return false
	}
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Hash64 returns a stable 64-bit hash of the value, suitable for the hash
// indexes in internal/index.
func (v Value) Hash64() uint64 {
	h := fnv.New64a()
	var buf [9]byte
	buf[0] = byte(v.kind)
	switch v.kind {
	case Int, Bool, Instant:
		putUint64(buf[1:], uint64(v.i))
		h.Write(buf[:])
	case Float:
		putUint64(buf[1:], math.Float64bits(v.f))
		h.Write(buf[:])
	case String:
		h.Write(buf[:1])
		h.Write([]byte(v.s))
	default:
		h.Write(buf[:1])
	}
	return h.Sum64()
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// String renders the value for figure output: strings bare, instants in the
// paper's date style, booleans as true/false.
func (v Value) String() string {
	switch v.kind {
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Float:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case String:
		return v.s
	case Bool:
		return strconv.FormatBool(v.i != 0)
	case Instant:
		return temporal.Chronon(v.i).String()
	default:
		return "<invalid>"
	}
}

// Parse converts a literal string into a value of the requested kind; it is
// the "input function" the paper says user-defined time domains require.
func Parse(k Kind, s string) (Value, error) {
	switch k {
	case Int:
		i, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: parsing %q as int: %w", s, err)
		}
		return NewInt(i), nil
	case Float:
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: parsing %q as float: %w", s, err)
		}
		return NewFloat(f), nil
	case String:
		return NewString(s), nil
	case Bool:
		b, err := strconv.ParseBool(strings.TrimSpace(s))
		if err != nil {
			return Value{}, fmt.Errorf("value: parsing %q as bool: %w", s, err)
		}
		return NewBool(b), nil
	case Instant:
		c, err := temporal.Parse(s)
		if err != nil {
			return Value{}, err
		}
		return NewInstant(c), nil
	default:
		return Value{}, fmt.Errorf("value: cannot parse into %s", k)
	}
}
