package value

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tdb/temporal"
)

func TestConstructorsAndAccessors(t *testing.T) {
	if NewInt(42).Int() != 42 {
		t.Error("Int round trip")
	}
	if NewFloat(2.5).Float() != 2.5 {
		t.Error("Float round trip")
	}
	if NewString("full").Str() != "full" {
		t.Error("String round trip")
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("Bool round trip")
	}
	c := temporal.Date(1982, 12, 1)
	if NewInstant(c).Instant() != c {
		t.Error("Instant round trip")
	}
}

func TestAccessorPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Str() on Int must panic")
		}
	}()
	NewInt(1).Str()
}

func TestZeroValueInvalid(t *testing.T) {
	var v Value
	if v.IsValid() || v.Kind() != Invalid {
		t.Error("zero Value must be Invalid")
	}
	if v.String() != "<invalid>" {
		t.Errorf("invalid String() = %q", v.String())
	}
}

func TestKindOf(t *testing.T) {
	cases := map[string]Kind{
		"int": Int, "i4": Int, "INTEGER": Int,
		"float": Float, "f8": Float,
		"string": String, "c": String, "varchar": String,
		"bool": Bool, "date": Instant, "instant": Instant, "event": Instant,
	}
	for name, want := range cases {
		got, err := KindOf(name)
		if err != nil || got != want {
			t.Errorf("KindOf(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := KindOf("blob"); err == nil {
		t.Error("unknown type must error")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewFloat(2.5), -1},
		{NewString("associate"), NewString("full"), -1},
		{NewString("full"), NewString("full"), 0},
		{NewBool(false), NewBool(true), -1},
		{NewInstant(10), NewInstant(20), -1},
	}
	for _, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("Compare(%v, %v) = %d, %v; want %d", c.a, c.b, got, err, c.want)
		}
	}
	if _, err := Compare(NewInt(1), NewString("x")); err == nil {
		t.Error("cross-kind comparison must error")
	}
	if _, err := Compare(Value{}, Value{}); err == nil {
		t.Error("invalid comparison must error")
	}
}

func TestCompareNaNTotalOrder(t *testing.T) {
	nan := NewFloat(math.NaN())
	one := NewFloat(1)
	if c, _ := Compare(nan, one); c != 1 {
		t.Error("NaN must order after numbers")
	}
	if c, _ := Compare(one, nan); c != -1 {
		t.Error("numbers must order before NaN")
	}
	if c, _ := Compare(nan, nan); c != 0 {
		t.Error("NaN must compare equal to NaN for ordering purposes")
	}
}

func TestEqual(t *testing.T) {
	if !Equal(NewString("a"), NewString("a")) {
		t.Error("equal strings")
	}
	if Equal(NewInt(1), NewFloat(1)) {
		t.Error("cross-kind values are never equal")
	}
}

func TestHash64Stability(t *testing.T) {
	a, b := NewString("Merrie"), NewString("Merrie")
	if a.Hash64() != b.Hash64() {
		t.Error("equal values must hash equal")
	}
	if NewInt(5).Hash64() == NewInstant(5).Hash64() {
		t.Error("kind must participate in the hash")
	}
	if NewString("").Hash64() == NewString("\x00").Hash64() {
		t.Error("distinct strings must (practically) hash distinct")
	}
}

func TestStringRendering(t *testing.T) {
	cases := map[string]Value{
		"42":       NewInt(42),
		"2.5":      NewFloat(2.5),
		"full":     NewString("full"),
		"true":     NewBool(true),
		"12/01/82": NewInstant(temporal.Date(1982, 12, 1)),
		"∞":        NewInstant(temporal.Forever),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%v) = %q, want %q", v.Kind(), got, want)
		}
	}
}

func TestParse(t *testing.T) {
	v, err := Parse(Int, " 42 ")
	if err != nil || v.Int() != 42 {
		t.Errorf("Parse int: %v, %v", v, err)
	}
	v, err = Parse(Float, "2.5")
	if err != nil || v.Float() != 2.5 {
		t.Errorf("Parse float: %v, %v", v, err)
	}
	v, err = Parse(Instant, "12/01/82")
	if err != nil || v.Instant() != temporal.Date(1982, 12, 1) {
		t.Errorf("Parse instant: %v, %v", v, err)
	}
	v, err = Parse(Bool, "true")
	if err != nil || !v.Bool() {
		t.Errorf("Parse bool: %v, %v", v, err)
	}
	if _, err := Parse(Int, "forty"); err == nil {
		t.Error("bad int must error")
	}
	if _, err := Parse(Invalid, "x"); err == nil {
		t.Error("parse into Invalid must error")
	}
}

func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return NewInt(r.Int63() - r.Int63())
	case 1:
		return NewFloat(r.NormFloat64() * 1e6)
	case 2:
		buf := make([]byte, r.Intn(20))
		r.Read(buf)
		return NewString(string(buf))
	case 3:
		return NewBool(r.Intn(2) == 0)
	default:
		return NewInstant(temporal.Chronon(r.Int63n(1 << 40)))
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		v := randomValue(r)
		enc := v.AppendBinary(nil)
		dec, n, err := DecodeBinary(enc)
		if err != nil {
			t.Fatalf("decode(%v): %v", v, err)
		}
		if n != len(enc) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(enc))
		}
		if !Equal(v, dec) {
			t.Fatalf("round trip: %v -> %v", v, dec)
		}
	}
}

func TestBinaryRoundTripConcatenated(t *testing.T) {
	vals := []Value{NewInt(-7), NewString("Merrie"), NewBool(true),
		NewInstant(temporal.Forever), NewFloat(1.25)}
	var buf []byte
	for _, v := range vals {
		buf = v.AppendBinary(buf)
	}
	for _, want := range vals {
		got, n, err := DecodeBinary(buf)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(got, want) {
			t.Fatalf("decoded %v, want %v", got, want)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Errorf("%d trailing bytes", len(buf))
	}
}

func TestDecodeBinaryErrors(t *testing.T) {
	cases := [][]byte{
		nil,                     // empty
		{byte(Float), 1, 2},     // short float
		{byte(String), 0x85},    // corrupt length varint (non-terminated)
		{byte(String), 10, 'a'}, // short string payload
		{200},                   // unknown kind
	}
	for _, src := range cases {
		if _, _, err := DecodeBinary(src); err == nil {
			t.Errorf("DecodeBinary(% x): expected error", src)
		}
	}
}

func TestCompareIsTotalOrderProperty(t *testing.T) {
	f := func(a, b, c int64) bool {
		x, y, z := NewInt(a), NewInt(b), NewInt(c)
		cxy, _ := Compare(x, y)
		cyx, _ := Compare(y, x)
		if cxy != -cyx {
			return false
		}
		// Transitivity on a sample: x<=y and y<=z implies x<=z.
		cyz, _ := Compare(y, z)
		cxz, _ := Compare(x, z)
		if cxy <= 0 && cyz <= 0 && cxz > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
