package value

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary codec for values, used by the write-ahead log and snapshot files in
// internal/wal. Layout: one kind byte, then a kind-specific payload; strings
// are uvarint-length-prefixed UTF-8.

// AppendBinary appends the encoded value to dst and returns the extended
// slice.
func (v Value) AppendBinary(dst []byte) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case Int, Bool, Instant:
		dst = binary.AppendVarint(dst, v.i)
	case Float:
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.f))
	case String:
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	}
	return dst
}

// DecodeBinary decodes one value from the front of src, returning the value
// and the number of bytes consumed.
func DecodeBinary(src []byte) (Value, int, error) {
	if len(src) == 0 {
		return Value{}, 0, fmt.Errorf("value: decoding from empty buffer")
	}
	k := Kind(src[0])
	rest := src[1:]
	switch k {
	case Int, Bool, Instant:
		i, n := binary.Varint(rest)
		if n <= 0 {
			return Value{}, 0, fmt.Errorf("value: corrupt varint payload for %s", k)
		}
		return Value{kind: k, i: i}, 1 + n, nil
	case Float:
		if len(rest) < 8 {
			return Value{}, 0, fmt.Errorf("value: short float payload")
		}
		f := math.Float64frombits(binary.BigEndian.Uint64(rest))
		return NewFloat(f), 9, nil
	case String:
		l, n := binary.Uvarint(rest)
		if n <= 0 {
			return Value{}, 0, fmt.Errorf("value: corrupt string length")
		}
		if uint64(len(rest)-n) < l {
			return Value{}, 0, fmt.Errorf("value: short string payload (want %d bytes)", l)
		}
		return NewString(string(rest[n : n+int(l)])), 1 + n + int(l), nil
	default:
		return Value{}, 0, fmt.Errorf("value: unknown kind byte %d", src[0])
	}
}
