// Package txn provides the transaction machinery above the stores: a
// strictly monotone commit clock (the paper's "non-stop running clock"
// generating transaction time outside user control) and a manager that
// brackets multi-relation updates so they commit or abort atomically.
package txn

import (
	"errors"
	"fmt"
	"sync"

	"tdb/internal/core"
	"tdb/temporal"
)

// ErrStaleTimestamp reports an explicit commit chronon earlier than one
// already issued.
var ErrStaleTimestamp = errors.New("txn: explicit commit time earlier than last commit")

// CommitClock issues strictly increasing commit chronons. Successive calls
// never return the same chronon even if the wall clock has not advanced, so
// every transaction gets a distinct transaction time.
type CommitClock struct {
	mu    sync.Mutex
	clock temporal.Clock
	last  temporal.Chronon
}

// NewCommitClock wraps a time source. A nil clock uses the system clock.
func NewCommitClock(clock temporal.Clock) *CommitClock {
	if clock == nil {
		clock = temporal.SystemClock{}
	}
	return &CommitClock{clock: clock, last: temporal.Beginning}
}

// Next returns the next commit chronon: the current clock reading, bumped
// past the previously issued chronon if the clock has not advanced.
func (c *CommitClock) Next() temporal.Chronon {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock.Now()
	if now <= c.last {
		now = c.last.Next()
	}
	c.last = now
	return now
}

// Observe fixes an externally chosen commit chronon (used when replaying
// dated history, e.g. the paper's figures). It fails if t precedes an
// already issued chronon.
func (c *CommitClock) Observe(t temporal.Chronon) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t < c.last {
		return fmt.Errorf("%w: %v < %v", ErrStaleTimestamp, t, c.last)
	}
	c.last = t
	return nil
}

// Last returns the most recently issued commit chronon.
func (c *CommitClock) Last() temporal.Chronon {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// Manager serializes update transactions over a set of stores and gives
// each one a single commit chronon: "taking effect as soon as it is
// committed" means every change in a transaction carries the same
// transaction time.
type Manager struct {
	mu    sync.Mutex
	clock *CommitClock
}

// NewManager creates a manager around a commit clock.
func NewManager(clock *CommitClock) *Manager {
	return &Manager{clock: clock}
}

// Clock returns the manager's commit clock.
func (m *Manager) Clock() *CommitClock { return m.clock }

// Tx is an open update transaction. The callback receives it to learn the
// commit chronon and to enlist the stores it mutates.
type Tx struct {
	at       temporal.Chronon
	enlisted []core.Transactional
	seen     map[core.Transactional]bool
}

// At returns the transaction's commit chronon; every store mutation in this
// transaction must use it as the transaction time.
func (tx *Tx) At() temporal.Chronon { return tx.at }

// Enlist registers a store the transaction is about to mutate. Enlisting
// the same store twice is harmless. Mutating a store without enlisting it
// forfeits atomicity for that store — the Database facade enlists
// automatically, so only direct users of this package need care.
func (tx *Tx) Enlist(s core.Transactional) {
	if tx.seen[s] {
		return
	}
	tx.seen[s] = true
	s.BeginTxn()
	tx.enlisted = append(tx.enlisted, s)
}

// Update runs fn inside a transaction stamped with the next commit chronon.
// If fn returns an error (or panics), every enlisted store is rolled back
// and the error (or panic) propagates; otherwise all enlisted stores commit.
func (m *Manager) Update(fn func(tx *Tx) error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.run(m.clock.Next(), fn)
}

// UpdateAt is Update with an explicit commit chronon, for replaying dated
// history. The chronon must not precede any previously issued one.
func (m *Manager) UpdateAt(at temporal.Chronon, fn func(tx *Tx) error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.clock.Observe(at); err != nil {
		return err
	}
	return m.run(at, fn)
}

func (m *Manager) run(at temporal.Chronon, fn func(tx *Tx) error) (err error) {
	tx := &Tx{at: at, seen: make(map[core.Transactional]bool)}
	defer func() {
		if p := recover(); p != nil {
			for _, s := range tx.enlisted {
				s.AbortTxn()
			}
			panic(p)
		}
		if err != nil {
			for _, s := range tx.enlisted {
				s.AbortTxn()
			}
			return
		}
		for _, s := range tx.enlisted {
			s.CommitTxn()
		}
	}()
	err = fn(tx)
	return err
}
