package txn

import (
	"errors"
	"sync"
	"testing"

	"tdb/internal/core"
	"tdb/internal/schema"
	"tdb/internal/tuple"
	"tdb/internal/value"
	"tdb/temporal"
)

func facultyStore(t *testing.T) *core.TemporalStore {
	t.Helper()
	s := schema.MustNew(
		schema.Attribute{Name: "name", Type: value.String},
		schema.Attribute{Name: "rank", Type: value.String},
	)
	keyed, err := s.WithKey("name")
	if err != nil {
		t.Fatal(err)
	}
	return core.NewTemporalStore(keyed)
}

func fac(name, rank string) tuple.Tuple {
	return tuple.New(value.NewString(name), value.NewString(rank))
}

func TestCommitClockStrictlyIncreasing(t *testing.T) {
	// A frozen underlying clock still yields distinct chronons.
	c := NewCommitClock(temporal.NewLogicalClock(100))
	a, b, d := c.Next(), c.Next(), c.Next()
	if !(a < b && b < d) {
		t.Fatalf("chronons not strictly increasing: %v %v %v", a, b, d)
	}
	if a != 100 || b != 101 {
		t.Errorf("first chronons = %v, %v", a, b)
	}
	if c.Last() != d {
		t.Errorf("Last = %v, want %v", c.Last(), d)
	}
}

func TestCommitClockFollowsAdvancingClock(t *testing.T) {
	lc := temporal.NewLogicalClock(100)
	c := NewCommitClock(lc)
	if got := c.Next(); got != 100 {
		t.Fatalf("first = %v", got)
	}
	lc.Advance(50)
	if got := c.Next(); got != 150 {
		t.Fatalf("after advance = %v", got)
	}
}

func TestCommitClockObserve(t *testing.T) {
	c := NewCommitClock(temporal.NewLogicalClock(0))
	if err := c.Observe(500); err != nil {
		t.Fatal(err)
	}
	if err := c.Observe(400); !errors.Is(err, ErrStaleTimestamp) {
		t.Fatalf("stale observe: %v", err)
	}
	// Observing the same chronon again is allowed (same-instant commits).
	if err := c.Observe(500); err != nil {
		t.Fatal(err)
	}
}

func TestCommitClockConcurrentDistinct(t *testing.T) {
	c := NewCommitClock(temporal.NewLogicalClock(0))
	const n = 500
	var wg sync.WaitGroup
	out := make([]temporal.Chronon, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = c.Next()
		}(i)
	}
	wg.Wait()
	seen := map[temporal.Chronon]bool{}
	for _, ch := range out {
		if seen[ch] {
			t.Fatalf("duplicate commit chronon %v", ch)
		}
		seen[ch] = true
	}
}

func TestManagerCommitAppliesAll(t *testing.T) {
	m := NewManager(NewCommitClock(temporal.NewLogicalClock(1000)))
	s1, s2 := facultyStore(t), facultyStore(t)
	err := m.Update(func(tx *Tx) error {
		tx.Enlist(s1)
		tx.Enlist(s2)
		if err := s1.Assert(fac("Merrie", "full"), temporal.Since(0), tx.At()); err != nil {
			return err
		}
		return s2.Assert(fac("Tom", "associate"), temporal.Since(0), tx.At())
	})
	if err != nil {
		t.Fatal(err)
	}
	if s1.VersionCount() != 1 || s2.VersionCount() != 1 {
		t.Fatalf("counts = %d, %d", s1.VersionCount(), s2.VersionCount())
	}
	// Both carry the same transaction time.
	var tt1, tt2 temporal.Interval
	s1.Versions(func(v core.Version) bool { tt1 = v.Trans; return true })
	s2.Versions(func(v core.Version) bool { tt2 = v.Trans; return true })
	if tt1 != tt2 {
		t.Errorf("transaction times differ: %v vs %v", tt1, tt2)
	}
}

func TestManagerErrorAbortsAll(t *testing.T) {
	m := NewManager(NewCommitClock(temporal.NewLogicalClock(1000)))
	s1, s2 := facultyStore(t), facultyStore(t)
	sentinel := errors.New("boom")
	err := m.Update(func(tx *Tx) error {
		tx.Enlist(s1)
		tx.Enlist(s2)
		if err := s1.Assert(fac("Merrie", "full"), temporal.Since(0), tx.At()); err != nil {
			return err
		}
		if err := s2.Assert(fac("Tom", "associate"), temporal.Since(0), tx.At()); err != nil {
			return err
		}
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if s1.VersionCount() != 0 || s2.VersionCount() != 0 {
		t.Fatalf("abort left effects: %d, %d", s1.VersionCount(), s2.VersionCount())
	}
	// The store accepts later transactions normally.
	if err := m.Update(func(tx *Tx) error {
		tx.Enlist(s1)
		return s1.Assert(fac("Mike", "assistant"), temporal.Since(0), tx.At())
	}); err != nil {
		t.Fatal(err)
	}
	if s1.VersionCount() != 1 {
		t.Fatalf("post-abort insert: %d", s1.VersionCount())
	}
}

func TestManagerPanicAbortsAndPropagates(t *testing.T) {
	m := NewManager(NewCommitClock(temporal.NewLogicalClock(1000)))
	s := facultyStore(t)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		_ = m.Update(func(tx *Tx) error {
			tx.Enlist(s)
			if err := s.Assert(fac("X", "y"), temporal.Since(0), tx.At()); err != nil {
				return err
			}
			panic("kaboom")
		})
	}()
	if s.VersionCount() != 0 {
		t.Fatalf("panic left effects: %d", s.VersionCount())
	}
}

func TestManagerUpdateAtReplaysDatedHistory(t *testing.T) {
	m := NewManager(NewCommitClock(temporal.NewLogicalClock(0)))
	s := facultyStore(t)
	d1 := temporal.Date(1977, 8, 25)
	d2 := temporal.Date(1982, 12, 15)
	if err := m.UpdateAt(d1, func(tx *Tx) error {
		tx.Enlist(s)
		return s.Assert(fac("Merrie", "associate"), temporal.Since(d1), tx.At())
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.UpdateAt(d2, func(tx *Tx) error {
		tx.Enlist(s)
		return s.Assert(fac("Merrie", "full"), temporal.Since(d2), tx.At())
	}); err != nil {
		t.Fatal(err)
	}
	// Regressing is refused before fn runs.
	called := false
	err := m.UpdateAt(d1, func(tx *Tx) error { called = true; return nil })
	if !errors.Is(err, ErrStaleTimestamp) {
		t.Fatalf("stale UpdateAt: %v", err)
	}
	if called {
		t.Error("callback ran despite stale timestamp")
	}
	if s.VersionCount() != 3 {
		t.Errorf("VersionCount = %d", s.VersionCount())
	}
}

func TestEnlistIdempotent(t *testing.T) {
	m := NewManager(NewCommitClock(temporal.NewLogicalClock(10)))
	s := facultyStore(t)
	err := m.Update(func(tx *Tx) error {
		tx.Enlist(s)
		tx.Enlist(s) // second enlist must not re-begin
		return s.Assert(fac("A", "x"), temporal.Since(0), tx.At())
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentUpdatesSerialize(t *testing.T) {
	m := NewManager(NewCommitClock(temporal.NewLogicalClock(0)))
	s := facultyStore(t)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = m.Update(func(tx *Tx) error {
				tx.Enlist(s)
				return s.Assert(fac("A", "x"), temporal.Since(0), tx.At())
			})
		}(i)
	}
	wg.Wait()
	// Each assertion supersedes the previous one: 50 commits, each adding
	// one version and closing the prior -> 50 versions, 1 current.
	if s.VersionCount() != 50 {
		t.Errorf("VersionCount = %d", s.VersionCount())
	}
	cur := 0
	s.Versions(func(v core.Version) bool {
		if v.Current() {
			cur++
		}
		return true
	})
	if cur != 1 {
		t.Errorf("current versions = %d", cur)
	}
}
