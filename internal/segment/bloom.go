package segment

import "math/bits"

// bloom is a fixed-shape bloom filter over 64-bit key hashes, built once at
// seal time. Key scans (audit trails, history fallbacks) test it before
// walking a segment; a false positive only costs a scan, never correctness.
// Three probes into ~10 bits per key give a false-positive rate around 1%.
type bloom struct {
	bits []uint64
	mask uint64 // len(bits)*64 - 1; sizes are powers of two
}

// newBloom builds a filter sized for the given hashes.
func newBloom(hashes []uint64) bloom {
	n := len(hashes)
	if n == 0 {
		return bloom{}
	}
	// ~10 bits per key, rounded up to a power-of-two word count.
	words := 1
	for words*64 < n*10 {
		words <<= 1
	}
	b := bloom{bits: make([]uint64, words), mask: uint64(words*64 - 1)}
	for _, h := range hashes {
		b.add(h)
	}
	return b
}

// probes derives three bit positions from one 64-bit hash (double hashing:
// h1 + i*h2 with an odd h2 so every probe stride is coprime to the size).
func (b bloom) probes(h uint64) (p1, p2, p3 uint64) {
	h2 := bits.RotateLeft64(h, 31) | 1
	return h & b.mask, (h + h2) & b.mask, (h + 2*h2) & b.mask
}

func (b *bloom) add(h uint64) {
	p1, p2, p3 := b.probes(h)
	b.bits[p1>>6] |= 1 << (p1 & 63)
	b.bits[p2>>6] |= 1 << (p2 & 63)
	b.bits[p3>>6] |= 1 << (p3 & 63)
}

// mayContain reports whether h could be in the set (no false negatives).
func (b bloom) mayContain(h uint64) bool {
	if len(b.bits) == 0 {
		return false
	}
	p1, p2, p3 := b.probes(h)
	return b.bits[p1>>6]&(1<<(p1&63)) != 0 &&
		b.bits[p2>>6]&(1<<(p2&63)) != 0 &&
		b.bits[p3>>6]&(1<<(p3&63)) != 0
}
