package segment

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"tdb/internal/schema"
	"tdb/internal/tuple"
	"tdb/internal/value"
	"tdb/temporal"
)

// Block codec: a sealed segment serializes into one self-delimiting block,
// the unit a checkpoint snapshot (and, eventually, segment-granular
// replication shipping) moves around. The encoding exploits the append-only
// shape of the data:
//
//   - transFrom is non-decreasing in commit order → first value zigzag,
//     then unsigned deltas;
//   - transTo and validTo never precede their From → unsigned distance from
//     From, with 0 reserved for Forever (the common open end);
//   - validFrom is near-sorted in time-series workloads → zigzag deltas
//     between consecutive rows;
//   - string columns ship their dictionary once plus per-row codes;
//   - key hashes ship raw (they are incompressible and recomputing a
//     million key projections at recovery would dominate restore time).
//
// The bloom filter and zone maps are not serialized: both derive from the
// arrays and are rebuilt in one pass at decode.

// AppendBlock appends the encoded segment to dst and returns the result.
func AppendBlock(dst []byte, g *Segment) []byte {
	dst = binary.AppendUvarint(dst, uint64(g.start))
	dst = binary.AppendUvarint(dst, uint64(g.n))

	prev := int64(0)
	for i, v := range g.transFrom {
		if i == 0 {
			dst = appendZigzag(dst, v)
		} else {
			dst = binary.AppendUvarint(dst, uint64(v-prev))
		}
		prev = v
	}
	for i, v := range g.transTo {
		dst = appendOpenEnd(dst, v, g.transFrom[i])
	}
	prev = 0
	for i, v := range g.validFrom {
		if i == 0 {
			dst = appendZigzag(dst, v)
		} else {
			dst = appendZigzag(dst, v-prev)
		}
		prev = v
	}
	for i, v := range g.validTo {
		dst = appendOpenEnd(dst, v, g.validFrom[i])
	}
	for a := range g.cols {
		c := &g.cols[a]
		dst = append(dst, byte(c.kind))
		switch c.kind {
		case value.Float:
			for _, f := range c.fls {
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
			}
		case value.String:
			dst = binary.AppendUvarint(dst, uint64(len(c.dict)))
			for _, s := range c.dict {
				dst = binary.AppendUvarint(dst, uint64(len(s)))
				dst = append(dst, s...)
			}
			for _, code := range c.code {
				dst = binary.AppendUvarint(dst, uint64(code))
			}
		default:
			for _, v := range c.ints {
				dst = appendZigzag(dst, v)
			}
		}
	}
	for _, h := range g.keyHash {
		dst = binary.LittleEndian.AppendUint64(dst, h)
	}
	return dst
}

// DecodeBlock decodes one segment block from the front of src, returning
// the segment and the bytes consumed. The segment's zone maps, current
// count and bloom filter are rebuilt from the decoded arrays.
func DecodeBlock(src []byte, sch *schema.Schema) (*Segment, int, error) {
	off := 0
	start, n, err := readUvarint(src, &off)
	if err != nil {
		return nil, 0, fmt.Errorf("segment: block start: %w", err)
	}
	rows, _, err := readUvarint(src, &off)
	if err != nil {
		return nil, 0, fmt.Errorf("segment: block length: %w", err)
	}
	_ = n
	if rows == 0 || rows > uint64(len(src)) {
		return nil, 0, fmt.Errorf("segment: implausible block of %d rows", rows)
	}
	g := &Segment{
		sch:       sch,
		start:     int(start),
		n:         int(rows),
		transFrom: make([]int64, rows),
		transTo:   make([]int64, rows),
		validFrom: make([]int64, rows),
		validTo:   make([]int64, rows),
		keyHash:   make([]uint64, rows),
	}
	prev := int64(0)
	for i := range g.transFrom {
		if i == 0 {
			if prev, err = readZigzag(src, &off); err != nil {
				return nil, 0, fmt.Errorf("segment: transFrom: %w", err)
			}
		} else {
			d, _, err := readUvarint(src, &off)
			if err != nil {
				return nil, 0, fmt.Errorf("segment: transFrom delta: %w", err)
			}
			prev += int64(d)
		}
		g.transFrom[i] = prev
	}
	for i := range g.transTo {
		if g.transTo[i], err = readOpenEnd(src, &off, g.transFrom[i]); err != nil {
			return nil, 0, fmt.Errorf("segment: transTo: %w", err)
		}
	}
	prev = 0
	for i := range g.validFrom {
		d, err := readZigzag(src, &off)
		if err != nil {
			return nil, 0, fmt.Errorf("segment: validFrom: %w", err)
		}
		if i == 0 {
			prev = d
		} else {
			prev += d
		}
		g.validFrom[i] = prev
	}
	for i := range g.validTo {
		if g.validTo[i], err = readOpenEnd(src, &off, g.validFrom[i]); err != nil {
			return nil, 0, fmt.Errorf("segment: validTo: %w", err)
		}
	}
	g.cols = make([]column, sch.Arity())
	for a := range g.cols {
		if off >= len(src) {
			return nil, 0, fmt.Errorf("segment: column %d: short block", a)
		}
		kind := value.Kind(src[off])
		off++
		if want := sch.Attr(a).Type; kind != want {
			return nil, 0, fmt.Errorf("segment: column %d is %s, schema wants %s", a, kind, want)
		}
		c := &g.cols[a]
		c.kind = kind
		switch kind {
		case value.Float:
			c.fls = make([]float64, rows)
			for i := range c.fls {
				if off+8 > len(src) {
					return nil, 0, fmt.Errorf("segment: column %d: short float", a)
				}
				c.fls[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[off:]))
				off += 8
			}
		case value.String:
			dictLen, _, err := readUvarint(src, &off)
			if err != nil {
				return nil, 0, fmt.Errorf("segment: column %d dict: %w", a, err)
			}
			if dictLen > uint64(len(src)) {
				return nil, 0, fmt.Errorf("segment: column %d: implausible dict of %d", a, dictLen)
			}
			c.dict = make([]string, dictLen)
			for d := range c.dict {
				slen, _, err := readUvarint(src, &off)
				if err != nil || off+int(slen) > len(src) {
					return nil, 0, fmt.Errorf("segment: column %d dict entry: short block", a)
				}
				c.dict[d] = string(src[off : off+int(slen)])
				off += int(slen)
			}
			c.code = make([]uint32, rows)
			for i := range c.code {
				code, _, err := readUvarint(src, &off)
				if err != nil {
					return nil, 0, fmt.Errorf("segment: column %d code: %w", a, err)
				}
				if code >= dictLen {
					return nil, 0, fmt.Errorf("segment: column %d code %d outside dict of %d", a, code, dictLen)
				}
				c.code[i] = uint32(code)
			}
		default:
			c.ints = make([]int64, rows)
			for i := range c.ints {
				if c.ints[i], err = readZigzag(src, &off); err != nil {
					return nil, 0, fmt.Errorf("segment: column %d: %w", a, err)
				}
			}
		}
	}
	for i := range g.keyHash {
		if off+8 > len(src) {
			return nil, 0, fmt.Errorf("segment: short key hashes")
		}
		g.keyHash[i] = binary.LittleEndian.Uint64(src[off:])
		off += 8
	}
	g.rebuildSummaries()
	return g, off, nil
}

// rebuildSummaries recomputes everything derivable from the arrays: time
// zone maps, current count, attribute zones, and the key bloom filter.
func (g *Segment) rebuildSummaries() {
	g.mat = make([]atomic.Pointer[tuple.Tuple], g.n)
	g.minTransFrom, g.maxTransFrom = math.MaxInt64, math.MinInt64
	g.maxClosedTo = math.MinInt64
	g.minValidFrom, g.maxValidTo = math.MaxInt64, math.MinInt64
	g.current = 0
	forever := int64(temporal.Forever)
	for i := 0; i < g.n; i++ {
		g.minTransFrom = min64(g.minTransFrom, g.transFrom[i])
		g.maxTransFrom = max64(g.maxTransFrom, g.transFrom[i])
		if g.transTo[i] == forever {
			g.current++
		} else {
			g.maxClosedTo = max64(g.maxClosedTo, g.transTo[i])
		}
		g.minValidFrom = min64(g.minValidFrom, g.validFrom[i])
		g.maxValidTo = max64(g.maxValidTo, g.validTo[i])
	}
	g.bloom = newBloom(g.keyHash)
	g.buildAttrZones()
}

// appendOpenEnd encodes an interval end relative to its start: 0 for the
// open end Forever, otherwise 1 + the unsigned distance from the start.
func appendOpenEnd(dst []byte, to, from int64) []byte {
	if to == int64(temporal.Forever) {
		return binary.AppendUvarint(dst, 0)
	}
	return binary.AppendUvarint(dst, uint64(to-from)+1)
}

func readOpenEnd(src []byte, off *int, from int64) (int64, error) {
	d, _, err := readUvarint(src, off)
	if err != nil {
		return 0, err
	}
	if d == 0 {
		return int64(temporal.Forever), nil
	}
	return from + int64(d-1), nil
}

func appendZigzag(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, uint64(v<<1)^uint64(v>>63))
}

func readZigzag(src []byte, off *int) (int64, error) {
	u, _, err := readUvarint(src, off)
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

func readUvarint(src []byte, off *int) (uint64, int, error) {
	v, n := binary.Uvarint(src[*off:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("truncated varint")
	}
	*off += n
	return v, n, nil
}
