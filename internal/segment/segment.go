// Package segment implements immutable, time-partitioned columnar storage
// for the append-only store kinds (static rollback and temporal). Committed
// history never changes — "each transaction causes a new historical state to
// be created" — so once a run of versions is no longer the mutable tail of a
// relation it can be frozen into a Segment: per-attribute columnar arrays
// (dictionary-encoded strings, raw int64/float64 otherwise) plus per-segment
// zone maps over transaction time, valid time and every attribute, and a
// bloom filter over key hashes.
//
// Zone maps are what make big scans cheap: an as-of or overlap query
// consults four int64s per segment before touching any tuple, skipping whole
// segments whose time bounds cannot contain a match. The one mutation the
// taxonomy permits on committed data — closing a current version's
// transaction-time end when it is superseded — is supported in place
// (transTo is the single mutable column) and only ever shrinks a zone map's
// reach, so pruning stays sound without rebuilding anything.
//
// A Segment is created by Log.Seal from the mutable row-format tail, or
// reloaded verbatim from a checkpoint block (see encode.go). Sealing
// re-encodes bytes, it does not change them: TestSealPreservesRows proves
// the row images before and after a seal are identical.
package segment

import (
	"fmt"
	"math"
	"sync/atomic"

	"tdb/internal/schema"
	"tdb/internal/tuple"
	"tdb/internal/value"
	"tdb/temporal"
)

// Row is one stored version in commit order: the tuple, its two time
// periods, and the hash of its key projection (kept alongside so sealing
// and key scans never re-project).
type Row struct {
	Data    tuple.Tuple
	Valid   temporal.Interval
	Trans   temporal.Interval
	KeyHash uint64
}

// column is one attribute's storage inside a sealed segment.
type column struct {
	kind value.Kind
	ints []int64   // Int, Bool (0/1), Instant payloads
	fls  []float64 // Float payloads
	dict []string  // String dictionary, first-seen order
	code []uint32  // String dictionary codes, one per row
}

// Segment is an immutable columnar run of versions. All fields except
// transTo (and the zone-map summaries derived from it) are frozen at seal
// time. Concurrency follows the stores' discipline: the owning database
// serializes mutations (CloseTrans) behind its write lock, and readers share
// its read lock.
type Segment struct {
	sch   *schema.Schema
	start int // global position of the first row
	n     int

	transFrom []int64
	transTo   []int64 // the one mutable column: closures of superseded versions
	validFrom []int64
	validTo   []int64
	cols      []column
	keyHash   []uint64
	bloom     bloom

	// mat lazily caches materialized tuples, one slot per row, so repeated
	// scans over the same history decode each row's columns at most once.
	// The columns stay the source of truth; a cached tuple is immutable and
	// identical to what materialize would rebuild, so racing fills are
	// benign and the atomic store keeps them race-detector-clean. Worst
	// case (every row touched) this grows to the row-format footprint the
	// flat store would have held anyway, on top of the columns.
	mat []atomic.Pointer[tuple.Tuple]

	// Zone maps. minTransFrom/maxTransFrom bound the commit span (frozen:
	// transFrom never changes). maxTransTo is Forever while any version is
	// current, else the largest closed end; closures keep it exact enough to
	// prune fully-superseded segments.
	minTransFrom int64
	maxTransFrom int64
	maxClosedTo  int64
	current      int // versions with transTo == Forever
	minValidFrom int64
	maxValidTo   int64
	attrMin      []value.Value // per-attribute minima (Invalid when untracked)
	attrMax      []value.Value
}

// Start returns the global position of the segment's first row.
func (g *Segment) Start() int { return g.start }

// Len returns the number of rows in the segment.
func (g *Segment) Len() int { return g.n }

// Current returns the number of rows whose transaction period is open.
func (g *Segment) Current() int { return g.current }

// seal builds a segment from rows, which become positions start..start+len.
func seal(sch *schema.Schema, start int, rows []Row) *Segment {
	g := &Segment{
		sch:          sch,
		start:        start,
		n:            len(rows),
		transFrom:    make([]int64, len(rows)),
		transTo:      make([]int64, len(rows)),
		validFrom:    make([]int64, len(rows)),
		validTo:      make([]int64, len(rows)),
		keyHash:      make([]uint64, len(rows)),
		mat:          make([]atomic.Pointer[tuple.Tuple], len(rows)),
		minTransFrom: math.MaxInt64,
		maxTransFrom: math.MinInt64,
		maxClosedTo:  math.MinInt64,
		minValidFrom: math.MaxInt64,
		maxValidTo:   math.MinInt64,
	}
	g.cols = make([]column, sch.Arity())
	for a := range g.cols {
		g.cols[a].kind = sch.Attr(a).Type
		switch g.cols[a].kind {
		case value.Float:
			g.cols[a].fls = make([]float64, len(rows))
		case value.String:
			g.cols[a].code = make([]uint32, len(rows))
		default:
			g.cols[a].ints = make([]int64, len(rows))
		}
	}
	dicts := make([]map[string]uint32, sch.Arity())
	for i, r := range rows {
		g.transFrom[i] = int64(r.Trans.From)
		g.transTo[i] = int64(r.Trans.To)
		g.validFrom[i] = int64(r.Valid.From)
		g.validTo[i] = int64(r.Valid.To)
		g.keyHash[i] = r.KeyHash
		if r.Trans.To == temporal.Forever {
			g.current++
		} else if int64(r.Trans.To) > g.maxClosedTo {
			g.maxClosedTo = int64(r.Trans.To)
		}
		g.minTransFrom = min64(g.minTransFrom, int64(r.Trans.From))
		g.maxTransFrom = max64(g.maxTransFrom, int64(r.Trans.From))
		g.minValidFrom = min64(g.minValidFrom, int64(r.Valid.From))
		g.maxValidTo = max64(g.maxValidTo, int64(r.Valid.To))
		for a := range g.cols {
			v := r.Data[a]
			switch g.cols[a].kind {
			case value.Float:
				g.cols[a].fls[i] = v.Float()
			case value.String:
				if dicts[a] == nil {
					dicts[a] = make(map[string]uint32)
				}
				s := v.Str()
				code, ok := dicts[a][s]
				if !ok {
					code = uint32(len(g.cols[a].dict))
					g.cols[a].dict = append(g.cols[a].dict, s)
					dicts[a][s] = code
				}
				g.cols[a].code[i] = code
			case value.Bool:
				if v.Bool() {
					g.cols[a].ints[i] = 1
				}
			case value.Instant:
				g.cols[a].ints[i] = int64(v.Instant())
			default: // Int
				g.cols[a].ints[i] = v.Int()
			}
		}
	}
	g.bloom = newBloom(g.keyHash)
	g.buildAttrZones()
	return g
}

// buildAttrZones computes the per-attribute min/max zone maps from the
// frozen columns (called at seal and after a block decode).
func (g *Segment) buildAttrZones() {
	g.attrMin = make([]value.Value, len(g.cols))
	g.attrMax = make([]value.Value, len(g.cols))
	if g.n == 0 {
		return
	}
	for a, c := range g.cols {
		switch c.kind {
		case value.Float:
			// Any NaN leaves the zone untracked (Invalid bounds): NaN sorts
			// after every float in value.Compare's total order, so min/max of
			// the non-NaN values would under-approximate the column's reach
			// and an ordered filter could wrongly skip the segment.
			lo, hi := c.fls[0], c.fls[0]
			nan := false
			for _, f := range c.fls {
				if math.IsNaN(f) {
					nan = true
					break
				}
				if f < lo {
					lo = f
				}
				if f > hi {
					hi = f
				}
			}
			if !nan {
				g.attrMin[a], g.attrMax[a] = value.NewFloat(lo), value.NewFloat(hi)
			}
		case value.String:
			if len(c.dict) == 0 {
				continue
			}
			lo, hi := c.dict[0], c.dict[0]
			for _, s := range c.dict[1:] {
				if s < lo {
					lo = s
				}
				if s > hi {
					hi = s
				}
			}
			g.attrMin[a], g.attrMax[a] = value.NewString(lo), value.NewString(hi)
		default:
			lo, hi := c.ints[0], c.ints[0]
			for _, v := range c.ints[1:] {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			switch c.kind {
			case value.Instant:
				g.attrMin[a] = value.NewInstant(temporal.Chronon(lo))
				g.attrMax[a] = value.NewInstant(temporal.Chronon(hi))
			case value.Bool:
				g.attrMin[a] = value.NewBool(lo != 0)
				g.attrMax[a] = value.NewBool(hi != 0)
			default:
				g.attrMin[a] = value.NewInt(lo)
				g.attrMax[a] = value.NewInt(hi)
			}
		}
	}
}

// AttrZone returns the segment's min/max zone for attribute a. Invalid
// values mean the bound is untracked (e.g. a NaN-bearing float column) and
// the caller must not prune on it.
func (g *Segment) AttrZone(a int) (lo, hi value.Value) {
	return g.attrMin[a], g.attrMax[a]
}

// maxTransTo returns the largest transaction-time end in the segment:
// Forever while any version is still current.
func (g *Segment) maxTransTo() int64 {
	if g.current > 0 {
		return int64(temporal.Forever)
	}
	return g.maxClosedTo
}

// row materializes row i (0-based within the segment). Strings share the
// dictionary's backing; no payload bytes are copied.
func (g *Segment) row(i int) Row {
	return Row{
		Data:    g.materialize(i),
		Valid:   temporal.Interval{From: temporal.Chronon(g.validFrom[i]), To: temporal.Chronon(g.validTo[i])},
		Trans:   temporal.Interval{From: temporal.Chronon(g.transFrom[i]), To: temporal.Chronon(g.transTo[i])},
		KeyHash: g.keyHash[i],
	}
}

func (g *Segment) materialize(i int) tuple.Tuple {
	if p := g.mat[i].Load(); p != nil {
		return *p
	}
	t := make(tuple.Tuple, len(g.cols))
	for a := range g.cols {
		switch g.cols[a].kind {
		case value.Float:
			t[a] = value.NewFloat(g.cols[a].fls[i])
		case value.String:
			t[a] = value.NewString(g.cols[a].dict[g.cols[a].code[i]])
		case value.Bool:
			t[a] = value.NewBool(g.cols[a].ints[i] != 0)
		case value.Instant:
			t[a] = value.NewInstant(temporal.Chronon(g.cols[a].ints[i]))
		default:
			t[a] = value.NewInt(g.cols[a].ints[i])
		}
	}
	g.mat[i].Store(&t)
	return t
}

// Each materializes every row in order, stopping early on false. Recovery
// uses it to flatten a decoded block when the segment path is disabled.
func (g *Segment) Each(fn func(Row) bool) {
	for i := 0; i < g.n; i++ {
		if !fn(g.row(i)) {
			return
		}
	}
}

// closeTrans sets row i's transaction-time end (the one permitted mutation:
// superseding a current version) and maintains the zone map. undo is done by
// calling it again with the prior end.
func (g *Segment) closeTrans(i int, to temporal.Chronon) {
	was := temporal.Chronon(g.transTo[i])
	g.transTo[i] = int64(to)
	if was == temporal.Forever && to != temporal.Forever {
		g.current--
		g.maxClosedTo = max64(g.maxClosedTo, int64(to))
	} else if was != temporal.Forever && to == temporal.Forever {
		// Transaction abort restoring a closure. maxClosedTo keeps the stale
		// bound — zone maps may only over-approximate, never under.
		g.current++
	} else if to != temporal.Forever {
		g.maxClosedTo = max64(g.maxClosedTo, int64(to))
	}
}

// pruneAsOf reports whether no row in the segment can be current as of t:
// every row was asserted after t, or every row was superseded by t.
func (g *Segment) pruneAsOf(t temporal.Chronon) bool {
	return g.minTransFrom > int64(t) || int64(t) >= g.maxTransTo()
}

// pruneValid reports whether no row's valid period can overlap q.
func (g *Segment) pruneValid(q temporal.Interval) bool {
	return int64(q.To) <= g.minValidFrom || int64(q.From) >= g.maxValidTo
}

// pruneTransWindow reports whether no row's transaction period can overlap
// the window.
func (g *Segment) pruneTransWindow(w temporal.Interval) bool {
	return int64(w.To) <= g.minTransFrom || int64(w.From) >= g.maxTransTo()
}

// Op is a Filter's comparison operator.
type Op uint8

const (
	OpEq Op = iota
	OpLt
	OpLe
	OpGt
	OpGe
)

// match reports whether row i's attribute a satisfies the pre-resolved
// filter; see Filter.
func (f *Filter) match(g *Segment, i int) bool {
	c := &g.cols[f.Attr]
	switch c.kind {
	case value.Float:
		return cmpOK(f.Op, cmpFloat(c.fls[i], f.f))
	case value.String:
		return c.code[i] == f.code // strings are equality-only
	default:
		return cmpOK(f.Op, cmpInt(c.ints[i], f.i))
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// cmpFloat mirrors value.Compare's total float order: NaN sorts after every
// non-NaN. The constructor rejects NaN constants, so b is never NaN and a NaN
// row value always compares greater — exactly what the evaluator computes.
func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case a == b:
		return 0
	}
	return 1 // a is NaN
}

// cmpOK maps a three-way comparison (row value vs filter constant) to the
// filter's operator.
func cmpOK(op Op, c int) bool {
	switch op {
	case OpEq:
		return c == 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	default: // OpGe
		return c >= 0
	}
}

// Filter is a single-attribute comparison pre-filter (attr OP constant)
// evaluated directly on a segment's columns before any tuple is
// materialized. It is an acceleration only: callers keep the originating
// conjunct and re-verify it on the materialized row, so a Filter can never
// change an answer — only shrink the set of rows materialized. Build one
// with NewEqFilter or NewCmpFilter.
type Filter struct {
	Attr int
	Op   Op
	val  value.Value
	i    int64
	f    float64

	// per-segment resolution for dictionary columns
	code  uint32
	skip  bool // value absent from this segment's dictionary / zone
	fresh *Segment
}

// NewEqFilter builds an equality filter on attribute attr of sch. It returns
// ok=false when the value's kind does not exactly match the attribute's
// declared kind — coercing comparisons (int against float) stay with the
// expression evaluator.
func NewEqFilter(sch *schema.Schema, attr int, v value.Value) (*Filter, bool) {
	return NewCmpFilter(sch, attr, OpEq, v)
}

// NewCmpFilter builds a comparison filter attr OP v. Ordered operators are
// limited to Int, Instant and Float columns: string dictionaries are stored
// in first-seen order so codes cannot be range-compared, and ordering booleans
// is evaluator business. Exact-kind matching as with NewEqFilter.
func NewCmpFilter(sch *schema.Schema, attr int, op Op, v value.Value) (*Filter, bool) {
	if attr < 0 || attr >= sch.Arity() || sch.Attr(attr).Type != v.Kind() {
		return nil, false
	}
	f := &Filter{Attr: attr, Op: op, val: v}
	switch v.Kind() {
	case value.Float:
		f.f = v.Float()
		if math.IsNaN(f.f) {
			return nil, false // NaN comparisons are evaluator business
		}
	case value.String:
		if op != OpEq {
			return nil, false
		}
	case value.Bool:
		if op != OpEq {
			return nil, false
		}
		if v.Bool() {
			f.i = 1
		}
	case value.Instant:
		f.i = int64(v.Instant())
	case value.Int:
		f.i = v.Int()
	default:
		return nil, false
	}
	return f, true
}

// resolve binds the filter to a segment: zone-map check plus dictionary
// lookup for string columns. Returns false when the whole segment can be
// skipped for this filter.
func (f *Filter) resolve(g *Segment) bool {
	if f.fresh != g {
		f.fresh = g
		f.skip = false
		lo, hi := g.AttrZone(f.Attr)
		if lo.IsValid() && hi.IsValid() {
			cl, errl := value.Compare(f.val, lo) // filter constant vs zone min
			ch, errh := value.Compare(f.val, hi) // filter constant vs zone max
			switch f.Op {
			case OpEq:
				if (errl == nil && cl < 0) || (errh == nil && ch > 0) {
					f.skip = true // constant outside [min,max]
				}
			case OpLt:
				if errl == nil && cl <= 0 {
					f.skip = true // min >= constant: no row is below it
				}
			case OpLe:
				if errl == nil && cl < 0 {
					f.skip = true // min > constant
				}
			case OpGt:
				if errh == nil && ch >= 0 {
					f.skip = true // max <= constant: no row is above it
				}
			case OpGe:
				if errh == nil && ch > 0 {
					f.skip = true // max < constant
				}
			}
		}
		if !f.skip && g.cols[f.Attr].kind == value.String {
			f.skip = true
			want := f.val.Str()
			for code, s := range g.cols[f.Attr].dict {
				if s == want {
					f.code = uint32(code)
					f.skip = false
					break
				}
			}
		}
	}
	return !f.skip
}

// Match evaluates the filter against a materialized row (the tail path,
// where no columns exist). Same exact-kind semantics as the columnar path.
func (f *Filter) Match(t tuple.Tuple) bool {
	if f.Op == OpEq {
		return value.Equal(t[f.Attr], f.val)
	}
	c, err := value.Compare(t[f.Attr], f.val)
	if err != nil {
		return true // incomparable: defer to the evaluator
	}
	return cmpOK(f.Op, c)
}

// Stats summarizes a log's segmentation for Stats()/statz.
type Stats struct {
	Segments   int // sealed segments resident
	SealedRows int // rows inside sealed segments
	TailRows   int // rows still in the mutable tail
}

func (s Stats) String() string {
	return fmt.Sprintf("segments=%d sealed=%d tail=%d", s.Segments, s.SealedRows, s.TailRows)
}

func min64(a, b int64) int64 {
	if b < a {
		return b
	}
	return a
}

func max64(a, b int64) int64 {
	if b > a {
		return b
	}
	return a
}
