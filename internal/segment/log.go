package segment

import (
	"fmt"
	"sort"

	"tdb/internal/config"
	"tdb/internal/schema"
	"tdb/temporal"
)

// DefaultSealRows is the tail size at which a commit seals the tail into a
// columnar segment, unless TDB_SEGMENT_ROWS or SetSealRows chooses another
// threshold. Relations that never reach it (the paper's figures, most unit
// fixtures) live entirely in the row-format tail and take exactly the
// pre-segment code paths.
const DefaultSealRows = 8192

// Log is the storage behind an append-only store: a run of immutable,
// columnar sealed segments followed by a mutable row-format tail. Global
// positions are stable for the life of the log — position p is row p in
// commit order whether it currently lives in the tail or a segment — so the
// stores' key and interval indexes keep working across seals unchanged.
//
// Sealing happens only between transactions (the stores call Seal from
// CommitTxn, never mid-journal), so transaction aborts only ever pop tail
// rows: an aborted transaction cannot leak rows into — or tear rows out of —
// a sealed segment.
type Log struct {
	sch      *schema.Schema
	segs     []*Segment
	sealed   int // rows covered by segs
	tail     []Row
	sealRows int
	disabled bool // never seal; scans take the flat path
}

// NewLog creates an empty log for relations of the given schema, honoring
// the TDB_DISABLE_SEGMENTS and TDB_SEGMENT_ROWS environment ablation knobs
// (read here, at relation creation, through the config registry).
func NewLog(sch *schema.Schema) *Log {
	return &Log{
		sch:      sch,
		sealRows: config.PosInt(config.EnvSegmentRows, DefaultSealRows),
		disabled: config.Bool(config.EnvDisableSegments),
	}
}

// Len returns the total number of rows, sealed and tail.
func (l *Log) Len() int { return l.sealed + len(l.tail) }

// Sealed returns the number of rows inside sealed segments.
func (l *Log) Sealed() int { return l.sealed }

// Segments returns the sealed segments in position order. Callers must not
// mutate the slice.
func (l *Log) Segments() []*Segment { return l.segs }

// Stats summarizes the log's segmentation.
func (l *Log) Stats() Stats {
	return Stats{Segments: len(l.segs), SealedRows: l.sealed, TailRows: len(l.tail)}
}

// SetDisabled switches sealing off (the flat-slice ablation): future commits
// keep everything in the tail and scans over any already-sealed segments
// take the linear, zone-map-free path. Re-enabling resumes sealing.
func (l *Log) SetDisabled(disabled bool) { l.disabled = disabled }

// Disabled reports whether the segment path is switched off.
func (l *Log) Disabled() bool { return l.disabled }

// SetSealRows sets the tail size that triggers a seal at the next commit.
// Values below 1 restore the default.
func (l *Log) SetSealRows(n int) {
	if n < 1 {
		n = DefaultSealRows
	}
	l.sealRows = n
}

// segmented reports whether scans should take the zone-mapped segment path.
func (l *Log) segmented() bool { return !l.disabled && len(l.segs) > 0 }

// Append adds a row at the next global position (tail) and returns that
// position.
func (l *Log) Append(r Row) int {
	l.tail = append(l.tail, r)
	return l.Len() - 1
}

// TruncateTail drops every row at position n and above. It is the abort
// path's inverse of Append and panics if asked to cut into sealed history —
// sealing is fenced to commit boundaries precisely so this cannot happen.
func (l *Log) TruncateTail(n int) {
	if n < l.sealed {
		panic(fmt.Sprintf("segment: truncate to %d would tear sealed history (%d rows sealed)", n, l.sealed))
	}
	l.tail = l.tail[:n-l.sealed]
}

// Seal freezes the tail into a columnar segment when it has reached the
// seal threshold, returning whether a segment was created. The stores call
// it at commit (and after a checkpoint restore); it is a no-op while the
// log is disabled or the tail is short.
func (l *Log) Seal() bool {
	if l.disabled || len(l.tail) < l.sealRows {
		return false
	}
	return l.sealNow()
}

// SealNow freezes a non-empty tail regardless of the threshold (benchmarks
// and tests shaping exact segment layouts).
func (l *Log) SealNow() bool {
	if l.disabled || len(l.tail) == 0 {
		return false
	}
	return l.sealNow()
}

func (l *Log) sealNow() bool {
	g := seal(l.sch, l.sealed, l.tail)
	l.segs = append(l.segs, g)
	l.sealed += len(l.tail)
	l.tail = nil
	mSeals.Inc()
	mSealedRows.Add(uint64(g.Len()))
	return true
}

// RestoreSegment reattaches a decoded segment at the next global position.
// It fails unless the log's tail is empty and the segment's start matches —
// checkpoint blocks arrive in position order before any tail versions.
func (l *Log) RestoreSegment(g *Segment) error {
	if len(l.tail) != 0 {
		return fmt.Errorf("segment: restore after %d tail rows", len(l.tail))
	}
	if g.start != l.sealed {
		return fmt.Errorf("segment: restore block at %d, log is at %d", g.start, l.sealed)
	}
	l.segs = append(l.segs, g)
	l.sealed += g.n
	return nil
}

// locate resolves a global position to its segment, or nil for tail rows.
// Segments have uniform size except possibly the last (threshold changes),
// so a short backward walk finds the owner; logs have few segments.
func (l *Log) locate(pos int) (*Segment, int) {
	if pos >= l.sealed {
		return nil, pos - l.sealed
	}
	// Binary search over segment starts.
	lo, hi := 0, len(l.segs)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if l.segs[mid].start <= pos {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return l.segs[lo], pos - l.segs[lo].start
}

// Row materializes the row at global position pos.
func (l *Log) Row(pos int) Row {
	if g, i := l.locate(pos); g != nil {
		return g.row(i)
	} else {
		return l.tail[i]
	}
}

// Trans returns the transaction period at pos without materializing data.
func (l *Log) Trans(pos int) temporal.Interval {
	if g, i := l.locate(pos); g != nil {
		return temporal.Interval{From: temporal.Chronon(g.transFrom[i]), To: temporal.Chronon(g.transTo[i])}
	} else {
		return l.tail[i].Trans
	}
}

// KeyHash returns the key hash at pos without materializing data.
func (l *Log) KeyHash(pos int) uint64 {
	if g, i := l.locate(pos); g != nil {
		return g.keyHash[i]
	} else {
		return l.tail[i].KeyHash
	}
}

// ScanTail calls fn for the rows not yet sealed, in commit order. Checkpoint
// encoders pair it with Segments() to cover the whole log.
func (l *Log) ScanTail(fn func(pos int, r Row) bool) {
	for i := range l.tail {
		if !fn(l.sealed+i, l.tail[i]) {
			return
		}
	}
}

// CloseTrans sets the transaction-time end of the row at pos — superseding a
// current version, or (with Forever) a transaction abort undoing that.
func (l *Log) CloseTrans(pos int, to temporal.Chronon) {
	if g, i := l.locate(pos); g != nil {
		g.closeTrans(i, to)
	} else {
		l.tail[i].Trans.To = to
	}
}

// Scan calls fn for every row in commit order, stopping early on false.
func (l *Log) Scan(fn func(pos int, r Row) bool) {
	for _, g := range l.segs {
		for i := 0; i < g.n; i++ {
			if !fn(g.start+i, g.row(i)) {
				return
			}
		}
	}
	for i := range l.tail {
		if !fn(l.sealed+i, l.tail[i]) {
			return
		}
	}
}

// ScanAsOf calls fn, in commit order, for every row whose transaction
// period contains t. With segments enabled, whole segments are skipped via
// the transaction-time zone maps and survivors are tested column-at-a-time
// before any tuple is materialized; the tail is always tested row-wise.
// Optional filters are evaluated on the columns (and against the attribute
// zone maps) before materialization, like ScanWhen's.
func (l *Log) ScanAsOf(t temporal.Chronon, filters []*Filter, fn func(pos int, r Row) bool) {
	if l.segmented() {
		ti := int64(t)
		for _, g := range l.segs {
			// Commit order makes transFrom globally non-decreasing: once a
			// segment starts after t, no later row anywhere (including the
			// tail) can be visible as of t.
			if g.minTransFrom > ti {
				mSegmentsPruned.Inc()
				return
			}
			if g.pruneAsOf(t) {
				mSegmentsPruned.Inc()
				continue
			}
			if !resolveAll(filters, g) {
				mSegmentsPruned.Inc()
				continue
			}
			mSegmentsScanned.Inc()
			// Binary-search the upper cut inside the segment: rows past it
			// were asserted after t and cannot match.
			hi := sort.Search(g.n, func(i int) bool { return g.transFrom[i] > ti })
			for i := 0; i < hi; i++ {
				if ti < g.transTo[i] && matchAll(filters, g, i) {
					if !fn(g.start+i, g.row(i)) {
						return
					}
				}
			}
			if hi < g.n {
				return
			}
		}
	} else {
		for _, g := range l.segs {
			for i := 0; i < g.n; i++ {
				if g.transFrom[i] <= int64(t) && int64(t) < g.transTo[i] {
					r := g.row(i)
					if matchAllRow(filters, r) {
						if !fn(g.start+i, r) {
							return
						}
					}
				}
			}
		}
	}
	for i := range l.tail {
		if l.segmented() && l.tail[i].Trans.From > t {
			return
		}
		if l.tail[i].Trans.Contains(t) && matchAllRow(filters, l.tail[i]) {
			if !fn(l.sealed+i, l.tail[i]) {
				return
			}
		}
	}
}

// ScanWhen calls fn, in commit order, for every row current as of asOf whose
// valid period overlaps q — the fused bitemporal scan behind TQuel's
// combined when + as-of queries. Segments are pruned on both time axes, and
// optional equality filters are evaluated on the columns (and re-checked
// against the segment's attribute zone maps) before materialization.
func (l *Log) ScanWhen(q temporal.Interval, asOf temporal.Chronon, filters []*Filter, fn func(pos int, r Row) bool) {
	if q.IsEmpty() {
		return
	}
	if l.segmented() {
		ti, qf, qt := int64(asOf), int64(q.From), int64(q.To)
		for _, g := range l.segs {
			// Commit order: a segment starting after asOf ends the scan.
			if g.minTransFrom > ti {
				mSegmentsPruned.Inc()
				return
			}
			if g.pruneAsOf(asOf) || g.pruneValid(q) {
				mSegmentsPruned.Inc()
				continue
			}
			if !resolveAll(filters, g) {
				mSegmentsPruned.Inc()
				continue
			}
			mSegmentsScanned.Inc()
			hi := sort.Search(g.n, func(i int) bool { return g.transFrom[i] > ti })
			for i := 0; i < hi; i++ {
				if ti >= g.transTo[i] {
					continue
				}
				if g.validFrom[i] >= qt || qf >= g.validTo[i] {
					continue
				}
				if !matchAll(filters, g, i) {
					continue
				}
				if !fn(g.start+i, g.row(i)) {
					return
				}
			}
			if hi < g.n {
				return
			}
		}
	} else {
		for _, g := range l.segs {
			for i := 0; i < g.n; i++ {
				r := g.row(i)
				if r.Trans.Contains(asOf) && r.Valid.Overlaps(q) && matchAllRow(filters, r) {
					if !fn(g.start+i, r) {
						return
					}
				}
			}
		}
	}
	for i := range l.tail {
		r := l.tail[i]
		if l.segmented() && r.Trans.From > asOf {
			return
		}
		if r.Trans.Contains(asOf) && r.Valid.Overlaps(q) && matchAllRow(filters, r) {
			if !fn(l.sealed+i, r) {
				return
			}
		}
	}
}

// ScanTransOverlap calls fn for every row whose transaction period overlaps
// the window (TQuel's "as of E1 through E2"), pruning segments via the
// transaction-time zone maps.
func (l *Log) ScanTransOverlap(w temporal.Interval, fn func(pos int, r Row) bool) {
	if w.IsEmpty() {
		return
	}
	wf, wt := int64(w.From), int64(w.To)
	for _, g := range l.segs {
		if l.segmented() && g.minTransFrom >= wt {
			// Commit order: every later row starts at or after the window
			// end; nothing further can overlap.
			mSegmentsPruned.Inc()
			return
		}
		if l.segmented() && g.pruneTransWindow(w) {
			mSegmentsPruned.Inc()
			continue
		}
		if l.segmented() {
			mSegmentsScanned.Inc()
			hi := sort.Search(g.n, func(i int) bool { return g.transFrom[i] >= wt })
			for i := 0; i < hi; i++ {
				if wf < g.transTo[i] {
					if !fn(g.start+i, g.row(i)) {
						return
					}
				}
			}
			if hi < g.n {
				return
			}
			continue
		}
		for i := 0; i < g.n; i++ {
			if g.transFrom[i] < wt && wf < g.transTo[i] {
				if !fn(g.start+i, g.row(i)) {
					return
				}
			}
		}
	}
	for i := range l.tail {
		if l.segmented() && int64(l.tail[i].Trans.From) >= wt {
			return
		}
		if l.tail[i].Trans.Overlaps(w) {
			if !fn(l.sealed+i, l.tail[i]) {
				return
			}
		}
	}
}

// ScanCurrent calls fn for every row whose transaction period is open,
// skipping fully-superseded segments outright. Optional filters are
// evaluated on the columns before materialization, like ScanWhen's.
func (l *Log) ScanCurrent(filters []*Filter, fn func(pos int, r Row) bool) {
	forever := int64(temporal.Forever)
	for _, g := range l.segs {
		if l.segmented() {
			if g.current == 0 || !resolveAll(filters, g) {
				mSegmentsPruned.Inc()
				continue
			}
			mSegmentsScanned.Inc()
			for i := 0; i < g.n; i++ {
				if g.transTo[i] == forever && matchAll(filters, g, i) {
					if !fn(g.start+i, g.row(i)) {
						return
					}
				}
			}
			continue
		}
		for i := 0; i < g.n; i++ {
			if g.transTo[i] == forever {
				r := g.row(i)
				if matchAllRow(filters, r) {
					if !fn(g.start+i, r) {
						return
					}
				}
			}
		}
	}
	for i := range l.tail {
		if l.tail[i].Trans.To == temporal.Forever && matchAllRow(filters, l.tail[i]) {
			if !fn(l.sealed+i, l.tail[i]) {
				return
			}
		}
	}
}

// ScanKey calls fn for every row whose key hash equals kh, in commit order.
// Segments whose bloom filter excludes the hash are skipped without reading
// a single row — the audit-trail accelerator.
func (l *Log) ScanKey(kh uint64, fn func(pos int, r Row) bool) {
	for _, g := range l.segs {
		if l.segmented() && !g.bloom.mayContain(kh) {
			mBloomSkips.Inc()
			continue
		}
		for i := 0; i < g.n; i++ {
			if g.keyHash[i] == kh {
				if !fn(g.start+i, g.row(i)) {
					return
				}
			}
		}
	}
	for i := range l.tail {
		if l.tail[i].KeyHash == kh {
			if !fn(l.sealed+i, l.tail[i]) {
				return
			}
		}
	}
}

// Match reports whether the row at global position pos satisfies every
// filter, consulting sealed columns without materializing the tuple. Index
// probes use it to discard positions before paying for Row(pos); like every
// Filter use it is an acceleration only and callers re-verify on the
// materialized row.
func (l *Log) Match(pos int, filters []*Filter) bool {
	if len(filters) == 0 {
		return true
	}
	if g, i := l.locate(pos); g != nil {
		return resolveAll(filters, g) && matchAll(filters, g, i)
	} else {
		return matchAllRow(filters, l.tail[i])
	}
}

// resolveAll binds every filter to the segment; false means some filter's
// zone/dictionary proves the segment empty for this query.
func resolveAll(filters []*Filter, g *Segment) bool {
	for _, f := range filters {
		if !f.resolve(g) {
			return false
		}
	}
	return true
}

func matchAll(filters []*Filter, g *Segment, i int) bool {
	for _, f := range filters {
		if !f.match(g, i) {
			return false
		}
	}
	return true
}

func matchAllRow(filters []*Filter, r Row) bool {
	for _, f := range filters {
		if !f.Match(r.Data) {
			return false
		}
	}
	return true
}
