package segment

import "tdb/internal/obs"

// Package-level counters (one atomic add on already-serialized paths; see
// internal/core/metrics.go for the convention). Prune/scan ratios are the
// zone maps' effectiveness measure surfaced in /statz and EXPERIMENTS.md.
var (
	mSeals = obs.Default.Counter("tdb_segment_seals_total",
		"Tails sealed into immutable columnar segments.")
	mSealedRows = obs.Default.Counter("tdb_segment_sealed_rows_total",
		"Rows frozen into columnar segments by seals.")
	mSegmentsPruned = obs.Default.Counter("tdb_segment_pruned_total",
		"Segments skipped entirely by a zone map or filter during a scan.")
	mSegmentsScanned = obs.Default.Counter("tdb_segment_scanned_total",
		"Segments whose columns a scan actually read.")
	mBloomSkips = obs.Default.Counter("tdb_segment_bloom_skips_total",
		"Segments skipped by the key bloom filter during key scans.")
)
