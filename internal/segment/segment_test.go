package segment

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"tdb/internal/schema"
	"tdb/internal/tuple"
	"tdb/internal/value"
	"tdb/temporal"
)

func testSchema() *schema.Schema {
	s := schema.MustNew(
		schema.Attribute{Name: "name", Type: value.String},
		schema.Attribute{Name: "dept", Type: value.String},
		schema.Attribute{Name: "salary", Type: value.Int},
		schema.Attribute{Name: "rate", Type: value.Float},
		schema.Attribute{Name: "active", Type: value.Bool},
		schema.Attribute{Name: "since", Type: value.Instant},
	)
	s, err := s.WithKey("name")
	if err != nil {
		panic(err)
	}
	return s
}

// randRow generates a plausible stored version: trans time starts at commit
// (non-decreasing), valid time is a random finite or open period.
func randRow(rng *rand.Rand, commit temporal.Chronon) Row {
	names := []string{"Jane", "Merrie", "Tom", "Ilsoo", "Ashes", "Rick"}
	depts := []string{"CS", "EE", "Math", "Physics"}
	name := names[rng.Intn(len(names))]
	vf := temporal.Chronon(rng.Intn(1000))
	vt := vf + temporal.Chronon(1+rng.Intn(100))
	if rng.Intn(4) == 0 {
		vt = temporal.Forever
	}
	data := tuple.Tuple{
		value.NewString(name),
		value.NewString(depts[rng.Intn(len(depts))]),
		value.NewInt(int64(20000 + rng.Intn(40000))),
		value.NewFloat(rng.Float64() * 100),
		value.NewBool(rng.Intn(2) == 0),
		value.NewInstant(temporal.Chronon(rng.Intn(5000))),
	}
	return Row{
		Data:    data,
		Valid:   temporal.Interval{From: vf, To: vt},
		Trans:   temporal.Since(commit),
		KeyHash: data[0].Hash64(),
	}
}

func rowsEqual(a, b Row) bool {
	if a.Valid != b.Valid || a.Trans != b.Trans || a.KeyHash != b.KeyHash {
		return false
	}
	if len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if !value.Equal(a.Data[i], b.Data[i]) {
			return false
		}
	}
	return true
}

// buildPair grows a segmented log and a flat (disabled) log through the same
// history: interleaved appends, seals, and transaction-time closures (with
// occasional abort-style reopenings, which leave the zone maps conservative).
func buildPair(rng *rand.Rand, n int) (seg, flat *Log) {
	sch := testSchema()
	seg, flat = NewLog(sch), NewLog(sch)
	seg.SetDisabled(false) // tests must not inherit ablation env knobs
	flat.SetDisabled(true)
	commit := temporal.Chronon(100)
	for i := 0; i < n; i++ {
		r := randRow(rng, commit)
		seg.Append(r)
		flat.Append(r)
		if rng.Intn(3) == 0 {
			commit += temporal.Chronon(rng.Intn(5))
		}
		// Close a random earlier version at a chronon >= its start, the way
		// supersession does; sometimes reopen it again (abort undo).
		if i > 0 && rng.Intn(4) == 0 {
			pos := rng.Intn(i)
			tr := seg.Trans(pos)
			if tr.To == temporal.Forever {
				at := tr.From + temporal.Chronon(rng.Intn(50))
				seg.CloseTrans(pos, at)
				flat.CloseTrans(pos, at)
				if rng.Intn(5) == 0 {
					seg.CloseTrans(pos, temporal.Forever)
					flat.CloseTrans(pos, temporal.Forever)
				}
			}
		}
		if rng.Intn(40) == 0 {
			seg.SealNow()
			flat.SealNow() // no-op: disabled
		}
	}
	seg.SealNow()
	return seg, flat
}

func collect(scan func(fn func(pos int, r Row) bool)) []int {
	var got []int
	scan(func(pos int, r Row) bool {
		got = append(got, pos)
		return true
	})
	return got
}

// samePositions fails unless both scans returned the same rows in the same
// order.
func samePositions(t *testing.T, what string, seg, flat []int) {
	t.Helper()
	if len(seg) != len(flat) {
		t.Fatalf("%s: segmented found %d rows, flat found %d", what, len(seg), len(flat))
	}
	for i := range seg {
		if seg[i] != flat[i] {
			t.Fatalf("%s: result %d differs: segmented pos %d, flat pos %d", what, i, seg[i], flat[i])
		}
	}
}

// TestSealPreservesRows is the immutability property: sealing re-encodes the
// tail into columns without changing a single row image.
func TestSealPreservesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	sch := testSchema()
	l := NewLog(sch)
	l.SetDisabled(false)
	var want []Row
	for i := 0; i < 500; i++ {
		r := randRow(rng, temporal.Chronon(100+i/7))
		l.Append(r)
		want = append(want, r)
		if i%97 == 0 {
			l.SealNow()
		}
	}
	l.SealNow()
	if l.Sealed() != len(want) {
		t.Fatalf("sealed %d of %d rows", l.Sealed(), len(want))
	}
	for pos, w := range want {
		if got := l.Row(pos); !rowsEqual(got, w) {
			t.Fatalf("row %d changed across seal:\n got %+v\nwant %+v", pos, got, w)
		}
	}
}

// TestScansMatchFlat is the zone-map soundness property: under random
// histories (including closures and abort reopenings that leave conservative
// zone maps) every pruned scan returns exactly the rows the flat scan does.
func TestScansMatchFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	seg, flat := buildPair(rng, 2000)
	if len(seg.Segments()) < 10 {
		t.Fatalf("want a multi-segment log, got %d segments", len(seg.Segments()))
	}
	for trial := 0; trial < 300; trial++ {
		asOf := temporal.Chronon(95 + rng.Intn(120))
		samePositions(t, fmt.Sprintf("ScanAsOf(%d) trial %d", asOf, trial),
			collect(func(fn func(int, Row) bool) { seg.ScanAsOf(asOf, nil, fn) }),
			collect(func(fn func(int, Row) bool) { flat.ScanAsOf(asOf, nil, fn) }))

		qf := temporal.Chronon(rng.Intn(1100))
		q := temporal.Interval{From: qf, To: qf + temporal.Chronon(rng.Intn(200))}
		samePositions(t, fmt.Sprintf("ScanWhen(%v, %d) trial %d", q, asOf, trial),
			collect(func(fn func(int, Row) bool) { seg.ScanWhen(q, asOf, nil, fn) }),
			collect(func(fn func(int, Row) bool) { flat.ScanWhen(q, asOf, nil, fn) }))

		w := temporal.Interval{From: temporal.Chronon(95 + rng.Intn(100)), To: temporal.Chronon(95 + rng.Intn(140))}
		samePositions(t, fmt.Sprintf("ScanTransOverlap(%v) trial %d", w, trial),
			collect(func(fn func(int, Row) bool) { seg.ScanTransOverlap(w, fn) }),
			collect(func(fn func(int, Row) bool) { flat.ScanTransOverlap(w, fn) }))
	}

	samePositions(t, "ScanCurrent",
		collect(func(fn func(int, Row) bool) { seg.ScanCurrent(nil, fn) }),
		collect(func(fn func(int, Row) bool) { flat.ScanCurrent(nil, fn) }))

	for _, name := range []string{"Jane", "Tom", "Nobody"} {
		kh := value.NewString(name).Hash64()
		samePositions(t, "ScanKey("+name+")",
			collect(func(fn func(int, Row) bool) { seg.ScanKey(kh, fn) }),
			collect(func(fn func(int, Row) bool) { flat.ScanKey(kh, fn) }))
	}
}

// TestFiltersAccelerateOnly: a pushed-down equality filter must return
// exactly the rows a row-wise post-filter would.
func TestFiltersAccelerateOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	seg, flat := buildPair(rng, 1500)
	sch := testSchema()
	cases := []struct {
		attr int
		v    value.Value
	}{
		{0, value.NewString("Jane")},
		{0, value.NewString("Nobody")}, // absent from every dictionary
		{1, value.NewString("CS")},
		{2, value.NewInt(25000)},
		{4, value.NewBool(true)},
	}
	for _, c := range cases {
		f, ok := NewEqFilter(sch, c.attr, c.v)
		if !ok {
			t.Fatalf("NewEqFilter(%d, %v) rejected a well-kinded filter", c.attr, c.v)
		}
		q := temporal.Interval{From: 0, To: temporal.Forever}
		asOf := temporal.Chronon(130)
		segpos := collect(func(fn func(int, Row) bool) { seg.ScanWhen(q, asOf, []*Filter{f}, fn) })
		// Reference: unfiltered flat scan plus row-wise equality.
		var flatpos []int
		flat.ScanWhen(q, asOf, nil, func(pos int, r Row) bool {
			if value.Equal(r.Data[c.attr], c.v) {
				flatpos = append(flatpos, pos)
			}
			return true
		})
		samePositions(t, fmt.Sprintf("filter %s=%v", sch.Attr(c.attr).Name, c.v), segpos, flatpos)
	}

	// Kind mismatches and NaN stay with the expression evaluator.
	if _, ok := NewEqFilter(sch, 2, value.NewFloat(25000)); ok {
		t.Fatal("NewEqFilter accepted a float probe against an int column")
	}
	if _, ok := NewEqFilter(sch, 3, value.NewFloat(math.NaN())); ok {
		t.Fatal("NewEqFilter accepted NaN")
	}
	if _, ok := NewEqFilter(sch, -1, value.NewInt(1)); ok {
		t.Fatal("NewEqFilter accepted a bad attribute index")
	}
}

// TestCmpFiltersAccelerateOnly: ordered comparison filters on every scan
// path (when, as-of, current, and positional Match) must keep exactly the
// rows a row-wise post-filter keeps.
func TestCmpFiltersAccelerateOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	seg, flat := buildPair(rng, 1500)
	sch := testSchema()
	rowOK := func(op Op, a value.Value, b value.Value) bool {
		c, err := value.Compare(a, b)
		if err != nil {
			return true
		}
		return cmpOK(op, c)
	}
	cases := []struct {
		attr int
		op   Op
		v    value.Value
	}{
		{2, OpLt, value.NewInt(25000)},
		{2, OpLe, value.NewInt(25000)},
		{2, OpGt, value.NewInt(25000)},
		{2, OpGe, value.NewInt(60000)}, // above every salary: zones skip all
		{3, OpLt, value.NewFloat(2.5)},
		{3, OpGe, value.NewFloat(2.5)},
		{5, OpLt, value.NewInstant(100)},
	}
	asOf := temporal.Chronon(130)
	q := temporal.Interval{From: 0, To: temporal.Forever}
	for _, c := range cases {
		f, ok := NewCmpFilter(sch, c.attr, c.op, c.v)
		if !ok {
			t.Fatalf("NewCmpFilter(%d, %d, %v) rejected a well-kinded filter", c.attr, c.op, c.v)
		}
		name := fmt.Sprintf("filter attr%d op%d %v", c.attr, c.op, c.v)
		keep := func(r Row) bool { return rowOK(c.op, r.Data[c.attr], c.v) }

		segpos := collect(func(fn func(int, Row) bool) { seg.ScanWhen(q, asOf, []*Filter{f}, fn) })
		var flatpos []int
		flat.ScanWhen(q, asOf, nil, func(pos int, r Row) bool {
			if keep(r) {
				flatpos = append(flatpos, pos)
			}
			return true
		})
		samePositions(t, name+" ScanWhen", segpos, flatpos)

		segpos = collect(func(fn func(int, Row) bool) { seg.ScanAsOf(asOf, []*Filter{f}, fn) })
		flatpos = nil
		flat.ScanAsOf(asOf, nil, func(pos int, r Row) bool {
			if keep(r) {
				flatpos = append(flatpos, pos)
			}
			return true
		})
		samePositions(t, name+" ScanAsOf", segpos, flatpos)

		segpos = collect(func(fn func(int, Row) bool) { seg.ScanCurrent([]*Filter{f}, fn) })
		flatpos = nil
		flat.ScanCurrent(nil, func(pos int, r Row) bool {
			if keep(r) {
				flatpos = append(flatpos, pos)
			}
			return true
		})
		samePositions(t, name+" ScanCurrent", segpos, flatpos)

		for pos := 0; pos < seg.Len(); pos++ {
			if got, want := seg.Match(pos, []*Filter{f}), keep(seg.Row(pos)); got != want {
				t.Fatalf("%s: Match(%d) = %v, row-wise says %v", name, pos, got, want)
			}
		}
	}

	// Ordered operators on unordered columns stay with the evaluator.
	if _, ok := NewCmpFilter(sch, 0, OpLt, value.NewString("M")); ok {
		t.Fatal("NewCmpFilter accepted an ordered string comparison")
	}
	if _, ok := NewCmpFilter(sch, 4, OpGe, value.NewBool(false)); ok {
		t.Fatal("NewCmpFilter accepted an ordered bool comparison")
	}
	if _, ok := NewCmpFilter(sch, 3, OpLt, value.NewFloat(math.NaN())); ok {
		t.Fatal("NewCmpFilter accepted NaN")
	}
}

// TestCodecRoundTrip: encode/decode must reproduce every row image and the
// derived summaries (prune decisions, bloom membership).
func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seg, _ := buildPair(rng, 1200)
	for si, g := range seg.Segments() {
		block := AppendBlock(nil, g)
		dec, used, err := DecodeBlock(block, testSchema())
		if err != nil {
			t.Fatalf("segment %d: decode: %v", si, err)
		}
		if used != len(block) {
			t.Fatalf("segment %d: decode consumed %d of %d bytes", si, used, len(block))
		}
		if dec.Start() != g.Start() || dec.Len() != g.Len() || dec.Current() != g.Current() {
			t.Fatalf("segment %d: shape changed: (%d,%d,%d) -> (%d,%d,%d)", si,
				g.Start(), g.Len(), g.Current(), dec.Start(), dec.Len(), dec.Current())
		}
		for i := 0; i < g.Len(); i++ {
			if !rowsEqual(g.row(i), dec.row(i)) {
				t.Fatalf("segment %d row %d changed across codec", si, i)
			}
		}
		for trial := 0; trial < 50; trial++ {
			at := temporal.Chronon(90 + rng.Intn(130))
			if g.pruneAsOf(at) != dec.pruneAsOf(at) {
				t.Fatalf("segment %d: pruneAsOf(%d) diverged after decode", si, at)
			}
			q := temporal.Interval{From: temporal.Chronon(rng.Intn(1000)), To: temporal.Chronon(rng.Intn(1200))}
			if g.pruneValid(q) != dec.pruneValid(q) {
				t.Fatalf("segment %d: pruneValid(%v) diverged after decode", si, q)
			}
		}
		for i := 0; i < g.Len(); i++ {
			if !dec.bloom.mayContain(g.keyHash[i]) {
				t.Fatalf("segment %d: decoded bloom lost key hash of row %d", si, i)
			}
		}
	}
}

// TestCodecRejectsCorruption: truncation and schema drift must error, never
// panic or fabricate rows.
func TestCodecRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	seg, _ := buildPair(rng, 600)
	g := seg.Segments()[0]
	block := AppendBlock(nil, g)
	for _, cut := range []int{0, 1, len(block) / 2, len(block) - 1} {
		if _, _, err := DecodeBlock(block[:cut], testSchema()); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(block))
		}
	}
	wrong := schema.MustNew(
		schema.Attribute{Name: "name", Type: value.Int}, // was String
		schema.Attribute{Name: "dept", Type: value.String},
		schema.Attribute{Name: "salary", Type: value.Int},
		schema.Attribute{Name: "rate", Type: value.Float},
		schema.Attribute{Name: "active", Type: value.Bool},
		schema.Attribute{Name: "since", Type: value.Instant},
	)
	if _, _, err := DecodeBlock(block, wrong); err == nil {
		t.Fatal("decode against a drifted schema succeeded")
	}
}

// TestTruncateFencing: aborts may only pop tail rows. Cutting into sealed
// history is a logic error and must trip the panic tripwire.
func TestTruncateFencing(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sch := testSchema()
	l := NewLog(sch)
	l.SetDisabled(false)
	for i := 0; i < 100; i++ {
		l.Append(randRow(rng, temporal.Chronon(100+i)))
	}
	l.SealNow()
	for i := 0; i < 10; i++ {
		l.Append(randRow(rng, 300))
	}
	l.TruncateTail(105) // pops 5 uncommitted tail rows: fine
	if l.Len() != 105 || l.Sealed() != 100 {
		t.Fatalf("truncate to 105: len=%d sealed=%d", l.Len(), l.Sealed())
	}
	l.TruncateTail(100) // abort the rest of the transaction
	if l.Len() != 100 {
		t.Fatalf("truncate to 100: len=%d", l.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("TruncateTail into sealed history did not panic")
		}
	}()
	l.TruncateTail(99)
}

// TestAbortedTailNeverSeals: an abort-style truncate before the commit-time
// Seal means aborted rows cannot end up in a segment.
func TestAbortedTailNeverSeals(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := NewLog(testSchema())
	l.SetDisabled(false)
	l.SetSealRows(8)
	for i := 0; i < 8; i++ {
		l.Append(randRow(rng, 100))
	}
	l.TruncateTail(0) // the whole transaction aborts
	if l.Seal() {
		t.Fatal("Seal created a segment from an aborted (empty) tail")
	}
	if l.SealNow() {
		t.Fatal("SealNow created a segment from an empty tail")
	}
	for i := 0; i < 7; i++ {
		l.Append(randRow(rng, 101))
	}
	if l.Seal() {
		t.Fatal("Seal fired below the threshold")
	}
	l.Append(randRow(rng, 102))
	if !l.Seal() {
		t.Fatal("Seal did not fire at the threshold")
	}
	if l.Sealed() != 8 || len(l.Segments()) != 1 {
		t.Fatalf("sealed=%d segments=%d", l.Sealed(), len(l.Segments()))
	}
}

// TestRestoreSegment: checkpoint blocks reattach in position order only.
func TestRestoreSegment(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seg, _ := buildPair(rng, 400)
	restored := NewLog(testSchema())
	restored.SetDisabled(false)
	for _, g := range seg.Segments() {
		block := AppendBlock(nil, g)
		dec, _, err := DecodeBlock(block, testSchema())
		if err != nil {
			t.Fatal(err)
		}
		if err := restored.RestoreSegment(dec); err != nil {
			t.Fatal(err)
		}
	}
	if restored.Sealed() != seg.Sealed() {
		t.Fatalf("restored %d of %d sealed rows", restored.Sealed(), seg.Sealed())
	}
	for pos := 0; pos < seg.Sealed(); pos++ {
		if !rowsEqual(restored.Row(pos), seg.Row(pos)) {
			t.Fatalf("row %d changed across checkpoint round trip", pos)
		}
	}
	// Out-of-order restore and restore-after-tail must fail.
	g0 := seg.Segments()[0]
	if err := restored.RestoreSegment(g0); err == nil {
		t.Fatal("out-of-order RestoreSegment succeeded")
	}
	restored.Append(randRow(rng, 500))
	dec, _, _ := DecodeBlock(AppendBlock(nil, g0), testSchema())
	if err := restored.RestoreSegment(dec); err == nil {
		t.Fatal("RestoreSegment after tail rows succeeded")
	}
}

// TestBloomNoFalseNegatives: every inserted hash must test positive.
func TestBloomNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{1, 7, 64, 1000, 10000} {
		hashes := make([]uint64, n)
		for i := range hashes {
			hashes[i] = rng.Uint64()
		}
		b := newBloom(hashes)
		for i, h := range hashes {
			if !b.mayContain(h) {
				t.Fatalf("n=%d: inserted hash %d tested negative", n, i)
			}
		}
		// Sanity: the filter must also reject most absent keys.
		misses := 0
		for i := 0; i < 1000; i++ {
			if !b.mayContain(rng.Uint64()) {
				misses++
			}
		}
		if n <= 1000 && misses < 500 {
			t.Fatalf("n=%d: bloom rejected only %d/1000 absent keys", n, misses)
		}
	}
}

// TestCloseTransZones: closing every version must let pruneAsOf skip the
// segment for times past the last closure.
func TestCloseTransZones(t *testing.T) {
	l := NewLog(testSchema())
	l.SetDisabled(false)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		l.Append(randRow(rng, temporal.Chronon(100+i)))
	}
	l.SealNow()
	g := l.Segments()[0]
	if g.pruneAsOf(200) {
		t.Fatal("segment with current versions pruned an as-of after its commits")
	}
	for pos := 0; pos < 20; pos++ {
		l.CloseTrans(pos, 150)
	}
	if g.Current() != 0 {
		t.Fatalf("current=%d after closing every version", g.Current())
	}
	if !g.pruneAsOf(200) {
		t.Fatal("fully superseded segment not pruned for a later as-of")
	}
	if g.pruneAsOf(120) {
		t.Fatal("segment pruned inside its live transaction span")
	}
	// Abort undo: reopening a version must restore visibility.
	l.CloseTrans(3, temporal.Forever)
	if g.pruneAsOf(200) {
		t.Fatal("segment with a reopened version still pruned")
	}
}
