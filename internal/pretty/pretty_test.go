package pretty

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	tbl := Table{
		Headers: []string{"name", "rank"},
		Rows: [][]string{
			{"Merrie", "full"},
			{"Tom", "associate"},
		},
	}
	out := tbl.String()
	for _, want := range []string{"| name", "| rank", "| Merrie", "| associate"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // rule, header, rule, 2 rows, rule
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	width := len(lines[0])
	for i, l := range lines {
		if len(l) != width {
			t.Errorf("line %d width %d != %d:\n%s", i, len(l), width, out)
		}
	}
}

func TestRenderSplitDoubleBar(t *testing.T) {
	tbl := Table{
		Title:   "Figure 4",
		Headers: []string{"name", "rank", "tt start", "tt end"},
		Rows:    [][]string{{"Merrie", "associate", "08/25/77", "12/15/82"}},
		Split:   2,
	}
	out := tbl.String()
	if !strings.HasPrefix(out, "Figure 4\n") {
		t.Errorf("title missing:\n%s", out)
	}
	// The double bar: "||" between explicit and temporal columns.
	if !strings.Contains(out, "||") {
		t.Errorf("double bar missing:\n%s", out)
	}
	if !strings.Contains(out, "++") {
		t.Errorf("rule double joint missing:\n%s", out)
	}
}

func TestRenderHandlesWideUnicode(t *testing.T) {
	tbl := Table{
		Headers: []string{"to"},
		Rows:    [][]string{{"∞"}, {"12/15/82"}},
	}
	lines := strings.Split(strings.TrimRight(tbl.String(), "\n"), "\n")
	w := len([]rune(lines[1]))
	for i, l := range lines {
		if len([]rune(l)) != w {
			t.Errorf("rune width of line %d differs: %q", i, l)
		}
	}
}

func TestRenderShortRow(t *testing.T) {
	tbl := Table{
		Headers: []string{"a", "b"},
		Rows:    [][]string{{"only"}},
	}
	out := tbl.String()
	if !strings.Contains(out, "only") {
		t.Errorf("short row lost: %s", out)
	}
}
