// Package pretty renders relations in the paper's figure style: a boxed
// table whose explicit attributes are separated from the DBMS-maintained
// temporal columns by a double bar, as in Figures 4, 6, 8 and 9.
package pretty

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table is a renderable grid. Columns left of Split are explicit attributes;
// columns from Split onward are implicit temporal domains (rendered after a
// double bar). Split <= 0 disables the bar.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Split   int
}

// Render writes the table to w.
func (t Table) Render(w io.Writer) error {
	cols := len(t.Headers)
	widths := make([]int, cols)
	for i, h := range t.Headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < cols {
				if n := utf8.RuneCountInString(cell); n > widths[i] {
					widths[i] = n
				}
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRule := func() {
		b.WriteByte('+')
		for i, wd := range widths {
			if t.Split > 0 && i == t.Split {
				b.WriteByte('+')
			}
			b.WriteString(strings.Repeat("-", wd+2))
			b.WriteByte('+')
		}
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		b.WriteByte('|')
		for i := 0; i < cols; i++ {
			if t.Split > 0 && i == t.Split {
				b.WriteByte('|')
			}
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			pad := widths[i] - utf8.RuneCountInString(cell)
			b.WriteString(" " + cell + strings.Repeat(" ", pad) + " |")
		}
		b.WriteByte('\n')
	}
	writeRule()
	writeRow(t.Headers)
	writeRule()
	for _, row := range t.Rows {
		writeRow(row)
	}
	writeRule()
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return err.Error()
	}
	return b.String()
}
