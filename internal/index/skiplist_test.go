package index

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSkipListBasics(t *testing.T) {
	s := NewSkipList()
	if _, ok := s.Min(); ok {
		t.Error("empty list must have no Min")
	}
	s.Add(5, 50)
	s.Add(3, 30)
	s.Add(5, 51)
	s.Add(9, 90)
	if s.Len() != 4 {
		t.Errorf("Len = %d", s.Len())
	}
	if got := s.Lookup(5); len(got) != 2 {
		t.Errorf("Lookup(5) = %v", got)
	}
	if got := s.Lookup(4); got != nil {
		t.Errorf("Lookup(4) = %v", got)
	}
	if m, ok := s.Min(); !ok || m != 3 {
		t.Errorf("Min = %d, %v", m, ok)
	}
}

func TestSkipListRangeOrdered(t *testing.T) {
	s := NewSkipList()
	for _, k := range []int64{9, 1, 5, 3, 7} {
		s.Add(k, int(k*10))
	}
	var keys []int64
	s.Range(2, 8, func(k int64, pos int) bool {
		keys = append(keys, k)
		return true
	})
	want := []int64{3, 5, 7}
	if len(keys) != len(want) {
		t.Fatalf("Range keys = %v", keys)
	}
	for i := range keys {
		if keys[i] != want[i] {
			t.Fatalf("Range keys = %v, want %v", keys, want)
		}
	}
	// Early stop.
	count := 0
	s.Range(0, 100, func(int64, int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestSkipListRemove(t *testing.T) {
	s := NewSkipList()
	s.Add(4, 1)
	s.Add(4, 2)
	if !s.Remove(4, 1) {
		t.Error("Remove present must succeed")
	}
	if s.Remove(4, 1) {
		t.Error("Remove absent posting must fail")
	}
	if s.Remove(77, 0) {
		t.Error("Remove absent key must fail")
	}
	if !s.Remove(4, 2) {
		t.Error("Remove last posting must succeed")
	}
	if got := s.Lookup(4); got != nil {
		t.Errorf("emptied key still present: %v", got)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d", s.Len())
	}
}

// Randomized cross-check against a reference map.
func TestSkipListAgainstReference(t *testing.T) {
	s := NewSkipList()
	ref := map[int64][]int{}
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 4000; i++ {
		k := int64(r.Intn(300))
		switch r.Intn(3) {
		case 0, 1: // add twice as often as remove
			s.Add(k, i)
			ref[k] = append(ref[k], i)
		case 2:
			if posts := ref[k]; len(posts) > 0 {
				p := posts[r.Intn(len(posts))]
				if !s.Remove(k, p) {
					t.Fatalf("Remove(%d, %d) failed", k, p)
				}
				out := posts[:0]
				for _, q := range posts {
					if q != p {
						out = append(out, q)
					}
				}
				ref[k] = out
			} else if s.Remove(k, 0) {
				t.Fatalf("Remove on empty key %d succeeded", k)
			}
		}
	}
	wantLen := 0
	var keys []int64
	for k, posts := range ref {
		wantLen += len(posts)
		if len(posts) > 0 {
			keys = append(keys, k)
		}
		got := s.Lookup(k)
		if len(got) != len(posts) {
			t.Fatalf("Lookup(%d) = %d postings, want %d", k, len(got), len(posts))
		}
	}
	if s.Len() != wantLen {
		t.Fatalf("Len = %d, want %d", s.Len(), wantLen)
	}
	// Full range must yield ascending keys covering every live key.
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var scanned []int64
	last := int64(-1)
	s.Range(0, 1000, func(k int64, pos int) bool {
		if k < last {
			t.Fatalf("Range out of order: %d after %d", k, last)
		}
		if k != last {
			scanned = append(scanned, k)
			last = k
		}
		return true
	})
	if len(scanned) != len(keys) {
		t.Fatalf("Range saw %d distinct keys, want %d", len(scanned), len(keys))
	}
	for i := range keys {
		if scanned[i] != keys[i] {
			t.Fatalf("Range keys mismatch at %d: %d vs %d", i, scanned[i], keys[i])
		}
	}
}
