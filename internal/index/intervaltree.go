package index

import (
	"tdb/temporal"
)

// IntervalTree is a treap keyed by interval start, augmented with the
// maximum interval end in each subtree. It answers stabbing queries ("all
// intervals containing chronon t") and overlap queries in O(log n + k).
//
// The stores use one tree over transaction-time periods: rollback ("as of
// t") is a stabbing query, so its cost grows with the answer size rather
// than with total history depth. BenchmarkAblationIntervalIndex compares
// this against the linear scan the tree replaces.
//
// IntervalTree is not safe for concurrent mutation, but a quiescent tree
// is safe for any number of concurrent readers: Stab, Overlapping, and Len
// only walk the node structure. The stores mutate their trees exclusively
// inside transactions (under the database write lock), so readers holding
// the read lock never observe a rotation in progress.
type IntervalTree struct {
	root *itNode
	n    int
	rng  uint64 // xorshift state for treap priorities
}

type itNode struct {
	iv          temporal.Interval
	pos         int
	prio        uint64
	maxEnd      temporal.Chronon
	left, right *itNode
}

// NewIntervalTree returns an empty tree.
func NewIntervalTree() *IntervalTree {
	return &IntervalTree{rng: 0x9e3779b97f4a7c15}
}

// Len returns the number of stored intervals.
func (t *IntervalTree) Len() int { return t.n }

func (t *IntervalTree) nextPrio() uint64 {
	// xorshift64*: deterministic, fast, good enough for treap balance.
	x := t.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	t.rng = x
	return x * 0x2545F4914F6CDD1D
}

// Insert records the interval with its posting.
func (t *IntervalTree) Insert(iv temporal.Interval, pos int) {
	t.root = t.insert(t.root, &itNode{iv: iv, pos: pos, prio: t.nextPrio(), maxEnd: iv.To})
	t.n++
}

func (t *IntervalTree) insert(root, node *itNode) *itNode {
	if root == nil {
		return node
	}
	if node.iv.From < root.iv.From {
		root.left = t.insert(root.left, node)
		if root.left.prio > root.prio {
			root = rotateRight(root)
		}
	} else {
		root.right = t.insert(root.right, node)
		if root.right.prio > root.prio {
			root = rotateLeft(root)
		}
	}
	pull(root)
	return root
}

// Update changes the interval stored for (old, pos) to niv, reporting
// whether the entry was found. The stores use this when a current version's
// transaction-time end is closed (∞ → commit time).
func (t *IntervalTree) Update(old temporal.Interval, pos int, niv temporal.Interval) bool {
	if !t.remove(old, pos) {
		return false
	}
	t.n--
	t.Insert(niv, pos)
	return true
}

// Remove deletes the entry (iv, pos), reporting whether it was present.
func (t *IntervalTree) Remove(iv temporal.Interval, pos int) bool {
	if t.remove(iv, pos) {
		t.n--
		return true
	}
	return false
}

func (t *IntervalTree) remove(iv temporal.Interval, pos int) bool {
	var removed bool
	t.root, removed = removeNode(t.root, iv, pos)
	return removed
}

func removeNode(root *itNode, iv temporal.Interval, pos int) (*itNode, bool) {
	if root == nil {
		return nil, false
	}
	var removed bool
	switch {
	case iv.From < root.iv.From:
		root.left, removed = removeNode(root.left, iv, pos)
	case iv.From > root.iv.From:
		root.right, removed = removeNode(root.right, iv, pos)
	case root.iv == iv && root.pos == pos:
		return merge(root.left, root.right), true
	default:
		// Same start; the entry may be in either subtree.
		root.left, removed = removeNode(root.left, iv, pos)
		if !removed {
			root.right, removed = removeNode(root.right, iv, pos)
		}
	}
	if removed {
		pull(root)
	}
	return root, removed
}

func merge(a, b *itNode) *itNode {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case a.prio > b.prio:
		a.right = merge(a.right, b)
		pull(a)
		return a
	default:
		b.left = merge(a, b.left)
		pull(b)
		return b
	}
}

// Stab calls fn for the posting of every interval containing c, stopping
// early if fn returns false.
func (t *IntervalTree) Stab(c temporal.Chronon, fn func(iv temporal.Interval, pos int) bool) {
	stab(t.root, c, fn)
}

func stab(n *itNode, c temporal.Chronon, fn func(iv temporal.Interval, pos int) bool) bool {
	if n == nil || n.maxEnd <= c {
		// No interval in this subtree extends past c.
		return true
	}
	if !stab(n.left, c, fn) {
		return false
	}
	if n.iv.Contains(c) {
		if !fn(n.iv, n.pos) {
			return false
		}
	}
	if n.iv.From > c {
		// Right subtree starts even later; nothing there contains c.
		return true
	}
	return stab(n.right, c, fn)
}

// Overlapping calls fn for the posting of every interval overlapping q,
// stopping early if fn returns false.
func (t *IntervalTree) Overlapping(q temporal.Interval, fn func(iv temporal.Interval, pos int) bool) {
	overlapping(t.root, q, fn)
}

func overlapping(n *itNode, q temporal.Interval, fn func(iv temporal.Interval, pos int) bool) bool {
	if n == nil || n.maxEnd <= q.From || q.IsEmpty() {
		return true
	}
	if !overlapping(n.left, q, fn) {
		return false
	}
	if n.iv.Overlaps(q) {
		if !fn(n.iv, n.pos) {
			return false
		}
	}
	if n.iv.From >= q.To {
		return true
	}
	return overlapping(n.right, q, fn)
}

func pull(n *itNode) {
	n.maxEnd = n.iv.To
	if n.left != nil && n.left.maxEnd > n.maxEnd {
		n.maxEnd = n.left.maxEnd
	}
	if n.right != nil && n.right.maxEnd > n.maxEnd {
		n.maxEnd = n.right.maxEnd
	}
}

func rotateRight(n *itNode) *itNode {
	l := n.left
	n.left = l.right
	l.right = n
	pull(n)
	pull(l)
	return l
}

func rotateLeft(n *itNode) *itNode {
	r := n.right
	n.right = r.left
	r.left = n
	pull(n)
	pull(r)
	return r
}
