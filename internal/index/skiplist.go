package index

import "math/rand"

// SkipList is an ordered multimap from int64 keys to postings, used for
// ordered attribute indexes and range scans. Duplicate keys are allowed;
// each node holds the postings for one distinct key.
//
// A deterministic xorshift generator drives tower heights, so structures are
// reproducible across runs (useful when comparing benchmark allocations).
// SkipList is not safe for concurrent mutation.
type SkipList struct {
	head  *skipNode
	level int
	n     int
	rng   rand.Source64
}

const maxLevel = 24

type skipNode struct {
	key   int64
	posts []int
	next  []*skipNode
}

// NewSkipList returns an empty skip list.
func NewSkipList() *SkipList {
	return &SkipList{
		head:  &skipNode{next: make([]*skipNode, maxLevel)},
		level: 1,
		rng:   rand.NewSource(0x5eed).(rand.Source64),
	}
}

// Len returns the number of postings stored.
func (s *SkipList) Len() int { return s.n }

// Add records pos under key.
func (s *SkipList) Add(key int64, pos int) {
	var update [maxLevel]*skipNode
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
		update[i] = x
	}
	if cand := x.next[0]; cand != nil && cand.key == key {
		cand.posts = append(cand.posts, pos)
		s.n++
		return
	}
	lvl := s.randomLevel()
	if lvl > s.level {
		for i := s.level; i < lvl; i++ {
			update[i] = s.head
		}
		s.level = lvl
	}
	node := &skipNode{key: key, posts: []int{pos}, next: make([]*skipNode, lvl)}
	for i := 0; i < lvl; i++ {
		node.next[i] = update[i].next[i]
		update[i].next[i] = node
	}
	s.n++
}

// Remove deletes one instance of pos under key, reporting whether it was
// present. Nodes whose postings empty out are unlinked.
func (s *SkipList) Remove(key int64, pos int) bool {
	var update [maxLevel]*skipNode
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
		update[i] = x
	}
	node := x.next[0]
	if node == nil || node.key != key {
		return false
	}
	found := false
	for i, p := range node.posts {
		if p == pos {
			node.posts[i] = node.posts[len(node.posts)-1]
			node.posts = node.posts[:len(node.posts)-1]
			found = true
			break
		}
	}
	if !found {
		return false
	}
	s.n--
	if len(node.posts) == 0 {
		for i := 0; i < s.level; i++ {
			if update[i].next[i] == node {
				update[i].next[i] = node.next[i]
			}
		}
		for s.level > 1 && s.head.next[s.level-1] == nil {
			s.level--
		}
	}
	return true
}

// Lookup returns the postings under exactly key (aliases internals).
func (s *SkipList) Lookup(key int64) []int {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
	}
	if cand := x.next[0]; cand != nil && cand.key == key {
		return cand.posts
	}
	return nil
}

// Range calls fn for every (key, posting) with lo <= key < hi, in ascending
// key order, stopping early if fn returns false.
func (s *SkipList) Range(lo, hi int64, fn func(key int64, pos int) bool) {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < lo {
			x = x.next[i]
		}
	}
	for node := x.next[0]; node != nil && node.key < hi; node = node.next[0] {
		for _, p := range node.posts {
			if !fn(node.key, p) {
				return
			}
		}
	}
}

// Min returns the smallest key present; ok is false when empty.
func (s *SkipList) Min() (int64, bool) {
	if n := s.head.next[0]; n != nil {
		return n.key, true
	}
	return 0, false
}

func (s *SkipList) randomLevel() int {
	lvl := 1
	// P(level >= k) = 4^-(k-1): sparse towers, cheap memory.
	for lvl < maxLevel && s.rng.Uint64()&3 == 0 {
		lvl++
	}
	return lvl
}
