package index

import (
	"math/rand"
	"testing"
)

func TestHashAddLookup(t *testing.T) {
	var h Hash
	if got := h.Lookup(1); got != nil {
		t.Errorf("empty Lookup = %v", got)
	}
	h.Add(100, 0)
	h.Add(100, 1)
	h.Add(200, 2)
	if got := h.Lookup(100); len(got) != 2 {
		t.Errorf("Lookup(100) = %v", got)
	}
	if got := h.Lookup(200); len(got) != 1 || got[0] != 2 {
		t.Errorf("Lookup(200) = %v", got)
	}
	if got := h.Lookup(300); got != nil {
		t.Errorf("Lookup(300) = %v", got)
	}
	if h.Len() != 3 {
		t.Errorf("Len = %d", h.Len())
	}
}

func TestHashRemove(t *testing.T) {
	var h Hash
	h.Add(7, 10)
	h.Add(7, 11)
	if !h.Remove(7, 10) {
		t.Error("Remove present posting must succeed")
	}
	if h.Remove(7, 10) {
		t.Error("Remove absent posting must fail")
	}
	if h.Remove(99, 0) {
		t.Error("Remove absent hash must fail")
	}
	if got := h.Lookup(7); len(got) != 1 || got[0] != 11 {
		t.Errorf("after Remove: %v", got)
	}
	if h.Len() != 1 {
		t.Errorf("Len = %d", h.Len())
	}
}

// Many distinct hashes force repeated growth; cross-check against a map.
func TestHashGrowthAgainstReference(t *testing.T) {
	var h Hash
	ref := map[uint64][]int{}
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		k := r.Uint64() % 2048
		h.Add(k, i)
		ref[k] = append(ref[k], i)
	}
	for k, want := range ref {
		got := h.Lookup(k)
		if len(got) != len(want) {
			t.Fatalf("Lookup(%d) = %d postings, want %d", k, len(got), len(want))
		}
		seen := map[int]bool{}
		for _, p := range got {
			seen[p] = true
		}
		for _, p := range want {
			if !seen[p] {
				t.Fatalf("Lookup(%d) missing posting %d", k, p)
			}
		}
	}
	// Random removals stay consistent.
	for k, posts := range ref {
		if len(posts) == 0 {
			continue
		}
		if !h.Remove(k, posts[0]) {
			t.Fatalf("Remove(%d, %d) failed", k, posts[0])
		}
	}
	if h.Len() != 5000-len(ref) {
		t.Errorf("Len after removals = %d, want %d", h.Len(), 5000-len(ref))
	}
}

func TestHashCollidingHashesShareBucket(t *testing.T) {
	// The index is a multimap on the hash itself; the caller disambiguates.
	var h Hash
	h.Add(42, 1)
	h.Add(42, 2)
	if got := h.Lookup(42); len(got) != 2 {
		t.Errorf("colliding postings = %v", got)
	}
}

func TestNewHashSized(t *testing.T) {
	for _, n := range []int{0, 1, 11, 12, 13, 1000, 5000} {
		h := NewHashSized(n)
		if got := len(h.buckets); got < minBuckets || got&(got-1) != 0 {
			t.Fatalf("NewHashSized(%d): %d buckets, want a power of two >= %d", n, got, minBuckets)
		}
		// The preallocation must clear the 0.75 load factor for n distinct
		// hashes, so a bulk build of n keys never grows.
		if n > 0 && 4*n > 3*len(h.buckets) {
			t.Fatalf("NewHashSized(%d): %d buckets breaches the load factor", n, len(h.buckets))
		}
		before := len(h.buckets)
		for i := 0; i < n; i++ {
			h.Add(uint64(i)*2654435761, i)
		}
		if len(h.buckets) != before {
			t.Errorf("NewHashSized(%d) grew from %d to %d buckets during bulk build",
				n, before, len(h.buckets))
		}
		for i := 0; i < n; i++ {
			if got := h.Lookup(uint64(i) * 2654435761); len(got) != 1 || got[0] != i {
				t.Fatalf("NewHashSized(%d): Lookup(%d) = %v", n, i, got)
			}
		}
	}
}
