package index

import (
	"fmt"
	"math/rand"
	"testing"

	"tdb/temporal"
)

func BenchmarkHashAddLookup(b *testing.B) {
	var h Hash
	r := rand.New(rand.NewSource(1))
	keys := make([]uint64, 10000)
	for i := range keys {
		keys[i] = r.Uint64()
		h.Add(keys[i], i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Lookup(keys[i%len(keys)])
	}
}

func BenchmarkSkipListAdd(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	s := NewSkipList()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(r.Int63n(1<<20), i)
	}
}

func BenchmarkSkipListRange(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	s := NewSkipList()
	for i := 0; i < 100000; i++ {
		s.Add(r.Int63n(1<<20), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := r.Int63n(1 << 20)
		n := 0
		s.Range(lo, lo+1024, func(int64, int) bool {
			n++
			return n < 64
		})
	}
}

func BenchmarkIntervalTreeStab(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := rand.New(rand.NewSource(4))
			tr := NewIntervalTree()
			for i := 0; i < n; i++ {
				from := temporal.Chronon(r.Int63n(1 << 20))
				tr.Insert(temporal.Interval{From: from, To: from + temporal.Chronon(1+r.Int63n(1000))}, i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := temporal.Chronon(r.Int63n(1 << 20))
				tr.Stab(c, func(temporal.Interval, int) bool { return true })
			}
		})
	}
}

func BenchmarkIntervalTreeInsert(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	tr := NewIntervalTree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := temporal.Chronon(r.Int63n(1 << 20))
		tr.Insert(temporal.Interval{From: from, To: from + 100}, i)
	}
}
