// Package index provides the access methods used by the stores in
// internal/core: a chained hash index for key lookups, a skip list for
// ordered attribute scans, and an augmented interval tree for transaction-
// and valid-time stabbing queries ("which versions existed at chronon t?").
// The interval tree is what makes rollback cost logarithmic in history depth
// rather than linear; BenchmarkAblationIntervalIndex quantifies the gap.
package index

// Hash is a chained hash index from 64-bit hashes to postings (row
// positions). Callers hash their own keys (value.Value and tuple.Tuple both
// provide Hash64) and must verify candidates against the actual key, since
// distinct keys may share a hash.
//
// The zero value is ready to use. Hash is not safe for concurrent mutation,
// but once built it is safe for any number of concurrent readers: Lookup
// and Len touch no mutable state. The TQuel parallel executor relies on
// this — equi-join build tables are constructed serially at plan time and
// then probed from every worker goroutine without locking.
type Hash struct {
	buckets []bucket
	used    int // occupied buckets (distinct hashes)
	n       int // live postings
}

type bucket struct {
	hash  uint64
	posts []int
	used  bool
}

const minBuckets = 16

// NewHashSized returns a Hash preallocated for about n distinct hashes, so
// bulk builds (the TQuel equi-join build side hashes its whole input at
// once) skip the rehash-and-copy doublings.
func NewHashSized(n int) *Hash {
	buckets := minBuckets
	for buckets*3 < n*4 { // invert the 0.75 load factor
		buckets *= 2
	}
	return &Hash{buckets: make([]bucket, buckets)}
}

// Add records a posting under the given hash.
func (h *Hash) Add(hash uint64, pos int) {
	if h.buckets == nil {
		h.buckets = make([]bucket, minBuckets)
	}
	if h.used*4 >= len(h.buckets)*3 { // load factor 0.75 on distinct hashes
		h.grow()
	}
	b := h.find(hash)
	if !b.used {
		b.used = true
		b.hash = hash
		h.used++
	}
	b.posts = append(b.posts, pos)
	h.n++
}

// Lookup returns the postings recorded under the hash. The returned slice
// aliases index internals; callers must not modify it.
func (h *Hash) Lookup(hash uint64) []int {
	if h.buckets == nil {
		return nil
	}
	b := h.find(hash)
	if !b.used {
		return nil
	}
	return b.posts
}

// Remove deletes one instance of pos from the postings under hash,
// reporting whether it was present. Emptied buckets stay occupied as
// tombstoned chains so probe sequences remain intact.
func (h *Hash) Remove(hash uint64, pos int) bool {
	if h.buckets == nil {
		return false
	}
	b := h.find(hash)
	if !b.used {
		return false
	}
	for i, p := range b.posts {
		if p == pos {
			b.posts[i] = b.posts[len(b.posts)-1]
			b.posts = b.posts[:len(b.posts)-1]
			h.n--
			return true
		}
	}
	return false
}

// Len returns the number of postings in the index.
func (h *Hash) Len() int { return h.n }

// find locates the bucket for hash using open addressing with linear
// probing over hash slots (each slot holds one distinct hash's chain).
func (h *Hash) find(hash uint64) *bucket {
	mask := uint64(len(h.buckets) - 1)
	for i := hash & mask; ; i = (i + 1) & mask {
		b := &h.buckets[i]
		if !b.used || b.hash == hash {
			return b
		}
	}
}

func (h *Hash) grow() {
	old := h.buckets
	h.buckets = make([]bucket, len(old)*2)
	for i := range old {
		if !old[i].used {
			continue
		}
		nb := h.find(old[i].hash)
		nb.used = true
		nb.hash = old[i].hash
		nb.posts = old[i].posts
	}
}
