package index

import (
	"math/rand"
	"sort"
	"testing"

	"tdb/temporal"
)

func ivx(from, to temporal.Chronon) temporal.Interval {
	return temporal.Interval{From: from, To: to}
}

func collectStab(t *IntervalTree, c temporal.Chronon) []int {
	var out []int
	t.Stab(c, func(_ temporal.Interval, pos int) bool {
		out = append(out, pos)
		return true
	})
	sort.Ints(out)
	return out
}

func collectOverlap(t *IntervalTree, q temporal.Interval) []int {
	var out []int
	t.Overlapping(q, func(_ temporal.Interval, pos int) bool {
		out = append(out, pos)
		return true
	})
	sort.Ints(out)
	return out
}

func TestIntervalTreeStabBasic(t *testing.T) {
	tr := NewIntervalTree()
	tr.Insert(ivx(0, 10), 0)
	tr.Insert(ivx(5, 15), 1)
	tr.Insert(ivx(20, 30), 2)
	tr.Insert(temporal.Since(25), 3)
	cases := map[temporal.Chronon][]int{
		-1:  nil,
		0:   {0},
		7:   {0, 1},
		10:  {1},
		17:  nil,
		26:  {2, 3},
		1e9: {3},
	}
	for c, want := range cases {
		got := collectStab(tr, c)
		if len(got) != len(want) {
			t.Errorf("Stab(%d) = %v, want %v", c, got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("Stab(%d) = %v, want %v", c, got, want)
			}
		}
	}
}

func TestIntervalTreeEarlyStop(t *testing.T) {
	tr := NewIntervalTree()
	for i := 0; i < 10; i++ {
		tr.Insert(ivx(0, 100), i)
	}
	count := 0
	tr.Stab(50, func(temporal.Interval, int) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early stop visited %d", count)
	}
	count = 0
	tr.Overlapping(ivx(0, 100), func(temporal.Interval, int) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("overlap early stop visited %d", count)
	}
}

func TestIntervalTreeUpdateClosesCurrentVersion(t *testing.T) {
	tr := NewIntervalTree()
	cur := temporal.Since(10)
	tr.Insert(cur, 7)
	if !tr.Update(cur, 7, ivx(10, 50)) {
		t.Fatal("Update must find the current version")
	}
	if got := collectStab(tr, 60); got != nil {
		t.Errorf("closed version still stabbed at 60: %v", got)
	}
	if got := collectStab(tr, 20); len(got) != 1 || got[0] != 7 {
		t.Errorf("closed version lost at 20: %v", got)
	}
	if tr.Update(cur, 7, ivx(0, 1)) {
		t.Error("Update of absent entry must fail")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestIntervalTreeRemove(t *testing.T) {
	tr := NewIntervalTree()
	tr.Insert(ivx(0, 10), 1)
	tr.Insert(ivx(0, 10), 2) // same interval, different posting
	if !tr.Remove(ivx(0, 10), 1) {
		t.Error("Remove present must succeed")
	}
	if tr.Remove(ivx(0, 10), 1) {
		t.Error("Remove absent must fail")
	}
	if got := collectStab(tr, 5); len(got) != 1 || got[0] != 2 {
		t.Errorf("after Remove: %v", got)
	}
}

// Randomized cross-check against brute force, with interleaved updates.
func TestIntervalTreeAgainstBruteForce(t *testing.T) {
	type entry struct {
		iv  temporal.Interval
		pos int
	}
	tr := NewIntervalTree()
	var ref []entry
	r := rand.New(rand.NewSource(1234))
	nextPos := 0
	for step := 0; step < 3000; step++ {
		switch op := r.Intn(10); {
		case op < 6: // insert
			from := temporal.Chronon(r.Intn(200))
			to := from + temporal.Chronon(r.Intn(40))
			iv := ivx(from, to)
			tr.Insert(iv, nextPos)
			ref = append(ref, entry{iv, nextPos})
			nextPos++
		case op < 8 && len(ref) > 0: // update
			i := r.Intn(len(ref))
			from := temporal.Chronon(r.Intn(200))
			to := from + temporal.Chronon(r.Intn(40))
			niv := ivx(from, to)
			if !tr.Update(ref[i].iv, ref[i].pos, niv) {
				t.Fatalf("step %d: Update(%v, %d) failed", step, ref[i].iv, ref[i].pos)
			}
			ref[i].iv = niv
		case len(ref) > 0: // remove
			i := r.Intn(len(ref))
			if !tr.Remove(ref[i].iv, ref[i].pos) {
				t.Fatalf("step %d: Remove(%v, %d) failed", step, ref[i].iv, ref[i].pos)
			}
			ref[i] = ref[len(ref)-1]
			ref = ref[:len(ref)-1]
		}
		if step%100 != 0 {
			continue
		}
		if tr.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", step, tr.Len(), len(ref))
		}
		// Stab checks at a few random points.
		for trial := 0; trial < 5; trial++ {
			c := temporal.Chronon(r.Intn(260))
			var want []int
			for _, e := range ref {
				if e.iv.Contains(c) {
					want = append(want, e.pos)
				}
			}
			sort.Ints(want)
			got := collectStab(tr, c)
			if len(got) != len(want) {
				t.Fatalf("step %d: Stab(%d) = %v, want %v", step, c, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d: Stab(%d) = %v, want %v", step, c, got, want)
				}
			}
		}
		// Overlap checks.
		for trial := 0; trial < 5; trial++ {
			from := temporal.Chronon(r.Intn(200))
			q := ivx(from, from+temporal.Chronon(r.Intn(50)))
			var want []int
			for _, e := range ref {
				if e.iv.Overlaps(q) {
					want = append(want, e.pos)
				}
			}
			sort.Ints(want)
			got := collectOverlap(tr, q)
			if len(got) != len(want) {
				t.Fatalf("step %d: Overlapping(%v) = %v, want %v", step, q, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d: Overlapping(%v) = %v, want %v", step, q, got, want)
				}
			}
		}
	}
}

func TestIntervalTreeWithInfiniteEnds(t *testing.T) {
	tr := NewIntervalTree()
	tr.Insert(temporal.Since(10), 0)
	tr.Insert(temporal.All, 1)
	got := collectStab(tr, temporal.Forever-1)
	if len(got) != 2 {
		t.Errorf("Stab near ∞ = %v", got)
	}
	got = collectStab(tr, 5)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("Stab(5) = %v", got)
	}
}
