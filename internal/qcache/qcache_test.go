package qcache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestGetPutBasics(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get("missing"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", "alpha", 100)
	v, ok := c.Get("a")
	if !ok || v.(string) != "alpha" {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	// Replacement under the same key re-charges the size.
	c.Put("a", "beta", 200)
	v, _ = c.Get("a")
	if v.(string) != "beta" {
		t.Fatalf("replacement not visible: %v", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Inserts != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes != 200+0 { // replacement left only the new charge
		t.Fatalf("bytes = %d, want 200", st.Bytes)
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	if c := New(0); c != nil {
		t.Fatal("New(0) should return nil (disabled)")
	}
	c.Put("a", 1, 10) // must not panic
	if _, ok := c.Get("a"); ok {
		t.Fatal("nil cache hit")
	}
	c.Clear()
	if c.Len() != 0 || c.Bytes() != 0 || c.MaxBytes() != 0 {
		t.Fatal("nil cache should report zeroes")
	}
}

func TestLRUEviction(t *testing.T) {
	// One shard's budget is max/numShards; craft keys landing in one shard
	// by brute force so the LRU order is observable.
	c := New(numShards * 300) // 300 bytes per shard
	shard := c.shardFor("seed")
	var keys []string
	for i := 0; len(keys) < 4; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shardFor(k) == shard {
			keys = append(keys, k)
		}
	}
	for _, k := range keys[:3] {
		c.Put(k, k, 100) // fills the shard exactly
	}
	c.Get(keys[0]) // promote keys[0]; keys[1] is now LRU
	c.Put(keys[3], keys[3], 100)
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("LRU entry survived eviction")
	}
	for _, k := range []string{keys[0], keys[2], keys[3]} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("entry %q wrongly evicted", k)
		}
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestOversizeRejected(t *testing.T) {
	c := New(numShards * 100)
	c.Put("big", "x", 101) // over the per-shard budget
	if _, ok := c.Get("big"); ok {
		t.Fatal("oversize entry was cached")
	}
	if c.Stats().Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", c.Stats().Rejected)
	}
}

func TestClear(t *testing.T) {
	c := New(1 << 20)
	for i := 0; i < 50; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 64)
	}
	c.Clear()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("after Clear: len=%d bytes=%d", c.Len(), c.Bytes())
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("entry survived Clear")
	}
	if c.Stats().Clears != 1 {
		t.Fatalf("clears = %d", c.Stats().Clears)
	}
}

// TestSoakBudget hammers the cache with concurrent, randomly sized entries
// and asserts the byte gauge never exceeds the budget while evictions are
// actually happening — the acceptance criterion for the cache's sizing
// contract.
func TestSoakBudget(t *testing.T) {
	const budget = 64 << 10
	c := New(budget)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var violations sync.Map
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 5000; i++ {
				k := fmt.Sprintf("w%d-%d", w, rng.Intn(2000))
				if rng.Intn(3) == 0 {
					c.Get(k)
				} else {
					c.Put(k, i, int64(32+rng.Intn(512)))
				}
				if b := c.Bytes(); b > budget {
					violations.Store(b, true)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	violations.Range(func(k, _ any) bool {
		t.Errorf("resident bytes %d exceeded budget %d", k, budget)
		return true
	})
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("soak produced no evictions; budget never exercised")
	}
	if st.Bytes > budget {
		t.Fatalf("final bytes %d over budget %d", st.Bytes, budget)
	}
	t.Logf("soak: %+v", st)
}
