// Package qcache is a sharded, size-bounded (LRU with byte accounting)
// result cache for query answers. It exploits the taxonomy's central
// property of transaction time: the database's past states are append-only,
// so a result whose temporal scope is settled entirely in the past of
// transaction time can be cached immutably, and a current-state result can
// be cached until a write-version counter on any participating relation
// moves (see docs/caching.md for the full argument).
//
// The cache itself is policy-free: callers bake immutability or
// invalidation into the key (the TQuel layer appends a per-relation
// write-version vector to current-state keys, so a stale entry is simply
// never looked up again and ages out of the LRU). Values are opaque; the
// caller owns any copy-on-store / copy-on-return discipline.
//
// Concurrency: every method is safe for concurrent use. Keys are hashed
// onto independently locked shards, so sessions serving different queries
// rarely contend.
package qcache

import (
	"container/list"
	"hash/maphash"
	"sync"
	"sync/atomic"

	"tdb/internal/obs"
)

// Process-wide counters (aggregated across caches; a process normally hosts
// one database and therefore one cache). The bytes/entries gauges are
// updated with deltas so several caches sum instead of clobbering.
var (
	mHits = obs.Default.Counter("tdb_qcache_hits_total",
		"Query cache lookups answered from a cached resultset.")
	mMisses = obs.Default.Counter("tdb_qcache_misses_total",
		"Query cache lookups that found no entry and fell through to execution.")
	mInserts = obs.Default.Counter("tdb_qcache_insertions_total",
		"Resultsets stored in the query cache.")
	mEvictions = obs.Default.Counter("tdb_qcache_evictions_total",
		"Entries evicted from the query cache to respect its byte budget.")
	mRejected = obs.Default.Counter("tdb_qcache_oversize_rejected_total",
		"Resultsets not cached because a single entry exceeded a shard's byte budget.")
	gBytes = obs.Default.Gauge("tdb_qcache_bytes",
		"Estimated bytes resident in the query cache (keys + cached resultsets).")
	gEntries = obs.Default.Gauge("tdb_qcache_entries",
		"Entries resident in the query cache.")
)

// numShards is the fixed shard count (power of two for cheap masking).
// Sixteen keeps per-shard LRU lists long enough to be useful at small
// budgets while giving concurrent sessions independent locks.
const numShards = 16

// Stats is a point-in-time snapshot of one cache's counters.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Inserts   uint64 `json:"insertions"`
	Evictions uint64 `json:"evictions"`
	Rejected  uint64 `json:"oversize_rejected"`
	Clears    uint64 `json:"clears"`
	Entries   int64  `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
}

// Cache is a sharded LRU over string keys with a global byte budget.
type Cache struct {
	shards [numShards]shard
	seed   maphash.Seed
	max    int64

	hits, misses, inserts, evictions, rejected, clears atomic.Uint64
	bytes, entries                                     atomic.Int64
}

type shard struct {
	mu    sync.Mutex
	items map[string]*list.Element
	lru   *list.List // front = most recently used
	bytes int64
	max   int64
}

type entry struct {
	key   string
	val   any
	bytes int64
}

// New creates a cache bounded by maxBytes (keys plus values, as accounted
// by the caller's size estimates). maxBytes <= 0 yields a nil cache, which
// every method treats as disabled.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	perShard := maxBytes / numShards
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{seed: maphash.MakeSeed(), max: maxBytes}
	for i := range c.shards {
		c.shards[i].items = make(map[string]*list.Element)
		c.shards[i].lru = list.New()
		c.shards[i].max = perShard
	}
	return c
}

func (c *Cache) shardFor(key string) *shard {
	return &c.shards[maphash.String(c.seed, key)&(numShards-1)]
}

// Get returns the value cached under key, promoting it to most recently
// used. The caller must not mutate the returned value (the TQuel layer
// clones resultsets on the way out; see Resultset.Clone).
func (c *Cache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.items[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		mMisses.Inc()
		return nil, false
	}
	s.lru.MoveToFront(el)
	val := el.Value.(*entry).val
	s.mu.Unlock()
	c.hits.Add(1)
	mHits.Inc()
	return val, true
}

// Put stores val under key, charging size bytes against the budget and
// evicting least-recently-used entries as needed. A replacement under an
// existing key re-charges the new size. Entries larger than a shard's
// budget are rejected rather than cached (they would evict an entire shard
// for one entry). The caller must not mutate val after Put.
func (c *Cache) Put(key string, val any, size int64) {
	if c == nil {
		return
	}
	if size < 1 {
		size = 1
	}
	s := c.shardFor(key)
	if size > s.max {
		c.rejected.Add(1)
		mRejected.Inc()
		return
	}
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		e := el.Value.(*entry)
		delta := size - e.bytes
		e.val, e.bytes = val, size
		s.bytes += delta
		s.lru.MoveToFront(el)
		c.bytes.Add(delta)
		gBytes.Add(delta)
	} else {
		s.items[key] = s.lru.PushFront(&entry{key: key, val: val, bytes: size})
		s.bytes += size
		c.bytes.Add(size)
		c.entries.Add(1)
		gBytes.Add(size)
		gEntries.Inc()
	}
	c.inserts.Add(1)
	mInserts.Inc()
	evicted := 0
	for s.bytes > s.max {
		back := s.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.items, e.key)
		s.bytes -= e.bytes
		c.bytes.Add(-e.bytes)
		c.entries.Add(-1)
		gBytes.Add(-e.bytes)
		gEntries.Dec()
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(uint64(evicted))
		mEvictions.Add(uint64(evicted))
	}
}

// Clear drops every entry (checkpoint/restore invalidation and the server's
// "cache clear" command).
func (c *Cache) Clear() {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		dropped := int64(len(s.items))
		bytes := s.bytes
		s.items = make(map[string]*list.Element)
		s.lru.Init()
		s.bytes = 0
		s.mu.Unlock()
		c.bytes.Add(-bytes)
		c.entries.Add(-dropped)
		gBytes.Add(-bytes)
		gEntries.Add(-dropped)
	}
	c.clears.Add(1)
}

// MaxBytes returns the configured budget (0 for a disabled cache).
func (c *Cache) MaxBytes() int64 {
	if c == nil {
		return 0
	}
	return c.max
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	return int(c.entries.Load())
}

// Bytes returns the estimated resident bytes.
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	return c.bytes.Load()
}

// Stats snapshots this cache's counters (the /statz admin section and the
// server's "cache" command).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Inserts:   c.inserts.Load(),
		Evictions: c.evictions.Load(),
		Rejected:  c.rejected.Load(),
		Clears:    c.clears.Load(),
		Entries:   c.entries.Load(),
		Bytes:     c.bytes.Load(),
		MaxBytes:  c.max,
	}
}
