// Package command is the shared registry of session admin verbs — the
// commands that are not TQuel ("cache", "cache clear", "config", "stats",
// "help") — so every frontend dispatches the same set: the server serves
// them for Request.Cmd, the tquel REPL runs them locally, and tdbcli
// recognizes them and forwards them over the wire. A new verb registers
// once here and appears everywhere, help text included.
//
// Wire-loop commands ("batch", "repl") are declared for help and
// recognition but handled by the server's request loop itself: they need
// the raw request or the connection, which a registry handler never sees.
package command

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"tdb"
	"tdb/internal/config"
	"tdb/internal/qcache"
)

// Result is a command's outcome: a human-readable rendering plus the
// typed payloads the wire protocol carries in dedicated response fields.
type Result struct {
	// Stmt labels the outcome ("cache", "config"); the server mirrors it
	// into Outcome.Stmt when Text is non-empty.
	Stmt string
	// Text is the human-readable rendering; empty when the payload is the
	// whole answer (the bare "cache" verb).
	Text string
	// Cache is set by the cache verbs, carried as Response.Cache.
	Cache *qcache.Stats
}

// Command is one registered verb.
type Command struct {
	// Name is the full verb, possibly multi-word ("cache clear"). Dispatch
	// picks the longest registered name that prefixes the input.
	Name string
	// Help is the one-line description shown by "help".
	Help string
	// Wire marks verbs the server's request loop handles itself ("batch",
	// "repl"): listed and recognized, but not dispatchable here.
	Wire bool
	// Run executes the verb. args is the input after the matched name,
	// trimmed; most verbs require it empty.
	Run func(db *tdb.DB, args string) (Result, error)
}

var (
	mu       sync.RWMutex
	registry = map[string]Command{}
)

// Register adds a verb, panicking on a duplicate name — commands register
// once, at init time.
func Register(c Command) {
	mu.Lock()
	defer mu.Unlock()
	if c.Name == "" {
		panic("command: empty name")
	}
	if _, ok := registry[c.Name]; ok {
		panic(fmt.Sprintf("command: duplicate %q", c.Name))
	}
	registry[c.Name] = c
}

// Lookup finds the longest registered verb prefixing line (on word
// boundaries) and returns it with the remaining arguments.
func Lookup(line string) (Command, string, bool) {
	mu.RLock()
	defer mu.RUnlock()
	fields := strings.Fields(line)
	for n := len(fields); n > 0; n-- {
		name := strings.Join(fields[:n], " ")
		if c, ok := registry[name]; ok {
			return c, strings.Join(fields[n:], " "), true
		}
	}
	return Command{}, "", false
}

// IsCommand reports whether line begins with a registered verb.
func IsCommand(line string) bool {
	_, _, ok := Lookup(line)
	return ok
}

// Dispatch runs the verb in line against db. Unknown verbs and wire-loop
// verbs return an error (the latter tells the caller to use the wire
// path).
func Dispatch(db *tdb.DB, line string) (Result, error) {
	c, args, ok := Lookup(line)
	if !ok {
		return Result{}, fmt.Errorf("unknown command %q (try %s)", strings.TrimSpace(line), nameList())
	}
	if c.Wire {
		return Result{}, fmt.Errorf("command %q is only available over the server wire protocol", c.Name)
	}
	return c.Run(db, args)
}

// Names returns the registered verbs, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Help renders the one-line help for every verb.
func Help() string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("commands:")
	for _, n := range names {
		fmt.Fprintf(&b, "\n  %-12s %s", n, registry[n].Help)
	}
	return b.String()
}

func nameList() string {
	names := Names()
	for i, n := range names {
		names[i] = fmt.Sprintf("%q", n)
	}
	return strings.Join(names, ", ")
}

// noArgs wraps a handler that accepts no arguments.
func noArgs(name string, run func(db *tdb.DB) (Result, error)) func(*tdb.DB, string) (Result, error) {
	return func(db *tdb.DB, args string) (Result, error) {
		if args != "" {
			return Result{}, fmt.Errorf("command %q takes no arguments (got %q)", name, args)
		}
		return run(db)
	}
}

func init() {
	Register(Command{
		Name: "cache", Help: "report query-cache statistics",
		Run: noArgs("cache", func(db *tdb.DB) (Result, error) {
			st := db.QueryCache().Stats()
			return Result{Stmt: "cache", Cache: &st}, nil
		}),
	})
	Register(Command{
		Name: "cache clear", Help: "drop every cached query result",
		Run: noArgs("cache clear", func(db *tdb.DB) (Result, error) {
			qc := db.QueryCache()
			qc.Clear()
			st := qc.Stats()
			return Result{Stmt: "cache", Text: "cache cleared", Cache: &st}, nil
		}),
	})
	Register(Command{
		Name: "config", Help: "show the configuration knobs and their effective values",
		Run: noArgs("config", func(db *tdb.DB) (Result, error) {
			return Result{Stmt: "config", Text: renderConfig()}, nil
		}),
	})
	Register(Command{
		Name: "stats", Help: "show per-relation temporal statistics",
		Run: noArgs("stats", func(db *tdb.DB) (Result, error) {
			return Result{Stmt: "stats", Text: renderStats(db)}, nil
		}),
	})
	Register(Command{
		Name: "help", Help: "list the available commands",
		Run: noArgs("help", func(db *tdb.DB) (Result, error) {
			return Result{Stmt: "help", Text: Help()}, nil
		}),
	})
	Register(Command{Name: "batch", Wire: true,
		Help: "run a multi-statement batch in one round trip (protocol 1.2+)"})
	Register(Command{Name: "repl", Wire: true,
		Help: "switch the connection into a replication feed (protocol 1.1+)"})
}

// renderConfig formats the knob registry with effective values: the
// environment's when set, the registered default otherwise.
func renderConfig() string {
	snap := config.Snapshot()
	var b strings.Builder
	b.WriteString("knob                          value")
	for _, k := range config.Knobs() {
		fmt.Fprintf(&b, "\n%-29s %s", k.Env, snap[k.Env])
	}
	return b.String()
}

// renderStats formats the per-relation statistics summaries, sorted by
// relation name so the output is deterministic.
func renderStats(db *tdb.DB) string {
	sums := db.TemporalStats()
	if len(sums) == 0 {
		return "no relations"
	}
	names := make([]string, 0, len(sums))
	for n := range sums {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("relation: versions closures retractions buckets")
	for _, n := range names {
		s := sums[n]
		fmt.Fprintf(&b, "\n%s: %d %d %d %d", n, s.Versions, s.Closures, s.Retractions, s.Buckets)
	}
	return b.String()
}
