package command

import (
	"strings"
	"testing"

	"tdb"
)

func testDB(t *testing.T) *tdb.DB {
	t.Helper()
	db, err := tdb.Open("", tdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestLookupLongestPrefix(t *testing.T) {
	c, args, ok := Lookup("cache clear")
	if !ok || c.Name != "cache clear" || args != "" {
		t.Fatalf("Lookup(cache clear) = %q %q %v", c.Name, args, ok)
	}
	c, args, ok = Lookup("cache")
	if !ok || c.Name != "cache" || args != "" {
		t.Fatalf("Lookup(cache) = %q %q %v", c.Name, args, ok)
	}
	if _, _, ok := Lookup("retrieve (f.rank)"); ok {
		t.Fatal("TQuel source must not look like a command")
	}
}

func TestDispatchCacheAndUnknown(t *testing.T) {
	db := testDB(t)
	res, err := Dispatch(db, "cache")
	if err != nil || res.Cache == nil {
		t.Fatalf("cache: %v %+v", err, res)
	}
	res, err = Dispatch(db, "cache clear")
	if err != nil || res.Cache == nil || res.Text != "cache cleared" {
		t.Fatalf("cache clear: %v %+v", err, res)
	}
	if _, err := Dispatch(db, "bogus"); err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("bogus: %v", err)
	}
	if _, err := Dispatch(db, "cache clear now"); err == nil {
		t.Fatal("extra arguments must be rejected")
	}
}

func TestConfigVerbListsEveryKnob(t *testing.T) {
	t.Setenv("TDB_PARALLEL", "3")
	res, err := Dispatch(testDB(t), "config")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TDB_DISABLE_PLANNER", "TDB_CACHE_BYTES", "TDB_SEGMENT_ROWS"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("config output missing %s:\n%s", want, res.Text)
		}
	}
	if !strings.Contains(res.Text, "TDB_PARALLEL                  3") {
		t.Errorf("config output missing env override:\n%s", res.Text)
	}
}

func TestStatsVerb(t *testing.T) {
	db := testDB(t)
	if _, err := db.CreateRelation("stuff", tdb.Static, tdb.MustSchema(tdb.Attr("x", tdb.StringKind))); err != nil {
		t.Fatal(err)
	}
	res, err := Dispatch(db, "stats")
	if err != nil || !strings.Contains(res.Text, "stuff:") {
		t.Fatalf("stats: %v\n%s", err, res.Text)
	}
}

func TestWireVerbsRejectedLocally(t *testing.T) {
	db := testDB(t)
	for _, v := range []string{"batch", "repl"} {
		if _, err := Dispatch(db, v); err == nil || !strings.Contains(err.Error(), "wire") {
			t.Errorf("%s: %v", v, err)
		}
	}
}

func TestHelpListsAllVerbs(t *testing.T) {
	res, err := Dispatch(testDB(t), "help")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range Names() {
		if !strings.Contains(res.Text, n) {
			t.Errorf("help missing %q:\n%s", n, res.Text)
		}
	}
}
